#!/usr/bin/env bash
# Full local gate: the tier-1 verify (plain build + ctest, experiments
# included) plus an ASan/UBSan build of the test suite. Usage:
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --fast     # tier-1 only
#   scripts/check.sh --tsan     # ThreadSanitizer pass only (own build
#                               # dir: TSan cannot share ASan's), running
#                               # the concurrency-bearing suites
#
# The sanitized pass skips the experiment-labelled ctest entries: the
# harnesses re-run under the plain pass already, and sanitizer slowdown
# would push the long sweeps past their timeouts.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

if [[ "${1:-}" == "--tsan" ]]; then
  # The suites that exercise real concurrency: the shared-snapshot layer
  # (frozen-table reads racing residue overflows) and the thread pool.
  echo "== tsan: ThreadSanitizer build + concurrency suites =="
  cmake -B build-tsan -S . -DCDSE_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$JOBS" --target snapshot_test thread_pool_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Snapshot|ThreadPool|FrozenChoice|Parallel'
  echo "== tsan pass clean =="
  exit 0
fi

echo "== tier-1: plain build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== done (fast mode: sanitized pass skipped) =="
  exit 0
fi

echo "== sanitized: ASan/UBSan build + unit ctest =="
cmake -B build-san -S . -DCDSE_SANITIZE="address;undefined" >/dev/null
cmake --build build-san -j "$JOBS"
ctest --test-dir build-san --output-on-failure -j "$JOBS" -LE experiment

echo "== all checks passed =="
