#!/usr/bin/env bash
# Full local gate: the tier-1 verify (plain build + ctest, experiments
# included) plus an ASan/UBSan build of the test suite. Usage:
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --fast     # tier-1 only
#   scripts/check.sh --asan     # ASan/UBSan pass only (the sanitized
#                               # half of the default gate; the CI asan
#                               # job runs exactly this)
#   scripts/check.sh --tsan     # ThreadSanitizer pass only (own build
#                               # dir: TSan cannot share ASan's), running
#                               # the concurrency-bearing suites
#   scripts/check.sh --bench-smoke  # Release build of the E10 engine
#                               # bench, tiny-parameter run, checks that
#                               # BENCH_engine.json is produced (incl.
#                               # the E21 block-kernel rows and the
#                               # block-vs-per-draw speedup floor, plus
#                               # the E22 sequential-estimator rows and
#                               # their 2x draw-reduction floor); also
#                               # runs the E18 service soak at <=1k
#                               # sessions and checks BENCH_service.json
#                               # (the CI bench-smoke job runs exactly
#                               # this)
#   scripts/check.sh --portable # portable-baseline build with
#                               # -DCDSE_NATIVE_ARCH=OFF; runs the RNG /
#                               # alias / batch-sampler suites with the
#                               # block kernels forced to the scalar ISA
#                               # path (CDSE_BLOCK_ISA=scalar), proving
#                               # the dispatch fallback alone passes the
#                               # bit-identity and chi-square gates (the
#                               # CI portable-baseline job runs exactly
#                               # this)
#
# The sanitized passes skip the experiment-labelled ctest entries: the
# harnesses re-run under the plain pass already, and sanitizer slowdown
# would push the long sweeps past their timeouts.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

run_asan() {
  echo "== sanitized: ASan/UBSan build + unit ctest =="
  cmake -B build-san -S . -DCDSE_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$JOBS"
  ctest --test-dir build-san --output-on-failure -j "$JOBS" -LE experiment
}

if [[ "${1:-}" == "--asan" ]]; then
  run_asan
  echo "== asan pass clean =="
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # The suites that exercise real concurrency: the shared-snapshot layer
  # (frozen-table reads racing residue overflows), the thread pool, the
  # interning suites (ActionTable shared-lock fast path, map-vs-arena
  # differential, sharded-interner concurrent interning + epoch GC), the
  # session service / soak driver (sharded session table over the pool),
  # the exact cone-measure engine (ParallelConeEngine subtree fan-out,
  # parallel distinguisher search, parallel sweep grids), and the
  # quotient reduction (shared minimized snapshots behind per-worker
  # QuotientPsioa views in all of the above), the batched alias
  # sampler (frozen alias tables read lock-free by lockstep workers),
  # and the sequential estimator (incremental waves + stratified
  # per-stratum cursors fanned out over the pool).
  echo "== tsan: ThreadSanitizer build + concurrency suites =="
  cmake -B build-tsan -S . -DCDSE_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target snapshot_test thread_pool_test intern_test intern_gc_test \
             service_soak_test exact_engine_test quotient_test \
             alias_test batch_sampler_test seq_estimator_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Snapshot|ThreadPool|FrozenChoice|Parallel|Intern|ExactEngine|Quotient|ShardedInternGc|DynamicPcaGc|MacSessionSvc|SoakLatency|Soak|AliasFrozen|BatchSampler|SeqEst'
  echo "== tsan pass clean =="
  exit 0
fi

if [[ "${1:-}" == "--portable" ]]; then
  # Portable baseline: no -march=native, and the runtime ISA dispatch in
  # the block kernels pinned to the scalar path via CDSE_BLOCK_ISA. The
  # RNG / alias / batch-sampler suites carry the bit-identity and
  # chi-square gates, so a pass here certifies the portable fallback is
  # exactly as correct as the vector path -- the lowest common
  # denominator any deployment target gets.
  echo "== portable: CDSE_NATIVE_ARCH=OFF build + scalar-ISA suites =="
  cmake -B build-portable -S . -DCDSE_NATIVE_ARCH=OFF >/dev/null
  cmake --build build-portable -j "$JOBS" \
    --target rng_test alias_test batch_sampler_test
  CDSE_BLOCK_ISA=scalar ctest --test-dir build-portable \
    --output-on-failure -j "$JOBS" \
    -R 'Xoshiro|XoshiroBlock|AliasDraws|AliasFrozen|BatchSampler'
  echo "== portable pass clean =="
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  # Small-parameter Release run of the E10 engine bench: proves the bench
  # binary runs end to end and emits its JSON artifact. Thresholds are
  # not checked here -- numbers from a shared runner are noise; the gate
  # is exit status + a non-empty artifact.
  echo "== bench-smoke: Release bench_engine_throughput =="
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-bench -j "$JOBS" \
    --target bench_engine_throughput bench_optimal_distinguisher \
             bench_service_soak
  (cd build-bench && ./bench/bench_engine_throughput \
    --benchmark_min_time=0.05 --benchmark_out=BENCH_engine.json \
    --benchmark_out_format=json)
  test -s build-bench/BENCH_engine.json
  # The E20 batched-alias rows must land in the artifact next to their
  # serial counterparts (the before/after pair EXPERIMENTS.md tabulates).
  grep -q BM_BatchedAliasFdist build-bench/BENCH_engine.json
  grep -q BM_SnapshotParallelFdist build-bench/BENCH_engine.json
  # The E21 block-kernel rows: the block/per-draw pair on the MAC stack
  # and on the ledger PCA stack must both be present...
  grep -q BM_BlockBatchedFdist build-bench/BENCH_engine.json
  grep -q BM_BatchedAliasLedgerFdist build-bench/BENCH_engine.json
  grep -q BM_BlockBatchedLedgerFdist build-bench/BENCH_engine.json
  # ...and the block kernel must actually be faster. Absolute numbers
  # from a shared runner are noise, but the block/per-draw *ratio* on
  # the same stack in the same process is stable: E21 measures ~3.3x at
  # one worker, so a 1.2x floor has a wide margin while still catching a
  # regression that silently falls back to per-draw tallying.
  python3 - <<'PY'
import json
with open("build-bench/BENCH_engine.json") as f:
    rows = {b["name"]: b for b in json.load(f)["benchmarks"]}
per_draw = rows["BM_BatchedAliasFdist/1/real_time"]["real_time"]
block = rows["BM_BlockBatchedFdist/1/real_time"]["real_time"]
ratio = per_draw / block
print(f"E21 speedup floor: per-draw {per_draw:.0f}ns / block {block:.0f}ns "
      f"= {ratio:.2f}x (floor 1.2x)")
assert ratio >= 1.2, f"block kernel only {ratio:.2f}x over per-draw (< 1.2x)"
PY
  # E22: the sequential-estimator rows must land in the artifact, every
  # row's verdict must agree with the fixed-trial reference, and the MAC
  # implementation-check rows must clear a 2x draw-reduction floor
  # (measured ~9x above / ~21x below; draw counts are deterministic at a
  # fixed seed, so the floor is stable on shared runners).
  python3 - <<'PY'
import json
with open("build-bench/BENCH_engine.json") as f:
    rows = {r["name"]: r for r in json.load(f)["e22_rows"]}
assert rows, "e22_rows missing or empty"
for name, r in rows.items():
    assert r["verdict_agree"], f"{name}: sequential verdict disagrees"
for name in ("mac_impl_above", "mac_impl_below"):
    red = rows[name]["reduction"]
    print(f"E22 {name}: {rows[name]['fixed_draws']} -> "
          f"{rows[name]['seq_draws']} draws ({red:.1f}x)")
    assert red >= 2.0, f"{name}: draw reduction {red:.2f}x below 2x floor"
PY
  # E13/E13b/E13c self-check the engine-equivalence claims (legacy vs
  # iterative vs parallel, raw vs bisimulation quotient) and emit the
  # exact-engine ablation tables, including the quotient reduction-ratio
  # rows.
  (cd build-bench && ./bench/bench_optimal_distinguisher)
  test -s build-bench/BENCH_exact.json
  # E18 at smoke scale: a small soak across the worker sweep plus the
  # GC differential and in-process fault drills; the full 500k-cycle
  # row set is a local/perf-runner concern. 20k lifecycles is the smoke
  # floor: the GC-differential predicate requires compaction to have
  # actually reclaimed, and shards only compact at >= 1024 entries --
  # below ~20k sessions no shard ever crosses that and the harness
  # reports NO RECLAIM.
  (cd build-bench && ./bench/bench_service_soak --sessions=20000)
  test -s build-bench/BENCH_service.json
  echo "== bench-smoke clean: build-bench/BENCH_engine.json," \
       "BENCH_exact.json and BENCH_service.json written =="
  exit 0
fi

echo "== tier-1: plain build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== done (fast mode: sanitized pass skipped) =="
  exit 0
fi

run_asan

echo "== all checks passed =="
