// E8 -- Def 4.12 <=_{neg,pt}: the epsilon(k) of the one-time-MAC family
// is exactly 2^-k (exact enumeration for small k, parallel Monte-Carlo
// with Hoeffding radius beyond), the empirical negligibility classifier
// accepts it, and a constant-gap control family is rejected.

#include <cmath>

#include "bench_util.hpp"
#include "crypto/pairs.hpp"
#include "impl/family_sweep.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"

namespace cdse {
namespace {

PsioaFamily mac_family(const std::string& base, bool real,
                       bool constant_gap) {
  return PsioaFamily{
      base + (real ? "_real" : "_ideal"),
      [base, real, constant_gap](std::uint32_t k) -> PsioaPtr {
        const std::string tag = base + std::to_string(k);
        const RealIdealPair pair =
            make_otmac_pair(constant_gap ? 1 : k, tag);
        auto env = make_probe_env_matching(
            "env_" + tag + (real ? "r" : "i"), {act("auth_" + tag)},
            acts({"rejected_" + tag}), act("forged_" + tag),
            act("acc_" + tag));
        auto adv = make_sink_adversary(
            tag + (real ? "_advr" : "_advi"), {},
            acts({"forge_" + tag}));
        const StructuredPsioa& side = real ? pair.real : pair.ideal;
        return compose(env, compose(side.ptr(), adv));
      }};
}

SchedulerFamily mac_sched(const std::string& base) {
  return SchedulerFamily{
      "word", [base](std::uint32_t k) -> SchedulerPtr {
        const std::string tag = base + std::to_string(k);
        return std::make_shared<SequenceScheduler>(
            std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                                  act("forged_" + tag),
                                  act("acc_" + tag)},
            true);
      }};
}

int run() {
  bench::print_header(
      "E8: negligible epsilon(k) over the one-time-MAC family (Def 4.12)",
      "eps(k) == 2^-k exactly; classifier accepts; 1/2-gap control rejected");
  ThreadPool pool;
  const std::vector<std::uint32_t> ks{1, 2, 3, 4, 5, 6, 7, 8, 10, 12};
  const FamilySweepReport report = family_epsilon_sweep(
      mac_family("e8", true, false), mac_family("e8", false, false),
      mac_sched("e8"), TraceInsight(), ks, 14, /*exact_upto=*/8,
      /*trials=*/200000, /*seed=*/42, pool);
  bench::print_row({"k", "exact", "sampled", "radius", "2^-k"}, 16);
  bool ok = true;
  for (const auto& row : report.rows) {
    const double expect = std::pow(2.0, -static_cast<double>(row.k));
    std::string exact = row.exact ? row.exact->to_string() : "-";
    if (row.exact) {
      ok = ok && *row.exact == Rational(1, static_cast<std::int64_t>(1)
                                               << row.k);
    } else {
      ok = ok && std::abs(row.sampled - expect) <= row.radius + 0.01;
    }
    char sampled[32], radius[32], expected[32];
    std::snprintf(sampled, sizeof sampled, "%.6f", row.sampled);
    std::snprintf(radius, sizeof radius, "%.6f", row.radius);
    std::snprintf(expected, sizeof expected, "%.6f", expect);
    bench::print_row({std::to_string(row.k), exact, sampled, radius,
                      expected},
                     16);
  }
  std::printf("negligible-looking: %s, fitted decay exponent c = %.3f "
              "(eps ~ 2^-ck)\n",
              report.negligible_looking ? "yes" : "no",
              report.fitted_exponent);
  ok = ok && report.negligible_looking;
  ok = ok && std::abs(report.fitted_exponent - 1.0) < 0.1;

  // Control: a family whose gap never decays must be rejected.
  const std::vector<std::uint32_t> cks{1, 2, 3, 4};
  const FamilySweepReport control = family_epsilon_sweep(
      mac_family("e8c", true, true), mac_family("e8c", false, true),
      mac_sched("e8c"), TraceInsight(), cks, 14, 4, 0, 1, pool);
  std::printf("constant-gap control classified negligible: %s (want no)\n",
              control.negligible_looking ? "yes" : "no");
  ok = ok && !control.negligible_looking;
  return bench::verdict(ok, "E8: eps(k) = 2^-k, classified negligible");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
