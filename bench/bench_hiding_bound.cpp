// E3 -- Lemma 4.5 (B.3): hiding a b'-time-recognizable action set of a
// b-time-bounded automaton yields a c_hide*(b+b')-bounded automaton.
//
// We grow both the automaton (more/larger states, more output actions)
// and the hidden set; b' is the total encoded length of the hidden set's
// recognizer table. The lemma predicts a line in (b + b').

#include "bench_util.hpp"
#include "bounded/cost.hpp"
#include "psioa/explicit_psioa.hpp"
#include "psioa/hide.hpp"
#include "util/stats.hpp"

namespace cdse {
namespace {

/// Emitter with `n` distinct output actions, cycling through them.
PsioaPtr make_multi_emitter(const std::string& tag, std::size_t n,
                            std::size_t pad) {
  auto a = std::make_shared<ExplicitPsioa>("memit_" + tag);
  const std::string padding(pad, 'y');
  std::vector<ActionId> outs;
  for (std::size_t i = 0; i < n; ++i) {
    outs.push_back(act("out" + std::to_string(i) + "_" + tag));
  }
  std::vector<State> states;
  for (std::size_t i = 0; i < n; ++i) {
    states.push_back(a->add_state("m" + std::to_string(i) + padding));
  }
  a->set_start(states[0]);
  for (std::size_t i = 0; i < n; ++i) {
    Signature sig;
    sig.out = {outs[i]};
    a->set_signature(states[i], sig);
    a->add_step(states[i], outs[i], states[(i + 1) % n]);
  }
  a->validate();
  return a;
}

int run() {
  bench::print_header(
      "E3: hiding bound (Lemma 4.5 / B.3)",
      "b(hide(A, S)) <= c_hide * (b(A) + b'), b' = recognizer size of S");
  bench::print_row({"n_actions", "b(A)", "b'(S)", "b+b'", "b(hide)",
                    "ratio"});
  std::vector<double> xs;
  std::vector<double> ys;
  bool ok = true;
  for (std::size_t n = 2; n <= 20; n += 3) {
    const std::string tag = "e3_" + std::to_string(n);
    auto a = make_multi_emitter(tag, n, n);
    const std::uint64_t b = profile_psioa(*a, 4).b();
    // Hide half of the outputs; the recognizer's cost is the total
    // encoded length of the hidden set.
    ActionSet hidden;
    std::uint64_t b_prime = 0;
    for (std::size_t i = 0; i < n; i += 2) {
      const ActionId h = act("out" + std::to_string(i) + "_" + tag);
      set::insert(hidden, h);
      b_prime += encode_action(h).length();
    }
    auto hid = hide_actions(a, hidden);
    const std::uint64_t bh = profile_psioa(*hid, 4).b();
    const double ratio =
        static_cast<double>(bh) / static_cast<double>(b + b_prime);
    xs.push_back(static_cast<double>(b + b_prime));
    ys.push_back(static_cast<double>(bh));
    ok = ok && ratio <= 2.0;
    bench::print_row({std::to_string(n), std::to_string(b),
                      std::to_string(b_prime),
                      std::to_string(b + b_prime), std::to_string(bh),
                      std::to_string(ratio)});
  }
  const LinearFit fit = fit_line(xs, ys);
  std::printf("fitted c_hide = %.3f (intercept %.1f, R^2 = %.4f)\n",
              fit.slope, fit.intercept, fit.r2);
  ok = ok && fit.slope <= 2.0;
  return bench::verdict(ok, "E3: b(hide(A,S)) within c_hide*(b+b')");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
