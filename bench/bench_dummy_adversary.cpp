// E6 -- Lemma 4.29 / D.1: dummy-adversary insertion is exactly
// undetectable (epsilon = 0) under the Forward^s scheduler construction,
// with schedule length at most doubled (q2 = 2*q1).

#include "bench_util.hpp"
#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "impl/balance.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/forward.hpp"

namespace cdse {
namespace {

struct Case {
  std::string label;
  Rational eps_trace;
  Rational eps_accept;
  std::size_t q1 = 0;
  std::size_t q2 = 0;
};

Case run_otp_case(std::uint32_t k, std::size_t sched_bound) {
  const std::string tag = "e6o" + std::to_string(k) + "_" +
                          std::to_string(sched_bound);
  const RealIdealPair pair = make_otp_pair(k, tag);
  auto env = make_probe_env_matching(
      "env_" + tag, {act("send0_" + tag)}, acts({"tell0_" + tag}),
      act("tell1_" + tag), act("acc_" + tag));
  auto adv = make_relay_adversary(
      "relay_" + tag,
      {{act("cipher0_" + tag + "#r"), act("tell0_" + tag)},
       {act("cipher1_" + tag + "#r"), act("tell1_" + tag)}});
  DummyInsertion ins(pair.real, env, adv, "#r");
  auto sigma = std::make_shared<UniformScheduler>(sched_bound, true);
  const SchedulerPtr sigma2 = ins.forward_scheduler(sigma);
  Case c;
  c.label = "otp(k=" + std::to_string(k) + ",q1=" +
            std::to_string(sched_bound) + ")";
  TraceInsight ft;
  c.eps_trace = exact_balance_epsilon(ins.left(), *sigma, ins.right(),
                                      *sigma2, ft, 3 * sched_bound);
  AcceptInsight fa(act("acc_" + tag));
  c.eps_accept = exact_balance_epsilon(ins.left(), *sigma, ins.right(),
                                       *sigma2, fa, 3 * sched_bound);
  c.q1 = max_schedule_length(ins.left(), *sigma, 3 * sched_bound);
  c.q2 = max_schedule_length(ins.right(), *sigma2, 3 * sched_bound);
  return c;
}

Case run_mac_case(std::uint32_t k, std::size_t sched_bound) {
  const std::string tag = "e6m" + std::to_string(k) + "_" +
                          std::to_string(sched_bound);
  const RealIdealPair pair = make_otmac_pair(k, tag);
  auto env = make_probe_env_matching(
      "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
      act("forged_" + tag), act("acc_" + tag));
  auto adv = make_sink_adversary("adv_" + tag, {},
                                 acts({"forge_" + tag + "#r"}));
  DummyInsertion ins(pair.real, env, adv, "#r");
  auto sigma = std::make_shared<UniformScheduler>(sched_bound, true);
  const SchedulerPtr sigma2 = ins.forward_scheduler(sigma);
  Case c;
  c.label = "mac(k=" + std::to_string(k) + ",q1=" +
            std::to_string(sched_bound) + ")";
  TraceInsight ft;
  c.eps_trace = exact_balance_epsilon(ins.left(), *sigma, ins.right(),
                                      *sigma2, ft, 3 * sched_bound);
  AcceptInsight fa(act("acc_" + tag));
  c.eps_accept = exact_balance_epsilon(ins.left(), *sigma, ins.right(),
                                       *sigma2, fa, 3 * sched_bound);
  c.q1 = max_schedule_length(ins.left(), *sigma, 3 * sched_bound);
  c.q2 = max_schedule_length(ins.right(), *sigma2, 3 * sched_bound);
  return c;
}

int run() {
  bench::print_header(
      "E6: dummy adversary insertion (Lemma 4.29 / D.1)",
      "g(A)||Adv vs hide(A||Dummy(A,g),AAct)||Adv: eps == 0, q2 <= 2*q1");
  bench::print_row({"case", "eps(trace)", "eps(accept)", "q1", "q2",
                    "q2<=2q1?"},
                   18);
  bool ok = true;
  std::vector<Case> cases;
  for (std::uint32_t k : {1u, 2u, 3u}) {
    cases.push_back(run_otp_case(k, 6));
    cases.push_back(run_mac_case(k, 6));
  }
  cases.push_back(run_otp_case(2, 8));
  cases.push_back(run_mac_case(2, 8));
  for (const auto& c : cases) {
    const bool zero = c.eps_trace == Rational(0) &&
                      c.eps_accept == Rational(0);
    const bool bounded = c.q2 <= 2 * c.q1;
    ok = ok && zero && bounded;
    bench::print_row({c.label, c.eps_trace.to_string(),
                      c.eps_accept.to_string(), std::to_string(c.q1),
                      std::to_string(c.q2), bounded ? "yes" : "NO"},
                     18);
  }
  return bench::verdict(ok, "E6: insertion invisible with doubled budget");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
