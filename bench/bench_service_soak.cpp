// E18: million-session service soak.
//
// Drives the MacSessionService soak (src/service/soak.hpp) through three
// sub-experiments and writes every row machine-readably to
// BENCH_service.json in the working directory:
//
//   E18a  worker sweep -- the session budget split over {1, 2, 4, 8}
//         pool workers, GC on: throughput and p50/p99 latency per op
//         class (open/auth/forge/close), plus GC and RSS accounting.
//         Checks every row completes, the forgery rate tracks the 2^-k
//         advantage, session GC leaves zero live keys, and compaction
//         keeps the interner's entry tables bounded (the no-unbounded-
//         RSS-growth acceptance).
//   E18b  GC differential -- the same workload at the same seed with GC
//         on vs off must produce identical outcome digests, forgery
//         counts, and completion: collection and compaction are
//         invisible to live sessions (the test suite pins the
//         DynamicPca-level trace equality; this pins it at service
//         scale).
//   E18c  fault drill -- (i) per-request deadlines so tight every
//         attempt times out, exhausting retry-with-seed-rotation, and
//         (ii) injected crash-stop sessions. Both must degrade to
//         partial rows (complete = false) while the driver returns
//         normally -- never a hang or abort.
//
// Flags: --sessions=N  total lifecycles across the E18a sweep
//                      (default 500000; CI smoke passes 1000)
//        --seed=N      master seed
//        --drill       run the fault drills as the *process* contract:
//                      prints partial rows and exits non-zero.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "service/soak.hpp"

namespace cdse {
namespace {

struct BenchRow {
  std::string id;
  std::string mode;  // "sweep" | "gc-on" | "gc-off" | "drill-..."
  SoakReport rep;
};

std::string mb(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

void print_report_row(const BenchRow& row) {
  const SoakReport& r = row.rep;
  const SoakOpStats& forge = r.ops[static_cast<std::size_t>(SoakOp::kForge)];
  bench::print_row(
      {row.id, std::to_string(r.workers),
       std::to_string(r.sessions_completed) + "/" +
           std::to_string(r.sessions_requested),
       std::to_string(static_cast<std::uint64_t>(r.throughput_ops)),
       std::to_string(forge.latency.quantile_ns(0.5)) + "/" +
           std::to_string(forge.latency.quantile_ns(0.99)),
       std::to_string(r.forgeries), mb(r.rss_end_bytes),
       mb(r.gc_bytes_reclaimed), r.complete ? "ok" : "PARTIAL"},
      12);
  if (!r.error.empty()) {
    bench::print_row({"", "error: " + r.error}, 12);
  }
}

void write_bench_service_json(const std::vector<BenchRow>& rows,
                              std::size_t sessions, std::uint32_t k) {
  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"experiment\": \"E18 service soak\",\n");
  std::fprintf(out,
               "  \"workload\": {\"system\": \"sharded MAC session "
               "service\", \"sessions\": %zu, \"k\": %u},\n",
               sessions, k);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SoakReport& r = rows[i].rep;
    std::fprintf(
        out,
        "    {\"id\": \"%s\", \"mode\": \"%s\", \"workers\": %zu, "
        "\"gc\": %s, \"complete\": %s, \"error\": \"%s\", "
        "\"sessions_requested\": %" PRIu64 ", "
        "\"sessions_completed\": %" PRIu64 ", \"rejected\": %" PRIu64 ", "
        "\"crashed\": %" PRIu64 ", \"abandoned\": %" PRIu64 ", "
        "\"forgeries\": %" PRIu64 ", \"forgery_rate\": %.6g, "
        "\"advantage\": %.6g, \"outcome_digest\": %" PRIu64 ", "
        "\"wall_seconds\": %.6f, \"throughput_ops\": %.1f, "
        "\"epochs\": %" PRIu64 ", \"shards_compacted\": %" PRIu64 ", "
        "\"gc_bytes_reclaimed\": %" PRIu64 ", "
        "\"interner_live_keys\": %" PRIu64 ", "
        "\"interner_total_keys\": %" PRIu64 ", "
        "\"rss_start_bytes\": %zu, \"rss_peak_bytes\": %zu, "
        "\"rss_end_bytes\": %zu,\n      \"ops\": {",
        rows[i].id.c_str(), rows[i].mode.c_str(), r.workers,
        rows[i].mode == "gc-off" ? "false" : "true",
        r.complete ? "true" : "false", r.error.c_str(), r.sessions_requested,
        r.sessions_completed, r.rejected, r.crashed, r.abandoned,
        r.forgeries, r.forgery_rate, r.advantage, r.outcome_digest,
        r.wall_seconds, r.throughput_ops, r.epochs, r.shards_compacted,
        r.gc_bytes_reclaimed, r.interner_live_keys, r.interner_total_keys,
        r.rss_start_bytes, r.rss_peak_bytes, r.rss_end_bytes);
    for (std::size_t op = 0; op < kSoakOpClasses; ++op) {
      const SoakOpStats& os = r.ops[op];
      std::fprintf(
          out,
          "\"%s\": {\"requests\": %" PRIu64 ", \"ok\": %" PRIu64 ", "
          "\"timeouts\": %" PRIu64 ", \"retries\": %" PRIu64 ", "
          "\"failures\": %" PRIu64 ", \"p50_us\": %.3f, \"p99_us\": %.3f, "
          "\"max_us\": %.3f}%s",
          soak_op_name(op), os.requests, os.ok, os.timeouts, os.retries,
          os.failures,
          static_cast<double>(os.latency.quantile_ns(0.5)) / 1000.0,
          static_cast<double>(os.latency.quantile_ns(0.99)) / 1000.0,
          static_cast<double>(os.latency.max_ns()) / 1000.0,
          op + 1 < kSoakOpClasses ? ", " : "");
    }
    std::fprintf(out, "}}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace
}  // namespace cdse

int main(int argc, char** argv) {
  using namespace cdse;
  std::size_t total_sessions = 500000;
  std::uint64_t seed = 0x50a4e18ULL;
  bool drill_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      total_sessions = static_cast<std::size_t>(
          std::strtoull(argv[i] + 11, nullptr, 10));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--drill") == 0) {
      drill_mode = true;
    }
  }
  const std::uint32_t k = 10;
  std::vector<BenchRow> rows;

  auto base_options = [&](std::size_t sessions, std::size_t workers) {
    SoakOptions o;
    o.sessions = sessions;
    o.workers = workers;
    o.seed = seed;
    o.k = k;
    o.wave = std::clamp<std::size_t>(sessions / 8, 64, 8192);
    o.hold_waves = 2;
    return o;
  };

  if (drill_mode) {
    // Process-level degradation contract: tight deadlines + crash-stop
    // injection must yield partial rows and a NON-ZERO exit, without an
    // abort or hang.
    bench::print_header(
        "E18 fault drill (process mode)",
        "deadline exhaustion and crash-stop sessions degrade to partial "
        "rows and a non-zero exit");
    SoakOptions d1 = base_options(std::min<std::size_t>(total_sessions, 2000),
                                  4);
    d1.deadline = std::chrono::nanoseconds{1};
    d1.max_retries = 2;
    rows.push_back({"drill-deadline", "drill-deadline", run_soak(d1)});
    SoakOptions d2 = base_options(std::min<std::size_t>(total_sessions, 2000),
                                  4);
    d2.crash_prob = 0.25;
    rows.push_back({"drill-crash", "drill-crash", run_soak(d2)});
    bench::print_row({"row", "workers", "done", "ops/s", "forge p50/99ns",
                      "forgeries", "rss MB", "gc MB", "status"},
                     12);
    for (const auto& row : rows) print_report_row(row);
    write_bench_service_json(rows, total_sessions, k);
    const bool degraded_cleanly =
        !rows[0].rep.complete && !rows[1].rep.complete;
    std::printf("[%s] drill degraded to partial rows; exiting non-zero\n",
                degraded_cleanly ? "DEGRADED" : "UNEXPECTED");
    return degraded_cleanly ? 2 : 3;
  }

  int failures = 0;

  // -- E18a: worker sweep --------------------------------------------------
  bench::print_header(
      "E18a: service soak worker sweep (GC on)",
      "every row completes; forgery rate tracks 2^-k; session GC leaves "
      "zero live keys and bounded entry tables");
  bench::print_row({"row", "workers", "done", "ops/s", "forge p50/99ns",
                    "forgeries", "rss MB", "gc MB", "status"},
                   12);
  const std::size_t per_row = std::max<std::size_t>(1, total_sessions / 4);
  for (std::size_t workers : {1, 2, 4, 8}) {
    const std::string id = "sweep-w" + std::to_string(workers);
    bool ok = bench::guarded_row(id, [&] {
      SoakOptions o = base_options(per_row, workers);
      SoakReport r = run_soak(o);
      rows.push_back({id, "sweep", r});
      print_report_row(rows.back());
      bool row_ok = r.complete;
      // Forgery rate: deterministic at fixed seed, bounded by a 6-sigma
      // binomial envelope around 2^-k.
      const double p = r.advantage;
      const double n = static_cast<double>(r.sessions_completed);
      if (n > 0) {
        const double sigma = std::sqrt(p * (1.0 - p) / n);
        row_ok = row_ok && std::abs(r.forgery_rate - p) <= 6.0 * sigma + 1e-12;
      }
      // Session GC: nothing live after the drain, entry tables pruned by
      // compaction (3 keys/session would otherwise accumulate forever).
      row_ok = row_ok && r.interner_live_keys == 0;
      row_ok = row_ok &&
               r.interner_total_keys <=
                   std::max<std::uint64_t>(4096, 3 * r.sessions_requested / 4);
      return row_ok;
    }, 12);
    if (!ok) ++failures;
  }

  // RSS flatness across the heaviest row: peak growth over the run stays
  // far below what 3 keys/session would accumulate unreclaimed.
  if (!rows.empty()) {
    const SoakReport& last = rows.back().rep;
    const std::size_t growth =
        last.rss_peak_bytes > last.rss_start_bytes
            ? last.rss_peak_bytes - last.rss_start_bytes
            : 0;
    const bool rss_ok = last.rss_start_bytes == 0 ||  // no RSS source
                        growth < (std::size_t{256} << 20);
    bench::print_row({"rss-growth", mb(growth) + " MB peak growth",
                      rss_ok ? "ok" : "FAIL"},
                     16);
    if (!rss_ok) ++failures;
  }

  // -- E18b: GC on/off differential ----------------------------------------
  bench::print_header(
      "E18b: GC differential",
      "same seed, GC on vs off: identical outcome digest, forgeries, and "
      "completion -- collection/compaction invisible to live sessions");
  const std::size_t diff_sessions = std::min<std::size_t>(per_row, 20000);
  {
    SoakOptions on = base_options(diff_sessions, 4);
    on.gc = true;
    SoakOptions off = base_options(diff_sessions, 4);
    off.gc = false;
    const SoakReport r_on = run_soak(on);
    const SoakReport r_off = run_soak(off);
    rows.push_back({"gc-on", "gc-on", r_on});
    print_report_row(rows.back());
    rows.push_back({"gc-off", "gc-off", r_off});
    print_report_row(rows.back());
    const bool digest_ok =
        r_on.outcome_digest == r_off.outcome_digest &&
        r_on.forgeries == r_off.forgeries &&
        r_on.sessions_completed == r_off.sessions_completed &&
        r_on.complete && r_off.complete;
    // And GC must have actually reclaimed: dead chunks returned, no live
    // keys; the GC-off run keeps every key it ever interned.
    const bool reclaim_ok = r_on.gc_bytes_reclaimed > 0 &&
                            r_on.interner_live_keys == 0 &&
                            r_off.interner_live_keys >=
                                3 * r_off.sessions_completed;
    if (!digest_ok || !reclaim_ok) ++failures;
    bench::print_row({"differential", digest_ok ? "digests equal" : "MISMATCH",
                      reclaim_ok ? "gc reclaimed" : "NO RECLAIM"},
                     16);
  }

  // -- E18c: fault drill (in-process) --------------------------------------
  bench::print_header(
      "E18c: fault drill (in-process)",
      "deadline exhaustion and crash-stop sessions degrade to partial "
      "reports (complete=false) without hanging or aborting");
  {
    SoakOptions d1 = base_options(std::min<std::size_t>(diff_sessions, 2000),
                                  4);
    d1.deadline = std::chrono::nanoseconds{1};
    d1.max_retries = 2;
    const SoakReport r1 = run_soak(d1);
    rows.push_back({"drill-deadline", "drill-deadline", r1});
    print_report_row(rows.back());
    std::uint64_t timeouts = 0, retries = 0, op_failures = 0;
    for (const auto& os : r1.ops) {
      timeouts += os.timeouts;
      retries += os.retries;
      op_failures += os.failures;
    }
    const bool d1_ok = !r1.complete && timeouts > 0 && retries > 0 &&
                       op_failures > 0 && r1.sessions_completed == 0;

    SoakOptions d2 = base_options(std::min<std::size_t>(diff_sessions, 2000),
                                  4);
    d2.crash_prob = 0.25;
    const SoakReport r2 = run_soak(d2);
    rows.push_back({"drill-crash", "drill-crash", r2});
    print_report_row(rows.back());
    const bool d2_ok = !r2.complete && r2.crashed > 0 &&
                       r2.sessions_completed > 0 &&
                       r2.sessions_completed + r2.crashed ==
                           r2.sessions_requested;
    if (!d1_ok || !d2_ok) ++failures;
    bench::print_row({"drill", d1_ok ? "deadline degraded" : "DEADLINE FAIL",
                      d2_ok ? "crash degraded" : "CRASH FAIL"},
                     16);
  }

  write_bench_service_json(rows, total_sessions, k);
  return bench::verdict(failures == 0,
                        "E18: soak completes, GC differential holds, drills "
                        "degrade gracefully; BENCH_service.json written");
}
