// E16 -- backbone-lite ledger: <=_{neg,pt} with the confirmation depth
// as the security parameter (Def 4.12 on the paper's blockchain target).
//
// For every confirmation depth d, the implementation distance between
// the real ledger (confirmation race against a beta-power adversary)
// and the ideal ledger is the exact fork probability. The experiment
// regenerates the backbone *shape*: geometric decay in d for every
// minority adversary (steeper for weaker ones), and no decay at all at
// beta = 1/2 -- the common-prefix threshold.

#include <cmath>

#include "bench_util.hpp"
#include "impl/balance.hpp"
#include "protocols/backbone.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"
#include "util/poly.hpp"

namespace cdse {
namespace {

SchedulerPtr race_driver(const std::string& tag, std::size_t bound) {
  return std::make_shared<PriorityScheduler>(
      std::vector<ActionId>{act("submit_" + tag), act("mine_" + tag),
                            act("confirmed_" + tag),
                            act("forked_" + tag)},
      bound, /*local_only=*/false);
}

int run() {
  bench::print_header(
      "E16: backbone-lite ledger, eps(depth) = fork probability "
      "(Def 4.12 on [8]'s setting)",
      "geometric decay for minority adversaries, no decay at beta = 1/2");
  const std::vector<Rational> betas{Rational(1, 8), Rational(1, 4),
                                    Rational(3, 8), Rational(1, 2)};
  bench::print_row({"depth", "b=1/8", "b=1/4", "b=3/8", "b=1/2"}, 16);
  bool ok = true;
  std::vector<std::uint32_t> ds;
  std::vector<std::vector<double>> series(betas.size());
  for (std::uint32_t depth = 1; depth <= 8; ++depth) {
    ok = bench::guarded_row(std::to_string(depth), [&] {
      ds.push_back(depth);
      std::vector<std::string> row{std::to_string(depth)};
      for (std::size_t bi = 0; bi < betas.size(); ++bi) {
        const Rational p = exact_fork_probability(depth, betas[bi]);
        series[bi].push_back(p.to_double());
        row.push_back(p.to_string());
      }
      bench::print_row(row, 16);
      return true;
    }, 16) && ok;
  }
  // Minority adversaries: negligible-looking decay; the equal-power
  // adversary defeats confirmation entirely.
  for (std::size_t bi = 0; bi + 1 < betas.size(); ++bi) {
    const bool neg = looks_negligible(ds, series[bi], 0.95);
    ok = ok && neg;
    std::printf("beta=%s: negligible-looking decay: %s (fitted 2^-ck, "
                "c=%.3f)\n",
                betas[bi].to_string().c_str(), neg ? "yes" : "NO",
                fitted_decay_exponent(ds, series[bi]));
  }
  ok = ok && !looks_negligible(ds, series.back(), 0.95);
  std::printf("beta=1/2: decays: no (flat at 1/2, as the threshold "
              "predicts)\n\n");

  // Cross-check the automaton against the closed form at one point and
  // record the exact implementation epsilon.
  ok = bench::guarded_row("cross-check", [&] {
    const std::uint32_t depth = 4;
    const std::string rt = "e16r";
    auto real = make_confirmation_race(rt, depth, Rational(1, 4));
    auto ideal = make_ideal_ledger("e16i");
    auto sr = race_driver(rt, 3 * depth + 4);
    auto si = race_driver("e16i", 4);
    AcceptInsight fr(act("confirmed_" + rt));
    AcceptInsight fi(act("confirmed_e16i"));
    const auto dr = exact_fdist(*real, *sr, fr, 3 * depth + 6);
    const auto di = exact_fdist(*ideal, *si, fi, 8);
    const Rational eps = balance_distance(dr, di);
    const Rational closed = exact_fork_probability(depth, Rational(1, 4));
    std::printf("automaton cross-check (depth 4, beta 1/4): "
                "enumerated eps = %s, closed form = %s\n",
                eps.to_string().c_str(), closed.to_string().c_str());
    return eps == closed;
  }) && ok;
  return bench::verdict(
      ok, "E16: backbone common-prefix shape reproduced exactly");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
