// E17 -- fault tolerance of secure emulation: how does emulation epsilon
// degrade when the real side of a real/ideal pair runs under injected
// faults? The seed repo only ever exercised its protocols on well-behaved
// schedules; this is the first workload where messages drop, parties
// crash-stop (as intrinsic PCA destruction, Def 2.14) and corrupted
// parties lie. Every fault is automaton structure, so every epsilon below
// is exact.
//
// Tables:
//   1. message loss, coin toss   -- drop rate d on the environment's
//      result0 delivery; eps(d) = b + d*(1/2 - b), b = 2^-(k+1).
//   2. message loss, consensus   -- drop rate d on BenOrLite's common-coin
//      round; eps(d) = 1/2 * ((1+d)/2)^r.
//   3. crash-stop, coin toss     -- the real protocol crash-stops after n
//      transitions inside a DynamicPca (destruction transition); eps(n)
//      falls monotonically from 1/2 (nothing delivered) to b (never
//      crashes before completion).
//   4. Byzantine corruption      -- the real protocol lies about its
//      result with probability rho; eps(rho) = b*|1-2*rho|: corruption
//      pushes the biased real coin *toward* the fair ideal, an expected
//      non-monotonicity the closed form pins down.
//
// A final degradation drill exercises the hardened engine: a guarded
// sampled run against a 1 ms deadline must come back partial-but-usable,
// and a persistently throwing workload must burn its seed-rotation
// retries and report failure instead of tearing the harness down. Main
// table rows run through bench::guarded_row, so a genuinely failing row
// degrades to a partial row + non-zero exit, never an abort mid-table.

#include "bench_util.hpp"
#include "fault/byzantine.hpp"
#include "fault/crash.hpp"
#include "fault/faulty.hpp"
#include "impl/balance.hpp"
#include "pca/check.hpp"
#include "protocols/cointoss.hpp"
#include "protocols/consensus.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

constexpr std::uint32_t kK = 2;  // commitment security parameter

SchedulerPtr driver(const std::string& tag, std::size_t depth = 14) {
  return std::make_shared<PriorityScheduler>(
      std::vector<ActionId>{
          act("toss_" + tag), act("commit0_" + tag), act("pickb_" + tag),
          act("announceB0_" + tag), act("announceB1_" + tag),
          act("flipcmd_" + tag), act("reveal_" + tag), act("open0_" + tag),
          act("open1_" + tag), act("result0_" + tag), act("result1_" + tag),
          act("acc_" + tag)},
      depth, /*local_only=*/true);
}

/// Probe that accepts on result0 (the value the biaser steers *away*
/// from): losing its delivery can only widen the gap to the ideal side,
/// which is what makes the loss sweep provably monotone.
PsioaPtr arm0_env(const std::string& tag) {
  return make_probe_env_matching("env_" + tag, {act("toss_" + tag)},
                                 acts({"result1_" + tag}),
                                 act("result0_" + tag), act("acc_" + tag));
}

Rational rational_pow(const Rational& x, std::size_t n) {
  Rational acc(1);
  for (std::size_t i = 0; i < n; ++i) acc *= x;
  return acc;
}

Rational rational_abs(const Rational& x) { return x < Rational(0) ? -x : x; }

const std::vector<Rational>& rate_grid() {
  static const std::vector<Rational> grid{
      Rational(0), Rational(1, 8), Rational(1, 4), Rational(3, 8),
      Rational(1, 2)};
  return grid;
}

bool drop_sweep_cointoss() {
  bench::print_header(
      "E17.1: message loss on the coin-toss pair",
      "eps(d) = b + d*(1/2 - b), b = 2^-(k+1); monotone, eps(0) = base");
  bench::print_row({"drop", "eps_exact", "expected", "eps_sampled", "ok?"});
  const CoinTossPair ct = make_cointoss_pair(kK, "e17a");
  const Rational b = ct.exact_bias;
  bool ok = true;
  Rational prev(-1);
  ThreadPool pool;
  for (const Rational& d : rate_grid()) {
    ok = bench::guarded_row(d.to_string(), [&] {
      const std::string tag = "e17a";
      auto make_real = [&, d]() -> PsioaPtr {
        const CoinTossPair pair = make_cointoss_pair(kK, tag);
        PsioaPtr env = inject_faults(arm0_env(tag), FaultPlan::lossy(d),
                                     ActionSet{act("result0_" + tag)}, tag);
        return compose(env, compose(pair.real.ptr(),
                                    make_biaser_adversary(tag)));
      };
      auto make_ideal = [&]() -> PsioaPtr {
        const CoinTossPair pair = make_cointoss_pair(kK, tag);
        return compose(arm0_env(tag), compose(pair.ideal.ptr(),
                                              make_biaser_adversary(tag)));
      };
      PsioaPtr real_sys = make_real();
      PsioaPtr ideal_sys = make_ideal();
      const SchedulerPtr sr = driver(tag);
      const SchedulerPtr si = driver(tag);
      AcceptInsight f(act("acc_" + tag));
      const auto rd = exact_fdist(*real_sys, *sr, f, 24);
      const auto id = exact_fdist(*ideal_sys, *si, f, 24);
      const Rational eps = balance_distance(rd, id);
      const Rational expected = b + d * (Rational(1, 2) - b);

      // Sampled cross-check through the guarded engine (generous budget:
      // it must come back complete here).
      SampleGuard guard;
      guard.deadline = std::chrono::milliseconds(10000);
      guard.max_retries = 2;
      SampleReport rep_r, rep_i;
      const auto srd = guarded_parallel_sample_fdist(
          make_real, [&] { return driver(tag); }, f, 20000, 42, 24, pool,
          guard, &rep_r);
      const auto sid = guarded_parallel_sample_fdist(
          make_ideal, [&] { return driver(tag); }, f, 20000, 43, 24, pool,
          guard, &rep_i);
      const double seps = balance_distance(srd, sid);
      const bool sampled_ok = rep_r.complete && rep_i.complete &&
                              std::abs(seps - eps.to_double()) < 0.02;

      const bool row_ok =
          eps == expected && (d.is_zero() ? eps == b : true) && prev < eps &&
          sampled_ok;
      prev = eps;
      bench::print_row({d.to_string(), eps.to_string(), expected.to_string(),
                        std::to_string(seps), row_ok ? "yes" : "NO"});
      return row_ok;
    }) && ok;
  }
  return ok;
}

bool drop_sweep_consensus() {
  bench::print_header(
      "E17.2: message loss on the consensus pair",
      "dropped common-coin rounds resolve nothing: eps(d) = 1/2*((1+d)/2)^r");
  const std::size_t r = 4;
  bench::print_row({"drop", "P_benor[d0]", "P_ideal[d0]", "eps_exact",
                    "expected", "ok?"});
  bool ok = true;
  Rational prev(-1);
  for (const Rational& d : rate_grid()) {
    ok = bench::guarded_row(d.to_string(), [&] {
      const std::string tag = "e17b";
      PsioaPtr benor =
          inject_faults(make_benor_consensus(tag), FaultPlan::lossy(d),
                        ActionSet{act("round_" + tag)}, tag + d.to_string());
      PsioaPtr ideal = make_ideal_consensus(tag);
      PriorityScheduler wb({act("proposeA0_" + tag), act("proposeB1_" + tag),
                            act("round_" + tag), act("decide0_" + tag)},
                           r + 3);
      PriorityScheduler wi({act("proposeA0_" + tag), act("proposeB1_" + tag),
                            act("pick_" + tag), act("decide0_" + tag)},
                           4);
      AcceptInsight f(act("decide0_" + tag));
      const auto db = exact_fdist(*benor, wb, f, r + 6);
      const auto di = exact_fdist(*ideal, wi, f, r + 6);
      const Rational eps = balance_distance(db, di);
      const Rational expected =
          Rational(1, 2) *
          rational_pow((Rational(1) + d) * Rational(1, 2), r);
      const bool row_ok = eps == expected && prev < eps;
      prev = eps;
      bench::print_row({d.to_string(), db.mass("1").to_string(),
                        di.mass("1").to_string(), eps.to_string(),
                        expected.to_string(), row_ok ? "yes" : "NO"});
      return row_ok;
    }) && ok;
  }
  return ok;
}

bool crash_sweep_cointoss() {
  bench::print_header(
      "E17.3: crash-stop as intrinsic PCA destruction (Def 2.14)",
      "real protocol crashes after n transitions; eps falls 1/2 -> b, "
      "monotonically, and the crash PCA passes Def 2.16 checks");
  const CoinTossPair base = make_cointoss_pair(kK, "e17c");
  const Rational b = base.exact_bias;
  bench::print_row({"crash_after", "P_real[acc]", "eps_exact", "pca_ok",
                    "ok?"});
  bool ok = true;
  Rational prev(2);
  const std::string tag = "e17c";
  PsioaPtr ideal_sys = compose(
      arm0_env(tag), compose(base.ideal.ptr(), make_biaser_adversary(tag)));
  const SchedulerPtr si = driver(tag);
  AcceptInsight f(act("acc_" + tag));
  const auto id = exact_fdist(*ideal_sys, *si, f, 24);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{6}, std::size_t{8},
                              std::size_t{14}}) {
    ok = bench::guarded_row(std::to_string(n), [&] {
      const CoinTossPair pair = make_cointoss_pair(kK, tag);
      auto registry = std::make_shared<AutomatonRegistry>();
      PcaPtr crashed = make_crash_stop_pca(
          "crashpca_" + tag + std::to_string(n), registry,
          compose(pair.real.ptr(), make_biaser_adversary(tag)), n);
      const PcaCheckResult pca_ok = check_pca_constraints(*crashed, 6);
      PsioaPtr real_sys = compose(arm0_env(tag), crashed);
      const SchedulerPtr sr = driver(tag, 16);
      const auto rd = exact_fdist(*real_sys, *sr, f, 26);
      const Rational eps = balance_distance(rd, id);
      const bool final_row = n == 14;
      const bool row_ok = bool(pca_ok) && eps <= prev &&
                          (final_row ? eps == b : true) &&
                          (n == 1 ? eps == Rational(1, 2) : true);
      prev = eps;
      bench::print_row({std::to_string(n), rd.mass("1").to_string(),
                        eps.to_string(), pca_ok ? "yes" : "NO",
                        row_ok ? "yes" : "NO"});
      return row_ok;
    }) && ok;
  }
  return ok;
}

bool byzantine_sweep_cointoss() {
  bench::print_header(
      "E17.4: Byzantine corruption of the real coin-toss party",
      "misreported results: eps(rho) = b*|1-2*rho| -- corruption steers "
      "the biased real coin toward the fair ideal");
  const std::string tag = "e17d";
  const CoinTossPair base = make_cointoss_pair(kK, tag);
  const Rational b = base.exact_bias;
  bench::print_row({"rho", "P_real[acc]", "eps_exact", "expected", "ok?"});
  bool ok = true;
  PsioaPtr ideal_sys = compose(
      arm0_env(tag), compose(base.ideal.ptr(), make_biaser_adversary(tag)));
  const SchedulerPtr si = driver(tag);
  AcceptInsight f(act("acc_" + tag));
  const auto id = exact_fdist(*ideal_sys, *si, f, 24);
  for (const Rational& rho : rate_grid()) {
    ok = bench::guarded_row(rho.to_string(), [&] {
      const CoinTossPair pair = make_cointoss_pair(kK, tag);
      const StructuredPsioa corrupted = corrupt_structured(
          pair.real,
          {{act("result0_" + tag), act("result1_" + tag)}}, rho);
      PsioaPtr real_sys = compose(
          arm0_env(tag),
          compose(corrupted.ptr(), make_biaser_adversary(tag)));
      const SchedulerPtr sr = driver(tag);
      const auto rd = exact_fdist(*real_sys, *sr, f, 24);
      const Rational eps = balance_distance(rd, id);
      const Rational expected =
          b * rational_abs(Rational(1) - Rational(2) * rho);
      const bool row_ok =
          eps == expected && (rho.is_zero() ? eps == b : true);
      bench::print_row({rho.to_string(), rd.mass("1").to_string(),
                        eps.to_string(), expected.to_string(),
                        row_ok ? "yes" : "NO"});
      return row_ok;
    }) && ok;
  }
  return ok;
}

bool degradation_drill() {
  bench::print_header(
      "E17.5: degradation drill (hardened engine)",
      "deadline -> partial-but-normalized estimate; persistent throw -> "
      "retries burned, clean failure report, no teardown");
  ThreadPool pool;
  bool ok = true;

  // Deadline: a 1 ms budget against 50M requested trials must come back
  // incomplete but still usable.
  {
    const std::string tag = "e17e";
    const CoinTossPair pair = make_cointoss_pair(kK, tag);
    auto make_sys = [&]() -> PsioaPtr {
      const CoinTossPair p = make_cointoss_pair(kK, tag);
      return compose(arm0_env(tag),
                     compose(p.real.ptr(), make_biaser_adversary(tag)));
    };
    (void)pair;
    SampleGuard guard;
    guard.deadline = std::chrono::milliseconds(1);
    SampleReport rep;
    AcceptInsight f(act("acc_" + tag));
    const auto dist = guarded_parallel_sample_fdist(
        make_sys, [&] { return driver(tag); }, f, 50'000'000, 7, 24, pool,
        guard, &rep);
    const bool partial_ok = rep.deadline_hit && !rep.complete &&
                            rep.trials_done > 0 &&
                            rep.trials_done < rep.trials_requested &&
                            dist.is_probability(1e-9);
    bench::print_row({"deadline", std::to_string(rep.trials_done) + "/" +
                                      std::to_string(rep.trials_requested),
                      partial_ok ? "partial+usable" : "BROKEN"},
                     24);
    ok = ok && partial_ok;
  }

  // Persistent failure: every attempt throws; the guard must rotate seeds
  // max_retries times per chunk and report a clean failure.
  {
    SampleGuard guard;
    guard.max_retries = 2;
    SampleReport rep;
    AcceptInsight f(act("acc_e17e"));
    const auto dist = guarded_parallel_sample_fdist(
        []() -> PsioaPtr { throw std::runtime_error("injected fault"); },
        [&] { return driver("e17e"); }, f, 1000, 7, 24, pool, guard, &rep);
    const bool fail_ok = !rep.complete && rep.trials_done == 0 &&
                         rep.retries_used > 0 && !rep.error.empty() &&
                         dist.empty();
    bench::print_row({"persistent-throw", "retries=" +
                                              std::to_string(rep.retries_used),
                      fail_ok ? "clean-failure" : "BROKEN"},
                     24);
    ok = ok && fail_ok;
  }
  return ok;
}

int run() {
  bool ok = true;
  ok = drop_sweep_cointoss() && ok;
  ok = drop_sweep_consensus() && ok;
  ok = crash_sweep_cointoss() && ok;
  ok = byzantine_sweep_cointoss() && ok;
  ok = degradation_drill() && ok;
  return bench::verdict(
      ok,
      "E17: epsilon degrades exactly as the closed forms predict under "
      "loss/crash/corruption, and the engine degrades gracefully");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
