#pragma once
// Shared builders for the experiment harnesses (mirrors tests/test_util.hpp
// without depending on the test tree).

#include <memory>
#include <string>

#include "psioa/compose.hpp"
#include "psioa/explicit_psioa.hpp"

namespace cdse {

/// Bernoulli automaton over the vocabulary go_/yes_/no_<tag>.
inline PsioaPtr bench_bern(const std::string& inst, const std::string& tag,
                           const Rational& p) {
  auto b = std::make_shared<ExplicitPsioa>(inst);
  const ActionId a_t = act("go_" + tag);
  const ActionId a_y = act("yes_" + tag);
  const ActionId a_n = act("no_" + tag);
  const State s0 = b->add_state("idle");
  const State sy = b->add_state("yes");
  const State sn = b->add_state("no");
  const State sd = b->add_state("done");
  b->set_start(s0);
  Signature sig0;
  sig0.in = {a_t};
  b->set_signature(s0, sig0);
  Signature sigy;
  sigy.out = {a_y};
  b->set_signature(sy, sigy);
  Signature sign;
  sign.out = {a_n};
  b->set_signature(sn, sign);
  b->set_signature(sd, Signature{});
  StateDist d;
  d.add(sy, p);
  d.add(sn, Rational(1) - p);
  b->add_transition(s0, a_t, d);
  b->add_step(sy, a_y, sd);
  b->add_step(sn, a_n, sd);
  b->validate();
  return b;
}

}  // namespace cdse
