// E13 -- optimal-distinguisher ablation: is the canonical attack optimal
// within the off-line scheduler schema (Def 4.12's quantifier made
// exhaustive)? For each primitive pair, search every word scheduler up
// to a length bound and compare the optimum against the closed-form
// advantage.
//
// Finding: for the one-time MAC the canonical single-query attack is
// optimal (forge is consumed by the session; re-sending is a no-op).
// For the commitment pair the search *discovers a stronger attack*:
// the functionality accepts repeated equivocation requests. Watching
// open0 after commit0, the real system matches the ideal only when the
// two flips cancel, so two requests distinguish with advantage
// 1 - (p^2 + (1-p)^2) = 2p(1-p), p = 2^-k -- strictly above the
// single-query 2^-k. The harness asserts both facts.

// E13b -- exact-engine ablation on the same search schema: the legacy
// recursive enumerator vs the iterative prefix-sharing engine vs the
// parallel engine at 1/2/4/8 workers, on a faulty-channel pair whose
// probabilistic fault branching gives every word a real cone. All
// engines must return the identical word, epsilon and words_evaluated
// (the determinism contract of sched/exact_engine.hpp); wall-clock and
// ConeStats rows are written machine-readably to BENCH_exact.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "fault/faulty.hpp"
#include "impl/optimal.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

int run() {
  bench::print_header(
      "E13: exhaustive off-line distinguisher search (Def 4.12 ablation)",
      "max over word schedulers == closed-form advantage; canonical "
      "attack is optimal");
  bench::print_row({"pair", "k", "closed-form", "search-max", "words",
                    "best word"},
                   14);
  bool ok = true;
  TraceInsight f;
  for (std::uint32_t k : {1u, 2u, 3u}) {
    {
      const std::string tag = "e13m" + std::to_string(k);
      const RealIdealPair p = make_otmac_pair(k, tag);
      auto adv =
          make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
      PsioaPtr lhs = hidden_adversary_composition(p.real, adv);
      PsioaPtr rhs = hidden_adversary_composition(p.ideal, adv);
      const BestDistinguisher best = search_best_word(
          *lhs, *rhs,
          {act("auth_" + tag), act("forge_" + tag), act("forged_" + tag),
           act("rejected_" + tag)},
          5, f, 10);
      const bool match = best.eps == p.exact_advantage;
      ok = ok && match;
      bench::print_row({"otmac", std::to_string(k),
                        p.exact_advantage.to_string(),
                        best.eps.to_string(),
                        std::to_string(best.words_evaluated),
                        best.word_string()},
                       14);
    }
    {
      const std::string tag = "e13c" + std::to_string(k);
      const RealIdealPair p = make_commitment_pair(k, tag);
      auto adv = make_sink_adversary(tag + "_adv", {},
                                     acts({"flipcmd_" + tag}));
      PsioaPtr lhs = hidden_adversary_composition(p.real, adv);
      PsioaPtr rhs = hidden_adversary_composition(p.ideal, adv);
      const BestDistinguisher best = search_best_word(
          *lhs, *rhs,
          {act("commit0_" + tag), act("flipcmd_" + tag),
           act("reveal_" + tag), act("open0_" + tag),
           act("open1_" + tag)},
          5, f, 10);
      // Two equivocation attempts beat the canonical single query:
      // optimum = 1 - (p^2 + (1-p)^2) with p = 2^-k (the flips must
      // cancel for the real opening to match the ideal one).
      const Rational flip = p.exact_advantage;
      const Rational expected =
          Rational(1) - (flip * flip + (Rational(1) - flip) *
                                           (Rational(1) - flip));
      // Strictly stronger than the single query for k >= 2; at k = 1 the
      // two coincide (2p(1-p) = p at p = 1/2).
      const bool match =
          best.eps == expected && best.eps >= p.exact_advantage;
      ok = ok && match;
      bench::print_row({"commitment", std::to_string(k),
                        p.exact_advantage.to_string(),
                        best.eps.to_string(),
                        std::to_string(best.words_evaluated),
                        best.word_string()},
                       14);
    }
  }
  return bench::verdict(
      ok, "E13: exhaustive search matches the closed-form advantage");
}

struct AblationRow {
  std::string engine;
  std::size_t workers;  // 0 = serial
  double seconds;
  BestDistinguisher best;
};

void write_bench_exact_json(const std::vector<AblationRow>& rows,
                            double legacy_seconds) {
  std::FILE* out = std::fopen("BENCH_exact.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"experiment\": \"E13b exact-engine ablation\",\n");
  std::fprintf(out,
               "  \"workload\": {\"system\": \"faulty-channel pair\", "
               "\"alphabet\": 5, \"max_len\": 7, \"depth\": 12},\n");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AblationRow& r = rows[i];
    const ConeStats& s = r.best.stats;
    std::fprintf(
        out,
        "    {\"engine\": \"%s\", \"workers\": %zu, \"seconds\": %.6f, "
        "\"speedup_vs_legacy\": %.2f, \"eps\": \"%s\", "
        "\"words_evaluated\": %zu, \"frames_peak\": %zu, "
        "\"frames_pushed\": %zu, \"leaves\": %zu, \"halts\": %zu, "
        "\"splits\": %zu, \"prefix_hits\": %zu, \"prefix_misses\": %zu}%s\n",
        r.engine.c_str(), r.workers, r.seconds,
        r.seconds > 0.0 ? legacy_seconds / r.seconds : 0.0,
        r.best.eps.to_string().c_str(), r.best.words_evaluated,
        s.frames_peak, s.frames_pushed, s.leaves, s.halts, s.splits,
        s.prefix_hits, s.prefix_misses,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

int run_e13b() {
  bench::print_header(
      "E13b: exact-engine ablation (legacy vs prefix-shared vs parallel)",
      "all engines return the identical word/eps/words; prefix sharing "
      "and worker fan-out only change wall-clock");
  const std::string tag = "e13x";
  FaultPlan plan_l;
  plan_l.drop = Rational(1, 8);
  plan_l.duplicate = Rational(1, 8);
  plan_l.delay = Rational(1, 4);
  FaultPlan plan_r;
  plan_r.drop = Rational(1, 4);
  plan_r.duplicate = Rational(1, 8);
  plan_r.delay = Rational(1, 8);
  const PsioaFactory make_lhs = [tag, plan_l]() -> PsioaPtr {
    return make_faulty_channel(tag, plan_l);
  };
  const PsioaFactory make_rhs = [tag, plan_r]() -> PsioaPtr {
    return make_faulty_channel(tag, plan_r);
  };
  const std::vector<ActionId> alphabet{
      act("send0_" + tag), act("send1_" + tag), act("recv0_" + tag),
      act("recv1_" + tag), act("faultdeliver_" + tag)};
  const std::size_t max_len = 7;
  const std::size_t depth = 12;
  TraceInsight f;

  std::vector<AblationRow> rows;
  {
    PsioaPtr lhs = make_lhs();
    PsioaPtr rhs = make_rhs();
    bench::Timer t;
    BestDistinguisher best =
        search_best_word_legacy(*lhs, *rhs, alphabet, max_len, f, depth);
    rows.push_back({"legacy-recursive", 0, t.seconds(), std::move(best)});
  }
  {
    PsioaPtr lhs = make_lhs();
    PsioaPtr rhs = make_rhs();
    bench::Timer t;
    BestDistinguisher best =
        search_best_word(*lhs, *rhs, alphabet, max_len, f, depth);
    rows.push_back({"prefix-shared", 0, t.seconds(), std::move(best)});
  }
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    bench::Timer t;
    BestDistinguisher best = search_best_word_parallel(
        make_lhs, make_rhs, alphabet, max_len, f, depth, pool);
    rows.push_back({"parallel", workers, t.seconds(), std::move(best)});
  }

  const double legacy_seconds = rows.front().seconds;
  const BestDistinguisher& ref = rows.front().best;
  bool ok = true;
  bench::print_row({"engine", "workers", "seconds", "speedup", "eps",
                    "words", "prefix-hits"},
                   17);
  for (const AblationRow& r : rows) {
    const bool same = r.best.word == ref.word && r.best.eps == ref.eps &&
                      r.best.words_evaluated == ref.words_evaluated;
    ok = ok && same;
    char spd[32];
    std::snprintf(spd, sizeof spd, "%.2fx",
                  r.seconds > 0.0 ? legacy_seconds / r.seconds : 0.0);
    char sec[32];
    std::snprintf(sec, sizeof sec, "%.3f", r.seconds);
    bench::print_row({r.engine, std::to_string(r.workers), sec, spd,
                      r.best.eps.to_string(),
                      std::to_string(r.best.words_evaluated),
                      std::to_string(r.best.stats.prefix_hits)},
                     17);
  }
  // Prefix sharing must actually fire -- the speedup claim rests on it.
  ok = ok && rows[1].best.stats.prefix_hits > 0;
  ok = ok && ref.eps > Rational(0);
  write_bench_exact_json(rows, legacy_seconds);
  return bench::verdict(
      ok,
      "E13b: every engine agrees with the recursive reference; "
      "BENCH_exact.json written");
}

}  // namespace
}  // namespace cdse

int main() {
  const int r1 = cdse::run();
  const int r2 = cdse::run_e13b();
  return r1 != 0 ? r1 : r2;
}
