// E13 -- optimal-distinguisher ablation: is the canonical attack optimal
// within the off-line scheduler schema (Def 4.12's quantifier made
// exhaustive)? For each primitive pair, search every word scheduler up
// to a length bound and compare the optimum against the closed-form
// advantage.
//
// Finding: for the one-time MAC the canonical single-query attack is
// optimal (forge is consumed by the session; re-sending is a no-op).
// For the commitment pair the search *discovers a stronger attack*:
// the functionality accepts repeated equivocation requests. Watching
// open0 after commit0, the real system matches the ideal only when the
// two flips cancel, so two requests distinguish with advantage
// 1 - (p^2 + (1-p)^2) = 2p(1-p), p = 2^-k -- strictly above the
// single-query 2^-k. The harness asserts both facts.

#include "bench_util.hpp"
#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "impl/optimal.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

namespace cdse {
namespace {

int run() {
  bench::print_header(
      "E13: exhaustive off-line distinguisher search (Def 4.12 ablation)",
      "max over word schedulers == closed-form advantage; canonical "
      "attack is optimal");
  bench::print_row({"pair", "k", "closed-form", "search-max", "words",
                    "best word"},
                   14);
  bool ok = true;
  TraceInsight f;
  for (std::uint32_t k : {1u, 2u, 3u}) {
    {
      const std::string tag = "e13m" + std::to_string(k);
      const RealIdealPair p = make_otmac_pair(k, tag);
      auto adv =
          make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
      PsioaPtr lhs = hidden_adversary_composition(p.real, adv);
      PsioaPtr rhs = hidden_adversary_composition(p.ideal, adv);
      const BestDistinguisher best = search_best_word(
          *lhs, *rhs,
          {act("auth_" + tag), act("forge_" + tag), act("forged_" + tag),
           act("rejected_" + tag)},
          5, f, 10);
      const bool match = best.eps == p.exact_advantage;
      ok = ok && match;
      bench::print_row({"otmac", std::to_string(k),
                        p.exact_advantage.to_string(),
                        best.eps.to_string(),
                        std::to_string(best.words_evaluated),
                        best.word_string()},
                       14);
    }
    {
      const std::string tag = "e13c" + std::to_string(k);
      const RealIdealPair p = make_commitment_pair(k, tag);
      auto adv = make_sink_adversary(tag + "_adv", {},
                                     acts({"flipcmd_" + tag}));
      PsioaPtr lhs = hidden_adversary_composition(p.real, adv);
      PsioaPtr rhs = hidden_adversary_composition(p.ideal, adv);
      const BestDistinguisher best = search_best_word(
          *lhs, *rhs,
          {act("commit0_" + tag), act("flipcmd_" + tag),
           act("reveal_" + tag), act("open0_" + tag),
           act("open1_" + tag)},
          5, f, 10);
      // Two equivocation attempts beat the canonical single query:
      // optimum = 1 - (p^2 + (1-p)^2) with p = 2^-k (the flips must
      // cancel for the real opening to match the ideal one).
      const Rational flip = p.exact_advantage;
      const Rational expected =
          Rational(1) - (flip * flip + (Rational(1) - flip) *
                                           (Rational(1) - flip));
      // Strictly stronger than the single query for k >= 2; at k = 1 the
      // two coincide (2p(1-p) = p at p = 1/2).
      const bool match =
          best.eps == expected && best.eps >= p.exact_advantage;
      ok = ok && match;
      bench::print_row({"commitment", std::to_string(k),
                        p.exact_advantage.to_string(),
                        best.eps.to_string(),
                        std::to_string(best.words_evaluated),
                        best.word_string()},
                       14);
    }
  }
  return bench::verdict(
      ok, "E13: exhaustive search matches the closed-form advantage");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
