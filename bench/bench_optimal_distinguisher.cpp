// E13 -- optimal-distinguisher ablation: is the canonical attack optimal
// within the off-line scheduler schema (Def 4.12's quantifier made
// exhaustive)? For each primitive pair, search every word scheduler up
// to a length bound and compare the optimum against the closed-form
// advantage.
//
// Finding: for the one-time MAC the canonical single-query attack is
// optimal (forge is consumed by the session; re-sending is a no-op).
// For the commitment pair the search *discovers a stronger attack*:
// the functionality accepts repeated equivocation requests. Watching
// open0 after commit0, the real system matches the ideal only when the
// two flips cancel, so two requests distinguish with advantage
// 1 - (p^2 + (1-p)^2) = 2p(1-p), p = 2^-k -- strictly above the
// single-query 2^-k. The harness asserts both facts.

// E13b -- exact-engine ablation on the same search schema: the legacy
// recursive enumerator vs the iterative prefix-sharing engine vs the
// parallel engine at 1/2/4/8 workers, on a faulty-channel pair whose
// probabilistic fault branching gives every word a real cone. All
// engines must return the identical word, epsilon and words_evaluated
// (the determinism contract of sched/exact_engine.hpp); wall-clock and
// ConeStats rows are written machine-readably to BENCH_exact.json.
//
// E13c -- quotient-reduction ablation: an interleaving-heavy composed
// stack (two independent "fork" automata, each branching uniformly into
// mutually bisimilar mid states, so the product's interleavings multiply
// redundant branches) enumerated raw vs under
// ReductionPolicy::bisimulation(). The exact f-dist must be identical;
// the reduced run must push at least 2x fewer frames. Rows (blocks,
// reduction ratio, frame counts, speedup vs unreduced) join
// BENCH_exact.json.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "fault/faulty.hpp"
#include "impl/optimal.hpp"
#include "psioa/compose.hpp"
#include "psioa/explicit_psioa.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

int run() {
  bench::print_header(
      "E13: exhaustive off-line distinguisher search (Def 4.12 ablation)",
      "max over word schedulers == closed-form advantage; canonical "
      "attack is optimal");
  bench::print_row({"pair", "k", "closed-form", "search-max", "words",
                    "best word"},
                   14);
  bool ok = true;
  TraceInsight f;
  for (std::uint32_t k : {1u, 2u, 3u}) {
    {
      const std::string tag = "e13m" + std::to_string(k);
      const RealIdealPair p = make_otmac_pair(k, tag);
      auto adv =
          make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
      PsioaPtr lhs = hidden_adversary_composition(p.real, adv);
      PsioaPtr rhs = hidden_adversary_composition(p.ideal, adv);
      const BestDistinguisher best = search_best_word(
          *lhs, *rhs,
          {act("auth_" + tag), act("forge_" + tag), act("forged_" + tag),
           act("rejected_" + tag)},
          5, f, 10);
      const bool match = best.eps == p.exact_advantage;
      ok = ok && match;
      bench::print_row({"otmac", std::to_string(k),
                        p.exact_advantage.to_string(),
                        best.eps.to_string(),
                        std::to_string(best.words_evaluated),
                        best.word_string()},
                       14);
    }
    {
      const std::string tag = "e13c" + std::to_string(k);
      const RealIdealPair p = make_commitment_pair(k, tag);
      auto adv = make_sink_adversary(tag + "_adv", {},
                                     acts({"flipcmd_" + tag}));
      PsioaPtr lhs = hidden_adversary_composition(p.real, adv);
      PsioaPtr rhs = hidden_adversary_composition(p.ideal, adv);
      const BestDistinguisher best = search_best_word(
          *lhs, *rhs,
          {act("commit0_" + tag), act("flipcmd_" + tag),
           act("reveal_" + tag), act("open0_" + tag),
           act("open1_" + tag)},
          5, f, 10);
      // Two equivocation attempts beat the canonical single query:
      // optimum = 1 - (p^2 + (1-p)^2) with p = 2^-k (the flips must
      // cancel for the real opening to match the ideal one).
      const Rational flip = p.exact_advantage;
      const Rational expected =
          Rational(1) - (flip * flip + (Rational(1) - flip) *
                                           (Rational(1) - flip));
      // Strictly stronger than the single query for k >= 2; at k = 1 the
      // two coincide (2p(1-p) = p at p = 1/2).
      const bool match =
          best.eps == expected && best.eps >= p.exact_advantage;
      ok = ok && match;
      bench::print_row({"commitment", std::to_string(k),
                        p.exact_advantage.to_string(),
                        best.eps.to_string(),
                        std::to_string(best.words_evaluated),
                        best.word_string()},
                       14);
    }
  }
  return bench::verdict(
      ok, "E13: exhaustive search matches the closed-form advantage");
}

struct AblationRow {
  std::string engine;
  std::size_t workers;  // 0 = serial
  double seconds;
  BestDistinguisher best;
};

/// One E13c measurement: the fork-product stack enumerated raw or via
/// the bisimulation quotient, serial or fanned over a pool.
struct QuotientRow {
  std::string mode;     // "unreduced" / "reduced"
  std::size_t workers;  // 0 = serial
  double seconds = 0.0;
  std::size_t frames_pushed = 0;
  std::size_t states = 0;  // snapshot states (reduced rows only)
  std::size_t blocks = 0;  // quotient blocks (reduced rows only)
};

void write_bench_exact_json(const std::vector<AblationRow>& rows,
                            const std::vector<QuotientRow>& qrows) {
  std::FILE* out = std::fopen("BENCH_exact.json", "w");
  if (out == nullptr) return;
  const double legacy_seconds = rows.front().seconds;
  std::FILE* o = out;
  std::fprintf(o, "{\n  \"experiment\": \"E13b/E13c exact-engine ablations\",\n");
  std::fprintf(o,
               "  \"workload\": {\"system\": \"faulty-channel pair\", "
               "\"alphabet\": 5, \"max_len\": 7, \"depth\": 12},\n");
  std::fprintf(o, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AblationRow& r = rows[i];
    const ConeStats& s = r.best.stats;
    std::fprintf(
        o,
        "    {\"engine\": \"%s\", \"workers\": %zu, \"seconds\": %.6f, "
        "\"speedup_vs_legacy\": %.2f, \"eps\": \"%s\", "
        "\"words_evaluated\": %zu, \"frames_peak\": %zu, "
        "\"frames_pushed\": %zu, \"leaves\": %zu, \"halts\": %zu, "
        "\"splits\": %zu, \"prefix_hits\": %zu, \"prefix_misses\": %zu}%s\n",
        r.engine.c_str(), r.workers, r.seconds,
        r.seconds > 0.0 ? legacy_seconds / r.seconds : 0.0,
        r.best.eps.to_string().c_str(), r.best.words_evaluated,
        s.frames_peak, s.frames_pushed, s.leaves, s.halts, s.splits,
        s.prefix_hits, s.prefix_misses,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(o, "  ],\n");
  std::fprintf(o,
               "  \"e13c_workload\": {\"system\": \"fork-product (2 forks, "
               "width 4)\", \"depth\": 6},\n");
  std::fprintf(o, "  \"e13c_rows\": [\n");
  const double unreduced_seconds =
      qrows.empty() ? 0.0 : qrows.front().seconds;
  for (std::size_t i = 0; i < qrows.size(); ++i) {
    const QuotientRow& r = qrows[i];
    std::fprintf(
        o,
        "    {\"mode\": \"%s\", \"workers\": %zu, \"seconds\": %.6f, "
        "\"speedup_vs_unreduced\": %.2f, \"frames_pushed\": %zu, "
        "\"quotient_states\": %zu, \"quotient_blocks\": %zu, "
        "\"reduction_ratio\": %.2f}%s\n",
        r.mode.c_str(), r.workers, r.seconds,
        r.seconds > 0.0 ? unreduced_seconds / r.seconds : 0.0,
        r.frames_pushed, r.states, r.blocks,
        r.blocks > 0 ? static_cast<double>(r.states) /
                           static_cast<double>(r.blocks)
                     : 1.0,
        i + 1 < qrows.size() ? "," : "");
  }
  std::fprintf(o, "  ]\n}\n");
  std::fclose(out);
}

int run_e13b(std::vector<AblationRow>& out_rows) {
  bench::print_header(
      "E13b: exact-engine ablation (legacy vs prefix-shared vs parallel)",
      "all engines return the identical word/eps/words; prefix sharing "
      "and worker fan-out only change wall-clock");
  const std::string tag = "e13x";
  FaultPlan plan_l;
  plan_l.drop = Rational(1, 8);
  plan_l.duplicate = Rational(1, 8);
  plan_l.delay = Rational(1, 4);
  FaultPlan plan_r;
  plan_r.drop = Rational(1, 4);
  plan_r.duplicate = Rational(1, 8);
  plan_r.delay = Rational(1, 8);
  const PsioaFactory make_lhs = [tag, plan_l]() -> PsioaPtr {
    return make_faulty_channel(tag, plan_l);
  };
  const PsioaFactory make_rhs = [tag, plan_r]() -> PsioaPtr {
    return make_faulty_channel(tag, plan_r);
  };
  const std::vector<ActionId> alphabet{
      act("send0_" + tag), act("send1_" + tag), act("recv0_" + tag),
      act("recv1_" + tag), act("faultdeliver_" + tag)};
  const std::size_t max_len = 7;
  const std::size_t depth = 12;
  TraceInsight f;

  std::vector<AblationRow> rows;
  {
    PsioaPtr lhs = make_lhs();
    PsioaPtr rhs = make_rhs();
    bench::Timer t;
    BestDistinguisher best =
        search_best_word_legacy(*lhs, *rhs, alphabet, max_len, f, depth);
    rows.push_back({"legacy-recursive", 0, t.seconds(), std::move(best)});
  }
  {
    PsioaPtr lhs = make_lhs();
    PsioaPtr rhs = make_rhs();
    bench::Timer t;
    BestDistinguisher best =
        search_best_word(*lhs, *rhs, alphabet, max_len, f, depth);
    rows.push_back({"prefix-shared", 0, t.seconds(), std::move(best)});
  }
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    bench::Timer t;
    BestDistinguisher best = search_best_word_parallel(
        make_lhs, make_rhs, alphabet, max_len, f, depth, pool);
    rows.push_back({"parallel", workers, t.seconds(), std::move(best)});
  }

  const double legacy_seconds = rows.front().seconds;
  const BestDistinguisher& ref = rows.front().best;
  bool ok = true;
  bench::print_row({"engine", "workers", "seconds", "speedup", "eps",
                    "words", "prefix-hits"},
                   17);
  for (const AblationRow& r : rows) {
    const bool same = r.best.word == ref.word && r.best.eps == ref.eps &&
                      r.best.words_evaluated == ref.words_evaluated;
    ok = ok && same;
    char spd[32];
    std::snprintf(spd, sizeof spd, "%.2fx",
                  r.seconds > 0.0 ? legacy_seconds / r.seconds : 0.0);
    char sec[32];
    std::snprintf(sec, sizeof sec, "%.3f", r.seconds);
    bench::print_row({r.engine, std::to_string(r.workers), sec, spd,
                      r.best.eps.to_string(),
                      std::to_string(r.best.words_evaluated),
                      std::to_string(r.best.stats.prefix_hits)},
                     17);
  }
  // Prefix sharing must actually fire -- the speedup claim rests on it.
  ok = ok && rows[1].best.stats.prefix_hits > 0;
  ok = ok && ref.eps > Rational(0);
  out_rows = std::move(rows);
  return bench::verdict(
      ok, "E13b: every engine agrees with the recursive reference");
}

/// One fork: s0 branches uniformly (internal action) into `width` mid
/// states that all emit the same tick output back to s0 -- the mids are
/// mutually bisimilar by construction, so the quotient collapses each
/// fork to 2 blocks and the product of two forks from (1+width)^2
/// states to 4.
PsioaPtr make_fork(const std::string& tag, std::size_t width) {
  auto fork = std::make_shared<ExplicitPsioa>("fork_" + tag);
  const ActionId a_branch = act("branch_" + tag);
  const ActionId a_tick = act("tick_" + tag);
  const State s0 = fork->add_state("idle");
  Signature sig0;
  sig0.internal = {a_branch};
  fork->set_signature(s0, sig0);
  fork->set_start(s0);
  Signature sigm;
  sigm.out = {a_tick};
  StateDist spread;
  for (std::size_t i = 0; i < width; ++i) {
    const State mid = fork->add_state("mid" + std::to_string(i));
    fork->set_signature(mid, sigm);
    fork->add_step(mid, a_tick, s0);
    spread.add(mid, Rational(1, static_cast<std::int64_t>(width)));
  }
  fork->add_transition(s0, a_branch, spread);
  fork->validate();
  return fork;
}

int run_e13c(std::vector<QuotientRow>& out_rows) {
  bench::print_header(
      "E13c: quotient-reduction ablation (raw vs bisimulation quotient)",
      "identical exact f-dist; >= 2x fewer frames on the interleaving-"
      "heavy fork product");
  const std::size_t width = 4;
  const std::size_t depth = 6;
  const PsioaFactory make_sys = [width]() -> PsioaPtr {
    return compose(make_fork("e13q_a", width), make_fork("e13q_b", width));
  };
  TraceInsight f;
  std::vector<QuotientRow> rows;

  ExactDisc<Perception> want;
  {
    PsioaPtr sys = make_sys();
    UniformScheduler sched(depth);
    ConeStats stats;
    bench::Timer t;
    want = exact_fdist(*sys, sched, f, depth, &stats);
    rows.push_back({"unreduced", 0, t.seconds(), stats.frames_pushed, 0, 0});
  }
  bool ok = true;
  {
    PsioaPtr sys = make_sys();
    UniformScheduler sched(depth);
    ConeStats stats;
    bench::Timer t;
    // The reduction cost (freeze + partition + quotient) is inside the
    // timed region: the speedup column is end to end, not best case.
    const auto red = reduce_for_enumeration(*sys, depth,
                                            ReductionPolicy::bisimulation());
    ok = ok && red.has_value();
    if (red.has_value()) {
      const ExactDisc<Perception> got =
          exact_fdist(*red->view, sched, f, depth, &stats);
      ok = ok && got == want;
      rows.push_back({"reduced", 0, t.seconds(), stats.frames_pushed,
                      red->states, red->blocks});
    }
  }
  for (std::size_t workers : {2u, 4u}) {
    ThreadPool pool(workers);
    ParallelConeEngine engine(make_sys, [depth]() -> SchedulerPtr {
      return std::make_shared<UniformScheduler>(depth);
    }, ReductionPolicy::bisimulation());
    WarmupPlan plan;
    plan.episodes = 0;
    plan.horizon = depth;
    bench::Timer t;
    engine.prepare(plan, depth);
    const ExactDisc<Perception> got = engine.exact_fdist(f, depth, pool);
    ok = ok && got == want && engine.reduced();
    const ConeStats& s = engine.last_stats();
    rows.push_back({"reduced", workers, t.seconds(), s.frames_pushed,
                    s.quotient_states, s.quotient_blocks});
  }

  bench::print_row({"mode", "workers", "seconds", "frames", "states",
                    "blocks", "reduction"},
                   12);
  for (const QuotientRow& r : rows) {
    char sec[32];
    std::snprintf(sec, sizeof sec, "%.4f", r.seconds);
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.1fx",
                  r.blocks > 0 ? static_cast<double>(r.states) /
                                     static_cast<double>(r.blocks)
                               : 1.0);
    bench::print_row({r.mode, std::to_string(r.workers), sec,
                      std::to_string(r.frames_pushed),
                      std::to_string(r.states), std::to_string(r.blocks),
                      ratio},
                     12);
  }
  // The acceptance claim: the quotient enumerates at least 2x fewer
  // frames than the raw product, serial row vs serial row.
  ok = ok && rows.size() >= 2 &&
       rows[0].frames_pushed >= 2 * rows[1].frames_pushed &&
       rows[1].blocks > 0 && rows[1].blocks < rows[1].states;
  out_rows = std::move(rows);
  return bench::verdict(
      ok,
      "E13c: quotient preserves the exact f-dist with >= 2x fewer frames");
}

int run_all() {
  const int r1 = run();
  std::vector<AblationRow> rows;
  const int r2 = run_e13b(rows);
  std::vector<QuotientRow> qrows;
  const int r3 = run_e13c(qrows);
  if (!rows.empty()) write_bench_exact_json(rows, qrows);
  std::printf("BENCH_exact.json written\n");
  if (r1 != 0) return r1;
  return r2 != 0 ? r2 : r3;
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run_all(); }
