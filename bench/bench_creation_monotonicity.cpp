// E11 -- monotonicity of implementation w.r.t. automaton creation
// (Section 4.4: the creation-oblivious scheduler property the paper
// imports from [7] and plans to lift to secure emulation).
//
// Two PCA X_A and X_B differ only in which automaton they create at run
// time: X_A spawns A (a p-biased responder), X_B spawns B (a q-biased
// one). Under creation-oblivious (fully off-line) schedulers,
// eps(E||X_A, E||X_B) must not exceed eps(E||A, E||B) = |p - q| -- the
// wrapping PCA cannot amplify the difference of what it creates.

#include "bench_util.hpp"
#include "impl/balance.hpp"
#include "pca/dynamic_pca.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "test_util_bench.hpp"

namespace cdse {
namespace {

/// PCA that spawns the given automaton on `spawn_<tag>` (driven by the
/// environment), then lets it run.
std::shared_ptr<DynamicPca> make_spawner(const std::string& name,
                                         const std::string& tag,
                                         PsioaPtr payload) {
  auto reg = std::make_shared<AutomatonRegistry>();
  auto hub = std::make_shared<ExplicitPsioa>("hub_" + name);
  const ActionId a_spawn = act("spawn_" + tag);
  const State q = hub->add_state("hub");
  hub->set_start(q);
  Signature sig;
  sig.in = {a_spawn};
  hub->set_signature(q, sig);
  hub->add_step(q, a_spawn, q);
  hub->validate();
  const Aid hub_id = reg->add(hub);
  const Aid payload_id = reg->add(std::move(payload));
  CreationPolicy cp = [payload_id, a_spawn](const Configuration& cfg,
                                            ActionId a) {
    std::vector<Aid> phi;
    if (a == a_spawn && !cfg.contains(payload_id)) phi.push_back(payload_id);
    return phi;
  };
  return std::make_shared<DynamicPca>(name, std::move(reg),
                                      std::vector<Aid>{hub_id}, cp,
                                      no_hiding());
}

int run() {
  bench::print_header(
      "E11: monotonicity of implementation w.r.t. creation (Section 4.4)",
      "A <= B with eps  ==>  X_A <= X_B with at most eps, X_* creating "
      "A/B at run time");
  bench::print_row({"p", "q", "eps(A,B)", "eps(X_A,X_B)", "<=?"}, 14);
  bool ok = true;
  for (int ip = 0; ip <= 8; ip += 2) {
    for (int iq = ip; iq <= 8; iq += 3) {
      const Rational p(ip, 8);
      const Rational q(iq, 8);
      const std::string tag =
          "e11_" + std::to_string(ip) + "_" + std::to_string(iq);
      auto env = make_probe_env_matching(
          "env_" + tag, {act("spawn_" + tag), act("go_" + tag)},
          acts({"no_" + tag}), act("yes_" + tag), act("acc_" + tag));
      // Direct pair: E || A vs E || B (no spawn step in the script).
      auto env_direct = make_probe_env_matching(
          "envd_" + tag, {act("go_" + tag)}, acts({"no_" + tag}),
          act("yes_" + tag), act("acc_" + tag));
      auto a = bench_bern(tag + "_A", tag, p);
      auto b = bench_bern(tag + "_B", tag, q);
      UniformScheduler sched(10, true);
      AcceptInsight f(act("acc_" + tag));
      auto da = compose(env_direct, a);
      auto db = compose(env_direct, b);
      const Rational eps_direct =
          exact_balance_epsilon(*da, sched, *db, sched, f, 12);

      // Dynamic pair: E || X_A vs E || X_B.
      auto xa = make_spawner("XA_" + tag, tag,
                             bench_bern(tag + "_A2", tag, p));
      auto xb = make_spawner("XB_" + tag, tag,
                             bench_bern(tag + "_B2", tag, q));
      auto la = compose(env, PsioaPtr(xa));
      auto lb = compose(env, PsioaPtr(xb));
      const Rational eps_dynamic =
          exact_balance_epsilon(*la, sched, *lb, sched, f, 12);

      const bool leq = eps_dynamic <= eps_direct;
      ok = ok && leq;
      bench::print_row({p.to_string(), q.to_string(),
                        eps_direct.to_string(), eps_dynamic.to_string(),
                        leq ? "yes" : "NO"},
                       14);
    }
  }
  return bench::verdict(
      ok, "E11: run-time creation never amplifies the implemented gap");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
