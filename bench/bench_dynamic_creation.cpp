// E9 -- dynamicity (Defs 2.12-2.16, Section 1 motivation): a ledger that
// creates and destroys subchain automata at run time is *exactly* trace
// equivalent to its static pre-instantiated specification, across system
// sizes, while the PCA constraint checker validates every reachable
// prefix. Also reports the cost of the dynamic machinery (enumeration
// wall time, states checked).

#include "bench_util.hpp"
#include "impl/balance.hpp"
#include "pca/check.hpp"
#include "protocols/ledger.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

int run() {
  bench::print_header(
      "E9: run-time creation/destruction vs static composition",
      "TV(dynamic ledger, static spec) == 0 for every size; constraints ok");
  bench::print_row({"n_subchains", "TV", "pca_states", "pca_trans",
                    "t_dyn(s)", "t_stat(s)"},
                   13);
  bool ok = true;
  for (std::uint32_t n = 1; n <= 4; ++n) {
    const LedgerSystem sys =
        make_ledger_system(n, "e9n" + std::to_string(n));
    const PcaCheckResult check = check_pca_constraints(*sys.dynamic, 6);
    ok = ok && check.ok;

    UniformScheduler sched(6, /*local_only=*/true);
    TraceInsight f;
    bench::Timer td;
    const auto dyn = exact_fdist(*sys.dynamic, sched, f, 8);
    const double t_dyn = td.seconds();
    bench::Timer ts;
    const auto stat = exact_fdist(*sys.static_spec, sched, f, 8);
    const double t_stat = ts.seconds();
    const Rational tv = balance_distance(dyn, stat);
    ok = ok && tv == Rational(0);
    char tds[32], tss[32];
    std::snprintf(tds, sizeof tds, "%.4f", t_dyn);
    std::snprintf(tss, sizeof tss, "%.4f", t_stat);
    bench::print_row({std::to_string(n), tv.to_string(),
                      std::to_string(check.states_checked),
                      std::to_string(check.transitions_checked), tds, tss},
                     13);
  }

  // Destruction really happens: after close, the configuration shrinks.
  const LedgerSystem sys = make_ledger_system(1, "e9d");
  DynamicPca& x = *sys.dynamic;
  State q = x.start_state();
  const std::size_t before = x.config(q).size();
  q = x.transition(q, act("open1_e9d")).support()[0];
  const std::size_t opened = x.config(q).size();
  q = x.transition(q, act("close1_e9d")).support()[0];
  const std::size_t closed = x.config(q).size();
  std::printf("lifecycle config sizes: start %zu -> open %zu -> close %zu\n",
              before, opened, closed);
  ok = ok && before == 1 && opened == 2 && closed == 1;
  return bench::verdict(ok, "E9: dynamic == static, creation/destruction live");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
