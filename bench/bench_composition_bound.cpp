// E1/E2 -- Lemma 4.3 (B.1) and Lemma B.2: composition of b1-, b2-bounded
// automata is c_comp*(b1+b2)-bounded.
//
// We build explicit "counter" automata whose description size grows with
// a size parameter (longer state labels, more states), measure the
// empirical bound b(.) of each part and of their composition with the
// instrumented machines of Def 4.1/4.2, and fit b(A1||A2) ~ c*(b1+b2).
// The lemma predicts a line through the origin with modest constant c;
// we report the fitted c_comp and R^2 and check the pointwise bound with
// c = 4 (the pairing scheme doubles representation lengths once plus
// separator overhead).

#include <cstdint>

#include "bench_util.hpp"
#include "bounded/cost.hpp"
#include "pca/dynamic_pca.hpp"
#include "pca/pca_compose.hpp"
#include "psioa/compose.hpp"
#include "psioa/explicit_psioa.hpp"
#include "util/stats.hpp"

namespace cdse {
namespace {

/// Cyclic counter automaton with `n` states and label padding `pad`.
PsioaPtr make_counter(const std::string& tag, std::size_t n,
                      std::size_t pad) {
  auto a = std::make_shared<ExplicitPsioa>("counter_" + tag);
  const ActionId inc = act("inc_" + tag);
  const ActionId obs = act("obs_" + tag);
  std::vector<State> states;
  const std::string padding(pad, 'x');
  for (std::size_t i = 0; i < n; ++i) {
    states.push_back(a->add_state("c" + std::to_string(i) + padding));
  }
  a->set_start(states[0]);
  for (std::size_t i = 0; i < n; ++i) {
    Signature sig;
    sig.in = {inc};
    sig.out = {obs};
    a->set_signature(states[i], sig);
    a->add_step(states[i], inc, states[(i + 1) % n]);
    a->add_step(states[i], obs, states[i]);
  }
  a->validate();
  return a;
}

int run_psioa_table() {
  bench::print_header(
      "E1: composition bound for PSIOA (Lemma 4.3 / B.1)",
      "b(A1||A2) <= c_comp * (b(A1) + b(A2)), c_comp modest constant");
  bench::print_row({"size", "b(A1)", "b(A2)", "b1+b2", "b(A1||A2)",
                    "ratio"});
  std::vector<double> xs;
  std::vector<double> ys;
  bool ok = true;
  for (std::size_t size = 2; size <= 20; size += 3) {
    auto a1 = make_counter("e1a" + std::to_string(size), size, size);
    auto a2 = make_counter("e1b" + std::to_string(size), size + 1,
                           2 * size);
    const std::uint64_t b1 = profile_psioa(*a1, 4).b();
    const std::uint64_t b2 = profile_psioa(*a2, 4).b();
    auto comp = compose(a1, a2);
    const std::uint64_t bc = profile_psioa(*comp, 4).b();
    const double ratio =
        static_cast<double>(bc) / static_cast<double>(b1 + b2);
    xs.push_back(static_cast<double>(b1 + b2));
    ys.push_back(static_cast<double>(bc));
    ok = ok && ratio <= 4.0;
    bench::print_row({std::to_string(size), std::to_string(b1),
                      std::to_string(b2), std::to_string(b1 + b2),
                      std::to_string(bc), std::to_string(ratio)});
  }
  const LinearFit fit = fit_line(xs, ys);
  std::printf("fitted c_comp = %.3f (intercept %.1f, R^2 = %.4f)\n",
              fit.slope, fit.intercept, fit.r2);
  ok = ok && fit.r2 > 0.95 && fit.slope <= 4.0;
  return bench::verdict(ok, "E1: linear in (b1+b2) with c_comp <= 4");
}

int run_pca_table() {
  bench::print_header(
      "E2: composition bound for PCA (Lemma B.2)",
      "b(X1||X2) <= c'_comp * (b(X1) + b(X2)) including config machines");
  bench::print_row({"size", "b(X1)", "b(X2)", "b1+b2", "b(X1||X2)",
                    "ratio"});
  std::vector<double> xs;
  std::vector<double> ys;
  bool ok = true;
  for (std::size_t size = 2; size <= 14; size += 3) {
    auto reg = std::make_shared<AutomatonRegistry>();
    const std::string t1 = "e2a" + std::to_string(size);
    const std::string t2 = "e2b" + std::to_string(size);
    const Aid a1 = reg->add(make_counter(t1, size, size));
    const Aid a2 = reg->add(make_counter(t2, size, 2 * size));
    auto x1 = std::make_shared<DynamicPca>("x_" + t1, reg,
                                           std::vector<Aid>{a1});
    auto x2 = std::make_shared<DynamicPca>("x_" + t2, reg,
                                           std::vector<Aid>{a2});
    const std::uint64_t b1 = profile_pca(*x1, 3).b();
    const std::uint64_t b2 = profile_pca(*x2, 3).b();
    auto comp = compose_pca(x1, x2);
    const std::uint64_t bc = profile_pca(*comp, 3).b();
    const double ratio =
        static_cast<double>(bc) / static_cast<double>(b1 + b2);
    xs.push_back(static_cast<double>(b1 + b2));
    ys.push_back(static_cast<double>(bc));
    ok = ok && ratio <= 4.0;
    bench::print_row({std::to_string(size), std::to_string(b1),
                      std::to_string(b2), std::to_string(b1 + b2),
                      std::to_string(bc), std::to_string(ratio)});
  }
  const LinearFit fit = fit_line(xs, ys);
  std::printf("fitted c'_comp = %.3f (intercept %.1f, R^2 = %.4f)\n",
              fit.slope, fit.intercept, fit.r2);
  ok = ok && fit.r2 > 0.9 && fit.slope <= 4.0;
  return bench::verdict(ok, "E2: linear in (b1+b2) with c'_comp <= 4");
}

}  // namespace
}  // namespace cdse

int main() {
  return cdse::run_psioa_table() + cdse::run_pca_table();
}
