// E12 -- dynamic secure emulation end-to-end (Def 4.26 on PCA): a MAC
// session *service* that creates sessions on demand and garbage-collects
// them secure-emulates its ideal counterpart with per-session epsilon
// exactly 2^-k_i -- the paper's UC-style dynamic-invocation scenario.

#include "bench_util.hpp"
#include "crypto/service.hpp"
#include "pca/check.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

namespace cdse {
namespace {

int run() {
  bench::print_header(
      "E12: dynamic secure emulation of a session service (Def 4.26 + PCA)",
      "real service <=_SE ideal service; eps(attack session i) == 2^-k_i");
  bench::print_row({"sessions", "attack", "eps", "expected", "match?",
                    "pca_ok"},
                   13);
  bool ok = true;
  for (std::size_t n = 1; n <= 3; ++n) {
    const std::string tag = "e12n" + std::to_string(n);
    std::vector<std::uint32_t> ks;
    for (std::size_t i = 0; i < n; ++i) {
      ks.push_back(static_cast<std::uint32_t>(i + 2));
    }
    const MacServicePair svc = make_mac_service_pair(ks, tag);
    const bool pca_ok = check_pca_constraints(*svc.real_pca, 5).ok &&
                        check_pca_constraints(*svc.ideal_pca, 5).ok;
    ok = ok && pca_ok;

    ActionSet commands;
    ActionSet watch;
    std::vector<ActionId> script;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string st = tag + "_" + std::to_string(i);
      set::insert(commands, act("forge_" + st));
      set::insert(watch, act("forged_" + st));
      set::insert(watch, act("rejected_" + st));
      script.push_back(act(service_action("open", tag, i)));
      script.push_back(act("auth_" + st));
    }
    const ActionId acc = act("acc_" + tag);
    const PsioaPtr adv = make_sink_adversary(tag + "_adv", {}, commands);
    const PsioaPtr env =
        make_probe_env("env_" + tag, script, watch, acc);

    std::vector<LabeledScheduler> scheds;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string st = tag + "_" + std::to_string(i);
      // Open and auth sessions 0..i, then forge session i and report.
      std::vector<ActionId> w(script.begin(),
                              script.begin() + 2 * (i + 1));
      w.push_back(act("forge_" + st));
      w.push_back(act("forged_" + st));
      w.push_back(acc);
      scheds.push_back(
          {"attack_" + std::to_string(i),
           std::make_shared<SequenceScheduler>(std::move(w), true)});
    }
    const EmulationReport report = check_secure_emulation(
        svc.real, adv, svc.ideal, adv, {{"probe", env}}, scheds,
        same_scheduler(), AcceptInsight(acc), 6 * n + 8);
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& row : report.impl.rows) {
        if (row.sched != "attack_" + std::to_string(i)) continue;
        const bool match = row.eps == svc.session_advantages[i];
        ok = ok && match;
        bench::print_row({std::to_string(n), row.sched,
                          row.eps.to_string(),
                          svc.session_advantages[i].to_string(),
                          match ? "yes" : "NO", pca_ok ? "yes" : "NO"},
                         13);
      }
    }
  }
  return bench::verdict(
      ok,
      "E12: per-session advantages survive run-time creation/destruction");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
