// E14 -- the role of scheduling in simulation-based security (the
// paper's closing discussion, citing Canetti et al. [5]): how much
// distinguishing power does each scheduler schema actually give an
// environment on the same real/ideal pair?
//
// For the one-time-MAC pair we evaluate four schemas:
//   word      -- canonical off-line attack word (deterministic),
//   task      -- task-schedule in the sense of [3]/[4],
//   priority  -- state-aware deterministic scheduler,
//   uniform   -- maximally non-committal randomized scheduler.
// The first three realize the full 2^-k advantage; the uniform schema
// dilutes it by the probability of even executing the attack -- a
// concrete illustration of why epsilon must be quantified *per schema*.

#include "bench_util.hpp"
#include "crypto/pairs.hpp"
#include "impl/balance.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

namespace cdse {
namespace {

int run() {
  bench::print_header(
      "E14: scheduler-schema ablation on the MAC pair (Section 5 / [5])",
      "deterministic schemas realize 2^-k; uniform dilutes it");
  bench::print_row({"k", "schema", "eps", "vs 2^-k"}, 14);
  bool ok = true;
  for (std::uint32_t k : {2u, 3u}) {
    const std::string tag = "e14k" + std::to_string(k);
    const RealIdealPair pair = make_otmac_pair(k, tag);
    auto adv =
        make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto lhs = compose(env, hidden_adversary_composition(pair.real, adv));
    auto rhs = compose(env, hidden_adversary_composition(pair.ideal, adv));
    AcceptInsight f(act("acc_" + tag));
    const Rational closed = pair.exact_advantage;

    std::vector<std::pair<std::string, SchedulerPtr>> schemas;
    schemas.emplace_back(
        "word", std::make_shared<SequenceScheduler>(
                    std::vector<ActionId>{act("auth_" + tag),
                                          act("forge_" + tag),
                                          act("forged_" + tag),
                                          act("acc_" + tag)},
                    true));
    schemas.emplace_back(
        "task", std::make_shared<TaskScheduler>(
                    std::vector<ActionSet>{
                        acts({"auth_" + tag}), acts({"forge_" + tag}),
                        acts({"forged_" + tag, "rejected_" + tag}),
                        acts({"acc_" + tag})},
                    true));
    // forge stays enabled forever (the sink adversary self-loops), so it
    // must rank *below* the report/accept actions or it starves them.
    schemas.emplace_back(
        "priority",
        std::make_shared<PriorityScheduler>(
            std::vector<ActionId>{act("auth_" + tag), act("forged_" + tag),
                                  act("acc_" + tag), act("forge_" + tag)},
            6, true));
    schemas.emplace_back("uniform",
                         std::make_shared<UniformScheduler>(6, true));

    for (const auto& [label, sched] : schemas) {
      const Rational eps =
          exact_balance_epsilon(*lhs, *sched, *rhs, *sched, f, 10);
      const std::string rel = eps == closed ? "equal"
                              : eps < closed ? "diluted"
                                             : "EXCEEDS";
      if (label == "uniform") {
        ok = ok && eps < closed && eps > Rational(0);
      } else {
        ok = ok && eps == closed;
      }
      bench::print_row({std::to_string(k), label, eps.to_string(), rel},
                       14);
    }
  }
  return bench::verdict(
      ok, "E14: schema choice determines realizable epsilon");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
