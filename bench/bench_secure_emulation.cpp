// E7 -- Theorem 4.30: composability of dynamic secure emulation.
//
// b real/ideal pairs with advantages 2^-k_i are composed; a composite
// adversary attacks each component in turn. Per the theorem, the
// composite real system secure-emulates the composite ideal one with
// epsilon within the per-pair budget: each attack strategy recovers
// exactly its component's advantage and never more, for b = 1..4.

#include "bench_util.hpp"
#include "crypto/pairs.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

namespace cdse {
namespace {

SchedulerPtr word_sched(std::vector<ActionId> w) {
  return std::make_shared<SequenceScheduler>(std::move(w), true);
}

int run() {
  bench::print_header(
      "E7: composability of secure emulation (Theorem 4.30)",
      "b-fold composition: eps(attack_i) == 2^-k_i; max eps == max_i 2^-k_i");
  bench::print_row({"b", "attack", "eps", "expected", "match?"}, 16);
  bool ok = true;
  for (std::uint32_t b = 1; b <= 4; ++b) {
    const std::string base = "e7b" + std::to_string(b) + "_";
    std::vector<RealIdealPair> pairs;
    std::vector<StructuredPsioa> reals;
    std::vector<StructuredPsioa> ideals;
    ActionSet commands;
    for (std::uint32_t i = 0; i < b; ++i) {
      const std::string tag = base + std::to_string(i);
      pairs.push_back(make_otmac_pair(i + 2, tag));
      reals.push_back(pairs.back().real);
      ideals.push_back(pairs.back().ideal);
      set::insert(commands, act("forge_" + tag));
    }
    const StructuredPsioa real_hat = compose_structured(reals);
    const StructuredPsioa ideal_hat = compose_structured(ideals);
    const PsioaPtr adv =
        make_sink_adversary(base + "adv", {}, commands);

    // One environment that scripts every auth and watches every forged.
    std::vector<ActionId> script;
    ActionSet watch;
    for (std::uint32_t i = 0; i < b; ++i) {
      const std::string tag = base + std::to_string(i);
      script.push_back(act("auth_" + tag));
      set::insert(watch, act("forged_" + tag));
      set::insert(watch, act("rejected_" + tag));
    }
    const ActionId acc = act("acc_" + base);
    const PsioaPtr env =
        make_probe_env("env_" + base, script, watch, acc);

    // Attack strategy per component: run all auths, then forge component
    // i and report.
    std::vector<LabeledScheduler> scheds;
    for (std::uint32_t i = 0; i < b; ++i) {
      const std::string tag = base + std::to_string(i);
      std::vector<ActionId> w = script;
      w.push_back(act("forge_" + tag));
      w.push_back(act("forged_" + tag));
      w.push_back(acc);
      scheds.push_back({"attack_" + std::to_string(i),
                        word_sched(std::move(w))});
    }
    const EmulationReport report = check_secure_emulation(
        real_hat, adv, ideal_hat, adv, {{"probe", env}}, scheds,
        same_scheduler(), AcceptInsight(acc), 4 * b + 8);

    Rational expected_max;
    for (std::uint32_t i = 0; i < b; ++i) {
      const Rational expected = pairs[i].exact_advantage;
      if (expected > expected_max) expected_max = expected;
      for (const auto& row : report.impl.rows) {
        if (row.sched != "attack_" + std::to_string(i)) continue;
        const bool match = row.eps == expected;
        ok = ok && match;
        bench::print_row({std::to_string(b), row.sched,
                          row.eps.to_string(), expected.to_string(),
                          match ? "yes" : "NO"},
                         16);
      }
    }
    ok = ok && report.max_eps == expected_max;
    Rational budget;
    for (const auto& p : pairs) budget += p.exact_advantage;
    ok = ok && report.max_eps <= budget;
    std::printf("b=%u: max eps %s, theorem budget (sum) %s\n", b,
                report.max_eps.to_string().c_str(),
                budget.to_string().c_str());
  }
  return bench::verdict(
      ok, "E7: per-component advantages exact, composite within budget");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
