// E15 -- composition in anger (Lemma 4.13 on a real protocol): the Blum
// coin toss built over the real commitment vs over the ideal one. The
// composability bound says the protocol inherits at most the
// commitment's epsilon; the measured inherited bias is exactly half of
// it (the equivocation only matters when the honest bit lands against
// the corrupt committer), and the honest baseline is exactly fair.

#include "bench_util.hpp"
#include "impl/balance.hpp"
#include "protocols/cointoss.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

SchedulerPtr driver(const std::string& tag) {
  return std::make_shared<PriorityScheduler>(
      std::vector<ActionId>{
          act("toss_" + tag), act("commit0_" + tag), act("pickb_" + tag),
          act("announceB0_" + tag), act("announceB1_" + tag),
          act("flipcmd_" + tag), act("reveal_" + tag),
          act("open0_" + tag), act("open1_" + tag),
          act("result0_" + tag), act("result1_" + tag),
          act("acc_" + tag)},
      14, /*local_only=*/true);
}

int run() {
  bench::print_header(
      "E15: Blum coin toss over the commitment (Lemma 4.13 case study)",
      "eps(toss_real, toss_ideal) == 2^-(k+1) == eps(commitment)/2 <= "
      "commitment budget");
  bench::print_row({"k", "com_eps", "P_real[1]", "P_ideal[1]",
                    "toss_eps", "expected", "<=budget?"},
                   12);
  bool ok = true;
  for (std::uint32_t k = 1; k <= 6; ++k) {
    ok = bench::guarded_row(std::to_string(k), [&] {
      const std::string tag = "e15k" + std::to_string(k);
      const CoinTossPair ct = make_cointoss_pair(k, tag);
      const PsioaPtr biaser = make_biaser_adversary(tag);
      auto env = make_probe_env_matching(
          "env_" + tag, {act("toss_" + tag)}, acts({"result0_" + tag}),
          act("result1_" + tag), act("acc_" + tag));
      auto real_sys = compose(env, compose(ct.real.ptr(), biaser));
      auto ideal_sys = compose(env, compose(ct.ideal.ptr(), biaser));
      const SchedulerPtr sched = driver(tag);
      AcceptInsight f(act("acc_" + tag));
      const auto rd = exact_fdist(*real_sys, *sched, f, 24);
      const auto id = exact_fdist(*ideal_sys, *sched, f, 24);
      const Rational eps = balance_distance(rd, id);
      const bool match = eps == ct.exact_bias &&
                         eps <= ct.commitment_advantage &&
                         id.mass("1") == Rational(1, 2);
      bench::print_row({std::to_string(k),
                        ct.commitment_advantage.to_string(),
                        rd.mass("1").to_string(), id.mass("1").to_string(),
                        eps.to_string(), ct.exact_bias.to_string(),
                        match ? "yes" : "NO"},
                       12);
      return match;
    }, 12) && ok;
  }
  return bench::verdict(
      ok, "E15: protocol inherits exactly half the commitment epsilon");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
