// E4 -- Def 3.6 balance + Theorem 4.16 transitivity:
// eps13 <= eps12 + eps23 on every chain A1 <= A2 <= A3, with equality on
// monotone chains (the paper's additive epsilon accounting is tight).

#include "bench_util.hpp"
#include "impl/implementation.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "test_util_bench.hpp"

namespace cdse {
namespace {

int run() {
  bench::print_header(
      "E4: transitivity of approximate implementation (Theorem 4.16)",
      "eps(A1,A3) <= eps(A1,A2) + eps(A2,A3); equality on monotone chains");
  bench::print_row({"p1", "p2", "p3", "eps12", "eps23", "eps13",
                    "sum", "tight?"});
  bool ok = true;
  int tight = 0;
  int total = 0;
  for (int i1 = 0; i1 <= 8; i1 += 2) {
    for (int i2 = 0; i2 <= 8; i2 += 2) {
      for (int i3 = 0; i3 <= 8; i3 += 4) {
        const Rational p1(i1, 8);
        const Rational p2(i2, 8);
        const Rational p3(i3, 8);
        const std::string tag = "e4_" + std::to_string(i1) + "_" +
                                std::to_string(i2) + "_" +
                                std::to_string(i3);
        auto env = make_probe_env_matching(
            "env_" + tag, {act("go_" + tag)}, acts({"no_" + tag}),
            act("yes_" + tag), act("acc_" + tag));
        auto s1 = compose(env, bench_bern(tag + "_1", tag, p1));
        auto s2 = compose(env, bench_bern(tag + "_2", tag, p2));
        auto s3 = compose(env, bench_bern(tag + "_3", tag, p3));
        UniformScheduler sched(8, true);
        const TransitivityRow row = check_transitivity_case(
            *s1, *s2, *s3, sched, AcceptInsight(act("acc_" + tag)), 12);
        ok = ok && row.triangle_holds;
        const bool is_tight = row.eps13 == row.eps12 + row.eps23;
        const bool monotone = (p1 <= p2 && p2 <= p3) ||
                              (p3 <= p2 && p2 <= p1);
        if (monotone) ok = ok && is_tight;
        tight += is_tight ? 1 : 0;
        ++total;
        bench::print_row({p1.to_string(), p2.to_string(), p3.to_string(),
                          row.eps12.to_string(), row.eps23.to_string(),
                          row.eps13.to_string(),
                          (row.eps12 + row.eps23).to_string(),
                          is_tight ? "yes" : "no"},
                         9);
      }
    }
  }
  std::printf("triangle tight on %d / %d chains\n", tight, total);
  return bench::verdict(
      ok, "E4: triangle inequality on all chains, tight on monotone ones");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
