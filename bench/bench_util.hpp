#pragma once
// Shared helpers for the experiment harnesses: fixed-width table printing,
// a monotonic timer, and guarded row execution. Each harness prints the
// rows recorded in EXPERIMENTS.md and exits non-zero if its claim check
// fails, so the bench run doubles as an end-to-end verification pass.
//
// Degradation contract: a harness never aborts mid-table. Per-row work
// runs through guarded_row(); a row whose computation throws (deadline,
// logic error, resource exhaustion) is printed as a partial row carrying
// the error text, the remaining rows still run, and the final verdict is
// FAIL (non-zero exit) -- so a flaky trial costs one row, not the table.

#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

namespace cdse::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("==================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("==================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline int verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok ? 0 : 1;
}

/// Runs one row's computation; `fn` returns whether the row's self-check
/// held. On exception the row degrades to a partial row showing the error
/// and counts as failed, but the table keeps going.
template <typename Fn>
bool guarded_row(const std::string& row_id, Fn&& fn, int width = 14) {
  try {
    return fn();
  } catch (const std::exception& e) {
    print_row({row_id, std::string("PARTIAL: ") + e.what()}, width);
    return false;
  } catch (...) {
    print_row({row_id, "PARTIAL: non-standard exception"}, width);
    return false;
  }
}

}  // namespace cdse::bench
