#pragma once
// Shared helpers for the experiment harnesses: fixed-width table printing
// and a monotonic timer. Each harness prints the rows recorded in
// EXPERIMENTS.md and exits non-zero if its claim check fails, so the
// bench run doubles as an end-to-end verification pass.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace cdse::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("==================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("==================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline int verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok ? 0 : 1;
}

}  // namespace cdse::bench
