// E10 -- engineering baseline: throughput of the execution engines that
// every other experiment stands on. google-benchmark microbenchmarks:
//   - single-thread execution sampling (coin, composed system),
//   - parallel Monte-Carlo f-dist estimation across thread counts,
//   - exact cone enumeration,
//   - composite transition evaluation.

#include <benchmark/benchmark.h>

#include "crypto/pairs.hpp"
#include "pca/check.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"

namespace cdse {
namespace {

void BM_SampleCoinExecution(benchmark::State& state) {
  auto coin = make_coin("e10_a", Rational(1, 2));
  UniformScheduler sched(16);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_execution(*coin, sched, rng, 16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleCoinExecution);

void BM_SampleComposedExecution(benchmark::State& state) {
  const std::string tag = "e10_b";
  const RealIdealPair mac = make_otmac_pair(8, tag);
  auto env = make_probe_env_matching(
      "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
      act("forged_" + tag), act("acc_" + tag));
  auto adv =
      make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
  auto sys = compose(env, compose(mac.real.ptr(), adv));
  UniformScheduler sched(12, true);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_execution(*sys, sched, rng, 12));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleComposedExecution);

void BM_ParallelFdist(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t trials = 20000;
  ThreadPool pool(threads);
  TraceInsight f;
  std::uint64_t seed = 3;
  for (auto _ : state) {
    auto dist = parallel_sample_fdist(
        [] { return make_coin("e10_c", Rational(1, 3)); },
        [] { return std::make_shared<UniformScheduler>(8); }, f, trials,
        seed++, 8, pool);
    benchmark::DoNotOptimize(dist);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * trials));
}
BENCHMARK(BM_ParallelFdist)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ExactConeEnumeration(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  auto coin = make_coin("e10_d", Rational(1, 2));
  UniformScheduler sched(depth);
  TraceInsight f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_fdist(*coin, sched, f, depth));
  }
}
BENCHMARK(BM_ExactConeEnumeration)->Arg(6)->Arg(9)->Arg(12);

void BM_CompositeTransition(benchmark::State& state) {
  const LedgerSystem sys = make_ledger_system(3, "e10_e");
  const State q0 = sys.dynamic->start_state();
  const ActionId open1 = act("open1_e10_e");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.dynamic->transition(q0, open1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompositeTransition);

void BM_PcaConstraintCheck(benchmark::State& state) {
  for (auto _ : state) {
    const LedgerSystem sys = make_ledger_system(2, "e10_f");
    benchmark::DoNotOptimize(check_pca_constraints(*sys.dynamic, 5));
  }
}
BENCHMARK(BM_PcaConstraintCheck);

}  // namespace
}  // namespace cdse

BENCHMARK_MAIN();
