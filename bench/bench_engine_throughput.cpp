// E10 -- engineering baseline: throughput of the execution engines that
// every other experiment stands on. google-benchmark microbenchmarks:
//   - single-thread execution sampling (coin; composed real/ideal pair,
//     with the memoized compiled fast-path cached vs uncached),
//   - parallel Monte-Carlo f-dist estimation across thread counts,
//   - exact cone enumeration,
//   - composite transition evaluation.
//
// Unless the caller passes its own --benchmark_out, results are also
// written machine-readably to BENCH_engine.json in the working
// directory, so the cached/uncached speedup is scriptably comparable
// across revisions.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "crypto/pairs.hpp"
#include "fault/faulty.hpp"
#include "impl/balance.hpp"
#include "impl/implementation.hpp"
#include "pca/check.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/memo.hpp"
#include "psioa/random.hpp"
#include "sched/cone_measure.hpp"
#include "sched/exact_engine.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "util/state_interner.hpp"

// -- allocator traffic meter -------------------------------------------------
// Counting global operator new/delete for this binary only: the E10
// warm-up rows report how many heap allocations (count and bytes) one
// cold warm_automaton + freeze performs on each interner backend. The
// counters are atomic (warm-up itself is single-threaded, but the
// parallel sampling rows run concurrently with nothing -- keep it safe).

namespace {
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t n) {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cdse {
namespace {

void BM_SampleCoinExecution(benchmark::State& state) {
  auto coin = make_coin("e10_a", Rational(1, 2));
  UniformScheduler sched(16);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_execution(*coin, sched, rng, 16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleCoinExecution);

/// Fills the memo/scheduler caches before the timed region so cached
/// rows measure steady-state throughput, not (throughput + first-touch
/// compilation). The warm-up draws from a dedicated stream; the timed
/// loop's stream is untouched, so timed draws are unchanged by warming.
void warm_caches(Psioa& sys, Scheduler& sched, std::size_t max_depth) {
  Xoshiro256 warm_rng(0xbe9cULL);
  for (int i = 0; i < 200; ++i) {
    (void)sample_execution(sys, sched, warm_rng, max_depth);
  }
}

void BM_SampleCoinExecutionMemoView(benchmark::State& state) {
  // Leaf automata are not migrated onto the memo base; memoize() wraps
  // them in a caching view instead. This row prices that wrapper.
  auto coin = memoize(make_coin("e10_a2", Rational(1, 2)));
  UniformScheduler sched(16);
  warm_caches(*coin, sched, 16);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_execution(*coin, sched, rng, 16));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SampleCoinExecutionMemoView);

/// The closed one-time-MAC system of E7: probe environment, sink
/// adversary, and the real or ideal structured protocol stack.
PsioaPtr make_mac_system(const std::string& tag, bool real) {
  const RealIdealPair mac = make_otmac_pair(8, tag);
  auto env = make_probe_env_matching(
      "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
      act("forged_" + tag), act("acc_" + tag));
  auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
  return compose(env,
                 compose(real ? mac.real.ptr() : mac.ideal.ptr(), adv));
}

/// The pre-memoization baseline scheduler: choose() is re-evaluated and
/// recompiled on every step (the Scheduler default), with no per-state
/// row memo -- pair it with set_memoization(false) for the "uncached"
/// rows so both caching layers are off, as before this revision.
class UncachedUniform : public Scheduler {
 public:
  explicit UncachedUniform(std::size_t depth_bound, bool local_only)
      : inner_(depth_bound, local_only) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override {
    return inner_.choose(automaton, alpha);
  }
  std::string name() const override { return "uniform-uncached"; }

 private:
  UniformScheduler inner_;
};

void BM_SampleComposedExecution(benchmark::State& state, bool real,
                                bool cached, const std::string& tag) {
  auto sys = make_mac_system(tag, real);
  sys->set_memoization(cached);
  UniformScheduler cached_sched(12, true);
  UncachedUniform uncached_sched(12, true);
  Scheduler& sched =
      cached ? static_cast<Scheduler&>(cached_sched)
             : static_cast<Scheduler&>(uncached_sched);
  // Both variants warm outside the timed region. Previously the cached
  // rows paid first-touch signature resolution and row compilation
  // *inside* the loop, understating the steady-state cached speedup.
  warm_caches(*sys, sched, 12);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_execution(*sys, sched, rng, 12));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SampleComposedRealCached(benchmark::State& state) {
  BM_SampleComposedExecution(state, true, true, "e10_b");
}
BENCHMARK(BM_SampleComposedRealCached);

void BM_SampleComposedRealUncached(benchmark::State& state) {
  BM_SampleComposedExecution(state, true, false, "e10_b");
}
BENCHMARK(BM_SampleComposedRealUncached);

void BM_SampleComposedIdealCached(benchmark::State& state) {
  BM_SampleComposedExecution(state, false, true, "e10_g");
}
BENCHMARK(BM_SampleComposedIdealCached);

void BM_SampleComposedIdealUncached(benchmark::State& state) {
  BM_SampleComposedExecution(state, false, false, "e10_g");
}
BENCHMARK(BM_SampleComposedIdealUncached);

void BM_ParallelFdist(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t trials = 20000;
  ThreadPool pool(threads);
  TraceInsight f;
  std::uint64_t seed = 3;
  for (auto _ : state) {
    auto dist = parallel_sample_fdist(
        [] { return make_coin("e10_c", Rational(1, 3)); },
        [] { return std::make_shared<UniformScheduler>(8); }, f, trials,
        seed++, 8, pool);
    benchmark::DoNotOptimize(dist);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * trials));
}
BENCHMARK(BM_ParallelFdist)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Resident set size in kB from /proc/self/status, 0 where unavailable;
/// reported as a counter on the snapshot rows to make the one-copy-of-
/// the-tables claim visible next to the throughput numbers.
double rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmRSS:") {
      double kb = 0.0;
      status >> kb;
      return kb;
    }
    status.ignore(1 << 10, '\n');
  }
  return 0.0;
}

/// The MAC system sampled through clone-per-worker fan-out: each chunk
/// builds and warms its own automaton + scheduler instance. Comparison
/// row for the shared-snapshot path below.
void BM_ParallelFdistComposedClones(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t trials = 2000;
  ThreadPool pool(threads);
  TraceInsight f;
  std::uint64_t seed = 4;
  for (auto _ : state) {
    auto dist = parallel_sample_fdist(
        [] { return make_mac_system("e10_h", true); },
        [] { return std::make_shared<UniformScheduler>(12, true); }, f,
        trials, seed++, 12, pool);
    benchmark::DoNotOptimize(dist);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * trials));
}
BENCHMARK(BM_ParallelFdistComposedClones)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Same workload over one shared frozen snapshot: prepare() (warm-up +
/// freeze) runs once outside the timed region, workers are thin views.
void BM_SnapshotParallelFdist(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t trials = 2000;
  ThreadPool pool(threads);
  TraceInsight f;
  ParallelSampler sampler(
      [] { return make_mac_system("e10_i", true); },
      [] { return std::make_shared<UniformScheduler>(12, true); });
  WarmupPlan plan;
  plan.horizon = 12;
  sampler.prepare(plan, 12);
  std::uint64_t seed = 4;
  for (auto _ : state) {
    auto dist = sampler.sample_fdist(f, trials, seed++, 12, pool);
    benchmark::DoNotOptimize(dist);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * trials));
  state.counters["snapshot_states"] =
      static_cast<double>(sampler.snapshot()->state_count());
  state.counters["snapshot_rows"] =
      static_cast<double>(sampler.snapshot()->row_count());
  state.counters["row_overflows"] =
      static_cast<double>(sampler.last_stats().row_overflows);
  state.counters["rss_kb"] = rss_kb();
}
BENCHMARK(BM_SnapshotParallelFdist)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Shared body of the batched-engine rows (E20/E21): the chosen stack
/// over one frozen snapshot, stepped by the batched lockstep engine in
/// the chosen mode. Emits the full BatchStats counter set into the JSON
/// rows -- the amortization pair (action_draws vs row_lookups) plus the
/// block-kernel accounting (rng_blocks / block_draws / singleton_skips /
/// rejection_redraws, all zero in kBatchedPerDraw mode).
void BM_BatchedFdistStack(benchmark::State& state, const PsioaFactory& make,
                          std::size_t depth, SamplingMode mode,
                          bool local_only) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  // 10x the serial snapshot row's trial count: the batched rows measure
  // the draw-kernel regime (the paper's emulation checks want millions
  // of executions), and at 2000 trials the fixed per-round class
  // bookkeeping shared by both kernels hides the kernels' difference.
  const std::size_t trials = 20000;
  ThreadPool pool(threads);
  TraceInsight f;
  ParallelSampler sampler(make, [depth, local_only] {
    return std::make_shared<UniformScheduler>(depth, local_only);
  });
  WarmupPlan plan;
  plan.horizon = depth;
  sampler.prepare(plan, depth);
  std::uint64_t seed = 4;
  for (auto _ : state) {
    auto dist = sampler.sample_fdist(f, trials, seed++, depth, pool, mode);
    benchmark::DoNotOptimize(dist);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * trials));
  const BatchStats& bs = sampler.last_batch_stats();
  state.counters["action_draws"] = static_cast<double>(bs.action_draws);
  state.counters["target_draws"] = static_cast<double>(bs.target_draws);
  state.counters["row_lookups"] = static_cast<double>(bs.row_lookups);
  state.counters["choice_lookups"] = static_cast<double>(bs.choice_lookups);
  state.counters["distinct_execs"] =
      static_cast<double>(bs.distinct_executions);
  state.counters["rng_blocks"] = static_cast<double>(bs.blocks_filled);
  state.counters["block_draws"] = static_cast<double>(bs.block_draws);
  state.counters["singleton_skips"] =
      static_cast<double>(bs.singleton_skips);
  state.counters["rejection_redraws"] =
      static_cast<double>(bs.rejection_redraws);
  state.counters["rss_kb"] = rss_kb();
}

/// The E20 row, pinned to the PR-8 scalar per-draw kernel so it stays
/// the "before" baseline the E21 block-kernel rows are measured against.
void BM_BatchedAliasFdist(benchmark::State& state) {
  BM_BatchedFdistStack(state, [] { return make_mac_system("e10_l", true); },
                       12, SamplingMode::kBatchedPerDraw, /*local_only=*/true);
}
BENCHMARK(BM_BatchedAliasFdist)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// E21: the same MAC workload stepped by the block draw kernel -- wide
/// RNG fills, SoA alias gathers, singleton elision.
void BM_BlockBatchedFdist(benchmark::State& state) {
  BM_BatchedFdistStack(state, [] { return make_mac_system("e10_m", true); },
                       12, SamplingMode::kBatched, /*local_only=*/true);
}
BENCHMARK(BM_BlockBatchedFdist)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// E21, ledger stack: the dynamic-creation PCA ledger ensemble -- wider
/// choice rows and genuinely probabilistic transitions, so the block
/// kernel leans on bulk fills rather than singleton elision here.
void BM_BatchedAliasLedgerFdist(benchmark::State& state) {
  // The non-local uniform scheduler keeps a residual halt slot in every
  // choice row, so the ledger rows exercise genuine bulk fills (the MAC
  // rows above lean on singleton elision instead).
  BM_BatchedFdistStack(state,
                       [] { return make_ledger_system(2, "e10_n").dynamic; },
                       8, SamplingMode::kBatchedPerDraw, /*local_only=*/false);
}
BENCHMARK(BM_BatchedAliasLedgerFdist)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_BlockBatchedLedgerFdist(benchmark::State& state) {
  BM_BatchedFdistStack(state,
                       [] { return make_ledger_system(2, "e10_o").dynamic; },
                       8, SamplingMode::kBatched, /*local_only=*/false);
}
BENCHMARK(BM_BlockBatchedLedgerFdist)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// A state-rich two-component ensemble for the cold warm-up rows. The
/// MAC stack of E7 tops out around twenty composite states, which would
/// price only the interner's fixed costs (first arena chunk, reserved
/// tables); this pair of wide random automata, cross-wired through each
/// other's outputs, gives the BFS warm-up hundreds of composite states
/// to intern -- the per-key regime the arena backend targets.
PsioaPtr make_wide_ensemble(const std::string& tag) {
  Xoshiro256 rng(0x51deULL);
  RandomPsioaConfig ca;
  ca.n_states = 24;
  ca.n_outputs = 3;
  ca.n_internals = 1;
  RandomPsioaConfig cb = ca;
  ca.input_candidates = acts(
      {"rout0_" + tag + "b", "rout1_" + tag + "b", "rout2_" + tag + "b"});
  cb.input_candidates = acts(
      {"rout0_" + tag + "a", "rout1_" + tag + "a", "rout2_" + tag + "a"});
  auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
  auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
  return compose(PsioaPtr(a), PsioaPtr(b));
}

/// Cold warm-up + freeze on a chosen interner backend: every iteration
/// builds a fresh ParallelSampler over the wide ensemble, runs the full
/// BFS warm-up (prepare) and a short parallel sample over the frozen
/// snapshot. This is the E10 row pair behind the arena-interning claim:
/// map vs arena at identical semantics (the differential suite pins
/// draw-for-draw equality), differing only in allocator traffic, probe
/// counts and interner-attributed bytes.
void BM_ColdWarmupFreeze(benchmark::State& state,
                         StateInterner::Backend backend,
                         const std::string& tag) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const StateInterner::Backend prev = StateInterner::default_backend();
  StateInterner::set_default_backend(backend);
  ThreadPool pool(threads);
  TraceInsight f;
  std::uint64_t seed = 6;
  InternStats last{};
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_calls = 0;
  for (auto _ : state) {
    const std::uint64_t b0 =
        g_alloc_bytes.load(std::memory_order_relaxed);
    const std::uint64_t c0 =
        g_alloc_calls.load(std::memory_order_relaxed);
    ParallelSampler sampler(
        [&tag] { return make_wide_ensemble(tag); },
        [] { return std::make_shared<UniformScheduler>(12, true); });
    WarmupPlan plan;
    plan.horizon = 12;
    plan.reserve_states = 600;  // ensemble tops out at 24*24 tuples
    sampler.prepare(plan, 12);
    auto dist = sampler.sample_fdist(f, 500, seed++, 12, pool);
    benchmark::DoNotOptimize(dist);
    alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - b0;
    alloc_calls = g_alloc_calls.load(std::memory_order_relaxed) - c0;
    last = sampler.residue_intern_stats();
  }
  StateInterner::set_default_backend(prev);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["alloc_bytes"] = static_cast<double>(alloc_bytes);
  state.counters["alloc_calls"] = static_cast<double>(alloc_calls);
  state.counters["intern_keys"] = static_cast<double>(last.keys);
  state.counters["intern_bytes"] = static_cast<double>(last.arena_bytes);
  state.counters["intern_chunks"] = static_cast<double>(last.arena_chunks);
  state.counters["intern_probes"] = static_cast<double>(last.probes);
  state.counters["intern_rehashes"] = static_cast<double>(last.rehashes);
  state.counters["rss_kb"] = rss_kb();
}

void BM_ColdWarmupFreezeMap(benchmark::State& state) {
  BM_ColdWarmupFreeze(state, StateInterner::Backend::kMap, "e10_j");
}
BENCHMARK(BM_ColdWarmupFreezeMap)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ColdWarmupFreezeArena(benchmark::State& state) {
  BM_ColdWarmupFreeze(state, StateInterner::Backend::kArena, "e10_k");
}
BENCHMARK(BM_ColdWarmupFreezeArena)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ExactConeEnumeration(benchmark::State& state) {
  // The iterative pending-edge default; the Legacy row below is the
  // recursive reference it replaced (one ExecFragment copy per edge).
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  auto coin = make_coin("e10_d", Rational(1, 2));
  UniformScheduler sched(depth);
  TraceInsight f;
  ConeStats stats;
  for (auto _ : state) {
    stats = ConeStats{};
    benchmark::DoNotOptimize(exact_fdist(*coin, sched, f, depth, &stats));
  }
  state.counters["frames_peak"] = static_cast<double>(stats.frames_peak);
  state.counters["frames_pushed"] = static_cast<double>(stats.frames_pushed);
  state.counters["leaves"] = static_cast<double>(stats.leaves);
}
BENCHMARK(BM_ExactConeEnumeration)->Arg(6)->Arg(9)->Arg(12);

void BM_ExactConeEnumerationLegacy(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  auto coin = make_coin("e10_d2", Rational(1, 2));
  UniformScheduler sched(depth);
  TraceInsight f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_fdist_recursive(*coin, sched, f, depth));
  }
}
BENCHMARK(BM_ExactConeEnumerationLegacy)->Arg(6)->Arg(9)->Arg(12);

void BM_ParallelExactFdist(benchmark::State& state) {
  // Deterministic parallel exact f-dist of a faulty channel (fault
  // branching gives the cone real width): one frozen snapshot, subtree
  // fan-out over the pool. The result is bit-identical at every Arg.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t depth = 9;
  ParallelConeEngine engine(
      [] {
        FaultPlan plan;
        plan.drop = Rational(1, 8);
        plan.duplicate = Rational(1, 8);
        plan.delay = Rational(1, 4);
        return make_faulty_channel("e10_pf", plan);
      },
      [depth] { return std::make_shared<UniformScheduler>(depth); });
  WarmupPlan plan;
  plan.episodes = 0;
  plan.horizon = depth;
  engine.prepare(plan, depth);
  ThreadPool pool(threads);
  TraceInsight f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.exact_fdist(f, depth, pool));
  }
  const ConeStats& s = engine.last_stats();
  state.counters["splits"] = static_cast<double>(s.splits);
  state.counters["frames_pushed"] = static_cast<double>(s.frames_pushed);
  state.counters["leaves"] = static_cast<double>(s.leaves);
}
BENCHMARK(BM_ParallelExactFdist)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_CompositeTransition(benchmark::State& state) {
  const LedgerSystem sys = make_ledger_system(3, "e10_e");
  const State q0 = sys.dynamic->start_state();
  const ActionId open1 = act("open1_e10_e");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.dynamic->transition(q0, open1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompositeTransition);

void BM_PcaConstraintCheck(benchmark::State& state) {
  for (auto _ : state) {
    const LedgerSystem sys = make_ledger_system(2, "e10_f");
    benchmark::DoNotOptimize(check_pca_constraints(*sys.dynamic, 5));
  }
}
BENCHMARK(BM_PcaConstraintCheck);

// -- E22: sequential vs fixed-trial draw accounting --------------------------
// Not a timed microbenchmark: the deliverable is the logical draw count
// of the anytime-valid sequential estimator against the fixed-trial
// reference at equal verdict, on the one-time-MAC implementation check
// (k = 4, exact eps = 1/16 under the forgery word). The rows land as a
// top-level "e22_rows" array in the benchmark JSON so check.sh
// --bench-smoke can gate on the draw-reduction floor.

struct E22Row {
  std::string name;
  double threshold = 0.0;
  std::uint64_t fixed_draws = 0;
  std::uint64_t seq_draws = 0;
  double reduction = 0.0;
  bool verdict_agree = false;
  double estimate = 0.0;
};

std::vector<E22Row> run_e22() {
  const std::string tag = "e22m";
  TraceInsight f;
  ThreadPool pool(8);
  const std::size_t depth = 12;
  const std::size_t budget = std::size_t{1} << 16;
  const RealIdealPair mac = make_otmac_pair(4, tag);
  const PsioaFactory a = [mac] { return mac.real.ptr(); };
  const PsioaFactory b = [mac] { return mac.ideal.ptr(); };
  const std::vector<LabeledPsioaFactory> envs = {
      {"probe", [tag]() -> PsioaPtr {
         auto env = make_probe_env_matching(
             "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
             act("forged_" + tag), act("acc_" + tag));
         auto adv =
             make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
         return compose(env, adv);
       }}};
  const std::vector<LabeledSchedulerFactory> schedulers = {
      {"word", [tag]() -> SchedulerPtr {
         return std::make_shared<SequenceScheduler>(
             std::vector<ActionId>{act("auth_" + tag), act("forge_" + tag),
                                   act("forged_" + tag), act("acc_" + tag)},
             /*local_only=*/true);
       }}};

  std::vector<E22Row> rows;
  const std::pair<const char*, double> grid_cases[] = {
      {"mac_impl_above", 0.03}, {"mac_impl_below", 0.2}};
  for (const auto& [name, thr] : grid_cases) {
    const SampledImplementationReport seq = check_implementation_sampled(
        a, b, envs, schedulers, same_scheduler(), f, depth, pool,
        SequentialPolicy::deciding(thr, budget, 1e-3), 97);
    SequentialPolicy fp = SequentialPolicy::fixed(budget);
    fp.threshold = thr;
    const SampledImplementationReport fixed = check_implementation_sampled(
        a, b, envs, schedulers, same_scheduler(), f, depth, pool, fp, 97);
    E22Row row;
    row.name = name;
    row.threshold = thr;
    row.fixed_draws = fixed.total_draws;
    row.seq_draws = seq.total_draws;
    row.reduction = seq.total_draws > 0
                        ? static_cast<double>(fixed.total_draws) /
                              static_cast<double>(seq.total_draws)
                        : 0.0;
    row.verdict_agree = seq.rows[0].verdict != SeqVerdict::kUndecided &&
                        seq.rows[0].verdict == fixed.rows[0].verdict;
    row.estimate = seq.rows[0].eps;
    rows.push_back(row);
  }

  // Importance splitting: exact prefix strata at depth 2 + conditioned
  // cursors, against the same fixed-trial plain reference.
  const PsioaFactory side_real = [tag] {
    const RealIdealPair pair = make_otmac_pair(4, tag + "s");
    auto env = make_probe_env_matching(
        "env_" + tag + "s", {act("auth_" + tag + "s")},
        acts({"rejected_" + tag + "s"}), act("forged_" + tag + "s"),
        act("acc_" + tag + "s"));
    auto adv = make_sink_adversary("adv_" + tag + "s", {},
                                   acts({"forge_" + tag + "s"}));
    return compose(env, compose(pair.real.ptr(), adv));
  };
  const PsioaFactory side_ideal = [tag] {
    const RealIdealPair pair = make_otmac_pair(4, tag + "s");
    auto env = make_probe_env_matching(
        "env_" + tag + "s", {act("auth_" + tag + "s")},
        acts({"rejected_" + tag + "s"}), act("forged_" + tag + "s"),
        act("acc_" + tag + "s"));
    auto adv = make_sink_adversary("adv_" + tag + "s", {},
                                   acts({"forge_" + tag + "s"}));
    return compose(env, compose(pair.ideal.ptr(), adv));
  };
  const SchedulerFactory word = [tag]() -> SchedulerPtr {
    return std::make_shared<SequenceScheduler>(
        std::vector<ActionId>{
            act("auth_" + tag + "s"), act("forge_" + tag + "s"),
            act("forged_" + tag + "s"), act("acc_" + tag + "s")},
        /*local_only=*/true);
  };
  {
    SequentialPolicy sp = SequentialPolicy::deciding(0.03, budget, 1e-3);
    sp.split_depth = 2;
    const SequentialEpsilon split = sequential_balance_epsilon(
        side_real, word, side_ideal, word, f, sp, 101, depth, pool);
    SequentialPolicy fp = SequentialPolicy::fixed(budget);
    fp.threshold = 0.03;
    const SequentialEpsilon fixed = sequential_balance_epsilon(
        side_real, word, side_ideal, word, f, fp, 101, depth, pool);
    E22Row row;
    row.name = "mac_split_above";
    row.threshold = 0.03;
    row.fixed_draws = fixed.draws;
    row.seq_draws = split.draws;
    row.reduction = split.draws > 0 ? static_cast<double>(fixed.draws) /
                                          static_cast<double>(split.draws)
                                    : 0.0;
    row.verdict_agree = split.verdict != SeqVerdict::kUndecided &&
                        split.verdict == fixed.verdict;
    row.estimate = split.estimate;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

/// Runs the E22 comparison and renders the rows as a JSON array, for
/// injection into the benchmark output file (see main).
std::string e22_rows_json() {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const E22Row& row : run_e22()) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << row.name << "\", \"threshold\": "
       << row.threshold << ", \"fixed_draws\": " << row.fixed_draws
       << ", \"seq_draws\": " << row.seq_draws
       << ", \"reduction\": " << row.reduction << ", \"verdict_agree\": "
       << (row.verdict_agree ? "true" : "false")
       << ", \"estimate\": " << row.estimate << "}";
  }
  os << "\n  ]";
  return os.str();
}

}  // namespace cdse

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // Default machine-readable output unless the caller chose their own.
  std::string out_flag = "--benchmark_out=BENCH_engine.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::string out_path = "BENCH_engine.json";
  bool caller_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--benchmark_out", 0) == 0) {
      caller_out = true;
      const auto eq = arg.find('=');
      if (arg.rfind("--benchmark_out=", 0) == 0 && eq != std::string::npos) {
        out_path = arg.substr(eq + 1);
      }
    }
  }
  if (!caller_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // E22 post-pass: run the sequential-vs-fixed comparison and splice the
  // rows into the JSON report as a top-level "e22_rows" key.
  {
    const std::string rows = cdse::e22_rows_json();
    std::ifstream in(out_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string text = buf.str();
      in.close();
      const auto pos = text.rfind('}');
      if (pos != std::string::npos) {
        text.insert(pos, ",\n  \"e22_rows\": " + rows + "\n");
        std::ofstream out(out_path, std::ios::trunc);
        out << text;
      }
    }
  }
  return 0;
}
