// E5 -- Lemmas 4.13/4.14, Theorem 4.15: implementation is composable.
// Composing any (p3-bounded) context A3 onto both sides of A1 <= A2
// cannot increase the distinguishing epsilon, across contexts of growing
// description size.

#include "bench_util.hpp"
#include "bounded/cost.hpp"
#include "impl/implementation.hpp"
#include "protocols/channel.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "test_util_bench.hpp"

namespace cdse {
namespace {

/// Context of `width` independent coins: description grows linearly.
PsioaPtr make_context(const std::string& tag, std::size_t width) {
  std::vector<PsioaPtr> parts;
  for (std::size_t i = 0; i < width; ++i) {
    parts.push_back(
        make_coin(tag + "_c" + std::to_string(i), Rational(1, 2)));
  }
  if (parts.size() == 1) return parts[0];
  return compose(std::move(parts));
}

int run() {
  bench::print_header(
      "E5: composability of implementation (Lemma 4.13 / Theorem 4.15)",
      "eps(E||A3||A1 vs E||A3||A2) <= eps(E||A1 vs E||A2) for all A3");
  const std::string tag = "e5";
  auto a1 = bench_bern("e5_a1", tag, Rational(1, 8));
  auto a2 = bench_bern("e5_a2", tag, Rational(7, 8));
  auto mk_env = [&] {
    return make_probe_env_matching("env_" + tag, {act("go_" + tag)},
                                   acts({"no_" + tag}), act("yes_" + tag),
                                   act("acc_" + tag));
  };
  const std::vector<LabeledPsioa> envs{{"probe", mk_env()}};
  const std::vector<LabeledScheduler> scheds{
      {"uniform", std::make_shared<UniformScheduler>(8, true)}};
  AcceptInsight f(act("acc_" + tag));
  const auto base = check_implementation(a1, a2, envs, scheds,
                                         same_scheduler(), f, 12);
  std::printf("context-free epsilon: %s\n\n",
              base.max_eps.to_string().c_str());
  bench::print_row({"ctx_width", "b(A3)", "eps_with_ctx", "<=base?"});
  bool ok = true;
  for (std::size_t width = 1; width <= 4; ++width) {
    auto ctx = make_context("e5w" + std::to_string(width), width);
    const std::uint64_t b3 = profile_psioa(*ctx, 3).b();
    const auto with_ctx =
        check_implementation(compose(ctx, a1), compose(ctx, a2), envs,
                             scheds, same_scheduler(), f, 12);
    const bool leq = with_ctx.max_eps <= base.max_eps;
    ok = ok && leq;
    bench::print_row({std::to_string(width), std::to_string(b3),
                      with_ctx.max_eps.to_string(), leq ? "yes" : "NO"});
  }
  return bench::verdict(ok, "E5: no context amplifies epsilon");
}

}  // namespace
}  // namespace cdse

int main() { return cdse::run(); }
