// Quickstart: build two PSIOA, compose them, hide an action, schedule the
// closed system and look at the resulting trace distribution -- the
// 60-second tour of the framework's core vocabulary (Defs 2.1-2.8, 3.1,
// 3.5).
//
//   $ ./example_quickstart

#include <cstdio>

#include "psioa/compose.hpp"
#include "psioa/explicit_psioa.hpp"
#include "psioa/hide.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"

using namespace cdse;

namespace {

// A sender that flips a fair coin and transmits the outcome.
PsioaPtr make_sender() {
  auto s = std::make_shared<ExplicitPsioa>("sender");
  const State idle = s->add_state("idle");
  const State ready0 = s->add_state("ready0");
  const State ready1 = s->add_state("ready1");
  const State done = s->add_state("done");
  s->set_start(idle);

  Signature sig_idle;
  sig_idle.internal = {act("pick")};
  s->set_signature(idle, sig_idle);
  Signature sig_r0;
  sig_r0.out = {act("bit0")};
  s->set_signature(ready0, sig_r0);
  Signature sig_r1;
  sig_r1.out = {act("bit1")};
  s->set_signature(ready1, sig_r1);
  s->set_signature(done, Signature{});

  StateDist pick;
  pick.add(ready0, Rational(1, 2));
  pick.add(ready1, Rational(1, 2));
  s->add_transition(idle, act("pick"), pick);
  s->add_step(ready0, act("bit0"), done);
  s->add_step(ready1, act("bit1"), done);
  s->validate();
  return s;
}

// A receiver that acknowledges whatever bit arrives.
PsioaPtr make_receiver() {
  auto r = std::make_shared<ExplicitPsioa>("receiver");
  const State idle = r->add_state("idle");
  const State got0 = r->add_state("got0");
  const State got1 = r->add_state("got1");
  const State done = r->add_state("done");
  r->set_start(idle);

  Signature sig_idle;
  sig_idle.in = {act("bit0"), act("bit1")};
  r->set_signature(idle, sig_idle);
  Signature sig_g0;
  sig_g0.out = {act("ack0")};
  r->set_signature(got0, sig_g0);
  Signature sig_g1;
  sig_g1.out = {act("ack1")};
  r->set_signature(got1, sig_g1);
  r->set_signature(done, Signature{});

  r->add_step(idle, act("bit0"), got0);
  r->add_step(idle, act("bit1"), got1);
  r->add_step(got0, act("ack0"), done);
  r->add_step(got1, act("ack1"), done);
  r->validate();
  return r;
}

}  // namespace

int main() {
  // 1. Composition (Def 2.18): the bit actions synchronize sender output
  //    with receiver input.
  auto system = compose(make_sender(), make_receiver());
  std::printf("composed system: %s\n", system->name().c_str());
  std::printf("start state:     %s\n",
              system->state_label(system->start_state()).c_str());
  std::printf("start signature: %s\n",
              system->signature(system->start_state()).to_string().c_str());

  // 2. Hiding (Def 2.7): internalize the wire, leaving only the acks.
  auto observed = hide_actions(system, acts({"bit0", "bit1"}));

  // 3. Scheduling (Def 3.1): resolve non-determinism; the closed system
  //    is driven on locally controlled actions only.
  UniformScheduler sched(8, /*local_only=*/true);

  // 4. Exact semantics (Def 3.5): the f-dist under the trace insight.
  TraceInsight f;
  const auto dist = exact_fdist(*observed, sched, f, 10);
  std::printf("\nexact trace distribution:\n");
  for (const auto& [trace, p] : dist.entries()) {
    std::printf("  %-8s %s\n", trace.empty() ? "<empty>" : trace.c_str(),
                p.to_string().c_str());
  }

  // 5. Monte-Carlo agreement: sample the same distribution.
  auto sampler_system = hide_actions(
      compose(make_sender(), make_receiver()), acts({"bit0", "bit1"}));
  const auto sampled = sample_fdist(*sampler_system, sched, f, 100000,
                                    /*seed=*/7, 10);
  std::printf("\nsampled (n=100000):\n");
  for (const auto& [trace, p] : sampled.entries()) {
    std::printf("  %-8s %.4f\n", trace.empty() ? "<empty>" : trace.c_str(),
                p);
  }
  std::printf("\nTV(exact, sampled) = %.5f\n",
              balance_distance(to_double(dist), sampled));
  return 0;
}
