// Dynamic MAC session service: secure emulation with run-time session
// creation and garbage collection -- the paper's dynamic-invocation
// scenario (UC dynamic ITMs / IITM "!" operator) end to end.
//
//   $ ./example_mac_service [n_sessions]

#include <cstdio>
#include <cstdlib>

#include "crypto/service.hpp"
#include "pca/check.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

using namespace cdse;

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  const std::string tag = "ms";
  std::vector<std::uint32_t> ks;
  for (std::size_t i = 0; i < n; ++i) {
    ks.push_back(static_cast<std::uint32_t>(i + 2));
  }
  const MacServicePair svc = make_mac_service_pair(ks, tag);
  svc.real.validate(8);
  svc.ideal.validate(8);

  // Watch one session live and die.
  DynamicPca& x = *svc.real_pca;
  State q = x.start_state();
  std::printf("start:        %s\n",
              x.config(q).to_string(x.registry()).c_str());
  q = x.transition(q, act(service_action("open", tag, 0))).support()[0];
  std::printf("after open_0: %s\n",
              x.config(q).to_string(x.registry()).c_str());
  q = x.transition(q, act("auth_" + tag + "_0")).support()[0];
  q = x.transition(q, act("forge_" + tag + "_0")).entries().back().first;
  q = x.transition(q, x.signature(q).out.front()).support()[0];
  std::printf("after report: %s   (session garbage-collected)\n\n",
              x.config(q).to_string(x.registry()).c_str());

  const PcaCheckResult check = check_pca_constraints(x, 5);
  std::printf("PCA constraints: %s\n",
              check.ok ? "all hold" : check.violation.c_str());

  // Secure emulation per session.
  ActionSet commands;
  ActionSet watch;
  std::vector<ActionId> script;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string st = tag + "_" + std::to_string(i);
    set::insert(commands, act("forge_" + st));
    set::insert(watch, act("forged_" + st));
    set::insert(watch, act("rejected_" + st));
    script.push_back(act(service_action("open", tag, i)));
    script.push_back(act("auth_" + st));
  }
  const ActionId acc = act("acc_" + tag);
  const PsioaPtr adv = make_sink_adversary(tag + "_adv", {}, commands);
  const PsioaPtr env = make_probe_env("env_" + tag, script, watch, acc);

  std::printf("\n%-12s %-10s %-10s\n", "attack", "eps", "expected");
  bool ok = check.ok;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string st = tag + "_" + std::to_string(i);
    std::vector<ActionId> w(script.begin(), script.begin() + 2 * (i + 1));
    w.push_back(act("forge_" + st));
    w.push_back(act("forged_" + st));
    w.push_back(acc);
    const EmulationReport report = check_secure_emulation(
        svc.real, adv, svc.ideal, adv, {{"probe", env}},
        {{"w", std::make_shared<SequenceScheduler>(std::move(w), true)}},
        same_scheduler(), AcceptInsight(acc), 6 * n + 8);
    ok = ok && report.max_eps == svc.session_advantages[i];
    std::printf("session %-4zu %-10s %-10s\n", i,
                report.max_eps.to_string().c_str(),
                svc.session_advantages[i].to_string().c_str());
  }
  std::printf("\nper-session advantages %s run-time creation/destruction\n",
              ok ? "survive" : "DO NOT survive");
  return ok ? 0 : 1;
}
