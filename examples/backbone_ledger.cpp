// Backbone-lite ledger: the blockchain common-prefix shape as an
// implementation distance, plus DOT export of the race automaton.
//
//   $ ./example_backbone_ledger [depth] [adv_num/adv_den]

#include <cstdio>
#include <cstdlib>

#include "protocols/backbone.hpp"
#include "psioa/export.hpp"

using namespace cdse;

int main(int argc, char** argv) {
  const std::uint32_t max_depth =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  std::int64_t num = 1, den = 4;
  if (argc > 2) {
    std::sscanf(argv[2], "%ld/%ld", &num, &den);
  }
  const Rational beta(num, den);
  std::printf("adversary power beta = %s\n\n", beta.to_string().c_str());
  std::printf("%-8s %-22s %-12s\n", "depth", "P[fork] (exact)",
              "approx");
  bool decays = true;
  Rational prev(1);
  for (std::uint32_t d = 1; d <= max_depth; ++d) {
    const Rational p = exact_fork_probability(d, beta);
    std::printf("%-8u %-22s %-12.6f\n", d, p.to_string().c_str(),
                p.to_double());
    decays = decays && p < prev;
    prev = p;
  }
  std::printf("\nfork probability %s with confirmation depth (beta %s "
              "1/2)\n",
              decays ? "decays" : "does NOT decay",
              beta < Rational(1, 2) ? "<" : ">=");

  // Export the depth-2 race automaton for inspection:
  //   dot -Tpng race.dot -o race.png
  auto race = make_confirmation_race("demo", 2, beta);
  std::printf("\nDOT of the depth-2 race automaton:\n%s",
              to_dot(*race).c_str());
  const bool expect_decay = beta < Rational(1, 2);
  return decays == expect_decay ? 0 : 1;
}
