// Dynamic ledger: run-time creation and destruction of subchain automata
// (the paper's Section 1 blockchain motivation, Defs 2.12-2.16).
//
// Walks one execution of the dynamic PCA showing configurations grow and
// shrink, re-verifies the Def 2.16 constraints with the independent
// checker, and compares the dynamic system against its static
// specification -- exactly trace equivalent.
//
//   $ ./example_dynamic_ledger [n_subchains]

#include <cstdio>
#include <cstdlib>

#include "impl/balance.hpp"
#include "pca/check.hpp"
#include "protocols/ledger.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

using namespace cdse;

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
  const std::string tag = "dl";
  const LedgerSystem sys = make_ledger_system(n, tag);
  std::printf("dynamic ledger with %u subchains\n\n", n);

  // A guided walk: open chain 1, run a transaction, close it.
  DynamicPca& x = *sys.dynamic;
  State q = x.start_state();
  auto show = [&](const char* what) {
    std::printf("%-28s config = %s\n", what,
                x.config(q).to_string(x.registry()).c_str());
  };
  show("start:");
  q = x.transition(q, act("open1_" + tag)).support()[0];
  show("after open1 (created):");
  q = x.transition(q, act("tx1_" + tag)).support()[0];
  show("after tx1:");
  q = x.transition(q, act("ack1_" + tag)).support()[0];
  show("after ack1:");
  q = x.transition(q, act("close1_" + tag)).support()[0];
  show("after close1 (destroyed):");

  // Independent verification of the Def 2.16 constraints.
  const PcaCheckResult check = check_pca_constraints(x, 7);
  std::printf("\nPCA constraints (Def 2.16): %s  (%zu states, %zu "
              "transitions checked)\n",
              check.ok ? "all hold" : check.violation.c_str(),
              check.states_checked, check.transitions_checked);

  // Dynamic vs static specification: exact trace equivalence.
  UniformScheduler sched(6, /*local_only=*/true);
  TraceInsight f;
  const auto dyn = exact_fdist(*sys.dynamic, sched, f, 8);
  const auto stat = exact_fdist(*sys.static_spec, sched, f, 8);
  const Rational tv = balance_distance(dyn, stat);
  std::printf("TV(dynamic, static spec) = %s over %zu trace classes\n",
              tv.to_string().c_str(), dyn.support_size());
  return check.ok && tv == Rational(0) ? 0 : 1;
}
