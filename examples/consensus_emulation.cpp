// Consensus emulation: a randomized consensus protocol implements its
// ideal specification with epsilon negligible in the round budget
// (Def 4.12 through the protocol substrate).
//
// BenOrLite resolves disagreement by repeated common-coin rounds; the
// ideal spec resolves it in one step. Under an r-round schedule the only
// observable difference is the 2^-r chance that the protocol is still
// undecided -- a concrete instance of "negligible epsilon in the
// resource bound".
//
//   $ ./example_consensus_emulation [max_rounds]

#include <cstdio>
#include <cstdlib>

#include "impl/balance.hpp"
#include "protocols/consensus.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

using namespace cdse;

int main(int argc, char** argv) {
  const int max_rounds = argc > 1 ? std::atoi(argv[1]) : 8;
  auto benor = make_benor_consensus("ce");
  auto ideal = make_ideal_consensus("ci");

  // Validity under agreement: both propose 1 -> decide 1 surely.
  {
    PriorityScheduler sched({act("proposeA1_ce"), act("proposeB1_ce"),
                             act("round_ce"), act("decide1_ce")},
                            6);
    const Rational p =
        exact_action_probability(*benor, sched, act("decide1_ce"), 10);
    std::printf("validity: P[decide1 | both propose 1] = %s\n",
                p.to_string().c_str());
  }

  // Disagreement: epsilon(r) between protocol and spec.
  std::printf("\n%-8s %-14s %-14s %-10s\n", "rounds", "P[decide0] BenOr",
              "P[decide0] spec", "epsilon");
  bool ok = true;
  for (int r = 1; r <= max_rounds; ++r) {
    PriorityScheduler wb({act("proposeA0_ce"), act("proposeB1_ce"),
                          act("round_ce"), act("decide0_ce")},
                         static_cast<std::size_t>(r) + 3);
    PriorityScheduler wi({act("proposeA0_ci"), act("proposeB1_ci"),
                          act("pick_ci"), act("decide0_ci")},
                         4);
    AcceptInsight fb(act("decide0_ce"));
    AcceptInsight fi(act("decide0_ci"));
    const auto db = exact_fdist(*benor, wb, fb, r + 6);
    const auto di = exact_fdist(*ideal, wi, fi, r + 6);
    const Rational eps = balance_distance(db, di);
    const Rational expected =
        Rational(1, 2) * Rational(1, static_cast<std::int64_t>(1) << r);
    ok = ok && eps == expected;
    std::printf("%-8d %-14s %-14s %s  (expected %s)\n", r,
                db.mass("1").to_string().c_str(),
                di.mass("1").to_string().c_str(), eps.to_string().c_str(),
                expected.to_string().c_str());
  }
  std::printf("\nepsilon halves per extra round: %s\n",
              ok ? "confirmed exactly" : "MISMATCH");
  return ok ? 0 : 1;
}
