// Secure channel: the full simulation-based security workflow on the
// biased-OTP real/ideal pair (Section 4.7-4.9).
//
//   real  = one-time pad whose pad bit is biased by 2^-k
//   ideal = channel leaking a uniform ciphertext
//
// An adversary relays the ciphertext it observes to the environment; the
// environment's acceptance probability gap *is* the emulation epsilon,
// and it equals the pad bias exactly. The example then inserts the dummy
// adversary (Lemma 4.29) and shows the insertion is invisible.
//
//   $ ./example_secure_channel [k]

#include <cstdio>
#include <cstdlib>

#include "crypto/pairs.hpp"
#include "crypto/relay.hpp"
#include "protocols/environment.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"
#include "secure/forward.hpp"

using namespace cdse;

int main(int argc, char** argv) {
  const std::uint32_t k =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;
  const std::string tag = "sc";
  const RealIdealPair pair = make_otp_pair(k, tag);
  pair.real.validate(10);
  pair.ideal.validate(10);
  std::printf("security parameter k = %u  (pad bias 2^-k = %s)\n", k,
              pair.exact_advantage.to_string().c_str());

  // The adversary relays the ciphertext leak into env-visible reports.
  const PsioaPtr relay = make_relay_adversary(
      "relay", {{act("cipher0_" + tag), act("tell0_" + tag)},
                {act("cipher1_" + tag), act("tell1_" + tag)}});
  const AdversaryCheckResult adv_ok =
      check_adversary_for(pair.real, relay, 10);
  std::printf("relay satisfies Def 4.24 for the real channel: %s\n",
              adv_ok.ok ? "yes" : adv_ok.violation.c_str());

  // The environment sends bit 0 and accepts when the relay reports a
  // ciphertext of 1 -- the maximum-likelihood distinguisher.
  const PsioaPtr env = make_probe_env_matching(
      "env", {act("send0_" + tag)}, acts({"tell0_" + tag}),
      act("tell1_" + tag), act("acc_" + tag));

  const EmulationReport report = check_secure_emulation(
      pair.real, relay, pair.ideal, relay, {{"ml-probe", env}},
      {{"uniform", std::make_shared<UniformScheduler>(10, true)}},
      same_scheduler(), AcceptInsight(act("acc_" + tag)), 14);
  std::printf("\nsecure-emulation epsilon (exact): %s\n",
              report.max_eps.to_string().c_str());
  std::printf("closed-form pad bias            : %s\n",
              pair.exact_advantage.to_string().c_str());
  std::printf("match: %s\n",
              report.max_eps == pair.exact_advantage ? "yes" : "NO");

  // Dummy-adversary insertion (Lemma 4.29): rename the adversary
  // vocabulary, interpose Dummy(A, g), mirror the scheduler with
  // Forward^s -- the environment sees exactly the same distribution.
  const PsioaPtr renamed_relay = make_relay_adversary(
      "relay#r", {{act("cipher0_" + tag + "#r"), act("tell0_" + tag)},
                  {act("cipher1_" + tag + "#r"), act("tell1_" + tag)}});
  DummyInsertion ins(pair.real, env, renamed_relay, "#r");
  auto sigma = std::make_shared<UniformScheduler>(10, true);
  const SchedulerPtr sigma2 = ins.forward_scheduler(sigma);
  TraceInsight f;
  const Rational eps_insertion = exact_balance_epsilon(
      ins.left(), *sigma, ins.right(), *sigma2, f, 24);
  std::printf("\ndummy-adversary insertion epsilon: %s (Lemma 4.29 says 0)\n",
              eps_insertion.to_string().c_str());
  const std::size_t q1 = max_schedule_length(ins.left(), *sigma, 30);
  const std::size_t q2 = max_schedule_length(ins.right(), *sigma2, 30);
  std::printf("schedule lengths: q1 = %zu, q2 = %zu (bound 2*q1 = %zu)\n",
              q1, q2, 2 * q1);
  return report.max_eps == pair.exact_advantage &&
                 eps_insertion == Rational(0)
             ? 0
             : 1;
}
