#pragma once
// Relay adversary: converts adversary-facing leaks into
// environment-visible reports.
//
// In simulation-based security the adversary and the environment
// cooperate; an automaton A whose leaks live in AAct is only
// distinguishable if some adversary *relays* what it sees to the
// environment. The relay is a one-slot forwarder (same shape as the
// dummy adversary but with a caller-chosen output alphabet): on input x
// it stores x, then emits relay_map(x) and returns to idle.

#include <string>
#include <utility>
#include <vector>

#include "psioa/psioa.hpp"

namespace cdse {

/// Builds a relay with the given (input -> output) action map. Inputs are
/// typically an automaton's adv_out vocabulary; outputs are fresh
/// env-visible "tell" actions. All inputs stay enabled while relaying
/// (late arrivals overwrite the slot, mirroring Def 4.27's dummy).
PsioaPtr make_relay_adversary(
    const std::string& name,
    const std::vector<std::pair<ActionId, ActionId>>& relay_map);

}  // namespace cdse
