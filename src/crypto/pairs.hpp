#pragma once
// Real/ideal structured functionality pairs with closed-form advantage.
//
// Secure emulation compares a real protocol against an ideal
// functionality through any environment's eyes. These factory functions
// build small PSIOA pairs whose *exact* best-case distinguishing
// advantage is known in closed form (a dyadic rational in the security
// parameter k), which is what lets experiments E7/E8 compare measured
// epsilon against ground truth:
//
//   one-time MAC   -- adversary forgery succeeds w.p. exactly 2^-k in the
//                     real scheme, never in the ideal one;
//   OTP channel    -- the real pad bit is biased by exactly 2^-k, the
//                     ideal ciphertext is uniform; a relaying adversary
//                     converts the bias into environment advantage 2^-k;
//   commitment     -- the real scheme loses binding w.p. exactly 2^-k
//                     when the adversary requests an equivocation;
//   perfect OTP    -- real == ideal distributionally; advantage 0.
//
// Every action name carries an instance tag so independently built pairs
// are pairwise compatible and compose (Theorem 4.30's setting).

#include <cstdint>
#include <string>

#include "secure/structured.hpp"
#include "util/rational.hpp"

namespace cdse {

struct RealIdealPair {
  StructuredPsioa real;
  StructuredPsioa ideal;
  /// Exact advantage of the canonical distinguisher (see each factory).
  Rational exact_advantage;
  /// Instance tag baked into every action name.
  std::string tag;
};

/// One-time MAC. Env: auth_<t> then observe forged_<t> / rejected_<t>.
/// Adv input: forge_<t>. Advantage 2^-k. Requires 1 <= k <= 62.
RealIdealPair make_otmac_pair(std::uint32_t k, const std::string& tag);

/// The bare MAC automaton with an explicit forgery-success probability
/// (2^-k for real schemes, 0 for ideal functionalities). Exposed for the
/// dynamic session service, which registers per-session instances.
PsioaPtr make_otmac_automaton(const std::string& name,
                              const std::string& tag,
                              const Rational& forge_win);

/// The bare commitment automaton with an explicit equivocation-success
/// probability. Exposed for protocols built *over* the commitment (the
/// Blum coin toss in protocols/cointoss.hpp).
PsioaPtr make_commitment_automaton(const std::string& name,
                                   const std::string& tag,
                                   const Rational& flip_win);

/// Biased-pad OTP channel. Env: send0/1_<t>, deliver0/1_<t>.
/// Adv outputs: cipher0/1_<t> (leak). Advantage 2^-k with a relay
/// adversary. Requires 1 <= k <= 62.
RealIdealPair make_otp_pair(std::uint32_t k, const std::string& tag);

/// Commitment with 2^-k binding failure. Env: commit0/1_<t>, reveal_<t>,
/// open0/1_<t>. Adv input: flipcmd_<t>. Requires 1 <= k <= 62.
RealIdealPair make_commitment_pair(std::uint32_t k, const std::string& tag);

/// Perfect OTP: identical real and ideal distributions; advantage 0.
RealIdealPair make_perfect_otp_pair(const std::string& tag);

}  // namespace cdse
