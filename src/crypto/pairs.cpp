#include "crypto/pairs.hpp"

#include <stdexcept>

#include "psioa/explicit_psioa.hpp"

namespace cdse {

namespace {

Rational pow2_inv(std::uint32_t k) {
  if (k < 1 || k > 62) {
    throw std::invalid_argument("real/ideal pair: k must be in [1, 62]");
  }
  return Rational(1, static_cast<std::int64_t>(1) << k);
}

Signature in_sig(ActionSet in) {
  Signature s;
  s.in = std::move(in);
  return s;
}

Signature out_sig(ActionSet out) {
  Signature s;
  s.out = std::move(out);
  return s;
}

Signature int_sig(ActionSet internal) {
  Signature s;
  s.internal = std::move(internal);
  return s;
}

/// One-time MAC automaton; `forge_win` is the forgery success probability
/// (2^-k for the real scheme, 0 for the ideal functionality).
PsioaPtr make_otmac(const std::string& name, const std::string& tag,
                    const Rational& forge_win) {
  auto m = std::make_shared<ExplicitPsioa>(name);
  const ActionId a_auth = act("auth_" + tag);
  const ActionId a_forge = act("forge_" + tag);
  const ActionId a_forged = act("forged_" + tag);
  const ActionId a_rejected = act("rejected_" + tag);

  const State idle = m->add_state("idle");
  const State authed = m->add_state("authed");
  const State win = m->add_state("win");
  const State lose = m->add_state("lose");
  const State done = m->add_state("done");
  m->set_start(idle);
  m->set_signature(idle, in_sig({a_auth}));
  m->set_signature(authed, in_sig({a_forge}));
  m->set_signature(win, out_sig({a_forged}));
  m->set_signature(lose, out_sig({a_rejected}));
  m->set_signature(done, Signature{});

  m->add_step(idle, a_auth, authed);
  StateDist forge_dist;
  forge_dist.add(win, forge_win);
  forge_dist.add(lose, Rational(1) - forge_win);
  m->add_transition(authed, a_forge, forge_dist);
  m->add_step(win, a_forged, done);
  m->add_step(lose, a_rejected, done);
  m->validate();
  return m;
}

/// OTP channel automaton; `flip_prob` is P[ciphertext != message]
/// (1/2 + 2^-k for the biased real pad, exactly 1/2 for the ideal one).
PsioaPtr make_otp(const std::string& name, const std::string& tag,
                  const Rational& flip_prob) {
  auto m = std::make_shared<ExplicitPsioa>(name);
  const ActionId a_send[2] = {act("send0_" + tag), act("send1_" + tag)};
  const ActionId a_cipher[2] = {act("cipher0_" + tag), act("cipher1_" + tag)};
  const ActionId a_deliver[2] = {act("deliver0_" + tag),
                                 act("deliver1_" + tag)};
  const ActionId a_rand = act("rand_" + tag);

  const State idle = m->add_state("idle");
  m->set_start(idle);
  m->set_signature(idle, in_sig({a_send[0], a_send[1]}));
  State enc[2];
  State cip[2][2];
  State del[2];
  const State done = m->add_state("done");
  m->set_signature(done, Signature{});
  for (int msg = 0; msg < 2; ++msg) {
    enc[msg] = m->add_state("enc" + std::to_string(msg));
    m->set_signature(enc[msg], int_sig({a_rand}));
    del[msg] = m->add_state("del" + std::to_string(msg));
    m->set_signature(del[msg], out_sig({a_deliver[msg]}));
    for (int c = 0; c < 2; ++c) {
      cip[msg][c] =
          m->add_state("cip" + std::to_string(msg) + std::to_string(c));
      m->set_signature(cip[msg][c], out_sig({a_cipher[c]}));
    }
  }
  for (int msg = 0; msg < 2; ++msg) {
    m->add_step(idle, a_send[msg], enc[msg]);
    StateDist d;
    d.add(cip[msg][1 - msg], flip_prob);               // cipher != message
    d.add(cip[msg][msg], Rational(1) - flip_prob);     // cipher == message
    m->add_transition(enc[msg], a_rand, d);
    for (int c = 0; c < 2; ++c) {
      m->add_step(cip[msg][c], a_cipher[c], del[msg]);
    }
    m->add_step(del[msg], a_deliver[msg], done);
  }
  m->validate();
  return m;
}

/// Commitment automaton; `flip_win` is the probability that an
/// equivocation request actually flips the committed bit.
PsioaPtr make_commitment(const std::string& name, const std::string& tag,
                         const Rational& flip_win) {
  auto m = std::make_shared<ExplicitPsioa>(name);
  const ActionId a_commit[2] = {act("commit0_" + tag), act("commit1_" + tag)};
  const ActionId a_open[2] = {act("open0_" + tag), act("open1_" + tag)};
  const ActionId a_reveal = act("reveal_" + tag);
  const ActionId a_flipcmd = act("flipcmd_" + tag);

  const State idle = m->add_state("idle");
  m->set_start(idle);
  m->set_signature(idle, in_sig({a_commit[0], a_commit[1]}));
  State com[2];
  State rev[2];
  const State done = m->add_state("done");
  m->set_signature(done, Signature{});
  for (int b = 0; b < 2; ++b) {
    com[b] = m->add_state("com" + std::to_string(b));
    m->set_signature(com[b], in_sig({a_reveal, a_flipcmd}));
    rev[b] = m->add_state("rev" + std::to_string(b));
    m->set_signature(rev[b], out_sig({a_open[b]}));
  }
  for (int b = 0; b < 2; ++b) {
    m->add_step(idle, a_commit[b], com[b]);
    StateDist flip;
    flip.add(com[1 - b], flip_win);
    flip.add(com[b], Rational(1) - flip_win);
    m->add_transition(com[b], a_flipcmd, flip);
    m->add_step(com[b], a_reveal, rev[b]);
    m->add_step(rev[b], a_open[b], done);
  }
  m->validate();
  return m;
}

}  // namespace

PsioaPtr make_otmac_automaton(const std::string& name,
                              const std::string& tag,
                              const Rational& forge_win) {
  return make_otmac(name, tag, forge_win);
}

PsioaPtr make_commitment_automaton(const std::string& name,
                                   const std::string& tag,
                                   const Rational& flip_win) {
  return make_commitment(name, tag, flip_win);
}

RealIdealPair make_otmac_pair(std::uint32_t k, const std::string& tag) {
  const Rational adv = pow2_inv(k);
  const ActionSet env = acts({"auth_" + tag, "forged_" + tag,
                              "rejected_" + tag});
  const ActionSet adv_in = acts({"forge_" + tag});
  return RealIdealPair{
      StructuredPsioa(make_otmac("otmac_real_" + tag, tag, adv), env, adv_in,
                      {}),
      StructuredPsioa(make_otmac("otmac_ideal_" + tag, tag, Rational(0)),
                      env, adv_in, {}),
      adv, tag};
}

RealIdealPair make_otp_pair(std::uint32_t k, const std::string& tag) {
  const Rational bias = pow2_inv(k);
  const Rational half(1, 2);
  const ActionSet env = acts({"send0_" + tag, "send1_" + tag,
                              "deliver0_" + tag, "deliver1_" + tag});
  const ActionSet adv_out = acts({"cipher0_" + tag, "cipher1_" + tag});
  return RealIdealPair{
      StructuredPsioa(make_otp("otp_real_" + tag, tag, half + bias), env, {},
                      adv_out),
      StructuredPsioa(make_otp("otp_ideal_" + tag, tag, half), env, {},
                      adv_out),
      bias, tag};
}

RealIdealPair make_commitment_pair(std::uint32_t k, const std::string& tag) {
  const Rational adv = pow2_inv(k);
  const ActionSet env = acts({"commit0_" + tag, "commit1_" + tag,
                              "reveal_" + tag, "open0_" + tag,
                              "open1_" + tag});
  const ActionSet adv_in = acts({"flipcmd_" + tag});
  return RealIdealPair{
      StructuredPsioa(make_commitment("commit_real_" + tag, tag, adv), env,
                      adv_in, {}),
      StructuredPsioa(
          make_commitment("commit_ideal_" + tag, tag, Rational(0)), env,
          adv_in, {}),
      adv, tag};
}

RealIdealPair make_perfect_otp_pair(const std::string& tag) {
  const Rational half(1, 2);
  const ActionSet env = acts({"send0_" + tag, "send1_" + tag,
                              "deliver0_" + tag, "deliver1_" + tag});
  const ActionSet adv_out = acts({"cipher0_" + tag, "cipher1_" + tag});
  return RealIdealPair{
      StructuredPsioa(make_otp("potp_real_" + tag, tag, half), env, {},
                      adv_out),
      StructuredPsioa(make_otp("potp_ideal_" + tag, tag, half), env, {},
                      adv_out),
      Rational(0), tag};
}

}  // namespace cdse
