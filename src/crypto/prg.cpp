#include "crypto/prg.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace cdse {

WeakPrg::WeakPrg(std::uint32_t k) : k_(k) {
  if (k < 1 || k > 24) {
    throw std::invalid_argument("WeakPrg: k must be in [1, 24]");
  }
}

std::uint64_t WeakPrg::expand(std::uint64_t seed) const {
  // xorshift-style mixing of the (zero-padded) k-bit seed. With only
  // 2^k distinct outputs over a 2^64 range this is nowhere near uniform
  // -- which is the point: it is a *bounded* primitive whose weakness is
  // quantifiable.
  std::uint64_t x = (seed & ((1ULL << k_) - 1)) + 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

double WeakPrg::exact_one_bias() const {
  std::uint64_t ones = 0;
  const std::uint64_t n = seed_count();
  for (std::uint64_t s = 0; s < n; ++s) ones += expand(s) & 1ULL;
  return static_cast<double>(ones) / static_cast<double>(n) - 0.5;
}

double WeakPrg::exact_tv_from_uniform(std::uint32_t bits) const {
  if (bits > 16) throw std::invalid_argument("WeakPrg: bits > 16");
  const std::uint64_t buckets = 1ULL << bits;
  std::vector<std::uint64_t> count(buckets, 0);
  const std::uint64_t n = seed_count();
  for (std::uint64_t s = 0; s < n; ++s) {
    ++count[expand(s) & (buckets - 1)];
  }
  const double uniform = 1.0 / static_cast<double>(buckets);
  double pos = 0.0;
  for (std::uint64_t b = 0; b < buckets; ++b) {
    const double p = static_cast<double>(count[b]) / static_cast<double>(n);
    if (p > uniform) pos += p - uniform;
  }
  return pos;
}

}  // namespace cdse
