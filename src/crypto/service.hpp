#pragma once
// Dynamic MAC session service: secure emulation *with* run-time creation.
//
// This is the paper's headline scenario made concrete -- the analogue of
// dynamic ITM invocation in UC / the "!" bang operator in IITM (Section
// 4 intro): a service automaton that spawns a fresh protocol-session
// automaton whenever the environment opens one, and garbage-collects it
// (empty-signature destruction, Def 2.12) when the session completes.
//
// The real service spawns real one-time-MAC sessions (forgery succeeds
// with probability 2^-k_i in session i); the ideal service spawns ideal
// sessions (forgery never succeeds). Both are structured PCA over the
// same environment vocabulary, so the dynamic secure-emulation relation
// (Def 4.26) applies verbatim -- and the per-session advantage stays
// exactly 2^-k_i even though the sessions only exist at run time.
//
// Session i actions (suffix <tag>_<i>): open (env in), auth (env in),
// forged / rejected (env out), forge (adversary in).

#include <cstdint>
#include <string>
#include <vector>

#include "pca/dynamic_pca.hpp"
#include "secure/structured.hpp"
#include "util/rational.hpp"

namespace cdse {

struct MacServicePair {
  StructuredPsioa real;
  StructuredPsioa ideal;
  /// 2^-k_i per session, indexed like `ks`.
  std::vector<Rational> session_advantages;
  /// Underlying PCA (for constraint checking / introspection).
  std::shared_ptr<DynamicPca> real_pca;
  std::shared_ptr<DynamicPca> ideal_pca;
};

/// Builds the paired services with one potential session per entry of
/// `ks` (session i uses security parameter ks[i]). Sessions are created
/// on open_<tag>_<i> and destroyed when they finish.
MacServicePair make_mac_service_pair(const std::vector<std::uint32_t>& ks,
                                     const std::string& tag);

/// Action-name helpers for the session vocabulary.
std::string service_action(const std::string& base, const std::string& tag,
                           std::size_t session);

}  // namespace cdse
