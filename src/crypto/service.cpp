#include "crypto/service.hpp"

#include "crypto/pairs.hpp"
#include "psioa/explicit_psioa.hpp"

namespace cdse {

std::string service_action(const std::string& base, const std::string& tag,
                           std::size_t session) {
  return base + "_" + tag + "_" + std::to_string(session);
}

namespace {

/// The dispatcher: a memoryless hub whose only job is to accept open_i
/// requests; session creation is the PCA creation policy's business.
/// `name` distinguishes the real/ideal instances; `tag` names actions
/// (shared between the two sides).
PsioaPtr make_hub(const std::string& name, const std::string& tag,
                  std::size_t sessions) {
  auto hub = std::make_shared<ExplicitPsioa>("hub_" + name);
  const State q = hub->add_state("hub");
  hub->set_start(q);
  Signature sig;
  for (std::size_t i = 0; i < sessions; ++i) {
    sig.in.push_back(act(service_action("open", tag, i)));
  }
  set::normalize(sig.in);
  hub->set_signature(q, sig);
  for (ActionId a : sig.in) hub->add_step(q, a, q);
  hub->validate();
  return hub;
}

std::shared_ptr<DynamicPca> make_service(
    const std::vector<std::uint32_t>& ks, const std::string& tag,
    bool real) {
  auto reg = std::make_shared<AutomatonRegistry>();
  const std::string side = real ? "real" : "ideal";
  const Aid hub = reg->add(make_hub(tag + "_" + side, tag, ks.size()));
  std::vector<std::pair<ActionId, Aid>> spawn_on;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const Rational win =
        real ? Rational(1, static_cast<std::int64_t>(1) << ks[i])
             : Rational(0);
    const std::string session_tag = tag + "_" + std::to_string(i);
    const Aid sid = reg->add(make_otmac_automaton(
        "session" + std::to_string(i) + "_" + side + "_" + tag,
        session_tag, win));
    spawn_on.emplace_back(act(service_action("open", tag, i)), sid);
  }
  CreationPolicy creation = [spawn_on](const Configuration& cfg,
                                       ActionId a) {
    std::vector<Aid> phi;
    for (const auto& [action, aid] : spawn_on) {
      if (action == a && !cfg.contains(aid)) phi.push_back(aid);
    }
    return phi;
  };
  return std::make_shared<DynamicPca>("macservice_" + side + "_" + tag, reg,
                                      std::vector<Aid>{hub}, creation,
                                      no_hiding());
}

}  // namespace

MacServicePair make_mac_service_pair(const std::vector<std::uint32_t>& ks,
                                     const std::string& tag) {
  if (ks.empty()) {
    // A session-less hub would have an empty signature -- the
    // destruction sentinel (Def 2.12) -- and could not anchor a reduced
    // initial configuration.
    throw std::invalid_argument(
        "make_mac_service_pair: at least one session required");
  }
  auto real_pca = make_service(ks, tag, true);
  auto ideal_pca = make_service(ks, tag, false);
  ActionSet env;
  ActionSet adv_in;
  std::vector<Rational> advantages;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const std::string session_tag = tag + "_" + std::to_string(i);
    set::insert(env, act(service_action("open", tag, i)));
    set::insert(env, act("auth_" + session_tag));
    set::insert(env, act("forged_" + session_tag));
    set::insert(env, act("rejected_" + session_tag));
    set::insert(adv_in, act("forge_" + session_tag));
    advantages.push_back(
        Rational(1, static_cast<std::int64_t>(1) << ks[i]));
  }
  return MacServicePair{StructuredPsioa(real_pca, env, adv_in, {}),
                        StructuredPsioa(ideal_pca, env, adv_in, {}),
                        std::move(advantages), std::move(real_pca),
                        std::move(ideal_pca)};
}

}  // namespace cdse
