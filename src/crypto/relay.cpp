#include "crypto/relay.hpp"

#include <stdexcept>

#include "psioa/explicit_psioa.hpp"

namespace cdse {

PsioaPtr make_relay_adversary(
    const std::string& name,
    const std::vector<std::pair<ActionId, ActionId>>& relay_map) {
  auto relay = std::make_shared<ExplicitPsioa>(name);
  ActionSet inputs;
  for (const auto& [in, out] : relay_map) {
    (void)out;
    if (!set::insert(inputs, in)) {
      throw std::logic_error("make_relay_adversary: duplicate input action");
    }
  }
  const State idle = relay->add_state("idle");
  relay->set_start(idle);

  std::vector<State> holding;
  holding.reserve(relay_map.size());
  for (const auto& [in, out] : relay_map) {
    holding.push_back(
        relay->add_state("hold_" + ActionTable::instance().name(in)));
    Signature sig;
    sig.in = inputs;
    sig.out = ActionSet{out};
    relay->set_signature(holding.back(), sig);
  }
  Signature idle_sig;
  idle_sig.in = inputs;
  relay->set_signature(idle, idle_sig);

  for (std::size_t i = 0; i < relay_map.size(); ++i) {
    relay->add_step(idle, relay_map[i].first, holding[i]);
    relay->add_step(holding[i], relay_map[i].second, idle);
    for (std::size_t j = 0; j < relay_map.size(); ++j) {
      relay->add_step(holding[i], relay_map[j].first, holding[j]);
    }
  }
  relay->validate();
  return relay;
}

}  // namespace cdse
