#pragma once
// A deliberately weak PRG with exactly enumerable output statistics.
//
// The paper treats cryptographic primitives abstractly ("computational
// hardness assumptions", Section 4.1); the reproduction needs concrete
// ones whose distinguishing advantage is *known exactly* so that epsilon
// claims can be checked to machine precision. WeakPrg is a k-bit-seed
// xorshift expander: for small k its full output distribution is
// enumerable, and exact_one_bias() reports how far its low output bit is
// from a fair coin. The automaton pairs in pairs.hpp use the idealized
// 2^-k bias for closed-form bookkeeping; the tests compare WeakPrg's
// measured bias against that envelope to justify the substitution.

#include <cstdint>

namespace cdse {

class WeakPrg {
 public:
  /// k in [1, 24]: seeds are the k-bit integers (enumeration stays cheap).
  explicit WeakPrg(std::uint32_t k);

  std::uint32_t k() const { return k_; }
  std::uint64_t seed_count() const { return 1ULL << k_; }

  /// Expands a k-bit seed to 64 pseudo-random bits.
  std::uint64_t expand(std::uint64_t seed) const;

  /// Exact bias of the low output bit: P[lsb(expand(S)) = 1] - 1/2 for a
  /// uniform k-bit seed S, by enumeration of all seeds.
  double exact_one_bias() const;

  /// Exact total-variation distance between the distribution of the low
  /// `bits` output bits (uniform seed) and the uniform distribution on
  /// `bits` bits. Requires bits <= 16.
  double exact_tv_from_uniform(std::uint32_t bits) const;

 private:
  std::uint32_t k_;
};

}  // namespace cdse
