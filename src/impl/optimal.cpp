#include "impl/optimal.hpp"

#include "sched/schedulers.hpp"

namespace cdse {

namespace {

/// Evaluates the word on one system: exact f-dist plus the longest
/// schedule length reached anywhere in the support (for pruning).
struct WordEval {
  ExactDisc<Perception> fdist;
  std::size_t max_reached = 0;
};

WordEval evaluate(Psioa& system, const std::vector<ActionId>& word,
                  const InsightFunction& f, std::size_t depth) {
  // Inputs are schedulable: the word doubles as the environment's
  // injection strategy, so the search covers open systems too. Callers
  // restrict the alphabet to the actions an environment could drive.
  SequenceScheduler sched(word, /*local_only=*/false);
  WordEval ev;
  for_each_halted_execution(
      system, sched, depth,
      [&](const ExecFragment& alpha, const Rational& p) {
        ev.fdist.add(f.apply(system, alpha), p);
        ev.max_reached = std::max(ev.max_reached, alpha.length());
      });
  return ev;
}

void search(Psioa& lhs, Psioa& rhs, const std::vector<ActionId>& alphabet,
            std::size_t max_len, const InsightFunction& f, std::size_t depth,
            std::vector<ActionId>& word, BestDistinguisher& best) {
  const WordEval l = evaluate(lhs, word, f, depth);
  const WordEval r = evaluate(rhs, word, f, depth);
  ++best.words_evaluated;
  const Rational eps = balance_distance(l.fdist, r.fdist);
  if (eps > best.eps) {
    best.eps = eps;
    best.word = word;
  }
  if (word.size() >= max_len) return;
  // Extensions only matter when at least one side can consume the next
  // letter, i.e. the current word did not stall strictly early on both.
  if (!word.empty() && l.max_reached < word.size() &&
      r.max_reached < word.size()) {
    return;
  }
  for (ActionId a : alphabet) {
    word.push_back(a);
    search(lhs, rhs, alphabet, max_len, f, depth, word, best);
    word.pop_back();
  }
}

}  // namespace

std::string BestDistinguisher::word_string() const {
  return trace_string(word);
}

BestDistinguisher search_best_word(Psioa& lhs, Psioa& rhs,
                                   const std::vector<ActionId>& alphabet,
                                   std::size_t max_len,
                                   const InsightFunction& f,
                                   std::size_t depth) {
  BestDistinguisher best;
  std::vector<ActionId> word;
  search(lhs, rhs, alphabet, max_len, f, depth, word, best);
  return best;
}

}  // namespace cdse
