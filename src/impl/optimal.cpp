#include "impl/optimal.hpp"

#include <deque>
#include <optional>
#include <unordered_map>

#include "psioa/snapshot.hpp"
#include "sched/schedulers.hpp"

namespace cdse {

namespace {

/// Letter ranks taken from the alphabet vector: the extension loop tries
/// letters in alphabet order, so the search pre-order coincides with
/// lexicographic order under these ranks (a word precedes its
/// extensions, which precede later siblings' subtrees).
class LexRank {
 public:
  explicit LexRank(const std::vector<ActionId>& alphabet) {
    for (std::size_t i = 0; i < alphabet.size(); ++i) {
      rank_.emplace(alphabet[i], i);
    }
  }

  bool before(const std::vector<ActionId>& a,
              const std::vector<ActionId>& b) const {
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return rank_.at(a[i]) < rank_.at(b[i]);
    }
    return a.size() < b.size();
  }

 private:
  std::unordered_map<ActionId, std::size_t> rank_;
};

/// A (word, epsilon) candidate under the deterministic reduction:
/// maximum epsilon, ties to the lexicographically smallest word. The
/// comparator is order-independent, so merging candidates in any fixed
/// sequence yields the same winner -- the property that makes the
/// parallel reduction bit-identical to the serial first-improvement
/// scan (pre-order evaluation == lex order means "first strict
/// improvement" and "lex-min argmax" pick the same word).
struct Candidate {
  bool set = false;
  std::vector<ActionId> word;
  Rational eps;
};

void offer(Candidate& best, const std::vector<ActionId>& word,
           const Rational& eps, const LexRank& lex) {
  if (!best.set || eps > best.eps ||
      (eps == best.eps && lex.before(word, best.word))) {
    best.set = true;
    best.word = word;
    best.eps = eps;
  }
}

void merge(Candidate& best, const Candidate& other, const LexRank& lex) {
  if (other.set) offer(best, other.word, other.eps, lex);
}

/// Evaluates the word on one system through the recursive reference
/// enumerator: exact f-dist plus the longest schedule length reached
/// anywhere in the support (for pruning).
struct WordEval {
  ExactDisc<Perception> fdist;
  std::size_t max_reached = 0;
};

WordEval evaluate_legacy(Psioa& system, const std::vector<ActionId>& word,
                         const InsightFunction& f, std::size_t depth) {
  // Inputs are schedulable: the word doubles as the environment's
  // injection strategy, so the search covers open systems too. Callers
  // restrict the alphabet to the actions an environment could drive.
  SequenceScheduler sched(word, /*local_only=*/false);
  WordEval ev;
  for_each_halted_execution_recursive(
      system, sched, depth,
      [&](const ExecFragment& alpha, const Rational& p) {
        ev.fdist.add(f.apply(system, alpha), p);
        ev.max_reached = std::max(ev.max_reached, alpha.length());
      });
  return ev;
}

void search_legacy(Psioa& lhs, Psioa& rhs,
                   const std::vector<ActionId>& alphabet, std::size_t max_len,
                   const InsightFunction& f, std::size_t depth,
                   std::vector<ActionId>& word, BestDistinguisher& best) {
  const WordEval l = evaluate_legacy(lhs, word, f, depth);
  const WordEval r = evaluate_legacy(rhs, word, f, depth);
  ++best.words_evaluated;
  const Rational eps = balance_distance(l.fdist, r.fdist);
  if (eps > best.eps) {
    best.eps = eps;
    best.word = word;
  }
  if (word.size() >= max_len) return;
  // Extensions only matter when at least one side can consume the next
  // letter, i.e. the current word did not stall strictly early on both.
  if (!word.empty() && l.max_reached < word.size() &&
      r.max_reached < word.size()) {
    return;
  }
  for (ActionId a : alphabet) {
    word.push_back(a);
    search_legacy(lhs, rhs, alphabet, max_len, f, depth, word, best);
    word.pop_back();
  }
}

/// The prefix-sharing DFS: identical traversal and pruning to the legacy
/// search, but each word's f-dists come from extending the parent's
/// cached frontier. Child frontiers are evicted once their subtree is
/// exhausted, so the cache holds the ancestors of the active word only.
void search_prefix(ConeFrontierCache& cl, ConeFrontierCache& cr,
                   const std::vector<ActionId>& alphabet, std::size_t max_len,
                   const LexRank& lex, std::vector<ActionId>& word,
                   Candidate& best, std::size_t& words_evaluated) {
  const ConeFrontier& l = cl.frontier(word);
  const ConeFrontier& r = cr.frontier(word);
  ++words_evaluated;
  const Rational eps = balance_distance(l.fdist, r.fdist);
  offer(best, word, eps, lex);
  if (word.size() >= max_len) return;
  if (!word.empty() && l.max_reached < word.size() &&
      r.max_reached < word.size()) {
    return;
  }
  for (ActionId a : alphabet) {
    word.push_back(a);
    search_prefix(cl, cr, alphabet, max_len, lex, word, best,
                  words_evaluated);
    cl.evict(word);
    cr.evict(word);
    word.pop_back();
  }
}

}  // namespace

std::string BestDistinguisher::word_string() const {
  return trace_string(word);
}

BestDistinguisher search_best_word_legacy(
    Psioa& lhs, Psioa& rhs, const std::vector<ActionId>& alphabet,
    std::size_t max_len, const InsightFunction& f, std::size_t depth) {
  BestDistinguisher best;
  std::vector<ActionId> word;
  search_legacy(lhs, rhs, alphabet, max_len, f, depth, word, best);
  return best;
}

BestDistinguisher search_best_word(Psioa& lhs, Psioa& rhs,
                                   const std::vector<ActionId>& alphabet,
                                   std::size_t max_len,
                                   const InsightFunction& f,
                                   std::size_t depth,
                                   const ReductionPolicy& policy) {
  // Minimize each side independently; a side whose covering warm-up
  // truncates stays raw (the frontier extension is exact either way).
  std::optional<ReducedSystem> red_l;
  std::optional<ReducedSystem> red_r;
  if (policy.enabled()) {
    red_l = reduce_for_enumeration(lhs, depth, policy);
    red_r = reduce_for_enumeration(rhs, depth, policy);
  }
  Psioa& el = red_l.has_value() ? *red_l->view : lhs;
  Psioa& er = red_r.has_value() ? *red_r->view : rhs;
  ConeFrontierCache cl(el, f, depth);
  ConeFrontierCache cr(er, f, depth);
  const LexRank lex(alphabet);
  Candidate cand;
  BestDistinguisher best;
  std::vector<ActionId> word;
  search_prefix(cl, cr, alphabet, max_len, lex, word, cand,
                best.words_evaluated);
  if (cand.set) {
    best.word = std::move(cand.word);
    best.eps = cand.eps;
  }
  best.stats = cl.stats();
  best.stats += cr.stats();
  if (red_l.has_value()) {
    best.stats.quotient_states += red_l->states;
    best.stats.quotient_blocks += red_l->blocks;
  }
  if (red_r.has_value()) {
    best.stats.quotient_states += red_r->states;
    best.stats.quotient_blocks += red_r->blocks;
  }
  return best;
}

BestDistinguisher search_best_word_parallel(
    const PsioaFactory& make_lhs, const PsioaFactory& make_rhs,
    const std::vector<ActionId>& alphabet, std::size_t max_len,
    const InsightFunction& f, std::size_t depth, ThreadPool& pool,
    std::size_t frontier_target, const ReductionPolicy& policy) {
  // With an enabled policy, minimize each side up front: one covering
  // freeze + quotient, after which every view (phase 1 and per worker)
  // is a fresh QuotientPsioa over the shared minimized snapshot. A side
  // whose warm-up truncates keeps the sampler path below.
  std::optional<ReducedSystem> red_l;
  std::optional<ReducedSystem> red_r;
  if (policy.enabled()) {
    auto li = make_lhs();
    auto ri = make_rhs();
    red_l = reduce_for_enumeration(*li, depth, policy);
    red_r = reduce_for_enumeration(*ri, depth, policy);
  }

  // Freeze one warmed instance per unreduced side. The full-horizon walk
  // compiles every (state, action) row the search can touch, so worker
  // views almost never fall through to the serialized residue.
  WarmupPlan plan;
  plan.episodes = 0;
  plan.horizon = depth;
  auto uniform_factory = [depth]() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(depth);
  };
  std::optional<ParallelSampler> left;
  std::optional<ParallelSampler> right;
  if (!red_l.has_value()) {
    left.emplace(make_lhs, uniform_factory);
    left->prepare(plan, depth);
  }
  if (!red_r.has_value()) {
    right.emplace(make_rhs, uniform_factory);
    right->prepare(plan, depth);
  }
  auto left_view = [&]() -> std::shared_ptr<MemoPsioa> {
    if (red_l.has_value()) {
      return std::make_shared<QuotientPsioa>(red_l->snapshot);
    }
    return left->worker_view();
  };
  auto right_view = [&]() -> std::shared_ptr<MemoPsioa> {
    if (red_r.has_value()) {
      return std::make_shared<QuotientPsioa>(red_r->snapshot);
    }
    return right->worker_view();
  };

  const LexRank lex(alphabet);
  BestDistinguisher best;
  Candidate cand;
  ConeStats stats;
  if (red_l.has_value()) {
    stats.quotient_states += red_l->states;
    stats.quotient_blocks += red_l->blocks;
  }
  if (red_r.has_value()) {
    stats.quotient_states += red_r->states;
    stats.quotient_blocks += red_r->blocks;
  }

  // Phase 1 (calling thread): breadth-first over the word tree until
  // enough un-expanded subtrees exist to feed the pool. Expansion uses
  // the same prune-then-extend rule as the DFS, so phase-1 words plus
  // the subtree words partition exactly the legacy evaluation set.
  auto lv = left_view();
  auto rv = right_view();
  ConeFrontierCache cl(*lv, f, depth);
  ConeFrontierCache cr(*rv, f, depth);
  const std::size_t target =
      frontier_target != 0
          ? frontier_target
          : 4 * std::max<std::size_t>(std::size_t{1}, pool.size());
  std::deque<std::vector<ActionId>> queue;
  queue.emplace_back();
  while (!queue.empty() && queue.size() < target) {
    std::vector<ActionId> word = std::move(queue.front());
    queue.pop_front();
    const ConeFrontier& l = cl.frontier(word);
    const ConeFrontier& r = cr.frontier(word);
    ++best.words_evaluated;
    offer(cand, word, balance_distance(l.fdist, r.fdist), lex);
    if (word.size() >= max_len) continue;
    if (!word.empty() && l.max_reached < word.size() &&
        r.max_reached < word.size()) {
      continue;
    }
    for (ActionId a : alphabet) {
      std::vector<ActionId> child = word;
      child.push_back(a);
      queue.push_back(std::move(child));
    }
  }
  std::vector<std::vector<ActionId>> tasks(queue.begin(), queue.end());
  stats += cl.stats();
  stats += cr.stats();
  stats.splits = tasks.size();

  // Phase 2: one DFS per task word, fanned over the pool. Each chunk
  // owns a pair of thin snapshot views and frontier caches (kept across
  // the chunk's tasks, so sibling tasks share ancestor frontiers too).
  const std::size_t lanes = std::max<std::size_t>(std::size_t{1}, pool.size());
  std::vector<Candidate> task_best(tasks.size());
  std::vector<std::size_t> task_count(tasks.size(), 0);
  std::vector<ConeStats> lane_stats(lanes);
  parallel_for_chunks(
      pool, tasks.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto lw = left_view();
        auto rw = right_view();
        ConeFrontierCache wl(*lw, f, depth);
        ConeFrontierCache wr(*rw, f, depth);
        for (std::size_t i = begin; i < end; ++i) {
          std::vector<ActionId> word = tasks[i];
          search_prefix(wl, wr, alphabet, max_len, lex, word, task_best[i],
                        task_count[i]);
        }
        lane_stats[chunk] += wl.stats();
        lane_stats[chunk] += wr.stats();
      });

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    merge(cand, task_best[i], lex);
    best.words_evaluated += task_count[i];
  }
  for (const auto& s : lane_stats) stats += s;
  if (cand.set) {
    best.word = std::move(cand.word);
    best.eps = cand.eps;
  }
  best.stats = stats;
  return best;
}

}  // namespace cdse
