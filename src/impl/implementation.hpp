#pragma once
// The approximate implementation relation (Def 4.12) as a test harness.
//
// A <=^{Sch,f}_{p,q1,q2,eps} B quantifies over p-bounded environments and
// q1-bounded schedulers, and asks for a matching q2-bounded scheduler on
// the B side. The harness makes the existential *constructive*: the
// caller provides a SchedulerCorrespondence mapping each left scheduler
// to its right counterpart (identity when both sides expose the same
// action vocabulary; the Forward construction of Lemma D.1 in the
// secure-emulation layer is another instance). The report records the
// exact epsilon per (environment, scheduler) case and the maximum.

#include <string>
#include <vector>

#include "impl/balance.hpp"
#include "psioa/compose.hpp"

namespace cdse {

/// Maps a left-side scheduler to the matching right-side scheduler
/// (the existentially quantified sigma' of Def 4.12).
using SchedulerCorrespondence =
    std::function<SchedulerPtr(const SchedulerPtr&)>;

inline SchedulerCorrespondence same_scheduler() {
  return [](const SchedulerPtr& s) { return s; };
}

struct LabeledPsioa {
  std::string label;
  PsioaPtr automaton;
};

struct LabeledScheduler {
  std::string label;
  SchedulerPtr scheduler;
};

struct ImplementationReport {
  struct Row {
    std::string env;
    std::string sched;
    Rational eps;
  };
  std::vector<Row> rows;
  Rational max_eps;

  bool holds_with(const Rational& eps) const { return max_eps <= eps; }
};

/// Evaluates A <= B over the given environments and schedulers with the
/// provided correspondence, exactly, up to `max_depth` transitions.
/// Environments compose on the left: the evaluated systems are E||A and
/// E||B (composition order only affects state-tuple layout).
ImplementationReport check_implementation(
    const PsioaPtr& a, const PsioaPtr& b,
    const std::vector<LabeledPsioa>& envs,
    const std::vector<LabeledScheduler>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth);

/// Factory-labeled grid axes for the parallel checker. Factories must be
/// pure builders (callable concurrently from pool workers); each cell
/// constructs its own automata and scheduler instances, preserving the
/// one-thread-per-instance rule of the memo layer.
struct LabeledPsioaFactory {
  std::string label;
  PsioaFactory make;
};

struct LabeledSchedulerFactory {
  std::string label;
  SchedulerFactory make;
};

/// check_implementation with the (environment, scheduler) grid evaluated
/// in parallel: cells fan out over the pool in env-major order, each on
/// fresh instances, and the report rows come back in exactly the order
/// the serial checker emits them (the reduction to max_eps runs over
/// that fixed order, so the report is identical at every worker count --
/// cell epsilons are exact rationals, not estimates). `correspond` runs
/// on worker threads and must be thread-safe (the identity
/// same_scheduler() and pure constructor lambdas are).
///
/// With an enabled `policy`, every cell's E||A and E||B are minimized to
/// their bisimulation quotients before enumeration; cell epsilons are
/// unchanged exactly (the serial check_implementation stays unreduced as
/// the differential reference).
ImplementationReport check_implementation_parallel(
    const PsioaFactory& a, const PsioaFactory& b,
    const std::vector<LabeledPsioaFactory>& envs,
    const std::vector<LabeledSchedulerFactory>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth, ThreadPool& pool,
    const ReductionPolicy& policy = {});

/// Sampled implementation grid, for systems whose cells are too large
/// to enumerate: every (environment, scheduler) cell decides
/// "epsilon above/below policy.threshold" with sequential_balance_epsilon
/// instead of computing the exact rational. The per-cell confidence
/// budget is policy.delta split evenly over the grid (delta / cells per
/// cell, union bound), so the WHOLE report is wrong with probability at
/// most policy.delta. Cells run serially on the calling thread -- the
/// sequential estimator already fans its sampling waves over `pool`,
/// and nesting parallel_for_chunks inside pool tasks would deadlock on
/// wait_idle.
struct SampledImplementationReport {
  struct Row {
    std::string env;
    std::string sched;
    double eps = 0.0;        ///< terminal-normalized point estimate
    double radius = 1.0;     ///< confidence radius at the stop
    SeqVerdict verdict = SeqVerdict::kUndecided;
    std::size_t trials = 0;  ///< per-side trials the cell committed
    std::uint64_t draws = 0; ///< logical draws the cell spent
  };
  std::vector<Row> rows;
  double max_eps = 0.0;
  std::uint64_t total_draws = 0;  ///< the E22 cost headline
  /// Every cell decided kBelowThreshold (the sampled analogue of
  /// holds_with: A <= B at the policy threshold, confidence 1 - delta).
  bool all_below = false;
};

SampledImplementationReport check_implementation_sampled(
    const PsioaFactory& a, const PsioaFactory& b,
    const std::vector<LabeledPsioaFactory>& envs,
    const std::vector<LabeledSchedulerFactory>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth, ThreadPool& pool, const SequentialPolicy& policy,
    std::uint64_t seed, SamplingMode mode = SamplingMode::kBatched);

/// Transitivity helper (Theorem 4.16 / B.4): epsilon13 <= eps12 + eps23
/// checked on concrete chains by the caller; this just packages the
/// triangle inequality evaluation for one environment/scheduler case.
struct TransitivityRow {
  Rational eps12;
  Rational eps23;
  Rational eps13;
  bool triangle_holds;
};

TransitivityRow check_transitivity_case(Psioa& e_a1, Psioa& e_a2,
                                        Psioa& e_a3, Scheduler& sigma,
                                        const InsightFunction& f,
                                        std::size_t max_depth);

}  // namespace cdse
