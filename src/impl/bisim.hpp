#pragma once
// Probabilistic bisimulation checking (Larsen-Skou style).
//
// Balance distance certifies *distributional* closeness under one
// scheduler at a time; probabilistic bisimilarity is the stronger,
// scheduler-independent state equivalence: related states have equal
// signatures and, for every action, transition distributions that agree
// on every equivalence class. When two automata are bisimilar, *every*
// scheduler/insight pair yields balance epsilon 0 -- the checker
// certifies results like "the dynamic ledger and its static spec are
// indistinguishable" once and for all rather than per scheduler.
//
// Implementation: explore both reachable fragments (bounded), then run
// partition refinement on the disjoint union -- initial blocks by
// signature, refined by the exact (rational) distribution over blocks
// per action -- and report whether the two start states share a block.

#include <cstddef>

#include "psioa/psioa.hpp"

namespace cdse {

struct BisimResult {
  bool bisimilar = false;
  bool exhaustive = false;   ///< exploration hit no state/depth cap
  std::size_t states_a = 0;
  std::size_t states_b = 0;
  std::size_t blocks = 0;
  std::size_t iterations = 0;

  explicit operator bool() const { return bisimilar; }
};

/// Checks bisimilarity of the start states of `a` and `b` over the
/// reachable fragments (up to `depth` transitions, `max_states` states
/// per side). When the caps truncate exploration, `exhaustive` is false
/// and the verdict is only valid for the explored prefix.
BisimResult probabilistic_bisimulation(Psioa& a, Psioa& b,
                                       std::size_t depth,
                                       std::size_t max_states = 100000);

}  // namespace cdse
