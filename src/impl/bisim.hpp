#pragma once
// Probabilistic bisimulation (Larsen-Skou style): checking and
// partition-refinement minimization.
//
// Balance distance certifies *distributional* closeness under one
// scheduler at a time; probabilistic bisimilarity is the stronger,
// scheduler-independent state equivalence: related states have equal
// signatures and, for every action, transition distributions that agree
// on every equivalence class. When two automata are bisimilar, *every*
// scheduler/insight pair yields balance epsilon 0 -- the checker
// certifies results like "the dynamic ledger and its static spec are
// indistinguishable" once and for all rather than per scheduler.
//
// The same refinement is also the exact engine's state-space *reducer*:
// bisimulation_partition runs partition refinement directly over a
// frozen CompiledSnapshot's exact Rational rows (no re-exploration) and
// returns the coarsest-bisimulation block partition, which
// CompiledSnapshot::quotient (psioa/snapshot.hpp) collapses into a
// minimized snapshot for cone enumeration. Because blocks share a
// signature and per-action block distributions, every trace-functional
// insight and every signature-driven scheduler sees the quotient and the
// original identically -- epsilon on the quotient equals epsilon on the
// original, exactly (tests/quotient_test.cpp pins this differentially).
//
// Implementation: initial blocks by signature, refined by the exact
// (rational) distribution over blocks per action, to a fixpoint. The
// two-automaton checker runs it on the bounded-explored disjoint union;
// the snapshot partitioner runs it on the frozen tables, with
// incompletely-warmed (frontier) states pinned to singleton blocks so
// the quotient never merges a state whose rows are only partially known.

#include <cstddef>

#include "psioa/psioa.hpp"
#include "psioa/snapshot.hpp"

namespace cdse {

struct BisimResult {
  bool bisimilar = false;
  // Per-side truncation diagnostics: the verdict is prefix-only for a
  // side that hit a cap. (Historically one collapsed `exhaustive` flag;
  // split so a capped B no longer masks a fully explored A.)
  bool truncated_a = false;      ///< side A hit a cap (depth or states)
  bool truncated_b = false;
  bool depth_capped_a = false;   ///< side A had unexpanded leaves at `depth`
  bool depth_capped_b = false;
  bool state_capped_a = false;   ///< side A's exploration hit `max_states`
  bool state_capped_b = false;
  std::size_t states_a = 0;
  std::size_t states_b = 0;
  std::size_t blocks = 0;
  std::size_t iterations = 0;

  /// Exploration hit no cap on either side (the pre-split flag).
  bool exhaustive() const { return !truncated_a && !truncated_b; }

  explicit operator bool() const { return bisimilar; }
};

/// Checks bisimilarity of the start states of `a` and `b` over the
/// reachable fragments (up to `depth` transitions, `max_states` states
/// per side). When the caps truncate exploration, the truncated side's
/// flags are set and the verdict is only valid for the explored prefix.
BisimResult probabilistic_bisimulation(Psioa& a, Psioa& b,
                                       std::size_t depth,
                                       std::size_t max_states = 100000);

/// Diagnostics from partitioning one frozen snapshot.
struct PartitionStats {
  std::size_t states = 0;    ///< snapshot states partitioned
  std::size_t frontier = 0;  ///< incompletely warmed states (singletons)
  std::size_t blocks = 0;
  std::size_t iterations = 0;
};

/// The coarsest probabilistic bisimulation over a frozen snapshot, as a
/// block partition ready for CompiledSnapshot::quotient. A state is
/// *complete* when its signature is frozen, every signature action has a
/// frozen row, and every row target is in the snapshot; complete states
/// start blocked by signature and refine by exact per-action block
/// distributions. Frontier (incomplete) states are pinned to singleton
/// blocks and never merge, which keeps the quotient sound for any
/// enumeration the warm-up horizon covers. Block ids are assigned in
/// sorted-handle first-encounter order, so the identity partition comes
/// out as a monotone rename and the quotient is deterministic.
SnapshotPartition bisimulation_partition(const CompiledSnapshot& snapshot,
                                         PartitionStats* stats = nullptr);

}  // namespace cdse
