#include "impl/balance.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/stats.hpp"

namespace cdse {

Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth) {
  const ExactDisc<Perception> left =
      exact_fdist(lhs, sigma_lhs, f, max_depth);
  const ExactDisc<Perception> right =
      exact_fdist(rhs, sigma_rhs, f, max_depth);
  return balance_distance(left, right);
}

namespace {

/// One side of the policy overload: enumerate the quotient when the
/// reduction succeeded, the original otherwise.
ExactDisc<Perception> reduced_fdist(Psioa& system, Scheduler& sigma,
                                    const InsightFunction& f,
                                    std::size_t max_depth,
                                    const ReductionPolicy& policy,
                                    ConeStats& stats) {
  const std::optional<ReducedSystem> red =
      reduce_for_enumeration(system, max_depth, policy);
  if (!red.has_value()) return exact_fdist(system, sigma, f, max_depth, &stats);
  stats.quotient_states += red->states;
  stats.quotient_blocks += red->blocks;
  return exact_fdist(*red->view, sigma, f, max_depth, &stats);
}

}  // namespace

Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth,
                               const ReductionPolicy& policy,
                               ConeStats* stats) {
  if (!policy.enabled()) {
    return exact_balance_epsilon(lhs, sigma_lhs, rhs, sigma_rhs, f, max_depth);
  }
  ConeStats scratch;
  ConeStats& cs = stats != nullptr ? *stats : scratch;
  const ExactDisc<Perception> left =
      reduced_fdist(lhs, sigma_lhs, f, max_depth, policy, cs);
  const ExactDisc<Perception> right =
      reduced_fdist(rhs, sigma_rhs, f, max_depth, policy, cs);
  return balance_distance(left, right);
}

bool balanced(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
              Scheduler& sigma_rhs, const InsightFunction& f,
              std::size_t max_depth, const Rational& eps) {
  return exact_balance_epsilon(lhs, sigma_lhs, rhs, sigma_rhs, f,
                               max_depth) <= eps;
}

SampledEpsilon sampled_balance_epsilon(
    const PsioaFactory& make_lhs, const SchedulerFactory& make_sigma_lhs,
    const PsioaFactory& make_rhs, const SchedulerFactory& make_sigma_rhs,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, double delta) {
  const Disc<Perception, double> left = parallel_sample_fdist(
      make_lhs, make_sigma_lhs, f, trials, seed, max_depth, pool);
  const Disc<Perception, double> right = parallel_sample_fdist(
      make_rhs, make_sigma_rhs, f, trials, seed + 1, max_depth, pool);
  SampledEpsilon out;
  out.estimate = balance_distance(left, right);
  // Each empirical f-dist mass is a mean of indicators; a crude union
  // bound over the two estimates gives a usable radius for reporting.
  out.radius = 2.0 * hoeffding_radius(trials, delta);
  return out;
}

// -- sequential (answer-cost) epsilon --------------------------------------

namespace {

/// Distinct RNG universe per (stage, side): the golden-gamma rotation
/// keeps every stage's chunk streams disjoint from every other stage's.
std::uint64_t seq_stage_seed(std::uint64_t seed, std::size_t stage,
                             std::size_t side) {
  return seed + (2 * static_cast<std::uint64_t>(stage) + side + 1) *
                    0x9e3779b97f4a7c15ULL;
}

std::uint64_t logical_draws(const BatchStats& bs) {
  return bs.action_draws + bs.target_draws;
}

BatchKernel seq_kernel_of(SamplingMode mode) {
  return mode == SamplingMode::kBatchedPerDraw ? BatchKernel::kPerDraw
                                               : BatchKernel::kBlock;
}

/// Plain paired-sampling path: geometric trial stages, wave-interleaved
/// left/right incremental runs, an estimator look after every wave.
SequentialEpsilon plain_sequential_epsilon(
    ParallelSampler& left, ParallelSampler& right, const InsightFunction& f,
    const SequentialPolicy& policy, std::uint64_t seed, std::size_t max_depth,
    ThreadPool& pool, SamplingMode mode) {
  SeqEstimator est(policy);
  Disc<Perception, double> acc_l, acc_r;  // completed-stage integer tallies
  std::uint64_t term_l = 0, term_r = 0;
  std::uint64_t draws_done = 0;
  std::size_t committed = 0;
  std::size_t stage = 0;
  bool decided = false;
  SeqDecision dec;

  std::size_t next_stage =
      policy.sequential() ? std::max<std::size_t>(1, policy.initial_trials)
                          : policy.max_trials;
  while (committed < policy.max_trials && !decided) {
    const std::size_t stage_trials =
        std::min(next_stage, policy.max_trials - committed);
    const std::size_t n_committed = committed + stage_trials;
    IncrementalFdistRun run_l(left, f, stage_trials,
                              seq_stage_seed(seed, stage, 0), max_depth, pool,
                              policy.rounds_per_wave, mode);
    IncrementalFdistRun run_r(right, f, stage_trials,
                              seq_stage_seed(seed, stage, 1), max_depth, pool,
                              policy.rounds_per_wave, mode);
    while (!run_l.done() || !run_r.done()) {
      if (!run_l.done()) run_l.step_wave();
      if (!run_r.done()) run_r.step_wave();
      if (!policy.sequential()) continue;
      // Paired look on the combined tallies (prior stages + this one).
      // Integer count sums are exact in doubles, so the combined tally
      // is independent of wave boundaries and worker counts.
      Disc<Perception, double> tl = acc_l;
      for (const auto& [p, c] : run_l.counts().entries()) tl.add(p, c);
      Disc<Perception, double> tr = acc_r;
      for (const auto& [p, c] : run_r.counts().entries()) tr.add(p, c);
      const std::uint64_t t_l = term_l + run_l.trials_terminal();
      const std::uint64_t t_r = term_r + run_r.trials_terminal();
      const std::uint64_t draws = draws_done +
                                  logical_draws(run_l.batch_stats()) +
                                  logical_draws(run_r.batch_stats());
      dec = est.look(tl, n_committed - t_l, tr, n_committed - t_r,
                     n_committed, draws);
      if (dec.verdict != SeqVerdict::kUndecided) {
        decided = true;
        break;
      }
    }
    draws_done += logical_draws(run_l.batch_stats()) +
                  logical_draws(run_r.batch_stats());
    for (const auto& [p, c] : run_l.counts().entries()) acc_l.add(p, c);
    for (const auto& [p, c] : run_r.counts().entries()) acc_r.add(p, c);
    term_l += run_l.trials_terminal();
    term_r += run_r.trials_terminal();
    committed = n_committed;
    ++stage;
    next_stage = std::max<std::size_t>(
        stage_trials + 1,
        static_cast<std::size_t>(policy.growth *
                                 static_cast<double>(stage_trials)));
  }

  SequentialEpsilon out;
  // Report the terminal-normalized estimate (a well-defined pair of
  // probability distributions even when the stop fired mid-wave).
  Disc<Perception, double> pl, pr;
  if (term_l > 0) {
    for (const auto& [p, c] : acc_l.entries()) {
      pl.add(p, c / static_cast<double>(term_l));
    }
  }
  if (term_r > 0) {
    for (const auto& [p, c] : acc_r.entries()) {
      pr.add(p, c / static_cast<double>(term_r));
    }
  }
  out.estimate = balance_distance(pl, pr);
  out.trials = committed;
  out.draws = draws_done;
  out.looks = est.looks();
  out.stages = stage;
  if (policy.sequential()) {
    out.verdict = dec.verdict;
    out.radius = dec.radius;
  } else {
    out.verdict = out.estimate > policy.threshold
                      ? SeqVerdict::kAboveThreshold
                      : SeqVerdict::kBelowThreshold;
    out.radius = 2.0 * hoeffding_radius(committed, 1e-6);
  }
  return out;
}

/// One side of the splitting estimator: its strata, steering weights,
/// and the per-stratum tallies accumulated across stages.
struct SplitSide {
  PrefixStrata strata;
  std::vector<double> weights;
  std::vector<Disc<Perception, double>> counts;
  std::vector<std::uint64_t> n;
  std::size_t sampled = 0;  // total conditional samples committed
};

/// Hoeffding scale of the stratified mean: sum_i w_i^2 / n_i.
double split_scale(const SplitSide& side) {
  double scale = 0.0;
  for (std::size_t i = 0; i < side.strata.live.size(); ++i) {
    if (side.n[i] == 0) return 1.0;  // unsampled stratum: no bound yet
    const double w = side.strata.live[i].prob.to_double();
    scale += w * w / static_cast<double>(side.n[i]);
  }
  return scale;
}

/// Allocation steering: stratum score = cone mass x (1 + boost *
/// word_delta / max_word_delta), where word_delta compares the two
/// sides' cone mass on the stratum's action word -- high-|delta| words
/// are where the distinguishing advantage lives, so they get budget.
void score_split_sides(SplitSide& l, SplitSide& r, double boost) {
  std::map<std::vector<ActionId>, double> mass_l, mass_r;
  for (const auto& s : l.strata.live) {
    mass_l[s.frag.actions()] += s.prob.to_double();
  }
  for (const auto& s : r.strata.live) {
    mass_r[s.frag.actions()] += s.prob.to_double();
  }
  std::map<std::vector<ActionId>, double> delta;
  double max_delta = 0.0;
  for (const auto& [w, m] : mass_l) delta[w] = m;
  for (const auto& [w, m] : mass_r) delta[w] -= m;
  for (auto& [w, d] : delta) {
    d = std::abs(d);
    max_delta = std::max(max_delta, d);
  }
  auto score = [&](SplitSide& side) {
    side.weights.resize(side.strata.live.size());
    for (std::size_t i = 0; i < side.strata.live.size(); ++i) {
      const double w = side.strata.live[i].prob.to_double();
      double steer = 0.0;
      if (max_delta > 0.0) {
        const auto it = delta.find(side.strata.live[i].frag.actions());
        if (it != delta.end()) steer = boost * it->second / max_delta;
      }
      side.weights[i] = w * (1.0 + steer);
    }
    side.counts.assign(side.strata.live.size(), {});
    side.n.assign(side.strata.live.size(), 0);
  };
  score(l);
  score(r);
}

/// One stage of conditional sampling for one side.
void run_split_stage(SplitSide& side, const ParallelSampler& sampler,
                     const InsightFunction& f, std::size_t stage_trials,
                     std::size_t min_trials, std::uint64_t stage_seed,
                     std::size_t max_depth, ThreadPool& pool,
                     SamplingMode mode, std::uint64_t* draws) {
  const std::size_t k = side.strata.live.size();
  if (k == 0) return;
  double total_w = 0.0;
  for (double w : side.weights) total_w += w;
  std::vector<std::size_t> alloc(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double share =
        total_w > 0.0 ? side.weights[i] / total_w : 1.0 / static_cast<double>(k);
    alloc[i] = std::max<std::size_t>(
        std::max<std::size_t>(1, min_trials),
        static_cast<std::size_t>(
            std::llround(share * static_cast<double>(stage_trials))));
    side.sampled += alloc[i];
  }
  BatchStats stats;
  const std::vector<Disc<Perception, double>> fresh = stratified_sample_counts(
      sampler, f, side.strata, alloc, stage_seed, max_depth, pool, mode,
      &stats);
  for (std::size_t i = 0; i < k; ++i) {
    for (const auto& [p, c] : fresh[i].entries()) side.counts[i].add(p, c);
    side.n[i] += alloc[i];
  }
  if (draws != nullptr) *draws += logical_draws(stats);
}

/// Importance-splitting path: exact prefix strata per side, conditional
/// continuation sampling with exact reweighting, stage-boundary looks.
SequentialEpsilon split_sequential_epsilon(
    ParallelSampler& left, ParallelSampler& right, const InsightFunction& f,
    const SequentialPolicy& policy, std::uint64_t seed, std::size_t max_depth,
    ThreadPool& pool, SamplingMode mode) {
  SplitSide l, r;
  {
    auto view_l = left.worker_view();
    SchedulerPtr sched_l = left.worker_scheduler();
    l.strata = expand_prefix_strata(*view_l, *sched_l, f, policy.split_depth);
    auto view_r = right.worker_view();
    SchedulerPtr sched_r = right.worker_scheduler();
    r.strata = expand_prefix_strata(*view_r, *sched_r, f, policy.split_depth);
  }
  score_split_sides(l, r, policy.split_boost);

  SequentialEpsilon out;
  out.strata = l.strata.live.size() + r.strata.live.size();

  if (l.strata.live.empty() && r.strata.live.empty()) {
    // Everything halted before split_depth: both f-dists are exact.
    out.estimate =
        balance_distance(to_double(l.strata.settled),
                         to_double(r.strata.settled));
    out.radius = 0.0;
    out.verdict = out.estimate > policy.threshold
                      ? SeqVerdict::kAboveThreshold
                      : SeqVerdict::kBelowThreshold;
    return out;
  }

  // The bounded-increment Hoeffding form is the bound that survives
  // stratified reweighting; pin it regardless of the policy default.
  SequentialPolicy est_policy = policy;
  est_policy.bound = SeqBound::kHoeffding;
  SeqEstimator est(est_policy);

  std::uint64_t draws_done = 0;
  std::size_t committed = 0;
  std::size_t stage = 0;
  bool decided = false;
  SeqDecision dec;
  double estimate = 0.0;

  std::size_t next_stage =
      policy.sequential() ? std::max<std::size_t>(1, policy.initial_trials)
                          : policy.max_trials;
  while (committed < policy.max_trials && !decided) {
    const std::size_t stage_trials =
        std::min(next_stage, policy.max_trials - committed);
    run_split_stage(l, left, f, stage_trials, policy.split_min_trials,
                    seq_stage_seed(seed, stage, 0), max_depth, pool, mode,
                    &draws_done);
    run_split_stage(r, right, f, stage_trials, policy.split_min_trials,
                    seq_stage_seed(seed, stage, 1), max_depth, pool, mode,
                    &draws_done);
    committed += stage_trials;
    ++stage;
    estimate = balance_distance(stratified_fdist(l.strata, l.counts, l.n),
                                stratified_fdist(r.strata, r.counts, r.n));
    if (policy.sequential()) {
      // Stage boundaries only: every stratum cursor ran to completion,
      // so there is no censoring slack.
      dec = est.look_scaled(estimate, 0.0, 0.5, split_scale(l), 0.5,
                            split_scale(r), committed, draws_done);
      decided = dec.verdict != SeqVerdict::kUndecided;
    }
    next_stage = std::max<std::size_t>(
        stage_trials + 1,
        static_cast<std::size_t>(policy.growth *
                                 static_cast<double>(stage_trials)));
  }

  out.estimate = estimate;
  out.trials = std::max(l.sampled, r.sampled);
  out.draws = draws_done;
  out.looks = est.looks();
  out.stages = stage;
  if (policy.sequential()) {
    out.verdict = dec.verdict;
    out.radius = dec.radius;
  } else {
    out.verdict = out.estimate > policy.threshold
                      ? SeqVerdict::kAboveThreshold
                      : SeqVerdict::kBelowThreshold;
    out.radius = seq_hoeffding_radius(split_scale(l), 1e-6) +
                 seq_hoeffding_radius(split_scale(r), 1e-6);
  }
  return out;
}

}  // namespace

std::vector<Disc<Perception, double>> stratified_sample_counts(
    const ParallelSampler& sampler, const InsightFunction& f,
    const PrefixStrata& strata, const std::vector<std::size_t>& alloc,
    std::uint64_t seed, std::size_t max_depth, ThreadPool& pool,
    SamplingMode mode, BatchStats* stats) {
  if (alloc.size() != strata.live.size()) {
    throw std::invalid_argument(
        "stratified_sample_counts: alloc size != live strata count");
  }
  if (mode == SamplingMode::kSerial) {
    throw std::invalid_argument(
        "stratified_sample_counts: conditioning requires a batched mode");
  }
  const BatchKernel kernel = seq_kernel_of(mode);
  const std::size_t k = strata.live.size();

  // One worker view + scheduler + cursor per stratum, built on the
  // driving thread; the cursors fan out over the pool but each owns its
  // instances (one-thread-per-instance) and draws from stream i of
  // `seed` -- so the tallies are a pure function of (seed, alloc),
  // independent of worker count and scheduling order.
  struct Cursor {
    std::shared_ptr<SnapshotPsioa> view;
    SchedulerPtr sched;
    std::optional<BatchSampler> bs;
  };
  std::vector<Cursor> cursors(k);
  for (std::size_t i = 0; i < k; ++i) {
    cursors[i].view = sampler.worker_view();
    cursors[i].sched = sampler.worker_scheduler();
    cursors[i].bs.emplace(*cursors[i].view, *cursors[i].sched, alloc[i],
                          Xoshiro256::for_stream(seed, i), max_depth,
                          strata.live[i].frag, kernel);
  }
  const InsightFunction& fn = f;
  for (Cursor& c : cursors) {
    pool.submit([&c, &fn] {
      c.bs->run_to_completion();
      c.bs->accumulate_counts(fn);
    });
  }
  pool.wait_idle();

  std::vector<Disc<Perception, double>> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = cursors[i].bs->accumulate_counts(f);
    if (stats != nullptr) *stats += cursors[i].bs->stats();
  }
  return out;
}

Disc<Perception, double> stratified_fdist(
    const PrefixStrata& strata,
    const std::vector<Disc<Perception, double>>& counts,
    const std::vector<std::uint64_t>& n) {
  Disc<Perception, double> out;
  for (const auto& [p, w] : strata.settled.entries()) {
    out.add(p, w.to_double());
  }
  for (std::size_t i = 0; i < strata.live.size(); ++i) {
    if (i >= counts.size() || i >= n.size() || n[i] == 0) continue;
    const double w = strata.live[i].prob.to_double();
    const double dn = static_cast<double>(n[i]);
    for (const auto& [p, c] : counts[i].entries()) {
      out.add(p, w * c / dn);
    }
  }
  return out;
}

SequentialEpsilon sequential_balance_epsilon(
    const PsioaFactory& make_lhs, const SchedulerFactory& make_sigma_lhs,
    const PsioaFactory& make_rhs, const SchedulerFactory& make_sigma_rhs,
    const InsightFunction& f, const SequentialPolicy& policy,
    std::uint64_t seed, std::size_t max_depth, ThreadPool& pool,
    SamplingMode mode) {
  if (!policy.active()) {
    throw std::invalid_argument(
        "sequential_balance_epsilon: policy.max_trials == 0 (inactive)");
  }
  if (mode == SamplingMode::kSerial) {
    throw std::invalid_argument(
        "sequential_balance_epsilon: kSerial has no round structure; use "
        "a batched mode");
  }
  ParallelSampler left(make_lhs, make_sigma_lhs);
  ParallelSampler right(make_rhs, make_sigma_rhs);
  // Covering warm-up: horizon = max_depth compiles every row the cone
  // can touch (the walk still caps at WarmupPlan::max_states; overflow
  // past the cap falls back to the mutex-serialized residue).
  WarmupPlan plan;
  plan.horizon = max_depth;
  left.prepare(plan, max_depth);
  right.prepare(plan, max_depth);

  if (policy.split_depth > 0) {
    return split_sequential_epsilon(left, right, f, policy, seed, max_depth,
                                    pool, mode);
  }
  return plain_sequential_epsilon(left, right, f, policy, seed, max_depth,
                                  pool, mode);
}

}  // namespace cdse
