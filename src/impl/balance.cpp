#include "impl/balance.hpp"

#include "util/stats.hpp"

namespace cdse {

Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth) {
  const ExactDisc<Perception> left =
      exact_fdist(lhs, sigma_lhs, f, max_depth);
  const ExactDisc<Perception> right =
      exact_fdist(rhs, sigma_rhs, f, max_depth);
  return balance_distance(left, right);
}

namespace {

/// One side of the policy overload: enumerate the quotient when the
/// reduction succeeded, the original otherwise.
ExactDisc<Perception> reduced_fdist(Psioa& system, Scheduler& sigma,
                                    const InsightFunction& f,
                                    std::size_t max_depth,
                                    const ReductionPolicy& policy,
                                    ConeStats& stats) {
  const std::optional<ReducedSystem> red =
      reduce_for_enumeration(system, max_depth, policy);
  if (!red.has_value()) return exact_fdist(system, sigma, f, max_depth, &stats);
  stats.quotient_states += red->states;
  stats.quotient_blocks += red->blocks;
  return exact_fdist(*red->view, sigma, f, max_depth, &stats);
}

}  // namespace

Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth,
                               const ReductionPolicy& policy,
                               ConeStats* stats) {
  if (!policy.enabled()) {
    return exact_balance_epsilon(lhs, sigma_lhs, rhs, sigma_rhs, f, max_depth);
  }
  ConeStats scratch;
  ConeStats& cs = stats != nullptr ? *stats : scratch;
  const ExactDisc<Perception> left =
      reduced_fdist(lhs, sigma_lhs, f, max_depth, policy, cs);
  const ExactDisc<Perception> right =
      reduced_fdist(rhs, sigma_rhs, f, max_depth, policy, cs);
  return balance_distance(left, right);
}

bool balanced(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
              Scheduler& sigma_rhs, const InsightFunction& f,
              std::size_t max_depth, const Rational& eps) {
  return exact_balance_epsilon(lhs, sigma_lhs, rhs, sigma_rhs, f,
                               max_depth) <= eps;
}

SampledEpsilon sampled_balance_epsilon(
    const PsioaFactory& make_lhs, const SchedulerFactory& make_sigma_lhs,
    const PsioaFactory& make_rhs, const SchedulerFactory& make_sigma_rhs,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, double delta) {
  const Disc<Perception, double> left = parallel_sample_fdist(
      make_lhs, make_sigma_lhs, f, trials, seed, max_depth, pool);
  const Disc<Perception, double> right = parallel_sample_fdist(
      make_rhs, make_sigma_rhs, f, trials, seed + 1, max_depth, pool);
  SampledEpsilon out;
  out.estimate = balance_distance(left, right);
  // Each empirical f-dist mass is a mean of indicators; a crude union
  // bound over the two estimates gives a usable radius for reporting.
  out.radius = 2.0 * hoeffding_radius(trials, delta);
  return out;
}

}  // namespace cdse
