#include "impl/implementation.hpp"

#include <algorithm>

namespace cdse {

ImplementationReport check_implementation(
    const PsioaPtr& a, const PsioaPtr& b,
    const std::vector<LabeledPsioa>& envs,
    const std::vector<LabeledScheduler>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth) {
  ImplementationReport report;
  for (const auto& env : envs) {
    auto lhs = compose(env.automaton, a);
    auto rhs = compose(env.automaton, b);
    for (const auto& sched : schedulers) {
      const SchedulerPtr matched = correspond(sched.scheduler);
      const Rational eps = exact_balance_epsilon(
          *lhs, *sched.scheduler, *rhs, *matched, f, max_depth);
      report.rows.push_back({env.label, sched.label, eps});
      if (eps > report.max_eps) report.max_eps = eps;
    }
  }
  return report;
}

ImplementationReport check_implementation_parallel(
    const PsioaFactory& a, const PsioaFactory& b,
    const std::vector<LabeledPsioaFactory>& envs,
    const std::vector<LabeledSchedulerFactory>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth, ThreadPool& pool, const ReductionPolicy& policy) {
  ImplementationReport report;
  const std::size_t cells = envs.size() * schedulers.size();
  report.rows.resize(cells);
  // Env-major cell order, matching the serial checker's row order. Each
  // cell builds its own E||A / E||B pair and scheduler instances, so no
  // memo table is shared across workers. Quotient reduction (when the
  // policy enables it) is likewise per cell: each worker minimizes its
  // own composed instances, preserving the one-thread-per-instance rule.
  parallel_for_chunks(
      pool, cells,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)chunk;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const auto& env = envs[idx / schedulers.size()];
          const auto& sched = schedulers[idx % schedulers.size()];
          auto lhs = compose(env.make(), a());
          auto rhs = compose(env.make(), b());
          const SchedulerPtr sigma = sched.make();
          const SchedulerPtr matched = correspond(sigma);
          const Rational eps = exact_balance_epsilon(
              *lhs, *sigma, *rhs, *matched, f, max_depth, policy);
          report.rows[idx] = {env.label, sched.label, eps};
        }
      });
  // Exact epsilons reduce over the fixed row order; max over rationals is
  // order-insensitive anyway, so the report is worker-count independent.
  for (const auto& row : report.rows) {
    if (row.eps > report.max_eps) report.max_eps = row.eps;
  }
  return report;
}

SampledImplementationReport check_implementation_sampled(
    const PsioaFactory& a, const PsioaFactory& b,
    const std::vector<LabeledPsioaFactory>& envs,
    const std::vector<LabeledSchedulerFactory>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth, ThreadPool& pool, const SequentialPolicy& policy,
    std::uint64_t seed, SamplingMode mode) {
  SampledImplementationReport report;
  const std::size_t cells = envs.size() * schedulers.size();
  report.all_below = cells > 0;
  if (cells == 0) return report;
  // Union bound: the whole grid's error budget is policy.delta, split
  // evenly so each cell's anytime-valid verdict spends delta / cells.
  SequentialPolicy cell_policy = policy;
  if (policy.sequential()) {
    cell_policy.delta = policy.delta / static_cast<double>(cells);
  }
  for (std::size_t idx = 0; idx < cells; ++idx) {
    const auto& env = envs[idx / schedulers.size()];
    const auto& sched = schedulers[idx % schedulers.size()];
    const PsioaFactory make_lhs = [&] { return compose(env.make(), a()); };
    const PsioaFactory make_rhs = [&] { return compose(env.make(), b()); };
    const SchedulerFactory make_sigma = sched.make;
    const SchedulerFactory make_matched = [&] {
      return correspond(sched.make());
    };
    const SequentialEpsilon cell = sequential_balance_epsilon(
        make_lhs, make_sigma, make_rhs, make_matched, f, cell_policy,
        seed + static_cast<std::uint64_t>(idx) * 0x9e3779b97f4a7c15ULL,
        max_depth, pool, mode);
    report.rows.push_back({env.label, sched.label, cell.estimate, cell.radius,
                           cell.verdict, cell.trials, cell.draws});
    report.max_eps = std::max(report.max_eps, cell.estimate);
    report.total_draws += cell.draws;
    if (cell.verdict != SeqVerdict::kBelowThreshold) report.all_below = false;
  }
  return report;
}

TransitivityRow check_transitivity_case(Psioa& e_a1, Psioa& e_a2,
                                        Psioa& e_a3, Scheduler& sigma,
                                        const InsightFunction& f,
                                        std::size_t max_depth) {
  TransitivityRow row;
  row.eps12 =
      exact_balance_epsilon(e_a1, sigma, e_a2, sigma, f, max_depth);
  row.eps23 =
      exact_balance_epsilon(e_a2, sigma, e_a3, sigma, f, max_depth);
  row.eps13 =
      exact_balance_epsilon(e_a1, sigma, e_a3, sigma, f, max_depth);
  row.triangle_holds = row.eps13 <= row.eps12 + row.eps23;
  return row;
}

}  // namespace cdse
