#include "impl/implementation.hpp"

namespace cdse {

ImplementationReport check_implementation(
    const PsioaPtr& a, const PsioaPtr& b,
    const std::vector<LabeledPsioa>& envs,
    const std::vector<LabeledScheduler>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth) {
  ImplementationReport report;
  for (const auto& env : envs) {
    auto lhs = compose(env.automaton, a);
    auto rhs = compose(env.automaton, b);
    for (const auto& sched : schedulers) {
      const SchedulerPtr matched = correspond(sched.scheduler);
      const Rational eps = exact_balance_epsilon(
          *lhs, *sched.scheduler, *rhs, *matched, f, max_depth);
      report.rows.push_back({env.label, sched.label, eps});
      if (eps > report.max_eps) report.max_eps = eps;
    }
  }
  return report;
}

TransitivityRow check_transitivity_case(Psioa& e_a1, Psioa& e_a2,
                                        Psioa& e_a3, Scheduler& sigma,
                                        const InsightFunction& f,
                                        std::size_t max_depth) {
  TransitivityRow row;
  row.eps12 =
      exact_balance_epsilon(e_a1, sigma, e_a2, sigma, f, max_depth);
  row.eps23 =
      exact_balance_epsilon(e_a2, sigma, e_a3, sigma, f, max_depth);
  row.eps13 =
      exact_balance_epsilon(e_a1, sigma, e_a3, sigma, f, max_depth);
  row.triangle_holds = row.eps13 <= row.eps12 + row.eps23;
  return row;
}

}  // namespace cdse
