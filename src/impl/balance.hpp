#pragma once
// Balanced schedulers (Def 3.6) and epsilon computation.
//
// sigma S^{<=eps}_{E,f} sigma' holds when every family-sum of f-dist
// differences stays within eps; for finite-support f-dists that supremum
// is the balance distance of measure/disc.hpp (= total variation for
// probability measures). These helpers evaluate the *exact* epsilon
// between two scheduled systems -- the left/right automata are expected
// to already include the environment (E||A and E||B).

#include "sched/cone_measure.hpp"
#include "sched/exact_engine.hpp"
#include "sched/sampler.hpp"

namespace cdse {

/// Exact epsilon: balance distance between the two exact f-dists.
Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth);

/// Exact epsilon through an enabled ReductionPolicy: each side is
/// frozen, minimized to its bisimulation quotient, and enumerated over
/// blocks -- the result is Rational-equal to the unreduced overload
/// (quotienting preserves every signature-driven scheduler and
/// trace-functional insight exactly; tests/quotient_test.cpp pins the
/// equality across the whole stack zoo). Sides whose covering warm-up
/// truncates fall back to the raw enumeration, so the overloads always
/// agree. `stats` (optional) receives the enumeration counters summed
/// over both sides, including quotient_states/quotient_blocks.
Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth,
                               const ReductionPolicy& policy,
                               ConeStats* stats = nullptr);

/// True iff sigma_lhs S^{<=eps}_{E,f} sigma_rhs, exactly.
bool balanced(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
              Scheduler& sigma_rhs, const InsightFunction& f,
              std::size_t max_depth, const Rational& eps);

/// Sampled epsilon with Hoeffding error radius, for systems too large to
/// enumerate. Returns (estimate, radius) at confidence 1 - delta.
struct SampledEpsilon {
  double estimate = 0.0;
  double radius = 1.0;
};

SampledEpsilon sampled_balance_epsilon(
    const PsioaFactory& make_lhs, const SchedulerFactory& make_sigma_lhs,
    const PsioaFactory& make_rhs, const SchedulerFactory& make_sigma_rhs,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, double delta = 1e-6);

}  // namespace cdse
