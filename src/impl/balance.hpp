#pragma once
// Balanced schedulers (Def 3.6) and epsilon computation.
//
// sigma S^{<=eps}_{E,f} sigma' holds when every family-sum of f-dist
// differences stays within eps; for finite-support f-dists that supremum
// is the balance distance of measure/disc.hpp (= total variation for
// probability measures). These helpers evaluate the *exact* epsilon
// between two scheduled systems -- the left/right automata are expected
// to already include the environment (E||A and E||B).

#include "sched/cone_measure.hpp"
#include "sched/exact_engine.hpp"
#include "sched/sampler.hpp"
#include "sched/seq_estimator.hpp"

namespace cdse {

/// Exact epsilon: balance distance between the two exact f-dists.
Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth);

/// Exact epsilon through an enabled ReductionPolicy: each side is
/// frozen, minimized to its bisimulation quotient, and enumerated over
/// blocks -- the result is Rational-equal to the unreduced overload
/// (quotienting preserves every signature-driven scheduler and
/// trace-functional insight exactly; tests/quotient_test.cpp pins the
/// equality across the whole stack zoo). Sides whose covering warm-up
/// truncates fall back to the raw enumeration, so the overloads always
/// agree. `stats` (optional) receives the enumeration counters summed
/// over both sides, including quotient_states/quotient_blocks.
Rational exact_balance_epsilon(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
                               Scheduler& sigma_rhs, const InsightFunction& f,
                               std::size_t max_depth,
                               const ReductionPolicy& policy,
                               ConeStats* stats = nullptr);

/// True iff sigma_lhs S^{<=eps}_{E,f} sigma_rhs, exactly.
bool balanced(Psioa& lhs, Scheduler& sigma_lhs, Psioa& rhs,
              Scheduler& sigma_rhs, const InsightFunction& f,
              std::size_t max_depth, const Rational& eps);

/// Sampled epsilon with Hoeffding error radius, for systems too large to
/// enumerate. Returns (estimate, radius) at confidence 1 - delta.
struct SampledEpsilon {
  double estimate = 0.0;
  double radius = 1.0;
};

SampledEpsilon sampled_balance_epsilon(
    const PsioaFactory& make_lhs, const SchedulerFactory& make_sigma_lhs,
    const PsioaFactory& make_rhs, const SchedulerFactory& make_sigma_rhs,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, double delta = 1e-6);

// -- sequential (answer-cost) epsilon --------------------------------------

/// Result of one sequential epsilon decision. With policy.sequential()
/// the verdict is anytime-valid at confidence 1 - delta and `trials` /
/// `draws` record what the early stop actually cost; with a fixed
/// policy (delta == 0) the whole budget runs and the verdict is the
/// point comparison estimate vs threshold -- the reference row of the
/// E22 draw-count tables.
struct SequentialEpsilon {
  double estimate = 0.0;
  double radius = 1.0;
  SeqVerdict verdict = SeqVerdict::kUndecided;
  std::size_t trials = 0;   ///< per-side trials committed
  std::uint64_t draws = 0;  ///< logical action+target draws, both sides
  std::size_t looks = 0;    ///< estimator looks spent
  std::size_t stages = 0;   ///< geometric trial stages run
  std::size_t strata = 0;   ///< live strata, both sides (0 = plain mode)
};

/// Sequential epsilon between E||A (make_lhs under make_sigma_lhs) and
/// E||B: prepares one frozen snapshot per side (WarmupPlan with
/// horizon = max_depth), then commits trials in geometric stages
/// (policy.initial_trials, x policy.growth, capped at
/// policy.max_trials), driving both sides' IncrementalFdistRun wave by
/// wave and handing the paired partial tallies to a SeqEstimator after
/// every wave -- stopping the moment the confidence sequence clears
/// policy.threshold. policy.split_depth > 0 switches to the
/// importance-splitting estimator: the exact cone of each side is
/// expanded to split_depth (expand_prefix_strata), per-prefix
/// BatchSampler cursors sample the conditional continuations, and the
/// stratified tally reweights by exact cone mass, with sample budget
/// steered toward strata whose action words show the largest cross-side
/// cone-mass gap (policy.split_boost). The plain path stays available
/// (split_depth == 0) as the differential reference. kSerial mode is
/// rejected; policy.active() is required.
SequentialEpsilon sequential_balance_epsilon(
    const PsioaFactory& make_lhs, const SchedulerFactory& make_sigma_lhs,
    const PsioaFactory& make_rhs, const SchedulerFactory& make_sigma_rhs,
    const InsightFunction& f, const SequentialPolicy& policy,
    std::uint64_t seed, std::size_t max_depth, ThreadPool& pool,
    SamplingMode mode = SamplingMode::kBatched);

/// Per-stratum conditional tallies (importance splitting), exposed for
/// the chi-square unbiasedness gates: for each live stratum i of
/// `strata`, samples alloc[i] continuations conditioned on the stratum
/// prefix (one prefix-conditioned BatchSampler on its own worker view,
/// stream i of `seed`) and returns the unnormalized per-perception
/// tallies, in stratum order. Strata fan out over the pool but each
/// carries its own RNG stream keyed by its (deterministic, enumeration-
/// order) index, so the tallies are identical at every worker count.
std::vector<Disc<Perception, double>> stratified_sample_counts(
    const ParallelSampler& sampler, const InsightFunction& f,
    const PrefixStrata& strata, const std::vector<std::size_t>& alloc,
    std::uint64_t seed, std::size_t max_depth, ThreadPool& pool,
    SamplingMode mode = SamplingMode::kBatched, BatchStats* stats = nullptr);

/// Rao-style reweighted estimate: settled (exact, to double) plus
/// sum_i cone_mass_i * counts_i / n_i over live strata -- unbiased for
/// the full-depth f-dist for any allocation with n_i >= 1 everywhere.
/// Strata with n_i == 0 are skipped (their mass goes missing; the
/// sequential driver never allocates zero).
Disc<Perception, double> stratified_fdist(
    const PrefixStrata& strata,
    const std::vector<Disc<Perception, double>>& counts,
    const std::vector<std::uint64_t>& n);

}  // namespace cdse
