#include "impl/family_sweep.hpp"

#include "util/poly.hpp"

namespace cdse {

FamilySweepReport family_epsilon_sweep(
    const PsioaFamily& lhs, const PsioaFamily& rhs,
    const SchedulerFamily& sched, const InsightFunction& f,
    const std::vector<std::uint32_t>& ks, std::size_t max_depth,
    std::uint32_t exact_upto, std::size_t trials, std::uint64_t seed,
    ThreadPool& pool, const ReductionPolicy& policy,
    const SequentialPolicy& seq) {
  FamilySweepReport report;
  report.rows.resize(ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) report.rows[i].k = ks[i];

  // Phase 1: the exact cells are independent (fresh instances per k from
  // the pure family builders), so they fan out over the pool. Each cell
  // is an exact rational, and rows land at their k's index, so the
  // report is identical to the serial sweep at every worker count.
  std::vector<std::size_t> exact_idx;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i] <= exact_upto) exact_idx.push_back(i);
  }
  parallel_for_chunks(
      pool, exact_idx.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)chunk;
        for (std::size_t j = begin; j < end; ++j) {
          FamilySweepRow& row = report.rows[exact_idx[j]];
          PsioaPtr a = lhs.make(row.k);
          PsioaPtr b = rhs.make(row.k);
          SchedulerPtr s = sched.make(row.k);
          row.exact =
              exact_balance_epsilon(*a, *s, *b, *s, f, max_depth, policy);
          row.sampled = row.exact->to_double();
          row.radius = 0.0;
        }
      });

  // Phase 2: sampled cells run serially here because each one already
  // spreads its trials over the same pool (nesting parallel_for_chunks
  // inside a worker would deadlock on wait_idle). With an active
  // sequential policy the cells early-stop; delta splits evenly over the
  // sampled cells so the sweep's verdicts share one union-bound budget.
  std::size_t sampled_cells = 0;
  for (const FamilySweepRow& row : report.rows) {
    if (!row.exact.has_value()) ++sampled_cells;
  }
  SequentialPolicy cell_seq = seq;
  if (seq.sequential() && sampled_cells > 0) {
    cell_seq.delta = seq.delta / static_cast<double>(sampled_cells);
  }
  for (FamilySweepRow& row : report.rows) {
    if (row.exact.has_value()) continue;
    const std::uint32_t k = row.k;
    if (seq.active()) {
      const SequentialEpsilon se = sequential_balance_epsilon(
          [&lhs, k] { return lhs.make(k); },
          [&sched, k] { return sched.make(k); },
          [&rhs, k] { return rhs.make(k); },
          [&sched, k] { return sched.make(k); }, f, cell_seq, seed + k,
          max_depth, pool);
      row.sampled = se.estimate;
      row.radius = se.radius;
      row.verdict = se.verdict;
      row.trials_used = se.trials;
      row.draws = se.draws;
      report.total_draws += se.draws;
    } else if (trials > 0) {
      const SampledEpsilon se = sampled_balance_epsilon(
          [&lhs, k] { return lhs.make(k); },
          [&sched, k] { return sched.make(k); },
          [&rhs, k] { return rhs.make(k); },
          [&sched, k] { return sched.make(k); }, f, trials, seed + k,
          max_depth, pool);
      row.sampled = se.estimate;
      row.radius = se.radius;
    }
  }

  std::vector<double> eps_series;
  eps_series.reserve(report.rows.size());
  for (const FamilySweepRow& row : report.rows) {
    eps_series.push_back(row.exact ? row.exact->to_double() : row.sampled);
  }
  report.negligible_looking = looks_negligible(ks, eps_series);
  report.fitted_exponent = fitted_decay_exponent(ks, eps_series);
  return report;
}

}  // namespace cdse
