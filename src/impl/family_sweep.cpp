#include "impl/family_sweep.hpp"

#include "util/poly.hpp"

namespace cdse {

FamilySweepReport family_epsilon_sweep(
    const PsioaFamily& lhs, const PsioaFamily& rhs,
    const SchedulerFamily& sched, const InsightFunction& f,
    const std::vector<std::uint32_t>& ks, std::size_t max_depth,
    std::uint32_t exact_upto, std::size_t trials, std::uint64_t seed,
    ThreadPool& pool) {
  FamilySweepReport report;
  std::vector<double> eps_series;
  for (std::uint32_t k : ks) {
    FamilySweepRow row;
    row.k = k;
    if (k <= exact_upto) {
      PsioaPtr a = lhs.make(k);
      PsioaPtr b = rhs.make(k);
      SchedulerPtr s = sched.make(k);
      row.exact =
          exact_balance_epsilon(*a, *s, *b, *s, f, max_depth);
      row.sampled = row.exact->to_double();
      row.radius = 0.0;
    }
    if (trials > 0 && !row.exact.has_value()) {
      const SampledEpsilon se = sampled_balance_epsilon(
          [&lhs, k] { return lhs.make(k); },
          [&sched, k] { return sched.make(k); },
          [&rhs, k] { return rhs.make(k); },
          [&sched, k] { return sched.make(k); }, f, trials, seed + k,
          max_depth, pool);
      row.sampled = se.estimate;
      row.radius = se.radius;
    }
    eps_series.push_back(row.exact ? row.exact->to_double() : row.sampled);
    report.rows.push_back(std::move(row));
  }
  report.negligible_looking = looks_negligible(ks, eps_series);
  report.fitted_exponent = fitted_decay_exponent(ks, eps_series);
  return report;
}

}  // namespace cdse
