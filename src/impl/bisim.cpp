#include "impl/bisim.hpp"

#include <map>
#include <queue>
#include <unordered_map>
#include <vector>

namespace cdse {

namespace {

/// A state of the disjoint union: (side, local state handle).
struct UState {
  int side;
  State q;
  friend bool operator<(const UState& x, const UState& y) {
    return std::tie(x.side, x.q) < std::tie(y.side, y.q);
  }
  friend bool operator==(const UState& x, const UState& y) {
    return x.side == y.side && x.q == y.q;
  }
};

struct Explored {
  std::vector<UState> states;
  std::map<UState, std::size_t> index;
  bool exhaustive = true;
};

Explored explore(Psioa& a, Psioa& b, std::size_t depth,
                 std::size_t max_states) {
  Explored out;
  Psioa* sides[2] = {&a, &b};
  for (int side = 0; side < 2; ++side) {
    std::queue<std::pair<State, std::size_t>> frontier;
    const State q0 = sides[side]->start_state();
    frontier.emplace(q0, 0);
    out.index.emplace(UState{side, q0}, out.states.size());
    out.states.push_back({side, q0});
    std::size_t count = 1;
    while (!frontier.empty()) {
      auto [q, d] = frontier.front();
      frontier.pop();
      if (d >= depth) {
        // Unexpanded leaves make the verdict prefix-only.
        if (!sides[side]->enabled(q).empty()) out.exhaustive = false;
        continue;
      }
      for (ActionId act_id : sides[side]->enabled(q)) {
        for (State q2 : sides[side]->transition(q, act_id).support()) {
          const UState u{side, q2};
          if (out.index.emplace(u, out.states.size()).second) {
            out.states.push_back(u);
            if (++count > max_states) {
              out.exhaustive = false;
              return out;
            }
            frontier.emplace(q2, d + 1);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

BisimResult probabilistic_bisimulation(Psioa& a, Psioa& b,
                                       std::size_t depth,
                                       std::size_t max_states) {
  BisimResult res;
  const Explored ex = explore(a, b, depth, max_states);
  res.exhaustive = ex.exhaustive;
  Psioa* sides[2] = {&a, &b};
  const std::size_t n = ex.states.size();
  for (const auto& u : ex.states) {
    (u.side == 0 ? res.states_a : res.states_b) += 1;
  }

  // Initial partition: by full signature.
  std::vector<std::size_t> block(n);
  {
    std::map<std::pair<ActionSet, std::pair<ActionSet, ActionSet>>,
             std::size_t>
        by_sig;
    for (std::size_t i = 0; i < n; ++i) {
      const Signature sig =
          sides[ex.states[i].side]->signature(ex.states[i].q);
      auto key = std::make_pair(sig.in,
                                std::make_pair(sig.out, sig.internal));
      auto [it, inserted] = by_sig.emplace(key, by_sig.size());
      block[i] = it->second;
    }
    res.blocks = by_sig.size();
  }

  // Refinement: split blocks by the per-action distribution over blocks.
  // States whose successors fall outside the explored set (depth cap)
  // are lumped into a reserved "unknown" block id, which keeps the
  // verdict sound for exhaustive explorations.
  constexpr std::size_t kUnknown = ~std::size_t{0};
  for (;;) {
    ++res.iterations;
    // Signature of each state under the current partition.
    std::map<std::pair<std::size_t,
                       std::vector<std::pair<
                           ActionId,
                           std::vector<std::pair<std::size_t, Rational>>>>>,
             std::size_t>
        next_ids;
    std::vector<std::size_t> next_block(n);
    for (std::size_t i = 0; i < n; ++i) {
      Psioa& automaton = *sides[ex.states[i].side];
      const State q = ex.states[i].q;
      std::vector<std::pair<
          ActionId, std::vector<std::pair<std::size_t, Rational>>>>
          profile;
      for (ActionId act_id : automaton.enabled(q)) {
        std::map<std::size_t, Rational> per_block;
        // Keep the distribution alive across the loop: entries() returns
        // a reference into the StateDist, and a temporary would be dead
        // before the first iteration.
        const StateDist eta = automaton.transition(q, act_id);
        for (const auto& [q2, w] : eta.entries()) {
          auto it = ex.index.find(UState{ex.states[i].side, q2});
          const std::size_t target_block =
              it == ex.index.end() ? kUnknown : block[it->second];
          per_block[target_block] += w;
        }
        profile.emplace_back(
            act_id, std::vector<std::pair<std::size_t, Rational>>(
                        per_block.begin(), per_block.end()));
      }
      auto key = std::make_pair(block[i], std::move(profile));
      auto [it, inserted] = next_ids.emplace(std::move(key),
                                             next_ids.size());
      next_block[i] = it->second;
    }
    if (next_ids.size() == res.blocks) {
      block = std::move(next_block);
      break;  // fixpoint
    }
    res.blocks = next_ids.size();
    block = std::move(next_block);
  }

  const std::size_t start_a =
      ex.index.at(UState{0, sides[0]->start_state()});
  const std::size_t start_b =
      ex.index.at(UState{1, sides[1]->start_state()});
  res.bisimilar = block[start_a] == block[start_b];
  return res;
}

}  // namespace cdse
