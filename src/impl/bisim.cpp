#include "impl/bisim.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cdse {

namespace {

/// A per-action exact distribution over current blocks, kept as a sorted
/// association vector via the shared canonical merge of measure/disc.hpp
/// so profiles compare bit-for-bit.
using BlockDist = std::vector<std::pair<std::size_t, Rational>>;
using Profile = std::vector<std::pair<ActionId, BlockDist>>;

struct Refinement {
  std::vector<std::size_t> block;
  std::size_t blocks = 0;
  std::size_t iterations = 0;
};

/// Shared refinement core: splits blocks by (current block, profile)
/// until the block count stops growing. Refinement only ever splits
/// (the current block id is part of the key), so an unchanged count
/// means an unchanged partition. `profile_of(i)` reads the current
/// partition through `rs.block`; new ids are assigned in first-
/// encounter order over i, so a canonical input order (sorted handles)
/// yields canonical block ids.
template <typename ProfileFn>
void refine_to_fixpoint(Refinement& rs, std::size_t n, ProfileFn&& profile_of) {
  for (;;) {
    ++rs.iterations;
    std::map<std::pair<std::size_t, Profile>, std::size_t> next_ids;
    std::vector<std::size_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto key = std::make_pair(rs.block[i], profile_of(i));
      next[i] = next_ids.emplace(std::move(key), next_ids.size()).first->second;
    }
    const bool fixpoint = next_ids.size() == rs.blocks;
    rs.blocks = next_ids.size();
    rs.block = std::move(next);
    if (fixpoint) break;
  }
}

using SigKey = std::pair<ActionSet, std::pair<ActionSet, ActionSet>>;

SigKey sig_key(const Signature& sig) {
  return std::make_pair(sig.in, std::make_pair(sig.out, sig.internal));
}

// -- two-automaton checker --------------------------------------------------

/// A state of the disjoint union: (side, local state handle).
struct UState {
  int side;
  State q;
  friend bool operator<(const UState& x, const UState& y) {
    return std::tie(x.side, x.q) < std::tie(y.side, y.q);
  }
  friend bool operator==(const UState& x, const UState& y) {
    return x.side == y.side && x.q == y.q;
  }
};

struct Explored {
  std::vector<UState> states;
  std::map<UState, std::size_t> index;
  bool depth_capped[2] = {false, false};
  bool state_capped[2] = {false, false};
};

Explored explore(Psioa& a, Psioa& b, std::size_t depth,
                 std::size_t max_states) {
  Explored out;
  Psioa* sides[2] = {&a, &b};
  for (int side = 0; side < 2; ++side) {
    // The cap is per side: a blown-up B must not cut A's exploration
    // short (the historical single-return here skipped side 1 entirely,
    // leaving its start state unindexed).
    std::queue<std::pair<State, std::size_t>> frontier;
    const State q0 = sides[side]->start_state();
    frontier.emplace(q0, 0);
    out.index.emplace(UState{side, q0}, out.states.size());
    out.states.push_back({side, q0});
    std::size_t count = 1;
    while (!frontier.empty() && !out.state_capped[side]) {
      auto [q, d] = frontier.front();
      frontier.pop();
      if (d >= depth) {
        // Unexpanded leaves make the verdict prefix-only.
        if (!sides[side]->enabled(q).empty()) out.depth_capped[side] = true;
        continue;
      }
      for (ActionId act_id : sides[side]->enabled(q)) {
        for (State q2 : sides[side]->transition(q, act_id).support()) {
          const UState u{side, q2};
          if (out.index.emplace(u, out.states.size()).second) {
            out.states.push_back(u);
            if (++count > max_states) {
              out.state_capped[side] = true;
              break;
            }
            frontier.emplace(q2, d + 1);
          }
        }
        if (out.state_capped[side]) break;
      }
    }
  }
  return out;
}

}  // namespace

BisimResult probabilistic_bisimulation(Psioa& a, Psioa& b,
                                       std::size_t depth,
                                       std::size_t max_states) {
  BisimResult res;
  const Explored ex = explore(a, b, depth, max_states);
  res.depth_capped_a = ex.depth_capped[0];
  res.depth_capped_b = ex.depth_capped[1];
  res.state_capped_a = ex.state_capped[0];
  res.state_capped_b = ex.state_capped[1];
  res.truncated_a = res.depth_capped_a || res.state_capped_a;
  res.truncated_b = res.depth_capped_b || res.state_capped_b;
  Psioa* sides[2] = {&a, &b};
  const std::size_t n = ex.states.size();
  for (const auto& u : ex.states) {
    (u.side == 0 ? res.states_a : res.states_b) += 1;
  }

  // Initial partition: by full signature.
  Refinement rs;
  rs.block.resize(n);
  {
    std::map<SigKey, std::size_t> by_sig;
    for (std::size_t i = 0; i < n; ++i) {
      const Signature sig =
          sides[ex.states[i].side]->signature(ex.states[i].q);
      auto [it, inserted] = by_sig.emplace(sig_key(sig), by_sig.size());
      (void)inserted;
      rs.block[i] = it->second;
    }
    rs.blocks = by_sig.size();
  }

  // Refinement: split blocks by the per-action distribution over blocks.
  // States whose successors fall outside the explored set (depth cap)
  // are lumped into a reserved "unknown" block id, which keeps the
  // verdict sound for exhaustive explorations.
  constexpr std::size_t kUnknown = ~std::size_t{0};
  refine_to_fixpoint(rs, n, [&](std::size_t i) {
    Psioa& automaton = *sides[ex.states[i].side];
    const State q = ex.states[i].q;
    Profile profile;
    for (ActionId act_id : automaton.enabled(q)) {
      BlockDist per_block;
      // Keep the distribution alive across the loop: entries() returns
      // a reference into the StateDist, and a temporary would be dead
      // before the first iteration.
      const StateDist eta = automaton.transition(q, act_id);
      for (const auto& [q2, w] : eta.entries()) {
        auto it = ex.index.find(UState{ex.states[i].side, q2});
        const std::size_t target_block =
            it == ex.index.end() ? kUnknown : rs.block[it->second];
        detail::accumulate_sorted(per_block, target_block, w);
      }
      profile.emplace_back(act_id, std::move(per_block));
    }
    return profile;
  });
  res.blocks = rs.blocks;
  res.iterations = rs.iterations;

  const std::size_t start_a =
      ex.index.at(UState{0, sides[0]->start_state()});
  const std::size_t start_b =
      ex.index.at(UState{1, sides[1]->start_state()});
  res.bisimilar = rs.block[start_a] == rs.block[start_b];
  return res;
}

// -- frozen-snapshot partitioner --------------------------------------------

SnapshotPartition bisimulation_partition(const CompiledSnapshot& snapshot,
                                         PartitionStats* stats) {
  const auto& frozen = snapshot.frozen_states();

  // Canonical state order: sorted handles. Every id assignment below is
  // first-encounter over this order, so block ids -- and with them the
  // quotient's handle space and row orders -- are hash-order free.
  std::vector<State> handles;
  handles.reserve(frozen.size());
  for (const auto& [q, fs] : frozen) {
    (void)fs;
    handles.push_back(q);
  }
  std::sort(handles.begin(), handles.end());
  const std::size_t n = handles.size();
  std::unordered_map<State, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(handles[i], i);

  // A state is complete when its behaviour is fully frozen: signature
  // present, a row for every signature action, every target interned.
  // Anything else is a frontier state the warm-up horizon cut, pinned
  // to a singleton block so partial knowledge never merges.
  std::vector<char> complete(n, 0);
  std::size_t frontier_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& fs = frozen.at(handles[i]);
    bool ok = fs.sig.has_value();
    if (ok) {
      for (ActionId a : fs.sig->all()) {
        auto it = fs.rows.find(a);
        if (it == fs.rows.end()) {
          ok = false;
          break;
        }
        for (const auto& [q2, w] : it->second.dist.entries()) {
          (void)w;
          if (frozen.find(q2) == frozen.end()) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
    }
    complete[i] = ok ? 1 : 0;
    if (!ok) ++frontier_count;
  }

  // Initial partition: complete states by signature, frontier states
  // one block each (their initial id is already unique, so refinement
  // keeps them singletons for free).
  Refinement rs;
  rs.block.resize(n);
  {
    std::map<SigKey, std::size_t> by_sig;
    std::size_t next_id = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (complete[i]) {
        auto [it, inserted] =
            by_sig.emplace(sig_key(*frozen.at(handles[i]).sig), next_id);
        if (inserted) ++next_id;
        rs.block[i] = it->second;
      } else {
        rs.block[i] = next_id++;
      }
    }
    rs.blocks = next_id;
  }

  refine_to_fixpoint(rs, n, [&](std::size_t i) {
    Profile profile;
    if (!complete[i]) return profile;  // singleton: id alone is the key
    const auto& fs = frozen.at(handles[i]);
    for (ActionId a : fs.sig->all()) {
      BlockDist per_block;
      const StateDist& eta = fs.rows.at(a).dist;
      for (const auto& [q2, w] : eta.entries()) {
        detail::accumulate_sorted(per_block, rs.block[index.at(q2)], w);
      }
      profile.emplace_back(a, std::move(per_block));
    }
    return profile;
  });

  SnapshotPartition part;
  part.blocks = rs.blocks;
  part.block_of.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    part.block_of.emplace(handles[i], rs.block[i]);
  }
  if (stats != nullptr) {
    stats->states = n;
    stats->frontier = frontier_count;
    stats->blocks = rs.blocks;
    stats->iterations = rs.iterations;
  }
  return part;
}

}  // namespace cdse
