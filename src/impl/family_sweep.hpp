#pragma once
// <=_{neg,pt} over families (Def 4.12, final clause).
//
// A family sweep evaluates epsilon(k) for a real/ideal pair across
// security parameters: exactly where the execution tree permits, sampled
// (with Hoeffding radius) where it does not. The empirical negligibility
// judgment (util/poly.hpp) then classifies the decay -- experiment E8's
// deliverable.

#include <cstdint>
#include <optional>
#include <vector>

#include "bounded/family.hpp"
#include "impl/balance.hpp"

namespace cdse {

struct FamilySweepRow {
  std::uint32_t k = 0;
  /// Exact epsilon when enumeration was feasible.
  std::optional<Rational> exact;
  /// Sampled epsilon (always filled when trials > 0).
  double sampled = 0.0;
  double radius = 1.0;
  /// Sequential mode bookkeeping (kUndecided / zero on exact cells and
  /// fixed-trial sampled cells).
  SeqVerdict verdict = SeqVerdict::kUndecided;
  std::size_t trials_used = 0;  ///< per-side trials the cell committed
  std::uint64_t draws = 0;      ///< logical draws the cell spent
};

struct FamilySweepReport {
  std::vector<FamilySweepRow> rows;
  bool negligible_looking = false;  // util::looks_negligible on exact/sampled
  double fitted_exponent = 0.0;     // eps(k) ~ 2^{-c k}: the fitted c
  std::uint64_t total_draws = 0;    // sampled-cell draws (E22 cost headline)
};

/// Sweeps eps(k) = balance distance between E_k||A_k and E_k||B_k under
/// sigma_k. `exact_upto`: indices <= this use exact enumeration. With an
/// enabled `policy` the exact cells enumerate bisimulation quotients
/// (per-side fallback on warm-up truncation); every exact epsilon is
/// Rational-equal to the unreduced sweep. Sampled cells ignore the
/// policy (sampling never freezes).
///
/// With an active `seq` policy the sampled cells switch to
/// sequential_balance_epsilon: each cell stops as soon as its confidence
/// sequence decides seq.threshold, recording verdict/trials_used/draws.
/// The per-cell confidence budget is seq.delta split evenly over the
/// sampled cells (union bound: the sweep's sampled verdicts are jointly
/// wrong with probability at most seq.delta). `trials` is ignored for
/// cell sizing when seq is active (seq.max_trials caps the cell).
FamilySweepReport family_epsilon_sweep(
    const PsioaFamily& lhs, const PsioaFamily& rhs,
    const SchedulerFamily& sched, const InsightFunction& f,
    const std::vector<std::uint32_t>& ks, std::size_t max_depth,
    std::uint32_t exact_upto, std::size_t trials, std::uint64_t seed,
    ThreadPool& pool, const ReductionPolicy& policy = {},
    const SequentialPolicy& seq = {});

}  // namespace cdse
