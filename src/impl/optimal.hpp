#pragma once
// Optimal-distinguisher search over off-line (word) schedulers.
//
// Def 4.12 quantifies over *all* bounded schedulers of an admissible
// schema; the experiments use hand-written canonical distinguishers.
// This module closes the loop: it exhaustively searches the space of
// deterministic off-line schedulers (action words, the fully oblivious
// schema) up to a length bound and reports the word achieving the
// maximum exact balance epsilon -- certifying that a canonical
// distinguisher is optimal within the schema, or exhibiting a better
// attack when it is not.
//
// The search prunes words whose prefix already stalls on both systems
// (a SequenceScheduler halts at the first disabled letter, so every
// extension of a stalled word induces the same f-dists).

#include <vector>

#include "impl/balance.hpp"

namespace cdse {

struct BestDistinguisher {
  std::vector<ActionId> word;   ///< the epsilon-maximizing schedule
  Rational eps;                 ///< its exact balance epsilon
  std::size_t words_evaluated = 0;

  std::string word_string() const;
};

/// Searches all words over `alphabet` of length <= max_len, evaluating
/// the exact epsilon between lhs and rhs under the same word on both
/// sides (shared vocabulary). `depth` caps the cone enumeration.
BestDistinguisher search_best_word(Psioa& lhs, Psioa& rhs,
                                   const std::vector<ActionId>& alphabet,
                                   std::size_t max_len,
                                   const InsightFunction& f,
                                   std::size_t depth);

}  // namespace cdse
