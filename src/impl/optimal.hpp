#pragma once
// Optimal-distinguisher search over off-line (word) schedulers.
//
// Def 4.12 quantifies over *all* bounded schedulers of an admissible
// schema; the experiments use hand-written canonical distinguishers.
// This module closes the loop: it exhaustively searches the space of
// deterministic off-line schedulers (action words, the fully oblivious
// schema) up to a length bound and reports the word achieving the
// maximum exact balance epsilon -- certifying that a canonical
// distinguisher is optimal within the schema, or exhibiting a better
// attack when it is not.
//
// The search prunes words whose prefix already stalls on both systems
// (a SequenceScheduler halts at the first disabled letter, so every
// extension of a stalled word induces the same f-dists).
//
// Engines. search_best_word extends each parent word's halted frontier
// (ConeFrontierCache) instead of re-enumerating the shared prefix cone
// per word; search_best_word_parallel additionally freezes both systems
// into shared snapshots and fans independent word subtrees across a
// ThreadPool. Both visit exactly the legacy set of words (identical
// pruning, hence identical words_evaluated) and resolve epsilon ties to
// the first word in the search pre-order -- equivalently, the
// lexicographically smallest word under the alphabet's order -- so all
// three engines return the identical word and epsilon, and the parallel
// result is independent of the worker count.

#include <vector>

#include "impl/balance.hpp"
#include "sched/exact_engine.hpp"

namespace cdse {

struct BestDistinguisher {
  std::vector<ActionId> word;   ///< the epsilon-maximizing schedule
  Rational eps;                 ///< its exact balance epsilon
  std::size_t words_evaluated = 0;
  ConeStats stats;              ///< engine counters (prefix hits, frames, ...)

  std::string word_string() const;
};

/// Searches all words over `alphabet` of length <= max_len, evaluating
/// the exact epsilon between lhs and rhs under the same word on both
/// sides (shared vocabulary). `depth` caps the cone enumeration.
/// Prefix-sharing serial engine. With an enabled `policy` each side is
/// minimized to its bisimulation quotient before the frontier caches are
/// built (independently per side, falling back to the raw automaton when
/// its covering warm-up truncates); word, epsilon and words_evaluated
/// are unchanged exactly, and stats gains the quotient counters.
BestDistinguisher search_best_word(Psioa& lhs, Psioa& rhs,
                                   const std::vector<ActionId>& alphabet,
                                   std::size_t max_len,
                                   const InsightFunction& f,
                                   std::size_t depth,
                                   const ReductionPolicy& policy = {});

/// The historical per-word engine: re-enumerates both cones through the
/// recursive reference enumerator for every word. Kept as the
/// differential baseline for tests and the E13 engine-ablation bench.
BestDistinguisher search_best_word_legacy(
    Psioa& lhs, Psioa& rhs, const std::vector<ActionId>& alphabet,
    std::size_t max_len, const InsightFunction& f, std::size_t depth);

/// Parallel prefix-sharing search. Freezes one warmed instance per side
/// (WarmupPlan horizon = depth, so workers hit lock-free compiled rows),
/// expands the word tree breadth-first on the calling thread until at
/// least `frontier_target` (default 4x pool size) independent subtrees
/// exist, then fans the subtrees across the pool -- each worker running
/// the serial prefix-sharing search over its own thin snapshot views.
/// Per-task results merge in fixed task order under the deterministic
/// tie-break, so word, epsilon and words_evaluated are identical to the
/// serial engines at every worker count. With an enabled `policy` a
/// reduced side skips the ParallelSampler entirely: workers get fresh
/// QuotientPsioa views over one shared minimized snapshot (per-side
/// fallback to the sampler path when the covering warm-up truncates).
BestDistinguisher search_best_word_parallel(
    const PsioaFactory& make_lhs, const PsioaFactory& make_rhs,
    const std::vector<ActionId>& alphabet, std::size_t max_len,
    const InsightFunction& f, std::size_t depth, ThreadPool& pool,
    std::size_t frontier_target = 0, const ReductionPolicy& policy = {});

}  // namespace cdse
