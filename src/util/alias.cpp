#include "util/alias.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace cdse {

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CDSE_X86_DISPATCH 1
#else
#define CDSE_X86_DISPATCH 0
#endif

#if defined(__GNUC__) && !defined(__clang__)
#define CDSE_FORCE_INLINE inline __attribute__((always_inline))
#else
#define CDSE_FORCE_INLINE inline
#endif

// Shared loop body: gather accept/alias rows by slot index, compare
// against the uniform, select. Exact double compare + integer select,
// so the portable and AVX2 instantiations agree bitwise.
CDSE_FORCE_INLINE void pick_block_body(const double* accept,
                                       const std::uint32_t* alias,
                                       const std::uint32_t* idx,
                                       const double* u, std::uint32_t* out,
                                       std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t i = idx[k];
    out[k] = u[k] < accept[i] ? i : alias[i];
  }
}

void pick_block_portable(const double* accept, const std::uint32_t* alias,
                         const std::uint32_t* idx, const double* u,
                         std::uint32_t* out, std::size_t n) {
  pick_block_body(accept, alias, idx, u, out, n);
}

#if CDSE_X86_DISPATCH
__attribute__((target("avx2"))) void pick_block_avx2(
    const double* accept, const std::uint32_t* alias, const std::uint32_t* idx,
    const double* u, std::uint32_t* out, std::size_t n) {
  pick_block_body(accept, alias, idx, u, out, n);
}
#endif

}  // namespace

void AliasTable::pick_block(const std::uint32_t* idx, const double* u,
                            std::uint32_t* out, std::size_t n) const {
#if CDSE_X86_DISPATCH
  if (resolved_block_isa() == BlockIsa::kAvx2) {
    pick_block_avx2(accept.data(), alias.data(), idx, u, out, n);
    return;
  }
#endif
  pick_block_portable(accept.data(), alias.data(), idx, u, out, n);
}

AliasTable AliasTable::build(const std::vector<double>& weights) {
  AliasTable t;
  const std::size_t n = weights.size();
  t.accept.assign(n, 1.0);
  t.alias.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.alias[i] = static_cast<std::uint32_t>(i);
  }
  if (n == 0) return t;

  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "AliasTable::build: weights must be finite and non-negative");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument(
        "AliasTable::build: total weight must be positive");
  }

  // Vose's pairing over weights scaled to mean 1. The worklists are
  // plain index-ordered stacks, so the construction -- and with it every
  // recompiled copy of the same row -- is deterministic.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * scale;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    t.accept[s] = scaled[s] < 0.0 ? 0.0 : scaled[s];
    t.alias[s] = l;
    // The donor keeps whatever mass the short slot did not need.
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers on either list are pure rounding residue at scaled ~ 1;
  // their threshold stays 1.0 (never redirect), which is exact for them.
  return t;
}

}  // namespace cdse
