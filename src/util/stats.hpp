#pragma once
// Small statistics toolkit for the experiment harnesses.
//
// - RunningStat: streaming mean/variance (Welford).
// - hoeffding_radius: two-sided confidence radius for a [0,1]-bounded mean,
//   used to report sampled total-variation estimates with error bars.
// - LinearFit: least-squares y = a + b*x, used to fit the c_comp / c_hide
//   constants of Lemmas 4.3 and 4.5 from measured costs.

#include <cstddef>
#include <vector>

namespace cdse {

class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance; 0 when n < 2
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Hoeffding: with probability >= 1 - delta, |empirical - true| <= radius
/// for n i.i.d. samples bounded in [0, 1].
double hoeffding_radius(std::size_t n, double delta = 1e-6);

struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys);

}  // namespace cdse
