#include "util/state_interner.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>

namespace cdse {

namespace {

std::atomic<StateInterner::Backend>& backend_flag() {
  static std::atomic<StateInterner::Backend> flag{
      StateInterner::Backend::kArena};
  return flag;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Word-pads a byte length (keys are stored 8-aligned so tuple() views
// are well-aligned on every backend).
std::size_t padded(std::size_t len) { return (len + 7) & ~std::size_t{7}; }

}  // namespace

// ---------------------------------------------------------------- Arena

Arena::Arena(std::size_t first_chunk_bytes)
    : next_chunk_bytes_(first_chunk_bytes == 0 ? kFirstChunkBytes
                                               : first_chunk_bytes) {}

Arena::Chunk& Arena::grow(std::size_t min_bytes) {
  const std::size_t size = std::max(next_chunk_bytes_, min_bytes);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  reserved_ += size;
  // Geometric growth keeps chunk count logarithmic in total bytes while
  // the cap bounds the worst-case over-reserve on huge walks. The cap is
  // also the GC granularity: session keys drain at most 1 MiB chunks.
  next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  chunks_.push_back(std::move(chunk));
  return chunks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align,
                      std::uint32_t* chunk_out) {
  // Alignment must be computed on the address, not the offset: operator
  // new[] only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ (typically
  // 16) for the chunk base, so an aligned offset into an arbitrary base
  // is not an aligned pointer for larger `align`.
  if (bytes == 0) {
    if (chunk_out != nullptr) *chunk_out = kNoChunk;
    return nullptr;
  }
  if (!chunks_.empty() && chunks_.back().data != nullptr) {
    Chunk& cur = chunks_.back();
    const auto base = reinterpret_cast<std::uintptr_t>(cur.data.get());
    const std::uintptr_t mask = static_cast<std::uintptr_t>(align) - 1;
    const std::size_t aligned =
        static_cast<std::size_t>(((base + cur.used + mask) & ~mask) - base);
    if (aligned + bytes <= cur.size) {
      used_ += (aligned - cur.used) + bytes;
      cur.used = aligned + bytes;
      cur.live += bytes;
      live_ += bytes;
      if (chunk_out != nullptr) {
        *chunk_out = static_cast<std::uint32_t>(chunks_.size() - 1);
      }
      return cur.data.get() + aligned;
    }
  }
  // `align` extra bytes leave room to shift up to the first aligned
  // address however the fresh chunk's base lands.
  Chunk& chunk = grow(bytes + align);
  const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
  const std::size_t offset = static_cast<std::size_t>(
      (static_cast<std::uintptr_t>(align) - (base & (align - 1))) &
      (align - 1));
  chunk.used = offset + bytes;
  chunk.live = bytes;
  used_ += offset + bytes;
  live_ += bytes;
  if (chunk_out != nullptr) {
    *chunk_out = static_cast<std::uint32_t>(chunks_.size() - 1);
  }
  return chunk.data.get() + offset;
}

std::size_t Arena::deallocate_from(std::uint32_t chunk, std::size_t bytes) {
  if (chunk >= chunks_.size()) {
    throw std::out_of_range("Arena: deallocate_from unknown chunk");
  }
  Chunk& c = chunks_[chunk];
  if (bytes > c.live) {
    throw std::logic_error("Arena: deallocate_from over-discharge");
  }
  c.live -= bytes;
  live_ -= bytes;
  // The bump target stays held even when fully dead: the next allocation
  // reuses its tail instead of growing a fresh chunk.
  const bool is_bump_target = (chunk + 1 == chunks_.size());
  if (c.live == 0 && !is_bump_target && c.data != nullptr) {
    c.data.reset();
    released_ += c.size;
    ++freed_chunks_;
    return c.size;
  }
  return 0;
}

std::size_t Arena::release_dead_chunks() {
  // Sweeps chunks that went fully dead *before* losing bump-target
  // status (deallocate_from spares the bump target; once grow() moves
  // past such a chunk no further discharge will ever revisit it).
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    if (c.live == 0 && c.data != nullptr) {
      c.data.reset();
      released_ += c.size;
      ++freed_chunks_;
      total += c.size;
    }
  }
  return total;
}

void Arena::reserve(std::size_t bytes) {
  const std::size_t free_in_last =
      chunks_.empty() || chunks_.back().data == nullptr
          ? 0
          : chunks_.back().size - chunks_.back().used;
  if (free_in_last < bytes) grow(bytes);
}

// --------------------------------------------------------- StateInterner

StateInterner::Backend StateInterner::default_backend() {
  return backend_flag().load(std::memory_order_relaxed);
}

void StateInterner::set_default_backend(Backend b) {
  backend_flag().store(b, std::memory_order_relaxed);
}

StateInterner::StateInterner(Backend backend) : backend_(backend) {}

std::uint64_t StateInterner::hash_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  // FNV-1a seeded with the length (arity for tuple keys), so keys that
  // are prefixes of one another land in unrelated buckets.
  std::uint64_t h = 0xcbf29ce484222325ULL ^
                    (0x100000001b3ULL * (static_cast<std::uint64_t>(len) + 1));
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  // splitmix64 finalizer: FNV alone avalanches poorly in the high bits,
  // which an and-mask table consultation would feel directly.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

StateInterner::Handle StateInterner::intern_bytes(const void* data,
                                                 std::size_t len) {
  return intern_bytes_hashed(data, len, hash_bytes(data, len));
}

StateInterner::Handle StateInterner::intern_bytes_hashed(const void* data,
                                                         std::size_t len,
                                                         std::uint64_t hash) {
  ++lookups_;
  return backend_ == Backend::kArena ? intern_arena(data, len, hash)
                                     : intern_map(data, len, hash);
}

StateInterner::Handle StateInterner::intern_tuple(const std::uint64_t* words,
                                                  std::size_t n) {
  return intern_bytes(words, n * sizeof(std::uint64_t));
}

StateInterner::Handle StateInterner::intern_arena(const void* data,
                                                  std::size_t len,
                                                  std::uint64_t h) {
  if (slots_.empty()) grow_table(16);
  std::size_t i = h & slot_mask_;
  while (true) {
    ++probes_;
    const std::uint32_t s = slots_[i];
    if (s == 0) break;
    const Entry& e = entries_[s - 1];
    // A retired entry never matches: an equal key re-interned after
    // retirement gets a fresh handle (its slot stays occupied until the
    // next collect() rebuild, so probing continues past it).
    if (!entry_dead(e) && e.hash == h && e.len == len &&
        (len == 0 || std::memcmp(e.ptr, data, len) == 0)) {
      return s - 1;
    }
    i = (i + 1) & slot_mask_;
  }
  const std::byte* stored = nullptr;
  std::uint32_t chunk = kNoEntryChunk;
  if (len != 0) {
    void* dst = arena_.allocate(padded(len), alignof(std::uint64_t), &chunk);
    std::memcpy(dst, data, len);
    stored = static_cast<const std::byte*>(dst);
  }
  entries_.push_back(
      Entry{stored, h, static_cast<std::uint32_t>(len), chunk});
  slots_[i] = static_cast<std::uint32_t>(entries_.size());
  // Load factor 0.7 over *occupied* slots: live entries plus retired
  // ones whose slots have not been dropped by a collect() rebuild yet
  // (counting all entries ever would over-grow the table after GC).
  if ((live_keys() + pending_retired_.size()) * 10 >= slots_.size() * 7) {
    grow_table(slots_.size() * 2);
  }
  return entries_.size() - 1;
}

std::size_t StateInterner::map_key_bytes(std::size_t len) {
  // What the node-based design actually allocates per key: an rb-tree
  // node (3 pointers + color + the pair), the key string (and its heap
  // buffer past SSO), and the aligned payload copy.
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*) + sizeof(Handle);
  return kNodeOverhead + sizeof(std::string) + (len > 15 ? len + 1 : 0) +
         sizeof(std::vector<std::uint64_t>) + padded(len);
}

StateInterner::Handle StateInterner::intern_map(const void* data,
                                                std::size_t len,
                                                std::uint64_t h) {
  // Legacy shape on purpose: a key copy per lookup, a tree node per key,
  // and a second heap copy for handle access -- the allocation pattern of
  // the five per-instance maps this class replaced, kept as the
  // differential reference and the bench baseline.
  std::string lookup_key(static_cast<const char*>(data), len);
  auto it = map_.find(lookup_key);
  if (it != map_.end()) return it->second;
  const Handle handle = entries_.size();
  std::vector<std::uint64_t> payload(padded(len) / sizeof(std::uint64_t), 0);
  if (len != 0) std::memcpy(payload.data(), data, len);
  map_keys_.push_back(std::move(payload));
  const std::vector<std::uint64_t>& stored = map_keys_.back();
  entries_.push_back(Entry{
      stored.empty() ? nullptr
                     : reinterpret_cast<const std::byte*>(stored.data()),
      h, static_cast<std::uint32_t>(len), kNoEntryChunk});
  map_bytes_ += map_key_bytes(len);
  map_.emplace(std::move(lookup_key), handle);
  return handle;
}

void StateInterner::grow_table(std::size_t min_slots) {
  const std::size_t n = round_up_pow2(std::max<std::size_t>(min_slots, 16));
  if (n <= slots_.size()) return;
  if (!slots_.empty()) ++rehashes_;
  std::vector<std::uint32_t> fresh(n, 0);
  const std::uint64_t mask = n - 1;
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    if (entry_dead(entries_[e])) continue;  // GC: dead keys stay unindexed
    std::size_t i = entries_[e].hash & mask;
    while (fresh[i] != 0) i = (i + 1) & mask;
    fresh[i] = static_cast<std::uint32_t>(e + 1);
  }
  slots_ = std::move(fresh);
  slot_mask_ = mask;
}

void StateInterner::rebuild_slots() {
  if (slots_.empty()) return;
  std::fill(slots_.begin(), slots_.end(), 0u);
  const std::uint64_t mask = slot_mask_;
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    if (entry_dead(entries_[e])) continue;
    std::size_t i = entries_[e].hash & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<std::uint32_t>(e + 1);
  }
}

bool StateInterner::retire(Handle h) {
  if (h >= entries_.size() || entry_dead(entries_[h])) return false;
  Entry& e = entries_[h];
  if (backend_ == Backend::kMap) {
    // The map node must go *now*, or an equal key interned before the
    // next collect() would resolve to the dead handle. The payload heap
    // copy goes with it; only the tombstoned Entry survives.
    if (e.ptr != nullptr) {
      map_.erase(std::string(reinterpret_cast<const char*>(e.ptr), e.len));
      std::vector<std::uint64_t>().swap(map_keys_[h]);
    } else {
      map_.erase(std::string());
    }
    const std::size_t freed = map_key_bytes(e.len);
    map_bytes_ -= freed;
    bytes_reclaimed_ += freed;
    e.ptr = nullptr;
  }
  e.chunk |= kDeadBit;
  pending_retired_.push_back(h);
  ++retired_;
  return true;
}

bool StateInterner::is_live(Handle h) const {
  return h < entries_.size() && !entry_dead(entries_[h]);
}

std::size_t StateInterner::collect() {
  if (pending_retired_.empty()) return 0;
  const std::size_t n = pending_retired_.size();
  if (backend_ == Backend::kArena) {
    for (Handle h : pending_retired_) {
      Entry& e = entries_[h];
      const std::uint32_t chunk = e.chunk & ~kDeadBit;
      if (chunk != kNoEntryChunk) {
        bytes_reclaimed_ += arena_.deallocate_from(chunk, padded(e.len));
      }
      e.ptr = nullptr;
    }
    bytes_reclaimed_ += arena_.release_dead_chunks();
    // One rebuild per epoch drops every dead slot at once -- the
    // amortized cost the deferred-retirement design buys.
    rebuild_slots();
  }
  pending_retired_.clear();
  return n;
}

void StateInterner::compact(std::vector<Handle>* old_to_new) {
  collect();
  const std::size_t old_count = entries_.size();
  if (old_to_new != nullptr) {
    old_to_new->assign(old_count, kInvalidHandle);
  }
  StateInterner fresh(backend_);
  fresh.reserve(live_keys());
  for (std::size_t h = 0; h < old_count; ++h) {
    const Entry& e = entries_[h];
    if (entry_dead(e)) continue;
    const Handle nh = fresh.intern_bytes(e.ptr, e.len);
    if (old_to_new != nullptr) (*old_to_new)[h] = nh;
  }
  // Cumulative counters survive the rebuild; the dropped backend's held
  // bytes (dead entries, slot slack, drained-but-held chunks) count as
  // reclaimed.
  const std::size_t old_held = stats().arena_bytes;
  fresh.lookups_ = lookups_;
  fresh.probes_ = probes_;
  fresh.rehashes_ = rehashes_;
  fresh.bytes_reclaimed_ = bytes_reclaimed_;
  const std::size_t new_held = fresh.stats().arena_bytes;
  fresh.bytes_reclaimed_ += old_held > new_held ? old_held - new_held : 0;
  *this = std::move(fresh);
}

std::pair<const std::byte*, std::size_t> StateInterner::key(Handle h) const {
  if (h >= entries_.size() || entry_dead(entries_[h])) {
    throw std::out_of_range("StateInterner: unknown or retired handle");
  }
  const Entry& e = entries_[h];
  return {e.ptr, e.len};
}

TupleRef StateInterner::tuple(Handle h) const {
  if (h >= entries_.size() || entry_dead(entries_[h])) {
    throw std::out_of_range("StateInterner: unknown or retired handle");
  }
  const Entry& e = entries_[h];
  return TupleRef{reinterpret_cast<const std::uint64_t*>(e.ptr),
                  e.len / sizeof(std::uint64_t)};
}

void StateInterner::reserve(std::size_t expected_keys) {
  if (backend_ != Backend::kArena || expected_keys == 0) return;
  entries_.reserve(expected_keys);
  grow_table(round_up_pow2(expected_keys * 10 / 7 + 1));
}

InternStats StateInterner::stats() const {
  InternStats s;
  s.keys = entries_.size();
  s.lookups = lookups_;
  s.probes = probes_;
  s.rehashes = rehashes_;
  s.keys_retired = retired_;
  s.bytes_reclaimed = bytes_reclaimed_;
  if (backend_ == Backend::kArena) {
    s.arena_bytes = arena_.bytes_held() +
                    slots_.capacity() * sizeof(std::uint32_t) +
                    entries_.capacity() * sizeof(Entry);
    s.arena_chunks = arena_.held_chunk_count();
    s.bytes_live = arena_.bytes_live();
  } else {
    s.arena_bytes = map_bytes_ + entries_.capacity() * sizeof(Entry);
    s.arena_chunks = 0;
    // Like-for-like with the arena's key-byte balance: padded payload
    // bytes of live keys only (node/string overhead excluded, as chunk
    // bookkeeping is excluded on the arena side).
    std::size_t live = 0;
    for (const Entry& e : entries_) {
      if (!entry_dead(e)) live += padded(e.len);
    }
    s.bytes_live = live;
  }
  return s;
}

}  // namespace cdse
