#pragma once
// ShardedStateInterner: the concurrent handle store for the session
// service (src/service).
//
// A single StateInterner is per-instance and unsynchronized -- correct
// for one automaton driven by one thread, a global bottleneck for a
// service whose workers discover session state concurrently. This class
// stripes the key space over a power-of-two number of shards, each a
// (mutex, StateInterner) pair; a key's shard is chosen from the top bits
// of its hash (the slot index inside a shard uses the low bits, so the
// two consultations stay uncorrelated), and a worker only contends with
// workers interning into the same shard.
//
// Handles are global: (local handle << shard_bits) | shard. Local
// handles are dense per shard, so global handles are *not* dense -- the
// service stores them opaquely (session records hold their own handles),
// which is exactly the representation-independence the paper's emulation
// machinery licenses.
//
// Session GC runs the epoch discipline of StateInterner, service-wide:
// retire() is callable concurrently with interning (it takes the shard
// lock), while collect() must run at a *quiescent* epoch boundary -- no
// op in flight -- because a shard whose garbage fraction crossed the
// compaction threshold is rebuilt with renumbered local handles and the
// owner is handed the old->new map to rewrite every stored handle.
// Compaction is what bounds the service's RSS over millions of session
// open/close cycles: retire+collect alone returns key bytes (arena
// chunks) but the per-key entry rows would still grow without bound.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/state_interner.hpp"

namespace cdse {

class ShardedStateInterner {
 public:
  using Handle = std::uint64_t;
  static constexpr Handle kInvalidHandle = ~Handle{0};

  /// Called once per compacted shard, under that shard's lock:
  /// old_to_new_local[old local handle] is the new local handle, or
  /// StateInterner::kInvalidHandle for retired keys. The owner must
  /// rewrite every stored global handle of this shard (see remap()).
  using RemapFn = std::function<void(
      std::size_t shard, const std::vector<Handle>& old_to_new_local)>;

  struct CollectResult {
    std::size_t keys_collected = 0;
    std::size_t shards_compacted = 0;
    std::size_t bytes_reclaimed = 0;  ///< delta this collect
  };

  /// `shards` is rounded up to a power of two; 0 picks a default sized
  /// to the hardware concurrency (clamped to [4, 64]).
  explicit ShardedStateInterner(std::size_t shards = 0);

  std::size_t shard_count() const { return shards_.size(); }

  Handle intern_bytes(const void* data, std::size_t len);
  Handle intern_tuple(const std::uint64_t* words, std::size_t n) {
    return intern_bytes(words, n * sizeof(std::uint64_t));
  }

  /// Marks the handle dead (fresh handle for an equal key from now on).
  /// Memory returns at the next collect(). Safe concurrently with
  /// interning. Returns false for unknown/already-retired handles.
  bool retire(Handle h);

  bool is_live(Handle h) const;

  /// Key bytes of a live handle (throws std::out_of_range otherwise).
  /// The pointer is stable until the owning shard is compacted.
  std::pair<const std::byte*, std::size_t> key(Handle h) const;

  /// Epoch boundary. Collects every shard; shards whose dead fraction
  /// exceeds `compact_threshold` (of handles ever issued in the shard)
  /// are compacted, invoking `remap` so the owner can rewrite stored
  /// handles. MUST run quiescently: no concurrent intern/retire/key
  /// calls (the per-shard locks are held, but a racing op could observe
  /// handles from before and after a remap).
  CollectResult collect(double compact_threshold = 0.5,
                        const RemapFn& remap = nullptr);

  /// Rewrites a global handle through a shard's old->new local map (the
  /// inverse convenience of RemapFn's contract).
  Handle remap(Handle h, const std::vector<Handle>& old_to_new_local) const;

  std::size_t shard_of(Handle h) const {
    return static_cast<std::size_t>(h & shard_mask_);
  }
  Handle local_of(Handle h) const { return h >> shard_bits_; }

  /// InternStats aggregated across every shard (the tentpole contract:
  /// one row of allocator-traffic truth for the whole service).
  InternStats stats() const;

  std::size_t size() const;       ///< keys currently indexed (sum of shards)
  std::size_t live_keys() const;  ///< live handles across shards

 private:
  struct Shard {
    mutable std::mutex mu;
    StateInterner interner{StateInterner::Backend::kArena};
    std::size_t compactions = 0;
  };

  Handle global_handle(std::size_t shard, Handle local) const {
    return (local << shard_bits_) | static_cast<Handle>(shard);
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_bits_ = 0;
  Handle shard_mask_ = 0;
};

}  // namespace cdse
