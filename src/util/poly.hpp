#pragma once
// Polynomial and negligible-function helpers (paper Section 4.5/4.6).
//
// The relations <=_{p,q1,q2,eps} are parameterized by polynomial bound
// functions p, q1, q2 : N -> N and a negligible eps : N -> R>=0.
// Polynomial is a concrete non-negative-coefficient polynomial; the
// negligibility *test* is the empirical one used by experiment E8: a
// sequence eps(k) is accepted as negligible-looking when it decays at
// least geometrically over the sampled range (which 2^-k does and any
// inverse-polynomial does not).

#include <cstdint>
#include <string>
#include <vector>

namespace cdse {

class Polynomial {
 public:
  /// coeffs[i] is the coefficient of x^i; all must be >= 0.
  explicit Polynomial(std::vector<double> coeffs);

  /// Convenience: c * x^d.
  static Polynomial monomial(double c, unsigned d);
  static Polynomial constant(double c) { return monomial(c, 0); }

  double eval(double x) const;
  unsigned degree() const;

  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  /// Scales every coefficient (used for c_comp * (p + p3) in Lemma 4.13).
  Polynomial scaled(double c) const;

  std::string to_string() const;

 private:
  std::vector<double> coeffs_;
};

/// Empirical negligibility check: true when eps_k (indexed by ks) decays
/// at least geometrically with ratio <= `ratio_bound` < 1 between
/// consecutive sampled k, ignoring leading zeros; an all-zero tail counts
/// as negligible. Exact zeros inside the sequence are treated as decay.
bool looks_negligible(const std::vector<std::uint32_t>& ks,
                      const std::vector<double>& eps_k,
                      double ratio_bound = 0.75);

/// Least-squares fit of eps_k ~ 2^{-c*k}; returns c (0 if not fittable).
double fitted_decay_exponent(const std::vector<std::uint32_t>& ks,
                             const std::vector<double>& eps_k);

}  // namespace cdse
