#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace cdse {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
  // A pending first_error_ is discarded here: nobody is left to receive it.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

bool ThreadPool::wait_idle_for(std::chrono::milliseconds timeout,
                               std::string* diagnostic) {
  std::unique_lock<std::mutex> lk(mu_);
  const bool drained =
      cv_idle_.wait_for(lk, timeout, [this] { return in_flight_ == 0; });
  if (!drained) {
    if (diagnostic != nullptr) {
      const std::size_t queued = queue_.size();
      const std::size_t running = in_flight_ - queued;
      *diagnostic = "thread pool not idle after " +
                    std::to_string(timeout.count()) + " ms: " +
                    std::to_string(running) + " task(s) running, " +
                    std::to_string(queued) + " queued on " +
                    std::to_string(workers_.size()) + " worker(s)";
    }
    return false;
  }
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
  return true;
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err) {
        if (!first_error_) first_error_ = std::move(err);
        // Either way the worker's reference dies while the lock is held:
        // the receiving thread must observe the handoff through mu_, so
        // the exception object is never destroyed concurrently with the
        // receiver reading it (the refcounting inside an uninstrumented
        // libstdc++ is invisible to TSan).
        err = nullptr;
      }
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(pool.size(), n);
  if (chunks <= 1) {
    body(0, 0, n);
    return;
  }
  const std::size_t per = n / chunks;
  const std::size_t rem = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = per + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    pool.submit([c, begin, end, &body] { body(c, begin, end); });
    begin = end;
  }
  pool.wait_idle();
}

}  // namespace cdse
