#include "util/poly.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cdse {

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) coeffs_.push_back(0.0);
  for (double c : coeffs_) {
    if (c < 0) throw std::invalid_argument("Polynomial: negative coefficient");
  }
  while (coeffs_.size() > 1 && coeffs_.back() == 0.0) coeffs_.pop_back();
}

Polynomial Polynomial::monomial(double c, unsigned d) {
  std::vector<double> coeffs(d + 1, 0.0);
  coeffs[d] = c;
  return Polynomial(std::move(coeffs));
}

double Polynomial::eval(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

unsigned Polynomial::degree() const {
  return static_cast<unsigned>(coeffs_.size() - 1);
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  std::vector<double> out(std::max(coeffs_.size(), o.coeffs_.size()), 0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i] += coeffs_[i];
  for (std::size_t i = 0; i < o.coeffs_.size(); ++i) out[i] += o.coeffs_[i];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  std::vector<double> out(coeffs_.size() + o.coeffs_.size() - 1, 0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < o.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * o.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::scaled(double c) const {
  if (c < 0) throw std::invalid_argument("Polynomial::scaled: negative scale");
  std::vector<double> out = coeffs_;
  for (double& v : out) v *= c;
  return Polynomial(std::move(out));
}

std::string Polynomial::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    if (coeffs_[i] == 0.0 && coeffs_.size() > 1) continue;
    if (!first) os << " + ";
    os << coeffs_[i];
    if (i >= 1) os << "*k";
    if (i >= 2) os << "^" << i;
    first = false;
  }
  return os.str();
}

bool looks_negligible(const std::vector<std::uint32_t>& ks,
                      const std::vector<double>& eps_k, double ratio_bound) {
  if (ks.size() != eps_k.size() || ks.size() < 2) return false;
  for (std::size_t i = 1; i < ks.size(); ++i) {
    const double prev = eps_k[i - 1];
    const double cur = eps_k[i];
    if (prev == 0.0) {
      if (cur != 0.0) return false;  // rose from exact zero
      continue;
    }
    const std::uint32_t dk = ks[i] - ks[i - 1];
    // Require decay by ratio_bound per unit of k.
    if (cur > prev * std::pow(ratio_bound, static_cast<double>(dk))) {
      return false;
    }
  }
  return true;
}

double fitted_decay_exponent(const std::vector<std::uint32_t>& ks,
                             const std::vector<double>& eps_k) {
  // Fit log2(eps) = a - c*k by least squares over strictly positive points.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ks.size() && i < eps_k.size(); ++i) {
    if (eps_k[i] <= 0.0) continue;
    const double x = static_cast<double>(ks[i]);
    const double y = std::log2(eps_k[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  const double slope = (n * sxy - sx * sy) / denom;
  return -slope;
}

}  // namespace cdse
