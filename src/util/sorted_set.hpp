#pragma once
// Algebra over sets represented as sorted, duplicate-free vectors.
//
// Signatures (Def 2.1), hidden-action sets (Def 2.16) and creation sets
// (Def 2.14) are small countable sets manipulated by union / intersection /
// difference during every composition step; sorted vectors make those
// operations linear merges with no allocator churn on the hot path.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cdse {

template <typename T>
using SortedSet = std::vector<T>;  // invariant: sorted ascending, unique

namespace set {

template <typename T>
bool is_sorted_set(const SortedSet<T>& a) {
  for (std::size_t i = 1; i < a.size(); ++i)
    if (!(a[i - 1] < a[i])) return false;
  return true;
}

template <typename T>
void normalize(SortedSet<T>& a) {
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
}

template <typename T>
bool contains(const SortedSet<T>& a, const T& x) {
  return std::binary_search(a.begin(), a.end(), x);
}

template <typename T>
SortedSet<T> unite(const SortedSet<T>& a, const SortedSet<T>& b) {
  SortedSet<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

template <typename T>
SortedSet<T> intersect(const SortedSet<T>& a, const SortedSet<T>& b) {
  SortedSet<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

template <typename T>
SortedSet<T> subtract(const SortedSet<T>& a, const SortedSet<T>& b) {
  SortedSet<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

template <typename T>
bool disjoint(const SortedSet<T>& a, const SortedSet<T>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib)
      ++ia;
    else if (*ib < *ia)
      ++ib;
    else
      return false;
  }
  return true;
}

template <typename T>
bool subset(const SortedSet<T>& a, const SortedSet<T>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Inserts x, keeping the invariant. Returns false if already present.
template <typename T>
bool insert(SortedSet<T>& a, const T& x) {
  auto it = std::lower_bound(a.begin(), a.end(), x);
  if (it != a.end() && *it == x) return false;
  a.insert(it, x);
  return true;
}

/// Removes x if present. Returns true when removed.
template <typename T>
bool erase(SortedSet<T>& a, const T& x) {
  auto it = std::lower_bound(a.begin(), a.end(), x);
  if (it == a.end() || !(*it == x)) return false;
  a.erase(it);
  return true;
}

}  // namespace set
}  // namespace cdse
