#pragma once
// xoshiro256** PRNG with splitmix64 seeding, cheap stream splitting, and
// a wide block generator for the vectorized sampling kernels.
//
// Execution sampling (sched/sampler.hpp) fans Monte-Carlo trials over a
// thread pool; each worker needs an independent, reproducible stream. A
// master seed plus a stream index deterministically derives a generator,
// so every experiment in bench/ is bit-reproducible regardless of thread
// count or interleaving.
//
// XoshiroBlock is the bulk producer behind the batched sampler's block
// draw kernel (sched/batch_sampler.hpp): kLanes scalar streams advanced
// in structure-of-arrays lockstep, filling whole buffers of raw words,
// unit uniforms and debiased bounded indices per call. The lane
// derivation is pinned -- lane j of XoshiroBlock(seed) IS the scalar
// stream Xoshiro256::for_stream(seed, j), and outputs interleave
// round-robin (output i comes from lane i % kLanes) -- so block output
// is a pure function of the seed, independent of how many values each
// fill call requested and of which ISA the fill dispatched to.
//
// ISA dispatch: every fill has one portable scalar loop; on x86-64 the
// same loop body is additionally compiled under target("avx2") and
// selected at runtime when the CPU supports it. Both paths perform
// identical exact integer / power-of-two double arithmetic, so their
// outputs are bit-identical -- tests/rng_test.cpp pins this, and the
// batched sampler's acceptance gate extends it to whole-tally equality.
// set_block_isa / CDSE_BLOCK_ISA=scalar|avx2|auto force a path (tests,
// the portable CI job).

#include <cstddef>
#include <cstdint>

namespace cdse {

/// splitmix64: seeds xoshiro and derives per-stream seeds.
std::uint64_t splitmix64(std::uint64_t& state);

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Deterministically derives the generator for stream `stream` of the
  /// experiment seeded with `seed` (thread-count independent).
  static Xoshiro256 for_stream(std::uint64_t seed, std::uint64_t stream);

  result_type operator()();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, n), exactly unbiased. Requires n > 0.
  /// Lemire multiply-shift with the rejection step: a draw landing in
  /// the 2^64 mod n residue window is retried, which costs < 1 extra
  /// draw amortized even at adversarial n (worst case n = 2^63 + 1
  /// rejects ~half the draws; the small n used by schedulers reject
  /// with probability < n / 2^64, i.e. never in practice).
  std::uint64_t below(std::uint64_t n);

  /// Bernoulli(p) draw.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  friend class XoshiroBlock;
  std::uint64_t s_[4];
};

/// Which implementation the block fills dispatch to. kAuto resolves to
/// kAvx2 when the CPU supports it (x86-64 only), else kScalar. The
/// resolved choice is cached; set_block_isa overrides it (kAuto
/// re-resolves, honoring the CDSE_BLOCK_ISA environment variable).
enum class BlockIsa { kAuto, kScalar, kAvx2 };

/// Forces the block-fill implementation (tests and the portable CI job;
/// thread-safe, but flipping it mid-fill races the dispatch cache --
/// set it before fan-out).
void set_block_isa(BlockIsa isa);

/// The implementation block fills currently dispatch to: kScalar or
/// kAvx2, never kAuto.
BlockIsa resolved_block_isa();

/// kLanes interleaved xoshiro256** streams advanced in SoA lockstep.
///
/// Derivation contract (pinned by tests/rng_test.cpp): lane j of
/// XoshiroBlock(seed) is exactly Xoshiro256::for_stream(seed, j), and
/// the block's output sequence interleaves lanes round-robin. Fills of
/// any size consume that one fixed sequence via an internal carry
/// buffer, so results are independent of fill-call granularity.
class XoshiroBlock {
 public:
  static constexpr std::size_t kLanes = 8;

  explicit XoshiroBlock(std::uint64_t seed);

  /// Stream-split twin of Xoshiro256::for_stream: the block whose lanes
  /// derive from stream `stream` of `seed`.
  static XoshiroBlock for_stream(std::uint64_t seed, std::uint64_t stream);

  /// Next raw word of the interleaved sequence (scalar convenience; the
  /// fixup path of fill_below and tests use it).
  std::uint64_t next_raw();

  /// Fills out[0..n) with the next n raw words.
  void fill_raw(std::uint64_t* out, std::size_t n);

  /// Fills out[0..n) with uniforms in [0, 1): each raw word v maps to
  /// (v >> 11) * 2^-53, the Xoshiro256::uniform mapping (exact, so the
  /// scalar and AVX2 paths agree bitwise).
  void fill_uniform(double* out, std::size_t n);

  /// Fills out[0..n) with debiased uniform indices in [0, bound),
  /// bound in [1, 2^32). Per output, the high 32 bits of the next raw
  /// word go through 32-bit Lemire multiply-shift; outputs whose
  /// product low half lands under 2^32 mod bound are then re-drawn in
  /// ascending position order from the words *after* the n already
  /// consumed (a deterministic two-pass schedule, identical under every
  /// ISA). Returns the number of rejection re-draws consumed.
  std::size_t fill_below(std::uint32_t* out, std::size_t n,
                         std::uint32_t bound);

 private:
  void refill();

  alignas(64) std::uint64_t s_[4][kLanes];
  std::uint64_t buf_[kLanes];
  std::size_t buf_pos_ = kLanes;  // == kLanes: carry buffer empty
};

}  // namespace cdse
