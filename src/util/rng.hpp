#pragma once
// xoshiro256** PRNG with splitmix64 seeding and cheap stream splitting.
//
// Execution sampling (sched/sampler.hpp) fans Monte-Carlo trials over a
// thread pool; each worker needs an independent, reproducible stream. A
// master seed plus a stream index deterministically derives a generator,
// so every experiment in bench/ is bit-reproducible regardless of thread
// count or interleaving.

#include <cstdint>

namespace cdse {

/// splitmix64: seeds xoshiro and derives per-stream seeds.
std::uint64_t splitmix64(std::uint64_t& state);

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Deterministically derives the generator for stream `stream` of the
  /// experiment seeded with `seed` (thread-count independent).
  static Xoshiro256 for_stream(std::uint64_t seed, std::uint64_t stream);

  result_type operator()();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Bernoulli(p) draw.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace cdse
