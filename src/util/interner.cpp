#include "util/interner.hpp"

#include <cassert>

namespace cdse {

Interner::Id Interner::intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  Id id = static_cast<Id>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

Interner::Id Interner::lookup(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? kInvalid : it->second;
}

const std::string& Interner::name(Id id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace cdse
