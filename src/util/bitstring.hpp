#pragma once
// Bit-string representations <q>, <a>, <tr>, <C> (paper Section 4).
//
// The bounded layer (Def 4.1/4.2) reasons about the *length* of standard
// bit-string encodings and about machines that decode them. We realize the
// exact scheme used in the paper's own proof of Lemma B.1: to pair two
// encodings, follow each payload bit with a 0 and separate the two parts
// with "11" — giving |pair(x, y)| = 2(|x| + |y|) + 2 and unambiguous
// decoding. Bits are stored unpacked (one byte per bit) for simplicity;
// lengths, which is what the lemmas bound, are unaffected.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cdse {

class BitString {
 public:
  BitString() = default;

  static BitString from_uint(std::uint64_t v);
  static BitString from_bytes(std::string_view bytes);

  /// Self-delimiting pairing from the proof of Lemma B.1:
  /// each bit of a and b followed by 0; parts separated by "11".
  static BitString pair(const BitString& a, const BitString& b);

  /// Inverse of pair(). Throws std::invalid_argument on malformed input.
  static std::pair<BitString, BitString> unpair(const BitString& p);

  /// Concatenation of n parts via left-nested pairing.
  static BitString pack(const std::vector<BitString>& parts);
  static std::vector<BitString> unpack(const BitString& packed,
                                       std::size_t n_parts);

  void push_bit(bool b) { bits_.push_back(b ? 1 : 0); }
  std::size_t length() const { return bits_.size(); }
  bool bit(std::size_t i) const { return bits_[i] != 0; }

  std::uint64_t to_uint() const;
  std::string to_string() const;  // "0101..." for diagnostics

  friend bool operator==(const BitString& a, const BitString& b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace cdse
