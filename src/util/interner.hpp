#pragma once
// String interner: maps strings to dense 32-bit ids and back.
//
// Used for action names (ActionTable), automaton identifiers (Autids) and
// insight-function perceptions. Interners are value types; each subsystem
// owns the interner appropriate to its name space, except the process-wide
// action table (see psioa/action.hpp) which must be shared so that
// composition of independently-built automata agrees on action identity.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cdse {

class Interner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalid = ~Id{0};

  /// Returns the id for `s`, interning it if new.
  Id intern(std::string_view s);

  /// Returns the id for `s` or kInvalid when never interned.
  Id lookup(std::string_view s) const;

  /// Returns the string for a valid id.
  const std::string& name(Id id) const;

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> names_;
};

}  // namespace cdse
