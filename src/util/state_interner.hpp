#pragma once
// Arena-backed state interning: one allocator-free handle store shared by
// every wrapper automaton that maps discovered structures to dense State
// handles (composed tuples, PCA configurations, fault-wrapper keys).
//
// The paper's representation independence (and the CRDT-emulation
// observation it echoes) is what licenses this layer: a handle store may
// change freely as long as the bijection between structures and handles
// is preserved. Handles here are dense and assigned in discovery order --
// exactly the order the legacy per-instance maps assigned them -- so the
// migration is semantics-neutral down to draw-for-draw seed
// reproducibility (tests/intern_test.cpp pins this differentially).
//
// Two pieces:
//   Arena         -- a chunked bump allocator. Chunks are never moved, so
//                    pointers into the arena stay stable across later
//                    allocation; chunk sizes grow geometrically so
//                    reserved bytes track used bytes within a small
//                    constant factor. Chunks carry a live-byte balance:
//                    a chunk whose every allocation has been returned via
//                    deallocate_from() releases its memory (the chunk
//                    record stays, so chunk indices remain stable) --
//                    the unit of reclamation for session GC.
//   StateInterner -- an open-addressing hash table over variable-length
//                    keys stored *inline* in the arena (one copy, no
//                    per-key node allocation), with an entry table giving
//                    O(1) handle -> key access. Keys are byte strings;
//                    word-aligned tuple keys get a typed TupleRef view.
//
// The legacy behaviour remains available as Backend::kMap -- a node-based
// std::map index with per-key heap copies, shaped like the five interners
// this class replaced. It exists for the map-vs-arena differential tests
// and as the allocator-traffic baseline of the E10 warm-up bench rows;
// production code always runs on Backend::kArena (the default).
//
// Thread-safety: none (per-instance, like the maps it replaces); the
// one-thread-per-instance rule of psioa.hpp covers it. The process-wide
// backend default is atomic so tests/benches can flip it safely.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cdse {

/// Interner/arena counters, exposed per automaton via
/// Psioa::intern_stats() and summed over wrapper stacks so the E10 bench
/// can report allocator traffic next to throughput.
struct InternStats {
  std::size_t keys = 0;       ///< interned keys ever (== handles issued)
  std::size_t lookups = 0;    ///< intern() calls
  std::size_t probes = 0;     ///< slot probe steps across all lookups
  std::size_t rehashes = 0;   ///< table growths (reinsert passes)
  std::size_t arena_bytes = 0;  ///< bytes the backend *currently holds*
                                ///< for keys+tables (drops as GC frees)
  std::size_t arena_chunks = 0;  ///< held arena chunks (0 on map backend)
  std::size_t keys_retired = 0;  ///< handles retired by session GC
  std::size_t bytes_live = 0;    ///< key bytes owned by live handles only
  std::size_t bytes_reclaimed = 0;  ///< cumulative bytes returned by GC
                                    ///< (freed chunks / erased map nodes
                                    ///< / compaction)

  InternStats& operator+=(const InternStats& o) {
    keys += o.keys;
    lookups += o.lookups;
    probes += o.probes;
    rehashes += o.rehashes;
    arena_bytes += o.arena_bytes;
    arena_chunks += o.arena_chunks;
    keys_retired += o.keys_retired;
    bytes_live += o.bytes_live;
    bytes_reclaimed += o.bytes_reclaimed;
    return *this;
  }
};

/// Chunked bump allocator. allocate() never fails over to moving old
/// chunks, so returned pointers are stable for as long as their chunk is
/// held. Individual allocations are never freed in place; instead each
/// chunk keeps a live-byte balance (charged by allocate, discharged by
/// deallocate_from), and a chunk whose balance reaches zero -- and which
/// is no longer the bump target -- releases its memory wholesale. That
/// is the GC granularity session retirement needs: destroyed-session
/// keys drain their chunks, and epoch collection returns whole chunks.
class Arena {
 public:
  static constexpr std::size_t kFirstChunkBytes = std::size_t{1} << 12;
  static constexpr std::size_t kMaxChunkBytes = std::size_t{1} << 20;
  static constexpr std::uint32_t kNoChunk = 0xffffffffu;

  explicit Arena(std::size_t first_chunk_bytes = kFirstChunkBytes);

  /// Returns `bytes` bytes aligned to `align` (a power of two). When
  /// `chunk_out` is given it receives the index of the owning chunk, the
  /// token deallocate_from() later takes.
  void* allocate(std::size_t bytes, std::size_t align,
                 std::uint32_t* chunk_out = nullptr);

  /// Discharges `bytes` of live mass from chunk `chunk` (as charged by
  /// the matching allocate). When the chunk's balance reaches zero and it
  /// is not the current bump target, its memory is released; the chunk
  /// record survives so indices stay stable. Returns the bytes this call
  /// released back to the OS (the chunk size, or 0).
  std::size_t deallocate_from(std::uint32_t chunk, std::size_t bytes);

  /// Releases every fully-dead held chunk except the bump target
  /// (deallocate_from already frees eagerly; this sweep catches chunks
  /// that drained while they *were* the bump target and were then
  /// passed over by growth). Returns bytes released.
  std::size_t release_dead_chunks();

  /// Ensures the current chunk chain can absorb `bytes` more bytes.
  void reserve(std::size_t bytes);

  std::size_t bytes_used() const { return used_; }
  std::size_t bytes_reserved() const { return reserved_; }
  /// Bytes currently held (reserved minus chunks released by GC).
  std::size_t bytes_held() const { return reserved_ - released_; }
  /// Live-allocation balance across held chunks.
  std::size_t bytes_live() const { return live_; }
  /// Cumulative bytes released by dead-chunk reclamation.
  std::size_t bytes_released() const { return released_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  /// Chunks still holding memory.
  std::size_t held_chunk_count() const { return chunks_.size() - freed_chunks_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
    std::size_t live = 0;  // charged minus discharged bytes
  };

  Chunk& grow(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t next_chunk_bytes_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
  std::size_t released_ = 0;
  std::size_t live_ = 0;
  std::size_t freed_chunks_ = 0;
};

/// Borrowed view of a word-sized interned key (a component-state tuple or
/// any other State-array key). Valid for the interner's lifetime: keys
/// live in the arena and never move.
struct TupleRef {
  const std::uint64_t* ptr = nullptr;
  std::size_t len = 0;

  std::size_t size() const { return len; }
  bool empty() const { return len == 0; }
  std::uint64_t operator[](std::size_t i) const { return ptr[i]; }
  const std::uint64_t* begin() const { return ptr; }
  const std::uint64_t* end() const { return ptr + len; }
};

class StateInterner {
 public:
  using Handle = std::uint64_t;
  static constexpr Handle kInvalidHandle = ~Handle{0};

  enum class Backend { kArena, kMap };

  /// Process-wide default for newly constructed interners. Production is
  /// kArena; tests and the E10 baseline rows flip to kMap.
  static Backend default_backend();
  static void set_default_backend(Backend b);

  explicit StateInterner(Backend backend = default_backend());

  /// Interns an arbitrary byte-string key; returns its dense handle
  /// (size() - 1 on first sight, the prior handle on every later call).
  /// A key equal to a *retired* key does not resurrect the old handle:
  /// it is interned afresh under a new one (session GC depends on this
  /// -- reopening a session id must yield fresh handles).
  Handle intern_bytes(const void* data, std::size_t len);

  /// Same, with the caller-computed hash_bytes(data, len). The sharded
  /// interner hashes once to pick a shard and forwards the hash here.
  Handle intern_bytes_hashed(const void* data, std::size_t len,
                             std::uint64_t hash);

  /// Interns a word-array key (component-state tuples, packed POD keys).
  Handle intern_tuple(const std::uint64_t* words, std::size_t n);
  Handle intern_tuple(const std::vector<std::uint64_t>& t) {
    return intern_tuple(t.data(), t.size());
  }

  /// O(1) handle -> key. key() returns the raw bytes; tuple() the typed
  /// word view (the key must have been interned via intern_tuple).
  /// Both throw std::out_of_range on an unknown handle.
  std::pair<const std::byte*, std::size_t> key(Handle h) const;
  TupleRef tuple(Handle h) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // -- session GC ----------------------------------------------------------
  //
  // Epoch discipline: retire() is cheap and immediate in its *naming*
  // effect (the handle stops resolving, the key can be re-interned under
  // a fresh handle), while the *memory* effect is deferred to collect(),
  // which the owner calls at an epoch boundary when no consumer still
  // holds retired handles. compact() additionally renumbers live handles
  // densely; it is opt-in because it breaks handle stability and must be
  // paired with a remap of every stored handle (the sharded interner
  // does exactly that through its remap callback).

  /// Marks `h` dead: key()/tuple() throw for it from now on, and an
  /// equal key interns fresh. Memory is reclaimed by the next collect().
  /// Returns false when `h` is unknown or already retired.
  bool retire(Handle h);

  /// True for an issued, un-retired handle.
  bool is_live(Handle h) const;

  /// Handles issued and not retired.
  std::size_t live_keys() const { return entries_.size() - retired_; }

  /// Applies pending retirements: discharges dead keys from the arena
  /// (releasing fully-dead chunks) and rebuilds the slot table without
  /// them. On the map backend nodes were already erased at retire();
  /// collect() only rebuilds bookkeeping. Returns keys collected.
  std::size_t collect();

  /// Rebuilds the backend from live keys only, renumbering them densely
  /// in handle order. `old_to_new` (if given) is resized to the old
  /// handle count; retired handles map to kInvalidHandle. Implies
  /// collect(). Cumulative counters (lookups/probes/rehashes/
  /// bytes_reclaimed) survive.
  void compact(std::vector<Handle>* old_to_new = nullptr);

  /// Pre-sizes the table (and arena) for `expected_keys`, so a BFS
  /// discovery burst (warm_automaton) does not rehash mid-walk. No-op on
  /// the map backend.
  void reserve(std::size_t expected_keys);

  /// FNV-1a over the key bytes, seeded with the key length and finished
  /// with a splitmix64 avalanche. Seeding with the length is load-bearing:
  /// the retired ComposedPsioa::TupleHash ignored arity, so equal-prefix
  /// tuples of different lengths collided more than they should.
  static std::uint64_t hash_bytes(const void* data, std::size_t len);
  static std::uint64_t hash_tuple(const std::uint64_t* words, std::size_t n) {
    return hash_bytes(words, n * sizeof(std::uint64_t));
  }

  InternStats stats() const;
  Backend backend() const { return backend_; }

 private:
  struct Entry {
    const std::byte* ptr;  // key bytes (arena slot or map payload)
    std::uint64_t hash;
    std::uint32_t len;    // in bytes
    std::uint32_t chunk;  // owning arena chunk | kDeadBit when retired
  };
  // Retirement flag, OR'd into Entry::chunk (chunk indices stay < 2^31).
  static constexpr std::uint32_t kDeadBit = 0x80000000u;
  // Entry::chunk sentinel for keys without an owning arena chunk (map
  // backend, zero-length keys). Deliberately NOT Arena::kNoChunk: that
  // bit pattern contains kDeadBit, and a live entry must not read as
  // retired.
  static constexpr std::uint32_t kNoEntryChunk = 0x7fffffffu;

  static bool entry_dead(const Entry& e) { return (e.chunk & kDeadBit) != 0; }
  static std::size_t map_key_bytes(std::size_t len);

  Handle intern_arena(const void* data, std::size_t len, std::uint64_t h);
  Handle intern_map(const void* data, std::size_t len, std::uint64_t h);
  void grow_table(std::size_t min_slots);
  void rebuild_slots();

  Backend backend_;

  // Shared handle -> key table (both backends).
  std::vector<Entry> entries_;

  // Arena backend: inline key storage + open addressing. Slot values are
  // handle + 1; 0 marks an empty slot.
  Arena arena_;
  std::vector<std::uint32_t> slots_;
  std::uint64_t slot_mask_ = 0;

  // Map backend: the legacy shape -- a node-based index keyed by a
  // per-lookup key copy, plus a second per-key heap copy for handle
  // access (word-aligned so tuple() works identically).
  std::map<std::string, Handle> map_;
  std::deque<std::vector<std::uint64_t>> map_keys_;
  std::size_t map_bytes_ = 0;

  // Session-GC bookkeeping.
  std::vector<Handle> pending_retired_;  // retired, not yet collected
  std::size_t retired_ = 0;              // dead handles (pending + collected)
  std::size_t bytes_reclaimed_ = 0;      // cumulative, survives compact()

  std::size_t lookups_ = 0;
  std::size_t probes_ = 0;
  std::size_t rehashes_ = 0;
};

}  // namespace cdse
