#include "util/bitstring.hpp"

#include <stdexcept>

namespace cdse {

BitString BitString::from_uint(std::uint64_t v) {
  BitString b;
  if (v == 0) {
    b.push_bit(false);
    return b;
  }
  while (v != 0) {
    b.push_bit((v & 1) != 0);
    v >>= 1;
  }
  return b;
}

BitString BitString::from_bytes(std::string_view bytes) {
  BitString b;
  for (unsigned char c : bytes) {
    for (int i = 0; i < 8; ++i) b.push_bit(((c >> i) & 1) != 0);
  }
  return b;
}

BitString BitString::pair(const BitString& a, const BitString& b) {
  BitString p;
  p.bits_.reserve(2 * (a.length() + b.length()) + 2);
  for (auto bit : a.bits_) {
    p.bits_.push_back(bit);
    p.bits_.push_back(0);
  }
  p.bits_.push_back(1);
  p.bits_.push_back(1);
  for (auto bit : b.bits_) {
    p.bits_.push_back(bit);
    p.bits_.push_back(0);
  }
  return p;
}

std::pair<BitString, BitString> BitString::unpair(const BitString& p) {
  BitString a;
  BitString b;
  std::size_t i = 0;
  const std::size_t n = p.bits_.size();
  // First part: payload bits each followed by 0, until the "11" separator.
  while (true) {
    if (i + 1 >= n) throw std::invalid_argument("BitString::unpair: truncated");
    if (p.bits_[i] == 1 && p.bits_[i + 1] == 1) {
      i += 2;
      break;
    }
    if (p.bits_[i + 1] != 0)
      throw std::invalid_argument("BitString::unpair: bad stuffing");
    a.bits_.push_back(p.bits_[i]);
    i += 2;
  }
  while (i < n) {
    if (i + 1 >= n || p.bits_[i + 1] != 0)
      throw std::invalid_argument("BitString::unpair: bad tail");
    b.bits_.push_back(p.bits_[i]);
    i += 2;
  }
  return {std::move(a), std::move(b)};
}

BitString BitString::pack(const std::vector<BitString>& parts) {
  if (parts.empty()) return BitString{};
  BitString acc = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) acc = pair(acc, parts[i]);
  return acc;
}

std::vector<BitString> BitString::unpack(const BitString& packed,
                                         std::size_t n_parts) {
  std::vector<BitString> out(n_parts);
  if (n_parts == 0) return out;
  BitString acc = packed;
  for (std::size_t i = n_parts; i-- > 1;) {
    auto [head, tail] = unpair(acc);
    out[i] = std::move(tail);
    acc = std::move(head);
  }
  out[0] = std::move(acc);
  return out;
}

std::uint64_t BitString::to_uint() const {
  std::uint64_t v = 0;
  for (std::size_t i = bits_.size(); i-- > 0;) {
    v = (v << 1) | bits_[i];
  }
  return v;
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (auto b : bits_) s.push_back(b ? '1' : '0');
  return s;
}

}  // namespace cdse
