#pragma once
// Walker/Vose alias tables: O(1) draws from a fixed finite distribution.
//
// The compiled sampling rows (CompiledRow transition CDFs, ChoiceRow
// scheduler CDFs) historically drew by scanning a running double-CDF --
// O(support) per draw, which is exactly the cost the batched sampler
// (sched/batch_sampler.hpp) wants off its per-draw path. An alias table
// trades a second uniform draw for constant-time picks: slot i is chosen
// uniformly, then accepted with probability accept[i] or redirected to
// alias[i]. The induced slot probabilities equal the normalized input
// weights up to double rounding, so alias draws are equivalent to CDF
// draws *in distribution* (not draw-for-draw -- they consume the RNG
// differently), which is the contract the batched sampling mode and its
// statistical differential tests (tests/stat_util.hpp) are built on.
//
// Determinism: build() is a pure function of the weight vector -- the
// small/large worklists are index-ordered vectors, not hash containers --
// so recompiling the same row (across freeze() calls, worker counts, or
// processes) yields bit-identical tables. tests/alias_test.cpp pins this
// together with the slot-probability invariant
//   sum over slots of P[pick = i] == weights[i] / total.
//
// Layout is structure-of-arrays on purpose: accept[] and alias[] are
// separate contiguous rows, so the batched sampler's block kernel
// resolves a whole buffer of draws with pick_block -- gather accept
// thresholds by slot index, compare against the uniform buffer, select
// slot or alias -- instead of per-draw pointer-chasing. pick_block
// shares the portable/AVX2 runtime dispatch of util/rng.hpp's block
// fills, and both paths are bit-identical (pure gather + exact double
// compare + select).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdse {

struct AliasTable {
  /// Acceptance threshold of each slot, in [0, 1]; slots with threshold
  /// 1 never redirect (every leftover of the Vose pairing ends up here).
  std::vector<double> accept;
  /// Redirect target of each slot; alias[i] == i where unused.
  std::vector<std::uint32_t> alias;

  bool empty() const { return accept.empty(); }
  std::size_t size() const { return accept.size(); }

  /// Builds the table for (unnormalized) non-negative weights.
  /// Zero-weight slots are representable and are never picked. Throws
  /// std::invalid_argument when a weight is negative or not finite, or
  /// when the total is not positive (a nonempty row must carry mass).
  static AliasTable build(const std::vector<double>& weights);

  /// Picks a slot from i ~ Uniform{0..size-1} and u ~ Uniform[0,1).
  std::size_t pick(std::size_t i, double u) const {
    return u < accept[i] ? i : static_cast<std::size_t>(alias[i]);
  }

  /// Block pick: out[k] = pick(idx[k], u[k]) for k in [0, n). The SoA
  /// gather kernel behind the batched sampler's tally loops; dispatches
  /// to an AVX2 body where resolved_block_isa() allows, with bitwise
  /// identical results on every path. idx values must be < size().
  void pick_block(const std::uint32_t* idx, const double* u,
                  std::uint32_t* out, std::size_t n) const;

  friend bool operator==(const AliasTable& a, const AliasTable& b) {
    return a.accept == b.accept && a.alias == b.alias;
  }
};

}  // namespace cdse
