#include "util/rng.hpp"

namespace cdse {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256 Xoshiro256::for_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream index through splitmix before seeding so adjacent
  // streams share no low-entropy structure.
  std::uint64_t sm = seed ^ (0x6a09e667f3bcc909ULL * (stream + 1));
  return Xoshiro256(splitmix64(sm));
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  // Lemire-style rejection-free-ish bounded draw; bias is negligible for
  // the small n used by schedulers, but we keep the multiply-shift form.
  unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * n;
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace cdse
