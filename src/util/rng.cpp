#include "util/rng.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace cdse {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256 Xoshiro256::for_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream index through splitmix before seeding so adjacent
  // streams share no low-entropy structure.
  std::uint64_t sm = seed ^ (0x6a09e667f3bcc909ULL * (stream + 1));
  return Xoshiro256(splitmix64(sm));
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  // Lemire multiply-shift with rejection: the multiply-shift alone maps
  // 2^64 raw words onto n outputs unevenly whenever n does not divide
  // 2^64; re-drawing the (2^64 mod n)-sized residue window makes every
  // output hit by exactly floor(2^64 / n) raw words.
  unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * n;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < n) {  // cheap pre-filter: threshold only computed when it can matter
    const std::uint64_t t = (0 - n) % n;  // 2^64 mod n
    while (lo < t) {
      m = static_cast<unsigned __int128>((*this)()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

// -- block fills -------------------------------------------------------------

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CDSE_X86_DISPATCH 1
#else
#define CDSE_X86_DISPATCH 0
#endif

#if defined(__GNUC__) && !defined(__clang__)
#define CDSE_FORCE_INLINE inline __attribute__((always_inline))
#else
#define CDSE_FORCE_INLINE inline
#endif

namespace {

// One loop body per fill, shared verbatim by the portable and AVX2
// instantiations: every operation is exact integer or power-of-two
// double arithmetic, so the two instantiations are bit-identical by
// construction and differ only in codegen width.

CDSE_FORCE_INLINE void advance_rounds_body(std::uint64_t* s0,
                                           std::uint64_t* s1,
                                           std::uint64_t* s2,
                                           std::uint64_t* s3,
                                           std::uint64_t* out,
                                           std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) {
    std::uint64_t* o = out + r * XoshiroBlock::kLanes;
    for (std::size_t j = 0; j < XoshiroBlock::kLanes; ++j) {
      const std::uint64_t x1 = s1[j];
      o[j] = rotl(x1 * 5, 7) * 9;
      const std::uint64_t t = x1 << 17;
      s2[j] ^= s0[j];
      s3[j] ^= x1;
      s1[j] ^= s2[j];
      s0[j] ^= s3[j];
      s2[j] ^= t;
      s3[j] = rotl(s3[j], 45);
    }
  }
}

CDSE_FORCE_INLINE void to_uniform_body(const std::uint64_t* raw, double* out,
                                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
  }
}

CDSE_FORCE_INLINE void below_candidates_body(const std::uint64_t* raw,
                                             std::uint32_t* out,
                                             std::uint32_t* lo, std::size_t n,
                                             std::uint32_t bound) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t p = (raw[i] >> 32) * static_cast<std::uint64_t>(bound);
    out[i] = static_cast<std::uint32_t>(p >> 32);
    lo[i] = static_cast<std::uint32_t>(p);
  }
}

void advance_rounds_portable(std::uint64_t* s0, std::uint64_t* s1,
                             std::uint64_t* s2, std::uint64_t* s3,
                             std::uint64_t* out, std::size_t rounds) {
  advance_rounds_body(s0, s1, s2, s3, out, rounds);
}

void to_uniform_portable(const std::uint64_t* raw, double* out,
                         std::size_t n) {
  to_uniform_body(raw, out, n);
}

void below_candidates_portable(const std::uint64_t* raw, std::uint32_t* out,
                               std::uint32_t* lo, std::size_t n,
                               std::uint32_t bound) {
  below_candidates_body(raw, out, lo, n, bound);
}

#if CDSE_X86_DISPATCH
__attribute__((target("avx2"))) void advance_rounds_avx2(
    std::uint64_t* s0, std::uint64_t* s1, std::uint64_t* s2, std::uint64_t* s3,
    std::uint64_t* out, std::size_t rounds) {
  advance_rounds_body(s0, s1, s2, s3, out, rounds);
}

__attribute__((target("avx2"))) void to_uniform_avx2(const std::uint64_t* raw,
                                                     double* out,
                                                     std::size_t n) {
  to_uniform_body(raw, out, n);
}

__attribute__((target("avx2"))) void below_candidates_avx2(
    const std::uint64_t* raw, std::uint32_t* out, std::uint32_t* lo,
    std::size_t n, std::uint32_t bound) {
  below_candidates_body(raw, out, lo, n, bound);
}
#endif

bool cpu_has_avx2() {
#if CDSE_X86_DISPATCH
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Dispatch cache: -1 = unresolved, else the resolved BlockIsa value.
// Forcing stores the request and invalidates the cache; resolution
// happens once, on the next fill.
std::atomic<int> g_isa_forced{static_cast<int>(BlockIsa::kAuto)};
std::atomic<int> g_isa_cache{-1};

BlockIsa resolve_isa() {
  BlockIsa want = static_cast<BlockIsa>(g_isa_forced.load());
  if (want == BlockIsa::kAuto) {
    if (const char* env = std::getenv("CDSE_BLOCK_ISA")) {
      if (std::strcmp(env, "scalar") == 0) want = BlockIsa::kScalar;
      if (std::strcmp(env, "avx2") == 0) want = BlockIsa::kAvx2;
    }
  }
  if (want == BlockIsa::kAuto) {
    want = cpu_has_avx2() ? BlockIsa::kAvx2 : BlockIsa::kScalar;
  }
  // A forced/env AVX2 request on hardware without it degrades to scalar
  // rather than faulting; the two paths are bit-identical anyway.
  if (want == BlockIsa::kAvx2 && !cpu_has_avx2()) want = BlockIsa::kScalar;
  g_isa_cache.store(static_cast<int>(want));
  return want;
}

inline bool use_avx2() {
  int cached = g_isa_cache.load(std::memory_order_relaxed);
  if (cached < 0) cached = static_cast<int>(resolve_isa());
  return static_cast<BlockIsa>(cached) == BlockIsa::kAvx2;
}

}  // namespace

void set_block_isa(BlockIsa isa) {
  g_isa_forced.store(static_cast<int>(isa));
  g_isa_cache.store(-1);
}

BlockIsa resolved_block_isa() {
  const int cached = g_isa_cache.load();
  if (cached >= 0) return static_cast<BlockIsa>(cached);
  return resolve_isa();
}

XoshiroBlock::XoshiroBlock(std::uint64_t seed) {
  // Lane j IS scalar stream j: the block is the SoA transpose of
  // Xoshiro256::for_stream(seed, 0..kLanes-1).
  for (std::size_t j = 0; j < kLanes; ++j) {
    const Xoshiro256 lane = Xoshiro256::for_stream(seed, j);
    for (std::size_t w = 0; w < 4; ++w) s_[w][j] = lane.s_[w];
  }
}

XoshiroBlock XoshiroBlock::for_stream(std::uint64_t seed,
                                      std::uint64_t stream) {
  std::uint64_t sm = seed ^ (0x6a09e667f3bcc909ULL * (stream + 1));
  return XoshiroBlock(splitmix64(sm));
}

void XoshiroBlock::refill() {
#if CDSE_X86_DISPATCH
  if (use_avx2()) {
    advance_rounds_avx2(s_[0], s_[1], s_[2], s_[3], buf_, 1);
    buf_pos_ = 0;
    return;
  }
#endif
  advance_rounds_portable(s_[0], s_[1], s_[2], s_[3], buf_, 1);
  buf_pos_ = 0;
}

std::uint64_t XoshiroBlock::next_raw() {
  if (buf_pos_ == kLanes) refill();
  return buf_[buf_pos_++];
}

void XoshiroBlock::fill_raw(std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  // Drain the carry buffer first so the interleaved sequence is
  // independent of fill-call granularity.
  while (buf_pos_ < kLanes && i < n) out[i++] = buf_[buf_pos_++];
  const std::size_t rounds = (n - i) / kLanes;
  if (rounds > 0) {
#if CDSE_X86_DISPATCH
    if (use_avx2()) {
      advance_rounds_avx2(s_[0], s_[1], s_[2], s_[3], out + i, rounds);
    } else {
      advance_rounds_portable(s_[0], s_[1], s_[2], s_[3], out + i, rounds);
    }
#else
    advance_rounds_portable(s_[0], s_[1], s_[2], s_[3], out + i, rounds);
#endif
    i += rounds * kLanes;
  }
  while (i < n) out[i++] = next_raw();
}

namespace {
constexpr std::size_t kFillChunk = 512;  // stack scratch per bulk pass
}  // namespace

void XoshiroBlock::fill_uniform(double* out, std::size_t n) {
  std::uint64_t raw[kFillChunk];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = n - done < kFillChunk ? n - done : kFillChunk;
    fill_raw(raw, m);
#if CDSE_X86_DISPATCH
    if (use_avx2()) {
      to_uniform_avx2(raw, out + done, m);
    } else {
      to_uniform_portable(raw, out + done, m);
    }
#else
    to_uniform_portable(raw, out + done, m);
#endif
    done += m;
  }
}

std::size_t XoshiroBlock::fill_below(std::uint32_t* out, std::size_t n,
                                     std::uint32_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("XoshiroBlock::fill_below: bound must be > 0");
  }
  const std::uint32_t thresh =
      static_cast<std::uint32_t>((std::uint64_t{1} << 32) % bound);
  std::uint64_t raw[kFillChunk];
  std::uint32_t lo[kFillChunk];
  std::size_t rejects = 0;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = n - done < kFillChunk ? n - done : kFillChunk;
    fill_raw(raw, m);
#if CDSE_X86_DISPATCH
    if (use_avx2()) {
      below_candidates_avx2(raw, out + done, lo, m, bound);
    } else {
      below_candidates_portable(raw, out + done, lo, m, bound);
    }
#else
    below_candidates_portable(raw, out + done, lo, m, bound);
#endif
    if (thresh != 0) {
      // Rejection fixup, ascending position order, re-drawing from the
      // words after the chunk -- a deterministic schedule shared by
      // every ISA (the candidate pass is pure arithmetic).
      for (std::size_t i = 0; i < m; ++i) {
        if (lo[i] >= thresh) continue;
        std::uint64_t p;
        do {
          ++rejects;
          p = (next_raw() >> 32) * static_cast<std::uint64_t>(bound);
        } while (static_cast<std::uint32_t>(p) < thresh);
        out[done + i] = static_cast<std::uint32_t>(p >> 32);
      }
    }
    done += m;
  }
  return rejects;
}

}  // namespace cdse
