#pragma once
// Exact rational arithmetic for probability computation.
//
// The exact cone-measure enumerator (sched/cone_measure.hpp) computes
// execution probabilities as products/sums of transition weights. Using
// rationals there means total-variation distances of small systems are
// *exact*: a claim like "the dummy-adversary insertion has epsilon = 0"
// (Lemma D.1) is checked as equality, not approximate closeness.
//
// Numerator/denominator are int64; intermediate products go through
// __int128 and results are normalized, which comfortably covers the
// experiment systems (transition weights are small fractions). Overflow
// beyond that throws std::overflow_error rather than silently wrapping.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace cdse {

class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT implicit
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  double to_double() const { return static_cast<double>(num_) / den_; }
  std::string to_string() const;

  bool is_zero() const { return num_ == 0; }

  Rational operator-() const;
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

  static Rational abs(const Rational& a) { return a.num_ < 0 ? -a : a; }

 private:
  static Rational from_i128(__int128 num, __int128 den);
  std::int64_t num_;
  std::int64_t den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace cdse
