#pragma once
// Fixed-size thread pool and a static-partition parallel_for.
//
// Monte-Carlo sampling and the epsilon(k) family sweeps are embarrassingly
// parallel over independent RNG streams; a static partition keeps the
// per-trial bookkeeping allocation-free and deterministic. The pool is
// intentionally minimal (no work stealing): trial costs are uniform.
//
// Exception contract: a task that throws does not terminate the process.
// The pool captures the *first* exception raised by any task and rethrows
// it from the next wait_idle() call on the submitting thread; later
// exceptions from the same batch are dropped (first-error-wins, the usual
// fork/join convention). After the rethrow the pool is idle and reusable.
// Destruction drains the queue and joins cleanly even when tasks failed;
// an exception still pending at destruction is discarded (destructors
// must not throw).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace cdse {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks may throw: the first exception of a batch is
  /// captured and rethrown by wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed, then rethrows the
  /// first exception any of them raised (clearing it, so the pool can be
  /// reused afterwards).
  void wait_idle();

  /// wait_idle with a deadline: returns true when the pool drained
  /// within `timeout` (rethrowing a pending task exception exactly like
  /// wait_idle). On timeout it returns false and, when `diagnostic` is
  /// non-null, writes a stuck-task report (tasks queued vs running) --
  /// the soak driver's alternative to hanging forever on a wedged task.
  /// The pool is left untouched: tasks keep running, and a later
  /// wait_idle()/wait_idle_for() picks them (and the first error) up.
  bool wait_idle_for(std::chrono::milliseconds timeout,
                     std::string* diagnostic = nullptr);

  /// Tasks submitted but not yet finished (queued + running). A racy
  /// snapshot, for diagnostics only.
  std::size_t pending() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Runs body(chunk_index, begin, end) over [0, n) split into one chunk per
/// worker. body must be thread-safe across chunks. Runs inline when the
/// pool has a single worker or n is tiny. Propagates the first exception
/// a chunk throws (after all chunks have finished).
void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace cdse
