#pragma once
// Fixed-size thread pool and a static-partition parallel_for.
//
// Monte-Carlo sampling and the epsilon(k) family sweeps are embarrassingly
// parallel over independent RNG streams; a static partition keeps the
// per-trial bookkeeping allocation-free and deterministic. The pool is
// intentionally minimal (no work stealing): trial costs are uniform.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cdse {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(chunk_index, begin, end) over [0, n) split into one chunk per
/// worker. body must be thread-safe across chunks. Runs inline when the
/// pool has a single worker or n is tiny.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace cdse
