#include "util/sharded_interner.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace cdse {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::size_t default_shards() {
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(round_up_pow2(hw), 4, 64);
}

}  // namespace

ShardedStateInterner::ShardedStateInterner(std::size_t shards) {
  std::size_t n = shards == 0 ? default_shards() : round_up_pow2(shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = static_cast<Handle>(n - 1);
  shard_bits_ = 0;
  while ((std::size_t{1} << shard_bits_) < n) ++shard_bits_;
}

ShardedStateInterner::Handle ShardedStateInterner::intern_bytes(
    const void* data, std::size_t len) {
  // Hash once: top bits route to a shard, the full hash is forwarded so
  // the shard's open-addressing walk (low bits) does not re-read the key.
  const std::uint64_t h = StateInterner::hash_bytes(data, len);
  const std::size_t s =
      static_cast<std::size_t>(h >> (64 - shard_bits_)) & shard_mask_;
  Shard& shard = *shards_[s];
  std::lock_guard<std::mutex> lk(shard.mu);
  return global_handle(s, shard.interner.intern_bytes_hashed(data, len, h));
}

bool ShardedStateInterner::retire(Handle h) {
  if (h == kInvalidHandle) return false;
  Shard& shard = *shards_[shard_of(h)];
  std::lock_guard<std::mutex> lk(shard.mu);
  return shard.interner.retire(local_of(h));
}

bool ShardedStateInterner::is_live(Handle h) const {
  if (h == kInvalidHandle) return false;
  const Shard& shard = *shards_[shard_of(h)];
  std::lock_guard<std::mutex> lk(shard.mu);
  return shard.interner.is_live(local_of(h));
}

std::pair<const std::byte*, std::size_t> ShardedStateInterner::key(
    Handle h) const {
  if (h == kInvalidHandle) {
    throw std::out_of_range("ShardedStateInterner: invalid handle");
  }
  const Shard& shard = *shards_[shard_of(h)];
  std::lock_guard<std::mutex> lk(shard.mu);
  return shard.interner.key(local_of(h));
}

ShardedStateInterner::CollectResult ShardedStateInterner::collect(
    double compact_threshold, const RemapFn& remap_fn) {
  CollectResult result;
  std::vector<Handle> old_to_new;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lk(shard.mu);
    const std::size_t before = shard.interner.stats().bytes_reclaimed;
    result.keys_collected += shard.interner.collect();
    const std::size_t total = shard.interner.size();
    const std::size_t live = shard.interner.live_keys();
    const bool worth_compacting =
        total >= 1024 &&
        static_cast<double>(total - live) >
            compact_threshold * static_cast<double>(total);
    if (worth_compacting) {
      shard.interner.compact(&old_to_new);
      ++shard.compactions;
      ++result.shards_compacted;
      if (remap_fn) remap_fn(s, old_to_new);
    }
    result.bytes_reclaimed +=
        shard.interner.stats().bytes_reclaimed - before;
  }
  return result;
}

ShardedStateInterner::Handle ShardedStateInterner::remap(
    Handle h, const std::vector<Handle>& old_to_new_local) const {
  const Handle local = local_of(h);
  if (local >= old_to_new_local.size() ||
      old_to_new_local[local] == StateInterner::kInvalidHandle) {
    return kInvalidHandle;
  }
  return global_handle(shard_of(h), old_to_new_local[local]);
}

InternStats ShardedStateInterner::stats() const {
  InternStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    total += shard->interner.stats();
  }
  return total;
}

std::size_t ShardedStateInterner::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    n += shard->interner.size();
  }
  return n;
}

std::size_t ShardedStateInterner::live_keys() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    n += shard->interner.live_keys();
  }
  return n;
}

}  // namespace cdse
