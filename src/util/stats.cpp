#include "util/stats.hpp"

#include <cmath>

namespace cdse {

void RunningStat::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double hoeffding_radius(std::size_t n, double delta) {
  if (n == 0) return 1.0;
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  LinearFit f;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = ys[i] - (f.intercept + f.slope * xs[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

}  // namespace cdse
