#include "util/sorted_set.hpp"

// Header-only; this translation unit exists so the target has a stable
// archive member and the header is compiled standalone at least once.
namespace cdse::set {
namespace {
[[maybe_unused]] void instantiation_smoke() {
  SortedSet<int> a{1, 2, 3};
  SortedSet<int> b{2, 4};
  (void)unite(a, b);
  (void)intersect(a, b);
  (void)subtract(a, b);
  (void)disjoint(a, b);
  (void)subset(a, b);
}
}  // namespace
}  // namespace cdse::set
