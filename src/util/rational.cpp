#include "util/rational.hpp"

#include <limits>
#include <numeric>
#include <ostream>

namespace cdse {
namespace {

__int128 gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t narrow(__int128 v) {
  if (v > std::numeric_limits<std::int64_t>::max() ||
      v < std::numeric_limits<std::int64_t>::min()) {
    throw std::overflow_error("Rational: 64-bit overflow after reduction");
  }
  return static_cast<std::int64_t>(v);
}

}  // namespace

Rational Rational::from_i128(__int128 num, __int128 den) {
  if (den == 0) throw std::domain_error("Rational: zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  __int128 g = gcd128(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  Rational r;
  r.num_ = narrow(num);
  r.den_ = narrow(den);
  return r;
}

Rational::Rational(std::int64_t num, std::int64_t den) {
  *this = from_i128(num, den);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& o) {
  // Identity fast paths: both operands are normalized, so adding zero
  // (or into zero) needs neither the cross-multiplication nor the gcd.
  if (o.num_ == 0) return *this;
  if (num_ == 0) {
    *this = o;
    return *this;
  }
  *this = from_i128(static_cast<__int128>(num_) * o.den_ +
                        static_cast<__int128>(o.num_) * den_,
                    static_cast<__int128>(den_) * o.den_);
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // The enumerator's prob * w * tw chains hit these constantly: absorb
  // zero (restoring the canonical 0/1), and skip the 128-bit product +
  // gcd entirely when either factor is exactly 1. Operands are already
  // normalized, so the result of each fast path is normalized too -- and
  // none of them can overflow, preserving the throw contract for the
  // general path.
  if (num_ == 0) return *this;
  if (o.num_ == 0) {
    *this = Rational();
    return *this;
  }
  if (o.num_ == 1 && o.den_ == 1) return *this;
  if (num_ == 1 && den_ == 1) {
    *this = o;
    return *this;
  }
  *this = from_i128(static_cast<__int128>(num_) * o.num_,
                    static_cast<__int128>(den_) * o.den_);
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  if (o.num_ == 0) throw std::domain_error("Rational: division by zero");
  if (num_ == 0) return *this;
  if (o.num_ == 1 && o.den_ == 1) return *this;
  *this = from_i128(static_cast<__int128>(num_) * o.den_,
                    static_cast<__int128>(den_) * o.num_);
  return *this;
}

bool operator<(const Rational& a, const Rational& b) {
  return static_cast<__int128>(a.num_) * b.den_ <
         static_cast<__int128>(b.num_) * a.den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace cdse
