#include "psioa/random.hpp"

namespace cdse {

std::shared_ptr<ExplicitPsioa> make_random_psioa(
    const std::string& name, const std::string& tag,
    const RandomPsioaConfig& config, Xoshiro256& rng) {
  auto a = std::make_shared<ExplicitPsioa>(name);
  ActionSet outs;
  for (std::size_t i = 0; i < config.n_outputs; ++i) {
    set::insert(outs, act("rout" + std::to_string(i) + "_" + tag));
  }
  ActionSet ints;
  for (std::size_t i = 0; i < config.n_internals; ++i) {
    set::insert(ints, act("rint" + std::to_string(i) + "_" + tag));
  }

  std::vector<State> states;
  for (std::size_t i = 0; i < config.n_states; ++i) {
    states.push_back(a->add_state("r" + std::to_string(i)));
  }
  a->set_start(states[0]);

  auto coin = [&rng, &config] {
    return rng.below(8) < config.enable_odds;
  };
  for (State q : states) {
    Signature sig;
    for (ActionId in_cand : config.input_candidates) {
      if (coin()) sig.in.push_back(in_cand);
    }
    for (ActionId out_a : outs) {
      if (coin()) sig.out.push_back(out_a);
    }
    for (ActionId int_a : ints) {
      if (coin()) sig.internal.push_back(int_a);
    }
    set::normalize(sig.in);
    set::normalize(sig.out);
    set::normalize(sig.internal);
    a->set_signature(q, sig);
  }
  // Transitions: random dyadic distributions over all states (eighths,
  // at least one atom).
  for (State q : states) {
    for (ActionId act_id : a->signature(q).all()) {
      StateDist d;
      Rational remaining(1);
      while (!remaining.is_zero()) {
        const State target = states[rng.below(states.size())];
        Rational w(static_cast<std::int64_t>(rng.below(8)) + 1, 8);
        if (remaining < w) w = remaining;
        d.add(target, w);
        remaining -= w;
      }
      a->add_transition(q, act_id, d);
    }
  }
  a->validate();
  return a;
}

}  // namespace cdse
