#include "psioa/execution.hpp"

#include <stdexcept>

namespace cdse {

ExecFragment ExecFragment::concat(const ExecFragment& tail) const {
  if (is_empty()) return tail;
  if (tail.is_empty()) return *this;
  if (tail.fstate() != lstate()) {
    throw std::invalid_argument(
        "ExecFragment::concat: fstate(tail) != lstate(head)");
  }
  ExecFragment out = *this;
  for (std::size_t i = 0; i < tail.length(); ++i) {
    out.append(tail.actions_[i], tail.states_[i + 1]);
  }
  return out;
}

bool ExecFragment::is_prefix_of(const ExecFragment& other) const {
  if (length() > other.length()) return false;
  for (std::size_t i = 0; i <= length(); ++i) {
    if (states_[i] != other.states_[i]) return false;
  }
  for (std::size_t i = 0; i < length(); ++i) {
    if (actions_[i] != other.actions_[i]) return false;
  }
  return true;
}

ExecFragment ExecFragment::prefix(std::size_t n) const {
  if (n > length())
    throw std::invalid_argument("ExecFragment::prefix: n > length");
  ExecFragment out(states_.front());
  for (std::size_t i = 0; i < n; ++i) out.append(actions_[i], states_[i + 1]);
  return out;
}

std::string ExecFragment::to_string(Psioa& automaton) const {
  if (is_empty()) return "<empty>";
  std::string s = automaton.state_label(states_[0]);
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    s += " -" + ActionTable::instance().name(actions_[i]) + "-> ";
    s += automaton.state_label(states_[i + 1]);
  }
  return s;
}

std::vector<ActionId> trace_of(Psioa& automaton, const ExecFragment& alpha) {
  std::vector<ActionId> tr;
  for (std::size_t i = 0; i < alpha.length(); ++i) {
    const Signature sig = automaton.signature(alpha.states()[i]);
    if (sig.is_external(alpha.actions()[i])) tr.push_back(alpha.actions()[i]);
  }
  return tr;
}

std::string trace_string(const std::vector<ActionId>& trace) {
  std::string s;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i) s += ".";
    s += ActionTable::instance().name(trace[i]);
  }
  return s;
}

bool is_execution_fragment(Psioa& automaton, const ExecFragment& alpha) {
  if (alpha.is_empty()) return false;
  for (std::size_t i = 0; i < alpha.length(); ++i) {
    if (!automaton.is_step(alpha.states()[i], alpha.actions()[i],
                           alpha.states()[i + 1])) {
      return false;
    }
  }
  return true;
}

bool is_execution(Psioa& automaton, const ExecFragment& alpha) {
  return is_execution_fragment(automaton, alpha) &&
         alpha.fstate() == automaton.start_state();
}

}  // namespace cdse
