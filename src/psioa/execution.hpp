#pragma once
// Execution fragments, executions and traces (Def 2.2).
//
// An execution fragment alternates states and actions, q0 a1 q1 a2 ...,
// and ends with a state when finite. We store the state and action
// sequences separately; |states| == |actions| + 1 is the class invariant.
// trace() restricts to external actions, evaluated against the signature
// at the action's source state (signatures are state-dependent).

#include <string>
#include <vector>

#include "psioa/psioa.hpp"

namespace cdse {

class ExecFragment {
 public:
  ExecFragment() = default;
  explicit ExecFragment(State first) : states_{first} {}

  static ExecFragment starting_at(State q) { return ExecFragment(q); }

  bool is_empty() const { return states_.empty(); }

  /// fstate / lstate of Def 2.2.
  State fstate() const { return states_.front(); }
  State lstate() const { return states_.back(); }

  /// |alpha|: the number of transitions.
  std::size_t length() const { return actions_.size(); }

  const std::vector<State>& states() const { return states_; }
  const std::vector<ActionId>& actions() const { return actions_; }

  /// alpha ^ (a, q'): extends by one step.
  void append(ActionId a, State q2) {
    actions_.push_back(a);
    states_.push_back(q2);
  }

  /// Drops transitions past the first n, keeping capacity. The in-place
  /// twin of prefix(): the iterative cone enumerator backtracks by
  /// truncating one shared path instead of copying a fragment per edge.
  void truncate(std::size_t n) {
    actions_.resize(n);
    states_.resize(n + 1);
  }

  /// Concatenation alpha ^ alpha' (defined iff alpha'.fstate == lstate;
  /// throws std::invalid_argument otherwise).
  ExecFragment concat(const ExecFragment& tail) const;

  /// Prefix relations (alpha <= alpha' / alpha < alpha').
  bool is_prefix_of(const ExecFragment& other) const;
  bool is_proper_prefix_of(const ExecFragment& other) const {
    return is_prefix_of(other) && length() < other.length();
  }

  /// The prefix with n transitions (n <= length()).
  ExecFragment prefix(std::size_t n) const;

  friend bool operator==(const ExecFragment& a, const ExecFragment& b) {
    return a.states_ == b.states_ && a.actions_ == b.actions_;
  }

  std::string to_string(Psioa& automaton) const;

 private:
  std::vector<State> states_;
  std::vector<ActionId> actions_;
};

/// trace(alpha): restriction of the action sequence to actions external at
/// their source state (Def 2.2).
std::vector<ActionId> trace_of(Psioa& automaton, const ExecFragment& alpha);

/// Renders a trace as "a.b.c" using the action table.
std::string trace_string(const std::vector<ActionId>& trace);

/// Checks that alpha is an execution fragment of A: every step is in
/// steps(A) (Def 2.2 condition 2).
bool is_execution_fragment(Psioa& automaton, const ExecFragment& alpha);

/// An execution additionally starts at the start state.
bool is_execution(Psioa& automaton, const ExecFragment& alpha);

}  // namespace cdse
