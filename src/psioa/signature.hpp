#pragma once
// State signatures and the signature algebra of Sections 2.2-2.4.
//
// A signature partitions the actions enabled at a state into input, output
// and internal classes (Def 2.1). Compatibility (Def 2.3), composition
// (Def 2.4), hiding (Def 2.6) and renaming are pure set algebra over the
// three classes; everything here is value-semantic and allocation-light.

#include <string>

#include "psioa/action.hpp"

namespace cdse {

struct Signature {
  ActionSet in;
  ActionSet out;
  ActionSet internal;

  /// ext(q) = in(q) U out(q).
  ActionSet ext() const { return set::unite(in, out); }

  /// \widehat{sig}(q) = in U out U int -- every executable action.
  ActionSet all() const { return set::unite(set::unite(in, out), internal); }

  bool contains(ActionId a) const {
    return set::contains(in, a) || set::contains(out, a) ||
           set::contains(internal, a);
  }

  bool is_input(ActionId a) const { return set::contains(in, a); }
  bool is_output(ActionId a) const { return set::contains(out, a); }
  bool is_internal(ActionId a) const { return set::contains(internal, a); }
  bool is_external(ActionId a) const { return is_input(a) || is_output(a); }

  /// Destruction sentinel (Def 2.12): an automaton whose current signature
  /// is empty is removed by reduce().
  bool empty() const { return in.empty() && out.empty() && internal.empty(); }

  /// Def 2.1 requires the three classes mutually disjoint.
  bool valid() const {
    return set::disjoint(in, out) && set::disjoint(in, internal) &&
           set::disjoint(out, internal);
  }

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.in == b.in && a.out == b.out && a.internal == b.internal;
  }

  std::string to_string() const;
};

/// Def 2.3: (in U out U int) disjoint from int', and out disjoint from out'.
bool compatible(const Signature& a, const Signature& b);

/// Def 2.4: (in U in') \ (out U out'), out U out', int U int'.
/// Precondition: compatible(a, b).
Signature compose(const Signature& a, const Signature& b);

/// Def 2.6: hide(sig, S) = (in, out \ S, int U (out n S)).
Signature hide(const Signature& sig, const ActionSet& s);

}  // namespace cdse
