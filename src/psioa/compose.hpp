#pragma once
// Parallel composition A_1 || ... || A_n (Def 2.5, Def 2.18).
//
// Composite states are tuples of component states, interned lazily as the
// reachable fragment is explored -- exactly Def 2.18's restriction of the
// product space to reachable states. Partial compatibility is enforced on
// contact: touching a reachable state whose component signatures are not
// compatible (Def 2.3) throws IncompatibilityError. Transitions follow
// Def 2.5: the product of the component distributions for components that
// have the action in their signature, Dirac for the rest.
//
// encode_state pairs the component encodings with the self-delimiting
// scheme of Lemma B.1's proof, so representation lengths compose exactly
// as the lemma's accounting predicts (exercised by experiment E1).
//
// Composite signatures and transition products are pure functions of the
// interned (state, action), so the class sits on MemoPsioa: each is
// derived once per reachable pair and served from the memo (with a
// compiled double-CDF row for the sampler) on every later visit.
//
// Tuples are interned through the shared arena-backed StateInterner
// (util/state_interner.hpp): keys live inline in a bump arena with
// stable addresses, so tuple() hands out borrowed views that survive
// later interning, and discovery pays no per-state node allocation.

#include <stdexcept>
#include <vector>

#include "psioa/memo.hpp"

namespace cdse {

class IncompatibilityError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

class ComposedPsioa : public MemoPsioa {
 public:
  explicit ComposedPsioa(std::vector<PsioaPtr> components);

  State start_state() override;
  BitString encode_state(State q) override;
  std::string state_label(State q) override;
  void set_memoization(bool on) override;

  std::size_t component_count() const { return components_.size(); }
  Psioa& component(std::size_t i) { return *components_[i]; }
  PsioaPtr component_ptr(std::size_t i) const { return components_[i]; }

  /// q |` A_i of Def 2.18: the i-th component's state within q.
  State project(State q, std::size_t i) const;

  /// The full component-state tuple for q. The view borrows arena
  /// storage: it stays valid while this automaton lives, including
  /// across later interning.
  TupleRef tuple(State q) const;

  /// Interns a tuple (exposed for the PCA layer, which needs to align
  /// composite PCA states with component configurations).
  State intern_tuple(const std::vector<State>& tuple);

  InternStats intern_stats() const override;
  void reserve_interning(std::size_t expected_states) override;

 protected:
  // Uncached Def 2.5 semantics; MemoPsioa caches the results per
  // reachable (state, action).
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override;

 private:
  std::vector<PsioaPtr> components_;
  StateInterner interned_;
};

/// A_1 || ... || A_n. Requires n >= 1.
std::shared_ptr<ComposedPsioa> compose(std::vector<PsioaPtr> components);

inline std::shared_ptr<ComposedPsioa> compose(PsioaPtr a, PsioaPtr b) {
  return compose(std::vector<PsioaPtr>{std::move(a), std::move(b)});
}

inline std::shared_ptr<ComposedPsioa> compose(PsioaPtr a, PsioaPtr b,
                                              PsioaPtr c) {
  return compose(
      std::vector<PsioaPtr>{std::move(a), std::move(b), std::move(c)});
}

/// Checks partial compatibility of the composition up to `depth`
/// transitions from the start state: explores reachable composite states
/// and reports false instead of throwing when any is incompatible.
bool partially_compatible(std::vector<PsioaPtr> components,
                          std::size_t depth);

}  // namespace cdse
