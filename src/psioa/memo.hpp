#pragma once
// MemoPsioa: the memoized transition engine shared by every wrapper
// automaton (composition, hiding, renaming, PCA-derived PSIOA, dummy
// adversaries).
//
// Wrapper signatures and transition distributions are pure functions of
// the interned (state, action) pair, yet the wrappers historically
// re-derived composed signatures and re-multiplied ExactDisc<Rational>
// products on every call -- on every step of every sampled trial.
// MemoPsioa separates the exact semantic layer from the evaluation
// layer: subclasses implement compute_signature / compute_transition
// once, and the base caches per reachable state the resolved Signature
// and per (state, action) a CompiledRow holding both the exact
// StateDist and a compiled double-CDF over its support, so the sampling
// fast-path never touches Rational arithmetic or re-runs composition
// products. signature() / transition() return the cached *exact*
// objects, which keeps the exact cone enumerator byte-identical:
// memoization is semantics-neutral by construction, and the property
// suite in tests/memo_test.cpp asserts memoized == direct on random
// PSIOA and on composed/hidden/renamed/structured stacks.
//
// Caches are per-instance and unsynchronized: the one-thread-per-
// instance rule of psioa.hpp covers compiled rows too. The parallel
// sampler clones automata via factories, so each worker owns (and
// warms) its own tables; set_memoization(false) restores the historical
// recompute-per-call behaviour for benchmarking and for the "direct"
// side of equivalence tests.
//
// freeze() (psioa/snapshot.hpp) lifts a warmed instance's tables into an
// immutable CompiledSnapshot that thin SnapshotPsioa views share
// read-only across sampler workers; signature_ref/compiled_row are
// virtual so those views can serve frozen rows without copying them into
// per-worker tables.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "psioa/psioa.hpp"
#include "util/alias.hpp"

namespace cdse {

class CompiledSnapshot;

/// Compiled sampling row for one (state, action): the exact transition
/// distribution plus a running double-CDF over its support, built once.
/// sample() walks the CDF exactly the way the sampler historically
/// walked to_double() partial sums, so the refactor is draw-for-draw
/// reproducible at fixed seed. The row also carries a Walker alias
/// table over the same support, built at the same compile time and
/// frozen (immutably shared across workers) together with the CDF: the
/// batched sampling mode draws targets in O(1) through sample_alias,
/// equivalent to sample() in distribution but not draw-for-draw (the
/// two consume the RNG differently).
struct CompiledRow {
  StateDist dist;             ///< exact eta_{(A,q,a)}, canonical form
  std::vector<State> targets; ///< dist support, in entry order
  std::vector<double> cdf;    ///< running sums of dist weights as doubles
  AliasTable alias;           ///< O(1) draw table over the same support

  static CompiledRow compile(StateDist d) {
    CompiledRow row;
    row.targets.reserve(d.entries().size());
    row.cdf.reserve(d.entries().size());
    std::vector<double> weights;
    weights.reserve(d.entries().size());
    double acc = 0.0;
    for (const auto& [q2, w] : d.entries()) {
      const double wd = w.to_double();
      acc += wd;
      row.targets.push_back(q2);
      row.cdf.push_back(acc);
      weights.push_back(wd);
    }
    row.alias = AliasTable::build(weights);
    row.dist = std::move(d);
    return row;
  }

  /// Draws a target given u ~ Uniform[0,1); the final target absorbs
  /// any floating-point round-off shortfall at u ~ 1 (the CDF of an
  /// exact probability row can round short of 1.0 -- e.g. repeated 1/10
  /// weights -- so falling off the scan must clamp, never wrap).
  State sample(double u) const {
    for (std::size_t i = 0; i < cdf.size(); ++i) {
      if (u < cdf[i]) return targets[i];
    }
    return targets.back();
  }

  /// O(1) draw from (i, u) with i ~ Uniform{0..support-1}, u ~ U[0,1).
  State sample_alias(std::size_t i, double u) const {
    return targets[alias.pick(i, u)];
  }
};

/// Cache counters, exposed for the regression tests and the E10 bench.
/// `*_computes` count invocations of the underlying compute_* virtuals;
/// a warm cache keeps them flat while `*_hits` grow.
struct MemoStats {
  std::size_t sig_computes = 0;
  std::size_t sig_hits = 0;
  std::size_t row_computes = 0;
  std::size_t row_hits = 0;
};

class MemoPsioa : public Psioa {
 public:
  using Psioa::Psioa;

  Signature signature(State q) final;
  StateDist transition(State q, ActionId a) final;

  /// The cached signature by reference (computes on miss). Invalidated
  /// by set_memoization(false) and clear_memo(). Virtual so snapshot
  /// views can serve a shared frozen table ahead of the local memo.
  virtual const Signature& signature_ref(State q);

  /// The compiled sampling row for (q, a) (computes on miss). With
  /// memoization off the row is rebuilt into a scratch slot, valid only
  /// until the next compiled_row call on this instance. Virtual for the
  /// same reason as signature_ref.
  virtual const CompiledRow& compiled_row(State q, ActionId a);

  /// The cached exact transition distribution by reference: what
  /// transition(q, a) returns, without the per-call StateDist copy. The
  /// exact cone enumerator's hot loop reads rows through this hook (the
  /// reference lifetime matches compiled_row's).
  const StateDist& transition_dist(State q, ActionId a) {
    return compiled_row(q, a).dist;
  }

  void set_memoization(bool on) override;
  bool memoization_enabled() const { return memo_on_; }
  void clear_memo();

  /// Session-GC hook: drops every cached signature/row of a state for
  /// which `dead` returns true, and every cached row whose transition
  /// *targets* such a state. Without this, a memoized row could keep
  /// serving a retired handle after the interner has reclaimed (and a
  /// reopened session has re-issued) it. Returns rows dropped.
  std::size_t invalidate_states(const std::function<bool(State)>& dead);

  /// True while the snapshot returned by the most recent freeze() is
  /// still alive. Snapshots pin this instance's handle space, so session
  /// GC (DynamicPca::retire_states_of) refuses to run while one is
  /// outstanding. Tracks the latest freeze only -- callers layering
  /// multiple snapshots over one instance must sequence GC themselves.
  bool snapshot_outstanding() const { return !last_snapshot_.expired(); }

  /// Copies the currently cached signatures and compiled rows into an
  /// immutable CompiledSnapshot (psioa/snapshot.hpp) that SnapshotPsioa
  /// views share read-only across sampler workers. The snapshot captures
  /// this instance's state-handle space: views are only meaningful
  /// together with a SnapshotResidue built over this same instance.
  std::shared_ptr<const CompiledSnapshot> freeze();

  const MemoStats& memo_stats() const { return stats_; }

 protected:
  /// The uncached semantics, implemented by each wrapper. Called at most
  /// once per reachable state / (state, action) while memoization is on.
  virtual Signature compute_signature(State q) = 0;
  virtual StateDist compute_transition(State q, ActionId a) = 0;

 private:
  struct StateMemo {
    std::optional<Signature> sig;
    std::unordered_map<ActionId, CompiledRow> rows;
  };

  bool memo_on_ = true;
  MemoStats stats_;
  std::unordered_map<State, StateMemo> memo_;
  CompiledRow scratch_;    // memo-off compiled_row storage
  Signature scratch_sig_;  // memo-off signature_ref storage
  std::weak_ptr<const CompiledSnapshot> last_snapshot_;  // freeze() guard
};

/// Memoizing view over any automaton, sharing its state handles: wraps
/// leaf automata (table-driven, protocol, crypto) that are not worth
/// migrating onto the base class, and provides the "same semantics,
/// caching on/off" instance pair the equivalence suite compares.
class MemoView : public MemoPsioa {
 public:
  explicit MemoView(PsioaPtr inner)
      : MemoPsioa("memo(" + inner->name() + ")"), inner_(std::move(inner)) {}

  State start_state() override { return inner_->start_state(); }
  BitString encode_state(State q) override { return inner_->encode_state(q); }
  std::string state_label(State q) override { return inner_->state_label(q); }

  void set_memoization(bool on) override {
    MemoPsioa::set_memoization(on);
    inner_->set_memoization(on);
  }
  InternStats intern_stats() const override { return inner_->intern_stats(); }
  void reserve_interning(std::size_t expected_states) override {
    inner_->reserve_interning(expected_states);
  }

  Psioa& inner() { return *inner_; }
  PsioaPtr inner_ptr() const { return inner_; }

 protected:
  Signature compute_signature(State q) override {
    return inner_->signature(q);
  }
  StateDist compute_transition(State q, ActionId a) override {
    return inner_->transition(q, a);
  }

 private:
  PsioaPtr inner_;
};

inline std::shared_ptr<MemoView> memoize(PsioaPtr a) {
  return std::make_shared<MemoView>(std::move(a));
}

}  // namespace cdse
