#pragma once
// ExplicitPsioa: a table-driven PSIOA builder.
//
// Most substrate automata (channels, coins, crypto functionalities, ideal
// specs) have modest explicit state graphs. ExplicitPsioa lets them be
// declared state-by-state with labelled states, per-state signatures and
// rational transition distributions, and validates Def 2.1's constraints
// (signature validity, transitions only on enabled actions, probability
// totals) either eagerly or via validate().

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "psioa/execution.hpp"
#include "psioa/psioa.hpp"

namespace cdse {

class ExplicitPsioa : public Psioa {
 public:
  explicit ExplicitPsioa(std::string name) : Psioa(std::move(name)) {}

  /// Declares a state with a diagnostic label; returns its handle.
  /// Labels must be unique (they double as the bit-string encoding).
  State add_state(std::string label);

  /// Looks up a declared state by label.
  std::optional<State> find_state(const std::string& label) const;

  void set_start(State q);
  void set_signature(State q, Signature sig);

  /// Adds the unique transition (q, a, eta). `a` must be in sig(q);
  /// re-adding for the same (q, a) throws (uniqueness in Def 2.1).
  void add_transition(State q, ActionId a, StateDist eta);

  /// Deterministic transition shorthand: eta = dirac(q2).
  void add_step(State q, ActionId a, State q2) {
    add_transition(q, a, StateDist::dirac(q2));
  }

  /// Throws std::logic_error describing the first violated constraint.
  void validate();

  std::size_t state_count() const { return labels_.size(); }

  // Psioa interface.
  State start_state() override;
  Signature signature(State q) override;
  StateDist transition(State q, ActionId a) override;
  BitString encode_state(State q) override;
  std::string state_label(State q) override;

 private:
  struct Node {
    Signature sig;
    bool sig_set = false;
    std::vector<std::pair<ActionId, StateDist>> trans;  // sorted by action
  };

  Node& node_at(State q);

  std::optional<State> start_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, State> by_label_;
  std::vector<Node> nodes_;
};

}  // namespace cdse
