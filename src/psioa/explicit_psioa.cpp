#include "psioa/explicit_psioa.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdse {

State ExplicitPsioa::add_state(std::string label) {
  if (by_label_.count(label)) {
    throw std::logic_error("ExplicitPsioa: duplicate state label '" + label +
                           "' in " + name());
  }
  State q = labels_.size();
  by_label_.emplace(label, q);
  labels_.push_back(std::move(label));
  nodes_.emplace_back();
  return q;
}

std::optional<State> ExplicitPsioa::find_state(const std::string& label) const {
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return std::nullopt;
  return it->second;
}

void ExplicitPsioa::set_start(State q) {
  node_at(q);
  start_ = q;
}

void ExplicitPsioa::set_signature(State q, Signature sig) {
  // Normalize defensively: callers often build the three classes from
  // brace-initializers whose order depends on action interning history.
  set::normalize(sig.in);
  set::normalize(sig.out);
  set::normalize(sig.internal);
  if (!sig.valid()) {
    throw std::logic_error("ExplicitPsioa: invalid signature at state '" +
                           labels_[q] + "' of " + name());
  }
  Node& n = node_at(q);
  n.sig = std::move(sig);
  n.sig_set = true;
}

void ExplicitPsioa::add_transition(State q, ActionId a, StateDist eta) {
  Node& n = node_at(q);
  if (!n.sig_set || !n.sig.contains(a)) {
    throw std::logic_error("ExplicitPsioa: transition on action '" +
                           ActionTable::instance().name(a) +
                           "' not in signature of state '" + labels_[q] +
                           "' of " + name());
  }
  auto it = std::lower_bound(
      n.trans.begin(), n.trans.end(), a,
      [](const auto& e, ActionId key) { return e.first < key; });
  if (it != n.trans.end() && it->first == a) {
    throw std::logic_error("ExplicitPsioa: duplicate transition on '" +
                           ActionTable::instance().name(a) + "' at state '" +
                           labels_[q] + "' of " + name());
  }
  if (!eta.is_probability()) {
    throw std::logic_error(
        "ExplicitPsioa: transition distribution does not sum to 1 at state '" +
        labels_[q] + "' of " + name());
  }
  for (const auto& [q2, w] : eta.entries()) {
    node_at(q2);  // target must be declared
    (void)w;
  }
  n.trans.insert(it, {a, std::move(eta)});
}

void ExplicitPsioa::validate() {
  if (!start_) throw std::logic_error("ExplicitPsioa: no start state set");
  for (State q = 0; q < nodes_.size(); ++q) {
    const Node& n = nodes_[q];
    if (!n.sig_set) {
      throw std::logic_error("ExplicitPsioa: state '" + labels_[q] +
                             "' of " + name() + " has no signature");
    }
    // Action enabling (footnote assumption E1): every action in the
    // signature has its unique transition.
    for (ActionId a : n.sig.all()) {
      auto it = std::lower_bound(
          n.trans.begin(), n.trans.end(), a,
          [](const auto& e, ActionId key) { return e.first < key; });
      if (it == n.trans.end() || it->first != a) {
        throw std::logic_error("ExplicitPsioa: enabled action '" +
                               ActionTable::instance().name(a) +
                               "' has no transition at state '" + labels_[q] +
                               "' of " + name());
      }
    }
  }
}

State ExplicitPsioa::start_state() {
  if (!start_) throw std::logic_error("ExplicitPsioa: no start state set");
  return *start_;
}

Signature ExplicitPsioa::signature(State q) {
  Node& n = node_at(q);
  if (!n.sig_set) {
    throw std::logic_error("ExplicitPsioa: state '" + labels_[q] + "' of " +
                           name() + " has no signature");
  }
  return n.sig;
}

StateDist ExplicitPsioa::transition(State q, ActionId a) {
  Node& n = node_at(q);
  auto it = std::lower_bound(
      n.trans.begin(), n.trans.end(), a,
      [](const auto& e, ActionId key) { return e.first < key; });
  if (it == n.trans.end() || it->first != a) {
    throw std::logic_error("ExplicitPsioa: no transition on '" +
                           ActionTable::instance().name(a) + "' at state '" +
                           labels_[q] + "' of " + name());
  }
  return it->second;
}

BitString ExplicitPsioa::encode_state(State q) {
  return BitString::from_bytes(labels_.at(q));
}

std::string ExplicitPsioa::state_label(State q) { return labels_.at(q); }

ExplicitPsioa::Node& ExplicitPsioa::node_at(State q) {
  if (q >= nodes_.size()) {
    throw std::out_of_range("ExplicitPsioa: unknown state handle in " +
                            name());
  }
  return nodes_[q];
}

}  // namespace cdse
