#include "psioa/rename.hpp"

#include <stdexcept>

namespace cdse {

void ActionBijection::add(ActionId from, ActionId to) {
  if (fwd_.count(from)) {
    throw std::logic_error("ActionBijection: duplicate source '" +
                           ActionTable::instance().name(from) + "'");
  }
  if (rev_.count(to)) {
    throw std::logic_error("ActionBijection: duplicate target '" +
                           ActionTable::instance().name(to) + "'");
  }
  fwd_.emplace(from, to);
  rev_.emplace(to, from);
}

ActionBijection ActionBijection::with_suffix(const ActionSet& domain,
                                             const std::string& suffix) {
  ActionBijection b;
  for (ActionId a : domain) {
    b.add(a, act(ActionTable::instance().name(a) + suffix));
  }
  return b;
}

ActionId ActionBijection::apply(ActionId a) const {
  auto it = fwd_.find(a);
  return it == fwd_.end() ? a : it->second;
}

ActionSet ActionBijection::apply(const ActionSet& s) const {
  ActionSet out;
  out.reserve(s.size());
  for (ActionId a : s) out.push_back(apply(a));
  set::normalize(out);
  return out;
}

Signature ActionBijection::apply(const Signature& sig) const {
  Signature out;
  out.in = apply(sig.in);
  out.out = apply(sig.out);
  out.internal = apply(sig.internal);
  return out;
}

ActionId ActionBijection::invert(ActionId a) const {
  auto it = rev_.find(a);
  return it == rev_.end() ? a : it->second;
}

ActionBijection ActionBijection::inverse() const {
  ActionBijection b;
  b.fwd_ = rev_;
  b.rev_ = fwd_;
  return b;
}

bool ActionBijection::valid_for(const Signature& sig) const {
  // Injectivity on sig.all(): images must be pairwise distinct.
  const ActionSet all = sig.all();
  ActionSet images = apply(all);
  return images.size() == all.size();
}

RenamedPsioa::RenamedPsioa(PsioaPtr inner, ActionBijection r)
    : MemoPsioa("r(" + inner->name() + ")"),
      inner_(std::move(inner)),
      r_(std::move(r)) {}

Signature RenamedPsioa::compute_signature(State q) {
  Signature sig = inner_->signature(q);
  if (!r_.valid_for(sig)) {
    throw std::logic_error(
        "RenamedPsioa: renaming not injective on signature of state " +
        inner_->state_label(q));
  }
  return r_.apply(sig);
}

StateDist RenamedPsioa::compute_transition(State q, ActionId a) {
  // The action must be addressed by its renamed identity: an action whose
  // old name was renamed away is no longer in sig(r(A))(q).
  if (!signature_ref(q).contains(a)) {
    throw std::logic_error("RenamedPsioa: action '" +
                           ActionTable::instance().name(a) +
                           "' not enabled at state " +
                           inner_->state_label(q));
  }
  return inner_->transition(q, r_.invert(a));
}

}  // namespace cdse
