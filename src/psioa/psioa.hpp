#pragma once
// PSIOA: probabilistic signature input/output automata (Def 2.1).
//
// A PSIOA is an automaton with a countable state space, a unique start
// state, a state-dependent signature, and for every enabled action a
// unique discrete transition distribution. We expose states as opaque
// uint64 handles local to each automaton instance; implementations intern
// lazily-discovered states, which realizes "countable state space explored
// on demand" without materializing it.
//
// Transition probabilities are exact rationals (util/rational.hpp): the
// exact cone-measure enumerator depends on it. Wrapper automata derive
// from MemoPsioa (psioa/memo.hpp), which caches per reachable
// (state, action) the resolved Signature, the exact StateDist, and a
// compiled double-CDF row; the Monte-Carlo sampler draws from those
// compiled rows and never touches Rational on its hot path. Leaf
// automata that implement Psioa directly are sampled through the
// historical convert-per-step path (or wrapped in a MemoView).
//
// Methods are non-const by design: signature/transition may intern new
// states or memoize. One automaton instance must be driven by one
// thread -- this covers the memo tables and compiled rows as well,
// which are per-instance and unsynchronized. Parallel sampling respects
// the rule two ways (see sched/sampler): the clone-per-worker path gives
// every worker its own factory-built instance, and the shared-snapshot
// path (psioa/snapshot.hpp) hands workers thin views over one frozen,
// immutable table set -- concurrent reads of frozen state need no
// synchronization, and the single mutable residue instance is serialized
// behind a mutex.

#include <cstdint>
#include <memory>
#include <string>

#include "measure/disc.hpp"
#include "psioa/signature.hpp"
#include "util/bitstring.hpp"
#include "util/state_interner.hpp"

namespace cdse {

using State = std::uint64_t;

/// Transition target distribution: eta_{(A,q,a)} in Disc(Q_A).
using StateDist = ExactDisc<State>;

class Psioa {
 public:
  explicit Psioa(std::string name) : name_(std::move(name)) {}
  virtual ~Psioa() = default;

  Psioa(const Psioa&) = delete;
  Psioa& operator=(const Psioa&) = delete;

  /// Automaton identifier (the paper's Autids name).
  const std::string& name() const { return name_; }

  /// \bar{q}_A, the unique start state.
  virtual State start_state() = 0;

  /// sig(A)(q). Must be valid() for every reachable q.
  virtual Signature signature(State q) = 0;

  /// eta_{(A,q,a)}. Precondition: a in sig(A)(q).all(); implementations
  /// throw std::logic_error otherwise (action-enabling assumption E1).
  virtual StateDist transition(State q, ActionId a) = 0;

  /// Bit-string representation <q> (Section 4). The default encodes the
  /// raw handle; automata with structured states override it so that
  /// representation length reflects genuine description size.
  virtual BitString encode_state(State q) { return BitString::from_uint(q); }

  /// Human-readable state label for traces and error messages.
  virtual std::string state_label(State q) { return std::to_string(q); }

  /// Toggles transition/signature memoization on this automaton and on
  /// every automaton it wraps. No-op for leaf automata without caches;
  /// MemoPsioa overrides it, wrappers additionally forward to their
  /// components. Used to benchmark cached vs uncached rows and to build
  /// the "direct" side of the memo-equivalence property suite.
  virtual void set_memoization(bool on) { (void)on; }

  /// Aggregate state-interning counters for this automaton and every
  /// automaton it wraps (util/state_interner.hpp). Zero for leaves
  /// without a handle store; interning automata add their own interner's
  /// stats and wrappers forward like set_memoization. The E10 bench reads
  /// this to report warm-up allocator traffic.
  virtual InternStats intern_stats() const { return {}; }

  /// Pre-sizes interning tables for an expected number of reachable
  /// states, so BFS warm-up (sched/sampler's warm_automaton) discovers
  /// states without mid-walk rehashes. Advisory; forwarded through
  /// wrappers like set_memoization.
  virtual void reserve_interning(std::size_t expected_states) {
    (void)expected_states;
  }

  // -- convenience helpers -------------------------------------------------

  /// All actions executable at q.
  ActionSet enabled(State q) { return signature(q).all(); }

  /// True when (q, a, q') in steps(A), i.e. q' in supp(eta_{(A,q,a)}).
  bool is_step(State q, ActionId a, State q2);

 private:
  std::string name_;
};

using PsioaPtr = std::shared_ptr<Psioa>;

/// Factory producing fresh, independent instances of the same automaton;
/// the unit of work distribution for the parallel sampler.
using PsioaFactory = std::function<PsioaPtr()>;

}  // namespace cdse
