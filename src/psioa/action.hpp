#pragma once
// Actions and the process-wide action table.
//
// Automata built independently (e.g. a protocol and its environment) must
// agree on action identity for composition (Def 2.3-2.5) to mean anything,
// so action names are interned in one process-wide table. ActionId is a
// dense 32-bit handle; ActionSet is a sorted-vector set (util/sorted_set).
//
// Thread-safety: the table is guarded by a shared_mutex. intern() takes
// a shared (read) lock on its fast path -- the overwhelmingly common
// already-interned case, including every act() call made while parallel
// workers replay automata whose names the main thread interned -- and
// only upgrades to an exclusive lock (with a double-check) to insert a
// genuinely new name. Lookups are heterogeneous (string_view keys probe
// the map directly), so the fast path allocates nothing. name() returns
// a reference into a deque, which stays stable across later interning.

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/sorted_set.hpp"

namespace cdse {

using ActionId = std::uint32_t;
inline constexpr ActionId kInvalidAction = ~ActionId{0};

using ActionSet = SortedSet<ActionId>;

class ActionTable {
 public:
  static ActionTable& instance();

  ActionId intern(std::string_view name);
  ActionId lookup(std::string_view name) const;
  const std::string& name(ActionId id) const;
  std::size_t size() const;

  ActionTable(const ActionTable&) = delete;
  ActionTable& operator=(const ActionTable&) = delete;

 private:
  // Transparent hashing: find(string_view) probes without materializing
  // a std::string key.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  ActionTable() = default;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, ActionId, StringHash, std::equal_to<>> ids_;
  std::deque<std::string> names_;
};

/// Shorthand used throughout tests/examples.
ActionId act(std::string_view name);

/// Interns a whole set at once.
ActionSet acts(std::initializer_list<std::string_view> names);

/// Renders a set for diagnostics: "{a, b, c}".
std::string to_string(const ActionSet& s);

}  // namespace cdse
