#pragma once
// Actions and the process-wide action table.
//
// Automata built independently (e.g. a protocol and its environment) must
// agree on action identity for composition (Def 2.3-2.5) to mean anything,
// so action names are interned in one process-wide table. ActionId is a
// dense 32-bit handle; ActionSet is a sorted-vector set (util/sorted_set).
//
// Thread-safety: intern/name are mutex-protected; name() returns a
// reference into a deque, which stays stable across later interning. The
// parallel sampler builds per-thread automaton instances whose action
// names were already interned by the main thread, so contention is nil in
// practice.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/sorted_set.hpp"

namespace cdse {

using ActionId = std::uint32_t;
inline constexpr ActionId kInvalidAction = ~ActionId{0};

using ActionSet = SortedSet<ActionId>;

class ActionTable {
 public:
  static ActionTable& instance();

  ActionId intern(std::string_view name);
  ActionId lookup(std::string_view name) const;
  const std::string& name(ActionId id) const;
  std::size_t size() const;

  ActionTable(const ActionTable&) = delete;
  ActionTable& operator=(const ActionTable&) = delete;

 private:
  ActionTable() = default;
  mutable std::mutex mu_;
  std::unordered_map<std::string, ActionId> ids_;
  std::deque<std::string> names_;
};

/// Shorthand used throughout tests/examples.
ActionId act(std::string_view name);

/// Interns a whole set at once.
ActionSet acts(std::initializer_list<std::string_view> names);

/// Renders a set for diagnostics: "{a, b, c}".
std::string to_string(const ActionSet& s);

}  // namespace cdse
