#pragma once
// Export helpers: Graphviz DOT rendering of explored automata and CSV
// dumps of discrete distributions.
//
// Exploration is bounded (depth / state cap) exactly like the other
// analysis passes; DOT nodes show state labels, edges show
// action [probability] with the action's class (input/output/internal)
// encoded in the edge style, which makes the examples' automata directly
// inspectable with standard tooling.

#include <iosfwd>
#include <string>

#include "measure/disc.hpp"
#include "psioa/psioa.hpp"

namespace cdse {

struct DotOptions {
  std::size_t depth = 8;
  std::size_t max_states = 200;
  bool show_probabilities = true;
};

/// Writes the reachable fragment of `automaton` as a DOT digraph.
void write_dot(std::ostream& os, Psioa& automaton,
               const DotOptions& options = {});

/// Convenience: DOT as a string.
std::string to_dot(Psioa& automaton, const DotOptions& options = {});

/// Writes a distribution as two-column CSV ("value,probability").
/// Weights are emitted exactly (as fraction strings) for rational
/// distributions and as decimals for double ones.
void write_csv(std::ostream& os, const ExactDisc<std::string>& dist,
               const std::string& value_header = "value");
void write_csv(std::ostream& os, const Disc<std::string, double>& dist,
               const std::string& value_header = "value");

}  // namespace cdse
