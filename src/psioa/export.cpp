#include "psioa/export.hpp"

#include <ostream>
#include <queue>
#include <sstream>
#include <unordered_set>

namespace cdse {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* edge_style(const Signature& sig, ActionId a) {
  if (sig.is_input(a)) return "dashed";
  if (sig.is_internal(a)) return "dotted";
  return "solid";
}

}  // namespace

void write_dot(std::ostream& os, Psioa& automaton,
               const DotOptions& options) {
  os << "digraph \"" << escape(automaton.name()) << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  const State q0 = automaton.start_state();
  os << "  q" << q0 << " [label=\""
     << escape(automaton.state_label(q0)) << "\", style=bold];\n";
  std::unordered_set<State> seen{q0};
  std::queue<std::pair<State, std::size_t>> frontier;
  frontier.emplace(q0, 0);
  std::size_t emitted = 1;
  while (!frontier.empty()) {
    auto [q, d] = frontier.front();
    frontier.pop();
    if (d >= options.depth) continue;
    const Signature sig = automaton.signature(q);
    for (ActionId a : sig.all()) {
      const StateDist eta = automaton.transition(q, a);
      for (const auto& [q2, w] : eta.entries()) {
        if (seen.insert(q2).second) {
          if (emitted >= options.max_states) continue;
          ++emitted;
          os << "  q" << q2 << " [label=\""
             << escape(automaton.state_label(q2)) << "\"];\n";
          frontier.emplace(q2, d + 1);
        }
        os << "  q" << q << " -> q" << q2 << " [label=\""
           << escape(ActionTable::instance().name(a));
        if (options.show_probabilities && eta.support_size() > 1) {
          os << " [" << w.to_string() << "]";
        }
        os << "\", style=" << edge_style(sig, a) << "];\n";
      }
    }
  }
  os << "}\n";
}

std::string to_dot(Psioa& automaton, const DotOptions& options) {
  std::ostringstream os;
  write_dot(os, automaton, options);
  return os.str();
}

void write_csv(std::ostream& os, const ExactDisc<std::string>& dist,
               const std::string& value_header) {
  os << value_header << ",probability\n";
  for (const auto& [value, w] : dist.entries()) {
    os << '"' << escape(value) << "\"," << w.to_string() << "\n";
  }
}

void write_csv(std::ostream& os, const Disc<std::string, double>& dist,
               const std::string& value_header) {
  os << value_header << ",probability\n";
  for (const auto& [value, w] : dist.entries()) {
    os << '"' << escape(value) << "\"," << w << "\n";
  }
}

}  // namespace cdse
