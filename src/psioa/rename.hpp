#pragma once
// Action renaming (Def 2.8, closure Lemma A.1).
//
// ActionBijection is an injective partial map on action ids, applied as
// the identity outside its explicit domain. The paper allows a per-state
// renaming; every use in the paper (the adversary-action renaming g of
// Section 4.9, the (R)-suffix renamings in the proof of Theorem B.4)
// is uniform across states, so we implement the uniform case and keep
// injectivity checkable against any concrete signature via valid_for().

#include <string>
#include <unordered_map>

#include "psioa/memo.hpp"

namespace cdse {

class ActionBijection {
 public:
  /// Maps `from` -> `to`. Throws if it would break injectivity (duplicate
  /// source or duplicate target).
  void add(ActionId from, ActionId to);

  /// Builds the bijection a -> act(name(a) + suffix) over `domain` --
  /// the paper's "fresh action names" device.
  static ActionBijection with_suffix(const ActionSet& domain,
                                     const std::string& suffix);

  ActionId apply(ActionId a) const;
  ActionSet apply(const ActionSet& s) const;
  Signature apply(const Signature& sig) const;

  /// Inverse direction (identity outside the explicit range).
  ActionId invert(ActionId a) const;

  ActionBijection inverse() const;

  bool maps(ActionId a) const { return fwd_.count(a) != 0; }
  const std::unordered_map<ActionId, ActionId>& forward_map() const {
    return fwd_;
  }

  /// True when the renaming restricted to `sig` is injective, i.e. no
  /// identity-passed action of sig collides with a mapped target.
  bool valid_for(const Signature& sig) const;

 private:
  std::unordered_map<ActionId, ActionId> fwd_;
  std::unordered_map<ActionId, ActionId> rev_;
};

/// r(A) of Def 2.8: same states, renamed signatures and transitions.
/// Memoized: the renamed signature (with its injectivity check) and the
/// renamed transitions are derived once per reachable (state, action).
class RenamedPsioa : public MemoPsioa {
 public:
  RenamedPsioa(PsioaPtr inner, ActionBijection r);

  State start_state() override { return inner_->start_state(); }
  BitString encode_state(State q) override { return inner_->encode_state(q); }
  std::string state_label(State q) override {
    return inner_->state_label(q);
  }
  void set_memoization(bool on) override {
    MemoPsioa::set_memoization(on);
    inner_->set_memoization(on);
  }
  InternStats intern_stats() const override { return inner_->intern_stats(); }
  void reserve_interning(std::size_t expected_states) override {
    inner_->reserve_interning(expected_states);
  }

  Psioa& inner() { return *inner_; }
  const ActionBijection& renaming() const { return r_; }

 protected:
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override;

 private:
  PsioaPtr inner_;
  ActionBijection r_;
};

inline PsioaPtr rename_actions(PsioaPtr a, ActionBijection r) {
  return std::make_shared<RenamedPsioa>(std::move(a), std::move(r));
}

}  // namespace cdse
