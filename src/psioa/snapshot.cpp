#include "psioa/snapshot.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

namespace cdse {

CompiledSnapshot::CompiledSnapshot(
    State start, std::string source,
    std::unordered_map<State, FrozenState> states)
    : start_(start), source_(std::move(source)), states_(std::move(states)) {
  for (const auto& [q, fs] : states_) {
    (void)q;
    row_count_ += fs.rows.size();
  }
}

const Signature* CompiledSnapshot::find_signature(State q) const {
  auto it = states_.find(q);
  if (it == states_.end() || !it->second.sig.has_value()) return nullptr;
  return &*it->second.sig;
}

const CompiledRow* CompiledSnapshot::find_row(State q, ActionId a) const {
  auto it = states_.find(q);
  if (it == states_.end()) return nullptr;
  auto jt = it->second.rows.find(a);
  if (jt == it->second.rows.end()) return nullptr;
  return &jt->second;
}

std::shared_ptr<const CompiledSnapshot> MemoPsioa::freeze() {
  std::unordered_map<State, CompiledSnapshot::FrozenState> frozen;
  frozen.reserve(memo_.size());
  for (const auto& [q, m] : memo_) {
    CompiledSnapshot::FrozenState fs;
    fs.sig = m.sig;
    fs.rows = m.rows;
    frozen.emplace(q, std::move(fs));
  }
  auto snapshot = std::make_shared<const CompiledSnapshot>(
      start_state(), name(), std::move(frozen));
  // Session GC consults this: a live snapshot pins the handle space.
  last_snapshot_ = snapshot;
  return snapshot;
}

SnapshotStats& SnapshotStats::operator+=(const SnapshotStats& o) {
  sig_hits += o.sig_hits;
  sig_misses += o.sig_misses;
  sig_overflows += o.sig_overflows;
  row_hits += o.row_hits;
  row_misses += o.row_misses;
  row_overflows += o.row_overflows;
  return *this;
}

namespace {

// Lexicographic order on encodings (length first): any total order that
// is a pure function of the encoding works, since all the draw mapping
// needs is one order every instance agrees on.
bool encoding_less(const BitString& a, const BitString& b) {
  if (a.length() != b.length()) return a.length() < b.length();
  for (std::size_t i = 0; i < a.length(); ++i) {
    if (a.bit(i) != b.bit(i)) return b.bit(i);
  }
  return false;
}

}  // namespace

CompiledRow compile_row_by_encoding(StateDist d, Psioa& encoder) {
  const auto& entries = d.entries();
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<BitString> enc;
  enc.reserve(entries.size());
  for (const auto& [q, w] : entries) {
    (void)w;
    enc.push_back(encoder.encode_state(q));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t i, std::size_t j) {
                     return encoding_less(enc[i], enc[j]);
                   });
  CompiledRow row;
  row.targets.reserve(entries.size());
  row.cdf.reserve(entries.size());
  double acc = 0.0;
  for (std::size_t i : order) {
    acc += entries[i].second.to_double();
    row.targets.push_back(entries[i].first);
    row.cdf.push_back(acc);
  }
  row.dist = std::move(d);
  return row;
}

SnapshotPsioa::SnapshotPsioa(std::shared_ptr<const CompiledSnapshot> snapshot,
                             std::shared_ptr<SnapshotResidue> residue)
    : MemoPsioa("snapshot(" + snapshot->source() + ")"),
      snap_(std::move(snapshot)),
      residue_(std::move(residue)) {}

const Signature& SnapshotPsioa::signature_ref(State q) {
  if (const Signature* s = snap_->find_signature(q)) {
    ++sstats_.sig_hits;
    return *s;
  }
  ++sstats_.sig_misses;
  auto it = over_sigs_.find(q);
  if (it != over_sigs_.end()) return it->second;
  ++sstats_.sig_overflows;
  return over_sigs_.emplace(q, compute_signature(q)).first->second;
}

const CompiledRow& SnapshotPsioa::compiled_row(State q, ActionId a) {
  if (const CompiledRow* r = snap_->find_row(q, a)) {
    ++sstats_.row_hits;
    return *r;
  }
  ++sstats_.row_misses;
  const RowKey key{q, a};
  auto it = over_rows_.find(key);
  if (it != over_rows_.end()) return it->second;
  ++sstats_.row_overflows;
  std::lock_guard<std::mutex> lock(residue_->mu);
  CompiledRow row =
      compile_row_by_encoding(residue_->warm->transition(q, a),
                              *residue_->warm);
  return over_rows_.emplace(key, std::move(row)).first->second;
}

BitString SnapshotPsioa::encode_state(State q) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->encode_state(q);
}

std::string SnapshotPsioa::state_label(State q) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->state_label(q);
}

InternStats SnapshotPsioa::intern_stats() const {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->intern_stats();
}

Signature SnapshotPsioa::compute_signature(State q) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->signature(q);
}

StateDist SnapshotPsioa::compute_transition(State q, ActionId a) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->transition(q, a);
}

}  // namespace cdse
