#include "psioa/snapshot.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cdse {

CompiledSnapshot::CompiledSnapshot(
    State start, std::string source,
    std::unordered_map<State, FrozenState> states)
    : start_(start), source_(std::move(source)), states_(std::move(states)) {
  for (const auto& [q, fs] : states_) {
    (void)q;
    row_count_ += fs.rows.size();
  }
}

const Signature* CompiledSnapshot::find_signature(State q) const {
  auto it = states_.find(q);
  if (it == states_.end() || !it->second.sig.has_value()) return nullptr;
  return &*it->second.sig;
}

const CompiledRow* CompiledSnapshot::find_row(State q, ActionId a) const {
  auto it = states_.find(q);
  if (it == states_.end()) return nullptr;
  auto jt = it->second.rows.find(a);
  if (jt == it->second.rows.end()) return nullptr;
  return &jt->second;
}

QuotientSnapshot CompiledSnapshot::quotient(
    const SnapshotPartition& partition) const {
  QuotientSnapshot out;
  out.original_states = states_.size();
  out.blocks = partition.blocks;

  // Representative per block: the smallest member handle. Bisimulation
  // guarantees every complete member yields the same merged row, so the
  // choice only pins which (identical) row set gets copied; taking the
  // minimum keeps the construction deterministic regardless of the
  // states_ hash order.
  std::vector<State> rep(partition.blocks, State{0});
  std::vector<char> has_rep(partition.blocks, 0);
  for (const auto& [q, fs] : states_) {
    (void)fs;
    auto it = partition.block_of.find(q);
    if (it == partition.block_of.end()) {
      throw std::invalid_argument(
          "CompiledSnapshot::quotient: partition misses state " +
          std::to_string(q));
    }
    if (it->second >= partition.blocks) {
      throw std::invalid_argument(
          "CompiledSnapshot::quotient: block id out of range");
    }
    if (!has_rep[it->second] || q < rep[it->second]) {
      rep[it->second] = q;
      has_rep[it->second] = 1;
    }
    out.block_of.emplace(q, static_cast<State>(it->second));
  }
  for (std::size_t b = 0; b < partition.blocks; ++b) {
    if (!has_rep[b]) {
      throw std::invalid_argument("CompiledSnapshot::quotient: empty block " +
                                  std::to_string(b));
    }
  }

  std::unordered_map<State, FrozenState> blocks;
  blocks.reserve(partition.blocks);
  for (std::size_t b = 0; b < partition.blocks; ++b) {
    const FrozenState& src = states_.at(rep[b]);
    FrozenState fs;
    fs.sig = src.sig;
    for (const auto& [a, row] : src.rows) {
      // Remap targets block-wise and merge their exact weights. The
      // accumulation goes through StateDist::add -- the canonical
      // sorted-merge of measure/disc.hpp -- so block handles come out
      // sorted and the recompiled CDF is deterministic.
      StateDist merged;
      bool covered = true;
      for (const auto& [q2, w] : row.dist.entries()) {
        auto it = out.block_of.find(q2);
        if (it == out.block_of.end()) {
          covered = false;
          break;
        }
        merged.add(it->second, w);
      }
      if (!covered) {
        // Only frontier states can reach an un-interned target; their
        // partial rows are dropped rather than merged wrong.
        ++out.dropped_rows;
        continue;
      }
      fs.rows.emplace(a, CompiledRow::compile(std::move(merged)));
    }
    blocks.emplace(static_cast<State>(b), std::move(fs));
  }

  auto start_it = out.block_of.find(start_);
  if (start_it == out.block_of.end()) {
    throw std::invalid_argument(
        "CompiledSnapshot::quotient: start state not in the snapshot");
  }
  out.reduced = std::make_shared<const CompiledSnapshot>(
      start_it->second, "quotient(" + source_ + ")", std::move(blocks));
  return out;
}

std::shared_ptr<const CompiledSnapshot> MemoPsioa::freeze() {
  std::unordered_map<State, CompiledSnapshot::FrozenState> frozen;
  frozen.reserve(memo_.size());
  for (const auto& [q, m] : memo_) {
    CompiledSnapshot::FrozenState fs;
    fs.sig = m.sig;
    fs.rows = m.rows;
    frozen.emplace(q, std::move(fs));
  }
  auto snapshot = std::make_shared<const CompiledSnapshot>(
      start_state(), name(), std::move(frozen));
  // Session GC consults this: a live snapshot pins the handle space.
  last_snapshot_ = snapshot;
  return snapshot;
}

SnapshotStats& SnapshotStats::operator+=(const SnapshotStats& o) {
  sig_hits += o.sig_hits;
  sig_misses += o.sig_misses;
  sig_overflows += o.sig_overflows;
  row_hits += o.row_hits;
  row_misses += o.row_misses;
  row_overflows += o.row_overflows;
  return *this;
}

namespace {

// Lexicographic order on encodings (length first): any total order that
// is a pure function of the encoding works, since all the draw mapping
// needs is one order every instance agrees on.
bool encoding_less(const BitString& a, const BitString& b) {
  if (a.length() != b.length()) return a.length() < b.length();
  for (std::size_t i = 0; i < a.length(); ++i) {
    if (a.bit(i) != b.bit(i)) return b.bit(i);
  }
  return false;
}

}  // namespace

CompiledRow compile_row_by_encoding(StateDist d, Psioa& encoder) {
  const auto& entries = d.entries();
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<BitString> enc;
  enc.reserve(entries.size());
  for (const auto& [q, w] : entries) {
    (void)w;
    enc.push_back(encoder.encode_state(q));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t i, std::size_t j) {
                     return encoding_less(enc[i], enc[j]);
                   });
  CompiledRow row;
  row.targets.reserve(entries.size());
  row.cdf.reserve(entries.size());
  std::vector<double> weights;
  weights.reserve(entries.size());
  double acc = 0.0;
  for (std::size_t i : order) {
    const double w = entries[i].second.to_double();
    acc += w;
    row.targets.push_back(entries[i].first);
    row.cdf.push_back(acc);
    weights.push_back(w);
  }
  row.alias = AliasTable::build(weights);
  row.dist = std::move(d);
  return row;
}

SnapshotPsioa::SnapshotPsioa(std::shared_ptr<const CompiledSnapshot> snapshot,
                             std::shared_ptr<SnapshotResidue> residue)
    : MemoPsioa("snapshot(" + snapshot->source() + ")"),
      snap_(std::move(snapshot)),
      residue_(std::move(residue)) {}

const Signature& SnapshotPsioa::signature_ref(State q) {
  if (const Signature* s = snap_->find_signature(q)) {
    ++sstats_.sig_hits;
    return *s;
  }
  ++sstats_.sig_misses;
  auto it = over_sigs_.find(q);
  if (it != over_sigs_.end()) return it->second;
  ++sstats_.sig_overflows;
  return over_sigs_.emplace(q, compute_signature(q)).first->second;
}

const CompiledRow& SnapshotPsioa::compiled_row(State q, ActionId a) {
  if (const CompiledRow* r = snap_->find_row(q, a)) {
    ++sstats_.row_hits;
    return *r;
  }
  ++sstats_.row_misses;
  const RowKey key{q, a};
  auto it = over_rows_.find(key);
  if (it != over_rows_.end()) return it->second;
  ++sstats_.row_overflows;
  std::lock_guard<std::mutex> lock(residue_->mu);
  CompiledRow row =
      compile_row_by_encoding(residue_->warm->transition(q, a),
                              *residue_->warm);
  return over_rows_.emplace(key, std::move(row)).first->second;
}

BitString SnapshotPsioa::encode_state(State q) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->encode_state(q);
}

std::string SnapshotPsioa::state_label(State q) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->state_label(q);
}

InternStats SnapshotPsioa::intern_stats() const {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->intern_stats();
}

Signature SnapshotPsioa::compute_signature(State q) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->signature(q);
}

StateDist SnapshotPsioa::compute_transition(State q, ActionId a) {
  std::lock_guard<std::mutex> lock(residue_->mu);
  return residue_->warm->transition(q, a);
}

// -- quotient views ---------------------------------------------------------

QuotientPsioa::QuotientPsioa(std::shared_ptr<const CompiledSnapshot> reduced)
    : MemoPsioa(reduced->source()), snap_(std::move(reduced)) {}

const Signature& QuotientPsioa::signature_ref(State q) {
  if (const Signature* s = snap_->find_signature(q)) return *s;
  throw std::logic_error("QuotientPsioa: no frozen signature for " +
                         state_label(q) +
                         "; the enumeration left the minimized horizon");
}

const CompiledRow& QuotientPsioa::compiled_row(State q, ActionId a) {
  if (const CompiledRow* r = snap_->find_row(q, a)) return *r;
  throw std::logic_error("QuotientPsioa: no frozen row for (" +
                         state_label(q) + ", " +
                         ActionTable::instance().name(a) +
                         "); the enumeration left the minimized horizon");
}

Signature QuotientPsioa::compute_signature(State q) {
  throw std::logic_error("QuotientPsioa: cannot compute signature of " +
                         state_label(q) + "; quotients are frozen-only");
}

StateDist QuotientPsioa::compute_transition(State q, ActionId a) {
  (void)a;
  throw std::logic_error("QuotientPsioa: cannot compute transition of " +
                         state_label(q) + "; quotients are frozen-only");
}

}  // namespace cdse
