#include "psioa/signature.hpp"

namespace cdse {

std::string Signature::to_string() const {
  return "in=" + cdse::to_string(in) + " out=" + cdse::to_string(out) +
         " int=" + cdse::to_string(internal);
}

bool compatible(const Signature& a, const Signature& b) {
  // 1. (in U out U int) n int' == {} -- in both directions.
  if (!set::disjoint(a.all(), b.internal)) return false;
  if (!set::disjoint(b.all(), a.internal)) return false;
  // 2. out n out' == {}.
  if (!set::disjoint(a.out, b.out)) return false;
  return true;
}

Signature compose(const Signature& a, const Signature& b) {
  Signature c;
  c.out = set::unite(a.out, b.out);
  c.in = set::subtract(set::unite(a.in, b.in), c.out);
  c.internal = set::unite(a.internal, b.internal);
  return c;
}

Signature hide(const Signature& sig, const ActionSet& s) {
  Signature h;
  h.in = sig.in;
  h.out = set::subtract(sig.out, s);
  h.internal = set::unite(sig.internal, set::intersect(sig.out, s));
  return h;
}

}  // namespace cdse
