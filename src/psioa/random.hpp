#pragma once
// Random PSIOA generation for property-based testing.
//
// The algebraic laws of the framework (composition associativity and
// commutativity up to bisimulation, hiding/renaming commutation,
// signature-composition laws on reachable states) should hold for *all*
// automata, not just the hand-built ones; this generator produces small
// valid PSIOA with dyadic transition probabilities so the exact engines
// can check the laws on randomized instances.
//
// Each generated automaton owns fresh output/internal action names
// (derived from its tag); its inputs are drawn from a caller-provided
// candidate set, which is how compatible ensembles are built (feed one
// automaton's outputs as another's input candidates).

#include "psioa/explicit_psioa.hpp"
#include "util/rng.hpp"

namespace cdse {

struct RandomPsioaConfig {
  std::size_t n_states = 4;
  std::size_t n_outputs = 2;    ///< fresh output actions to own
  std::size_t n_internals = 1;  ///< fresh internal actions to own
  /// Candidate input actions (e.g. another automaton's outputs).
  ActionSet input_candidates;
  /// Probability (out of 8) that a given owned/candidate action is
  /// enabled at a given state.
  std::uint32_t enable_odds = 5;
};

/// Generates a valid PSIOA (validated before return).
std::shared_ptr<ExplicitPsioa> make_random_psioa(
    const std::string& name, const std::string& tag,
    const RandomPsioaConfig& config, Xoshiro256& rng);

}  // namespace cdse
