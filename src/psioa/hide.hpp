#pragma once
// Hiding operator on PSIOA (Def 2.7).
//
// hide(A, h) internalizes a state-dependent subset of output actions:
// only the signature changes, states and transition dynamics are shared
// with the inner automaton. `h` may be a constant set or a per-state
// function; results are intersected with out(q) defensively (Def 2.7
// requires h(q) subset of outputs).

#include <functional>

#include "psioa/psioa.hpp"

namespace cdse {

using HidingFn = std::function<ActionSet(State)>;

class HiddenPsioa : public Psioa {
 public:
  HiddenPsioa(PsioaPtr inner, HidingFn h);
  HiddenPsioa(PsioaPtr inner, ActionSet constant);

  State start_state() override { return inner_->start_state(); }
  Signature signature(State q) override;
  StateDist transition(State q, ActionId a) override {
    return inner_->transition(q, a);
  }
  BitString encode_state(State q) override { return inner_->encode_state(q); }
  std::string state_label(State q) override {
    return inner_->state_label(q);
  }

  Psioa& inner() { return *inner_; }
  PsioaPtr inner_ptr() const { return inner_; }

  /// The set actually hidden at q: h(q) intersected with out(q).
  ActionSet hidden_at(State q);

 private:
  PsioaPtr inner_;
  HidingFn h_;
};

inline PsioaPtr hide_actions(PsioaPtr a, ActionSet s) {
  return std::make_shared<HiddenPsioa>(std::move(a), std::move(s));
}

inline PsioaPtr hide_actions(PsioaPtr a, HidingFn h) {
  return std::make_shared<HiddenPsioa>(std::move(a), std::move(h));
}

}  // namespace cdse
