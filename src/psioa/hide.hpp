#pragma once
// Hiding operator on PSIOA (Def 2.7).
//
// hide(A, h) internalizes a state-dependent subset of output actions:
// only the signature changes, states and transition dynamics are shared
// with the inner automaton. `h` may be a constant set or a per-state
// function; results are intersected with out(q) defensively (Def 2.7
// requires h(q) subset of outputs). Sits on MemoPsioa so the hidden
// signature is derived once per reachable state and the sampler gets
// compiled rows without re-entering the inner automaton.

#include <functional>

#include "psioa/memo.hpp"

namespace cdse {

using HidingFn = std::function<ActionSet(State)>;

class HiddenPsioa : public MemoPsioa {
 public:
  HiddenPsioa(PsioaPtr inner, HidingFn h);
  HiddenPsioa(PsioaPtr inner, ActionSet constant);

  State start_state() override { return inner_->start_state(); }
  BitString encode_state(State q) override { return inner_->encode_state(q); }
  std::string state_label(State q) override {
    return inner_->state_label(q);
  }
  void set_memoization(bool on) override {
    MemoPsioa::set_memoization(on);
    inner_->set_memoization(on);
  }
  InternStats intern_stats() const override { return inner_->intern_stats(); }
  void reserve_interning(std::size_t expected_states) override {
    inner_->reserve_interning(expected_states);
  }

  Psioa& inner() { return *inner_; }
  PsioaPtr inner_ptr() const { return inner_; }

  /// The set actually hidden at q: h(q) intersected with out(q).
  ActionSet hidden_at(State q);

 protected:
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override {
    return inner_->transition(q, a);
  }

 private:
  PsioaPtr inner_;
  HidingFn h_;
};

inline PsioaPtr hide_actions(PsioaPtr a, ActionSet s) {
  return std::make_shared<HiddenPsioa>(std::move(a), std::move(s));
}

inline PsioaPtr hide_actions(PsioaPtr a, HidingFn h) {
  return std::make_shared<HiddenPsioa>(std::move(a), std::move(h));
}

}  // namespace cdse
