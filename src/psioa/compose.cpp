#include "psioa/compose.hpp"

#include <queue>
#include <unordered_set>

namespace cdse {

namespace {
std::string composed_name(const std::vector<PsioaPtr>& components) {
  std::string n;
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i) n += "||";
    n += components[i]->name();
  }
  return n;
}
}  // namespace

ComposedPsioa::ComposedPsioa(std::vector<PsioaPtr> components)
    : MemoPsioa(composed_name(components)),
      components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("ComposedPsioa: empty component list");
  }
}

void ComposedPsioa::set_memoization(bool on) {
  MemoPsioa::set_memoization(on);
  for (auto& c : components_) c->set_memoization(on);
}

State ComposedPsioa::intern_tuple(const std::vector<State>& tuple) {
  return interned_.intern_tuple(tuple.data(), tuple.size());
}

InternStats ComposedPsioa::intern_stats() const {
  InternStats s = interned_.stats();
  for (const auto& c : components_) s += c->intern_stats();
  return s;
}

void ComposedPsioa::reserve_interning(std::size_t expected_states) {
  interned_.reserve(expected_states);
  for (auto& c : components_) c->reserve_interning(expected_states);
}

State ComposedPsioa::start_state() {
  std::vector<State> starts;
  starts.reserve(components_.size());
  for (auto& c : components_) starts.push_back(c->start_state());
  return intern_tuple(starts);
}

Signature ComposedPsioa::compute_signature(State q) {
  const TupleRef tup = tuple(q);
  Signature acc = components_[0]->signature(tup[0]);
  for (std::size_t i = 1; i < components_.size(); ++i) {
    const Signature si = components_[i]->signature(tup[i]);
    if (!compatible(acc, si)) {
      throw IncompatibilityError(
          "composition " + name() + " reached incompatible state " +
          state_label(q) + ": component " + components_[i]->name() +
          " clashes (" + si.to_string() + " vs " + acc.to_string() + ")");
    }
    acc = compose(acc, si);
  }
  return acc;
}

StateDist ComposedPsioa::compute_transition(State q, ActionId a) {
  // The memoized signature also enforces compatibility; after the first
  // transition at q this is a cache hit, not a re-derivation.
  const Signature& sig = signature_ref(q);
  if (!sig.contains(a)) {
    throw std::logic_error("ComposedPsioa: action '" +
                           ActionTable::instance().name(a) +
                           "' not enabled at " + state_label(q));
  }
  // Arena keys have stable addresses, so the view stays valid across the
  // interning below (the legacy map stored tuples in a reallocating
  // vector and had to copy here).
  const TupleRef tup = tuple(q);
  // Def 2.5: eta = (x)_j eta_j, with eta_j = dirac(q_j) for components
  // that do not have `a` in their current signature.
  ExactDisc<std::vector<State>> acc =
      ExactDisc<std::vector<State>>::dirac(std::vector<State>{});
  for (std::size_t i = 0; i < components_.size(); ++i) {
    StateDist eta_i;
    if (components_[i]->signature(tup[i]).contains(a)) {
      eta_i = components_[i]->transition(tup[i], a);
    } else {
      eta_i = StateDist::dirac(tup[i]);
    }
    acc = ExactDisc<std::vector<State>>::product(
        acc, eta_i, [](const std::vector<State>& pre, State s) {
          std::vector<State> next = pre;
          next.push_back(s);
          return next;
        });
  }
  StateDist out;
  for (const auto& [target_tuple, w] : acc.entries()) {
    out.add(intern_tuple(target_tuple), w);
  }
  return out;
}

BitString ComposedPsioa::encode_state(State q) {
  const TupleRef tup = tuple(q);
  std::vector<BitString> parts;
  parts.reserve(tup.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    parts.push_back(components_[i]->encode_state(tup[i]));
  }
  return BitString::pack(parts);
}

std::string ComposedPsioa::state_label(State q) {
  const TupleRef tup = tuple(q);
  std::string s = "(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) s += ", ";
    s += components_[i]->state_label(tup[i]);
  }
  s += ")";
  return s;
}

State ComposedPsioa::project(State q, std::size_t i) const {
  const TupleRef tup = tuple(q);
  if (i >= tup.size()) {
    throw std::out_of_range("ComposedPsioa: component index out of range");
  }
  return tup[i];
}

TupleRef ComposedPsioa::tuple(State q) const {
  if (q >= interned_.size()) {
    throw std::out_of_range("ComposedPsioa: unknown composite state handle");
  }
  return interned_.tuple(q);
}

std::shared_ptr<ComposedPsioa> compose(std::vector<PsioaPtr> components) {
  return std::make_shared<ComposedPsioa>(std::move(components));
}

bool partially_compatible(std::vector<PsioaPtr> components,
                          std::size_t depth) {
  auto comp = compose(std::move(components));
  std::unordered_set<State> seen;
  std::queue<std::pair<State, std::size_t>> frontier;
  try {
    const State q0 = comp->start_state();
    frontier.emplace(q0, 0);
    seen.insert(q0);
    while (!frontier.empty()) {
      auto [q, d] = frontier.front();
      frontier.pop();
      const Signature sig = comp->signature(q);  // throws if incompatible
      if (d >= depth) continue;
      for (ActionId a : sig.all()) {
        for (State q2 : comp->transition(q, a).support()) {
          if (seen.insert(q2).second) frontier.emplace(q2, d + 1);
        }
      }
    }
  } catch (const IncompatibilityError&) {
    return false;
  }
  return true;
}

}  // namespace cdse
