#include "psioa/psioa.hpp"

namespace cdse {

bool Psioa::is_step(State q, ActionId a, State q2) {
  if (!signature(q).contains(a)) return false;
  return !transition(q, a).mass(q2).is_zero();
}

}  // namespace cdse
