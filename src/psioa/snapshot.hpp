#pragma once
// Frozen compiled-transition snapshots shared by parallel samplers.
//
// The memo layer (psioa/memo.hpp) made single-instance sampling cheap,
// but the parallel sampler still cloned the automaton stack per worker
// and re-warmed a private memo in every chunk: O(workers x reachable
// states) memory and a cold start per worker. This layer splits a warmed
// instance into an immutable majority and a mutable residue:
//
//   CompiledSnapshot -- a read-only copy of the warm instance's resolved
//       Signatures and CompiledRow CDFs, held behind shared_ptr<const>
//       and shared by every worker without synchronization. One copy,
//       regardless of worker count.
//   SnapshotResidue  -- the warm instance itself plus a mutex. The warm
//       instance is the *handle authority*: every State handle in the
//       snapshot was interned by it, and any state discovered after the
//       freeze must be interned by it too, or handles would stop naming
//       the same states across workers. Residue access is serialized,
//       which preserves the one-thread-per-instance rule for the only
//       mutable piece left.
//   SnapshotPsioa    -- a thin per-worker view: snapshot lookups are
//       lock-free; misses fall back to a worker-local overflow memo and,
//       on a cold miss, to one locked compute on the residue. Workers
//       own a view each, so the one-thread-per-instance rule holds for
//       the view's overflow tables exactly as it does for MemoPsioa.
//
// Determinism. Frozen rows are byte-copies of the warm instance's rows,
// so a view's draws are draw-for-draw identical to a clone warmed by the
// same deterministic warm-up (tests/snapshot_test.cpp proves this
// differentially against the memo-off direct engine as well). Overflow
// rows are compiled with their targets ordered by encode_state() rather
// than by State handle: post-freeze handle values depend on which worker
// faults a cold region first, but state encodings are structural, so the
// overflow draw mapping -- and with it every sampled result -- stays
// reproducible at fixed seeds even when workers race on the residue.

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "psioa/memo.hpp"

namespace cdse {

/// A partition of a snapshot's states into blocks. Block ids are dense
/// in [0, blocks) and double as the State handles of the quotient
/// snapshot, so the remap IS the handle translation. Producers (the
/// bisimulation partitioner of impl/bisim.hpp, tests building identity
/// partitions by hand) assign ids in sorted-original-handle
/// first-encounter order, which keeps quotient row orders -- and with
/// them the compiled CDFs -- deterministic.
struct SnapshotPartition {
  std::unordered_map<State, std::size_t> block_of;
  std::size_t blocks = 0;
};

class QuotientSnapshot;

/// Immutable post-warmup tables of one MemoPsioa instance. Constructed
/// by MemoPsioa::freeze(); never mutated afterwards, so concurrent reads
/// need no synchronization.
class CompiledSnapshot {
 public:
  struct FrozenState {
    std::optional<Signature> sig;
    std::unordered_map<ActionId, CompiledRow> rows;
  };

  CompiledSnapshot(State start, std::string source,
                   std::unordered_map<State, FrozenState> states);

  /// Start state of the source instance (valid in its handle space).
  State start_state() const { return start_; }

  /// Name of the automaton the snapshot was frozen from.
  const std::string& source() const { return source_; }

  /// Frozen signature for q, or nullptr when q was not warmed.
  const Signature* find_signature(State q) const;

  /// Frozen compiled row for (q, a), or nullptr when not warmed.
  const CompiledRow* find_row(State q, ActionId a) const;

  /// The whole frozen table, for offline passes that walk every state
  /// (the bisimulation partitioner, the quotient builder).
  const std::unordered_map<State, FrozenState>& frozen_states() const {
    return states_;
  }

  /// Collapses this snapshot along `partition`: the quotient's states
  /// are the blocks, its rows are the representative member's rows with
  /// targets remapped block-wise and weights merged exactly (Rational
  /// sums through the canonical sorted-merge of measure/disc.hpp). The
  /// result is an ordinary immutable snapshot -- shareable across
  /// workers like any frozen snapshot, just smaller. Throws
  /// std::invalid_argument when the partition does not cover every
  /// state, contains an out-of-range id, or has an empty block.
  QuotientSnapshot quotient(const SnapshotPartition& partition) const;

  std::size_t state_count() const { return states_.size(); }
  std::size_t row_count() const { return row_count_; }

 private:
  State start_;
  std::string source_;
  std::unordered_map<State, FrozenState> states_;
  std::size_t row_count_ = 0;
};

/// A minimized snapshot plus the remap that produced it. `reduced` owns
/// copies of the merged rows, so it stays valid after the source
/// snapshot (and the warm instance behind it) are gone.
class QuotientSnapshot {
 public:
  std::shared_ptr<const CompiledSnapshot> reduced;
  /// Original handle -> block handle (the block id, as a State).
  std::unordered_map<State, State> block_of;
  std::size_t original_states = 0;
  std::size_t blocks = 0;
  /// Rows of frontier (incompletely warmed) states dropped because a
  /// target was never interned into the snapshot; a covering warm-up
  /// (horizon >= enumeration depth, no state-cap hit) leaves this 0 for
  /// every block the enumeration can expand.
  std::size_t dropped_rows = 0;
};

/// The mutable residue behind a snapshot: the warm instance (handle
/// authority for every state, frozen or not) serialized by a mutex.
/// Shared by all views of one snapshot.
struct SnapshotResidue {
  explicit SnapshotResidue(std::shared_ptr<MemoPsioa> warm_instance)
      : warm(std::move(warm_instance)) {}

  std::mutex mu;
  std::shared_ptr<MemoPsioa> warm;
};

/// Per-view counters, exposed for the E10 bench and the differential
/// suite. hits are served lock-free from the frozen tables; misses fell
/// past them; overflows are the subset of misses that needed a locked
/// compute on the residue (the rest were worker-local overflow hits).
struct SnapshotStats {
  std::size_t sig_hits = 0;
  std::size_t sig_misses = 0;
  std::size_t sig_overflows = 0;
  std::size_t row_hits = 0;
  std::size_t row_misses = 0;
  std::size_t row_overflows = 0;

  SnapshotStats& operator+=(const SnapshotStats& o);

  friend bool operator==(const SnapshotStats& a, const SnapshotStats& b) {
    return a.sig_hits == b.sig_hits && a.sig_misses == b.sig_misses &&
           a.sig_overflows == b.sig_overflows && a.row_hits == b.row_hits &&
           a.row_misses == b.row_misses && a.row_overflows == b.row_overflows;
  }
};

/// Compiles a row with targets ordered by their bit-string encoding
/// instead of entry (handle) order. Used on the overflow path, where
/// handle values are assigned under a racing lock and therefore must not
/// influence the draw mapping. `encoder` supplies encode_state and must
/// be the residue's warm instance (caller holds the residue lock).
CompiledRow compile_row_by_encoding(StateDist d, Psioa& encoder);

/// Thin per-worker view over a shared snapshot. Exactly one thread may
/// drive a view (its overflow memo is unsynchronized, like any
/// MemoPsioa); any number of views may share one snapshot + residue.
class SnapshotPsioa final : public MemoPsioa {
 public:
  SnapshotPsioa(std::shared_ptr<const CompiledSnapshot> snapshot,
                std::shared_ptr<SnapshotResidue> residue);

  State start_state() override { return snap_->start_state(); }

  const Signature& signature_ref(State q) override;
  const CompiledRow& compiled_row(State q, ActionId a) override;

  BitString encode_state(State q) override;
  std::string state_label(State q) override;

  /// Views are always compiled; toggling memoization off would change
  /// which engine answers, not how often, so it is a deliberate no-op.
  void set_memoization(bool on) override { (void)on; }

  const CompiledSnapshot& snapshot() const { return *snap_; }
  const SnapshotStats& snapshot_stats() const { return sstats_; }

  /// Interning counters of the shared handle authority (the residue's
  /// warm instance), taken under the residue lock. Views intern nothing
  /// themselves, so this is the whole stack's arena footprint.
  InternStats intern_stats() const override;

 protected:
  // Cold-miss path: one serialized compute on the residue's warm
  // instance, which also interns any newly discovered states so handles
  // stay consistent across every view of this snapshot.
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override;

 private:
  struct RowKey {
    State q;
    ActionId a;
    friend bool operator==(const RowKey& x, const RowKey& y) {
      return x.q == y.q && x.a == y.a;
    }
  };
  struct RowKeyHash {
    std::size_t operator()(const RowKey& k) const {
      std::size_t h = std::hash<State>{}(k.q);
      h ^= std::hash<ActionId>{}(k.a) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      return h;
    }
  };

  std::shared_ptr<const CompiledSnapshot> snap_;
  std::shared_ptr<SnapshotResidue> residue_;
  std::unordered_map<State, Signature> over_sigs_;
  std::unordered_map<RowKey, CompiledRow, RowKeyHash> over_rows_;
  SnapshotStats sstats_;
};

/// Frozen-only view over a quotient snapshot: state handles are block
/// ids, rows are the exactly-merged block rows. Unlike SnapshotPsioa
/// there is no residue -- blocks exist only in the quotient's handle
/// space, so there is no warm instance that could compute a missed row.
/// A lookup outside the frozen tables therefore throws std::logic_error:
/// it means the enumeration left the minimized horizon, and silently
/// recomputing would break the exactness contract. Callers guarantee
/// coverage by quotienting a snapshot whose warm-up horizon is at least
/// the enumeration depth (reduce_for_enumeration enforces this).
///
/// Views carry no mutable state beyond the base counters, but workers
/// still get one instance each (one-thread-per-instance, as everywhere).
class QuotientPsioa final : public MemoPsioa {
 public:
  explicit QuotientPsioa(std::shared_ptr<const CompiledSnapshot> reduced);

  State start_state() override { return snap_->start_state(); }

  const Signature& signature_ref(State q) override;
  const CompiledRow& compiled_row(State q, ActionId a) override;

  /// Blocks are synthetic: the id is the whole structural content.
  BitString encode_state(State q) override { return BitString::from_uint(q); }
  std::string state_label(State q) override {
    return "block" + std::to_string(q);
  }

  /// Always compiled, like SnapshotPsioa.
  void set_memoization(bool on) override { (void)on; }

  const CompiledSnapshot& snapshot() const { return *snap_; }

 protected:
  // No fallback engine exists for a quotient; see the class comment.
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override;

 private:
  std::shared_ptr<const CompiledSnapshot> snap_;
};

}  // namespace cdse
