#include "psioa/hide.hpp"

namespace cdse {

HiddenPsioa::HiddenPsioa(PsioaPtr inner, HidingFn h)
    : MemoPsioa("hide(" + inner->name() + ")"),
      inner_(std::move(inner)),
      h_(std::move(h)) {}

HiddenPsioa::HiddenPsioa(PsioaPtr inner, ActionSet constant)
    : MemoPsioa("hide(" + inner->name() + ")"),
      inner_(std::move(inner)),
      h_([s = std::move(constant)](State) { return s; }) {}

Signature HiddenPsioa::compute_signature(State q) {
  return hide(inner_->signature(q), hidden_at(q));
}

ActionSet HiddenPsioa::hidden_at(State q) {
  return set::intersect(h_(q), inner_->signature(q).out);
}

}  // namespace cdse
