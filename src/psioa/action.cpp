#include "psioa/action.hpp"

#include <mutex>
#include <stdexcept>

namespace cdse {

ActionTable& ActionTable::instance() {
  static ActionTable table;
  return table;
}

ActionId ActionTable::intern(std::string_view name) {
  {
    // Fast path: already interned -- shared lock, heterogeneous probe,
    // zero allocation. This is every intern call after the first for a
    // given name, i.e. the steady state of sampling and composition.
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  // Double-check: another thread may have interned it between the locks.
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  ActionId id = static_cast<ActionId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

ActionId ActionTable::lookup(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidAction : it->second;
}

const std::string& ActionTable::name(ActionId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  if (id >= names_.size())
    throw std::out_of_range("ActionTable::name: unknown id");
  return names_[id];
}

std::size_t ActionTable::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return names_.size();
}

ActionId act(std::string_view name) {
  return ActionTable::instance().intern(name);
}

ActionSet acts(std::initializer_list<std::string_view> names) {
  ActionSet s;
  s.reserve(names.size());
  for (auto n : names) s.push_back(act(n));
  set::normalize(s);
  return s;
}

std::string to_string(const ActionSet& s) {
  std::string out = "{";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out += ", ";
    out += ActionTable::instance().name(s[i]);
  }
  out += "}";
  return out;
}

}  // namespace cdse
