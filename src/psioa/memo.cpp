#include "psioa/memo.hpp"

namespace cdse {

Signature MemoPsioa::signature(State q) { return signature_ref(q); }

const Signature& MemoPsioa::signature_ref(State q) {
  if (!memo_on_) {
    ++stats_.sig_computes;
    scratch_sig_ = compute_signature(q);
    return scratch_sig_;
  }
  StateMemo& m = memo_[q];
  if (!m.sig.has_value()) {
    ++stats_.sig_computes;
    // Compute before assigning so a throwing compute (e.g. an
    // incompatible composite state) caches nothing.
    m.sig = compute_signature(q);
  } else {
    ++stats_.sig_hits;
  }
  return *m.sig;
}

StateDist MemoPsioa::transition(State q, ActionId a) {
  if (!memo_on_) {
    ++stats_.row_computes;
    return compute_transition(q, a);
  }
  return compiled_row(q, a).dist;
}

const CompiledRow& MemoPsioa::compiled_row(State q, ActionId a) {
  if (!memo_on_) {
    ++stats_.row_computes;
    scratch_ = CompiledRow::compile(compute_transition(q, a));
    return scratch_;
  }
  StateMemo& m = memo_[q];
  auto it = m.rows.find(a);
  if (it != m.rows.end()) {
    ++stats_.row_hits;
    return it->second;
  }
  ++stats_.row_computes;
  CompiledRow row = CompiledRow::compile(compute_transition(q, a));
  return m.rows.emplace(a, std::move(row)).first->second;
}

void MemoPsioa::set_memoization(bool on) {
  memo_on_ = on;
  if (!on) clear_memo();
}

void MemoPsioa::clear_memo() { memo_.clear(); }

std::size_t MemoPsioa::invalidate_states(
    const std::function<bool(State)>& dead) {
  std::size_t dropped = 0;
  for (auto it = memo_.begin(); it != memo_.end();) {
    if (dead(it->first)) {
      dropped += it->second.rows.size();
      it = memo_.erase(it);
      continue;
    }
    auto& rows = it->second.rows;
    for (auto rit = rows.begin(); rit != rows.end();) {
      bool stale = false;
      for (State target : rit->second.targets) {
        if (dead(target)) {
          stale = true;
          break;
        }
      }
      if (stale) {
        rit = rows.erase(rit);
        ++dropped;
      } else {
        ++rit;
      }
    }
    ++it;
  }
  return dropped;
}

}  // namespace cdse
