#include "sched/schedulers.hpp"

#include <queue>

namespace cdse {

ActionSet schedulable_actions(Psioa& automaton, State q, bool local_only) {
  const Signature sig = automaton.signature(q);
  if (!local_only) return sig.all();
  return set::unite(sig.out, sig.internal);
}

ActionChoice UniformScheduler::choose(Psioa& automaton,
                                      const ExecFragment& alpha) {
  ActionChoice c;
  if (alpha.length() >= bound_) return c;
  const ActionSet enabled =
      schedulable_actions(automaton, alpha.lstate(), local_only_);
  if (enabled.empty()) return c;
  const Rational w(1, static_cast<std::int64_t>(enabled.size()));
  for (ActionId a : enabled) c.add(a, w);
  return c;
}

const ChoiceRow* UniformScheduler::choice_row(Psioa& automaton,
                                              const ExecFragment& alpha) {
  // The choice is a function of lstate alone once the depth bound is
  // cleared, so the compiled row memoizes per state.
  if (alpha.length() >= bound_) return &halt_row_;
  return cache_.get(automaton, alpha.lstate(),
                    [&] { return choose(automaton, alpha); });
}

ActionChoice PriorityScheduler::choose(Psioa& automaton,
                                       const ExecFragment& alpha) {
  ActionChoice c;
  if (alpha.length() >= bound_) return c;
  const ActionSet enabled =
      schedulable_actions(automaton, alpha.lstate(), local_only_);
  for (ActionId a : priority_) {
    if (set::contains(enabled, a)) {
      c.add(a, Rational(1));
      return c;
    }
  }
  return c;
}

const ChoiceRow* PriorityScheduler::choice_row(Psioa& automaton,
                                               const ExecFragment& alpha) {
  if (alpha.length() >= bound_) return &halt_row_;
  return cache_.get(automaton, alpha.lstate(),
                    [&] { return choose(automaton, alpha); });
}

ActionChoice SequenceScheduler::choose(Psioa& automaton,
                                       const ExecFragment& alpha) {
  ActionChoice c;
  const std::size_t i = alpha.length();
  if (i >= word_.size()) return c;
  const ActionSet enabled =
      schedulable_actions(automaton, alpha.lstate(), local_only_);
  if (set::contains(enabled, word_[i])) {
    c.add(word_[i], Rational(1));
  }
  return c;
}

ActionChoice TaskScheduler::choose(Psioa& automaton,
                                   const ExecFragment& alpha) {
  ActionChoice c;
  const std::size_t i = alpha.length();
  if (i >= tasks_.size()) return c;
  const ActionSet enabled = set::intersect(
      tasks_[i], schedulable_actions(automaton, alpha.lstate(), local_only_));
  if (enabled.size() == 1) c.add(enabled.front(), Rational(1));
  return c;
}

ActionChoice BoundedScheduler::choose(Psioa& automaton,
                                      const ExecFragment& alpha) {
  if (alpha.length() >= bound_) return ActionChoice{};
  return inner_->choose(automaton, alpha);
}

const ChoiceRow* BoundedScheduler::choice_row(Psioa& automaton,
                                              const ExecFragment& alpha) {
  // Below the bound the wrapper is transparent, so the inner scheduler's
  // (possibly memoized) compiled row is used directly.
  if (alpha.length() >= bound_) return &halt_row_;
  return inner_->choice_row(automaton, alpha);
}

ActionChoice ObliviousFnScheduler::choose(Psioa& automaton,
                                          const ExecFragment& alpha) {
  return fn_(alpha.actions(), automaton.enabled(alpha.lstate()));
}

std::size_t max_schedule_length(Psioa& automaton, Scheduler& sched,
                                std::size_t max_depth) {
  std::size_t longest = 0;
  // DFS over the support of the scheduled process.
  std::vector<ExecFragment> stack{
      ExecFragment::starting_at(automaton.start_state())};
  while (!stack.empty()) {
    ExecFragment alpha = std::move(stack.back());
    stack.pop_back();
    longest = std::max(longest, alpha.length());
    if (alpha.length() >= max_depth) continue;
    const ActionChoice choice = sched.choose(automaton, alpha);
    for (const auto& [a, w] : choice.entries()) {
      (void)w;
      for (State q2 : automaton.transition(alpha.lstate(), a).support()) {
        ExecFragment next = alpha;
        next.append(a, q2);
        stack.push_back(std::move(next));
      }
    }
  }
  return longest;
}

}  // namespace cdse
