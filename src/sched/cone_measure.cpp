#include "sched/cone_measure.hpp"

#include <stdexcept>

#include "sched/exact_engine.hpp"

namespace cdse {

namespace {

void enumerate(Psioa& automaton, Scheduler& sched, std::size_t max_depth,
               const ExecFragment& alpha, const Rational& prob,
               const std::function<void(const ExecFragment&,
                                        const Rational&)>& visit) {
  if (prob.is_zero()) return;
  if (alpha.length() >= max_depth) {
    visit(alpha, prob);
    return;
  }
  const ActionChoice choice = sched.choose(automaton, alpha);
  const Rational halt = scheduled_halt_mass(choice, sched);
  if (!halt.is_zero()) visit(alpha, prob * halt);
  const Signature sig = automaton.signature(alpha.lstate());
  for (const auto& [a, w] : choice.entries()) {
    if (!sig.contains(a)) {
      throw std::logic_error("cone measure: scheduler '" + sched.name() +
                             "' chose action '" +
                             ActionTable::instance().name(a) +
                             "' outside sig(lstate)");
    }
    const StateDist eta = automaton.transition(alpha.lstate(), a);
    for (const auto& [q2, tw] : eta.entries()) {
      ExecFragment next = alpha;
      next.append(a, q2);
      enumerate(automaton, sched, max_depth, next, prob * w * tw, visit);
    }
  }
}

}  // namespace

void for_each_halted_execution(
    Psioa& automaton, Scheduler& sched, std::size_t max_depth,
    const std::function<void(const ExecFragment&, const Rational&)>& visit,
    ConeStats* stats) {
  ExecFragment path = ExecFragment::starting_at(automaton.start_state());
  enumerate_cone(automaton, sched, max_depth, path, Rational(1), visit,
                 stats);
}

void for_each_halted_execution_recursive(
    Psioa& automaton, Scheduler& sched, std::size_t max_depth,
    const std::function<void(const ExecFragment&, const Rational&)>& visit) {
  enumerate(automaton, sched, max_depth,
            ExecFragment::starting_at(automaton.start_state()), Rational(1),
            visit);
}

ExactDisc<Perception> exact_fdist(Psioa& automaton, Scheduler& sched,
                                  const InsightFunction& f,
                                  std::size_t max_depth, ConeStats* stats) {
  ExactDisc<Perception> dist;
  for_each_halted_execution(
      automaton, sched, max_depth,
      [&](const ExecFragment& alpha, const Rational& p) {
        dist.add(f.apply(automaton, alpha), p);
      },
      stats);
  return dist;
}

ExactDisc<Perception> exact_fdist_recursive(Psioa& automaton, Scheduler& sched,
                                            const InsightFunction& f,
                                            std::size_t max_depth) {
  ExactDisc<Perception> dist;
  for_each_halted_execution_recursive(
      automaton, sched, max_depth,
      [&](const ExecFragment& alpha, const Rational& p) {
        dist.add(f.apply(automaton, alpha), p);
      });
  return dist;
}

Rational exact_action_probability(Psioa& automaton, Scheduler& sched,
                                  ActionId a, std::size_t max_depth) {
  Rational total;
  for_each_halted_execution(
      automaton, sched, max_depth,
      [&](const ExecFragment& alpha, const Rational& p) {
        for (ActionId fired : alpha.actions()) {
          if (fired == a) {
            total += p;
            return;
          }
        }
      });
  return total;
}

}  // namespace cdse
