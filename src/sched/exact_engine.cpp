#include "sched/exact_engine.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "impl/bisim.hpp"
#include "psioa/memo.hpp"
#include "sched/schedulers.hpp"

namespace cdse {

namespace {

[[noreturn]] void throw_outside_sig(const Scheduler& sched, ActionId a) {
  throw std::logic_error("cone measure: scheduler '" + sched.name() +
                         "' chose action '" + ActionTable::instance().name(a) +
                         "' outside sig(lstate)");
}

/// Memoized instances serve exact rows by reference (no StateDist copy
/// per edge); everything else falls back to the virtual transition().
MemoPsioa* memo_engine_of(Psioa& automaton) {
  auto* memo = dynamic_cast<MemoPsioa*>(&automaton);
  if (memo != nullptr && !memo->memoization_enabled()) memo = nullptr;
  return memo;
}

}  // namespace

std::optional<ReducedSystem> reduce_for_enumeration(
    Psioa& automaton, std::size_t max_depth, const ReductionPolicy& policy) {
  if (!policy.enabled() || max_depth == 0) return std::nullopt;
  // Warm through the automaton's own memo when it has one; otherwise a
  // non-owning MemoView (the caller keeps ownership of `automaton` and
  // outlives this call, which is all the view needs).
  auto* memo = dynamic_cast<MemoPsioa*>(&automaton);
  std::shared_ptr<MemoView> wrapper;
  MemoPsioa* warm = memo;
  if (memo == nullptr || !memo->memoization_enabled()) {
    wrapper = memoize(PsioaPtr(PsioaPtr{}, &automaton));
    warm = wrapper.get();
  }
  // Covering walk: horizon = max_depth freezes full rows at every state
  // the cone can expand (depth < max_depth) and signatures at the
  // leaves, so the quotient's frontier singletons are never entered.
  WarmupPlan plan;
  plan.episodes = 0;
  plan.horizon = max_depth;
  plan.max_states = policy.max_states;
  UniformScheduler uniform(max_depth);
  const std::size_t visited = warm_automaton(*warm, uniform, plan, max_depth);
  if (visited >= plan.max_states) return std::nullopt;  // truncated: fall back

  auto snap = warm->freeze();
  PartitionStats pstats;
  const SnapshotPartition partition = bisimulation_partition(*snap, &pstats);
  QuotientSnapshot quotient = snap->quotient(partition);

  ReducedSystem out;
  out.snapshot = quotient.reduced;
  out.view = std::make_shared<QuotientPsioa>(quotient.reduced);
  out.states = snap->state_count();
  out.blocks = quotient.blocks;
  return out;
}

void enumerate_cone(
    Psioa& automaton, Scheduler& sched, std::size_t max_depth,
    ExecFragment& path, const Rational& prefix_prob,
    const std::function<void(const ExecFragment&, const Rational&)>& visit,
    ConeStats* stats) {
  ConeStats scratch;
  ConeStats& cs = stats != nullptr ? *stats : scratch;
  if (prefix_prob.is_zero()) return;
  MemoPsioa* memo = memo_engine_of(automaton);
  const std::size_t base_len = path.length();

  // A pending edge, not a call frame: (absolute) probability of the child
  // it leads to, the step that reaches it, and the parent's depth so the
  // shared path can be truncated back before appending. The live stack
  // holds at most depth x branching edges -- it scales with the longest
  // path, never with the number of cones enumerated.
  struct PendingEdge {
    Rational prob;
    ActionId a;
    State q2;
    std::size_t depth;
  };
  std::vector<PendingEdge> stack;

  auto expand = [&](const Rational& prob) {
    if (path.length() >= max_depth) {
      visit(path, prob);
      ++cs.leaves;
      return;
    }
    const ActionChoice choice = sched.choose(automaton, path);
    const Rational halt = scheduled_halt_mass(choice, sched);
    if (!halt.is_zero()) {
      visit(path, prob * halt);
      ++cs.halts;
    }
    const State q = path.lstate();
    const std::size_t depth = path.length();
    const std::size_t first_child = stack.size();
    if (memo != nullptr) {
      const Signature& sig = memo->signature_ref(q);
      for (const auto& [a, w] : choice.entries()) {
        if (!sig.contains(a)) throw_outside_sig(sched, a);
        const StateDist& eta = memo->transition_dist(q, a);
        for (const auto& [q2, tw] : eta.entries()) {
          stack.push_back({prob * w * tw, a, q2, depth});
        }
      }
    } else {
      const Signature sig = automaton.signature(q);
      for (const auto& [a, w] : choice.entries()) {
        if (!sig.contains(a)) throw_outside_sig(sched, a);
        const StateDist eta = automaton.transition(q, a);
        for (const auto& [q2, tw] : eta.entries()) {
          stack.push_back({prob * w * tw, a, q2, depth});
        }
      }
    }
    // The recursive enumerator descends into the first edge first;
    // reversing the freshly pushed run makes the LIFO pops replay that
    // exact pre-order.
    std::reverse(stack.begin() + first_child, stack.end());
    cs.frames_pushed += stack.size() - first_child;
    cs.frames_peak = std::max(cs.frames_peak, stack.size());
  };

  expand(prefix_prob);
  while (!stack.empty()) {
    PendingEdge e = std::move(stack.back());
    stack.pop_back();
    if (e.prob.is_zero()) continue;
    path.truncate(e.depth);
    path.append(e.a, e.q2);
    expand(e.prob);
  }
  path.truncate(base_len);
}

// -- exact prefix strata (importance splitting) -----------------------------

PrefixStrata expand_prefix_strata(Psioa& automaton, Scheduler& sched,
                                  const InsightFunction& f,
                                  std::size_t split_depth, ConeStats* stats) {
  PrefixStrata out;
  ExecFragment root = ExecFragment::starting_at(automaton.start_state());
  if (split_depth == 0) {
    out.live.push_back({std::move(root), Rational(1)});
    out.live_mass = Rational(1);
    return out;
  }
  // enumerate_cone capped at split_depth visits each event exactly once:
  // interior halts (length < cap) with their halt mass -- genuinely
  // terminal, hence settled -- and depth-capped fragments (length ==
  // cap) with their FULL remaining cone mass, which is exactly the
  // stratum weight conditioning needs.
  enumerate_cone(
      automaton, sched, split_depth, root, Rational(1),
      [&](const ExecFragment& alpha, const Rational& p) {
        if (alpha.length() >= split_depth) {
          out.live.push_back({alpha, p});  // copy: alpha aliases the path
          out.live_mass = out.live_mass + p;
        } else {
          out.settled.add(f.apply(automaton, alpha), p);
        }
      },
      stats);
  return out;
}

PrefixStrata strata_from_frontier(const ConeFrontier& frontier) {
  PrefixStrata out;
  out.settled = frontier.settled;
  out.live.reserve(frontier.live.size());
  for (const auto& e : frontier.live) {
    out.live.push_back({e.frag, e.prob});
    out.live_mass = out.live_mass + e.prob;
  }
  return out;
}

// -- prefix-sharing frontiers ----------------------------------------------

ConeFrontierCache::ConeFrontierCache(Psioa& automaton,
                                     const InsightFunction& f,
                                     std::size_t max_depth)
    : automaton_(automaton),
      f_(f),
      max_depth_(max_depth),
      memo_(memo_engine_of(automaton)) {}

const ConeFrontier& ConeFrontierCache::insert(
    const std::vector<ActionId>& word, ConeFrontier fr) {
  return cache_.insert_or_assign(word, std::move(fr)).first->second;
}

ConeFrontier ConeFrontierCache::root_frontier() {
  // The empty word's cone is a single node: the start fragment either
  // hits the depth cap immediately or halts with full mass -- in which
  // case it is live, because an extension re-expands it.
  ConeFrontier fr;
  ExecFragment root = ExecFragment::starting_at(automaton_.start_state());
  const Perception perc = f_.apply(automaton_, root);
  if (root.length() >= max_depth_) {
    fr.settled.add(perc, Rational(1));
    ++stats_.leaves;
  } else {
    fr.live.push_back({std::move(root), Rational(1), perc});
  }
  fr.fdist = fr.settled;
  for (const auto& e : fr.live) fr.fdist.add(e.perc, e.prob);
  return fr;
}

ConeFrontier ConeFrontierCache::extend(const ConeFrontier& parent,
                                       ActionId a) {
  // One letter of SequenceScheduler semantics (local_only = false),
  // applied only to the parent's live fragments: a disabled letter
  // settles the fragment for every further extension; an enabled letter
  // carries unit scheduler mass, so each transition target either
  // settles at the depth cap or joins the child's live frontier.
  ConeFrontier fr;
  fr.settled = parent.settled;
  fr.settled_max_len = parent.settled_max_len;
  ++stats_.prefix_misses;
  for (const auto& e : parent.live) {
    const State q = e.frag.lstate();
    const std::size_t child_len = e.frag.length() + 1;
    bool enabled;
    if (memo_ != nullptr) {
      enabled = memo_->signature_ref(q).contains(a);
    } else {
      enabled = automaton_.signature(q).contains(a);
    }
    if (!enabled) {
      fr.settled.add(e.perc, e.prob);
      fr.settled_max_len = std::max(fr.settled_max_len, e.frag.length());
      ++stats_.halts;
      continue;
    }
    auto step = [&](State q2, const Rational& tw) {
      ExecFragment child = e.frag;
      child.append(a, q2);
      Rational p = e.prob * tw;
      Perception perc = f_.apply(automaton_, child);
      if (child_len >= max_depth_) {
        fr.settled.add(perc, p);
        fr.settled_max_len = std::max(fr.settled_max_len, child_len);
        ++stats_.leaves;
      } else {
        fr.live.push_back({std::move(child), std::move(p), std::move(perc)});
      }
    };
    if (memo_ != nullptr) {
      // The row reference is only stable until the next compiled_row
      // call, and f_.apply may fault signatures on snapshot views --
      // neither touches the row tables, so reading entries across the
      // step calls is safe; a fresh live fragment never aliases it.
      const StateDist& eta = memo_->transition_dist(q, a);
      for (const auto& [q2, tw] : eta.entries()) step(q2, tw);
    } else {
      const StateDist eta = automaton_.transition(q, a);
      for (const auto& [q2, tw] : eta.entries()) step(q2, tw);
    }
  }
  fr.max_reached = fr.settled_max_len;
  if (!fr.live.empty()) {
    fr.max_reached = std::max(fr.max_reached, fr.live.front().frag.length());
  }
  fr.fdist = fr.settled;
  for (const auto& e : fr.live) fr.fdist.add(e.perc, e.prob);
  return fr;
}

const ConeFrontier& ConeFrontierCache::frontier(
    const std::vector<ActionId>& word) {
  auto it = cache_.find(word);
  if (it != cache_.end()) {
    ++stats_.prefix_hits;
    return it->second;
  }
  if (word.empty()) return insert(word, root_frontier());
  // Longest cached prefix, then one extension level per missing letter.
  // Every intermediate level is cached too: the searches query words in
  // prefix order, so in steady state this loop runs exactly once.
  std::vector<ActionId> prefix = word;
  prefix.pop_back();
  const ConeFrontier& parent = frontier(prefix);
  return insert(word, extend(parent, word.back()));
}

void ConeFrontierCache::evict(const std::vector<ActionId>& word) {
  cache_.erase(word);
}

// -- deterministic parallel exact f-dists ----------------------------------

ParallelConeEngine::ParallelConeEngine(PsioaFactory make_automaton,
                                       SchedulerFactory make_sched,
                                       ReductionPolicy policy)
    : sampler_(std::move(make_automaton), make_sched),
      make_sched_(std::move(make_sched)),
      policy_(policy) {}

void ParallelConeEngine::prepare(const WarmupPlan& plan,
                                 std::size_t max_depth) {
  sampler_.prepare(plan, max_depth);
  quotient_ = QuotientSnapshot{};
  if (!policy_.enabled()) return;
  // Reduce only when the snapshot covers the cone: the walk must reach
  // the enumeration depth and must not have truncated on the state cap
  // (state_count counts every memoized state, so hitting either cap
  // shows up as state_count >= the cap).
  auto snap = sampler_.snapshot();
  const std::size_t cap = std::min(plan.max_states, policy_.max_states);
  if (plan.horizon < max_depth || snap->state_count() >= cap) return;
  PartitionStats pstats;
  const SnapshotPartition partition = bisimulation_partition(*snap, &pstats);
  quotient_ = snap->quotient(partition);
}

ExactDisc<Perception> ParallelConeEngine::exact_fdist(
    const InsightFunction& f, std::size_t max_depth, ThreadPool& pool,
    std::size_t frontier_target) {
  if (!prepared()) {
    throw std::logic_error("ParallelConeEngine: prepare() before exact_fdist");
  }
  const std::size_t target =
      frontier_target != 0
          ? frontier_target
          : 4 * std::max<std::size_t>(std::size_t{1}, pool.size());
  ConeStats stats;
  if (reduced()) {
    stats.quotient_states = quotient_.original_states;
    stats.quotient_blocks = quotient_.blocks;
  }

  // Views and schedulers: thin snapshot views with frozen choice rows on
  // the raw path; QuotientPsioa views with *fresh* schedulers on the
  // reduced path (frozen choice rows are keyed by original handles,
  // which a block handle could alias -- fresh schedulers re-derive their
  // rows from block signatures, which is exactly the preserved part).
  auto make_view = [&]() -> std::shared_ptr<MemoPsioa> {
    if (reduced()) return std::make_shared<QuotientPsioa>(quotient_.reduced);
    return sampler_.worker_view();
  };
  auto make_worker_sched = [&]() -> SchedulerPtr {
    if (reduced()) return make_sched_();
    return sampler_.worker_scheduler();
  };

  // Phase 1 (calling thread): breadth-first expansion until the frontier
  // holds enough independent subtrees to keep every worker busy. Halt
  // and leaf mass discovered on the way accumulates into `base`.
  auto main_view = make_view();
  SchedulerPtr main_sched = make_worker_sched();
  struct Node {
    ExecFragment frag;
    Rational prob;
  };
  std::deque<Node> frontier;
  ExactDisc<Perception> base;
  frontier.push_back(
      {ExecFragment::starting_at(main_view->start_state()), Rational(1)});
  while (!frontier.empty() && frontier.size() < target) {
    Node n = std::move(frontier.front());
    frontier.pop_front();
    if (n.frag.length() >= max_depth) {
      base.add(f.apply(*main_view, n.frag), n.prob);
      ++stats.leaves;
      continue;
    }
    const ActionChoice choice = main_sched->choose(*main_view, n.frag);
    const Rational halt = scheduled_halt_mass(choice, *main_sched);
    if (!halt.is_zero()) {
      base.add(f.apply(*main_view, n.frag), n.prob * halt);
      ++stats.halts;
    }
    const State q = n.frag.lstate();
    const Signature& sig = main_view->signature_ref(q);
    for (const auto& [a, w] : choice.entries()) {
      if (!sig.contains(a)) throw_outside_sig(*main_sched, a);
      const StateDist& eta = main_view->transition_dist(q, a);
      for (const auto& [q2, tw] : eta.entries()) {
        ExecFragment child = n.frag;
        child.append(a, q2);
        frontier.push_back({std::move(child), n.prob * w * tw});
      }
    }
  }
  std::vector<Node> tasks;
  tasks.reserve(frontier.size());
  for (auto& n : frontier) tasks.push_back(std::move(n));
  stats.splits = tasks.size();

  // Phase 2: fan the subtrees over the pool. Each chunk drives its own
  // thin snapshot view and scheduler instance, so the one-thread-per-
  // instance rule holds; frozen rows are read lock-free, cold misses
  // serialize through the shared residue. The fixed (chunk-order) merge
  // of exact partials is order-insensitive, hence bit-identical for any
  // worker count.
  const std::size_t lanes = std::max<std::size_t>(std::size_t{1}, pool.size());
  std::vector<ExactDisc<Perception>> partial(lanes);
  std::vector<ConeStats> cstats(lanes);
  parallel_for_chunks(
      pool, tasks.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto view = make_view();
        SchedulerPtr sched = make_worker_sched();
        ExactDisc<Perception>& out = partial[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          ExecFragment path = tasks[i].frag;
          enumerate_cone(
              *view, *sched, max_depth, path, tasks[i].prob,
              [&](const ExecFragment& alpha, const Rational& p) {
                out.add(f.apply(*view, alpha), p);
              },
              &cstats[chunk]);
        }
      });

  ExactDisc<Perception> result = std::move(base);
  for (const auto& p : partial) {
    for (const auto& [perc, w] : p.entries()) result.add(perc, w);
  }
  for (const auto& s : cstats) stats += s;
  stats_ = stats;
  return result;
}

}  // namespace cdse
