#include "sched/insight.hpp"

namespace cdse {

Perception TraceInsight::apply(Psioa& automaton,
                               const ExecFragment& alpha) const {
  return trace_string(trace_of(automaton, alpha));
}

Perception AcceptInsight::apply(Psioa& automaton,
                                const ExecFragment& alpha) const {
  for (ActionId a : trace_of(automaton, alpha)) {
    if (a == acc_) return "1";
  }
  return "0";
}

Perception PrintInsight::apply(Psioa& automaton,
                               const ExecFragment& alpha) const {
  std::vector<ActionId> kept;
  for (ActionId a : trace_of(automaton, alpha)) {
    if (set::contains(print_, a)) kept.push_back(a);
  }
  return trace_string(kept);
}

}  // namespace cdse
