#pragma once
// Batched lockstep execution sampling over compiled alias rows, with a
// vectorized block draw kernel and an incremental-rounds API.
//
// The serial sampler (sched/sampler.hpp) walks one execution at a time:
// every step pays a scheduler row lookup, a linear CDF scan, a compiled
// transition row lookup (two hash probes on the snapshot path), a second
// CDF scan and a fragment append -- per execution. The paper's
// epsilon-emulation checks want millions of Monte-Carlo executions per
// f-dist, and those executions are all walks of the *same* frozen
// snapshot, so the batched mode steps a whole block of executions in
// lockstep instead:
//
//   - Live executions are kept as a structure-of-arrays block of
//     *trajectory classes*: executions sharing their entire history so
//     far collapse to one (state, path-node, count) entry. Grouping by
//     (state, pending action) is maximal by construction -- a class IS
//     such a group -- so each scheduler/transition row is fetched once
//     per class per round instead of once per execution per step.
//   - Histories live in a shared path tree (parent-pointer arena), so
//     extending a class by one step appends one node; nothing is copied
//     until a terminal class is expanded for the insight function, and
//     the insight function itself runs once per *distinct* execution,
//     weighted by its class count.
//   - Draws go through the rows' Walker alias tables (util/alias.hpp):
//     O(1) per draw regardless of support width.
//
// Draw kernels (BatchKernel): the per-draw kernel is the PR-8 scalar
// reference -- one rng.below + one rng.uniform + one alias pick per
// logical draw, preserved unchanged as the differential baseline. The
// block kernel (the default behind SamplingMode::kBatched) instead
// derives a XoshiroBlock from the chunk's scalar stream and resolves a
// class's draws in bulk: one fill_below for the slot indices, one
// fill_uniform for the thresholds, one AliasTable::pick_block gather,
// then a scalar tally -- with singleton rows (one slot, one target)
// resolved algebraically without touching the RNG at all. The block
// fills and the gather dispatch between a portable scalar loop and an
// AVX2 body at runtime (util/rng.hpp); both produce bit-identical
// tallies, which tests/batch_sampler_test.cpp pins end to end at every
// worker count.
//
// Equivalence contract: batched results equal serial results in
// *distribution*, not draw-for-draw -- classes consume the RNG in
// class-sorted order and alias picks spend two uniforms where a CDF scan
// spends one (and the two batched kernels consume the RNG differently
// from each other). The statistical harness (tests/stat_util.hpp) pins
// every pairing with chi-square differential tests; the serial path
// remains the reference (SamplingMode::kSerial, the default).
//
// Scheduler contract: rounds query choice rows through synthetic
// fragments that carry the correct last state and length but dummy
// interior steps, so batched mode supports every scheduler whose choice
// is a function of (lstate, |alpha|) -- uniform, priority, bounded,
// sequence, task. History-reading schedulers (oblivious-fn) would see
// garbage words and are not supported in batched mode.
//
// Determinism: one RNG stream (the block kernel's lane block is derived
// from it by one scalar draw, a pinned pure function), classes sorted by
// (state, node id) each round, actions drawn in row order, targets in
// row order -- the whole schedule is a pure function of (seed, trials,
// max_depth) for each kernel, so batched runs are reproducible even
// though they are not draw-for-draw aligned with the serial walk. The
// incremental API below preserves this: pausing and resuming at any
// round boundary replays the identical schedule
// (run_rounds(a); run_rounds(b) == run_rounds(a + b), bit-identically).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "psioa/memo.hpp"
#include "sched/insight.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace cdse {

/// Which draw kernel a batched run steps with.
///   kBlock   -- bulk XoshiroBlock fills + AliasTable::pick_block
///               gathers + singleton elision (the fast default).
///   kPerDraw -- the PR-8 scalar loop, two scalar RNG calls per logical
///               draw; kept bit-compatible as the differential
///               reference for the block kernel.
enum class BatchKernel { kBlock, kPerDraw };

/// Counters of one batched run, for the E20/E21 benches and the tests:
/// how much row-lookup amortization the class grouping bought, and how
/// the block kernel spent (or elided) its RNG traffic.
struct BatchStats {
  std::size_t rounds = 0;        ///< lockstep rounds executed
  std::size_t classes_peak = 0;  ///< live trajectory classes, maximum
  std::size_t class_steps = 0;   ///< class-rounds (amortized row work)
  std::size_t choice_lookups = 0;  ///< scheduler rows fetched
  std::size_t row_lookups = 0;     ///< transition rows fetched
  std::size_t action_draws = 0;    ///< logical action draws (incl. elided)
  std::size_t target_draws = 0;    ///< logical target draws (incl. elided)
  std::size_t distinct_executions = 0;  ///< terminal classes (f.apply calls)
  // Block-kernel accounting (zero under kPerDraw):
  std::size_t blocks_filled = 0;   ///< bulk fill operations issued
  std::size_t block_draws = 0;     ///< RNG values produced by bulk fills
  std::size_t singleton_skips = 0; ///< logical draws elided (1-slot rows)
  std::size_t rejection_redraws = 0;  ///< fill_below debias re-draws

  BatchStats& operator+=(const BatchStats& o) {
    rounds += o.rounds;
    classes_peak = classes_peak > o.classes_peak ? classes_peak
                                                 : o.classes_peak;
    class_steps += o.class_steps;
    choice_lookups += o.choice_lookups;
    row_lookups += o.row_lookups;
    action_draws += o.action_draws;
    target_draws += o.target_draws;
    distinct_executions += o.distinct_executions;
    blocks_filled += o.blocks_filled;
    block_draws += o.block_draws;
    singleton_skips += o.singleton_skips;
    rejection_redraws += o.rejection_redraws;
    return *this;
  }
};

/// Stateful lockstep engine: one chunk's worth of executions advanced
/// round by round. The one-shot helpers below wrap it; the sequential
/// early-stopping estimator consumes it directly through run_rounds +
/// accumulate_counts (partial tallies after every wave of rounds).
///
/// Lifetime: holds references to the automaton and scheduler; both must
/// outlive the sampler. One sampler per thread (no internal locking).
class BatchSampler {
 public:
  /// Prepares `trials` executions of `automaton` under `sched`, stepping
  /// with `kernel`. The RNG is copied in; under kBlock one scalar draw
  /// seeds the lane block (the pinned derivation), under kPerDraw the
  /// scalar stream is consumed exactly as in PR 8.
  BatchSampler(Psioa& automaton, Scheduler& sched, std::size_t trials,
               const Xoshiro256& rng, std::size_t max_depth,
               BatchKernel kernel = BatchKernel::kBlock);

  /// Prefix-conditioned variant for the importance-splitting estimator:
  /// all `trials` executions start from `prefix` (depth counts from
  /// prefix.length(), so the scheduler sees absolute execution lengths
  /// and `max_depth` keeps its absolute meaning) and sample the
  /// CONDITIONAL continuation law given the prefix. Terminal fragments
  /// are the full executions (prefix + sampled suffix), so the insight
  /// function sees exactly what an unconditioned run would feed it.
  /// Correct conditioning relies on the batched scheduler contract
  /// (choice a function of (lstate, |alpha|)): under it the conditional
  /// law given a depth-d prefix depends only on (prefix.lstate(), d).
  BatchSampler(Psioa& automaton, Scheduler& sched, std::size_t trials,
               const Xoshiro256& rng, std::size_t max_depth,
               const ExecFragment& prefix,
               BatchKernel kernel = BatchKernel::kBlock);

  /// Executes up to `n` more lockstep rounds; returns how many actually
  /// ran (0 once done()). When the run completes -- every class halted
  /// or max_depth reached -- surviving classes are flushed to terminal.
  std::size_t run_rounds(std::size_t n);

  /// Runs to completion (the one-shot path).
  void run_to_completion();

  bool done() const { return flushed_; }
  std::size_t rounds_done() const { return stats_.rounds; }
  /// Executions finished so far (sum of terminal class counts).
  std::uint64_t trials_terminal() const { return terminal_trials_; }
  std::size_t trials_requested() const { return trials_; }

  /// Folds terminal classes discovered since the last call into the
  /// running per-perception count tally and returns it (unnormalized).
  /// Counts are monotone non-decreasing across calls by construction;
  /// calling after every run_rounds wave yields the partial tallies the
  /// sequential estimator consumes.
  const Disc<Perception, double>& accumulate_counts(const InsightFunction& f);

  /// Enables per-wave delta tallies: while on, accumulate_counts also
  /// folds freshly terminal classes into a drainable delta tally, so an
  /// incremental driver can merge only what changed since its last wave
  /// (O(new terminal classes) per wave instead of a full re-merge).
  void track_deltas(bool on) { track_deltas_ = on; }
  /// Returns and clears the per-perception counts added by
  /// accumulate_counts since the previous drain (empty when nothing new
  /// went terminal, or when track_deltas was never enabled).
  Disc<Perception, double> drain_count_delta();

  /// Expands every terminal class back to one fragment per execution,
  /// in deterministic class order. Requires done().
  std::vector<ExecFragment> fragments() const;

  const BatchStats& stats() const { return stats_; }

  /// The scalar RNG state after construction and all rounds so far (the
  /// one-shot wrappers hand it back to their caller's stream).
  const Xoshiro256& scalar_rng() const { return rng_; }

 private:
  struct PathNode {
    std::int32_t parent;
    ActionId a;
    State q;
  };
  struct TerminalClass {
    std::int32_t node;
    std::uint64_t count;
  };

  void one_round();
  void flush_survivors();
  void push_terminal(std::int32_t node, std::uint64_t count);
  /// Tallies `count` draws from `alias` into tally[0..alias.size())
  /// using the active kernel.
  void tally_draws(const AliasTable& alias, std::uint64_t count,
                   std::vector<std::uint64_t>& tally);
  ExecFragment fragment_of(std::int32_t leaf) const;

  Psioa& automaton_;
  Scheduler& sched_;
  MemoPsioa* memo_ = nullptr;
  std::size_t trials_ = 0;
  std::size_t max_depth_ = 0;
  BatchKernel kernel_ = BatchKernel::kBlock;
  Xoshiro256 rng_;
  std::optional<XoshiroBlock> block_;

  /// Conditioning prefix (importance splitting); node 0 stands in for
  /// its last state, and fragment_of grafts expansions onto a copy.
  std::optional<ExecFragment> prefix_;

  std::vector<PathNode> nodes_;
  std::vector<TerminalClass> terminal_;
  std::uint64_t terminal_trials_ = 0;
  std::size_t depth_ = 0;
  bool flushed_ = false;

  // Live classes, structure-of-arrays (lockstep invariant: every class
  // has walked exactly depth_ steps).
  std::vector<State> cls_state_;
  std::vector<std::int32_t> cls_node_;
  std::vector<std::uint64_t> cls_count_;
  std::vector<State> nxt_state_;
  std::vector<std::int32_t> nxt_node_;
  std::vector<std::uint64_t> nxt_count_;
  std::vector<std::size_t> order_;
  std::vector<std::uint64_t> act_tally_;
  std::vector<std::uint64_t> tgt_tally_;
  // Block-kernel scratch.
  std::vector<std::uint32_t> idx_buf_;
  std::vector<double> u_buf_;
  std::vector<std::uint32_t> out_buf_;

  // Partial-tally accumulation state.
  Disc<Perception, double> counts_;
  std::size_t counted_ = 0;  // terminal_ prefix already folded in
  bool track_deltas_ = false;
  Disc<Perception, double> delta_;  // fresh counts since the last drain

  BatchStats stats_;
};

/// Samples `n` executions in lockstep and returns them materialized
/// (classes expanded back to one fragment per execution, in a
/// deterministic class order). The batched twin of calling
/// sample_execution n times; used by the differential tests. The
/// caller's rng is advanced by however much the run consumed from the
/// scalar stream (one derivation draw under kBlock).
std::vector<ExecFragment> sample_executions(
    Psioa& automaton, Scheduler& sched, Xoshiro256& rng, std::size_t n,
    std::size_t max_depth, BatchStats* stats = nullptr,
    BatchKernel kernel = BatchKernel::kBlock);

/// Batched empirical f-dist from `trials` lockstep executions, as raw
/// per-perception counts (unnormalized; callers merging chunks divide by
/// the global trial count). The insight function is applied once per
/// distinct execution.
Disc<Perception, double> batched_sample_counts(
    Psioa& automaton, Scheduler& sched, const InsightFunction& f,
    std::size_t trials, Xoshiro256& rng, std::size_t max_depth,
    BatchStats* stats = nullptr, BatchKernel kernel = BatchKernel::kBlock);

/// Normalized batched f-dist estimate: the batched counterpart of
/// sample_fdist (sched/sampler.hpp), distribution-equivalent to it at
/// the same trial count but not draw-for-draw aligned.
Disc<Perception, double> sample_fdist_batched(
    Psioa& automaton, Scheduler& sched, const InsightFunction& f,
    std::size_t trials, std::uint64_t seed, std::size_t max_depth,
    BatchStats* stats = nullptr, BatchKernel kernel = BatchKernel::kBlock);

}  // namespace cdse
