#pragma once
// Batched lockstep execution sampling over compiled alias rows.
//
// The serial sampler (sched/sampler.hpp) walks one execution at a time:
// every step pays a scheduler row lookup, a linear CDF scan, a compiled
// transition row lookup (two hash probes on the snapshot path), a second
// CDF scan and a fragment append -- per execution. The paper's
// epsilon-emulation checks want millions of Monte-Carlo executions per
// f-dist, and those executions are all walks of the *same* frozen
// snapshot, so the batched mode steps a whole block of executions in
// lockstep instead:
//
//   - Live executions are kept as a structure-of-arrays block of
//     *trajectory classes*: executions sharing their entire history so
//     far collapse to one (state, path-node, count) entry. Grouping by
//     (state, pending action) is maximal by construction -- a class IS
//     such a group -- so each scheduler/transition row is fetched once
//     per class per round instead of once per execution per step.
//   - Histories live in a shared path tree (parent-pointer arena), so
//     extending a class by one step appends one node; nothing is copied
//     until a terminal class is expanded for the insight function, and
//     the insight function itself runs once per *distinct* execution,
//     weighted by its class count.
//   - Draws go through the rows' Walker alias tables (util/alias.hpp):
//     O(1) per draw regardless of support width.
//
// Equivalence contract: batched results equal serial results in
// *distribution*, not draw-for-draw -- classes consume the RNG in
// class-sorted order and alias picks spend two uniforms where a CDF scan
// spends one. The statistical harness (tests/stat_util.hpp) pins the
// equivalence with chi-square differential tests; the serial path
// remains the reference (SamplingMode::kSerial, the default).
//
// Scheduler contract: rounds query choice rows through synthetic
// fragments that carry the correct last state and length but dummy
// interior steps, so batched mode supports every scheduler whose choice
// is a function of (lstate, |alpha|) -- uniform, priority, bounded,
// sequence, task. History-reading schedulers (oblivious-fn) would see
// garbage words and are not supported in batched mode.
//
// Determinism: one RNG stream, classes sorted by (state, node id) each
// round, actions drawn in row order, targets in row order -- the whole
// schedule is a pure function of (seed, trials, max_depth), so batched
// runs are reproducible even though they are not draw-for-draw aligned
// with the serial walk.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "psioa/memo.hpp"
#include "sched/insight.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace cdse {

/// Counters of one batched run, for the E20 bench and the tests: how
/// much row-lookup amortization the class grouping actually bought.
struct BatchStats {
  std::size_t rounds = 0;        ///< lockstep rounds executed
  std::size_t classes_peak = 0;  ///< live trajectory classes, maximum
  std::size_t class_steps = 0;   ///< class-rounds (amortized row work)
  std::size_t choice_lookups = 0;  ///< scheduler rows fetched
  std::size_t row_lookups = 0;     ///< transition rows fetched
  std::size_t action_draws = 0;    ///< alias draws for actions
  std::size_t target_draws = 0;    ///< alias draws for targets
  std::size_t distinct_executions = 0;  ///< terminal classes (f.apply calls)

  BatchStats& operator+=(const BatchStats& o) {
    rounds += o.rounds;
    classes_peak = classes_peak > o.classes_peak ? classes_peak
                                                 : o.classes_peak;
    class_steps += o.class_steps;
    choice_lookups += o.choice_lookups;
    row_lookups += o.row_lookups;
    action_draws += o.action_draws;
    target_draws += o.target_draws;
    distinct_executions += o.distinct_executions;
    return *this;
  }
};

/// Samples `n` executions in lockstep and returns them materialized
/// (classes expanded back to one fragment per execution, in a
/// deterministic class order). The batched twin of calling
/// sample_execution n times; used by the differential tests.
std::vector<ExecFragment> sample_executions(Psioa& automaton,
                                            Scheduler& sched, Xoshiro256& rng,
                                            std::size_t n,
                                            std::size_t max_depth,
                                            BatchStats* stats = nullptr);

/// Batched empirical f-dist from `trials` lockstep executions, as raw
/// per-perception counts (unnormalized; callers merging chunks divide by
/// the global trial count). The insight function is applied once per
/// distinct execution.
Disc<Perception, double> batched_sample_counts(Psioa& automaton,
                                               Scheduler& sched,
                                               const InsightFunction& f,
                                               std::size_t trials,
                                               Xoshiro256& rng,
                                               std::size_t max_depth,
                                               BatchStats* stats = nullptr);

/// Normalized batched f-dist estimate: the batched counterpart of
/// sample_fdist (sched/sampler.hpp), distribution-equivalent to it at
/// the same trial count but not draw-for-draw aligned.
Disc<Perception, double> sample_fdist_batched(Psioa& automaton,
                                              Scheduler& sched,
                                              const InsightFunction& f,
                                              std::size_t trials,
                                              std::uint64_t seed,
                                              std::size_t max_depth,
                                              BatchStats* stats = nullptr);

}  // namespace cdse
