#pragma once
// Schedulers and scheduler schemas (Def 3.1, Def 3.2).
//
// A scheduler resolves the non-determinism of a PSIOA: given a finite
// execution fragment it returns a discrete *sub*-probability measure over
// the transitions leaving lstate(alpha); the missing mass is the
// probability of halting. Because Def 2.1 makes eta_{(A,q,a)} unique per
// (q, a), a distribution over enabled *actions* identifies a distribution
// over transitions, which is how we represent it.
//
// Weights are exact rationals so that the cone-measure enumerator stays
// exact end to end. The Monte-Carlo sampler instead consumes ChoiceRow,
// a compiled double-CDF view of choose(); schedulers whose decision
// depends only on lstate (uniform, priority) memoize compiled rows per
// state, everything else compiles on the fly.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "psioa/execution.hpp"

namespace cdse {

/// Sub-probability over the actions enabled at lstate(alpha);
/// total() < 1 means halting with the residual mass.
using ActionChoice = ExactDisc<ActionId>;

/// Compiled action choice for the sampling fast-path: a running double
/// CDF over the chosen actions. cdf.back() < 1 leaves halting mass, and
/// sample() walks partial sums exactly the way the sampler historically
/// accumulated to_double() weights, so draws are reproducible across the
/// exact and compiled representations.
struct ChoiceRow {
  std::vector<ActionId> actions;
  std::vector<double> cdf;

  bool empty() const { return actions.empty(); }

  static ChoiceRow compile(const ActionChoice& c) {
    ChoiceRow row;
    row.actions.reserve(c.entries().size());
    row.cdf.reserve(c.entries().size());
    double acc = 0.0;
    for (const auto& [a, w] : c.entries()) {
      acc += w.to_double();
      row.actions.push_back(a);
      row.cdf.push_back(acc);
    }
    return row;
  }

  /// Draws an action given u ~ Uniform[0,1); kInvalidAction = halt on
  /// the residual mass.
  ActionId sample(double u) const {
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (u < cdf[i]) return actions[i];
    }
    return kInvalidAction;
  }
};

/// Immutable per-state ChoiceRow table, frozen from a warmed scheduler
/// and shared read-only across sampler workers (the scheduler-side twin
/// of psioa/snapshot.hpp's CompiledSnapshot). Rows are keyed by State
/// handles, so a frozen table is only meaningful for automata sharing
/// the handle space it was warmed against -- in practice, the
/// SnapshotPsioa views handed out by ParallelSampler.
struct FrozenChoiceTable {
  std::unordered_map<State, ChoiceRow> rows;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// sigma(alpha). Implementations must only give mass to actions in
  /// sig(A)(lstate(alpha)) with total at most 1; the exact cone-measure
  /// enumerator validates both, the Monte-Carlo sampler trusts the
  /// scheduler for speed.
  virtual ActionChoice choose(Psioa& automaton,
                              const ExecFragment& alpha) = 0;

  /// Compiled view of choose(alpha) for the sampler. The returned row is
  /// owned by the scheduler and valid until its next choice_row call.
  /// The default compiles choose() every call; schedulers that are a
  /// function of lstate only override it with a per-state memo. Like the
  /// automaton memo tables, rows are per-instance and unsynchronized
  /// (one scheduler instance per sampling thread).
  virtual const ChoiceRow* choice_row(Psioa& automaton,
                                      const ExecFragment& alpha);

  /// Copies this scheduler's per-state row memo into an immutable table
  /// that fresh worker instances adopt via adopt_choice_rows(). Returns
  /// nullptr for schedulers without a per-state memo (sequence, task,
  /// oblivious): their decisions are not a function of lstate, so there
  /// is nothing sound to share.
  virtual std::shared_ptr<const FrozenChoiceTable> freeze_choice_rows()
      const {
    return nullptr;
  }

  /// Adopts a frozen table: choice_row serves it lock-free ahead of the
  /// local memo. No-op by default. The table's State keys must belong to
  /// the handle space of the automata this scheduler will drive.
  virtual void adopt_choice_rows(
      std::shared_ptr<const FrozenChoiceTable> table) {
    (void)table;
  }

  virtual std::string name() const = 0;

 private:
  ChoiceRow scratch_;  // default choice_row storage
};

using SchedulerPtr = std::shared_ptr<Scheduler>;

/// Validates a choice's total mass (Def 3.1: at most 1) and returns the
/// halting residual 1 - total. The single mass-validation path shared by
/// the exact cone enumerators: the total is summed once, the residual is
/// reused instead of being re-derived, and the unit constant is hoisted
/// rather than rebuilt per call. Throws std::logic_error naming `sched`
/// on an overweight choice.
Rational scheduled_halt_mass(const ActionChoice& choice,
                             const Scheduler& sched);

/// Produces a fresh scheduler instance; the unit of distribution for the
/// parallel sampler (one instance per worker, like PsioaFactory).
using SchedulerFactory = std::function<SchedulerPtr()>;

/// A scheduler schema (Def 3.2) maps an automaton to the subset of its
/// schedulers that are admissible; constructively, it builds one.
using SchedulerSchema = std::function<SchedulerPtr(Psioa&)>;

}  // namespace cdse
