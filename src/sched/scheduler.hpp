#pragma once
// Schedulers and scheduler schemas (Def 3.1, Def 3.2).
//
// A scheduler resolves the non-determinism of a PSIOA: given a finite
// execution fragment it returns a discrete *sub*-probability measure over
// the transitions leaving lstate(alpha); the missing mass is the
// probability of halting. Because Def 2.1 makes eta_{(A,q,a)} unique per
// (q, a), a distribution over enabled *actions* identifies a distribution
// over transitions, which is how we represent it.
//
// Weights are exact rationals so that the cone-measure enumerator stays
// exact end to end.

#include <functional>
#include <memory>
#include <string>

#include "psioa/execution.hpp"

namespace cdse {

/// Sub-probability over the actions enabled at lstate(alpha);
/// total() < 1 means halting with the residual mass.
using ActionChoice = ExactDisc<ActionId>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// sigma(alpha). Implementations must only give mass to actions in
  /// sig(A)(lstate(alpha)) with total at most 1; the exact cone-measure
  /// enumerator validates both, the Monte-Carlo sampler trusts the
  /// scheduler for speed.
  virtual ActionChoice choose(Psioa& automaton,
                              const ExecFragment& alpha) = 0;

  virtual std::string name() const = 0;
};

using SchedulerPtr = std::shared_ptr<Scheduler>;

/// Produces a fresh scheduler instance; the unit of distribution for the
/// parallel sampler (one instance per worker, like PsioaFactory).
using SchedulerFactory = std::function<SchedulerPtr()>;

/// A scheduler schema (Def 3.2) maps an automaton to the subset of its
/// schedulers that are admissible; constructively, it builds one.
using SchedulerSchema = std::function<SchedulerPtr(Psioa&)>;

}  // namespace cdse
