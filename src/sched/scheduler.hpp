#pragma once
// Schedulers and scheduler schemas (Def 3.1, Def 3.2).
//
// A scheduler resolves the non-determinism of a PSIOA: given a finite
// execution fragment it returns a discrete *sub*-probability measure over
// the transitions leaving lstate(alpha); the missing mass is the
// probability of halting. Because Def 2.1 makes eta_{(A,q,a)} unique per
// (q, a), a distribution over enabled *actions* identifies a distribution
// over transitions, which is how we represent it.
//
// Weights are exact rationals so that the cone-measure enumerator stays
// exact end to end. The Monte-Carlo sampler instead consumes ChoiceRow,
// a compiled double-CDF view of choose(); schedulers whose decision
// depends only on lstate (uniform, priority) memoize compiled rows per
// state, everything else compiles on the fly.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "psioa/execution.hpp"
#include "util/alias.hpp"

namespace cdse {

/// Sub-probability over the actions enabled at lstate(alpha);
/// total() < 1 means halting with the residual mass.
using ActionChoice = ExactDisc<ActionId>;

/// Compiled action choice for the sampling fast-path: a running double
/// CDF over the chosen actions. cdf.back() < 1 leaves halting mass, and
/// sample() walks partial sums exactly the way the sampler historically
/// accumulated to_double() weights, so draws are reproducible across the
/// exact and compiled representations.
///
/// `exhaustive` records whether the *exact* total mass was 1: a full
/// choice whose double CDF rounds short (e.g. ten 1/10 weights
/// accumulate to 0.9999999999999999) must clamp a u landing in the
/// rounding gap to the last action instead of falling through to a halt
/// the exact semantics assigns probability zero.
///
/// The row also carries a Walker alias table, compiled (and frozen into
/// FrozenChoiceTable, shared immutably across workers) together with the
/// CDF: slots 0..actions-1 are the actions, and a non-exhaustive row has
/// one extra halt slot carrying the exact residual mass. The batched
/// sampling mode draws through sample_alias in O(1) -- equivalent to
/// sample() in distribution, not draw-for-draw.
struct ChoiceRow {
  std::vector<ActionId> actions;
  std::vector<double> cdf;
  AliasTable alias;  ///< slots: actions, then one halt slot if !exhaustive
  bool exhaustive = false;  ///< exact total mass == 1 (no halt residual)

  bool empty() const { return actions.empty(); }

  static ChoiceRow compile(const ActionChoice& c) {
    ChoiceRow row;
    row.actions.reserve(c.entries().size());
    row.cdf.reserve(c.entries().size());
    std::vector<double> weights;
    weights.reserve(c.entries().size() + 1);
    double acc = 0.0;
    for (const auto& [a, w] : c.entries()) {
      acc += w.to_double();
      row.actions.push_back(a);
      row.cdf.push_back(acc);
      weights.push_back(w.to_double());
    }
    if (row.actions.empty()) return row;  // pure halt: no table needed
    // An overweight row (total > 1, caught elsewhere by the exact
    // enumerator's validation) degrades to exhaustive rather than
    // feeding a negative halt weight to the alias builder.
    const Rational residual = Rational(1) - c.total();
    row.exhaustive = residual <= Rational(0);
    if (!row.exhaustive) weights.push_back(residual.to_double());
    row.alias = AliasTable::build(weights);
    return row;
  }

  /// Draws an action given u ~ Uniform[0,1); kInvalidAction = halt on
  /// the residual mass. A u overshooting a rounding-short CDF of an
  /// exhaustive row clamps to the last action (see `exhaustive`).
  ActionId sample(double u) const {
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (u < cdf[i]) return actions[i];
    }
    if (exhaustive && !actions.empty()) return actions.back();
    return kInvalidAction;
  }

  /// O(1) draw from (i, u) with i ~ Uniform{0..alias.size()-1},
  /// u ~ U[0,1); the halt slot (when present) maps to kInvalidAction.
  ActionId sample_alias(std::size_t i, double u) const {
    const std::size_t slot = alias.pick(i, u);
    return slot < actions.size() ? actions[slot] : kInvalidAction;
  }
};

/// Immutable per-state ChoiceRow table, frozen from a warmed scheduler
/// and shared read-only across sampler workers (the scheduler-side twin
/// of psioa/snapshot.hpp's CompiledSnapshot). Rows are keyed by State
/// handles, so a frozen table is only meaningful for automata sharing
/// the handle space it was warmed against -- in practice, the
/// SnapshotPsioa views handed out by ParallelSampler.
struct FrozenChoiceTable {
  std::unordered_map<State, ChoiceRow> rows;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// sigma(alpha). Implementations must only give mass to actions in
  /// sig(A)(lstate(alpha)) with total at most 1; the exact cone-measure
  /// enumerator validates both, the Monte-Carlo sampler trusts the
  /// scheduler for speed.
  virtual ActionChoice choose(Psioa& automaton,
                              const ExecFragment& alpha) = 0;

  /// Compiled view of choose(alpha) for the sampler. The returned row is
  /// owned by the scheduler and valid until its next choice_row call.
  /// The default compiles choose() every call; schedulers that are a
  /// function of lstate only override it with a per-state memo. Like the
  /// automaton memo tables, rows are per-instance and unsynchronized
  /// (one scheduler instance per sampling thread).
  virtual const ChoiceRow* choice_row(Psioa& automaton,
                                      const ExecFragment& alpha);

  /// Copies this scheduler's per-state row memo into an immutable table
  /// that fresh worker instances adopt via adopt_choice_rows(). Returns
  /// nullptr for schedulers without a per-state memo (sequence, task,
  /// oblivious): their decisions are not a function of lstate, so there
  /// is nothing sound to share.
  virtual std::shared_ptr<const FrozenChoiceTable> freeze_choice_rows()
      const {
    return nullptr;
  }

  /// Adopts a frozen table: choice_row serves it lock-free ahead of the
  /// local memo. No-op by default. The table's State keys must belong to
  /// the handle space of the automata this scheduler will drive.
  virtual void adopt_choice_rows(
      std::shared_ptr<const FrozenChoiceTable> table) {
    (void)table;
  }

  virtual std::string name() const = 0;

 private:
  ChoiceRow scratch_;  // default choice_row storage
};

using SchedulerPtr = std::shared_ptr<Scheduler>;

/// Validates a choice's total mass (Def 3.1: at most 1) and returns the
/// halting residual 1 - total. The single mass-validation path shared by
/// the exact cone enumerators: the total is summed once, the residual is
/// reused instead of being re-derived, and the unit constant is hoisted
/// rather than rebuilt per call. Throws std::logic_error naming `sched`
/// on an overweight choice.
Rational scheduled_halt_mass(const ActionChoice& choice,
                             const Scheduler& sched);

/// Produces a fresh scheduler instance; the unit of distribution for the
/// parallel sampler (one instance per worker, like PsioaFactory).
using SchedulerFactory = std::function<SchedulerPtr()>;

/// A scheduler schema (Def 3.2) maps an automaton to the subset of its
/// schedulers that are admissible; constructively, it builds one.
using SchedulerSchema = std::function<SchedulerPtr(Psioa&)>;

}  // namespace cdse
