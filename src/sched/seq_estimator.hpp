#pragma once
// Anytime-valid sequential decision layer for sampled epsilon checks.
//
// The secure-emulation relation <=_SE reduces to deciding whether the
// distinguishing advantage eps -- the balance distance between the
// sampled f-dists of E||A and E||B -- lies above or below a threshold.
// The fixed-trial estimators (impl/balance.hpp) burn their whole trial
// budget regardless of how early that decision is statistically settled;
// this module supplies the statistics that let them stop: a confidence-
// sequence engine that consumes the per-wave partial tallies of
// ParallelSampler::sample_fdist_incremental (via IncrementalFdistRun)
// and returns kAboveThreshold / kBelowThreshold as soon as the whole
// confidence interval clears the threshold, at an overall error
// probability <= delta over the entire (data-dependent, unboundedly
// long) sequence of looks.
//
// Validity is by alpha spending over looks: look w is granted
// delta_w = delta / (w (w+1)), so sum_w delta_w = delta and a union
// bound makes the verdict anytime-valid -- no fixed horizon, no peeking
// penalty, stop whenever the envelope separates. The paired look()
// builds *support-adaptive* one-sided envelopes for the terminal TV
// distance. With k observed cells, each side of each cell gets a
// confidence slice delta_w / (2 (k+1)) and a per-cell radius (Hoeffding,
// or Maurer-Pontil empirical Bernstein with plug-in variance p(1-p) --
// the default, which is what makes sparse near-deterministic gaps
// decide orders of magnitude earlier):
//
//   lower = (1/2) sum_i max(0, |d_i| - rl_i - rr_i)
//     Sound for kAboveThreshold: every unobserved cell contributes
//     nonnegative TV mass, and each observed cell's gap survives both
//     per-cell radii.
//   upper = eps_term + (1/2) sum_i (rl_i + rr_i) + missing
//     Sound for kBelowThreshold: plug-in TV plus per-cell radii plus a
//     missing-mass allowance per side covering the cells never yet
//     sampled -- the smaller of a Good-Turing bound (singletons / n
//     plus a Berend-Kontorovich-style sqrt(3 ln(3/delta_c) / n)
//     deviation term) and, once the support saturates (no new cell
//     since the previous look), a fresh-draw bound ln(1/delta_c) / m
//     over the m draws since that look, whose linear rate is what lets
//     small saturated supports certify "below" at tight margins.
//
// This is what keeps huge trace supports honest: the plug-in TV
// estimate is biased up by roughly sqrt(support / n), and a
// support-blind witness-event rule converts that bias into false
// kAboveThreshold verdicts on identical pairs. Here sparse cells have
// |d_i| < rl_i + rr_i, so the lower envelope stays at zero -- the
// estimator reports kUndecided instead of a wrong verdict (certifying
// "below" on a support of size k genuinely needs n >> k / eps^2; no
// sound rule can shortcut that). The simulation-based coverage suite
// (tests/seq_estimator_test.cpp) pins the realized false-decision rate
// under delta across seeded replicates.
//
// look_scaled() -- the stratified/importance-splitting path -- keeps
// the plug-in witness-mean rule with one side-radius per reweighted
// f-dist (Hoeffding scale sum_s w_s^2 / n_s), which is sharp for the
// small-perception-support insights the split estimator targets; see
// DESIGN.md for the small-support caveat.
//
// Censoring: a look may fire mid-wave, when some executions of the
// committed n are not yet terminal. The terminal-only envelopes widen
// by slack = (live_l + live_r) / n (each unfinished execution can move
// one side's mass on any event by at most 1/n), so a look can only fire
// when it would also fire with the censored mass resolved adversarially.

#include <cstddef>
#include <cstdint>

#include "measure/disc.hpp"
#include "sched/insight.hpp"

namespace cdse {

/// Outcome of a sequential look (or of a whole sequential run).
enum class SeqVerdict {
  kUndecided,       ///< interval still straddles the threshold
  kAboveThreshold,  ///< eps > threshold at confidence 1 - delta
  kBelowThreshold,  ///< eps < threshold at confidence 1 - delta
};

/// Which concentration inequality backs the per-side radius.
enum class SeqBound { kEmpiricalBernstein, kHoeffding };

/// Budget and decision parameters for one sampled epsilon check.
/// max_trials == 0 deactivates the policy entirely (legacy fixed-trial
/// call sites pass a default-constructed policy); max_trials > 0 with
/// delta == 0 is the fixed-trial *reference* mode (run the whole budget,
/// no looks, verdict by point comparison) -- the "before" row of the
/// E22 draw-count tables.
struct SequentialPolicy {
  /// Per-side trial budget; the sequential run never commits more.
  std::size_t max_trials = 0;
  /// Total error probability spent across all looks (0 = fixed-trial).
  double delta = 0.0;
  /// The eps threshold the verdict is measured against.
  double threshold = 0.0;
  /// Lockstep rounds per incremental wave; 0 = auto-tune (see
  /// ParallelSampler::sample_fdist_incremental).
  std::size_t rounds_per_wave = 0;

  /// First stage size; later stages grow geometrically by `growth` until
  /// the budget is exhausted (trial-level early stopping needs staged
  /// commitment: a BatchSampler commits its trial count at construction,
  /// so waves alone only save depth rounds, not trials).
  std::size_t initial_trials = 1024;
  double growth = 2.0;
  /// Per-side radius choice (the stratified estimator always uses the
  /// Hoeffding form, whose bounded-increment argument survives
  /// reweighting; see seq_hoeffding_radius).
  SeqBound bound = SeqBound::kEmpiricalBernstein;

  /// Importance splitting: > 0 enables the stratified estimator, which
  /// expands the exact cone to this depth, conditions per-prefix
  /// BatchSampler cursors on the live strata, and reweights by exact
  /// cone mass (impl/balance.hpp). 0 = plain paired sampling.
  std::size_t split_depth = 0;
  /// Allocation steering: stratum score = cone_mass * (1 + split_boost *
  /// word_delta / max_word_delta), where word_delta is the cross-side
  /// cone-mass gap of the stratum's action word. 0 = proportional
  /// allocation (the unbiased-variance reference the chi-square gate
  /// certifies).
  double split_boost = 4.0;
  /// Every live stratum draws at least this many conditional samples per
  /// stage (unbiasedness requires every stratum sampled).
  std::size_t split_min_trials = 64;

  bool active() const { return max_trials > 0; }
  bool sequential() const { return active() && delta > 0.0; }

  /// Fixed-trial reference: whole budget, no looks.
  static SequentialPolicy fixed(std::size_t trials) {
    SequentialPolicy p;
    p.max_trials = trials;
    return p;
  }
  /// Sequential decision at `threshold` with budget `max_trials`.
  static SequentialPolicy deciding(double threshold, std::size_t max_trials,
                                   double delta = 1e-3) {
    SequentialPolicy p;
    p.max_trials = max_trials;
    p.delta = delta;
    p.threshold = threshold;
    return p;
  }
};

/// One look's (or one run's) outcome, with enough accounting to audit
/// the draw savings the E22 bench reports.
struct SeqDecision {
  SeqVerdict verdict = SeqVerdict::kUndecided;
  double estimate = 0.0;      ///< eps estimate at this look
  double radius = 1.0;        ///< two-sided confidence radius (both sides)
  double censor_slack = 0.0;  ///< bracket width from non-terminal trials
  std::size_t trials = 0;     ///< per-side trials committed at this look
  std::size_t looks = 0;      ///< looks spent so far (this one included)
  std::size_t stages = 0;     ///< geometric stages started (caller-filled)
  std::uint64_t draws = 0;    ///< cumulative logical draws, both sides
};

/// Alpha-spending schedule: the slice of `delta` granted to look number
/// `look` (1-based). sum_{w>=1} delta/(w(w+1)) = delta.
double seq_spend(double delta, std::size_t look);

/// Hoeffding side-radius at confidence 1 - delta for a [0,1]-increment
/// weighted mean with scale = sum_s w_s^2 / n_s (1/n unstratified).
double seq_hoeffding_radius(double scale, double delta);

/// Empirical-Bernstein (Maurer-Pontil) side-radius at confidence
/// 1 - delta with plug-in variance mean*(1-mean) and n_eff = 1/scale.
/// Falls back to the Hoeffding radius when n_eff < 2 or when the
/// variance term would not help.
double seq_bernstein_radius(double mean, double scale, double delta);

/// The confidence-sequence engine. One instance per decision; feed it a
/// look whenever fresh tallies arrive (every wave, every stage
/// boundary). Latching: once a verdict fires, further looks return the
/// same decision without spending schedule mass.
class SeqEstimator {
 public:
  explicit SeqEstimator(const SequentialPolicy& policy) : policy_(policy) {}

  /// Paired look from unnormalized terminal per-perception tallies.
  /// `n` is the trial count committed per side; live_l/live_r are the
  /// committed-but-not-yet-terminal counts (censoring slack). `draws`
  /// is the cumulative logical draw count (accounting only).
  SeqDecision look(const Disc<Perception, double>& counts_l,
                   std::uint64_t live_l,
                   const Disc<Perception, double>& counts_r,
                   std::uint64_t live_r, std::size_t n, std::uint64_t draws);

  /// Generic look from a precomputed estimate: used by the stratified
  /// estimator, whose per-side uncertainty is summarized by a witness
  /// mean (for the Bernstein form) and a Hoeffding scale
  /// sum_s w_s^2 / n_s. `slack` is the censoring bracket width.
  SeqDecision look_scaled(double estimate, double slack, double mean_l,
                          double scale_l, double mean_r, double scale_r,
                          std::size_t n, std::uint64_t draws);

  const SeqDecision& last() const { return last_; }
  std::size_t looks() const { return looks_; }
  const SequentialPolicy& policy() const { return policy_; }

 private:
  SequentialPolicy policy_;
  std::size_t looks_ = 0;
  SeqDecision last_;
  // Support-saturation state for the paired look()'s missing-mass
  // bound: the observed union-support size and per-side terminal counts
  // at the previous look (cumulative tallies only ever add cells, so an
  // unchanged count means no new cell appeared).
  bool have_prev_ = false;
  std::size_t prev_observed_ = 0;
  double prev_terminal_l_ = 0.0;
  double prev_terminal_r_ = 0.0;
};

}  // namespace cdse
