#pragma once
// Iterative, parallel, prefix-sharing exact cone-measure engine.
//
// The recursive enumerator of sched/cone_measure.hpp deep-copied the
// ExecFragment on every edge (an O(depth) copy per edge, O(depth * edges)
// total) and re-enumerated the entire shared prefix cone for every word
// of the optimal-distinguisher search and every (environment, scheduler)
// cell of the implementation sweeps. This module replaces it with the
// standard exact-model-checking decomposition:
//
//   enumerate_cone     -- an explicit pending-edge stack that push/pops
//       ONE in-place path (ExecFragment::truncate + append). The live
//       stack scales with depth x branching, never with cone size, and
//       the visit order is exactly the recursive pre-order.
//   ParallelConeEngine -- deterministic parallel exact f-dists: the cone
//       is expanded breadth-first to a frontier of independent subtrees,
//       subtrees fan out over the existing ThreadPool on thin
//       SnapshotPsioa views (WarmupPlan + freeze(), lock-free compiled
//       rows), and per-worker ExactDisc partials merge in fixed frontier
//       order. Rational addition is associative and commutative and
//       ExactDisc keeps a canonical sorted form, so the merged measure is
//       bit-identical for ANY worker count.
//   ConeFrontierCache  -- prefix sharing for off-line (word) schedulers:
//       the halted frontier of word w is extended by one letter to give
//       the frontier of w^a, so search_best_word explores the word tree
//       by extending its parent's frontier instead of re-enumerating the
//       cone from the root.
//
//   ReductionPolicy    -- opt-in bisimulation minimization: frozen
//       snapshots collapse to their probabilistic-bisimulation quotient
//       (impl/bisim.hpp + CompiledSnapshot::quotient) before any cone is
//       enumerated, so every engine above runs over blocks instead of
//       raw states -- transparently, with epsilon preserved exactly.
//
// Every path is exact (Rational end to end); determinism is an algebraic
// property of the merge, not a scheduling property of the pool.
// ConeStats counters make the claimed work reduction observable.

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"

namespace cdse {

/// Opt-in snapshot minimization for the exact engines: freeze the
/// system, collapse it to its probabilistic-bisimulation quotient
/// (impl/bisim.hpp + CompiledSnapshot::quotient), and enumerate cones
/// over the blocks instead of the raw states. Blocks share signatures
/// and exact per-action block distributions, so every signature-driven
/// scheduler and trace-functional insight sees the quotient identically
/// -- epsilon is preserved exactly, only the enumerated frame count
/// shrinks. Off by default: the unreduced path stays the differential
/// reference, and custom schedulers/insights that read raw state
/// handles (rather than signatures/traces) void the contract.
struct ReductionPolicy {
  enum class Mode {
    kNone,          ///< enumerate the raw state space (the reference)
    kBisimulation,  ///< quotient frozen snapshots before enumerating
  };

  Mode mode = Mode::kNone;
  /// Warm-up state cap for the reduction's covering walk. When the walk
  /// truncates, reduction falls back to the unreduced path instead of
  /// producing a quotient that cannot cover the cone.
  std::size_t max_states = std::size_t{1} << 20;

  bool enabled() const { return mode == Mode::kBisimulation; }

  static ReductionPolicy none() { return {}; }
  static ReductionPolicy bisimulation() {
    ReductionPolicy p;
    p.mode = Mode::kBisimulation;
    return p;
  }
};

/// One minimized system, ready for any exact engine: `view` is a
/// QuotientPsioa the caller can hand to enumerate_cone /
/// ConeFrontierCache exactly like the original automaton, and
/// `snapshot` backs additional per-worker views for parallel fan-out.
struct ReducedSystem {
  std::shared_ptr<const CompiledSnapshot> snapshot;  ///< the quotient
  std::shared_ptr<MemoPsioa> view;                   ///< QuotientPsioa over it
  std::size_t states = 0;  ///< snapshot states before reduction
  std::size_t blocks = 0;  ///< blocks after reduction
};

/// Warms `automaton` to a covering snapshot (horizon = max_depth, so
/// every state the cone can expand is completely frozen), partitions it
/// by probabilistic bisimulation, and quotients. Returns nullopt when
/// the policy is off or the covering walk hit policy.max_states -- the
/// caller then enumerates the original, so wiring the policy through a
/// checker can never turn a working call into a throwing one. The
/// automaton is warmed through its own memo when it has one (a MemoView
/// otherwise) and must outlive nothing: the returned view holds copies.
std::optional<ReducedSystem> reduce_for_enumeration(
    Psioa& automaton, std::size_t max_depth, const ReductionPolicy& policy);

/// Extends for_each_halted_execution's visit contract with a live
/// in-place path: enumerates the cone of the subtree rooted at `path`
/// (whose cone probability is `prefix_prob`) under `sched`, visiting
/// every halt/leaf event in the recursive enumerator's pre-order. `path`
/// is mutated during the walk and restored to its entry contents before
/// returning (on success); the reference passed to `visit` aliases it,
/// so callers must copy if they retain fragments.
void enumerate_cone(
    Psioa& automaton, Scheduler& sched, std::size_t max_depth,
    ExecFragment& path, const Rational& prefix_prob,
    const std::function<void(const ExecFragment&, const Rational&)>& visit,
    ConeStats* stats = nullptr);

/// The halted frontier of one schedule word w (offline SequenceScheduler
/// semantics, local_only = false): everything the cone of w contributes
/// to an f-dist, split into the part no extension can change and the
/// part an extension re-expands.
struct ConeFrontier {
  struct LiveEntry {
    ExecFragment frag;  ///< consumed the whole word; length == |w|
    Rational prob;      ///< exact cone probability of reaching frag
    Perception perc;    ///< f(frag): its halt contribution under w itself
  };

  /// Contributions settled for every extension of w: depth-capped leaves
  /// and executions that stalled on a disabled mid-word letter.
  ExactDisc<Perception> settled;
  /// Fragments still live at |w|: halted under w, re-expanded under w^a.
  std::vector<LiveEntry> live;
  /// The exact f-dist of w: settled + the live halting mass.
  ExactDisc<Perception> fdist;
  /// Longest |alpha| among settled visit events (pruning bookkeeping).
  std::size_t settled_max_len = 0;
  /// Longest |alpha| over ALL visit events of w's cone -- identical to
  /// the max_reached the per-word enumerator derives, so the search's
  /// stall-pruning rule carries over verbatim.
  std::size_t max_reached = 0;
};

/// Frontier store keyed by schedule word. frontier(w) answers from the
/// cache or builds w's frontier by extending the longest cached prefix
/// one letter at a time (each level touches only the live fragments of
/// its parent -- the shared prefix cone is never re-enumerated). Node
/// storage is a std::map, so returned references stay valid across later
/// insertions and evictions; one thread per cache instance, like the
/// automaton memo layers underneath it.
class ConeFrontierCache {
 public:
  ConeFrontierCache(Psioa& automaton, const InsightFunction& f,
                    std::size_t max_depth);

  /// The frontier of `word` (computed and cached on miss, together with
  /// every missing prefix level on the way down).
  const ConeFrontier& frontier(const std::vector<ActionId>& word);

  /// Drops one cached word (no-op when absent). The searches evict a
  /// child's frontier as soon as its subtree is exhausted, keeping the
  /// cache O(depth) while ancestors of the active word stay shared.
  void evict(const std::vector<ActionId>& word);

  std::size_t size() const { return cache_.size(); }
  const ConeStats& stats() const { return stats_; }

 private:
  const ConeFrontier& insert(const std::vector<ActionId>& word,
                             ConeFrontier fr);
  ConeFrontier root_frontier();
  ConeFrontier extend(const ConeFrontier& parent, ActionId a);

  Psioa& automaton_;
  const InsightFunction& f_;
  std::size_t max_depth_;
  MemoPsioa* memo_ = nullptr;  // compiled-row fast path when available
  std::map<std::vector<ActionId>, ConeFrontier> cache_;
  ConeStats stats_;
};

// -- exact prefix strata (importance splitting) -----------------------------

/// One live stratum of a depth-capped exact expansion: a prefix the
/// cone can still extend, carrying its exact cone probability. The
/// importance-splitting estimator conditions a BatchSampler on `frag`
/// and reweights the conditional tallies by `prob` (Rao-Blackwell over
/// the prefix partition: the stratified estimate is unbiased for ANY
/// per-stratum sample allocation that touches every stratum).
struct PrefixStratum {
  ExecFragment frag;
  Rational prob;
};

/// A depth-d exact decomposition of a scheduled cone: everything that
/// terminates before depth d is settled exactly (it contributes to the
/// full-depth f-dist verbatim); everything still running at depth d
/// becomes a live stratum. settled_mass + live_mass == 1 exactly.
struct PrefixStrata {
  ExactDisc<Perception> settled;
  std::vector<PrefixStratum> live;
  Rational live_mass;
};

/// Expands the cone of `automaton` under `sched` exactly to
/// `split_depth` (enumerate_cone, deterministic pre-order -- so stratum
/// indices are stable across runs and worker counts): scheduler halts
/// below the cap settle into the f-dist, depth-capped fragments become
/// live strata with their full remaining cone mass. split_depth == 0
/// yields one live stratum (the start fragment) with mass 1.
PrefixStrata expand_prefix_strata(Psioa& automaton, Scheduler& sched,
                                  const InsightFunction& f,
                                  std::size_t split_depth,
                                  ConeStats* stats = nullptr);

/// The same decomposition read off a cached word frontier (offline word
/// schedulers): settled contributions carry over verbatim and every
/// live frontier fragment becomes a stratum. Lets the splitting
/// estimator reuse ConeFrontierCache partial cone masses instead of
/// re-enumerating the prefix cone per word.
PrefixStrata strata_from_frontier(const ConeFrontier& frontier);

/// Deterministic parallel exact f-dists over one frozen snapshot.
/// prepare() warms one instance (WarmupPlan, as ParallelSampler does) and
/// freezes its compiled tables; exact_fdist() expands the cone
/// breadth-first on the calling thread until at least `frontier_target`
/// independent subtrees exist (default 4x pool size), fans the subtrees
/// across the pool on thin SnapshotPsioa views, and merges the exact
/// partials in fixed frontier order. Exactness makes the merge
/// order-insensitive, so the result is bit-identical to the serial
/// enumerator at every worker count.
class ParallelConeEngine {
 public:
  /// With an enabled `policy`, prepare() additionally minimizes the
  /// frozen snapshot (bisimulation quotient) and exact_fdist() runs the
  /// identical expansion/fan-out over QuotientPsioa views -- same exact
  /// result, fewer frames. Reduction silently falls back to the raw
  /// snapshot when the warm-up did not cover the enumeration depth
  /// (plan.horizon < max_depth) or truncated on plan.max_states.
  ParallelConeEngine(PsioaFactory make_automaton, SchedulerFactory make_sched,
                     ReductionPolicy policy = {});

  /// Warms and freezes one instance. Use the depth you will enumerate at.
  void prepare(const WarmupPlan& plan, std::size_t max_depth);
  bool prepared() const { return sampler_.prepared(); }

  /// True when prepare() produced (and exact_fdist() will use) a
  /// minimized snapshot rather than the raw one.
  bool reduced() const { return quotient_.reduced != nullptr; }

  ExactDisc<Perception> exact_fdist(const InsightFunction& f,
                                    std::size_t max_depth, ThreadPool& pool,
                                    std::size_t frontier_target = 0);

  /// Counters of the most recent exact_fdist (splits = subtrees fanned
  /// out; frames/leaves/halts summed over the workers + the expansion;
  /// quotient_states/quotient_blocks filled when reduced()).
  const ConeStats& last_stats() const { return stats_; }

 private:
  ParallelSampler sampler_;
  SchedulerFactory make_sched_;
  ReductionPolicy policy_;
  ConeStats stats_;
  QuotientSnapshot quotient_;
};

}  // namespace cdse
