#pragma once
// Insight functions and external perception (Def 3.4, Def 3.5).
//
// An insight function maps a (finite, halted) execution of E||A to a
// value in a perception space that depends on E only -- the device the
// paper uses to compare systems through an environment's eyes. We use
// strings as the perception space G_E; f-dist is then an (exact or
// sampled) discrete measure over strings.
//
// Implementations:
//   TraceInsight  -- the full external trace (the classic trace function).
//   AcceptInsight -- "1" iff a designated accept action occurs ([3]/[4]).
//   PrintInsight  -- the trace restricted to a designated action set
//                    (the print function of [7]; the set plays the role
//                    of the environment's dedicated print actions).
//
// All three are stable by composition (Def 3.7) *when their designated
// actions belong to the environment*: composing a context B onto A never
// changes what they report about E's actions. Tests verify this.

#include <string>

#include "psioa/execution.hpp"

namespace cdse {

using Perception = std::string;

class InsightFunction {
 public:
  virtual ~InsightFunction() = default;
  virtual Perception apply(Psioa& automaton,
                           const ExecFragment& alpha) const = 0;
  virtual std::string name() const = 0;
};

class TraceInsight : public InsightFunction {
 public:
  Perception apply(Psioa& automaton, const ExecFragment& alpha) const override;
  std::string name() const override { return "trace"; }
};

class AcceptInsight : public InsightFunction {
 public:
  explicit AcceptInsight(ActionId accept_action) : acc_(accept_action) {}
  Perception apply(Psioa& automaton, const ExecFragment& alpha) const override;
  std::string name() const override { return "accept"; }

 private:
  ActionId acc_;
};

class PrintInsight : public InsightFunction {
 public:
  explicit PrintInsight(ActionSet print_actions)
      : print_(std::move(print_actions)) {}
  Perception apply(Psioa& automaton, const ExecFragment& alpha) const override;
  std::string name() const override { return "print"; }

 private:
  ActionSet print_;
};

}  // namespace cdse
