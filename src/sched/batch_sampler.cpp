#include "sched/batch_sampler.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

namespace cdse {

namespace {

/// One step of some execution's history: the parent-pointer path tree
/// all trajectory classes share. Node 0 is the root (start state, no
/// incoming action).
struct PathNode {
  std::int32_t parent;
  ActionId a;
  State q;
};

/// A finished trajectory class: `count` executions whose whole history
/// is the root-to-`node` path.
struct TerminalClass {
  std::int32_t node;
  std::uint64_t count;
};

struct BatchRun {
  std::vector<PathNode> nodes;
  std::vector<TerminalClass> terminal;
};

/// Expands a path-tree node back into the ExecFragment it denotes.
ExecFragment fragment_of(const std::vector<PathNode>& nodes,
                         std::int32_t leaf) {
  std::vector<std::int32_t> chain;
  for (std::int32_t v = leaf; v >= 0; v = nodes[v].parent) {
    chain.push_back(v);
  }
  ExecFragment alpha = ExecFragment::starting_at(nodes[chain.back()].q);
  for (std::size_t k = chain.size() - 1; k-- > 0;) {
    alpha.append(nodes[chain[k]].a, nodes[chain[k]].q);
  }
  return alpha;
}

/// The lockstep core: steps `n` executions as trajectory classes until
/// every one has halted or reached max_depth. All grouping, draw and
/// split orders are deterministic functions of (rng stream, n,
/// max_depth), so two runs at the same seed produce identical trees.
BatchRun run_batch(Psioa& automaton, Scheduler& sched, Xoshiro256& rng,
                   std::size_t n, std::size_t max_depth, BatchStats& st) {
  BatchRun out;
  if (n == 0) return out;
  // Compiled-row fast path mirrors sample_execution's hoisted detection.
  auto* memo = dynamic_cast<MemoPsioa*>(&automaton);
  if (memo != nullptr && !memo->memoization_enabled()) memo = nullptr;

  const State q0 = automaton.start_state();
  out.nodes.push_back(PathNode{-1, kInvalidAction, q0});

  // Live classes, structure-of-arrays; every class in the block has
  // walked exactly `depth` steps (lockstep invariant).
  std::vector<State> cls_state{q0};
  std::vector<std::int32_t> cls_node{0};
  std::vector<std::uint64_t> cls_count{static_cast<std::uint64_t>(n)};
  std::vector<State> nxt_state;
  std::vector<std::int32_t> nxt_node;
  std::vector<std::uint64_t> nxt_count;

  std::vector<std::size_t> order;
  std::vector<std::uint64_t> act_tally;
  std::vector<std::uint64_t> tgt_tally;

  for (std::size_t depth = 0; depth < max_depth && !cls_state.empty();
       ++depth) {
    ++st.rounds;
    st.classes_peak = std::max(st.classes_peak, cls_state.size());
    st.class_steps += cls_state.size();

    // Deterministic grouping: classes sorted by (state, node id). Node
    // ids are allocated in deterministic order, so the whole permutation
    // is reproducible; runs of equal state share one row fetch.
    order.resize(cls_state.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                if (cls_state[x] != cls_state[y]) {
                  return cls_state[x] < cls_state[y];
                }
                return cls_node[x] < cls_node[y];
              });

    nxt_state.clear();
    nxt_node.clear();
    nxt_count.clear();

    std::size_t i = 0;
    while (i < order.size()) {
      const State q = cls_state[order[i]];
      // One scheduler row per (state, depth) run. The synthetic fragment
      // carries the true last state and length; interior steps are dummy
      // padding (see the scheduler contract in the header).
      ExecFragment synth = ExecFragment::starting_at(q);
      for (std::size_t k = 0; k < depth; ++k) synth.append(kInvalidAction, q);
      const ChoiceRow* choice = sched.choice_row(automaton, synth);
      ++st.choice_lookups;

      std::size_t j = i;
      if (choice->empty()) {
        for (; j < order.size() && cls_state[order[j]] == q; ++j) {
          out.terminal.push_back(
              {cls_node[order[j]], cls_count[order[j]]});
        }
        i = j;
        continue;
      }

      const std::size_t n_actions = choice->actions.size();
      const std::size_t n_slots = choice->alias.size();
      // Transition rows of this run, resolved on first use. Memo rows
      // live in node-stable maps; fallback rows (no compiled engine)
      // are compiled once per run into a deque for address stability.
      std::vector<const CompiledRow*> rows(n_actions, nullptr);
      std::deque<CompiledRow> row_store;
      act_tally.assign(n_slots, 0);

      for (; j < order.size() && cls_state[order[j]] == q; ++j) {
        const std::size_t c = order[j];
        std::fill(act_tally.begin(), act_tally.end(), 0);
        std::uint64_t halted = 0;
        for (std::uint64_t k = 0; k < cls_count[c]; ++k) {
          ++st.action_draws;
          const std::size_t slot =
              choice->alias.pick(rng.below(n_slots), rng.uniform());
          if (slot < n_actions) {
            ++act_tally[slot];
          } else {
            ++halted;  // the residual-mass halt slot
          }
        }
        if (halted > 0) out.terminal.push_back({cls_node[c], halted});
        for (std::size_t s = 0; s < n_actions; ++s) {
          if (act_tally[s] == 0) continue;
          const ActionId a = choice->actions[s];
          if (rows[s] == nullptr) {
            ++st.row_lookups;
            if (memo != nullptr) {
              rows[s] = &memo->compiled_row(q, a);
            } else {
              rows[s] = &row_store.emplace_back(
                  CompiledRow::compile(automaton.transition(q, a)));
            }
          }
          const CompiledRow& row = *rows[s];
          const std::size_t n_targets = row.targets.size();
          tgt_tally.assign(n_targets, 0);
          for (std::uint64_t k = 0; k < act_tally[s]; ++k) {
            ++st.target_draws;
            ++tgt_tally[row.alias.pick(rng.below(n_targets), rng.uniform())];
          }
          for (std::size_t t = 0; t < n_targets; ++t) {
            if (tgt_tally[t] == 0) continue;
            const std::int32_t child =
                static_cast<std::int32_t>(out.nodes.size());
            out.nodes.push_back(PathNode{cls_node[c], a, row.targets[t]});
            nxt_state.push_back(row.targets[t]);
            nxt_node.push_back(child);
            nxt_count.push_back(tgt_tally[t]);
          }
        }
      }
      i = j;
    }
    cls_state.swap(nxt_state);
    cls_node.swap(nxt_node);
    cls_count.swap(nxt_count);
  }
  // Depth exhausted: survivors finish as terminal classes.
  for (std::size_t c = 0; c < cls_state.size(); ++c) {
    out.terminal.push_back({cls_node[c], cls_count[c]});
  }
  st.distinct_executions += out.terminal.size();
  return out;
}

}  // namespace

std::vector<ExecFragment> sample_executions(Psioa& automaton,
                                            Scheduler& sched, Xoshiro256& rng,
                                            std::size_t n,
                                            std::size_t max_depth,
                                            BatchStats* stats) {
  BatchStats local;
  const BatchRun run =
      run_batch(automaton, sched, rng, n, max_depth, stats ? *stats : local);
  std::vector<ExecFragment> out;
  out.reserve(n);
  for (const TerminalClass& tc : run.terminal) {
    ExecFragment alpha = fragment_of(run.nodes, tc.node);
    for (std::uint64_t k = 0; k + 1 < tc.count; ++k) out.push_back(alpha);
    out.push_back(std::move(alpha));
  }
  return out;
}

Disc<Perception, double> batched_sample_counts(Psioa& automaton,
                                               Scheduler& sched,
                                               const InsightFunction& f,
                                               std::size_t trials,
                                               Xoshiro256& rng,
                                               std::size_t max_depth,
                                               BatchStats* stats) {
  BatchStats local;
  const BatchRun run = run_batch(automaton, sched, rng, trials, max_depth,
                                 stats ? *stats : local);
  Disc<Perception, double> counts;
  for (const TerminalClass& tc : run.terminal) {
    counts.add(f.apply(automaton, fragment_of(run.nodes, tc.node)),
               static_cast<double>(tc.count));
  }
  return counts;
}

Disc<Perception, double> sample_fdist_batched(Psioa& automaton,
                                              Scheduler& sched,
                                              const InsightFunction& f,
                                              std::size_t trials,
                                              std::uint64_t seed,
                                              std::size_t max_depth,
                                              BatchStats* stats) {
  Xoshiro256 rng(seed);
  const Disc<Perception, double> counts = batched_sample_counts(
      automaton, sched, f, trials, rng, max_depth, stats);
  Disc<Perception, double> dist;
  for (const auto& [perc, count] : counts.entries()) {
    dist.add(perc, count / static_cast<double>(trials));
  }
  return dist;
}

}  // namespace cdse
