#include "sched/batch_sampler.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <utility>

namespace cdse {

namespace {

/// Draws resolved per bulk fill by the block kernel. Large enough to
/// amortize dispatch and fill overhead, small enough to keep the three
/// scratch buffers (~64 KiB total) in L2.
constexpr std::uint64_t kDrawBlock = 4096;

}  // namespace

BatchSampler::BatchSampler(Psioa& automaton, Scheduler& sched,
                           std::size_t trials, const Xoshiro256& rng,
                           std::size_t max_depth, BatchKernel kernel)
    : automaton_(automaton),
      sched_(sched),
      trials_(trials),
      max_depth_(max_depth),
      kernel_(kernel),
      rng_(rng) {
  // Compiled-row fast path mirrors sample_execution's hoisted detection.
  memo_ = dynamic_cast<MemoPsioa*>(&automaton_);
  if (memo_ != nullptr && !memo_->memoization_enabled()) memo_ = nullptr;

  if (kernel_ == BatchKernel::kBlock) {
    // Pinned derivation: one draw from the scalar stream seeds the lane
    // block, so the block schedule is a pure function of the stream.
    block_.emplace(rng_());
  }

  const State q0 = automaton_.start_state();
  nodes_.push_back(PathNode{-1, kInvalidAction, q0});
  if (trials_ > 0) {
    cls_state_.push_back(q0);
    cls_node_.push_back(0);
    cls_count_.push_back(static_cast<std::uint64_t>(trials_));
  }
}

BatchSampler::BatchSampler(Psioa& automaton, Scheduler& sched,
                           std::size_t trials, const Xoshiro256& rng,
                           std::size_t max_depth, const ExecFragment& prefix,
                           BatchKernel kernel)
    : automaton_(automaton),
      sched_(sched),
      trials_(trials),
      max_depth_(max_depth),
      kernel_(kernel),
      rng_(rng),
      prefix_(prefix) {
  memo_ = dynamic_cast<MemoPsioa*>(&automaton_);
  if (memo_ != nullptr && !memo_->memoization_enabled()) memo_ = nullptr;
  if (kernel_ == BatchKernel::kBlock) block_.emplace(rng_());

  // All trials start as one class at the prefix's last state; depth_
  // counts absolute execution length, so scheduler rows and the
  // max_depth cap behave exactly as in an unconditioned run that
  // happened to walk this prefix.
  depth_ = prefix.length();
  const State q0 = prefix.lstate();
  nodes_.push_back(PathNode{-1, kInvalidAction, q0});
  if (trials_ > 0) {
    cls_state_.push_back(q0);
    cls_node_.push_back(0);
    cls_count_.push_back(static_cast<std::uint64_t>(trials_));
  }
}

void BatchSampler::push_terminal(std::int32_t node, std::uint64_t count) {
  terminal_.push_back(TerminalClass{node, count});
  terminal_trials_ += count;
  ++stats_.distinct_executions;
}

void BatchSampler::flush_survivors() {
  for (std::size_t c = 0; c < cls_state_.size(); ++c) {
    push_terminal(cls_node_[c], cls_count_[c]);
  }
  cls_state_.clear();
  cls_node_.clear();
  cls_count_.clear();
  flushed_ = true;
}

void BatchSampler::tally_draws(const AliasTable& alias, std::uint64_t count,
                               std::vector<std::uint64_t>& tally) {
  const std::size_t n_slots = alias.size();
  if (kernel_ == BatchKernel::kPerDraw) {
    // The PR-8 reference loop: two scalar RNG calls per logical draw.
    for (std::uint64_t k = 0; k < count; ++k) {
      ++tally[alias.pick(rng_.below(n_slots), rng_.uniform())];
    }
    return;
  }
  if (n_slots == 1) {
    // Singleton elision: one slot means the draw is determined; spend no
    // RNG at all. (Deterministic transitions dominate the stack
    // workloads, so this skips most of the logical draw volume.)
    tally[0] += count;
    stats_.singleton_skips += count;
    return;
  }
  const auto bound = static_cast<std::uint32_t>(n_slots);
  std::uint64_t left = count;
  while (left > 0) {
    const auto m = static_cast<std::size_t>(std::min(left, kDrawBlock));
    if (idx_buf_.size() < m) {
      idx_buf_.resize(m);
      u_buf_.resize(m);
      out_buf_.resize(m);
    }
    stats_.rejection_redraws += block_->fill_below(idx_buf_.data(), m, bound);
    block_->fill_uniform(u_buf_.data(), m);
    alias.pick_block(idx_buf_.data(), u_buf_.data(), out_buf_.data(), m);
    for (std::size_t k = 0; k < m; ++k) ++tally[out_buf_[k]];
    ++stats_.blocks_filled;
    stats_.block_draws += 2 * static_cast<std::uint64_t>(m);
    left -= m;
  }
}

void BatchSampler::one_round() {
  ++stats_.rounds;
  stats_.classes_peak = std::max(stats_.classes_peak, cls_state_.size());
  stats_.class_steps += cls_state_.size();

  // Deterministic grouping: classes sorted by (state, node id). Node ids
  // are allocated in deterministic order, so the whole permutation is
  // reproducible; runs of equal state share one row fetch.
  order_.resize(cls_state_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [&](std::size_t x, std::size_t y) {
    if (cls_state_[x] != cls_state_[y]) return cls_state_[x] < cls_state_[y];
    return cls_node_[x] < cls_node_[y];
  });

  nxt_state_.clear();
  nxt_node_.clear();
  nxt_count_.clear();

  std::size_t i = 0;
  while (i < order_.size()) {
    const State q = cls_state_[order_[i]];
    // One scheduler row per (state, depth) run. The synthetic fragment
    // carries the true last state and length; interior steps are dummy
    // padding (see the scheduler contract in the header).
    ExecFragment synth = ExecFragment::starting_at(q);
    for (std::size_t k = 0; k < depth_; ++k) synth.append(kInvalidAction, q);
    const ChoiceRow* choice = sched_.choice_row(automaton_, synth);
    ++stats_.choice_lookups;

    std::size_t j = i;
    if (choice->empty()) {
      for (; j < order_.size() && cls_state_[order_[j]] == q; ++j) {
        push_terminal(cls_node_[order_[j]], cls_count_[order_[j]]);
      }
      i = j;
      continue;
    }

    const std::size_t n_actions = choice->actions.size();
    const std::size_t n_slots = choice->alias.size();
    // Transition rows of this run, resolved on first use. Memo rows live
    // in node-stable maps; fallback rows (no compiled engine) are
    // compiled once per run into a deque for address stability.
    std::vector<const CompiledRow*> rows(n_actions, nullptr);
    std::deque<CompiledRow> row_store;

    for (; j < order_.size() && cls_state_[order_[j]] == q; ++j) {
      const std::size_t c = order_[j];
      act_tally_.assign(n_slots, 0);
      stats_.action_draws += cls_count_[c];
      tally_draws(choice->alias, cls_count_[c], act_tally_);
      // Slots past the action list are the residual-mass halt slot.
      std::uint64_t halted = 0;
      for (std::size_t s = n_actions; s < n_slots; ++s) halted += act_tally_[s];
      if (halted > 0) push_terminal(cls_node_[c], halted);
      for (std::size_t s = 0; s < n_actions; ++s) {
        if (act_tally_[s] == 0) continue;
        const ActionId a = choice->actions[s];
        if (rows[s] == nullptr) {
          ++stats_.row_lookups;
          if (memo_ != nullptr) {
            rows[s] = &memo_->compiled_row(q, a);
          } else {
            rows[s] = &row_store.emplace_back(
                CompiledRow::compile(automaton_.transition(q, a)));
          }
        }
        const CompiledRow& row = *rows[s];
        const std::size_t n_targets = row.targets.size();
        tgt_tally_.assign(n_targets, 0);
        stats_.target_draws += act_tally_[s];
        tally_draws(row.alias, act_tally_[s], tgt_tally_);
        for (std::size_t t = 0; t < n_targets; ++t) {
          if (tgt_tally_[t] == 0) continue;
          const auto child = static_cast<std::int32_t>(nodes_.size());
          nodes_.push_back(PathNode{cls_node_[c], a, row.targets[t]});
          nxt_state_.push_back(row.targets[t]);
          nxt_node_.push_back(child);
          nxt_count_.push_back(tgt_tally_[t]);
        }
      }
    }
    i = j;
  }
  cls_state_.swap(nxt_state_);
  cls_node_.swap(nxt_node_);
  cls_count_.swap(nxt_count_);
  ++depth_;
}

std::size_t BatchSampler::run_rounds(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && !flushed_) {
    if (cls_state_.empty() || depth_ >= max_depth_) {
      // Halted out, or depth exhausted: survivors finish as terminal.
      flush_survivors();
      break;
    }
    one_round();
    ++ran;
    if (cls_state_.empty() || depth_ >= max_depth_) flush_survivors();
  }
  return ran;
}

void BatchSampler::run_to_completion() {
  while (!flushed_) {
    run_rounds(std::numeric_limits<std::size_t>::max());
  }
}

const Disc<Perception, double>& BatchSampler::accumulate_counts(
    const InsightFunction& f) {
  for (; counted_ < terminal_.size(); ++counted_) {
    const TerminalClass& tc = terminal_[counted_];
    const Perception perc = f.apply(automaton_, fragment_of(tc.node));
    const double count = static_cast<double>(tc.count);
    counts_.add(perc, count);
    if (track_deltas_) delta_.add(perc, count);
  }
  return counts_;
}

Disc<Perception, double> BatchSampler::drain_count_delta() {
  Disc<Perception, double> out = std::move(delta_);
  delta_ = Disc<Perception, double>{};
  return out;
}

std::vector<ExecFragment> BatchSampler::fragments() const {
  std::vector<ExecFragment> out;
  out.reserve(trials_);
  for (const TerminalClass& tc : terminal_) {
    ExecFragment alpha = fragment_of(tc.node);
    for (std::uint64_t k = 0; k + 1 < tc.count; ++k) out.push_back(alpha);
    out.push_back(std::move(alpha));
  }
  return out;
}

ExecFragment BatchSampler::fragment_of(std::int32_t leaf) const {
  std::vector<std::int32_t> chain;
  for (std::int32_t v = leaf; v >= 0; v = nodes_[v].parent) {
    chain.push_back(v);
  }
  // Conditioned runs graft the sampled suffix onto a copy of the prefix
  // (the root node stands in for prefix.lstate(), so the chain skips it
  // either way).
  ExecFragment alpha = prefix_.has_value()
                           ? *prefix_
                           : ExecFragment::starting_at(nodes_[chain.back()].q);
  for (std::size_t k = chain.size() - 1; k-- > 0;) {
    alpha.append(nodes_[chain[k]].a, nodes_[chain[k]].q);
  }
  return alpha;
}

std::vector<ExecFragment> sample_executions(Psioa& automaton,
                                            Scheduler& sched, Xoshiro256& rng,
                                            std::size_t n,
                                            std::size_t max_depth,
                                            BatchStats* stats,
                                            BatchKernel kernel) {
  BatchSampler bs(automaton, sched, n, rng, max_depth, kernel);
  bs.run_to_completion();
  rng = bs.scalar_rng();
  if (stats != nullptr) *stats += bs.stats();
  return bs.fragments();
}

Disc<Perception, double> batched_sample_counts(
    Psioa& automaton, Scheduler& sched, const InsightFunction& f,
    std::size_t trials, Xoshiro256& rng, std::size_t max_depth,
    BatchStats* stats, BatchKernel kernel) {
  BatchSampler bs(automaton, sched, trials, rng, max_depth, kernel);
  bs.run_to_completion();
  rng = bs.scalar_rng();
  if (stats != nullptr) *stats += bs.stats();
  return bs.accumulate_counts(f);
}

Disc<Perception, double> sample_fdist_batched(
    Psioa& automaton, Scheduler& sched, const InsightFunction& f,
    std::size_t trials, std::uint64_t seed, std::size_t max_depth,
    BatchStats* stats, BatchKernel kernel) {
  Xoshiro256 rng(seed);
  const Disc<Perception, double> counts = batched_sample_counts(
      automaton, sched, f, trials, rng, max_depth, stats, kernel);
  Disc<Perception, double> dist;
  for (const auto& [perc, count] : counts.entries()) {
    dist.add(perc, count / static_cast<double>(trials));
  }
  return dist;
}

}  // namespace cdse
