#pragma once
// Monte-Carlo execution sampling, serial and parallel.
//
// The exact enumerator is the ground truth for small systems; sampling
// covers the ones whose execution trees are too large (the family sweeps
// of experiment E8 at larger k, the throughput experiment E10). Parallel
// sampling distributes trials over a ThreadPool using *factories*: each
// worker gets its own automaton + scheduler instance and its own RNG
// stream, so no synchronization is needed and results are reproducible
// for a fixed seed regardless of thread count.

#include <cstdint>

#include "sched/insight.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cdse {

/// Samples one execution under the scheduler, halting when the scheduler
/// halts or at max_depth.
ExecFragment sample_execution(Psioa& automaton, Scheduler& sched,
                              Xoshiro256& rng, std::size_t max_depth);

/// Serial estimate of f-dist from `trials` samples.
Disc<Perception, double> sample_fdist(Psioa& automaton, Scheduler& sched,
                                      const InsightFunction& f,
                                      std::size_t trials, std::uint64_t seed,
                                      std::size_t max_depth);

/// Parallel estimate. Each chunk c uses stream c of `seed`; results are
/// merged deterministically (chunk partitioning depends on pool size, so
/// cross-pool-size reproducibility holds at fixed pool size; per-seed
/// statistical validity always holds).
Disc<Perception, double> parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool);

}  // namespace cdse
