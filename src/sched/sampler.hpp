#pragma once
// Monte-Carlo execution sampling, serial and parallel.
//
// The exact enumerator is the ground truth for small systems; sampling
// covers the ones whose execution trees are too large (the family sweeps
// of experiment E8 at larger k, the throughput experiment E10). The
// sampling hot path is compiled: schedulers serve ChoiceRow double-CDFs
// and memoized automata (MemoPsioa) serve CompiledRow transition CDFs,
// so steady-state sampling performs no Rational arithmetic and never
// re-derives a composed signature. Both compilations preserve the
// historical partial-sum walk, so sampled results are draw-for-draw
// identical at fixed seed. Parallel sampling distributes trials over a
// ThreadPool using *factories*: each worker gets its own automaton +
// scheduler instance (warming its own memo tables) and its own RNG
// stream, so no synchronization is needed and results are reproducible
// for a fixed seed regardless of thread count.
//
// The guarded variant hardens the fan-out for hostile workloads (fault
// sweeps, foreign automata): per-chunk wall-clock deadlines checked
// between trials, and retry-with-seed-rotation when a chunk's automaton
// or scheduler throws. It degrades to a partial, still-normalized
// estimate plus a SampleReport instead of tearing the experiment down.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "psioa/snapshot.hpp"
#include "sched/batch_sampler.hpp"
#include "sched/insight.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cdse {

/// Which stepping engine the parallel estimators drive per chunk.
///   kSerial        -- one execution at a time, the historical
///                     draw-for-draw reproducible reference path.
///   kBatched       -- lockstep trajectory-class batches over the rows'
///                     alias tables (sched/batch_sampler.hpp), stepping
///                     with the vectorized block draw kernel
///                     (BatchKernel::kBlock): bulk RNG fills, SoA alias
///                     gathers, singleton elision. Distribution-
///                     equivalent to kSerial at the same seed and trial
///                     count, but not draw-for-draw aligned; the
///                     chi-square harness (tests/stat_util.hpp) pins the
///                     equivalence. Requires schedulers whose choice is
///                     a function of (lstate, |alpha|).
///   kBatchedPerDraw -- the same lockstep engine stepping with the PR-8
///                     scalar per-draw kernel (BatchKernel::kPerDraw);
///                     the differential reference and the "before" row
///                     of the E21 bench.
enum class SamplingMode { kSerial, kBatched, kBatchedPerDraw };

/// Samples one execution under the scheduler, halting when the scheduler
/// halts or at max_depth.
ExecFragment sample_execution(Psioa& automaton, Scheduler& sched,
                              Xoshiro256& rng, std::size_t max_depth);

/// Serial estimate of f-dist from `trials` samples.
Disc<Perception, double> sample_fdist(Psioa& automaton, Scheduler& sched,
                                      const InsightFunction& f,
                                      std::size_t trials, std::uint64_t seed,
                                      std::size_t max_depth);

/// Parallel estimate. Each chunk c uses stream c of `seed`; results are
/// merged deterministically (chunk partitioning depends on pool size, so
/// cross-pool-size reproducibility holds at fixed pool size; per-seed
/// statistical validity always holds).
Disc<Perception, double> parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool,
    SamplingMode mode = SamplingMode::kSerial);

/// Failure policy for the guarded sampler.
struct SampleGuard {
  /// Wall-clock budget per chunk, checked between trials (each trial is
  /// already depth-bounded, so checks are reached). zero() = unlimited.
  std::chrono::milliseconds deadline{0};
  /// How many times a chunk that throws is restarted on a rotated seed
  /// stream before being written off.
  std::size_t max_retries = 0;
};

/// What actually happened during a guarded run.
struct SampleReport {
  bool complete = true;          ///< every requested trial ran
  bool deadline_hit = false;     ///< at least one chunk ran out of time
  std::size_t trials_requested = 0;
  std::size_t trials_done = 0;   ///< trials contributing to the estimate
  std::size_t retries_used = 0;  ///< seed rotations consumed across chunks
  std::string error;             ///< first chunk failure message, "" if none

  explicit operator bool() const { return complete; }
};

/// Hardened parallel estimate: never throws on task failure. Chunks that
/// exceed `guard.deadline` contribute the trials they finished; chunks
/// whose automaton/scheduler throws are retried on rotated seed streams
/// (seed' = seed + (attempt+1)*golden-gamma) up to guard.max_retries, and
/// a throwing attempt's partial trials are discarded as tainted. The
/// returned distribution is normalized over report->trials_done, so it is
/// a valid estimate of the f-dist from however many trials survived.
Disc<Perception, double> guarded_parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, const SampleGuard& guard,
    SampleReport* report);

// -- shared frozen snapshots ------------------------------------------------

/// How to warm an instance before freezing it. Both phases are
/// deterministic: episodes draw from a dedicated stream of `seed`, and
/// the reachable walk expands states in BFS order over sorted action
/// sets -- so two instances warmed with the same plan intern states in
/// the same order and end up with draw-for-draw identical compiled rows.
struct WarmupPlan {
  /// Sampling-driven warm-up episodes run before the exhaustive walk
  /// (they also warm path-dependent scheduler rows).
  std::size_t episodes = 32;
  /// Exhaustive reachable-state walk depth: every (state, action) row
  /// within this horizon is compiled. 0 skips the walk (episodes-only
  /// warm-up; unseen states overflow at sampling time). Set it to the
  /// experiment's max_depth for a fully covered, overflow-free snapshot.
  std::size_t horizon = 0;
  /// Safety cap on the number of states the walk visits.
  std::size_t max_states = std::size_t{1} << 20;
  /// Seed for the warm-up episode stream.
  std::uint64_t seed = 0x5eedULL;
  /// Interning pre-size hint: warm_automaton calls
  /// reserve_interning(min(reserve_states, max_states)) before the first
  /// episode so BFS discovery proceeds without mid-walk rehashes.
  /// Advisory only -- tables still grow past it on demand.
  std::size_t reserve_states = 256;
};

/// Runs `plan` against one instance: episodes first, then the reachable
/// walk (signatures at every visited state, compiled rows and scheduler
/// choice rows below the horizon). Returns the number of states the walk
/// visited (0 when plan.horizon == 0).
std::size_t warm_automaton(MemoPsioa& automaton, Scheduler& sched,
                           const WarmupPlan& plan, std::size_t max_depth);

/// Parallel Monte-Carlo estimation over one shared frozen snapshot:
/// prepare() builds a single warm instance from the factories, runs the
/// warm-up plan, and freezes its compiled tables (and the scheduler's
/// per-state choice rows); sample_fdist() then fans trials over thin
/// SnapshotPsioa views -- no per-worker clone, no per-worker warm-up,
/// one copy of the compiled tables regardless of worker count. Chunking
/// and RNG streams mirror parallel_sample_fdist exactly, so at the same
/// seeds a prepared sampler reproduces the clone-per-worker path
/// draw-for-draw (tests/snapshot_test.cpp pins this).
class ParallelSampler {
 public:
  ParallelSampler(PsioaFactory make_automaton, SchedulerFactory make_sched);

  /// Warms and freezes. `max_depth` bounds the warm-up episodes (use the
  /// depth you will sample at). Subsequent calls re-warm and re-freeze
  /// from scratch.
  void prepare(const WarmupPlan& plan, std::size_t max_depth);
  bool prepared() const { return snapshot_ != nullptr; }

  Disc<Perception, double> sample_fdist(const InsightFunction& f,
                                        std::size_t trials,
                                        std::uint64_t seed,
                                        std::size_t max_depth,
                                        ThreadPool& pool,
                                        SamplingMode mode =
                                            SamplingMode::kSerial);

  /// Progress of one incremental wave, as handed to the wave callback.
  struct WaveReport {
    std::size_t wave = 0;            ///< 1-based wave index
    std::size_t rounds_per_wave = 0; ///< lockstep rounds each chunk stepped
    std::size_t trials_done = 0;     ///< executions terminal so far
    std::size_t trials_requested = 0;
    bool done = false;               ///< every chunk finished
    /// Tally entries folded into the running merge THIS wave: terminal
    /// classes newly discovered across the chunks. The per-wave merge is
    /// a delta-merge (each chunk drains only its fresh tallies), so the
    /// merge work per wave is O(merge_entries), not O(support size x
    /// chunks) -- and sum(merge_entries) over a whole run is bounded by
    /// the run's distinct_executions (BatchStats).
    std::size_t merge_entries = 0;
  };

  /// Called after every wave with the progress report and the partial
  /// estimate (terminal executions so far, normalized over trials_done).
  /// Return false to stop early: remaining waves are skipped and the
  /// partial estimate becomes the result.
  using WaveCallback =
      std::function<bool(const WaveReport&, const Disc<Perception, double>&)>;

  /// Incremental-rounds twin of sample_fdist for the batched modes: each
  /// chunk keeps a persistent BatchSampler and advances it
  /// `rounds_per_wave` lockstep rounds per wave, surfacing the merged
  /// partial tally after every wave -- the hook the sequential
  /// early-stopping estimator consumes. Chunk partition, RNG streams and
  /// merge order mirror sample_fdist exactly, so a run driven to
  /// completion returns a bit-identical distribution to the one-shot
  /// call in the same mode (tests/batch_sampler_test.cpp pins this).
  /// `on_wave` may be null (run to completion silently). kSerial mode
  /// has no round structure and is rejected (std::invalid_argument).
  ///
  /// rounds_per_wave contract: 0 auto-tunes the wave size to target
  /// ~4096 logical draws per wave per chunk -- each round resolves about
  /// two logical draws (action + target) per live trial, so the chosen
  /// value is max(1, 2048 / per_chunk_trials): chunks carrying >= 2048
  /// trials report after every round, small chunks batch enough rounds
  /// that wave overhead (submit + merge + callback) stays amortized.
  /// The auto-tuned value is surfaced in WaveReport::rounds_per_wave.
  /// Any nonzero value is used as given.
  Disc<Perception, double> sample_fdist_incremental(
      const InsightFunction& f, std::size_t trials, std::uint64_t seed,
      std::size_t max_depth, ThreadPool& pool, std::size_t rounds_per_wave,
      const WaveCallback& on_wave = nullptr,
      SamplingMode mode = SamplingMode::kBatched);

  /// A fresh thin worker view / scheduler, as handed to each chunk.
  /// Exposed for the differential tests and for callers integrating the
  /// snapshot into their own fan-out. Requires prepared().
  std::shared_ptr<SnapshotPsioa> worker_view() const;
  SchedulerPtr worker_scheduler() const;

  std::shared_ptr<const CompiledSnapshot> snapshot() const {
    return snapshot_;
  }

  /// Counters summed over the workers of the most recent sample_fdist.
  const SnapshotStats& last_stats() const { return last_stats_; }

  /// Batch counters summed over the workers of the most recent
  /// sample_fdist in kBatched mode (zeroed by kSerial runs).
  const BatchStats& last_batch_stats() const { return last_batch_stats_; }

  /// Interning counters of the warm instance (the handle authority all
  /// views share). Zero-valued before prepare(). Read by the E10 bench
  /// to attribute warm-up memory to the handle store.
  InternStats residue_intern_stats() const;

 private:
  PsioaFactory make_automaton_;
  SchedulerFactory make_sched_;
  std::shared_ptr<MemoPsioa> warm_;
  std::shared_ptr<const CompiledSnapshot> snapshot_;
  std::shared_ptr<SnapshotResidue> residue_;
  std::shared_ptr<const FrozenChoiceTable> choice_rows_;
  SnapshotStats last_stats_;
  BatchStats last_batch_stats_;
};

/// One incremental batched run, exposed as an object so several runs can
/// be interleaved wave by wave -- the paired-consumption shape the
/// sequential epsilon estimator needs (one look compares the LEFT and
/// RIGHT partial tallies at matching trial counts, so neither side may
/// run ahead inside its own callback). sample_fdist_incremental is a
/// thin loop over this class.
///
/// Chunking, RNG streams and merge order mirror the one-shot
/// ParallelSampler::sample_fdist, so final_fdist() of a completed run is
/// bit-identical to the one-shot call in the same mode. The running
/// tally (counts()) is delta-merged: after each wave every chunk drains
/// only the terminal classes it discovered during that wave, so per-wave
/// merge work is O(new entries) -- WaveReport::merge_entries proves it.
/// Integer class counts sum exactly in doubles, so counts() is
/// independent of wave boundaries (and partial_fdist() of the final wave
/// equals the completed tally up to one normalization).
class IncrementalFdistRun {
 public:
  /// Requires sampler.prepared(); holds references to `sampler`, `f` and
  /// `pool` for its lifetime. rounds_per_wave == 0 auto-tunes (see
  /// sample_fdist_incremental). kSerial mode is rejected.
  IncrementalFdistRun(const ParallelSampler& sampler,
                      const InsightFunction& f, std::size_t trials,
                      std::uint64_t seed, std::size_t max_depth,
                      ThreadPool& pool, std::size_t rounds_per_wave = 0,
                      SamplingMode mode = SamplingMode::kBatched);
  ~IncrementalFdistRun();
  IncrementalFdistRun(const IncrementalFdistRun&) = delete;
  IncrementalFdistRun& operator=(const IncrementalFdistRun&) = delete;

  bool done() const { return done_; }
  /// Advances every unfinished chunk by one wave of rounds (fanned over
  /// the pool), delta-merges the fresh tallies, and returns the report.
  /// No-op once done().
  const ParallelSampler::WaveReport& step_wave();
  const ParallelSampler::WaveReport& report() const { return report_; }
  /// The wave size in effect (auto-tuned when 0 was requested).
  std::size_t rounds_per_wave() const { return rounds_per_wave_; }

  std::size_t trials_requested() const { return trials_; }
  std::uint64_t trials_terminal() const;
  /// Running unnormalized per-perception tally (integer-valued counts).
  const Disc<Perception, double>& counts() const { return merged_; }
  /// counts() normalized over the terminal trials (empty when none).
  Disc<Perception, double> partial_fdist() const;
  /// Drives any remaining waves, then merges chunk-major exactly as the
  /// one-shot path does -- bit-identical to sample_fdist in this mode.
  Disc<Perception, double> final_fdist();

  /// Counters summed over the chunks (valid between waves).
  BatchStats batch_stats() const;
  SnapshotStats snapshot_stats() const;

 private:
  struct Chunk;

  const InsightFunction& f_;
  std::size_t trials_;
  ThreadPool& pool_;
  std::size_t rounds_per_wave_ = 1;
  std::vector<Chunk> chunks_;
  Disc<Perception, double> merged_;
  ParallelSampler::WaveReport report_;
  std::size_t wave_ = 0;
  bool done_ = false;
};

}  // namespace cdse
