#pragma once
// Monte-Carlo execution sampling, serial and parallel.
//
// The exact enumerator is the ground truth for small systems; sampling
// covers the ones whose execution trees are too large (the family sweeps
// of experiment E8 at larger k, the throughput experiment E10). The
// sampling hot path is compiled: schedulers serve ChoiceRow double-CDFs
// and memoized automata (MemoPsioa) serve CompiledRow transition CDFs,
// so steady-state sampling performs no Rational arithmetic and never
// re-derives a composed signature. Both compilations preserve the
// historical partial-sum walk, so sampled results are draw-for-draw
// identical at fixed seed. Parallel sampling distributes trials over a
// ThreadPool using *factories*: each worker gets its own automaton +
// scheduler instance (warming its own memo tables) and its own RNG
// stream, so no synchronization is needed and results are reproducible
// for a fixed seed regardless of thread count.
//
// The guarded variant hardens the fan-out for hostile workloads (fault
// sweeps, foreign automata): per-chunk wall-clock deadlines checked
// between trials, and retry-with-seed-rotation when a chunk's automaton
// or scheduler throws. It degrades to a partial, still-normalized
// estimate plus a SampleReport instead of tearing the experiment down.

#include <chrono>
#include <cstdint>
#include <string>

#include "sched/insight.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cdse {

/// Samples one execution under the scheduler, halting when the scheduler
/// halts or at max_depth.
ExecFragment sample_execution(Psioa& automaton, Scheduler& sched,
                              Xoshiro256& rng, std::size_t max_depth);

/// Serial estimate of f-dist from `trials` samples.
Disc<Perception, double> sample_fdist(Psioa& automaton, Scheduler& sched,
                                      const InsightFunction& f,
                                      std::size_t trials, std::uint64_t seed,
                                      std::size_t max_depth);

/// Parallel estimate. Each chunk c uses stream c of `seed`; results are
/// merged deterministically (chunk partitioning depends on pool size, so
/// cross-pool-size reproducibility holds at fixed pool size; per-seed
/// statistical validity always holds).
Disc<Perception, double> parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool);

/// Failure policy for the guarded sampler.
struct SampleGuard {
  /// Wall-clock budget per chunk, checked between trials (each trial is
  /// already depth-bounded, so checks are reached). zero() = unlimited.
  std::chrono::milliseconds deadline{0};
  /// How many times a chunk that throws is restarted on a rotated seed
  /// stream before being written off.
  std::size_t max_retries = 0;
};

/// What actually happened during a guarded run.
struct SampleReport {
  bool complete = true;          ///< every requested trial ran
  bool deadline_hit = false;     ///< at least one chunk ran out of time
  std::size_t trials_requested = 0;
  std::size_t trials_done = 0;   ///< trials contributing to the estimate
  std::size_t retries_used = 0;  ///< seed rotations consumed across chunks
  std::string error;             ///< first chunk failure message, "" if none

  explicit operator bool() const { return complete; }
};

/// Hardened parallel estimate: never throws on task failure. Chunks that
/// exceed `guard.deadline` contribute the trials they finished; chunks
/// whose automaton/scheduler throws are retried on rotated seed streams
/// (seed' = seed + (attempt+1)*golden-gamma) up to guard.max_retries, and
/// a throwing attempt's partial trials are discarded as tainted. The
/// returned distribution is normalized over report->trials_done, so it is
/// a valid estimate of the f-dist from however many trials survived.
Disc<Perception, double> guarded_parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, const SampleGuard& guard,
    SampleReport* report);

}  // namespace cdse
