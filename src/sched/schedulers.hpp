#pragma once
// Concrete scheduler families.
//
// The paper deliberately works with a *broad* scheduler space (Section
// 4.4): it only requires schemas rich enough to be oblivious and
// creation-oblivious where the emulation argument needs them, and bounded
// (Def 4.6) where computational indistinguishability needs run-time caps.
// We provide:
//   UniformScheduler    -- uniform over enabled actions, halts at a depth;
//                          the maximally non-committal baseline.
//   PriorityScheduler   -- deterministic: highest-priority enabled action.
//   SequenceScheduler   -- fully off-line: a fixed action word; halts on
//                          the first letter that is not enabled.
//   TaskScheduler       -- task word in the sense of [3]: each task is an
//                          action set; fires the unique enabled action of
//                          the current task, halts when none or ambiguous.
//   BoundedScheduler    -- Def 4.6 wrapper: never schedules once
//                          |alpha| >= bound.
//   OblivousFnScheduler -- decisions depend only on the action word of
//                          alpha (not on states): the "oblivious in the
//                          sufficient sense" schema of Section 4.4, which
//                          is creation-oblivious for PCA because created
//                          automata never appear in the decision input.

#include <unordered_map>
#include <vector>

#include "sched/scheduler.hpp"

namespace cdse {

/// Per-state ChoiceRow memo shared by the schedulers whose decision is a
/// function of lstate(alpha) only (uniform, priority). The cache is
/// keyed by the automaton instance it was warmed against and clears on
/// a change, so a scheduler reused across automata stays correct.
///
/// An adopted FrozenChoiceTable is consulted first and bypasses the
/// owner check: frozen rows are keyed by State handles, which stay
/// meaningful across the SnapshotPsioa views of one snapshot even though
/// those are distinct instances. States absent from the frozen table
/// fall back to the local (owner-checked) memo.
class StateChoiceCache {
 public:
  template <typename ComputeFn>
  const ChoiceRow* get(Psioa& automaton, State q, ComputeFn&& compute) {
    if (frozen_ != nullptr) {
      auto it = frozen_->rows.find(q);
      if (it != frozen_->rows.end()) return &it->second;
    }
    if (owner_ != &automaton) {
      rows_.clear();
      owner_ = &automaton;
    }
    auto it = rows_.find(q);
    if (it == rows_.end()) {
      it = rows_.emplace(q, ChoiceRow::compile(compute())).first;
    }
    return &it->second;
  }

  void adopt(std::shared_ptr<const FrozenChoiceTable> frozen) {
    frozen_ = std::move(frozen);
  }

  /// Copies the local memo (frozen rows are not duplicated) into a new
  /// immutable table.
  std::shared_ptr<const FrozenChoiceTable> freeze() const {
    auto table = std::make_shared<FrozenChoiceTable>();
    table->rows = rows_;
    return table;
  }

 private:
  Psioa* owner_ = nullptr;
  std::unordered_map<State, ChoiceRow> rows_;
  std::shared_ptr<const FrozenChoiceTable> frozen_;
};

/// The actions a scheduler may fire at q. Def 3.1 allows every enabled
/// action; for *closed* systems (environment included in the composition)
/// the standard discipline is to schedule only locally controlled actions
/// -- outputs and internals -- because a remaining input has no producer
/// and firing it would model a ghost stimulus. Schedulers take a
/// `local_only` flag selecting between the two readings.
ActionSet schedulable_actions(Psioa& automaton, State q, bool local_only);

class UniformScheduler : public Scheduler {
 public:
  explicit UniformScheduler(std::size_t depth_bound, bool local_only = false)
      : bound_(depth_bound), local_only_(local_only) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override;
  const ChoiceRow* choice_row(Psioa& automaton,
                              const ExecFragment& alpha) override;
  std::shared_ptr<const FrozenChoiceTable> freeze_choice_rows()
      const override {
    return cache_.freeze();
  }
  void adopt_choice_rows(
      std::shared_ptr<const FrozenChoiceTable> table) override {
    cache_.adopt(std::move(table));
  }
  std::string name() const override { return "uniform"; }

 private:
  std::size_t bound_;
  bool local_only_;
  StateChoiceCache cache_;
  ChoiceRow halt_row_;
};

class PriorityScheduler : public Scheduler {
 public:
  PriorityScheduler(std::vector<ActionId> priority, std::size_t depth_bound,
                    bool local_only = false)
      : priority_(std::move(priority)),
        bound_(depth_bound),
        local_only_(local_only) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override;
  const ChoiceRow* choice_row(Psioa& automaton,
                              const ExecFragment& alpha) override;
  std::shared_ptr<const FrozenChoiceTable> freeze_choice_rows()
      const override {
    return cache_.freeze();
  }
  void adopt_choice_rows(
      std::shared_ptr<const FrozenChoiceTable> table) override {
    cache_.adopt(std::move(table));
  }
  std::string name() const override { return "priority"; }

 private:
  std::vector<ActionId> priority_;
  std::size_t bound_;
  bool local_only_;
  StateChoiceCache cache_;
  ChoiceRow halt_row_;
};

class SequenceScheduler : public Scheduler {
 public:
  explicit SequenceScheduler(std::vector<ActionId> word,
                             bool local_only = false)
      : word_(std::move(word)), local_only_(local_only) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override;
  std::string name() const override { return "sequence"; }

 private:
  std::vector<ActionId> word_;
  bool local_only_;
};

class TaskScheduler : public Scheduler {
 public:
  explicit TaskScheduler(std::vector<ActionSet> tasks,
                         bool local_only = false)
      : tasks_(std::move(tasks)), local_only_(local_only) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override;
  std::string name() const override { return "task"; }

 private:
  std::vector<ActionSet> tasks_;
  bool local_only_;
};

/// Def 4.6: b-time-bounded wrapper.
class BoundedScheduler : public Scheduler {
 public:
  BoundedScheduler(SchedulerPtr inner, std::size_t bound)
      : inner_(std::move(inner)), bound_(bound) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override;
  const ChoiceRow* choice_row(Psioa& automaton,
                              const ExecFragment& alpha) override;
  // Below the bound the wrapper is transparent, so freezing/adoption
  // passes straight through to the inner scheduler's memo.
  std::shared_ptr<const FrozenChoiceTable> freeze_choice_rows()
      const override {
    return inner_->freeze_choice_rows();
  }
  void adopt_choice_rows(
      std::shared_ptr<const FrozenChoiceTable> table) override {
    inner_->adopt_choice_rows(std::move(table));
  }
  std::string name() const override {
    return "bounded(" + inner_->name() + ")";
  }
  std::size_t bound() const { return bound_; }

 private:
  SchedulerPtr inner_;
  std::size_t bound_;
  ChoiceRow halt_row_;
};

/// Oblivious scheduler defined by a function of the action word and the
/// currently enabled set only.
class ObliviousFnScheduler : public Scheduler {
 public:
  using Fn = std::function<ActionChoice(const std::vector<ActionId>& word,
                                        const ActionSet& enabled)>;
  ObliviousFnScheduler(Fn fn, std::string label)
      : fn_(std::move(fn)), label_(std::move(label)) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override;
  std::string name() const override { return "oblivious(" + label_ + ")"; }

 private:
  Fn fn_;
  std::string label_;
};

/// Measures the longest schedule a scheduler produces from the start
/// state within `max_depth` (exhaustive over its support); used by the
/// dummy-adversary experiment to confirm the q2 = 2*q1 bound of Lemma D.1.
std::size_t max_schedule_length(Psioa& automaton, Scheduler& sched,
                                std::size_t max_depth);

}  // namespace cdse
