#include "sched/sampler.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "psioa/memo.hpp"

namespace cdse {

ExecFragment sample_execution(Psioa& automaton, Scheduler& sched,
                              Xoshiro256& rng, std::size_t max_depth) {
  ExecFragment alpha = ExecFragment::starting_at(automaton.start_state());
  // Memoized automata serve compiled double-CDF rows; the detection is
  // hoisted out of the step loop (once per execution, not per step).
  auto* memo = dynamic_cast<MemoPsioa*>(&automaton);
  if (memo != nullptr && !memo->memoization_enabled()) memo = nullptr;
  while (alpha.length() < max_depth) {
    // Draw over {halt} U actions from the scheduler's compiled row.
    const ChoiceRow* choice = sched.choice_row(automaton, alpha);
    if (choice->empty()) break;
    const ActionId chosen = choice->sample(rng.uniform());
    if (chosen == kInvalidAction) break;  // residual mass: halt
    State next;
    if (memo != nullptr) {
      // Fast path: one cached CDF walk, no Rational arithmetic and no
      // re-derivation of composed signatures or transition products.
      next = memo->compiled_row(alpha.lstate(), chosen).sample(rng.uniform());
    } else {
      const StateDist eta = automaton.transition(alpha.lstate(), chosen);
      const double v = rng.uniform();
      double acc = 0.0;
      next = eta.entries().back().first;
      for (const auto& [q2, w] : eta.entries()) {
        acc += w.to_double();
        if (v < acc) {
          next = q2;
          break;
        }
      }
    }
    alpha.append(chosen, next);
  }
  return alpha;
}

Disc<Perception, double> sample_fdist(Psioa& automaton, Scheduler& sched,
                                      const InsightFunction& f,
                                      std::size_t trials, std::uint64_t seed,
                                      std::size_t max_depth) {
  Disc<Perception, double> dist;
  Xoshiro256 rng(seed);
  const double w = 1.0 / static_cast<double>(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    const ExecFragment alpha =
        sample_execution(automaton, sched, rng, max_depth);
    dist.add(f.apply(automaton, alpha), w);
  }
  return dist;
}

namespace {

// Distinct RNG universe per retry so a rotation cannot collide with any
// chunk stream of a previous attempt.
std::uint64_t rotate_seed(std::uint64_t seed, std::size_t attempt) {
  return seed + static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ULL;
}

BatchKernel kernel_of(SamplingMode mode) {
  return mode == SamplingMode::kBatchedPerDraw ? BatchKernel::kPerDraw
                                               : BatchKernel::kBlock;
}

}  // namespace

Disc<Perception, double> guarded_parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, const SampleGuard& guard,
    SampleReport* report) {
  struct ChunkOutcome {
    Disc<Perception, double> counts;
    std::size_t done = 0;
    std::size_t retries = 0;
    bool timed_out = false;
    std::string error;
  };
  const std::size_t chunks = std::max<std::size_t>(1, pool.size());
  std::vector<ChunkOutcome> outcome(chunks);
  parallel_for_chunks(
      pool, trials,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ChunkOutcome& out = outcome[chunk];
        const std::size_t want = end - begin;
        for (std::size_t attempt = 0;; ++attempt) {
          out.counts = Disc<Perception, double>{};
          out.done = 0;
          out.timed_out = false;
          try {
            PsioaPtr automaton = make_automaton();
            SchedulerPtr sched = make_sched();
            Xoshiro256 rng =
                Xoshiro256::for_stream(rotate_seed(seed, attempt), chunk);
            const auto t0 = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < want; ++i) {
              if (guard.deadline.count() > 0 &&
                  std::chrono::steady_clock::now() - t0 >= guard.deadline) {
                out.timed_out = true;
                break;
              }
              const ExecFragment alpha =
                  sample_execution(*automaton, *sched, rng, max_depth);
              out.counts.add(f.apply(*automaton, alpha), 1.0);
              ++out.done;
            }
            return;
          } catch (const std::exception& e) {
            if (out.error.empty()) out.error = e.what();
          } catch (...) {
            if (out.error.empty()) out.error = "non-standard exception";
          }
          if (attempt >= guard.max_retries) {
            out.counts = Disc<Perception, double>{};
            out.done = 0;
            return;
          }
          ++out.retries;
        }
      });
  SampleReport rep;
  rep.trials_requested = trials;
  for (const auto& c : outcome) {
    rep.trials_done += c.done;
    rep.retries_used += c.retries;
    rep.deadline_hit = rep.deadline_hit || c.timed_out;
    if (rep.error.empty() && !c.error.empty()) rep.error = c.error;
  }
  rep.complete = rep.trials_done == trials;
  Disc<Perception, double> merged;
  if (rep.trials_done > 0) {
    for (const auto& c : outcome) {
      for (const auto& [perc, count] : c.counts.entries()) {
        merged.add(perc, count / static_cast<double>(rep.trials_done));
      }
    }
  }
  if (report != nullptr) *report = rep;
  return merged;
}

Disc<Perception, double> parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, SamplingMode mode) {
  const std::size_t chunks = pool.size();
  std::vector<Disc<Perception, double>> partial(chunks);
  parallel_for_chunks(
      pool, trials,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        PsioaPtr automaton = make_automaton();
        SchedulerPtr sched = make_sched();
        Xoshiro256 rng = Xoshiro256::for_stream(seed, chunk);
        Disc<Perception, double>& out = partial[chunk];
        if (mode != SamplingMode::kSerial) {
          out = batched_sample_counts(*automaton, *sched, f, end - begin,
                                      rng, max_depth, nullptr,
                                      kernel_of(mode));
          return;
        }
        for (std::size_t i = begin; i < end; ++i) {
          const ExecFragment alpha =
              sample_execution(*automaton, *sched, rng, max_depth);
          out.add(f.apply(*automaton, alpha), 1.0);
        }
      });
  Disc<Perception, double> merged;
  for (const auto& p : partial) {
    for (const auto& [perc, count] : p.entries()) {
      merged.add(perc, count / static_cast<double>(trials));
    }
  }
  return merged;
}

// -- shared frozen snapshots ------------------------------------------------

std::size_t warm_automaton(MemoPsioa& automaton, Scheduler& sched,
                           const WarmupPlan& plan, std::size_t max_depth) {
  // Pre-size the interning tables so the BFS below discovers states
  // without mid-walk rehashes (advisory; automata without a handle store
  // ignore it).
  automaton.reserve_interning(std::min(plan.reserve_states, plan.max_states));
  // Phase 1: episodes. Warms the hot region in sampling order and, as a
  // side effect, the scheduler's path-dependent rows. The stream is
  // dedicated so a clone warmed with the same plan replays identically.
  Xoshiro256 rng = Xoshiro256::for_stream(plan.seed, 0);
  for (std::size_t i = 0; i < plan.episodes; ++i) {
    (void)sample_execution(automaton, sched, rng, max_depth);
  }
  if (plan.horizon == 0) return 0;
  // Phase 2: exhaustive reachable walk. BFS over sorted action sets is
  // deterministic, so interning order (and with it the entry order of
  // every compiled CDF) is identical across instances warmed alike.
  std::deque<std::pair<State, std::size_t>> frontier;
  std::unordered_set<State> seen;
  const State q0 = automaton.start_state();
  frontier.emplace_back(q0, 0);
  seen.insert(q0);
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const auto [q, depth] = frontier.front();
    frontier.pop_front();
    ++visited;
    const Signature& sig = automaton.signature_ref(q);
    if (depth >= plan.horizon) continue;
    // Warm the scheduler's per-state row where it keeps one. The
    // synthetic fragment has length 0, which any depth-bounded scheduler
    // treats as "below the bound" -- exactly the regime in which its
    // per-state memo is consulted.
    (void)sched.choice_row(automaton, ExecFragment::starting_at(q));
    for (ActionId a : sig.all()) {
      const CompiledRow& row = automaton.compiled_row(q, a);
      for (State q2 : row.targets) {
        if (seen.size() >= plan.max_states) break;
        if (seen.insert(q2).second) frontier.emplace_back(q2, depth + 1);
      }
    }
  }
  return visited;
}

ParallelSampler::ParallelSampler(PsioaFactory make_automaton,
                                 SchedulerFactory make_sched)
    : make_automaton_(std::move(make_automaton)),
      make_sched_(std::move(make_sched)) {}

void ParallelSampler::prepare(const WarmupPlan& plan, std::size_t max_depth) {
  PsioaPtr p = make_automaton_();
  auto memo = std::dynamic_pointer_cast<MemoPsioa>(p);
  if (memo == nullptr) memo = memoize(std::move(p));  // leaf: caching view
  if (!memo->memoization_enabled()) {
    throw std::logic_error(
        "ParallelSampler: the factory produced an automaton with "
        "memoization disabled; there is nothing to freeze");
  }
  SchedulerPtr sched = make_sched_();
  warm_automaton(*memo, *sched, plan, max_depth);
  warm_ = std::move(memo);
  snapshot_ = warm_->freeze();
  residue_ = std::make_shared<SnapshotResidue>(warm_);
  choice_rows_ = sched->freeze_choice_rows();
  last_stats_ = SnapshotStats{};
}

InternStats ParallelSampler::residue_intern_stats() const {
  if (warm_ == nullptr) return {};
  return warm_->intern_stats();
}

std::shared_ptr<SnapshotPsioa> ParallelSampler::worker_view() const {
  if (!prepared()) {
    throw std::logic_error("ParallelSampler: prepare() before worker_view()");
  }
  return std::make_shared<SnapshotPsioa>(snapshot_, residue_);
}

SchedulerPtr ParallelSampler::worker_scheduler() const {
  SchedulerPtr sched = make_sched_();
  if (choice_rows_ != nullptr) sched->adopt_choice_rows(choice_rows_);
  return sched;
}

Disc<Perception, double> ParallelSampler::sample_fdist(
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, SamplingMode mode) {
  if (!prepared()) {
    throw std::logic_error("ParallelSampler: prepare() before sample_fdist()");
  }
  // Mirrors parallel_sample_fdist chunk for chunk and (in kSerial mode)
  // draw for draw: same static partition, same per-chunk streams, same
  // merge order. The only difference is what backs the automaton each
  // worker drives. kBatched chunks run the lockstep trajectory-class
  // engine over the same frozen snapshot instead.
  const std::size_t chunks = pool.size();
  std::vector<Disc<Perception, double>> partial(chunks);
  std::vector<SnapshotStats> stats(chunks);
  std::vector<BatchStats> bstats(chunks);
  parallel_for_chunks(
      pool, trials,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto view = std::make_shared<SnapshotPsioa>(snapshot_, residue_);
        SchedulerPtr sched = worker_scheduler();
        Xoshiro256 rng = Xoshiro256::for_stream(seed, chunk);
        Disc<Perception, double>& out = partial[chunk];
        if (mode != SamplingMode::kSerial) {
          out = batched_sample_counts(*view, *sched, f, end - begin, rng,
                                      max_depth, &bstats[chunk],
                                      kernel_of(mode));
        } else {
          for (std::size_t i = begin; i < end; ++i) {
            const ExecFragment alpha =
                sample_execution(*view, *sched, rng, max_depth);
            out.add(f.apply(*view, alpha), 1.0);
          }
        }
        stats[chunk] = view->snapshot_stats();
      });
  last_stats_ = SnapshotStats{};
  for (const auto& s : stats) last_stats_ += s;
  last_batch_stats_ = BatchStats{};
  for (const auto& b : bstats) last_batch_stats_ += b;
  Disc<Perception, double> merged;
  for (const auto& p : partial) {
    for (const auto& [perc, count] : p.entries()) {
      merged.add(perc, count / static_cast<double>(trials));
    }
  }
  return merged;
}

Disc<Perception, double> ParallelSampler::sample_fdist_incremental(
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool, std::size_t rounds_per_wave,
    const WaveCallback& on_wave, SamplingMode mode) {
  IncrementalFdistRun run(*this, f, trials, seed, max_depth, pool,
                          rounds_per_wave, mode);
  while (!run.done()) {
    const WaveReport& rep = run.step_wave();
    if (on_wave != nullptr && !on_wave(rep, run.partial_fdist())) {
      break;  // early stop: remaining waves are skipped
    }
  }
  last_stats_ = run.snapshot_stats();
  last_batch_stats_ = run.batch_stats();
  // A completed run re-merges chunk-major (bit-identical to the one-shot
  // path); an early-stopped run returns the normalized running tally.
  return run.done() ? run.final_fdist() : run.partial_fdist();
}

// -- incremental runs -------------------------------------------------------

struct IncrementalFdistRun::Chunk {
  std::shared_ptr<SnapshotPsioa> view;
  SchedulerPtr sched;
  std::optional<BatchSampler> bs;
};

IncrementalFdistRun::IncrementalFdistRun(const ParallelSampler& sampler,
                                         const InsightFunction& f,
                                         std::size_t trials,
                                         std::uint64_t seed,
                                         std::size_t max_depth,
                                         ThreadPool& pool,
                                         std::size_t rounds_per_wave,
                                         SamplingMode mode)
    : f_(f), trials_(trials), pool_(pool) {
  if (!sampler.prepared()) {
    throw std::logic_error(
        "IncrementalFdistRun: prepare() the sampler before running");
  }
  if (mode == SamplingMode::kSerial) {
    throw std::invalid_argument(
        "IncrementalFdistRun: kSerial has no round structure; use a "
        "batched mode");
  }
  const BatchKernel kernel = kernel_of(mode);

  // Chunk partition and streams mirror parallel_for_chunks / the
  // one-shot sample_fdist exactly: min(pool, trials) chunks (at least
  // one), chunk c sized trials/chunks plus one of the trials%chunks
  // remainders, stream c of `seed`. That makes a run driven to
  // completion merge the exact same per-chunk count tallies in the
  // exact same order as the one-shot call, hence a bit-identical
  // result.
  std::size_t chunks = std::min(pool.size(), trials);
  if (chunks == 0) chunks = 1;
  const std::size_t per = trials / chunks;
  const std::size_t rem = trials % chunks;

  if (rounds_per_wave == 0) {
    // Auto-tune (see the header contract): target ~4096 logical draws
    // per wave per chunk at ~2 draws per live trial per round.
    const std::size_t per_chunk = std::max<std::size_t>(1, per + (rem ? 1 : 0));
    rounds_per_wave = std::max<std::size_t>(1, 2048 / per_chunk);
  }
  rounds_per_wave_ = rounds_per_wave;

  chunks_.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    chunks_[c].view = sampler.worker_view();
    chunks_[c].sched = sampler.worker_scheduler();
    const std::size_t len = per + (c < rem ? 1 : 0);
    chunks_[c].bs.emplace(*chunks_[c].view, *chunks_[c].sched, len,
                          Xoshiro256::for_stream(seed, c), max_depth, kernel);
    chunks_[c].bs->track_deltas(true);
  }
  report_.rounds_per_wave = rounds_per_wave_;
  report_.trials_requested = trials_;
}

IncrementalFdistRun::~IncrementalFdistRun() = default;

const ParallelSampler::WaveReport& IncrementalFdistRun::step_wave() {
  if (done_) return report_;
  ++wave_;
  const std::size_t rounds = rounds_per_wave_;
  const InsightFunction& f = f_;
  for (Chunk& c : chunks_) {
    if (c.bs->done()) continue;
    pool_.submit([&c, &f, rounds] {
      c.bs->run_rounds(rounds);
      c.bs->accumulate_counts(f);
    });
  }
  pool_.wait_idle();
  // Delta-merge on the driving thread: each chunk surrenders only the
  // tallies of classes that went terminal this wave, so merge work is
  // O(fresh entries). The merged counts are integer-valued, and integer
  // sums are exact in doubles, so the running tally is independent of
  // where the wave boundaries fall.
  std::size_t entries = 0;
  std::uint64_t terminal = 0;
  bool all_done = true;
  for (Chunk& c : chunks_) {
    const Disc<Perception, double> delta = c.bs->drain_count_delta();
    for (const auto& [perc, count] : delta.entries()) {
      merged_.add(perc, count);
      ++entries;
    }
    terminal += c.bs->trials_terminal();
    all_done = all_done && c.bs->done();
  }
  done_ = all_done;
  report_.wave = wave_;
  report_.rounds_per_wave = rounds_per_wave_;
  report_.trials_done = static_cast<std::size_t>(terminal);
  report_.trials_requested = trials_;
  report_.done = all_done;
  report_.merge_entries = entries;
  return report_;
}

std::uint64_t IncrementalFdistRun::trials_terminal() const {
  std::uint64_t terminal = 0;
  for (const Chunk& c : chunks_) terminal += c.bs->trials_terminal();
  return terminal;
}

Disc<Perception, double> IncrementalFdistRun::partial_fdist() const {
  Disc<Perception, double> out;
  const std::uint64_t done_trials = trials_terminal();
  if (done_trials == 0) return out;
  for (const auto& [perc, count] : merged_.entries()) {
    out.add(perc, count / static_cast<double>(done_trials));
  }
  return out;
}

Disc<Perception, double> IncrementalFdistRun::final_fdist() {
  while (!done_) step_wave();
  std::uint64_t done_trials = 0;
  for (const Chunk& c : chunks_) done_trials += c.bs->trials_terminal();
  Disc<Perception, double> out;
  if (done_trials == 0) return out;
  for (Chunk& c : chunks_) {
    // accumulate_counts already ran on the workers; this re-read is a
    // no-op fold returning the chunk's full tally. Merging chunk-major
    // (count / N per entry, chunk order) reproduces the one-shot
    // sample_fdist merge bit for bit.
    for (const auto& [perc, count] : c.bs->accumulate_counts(f_).entries()) {
      out.add(perc, count / static_cast<double>(done_trials));
    }
  }
  return out;
}

BatchStats IncrementalFdistRun::batch_stats() const {
  BatchStats out;
  for (const Chunk& c : chunks_) out += c.bs->stats();
  return out;
}

SnapshotStats IncrementalFdistRun::snapshot_stats() const {
  SnapshotStats out;
  for (const Chunk& c : chunks_) out += c.view->snapshot_stats();
  return out;
}

}  // namespace cdse
