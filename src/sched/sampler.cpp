#include "sched/sampler.hpp"

#include <vector>

namespace cdse {

ExecFragment sample_execution(Psioa& automaton, Scheduler& sched,
                              Xoshiro256& rng, std::size_t max_depth) {
  ExecFragment alpha = ExecFragment::starting_at(automaton.start_state());
  while (alpha.length() < max_depth) {
    const ActionChoice choice = sched.choose(automaton, alpha);
    if (choice.empty()) break;
    // Draw over {halt} U actions using double weights.
    const double u = rng.uniform();
    double acc = 0.0;
    ActionId chosen = kInvalidAction;
    for (const auto& [a, w] : choice.entries()) {
      acc += w.to_double();
      if (u < acc) {
        chosen = a;
        break;
      }
    }
    if (chosen == kInvalidAction) break;  // residual mass: halt
    const StateDist eta = automaton.transition(alpha.lstate(), chosen);
    const double v = rng.uniform();
    double acc2 = 0.0;
    State next = eta.entries().back().first;
    for (const auto& [q2, w] : eta.entries()) {
      acc2 += w.to_double();
      if (v < acc2) {
        next = q2;
        break;
      }
    }
    alpha.append(chosen, next);
  }
  return alpha;
}

Disc<Perception, double> sample_fdist(Psioa& automaton, Scheduler& sched,
                                      const InsightFunction& f,
                                      std::size_t trials, std::uint64_t seed,
                                      std::size_t max_depth) {
  Disc<Perception, double> dist;
  Xoshiro256 rng(seed);
  const double w = 1.0 / static_cast<double>(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    const ExecFragment alpha =
        sample_execution(automaton, sched, rng, max_depth);
    dist.add(f.apply(automaton, alpha), w);
  }
  return dist;
}

Disc<Perception, double> parallel_sample_fdist(
    const PsioaFactory& make_automaton, const SchedulerFactory& make_sched,
    const InsightFunction& f, std::size_t trials, std::uint64_t seed,
    std::size_t max_depth, ThreadPool& pool) {
  const std::size_t chunks = pool.size();
  std::vector<Disc<Perception, double>> partial(chunks);
  parallel_for_chunks(
      pool, trials,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        PsioaPtr automaton = make_automaton();
        SchedulerPtr sched = make_sched();
        Xoshiro256 rng = Xoshiro256::for_stream(seed, chunk);
        Disc<Perception, double>& out = partial[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const ExecFragment alpha =
              sample_execution(*automaton, *sched, rng, max_depth);
          out.add(f.apply(*automaton, alpha), 1.0);
        }
      });
  Disc<Perception, double> merged;
  for (const auto& p : partial) {
    for (const auto& [perc, count] : p.entries()) {
      merged.add(perc, count / static_cast<double>(trials));
    }
  }
  return merged;
}

}  // namespace cdse
