#include "sched/scheduler.hpp"

namespace cdse {

const ChoiceRow* Scheduler::choice_row(Psioa& automaton,
                                       const ExecFragment& alpha) {
  scratch_ = ChoiceRow::compile(choose(automaton, alpha));
  return &scratch_;
}

}  // namespace cdse
