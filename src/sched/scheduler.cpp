#include "sched/scheduler.hpp"

#include <stdexcept>

namespace cdse {

const ChoiceRow* Scheduler::choice_row(Psioa& automaton,
                                       const ExecFragment& alpha) {
  scratch_ = ChoiceRow::compile(choose(automaton, alpha));
  return &scratch_;
}

Rational scheduled_halt_mass(const ActionChoice& choice,
                             const Scheduler& sched) {
  static const Rational kOne(1);
  const Rational total = choice.total();
  if (total > kOne) {
    throw std::logic_error("cone measure: scheduler '" + sched.name() +
                           "' returned total mass > 1");
  }
  return kOne - total;
}

}  // namespace cdse
