#include "sched/scheduler.hpp"

namespace cdse {
// Interface only.
}  // namespace cdse
