#include "sched/seq_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace cdse {

double seq_spend(double delta, std::size_t look) {
  if (look == 0) look = 1;
  const double w = static_cast<double>(look);
  return delta / (w * (w + 1.0));
}

double seq_hoeffding_radius(double scale, double delta) {
  if (scale <= 0.0) return 0.0;  // exact side (all strata settled)
  if (delta <= 0.0 || delta >= 1.0) return 1.0;
  return std::sqrt(std::log(2.0 / delta) * scale / 2.0);
}

double seq_bernstein_radius(double mean, double scale, double delta) {
  if (scale <= 0.0) return 0.0;
  if (delta <= 0.0 || delta >= 1.0) return 1.0;
  const double n = 1.0 / scale;
  const double hoeffding = seq_hoeffding_radius(scale, delta);
  if (n < 2.0) return hoeffding;
  // Maurer-Pontil, two-sided (delta/2 per tail hence ln(4/delta)), with
  // the plug-in witness-event variance p(1-p). The additive bias term
  // decays as 1/n, so for small p the bound beats Hoeffding's sqrt(1/n)
  // long before the asymptotic regime.
  const double p = std::clamp(mean, 0.0, 1.0);
  const double lg = std::log(4.0 / delta);
  const double bernstein =
      std::sqrt(2.0 * p * (1.0 - p) * lg * scale) + 7.0 * lg / (3.0 * (n - 1.0));
  return std::min(bernstein, hoeffding);
}

SeqDecision SeqEstimator::look(const Disc<Perception, double>& counts_l,
                               std::uint64_t live_l,
                               const Disc<Perception, double>& counts_r,
                               std::uint64_t live_r, std::size_t n,
                               std::uint64_t draws) {
  if (last_.verdict != SeqVerdict::kUndecided) return last_;
  if (n == 0) return last_;
  const double dn = static_cast<double>(n);

  // First pass: count the observed support (distinct perceptions across
  // both tallies). The per-cell confidence slice adapts to it, so small
  // supports get sharp radii while huge trace supports pay for their
  // own width -- the plug-in TV estimate is biased up by roughly
  // sqrt(support / n), and a support-blind bound would turn that bias
  // into false kAboveThreshold verdicts on identical pairs.
  std::size_t observed = 0;
  {
    auto il = counts_l.entries().begin();
    auto ir = counts_r.entries().begin();
    while (il != counts_l.entries().end() && ir != counts_r.entries().end()) {
      if (il->first < ir->first) {
        ++il;
      } else if (ir->first < il->first) {
        ++ir;
      } else {
        ++il;
        ++ir;
      }
      ++observed;
    }
    observed += static_cast<std::size_t>(
        std::distance(il, counts_l.entries().end()));
    observed += static_cast<std::size_t>(
        std::distance(ir, counts_r.entries().end()));
  }

  ++looks_;
  const double dw = seq_spend(policy_.delta, looks_);
  // One union-bound slice per observed cell per side, plus two slices
  // per side for the missing-mass bounds (Good-Turing deviation and the
  // fresh-draw saturation test).
  const double dc =
      dw / (2.0 * (static_cast<double>(observed) + 2.0));
  const double scale = 1.0 / dn;

  // Second pass: plug-in TV over observed cells plus sound one-sided
  // envelopes.
  //   lower: cells whose gap survives both per-cell radii; unobserved
  //          cells only add nonnegative TV mass, so this lower-bounds
  //          the terminal TV distance.
  //   upper: plug-in + per-cell radii + Good-Turing missing mass
  //          (singletons/n per side, with a Berend-Kontorovich-style
  //          sqrt(3 ln(3/dc) / n) deviation allowance) covering the
  //          unobserved cells' contribution.
  double eps_term = 0.0;   // (1/2) sum |p_l - p_r| over observed cells
  double gap_sum = 0.0;    // (1/2) sum max(0, |d| - rl - rr)
  double rad_sum = 0.0;    // (1/2) sum (rl + rr)
  double singles_l = 0.0, singles_r = 0.0;
  auto cell_radius = [&](double mean) {
    if (policy_.bound == SeqBound::kEmpiricalBernstein) {
      return seq_bernstein_radius(mean, scale, dc);
    }
    return seq_hoeffding_radius(scale, dc);
  };
  auto account = [&](double cl, double cr) {
    if (cl == 1.0) singles_l += 1.0;
    if (cr == 1.0) singles_r += 1.0;
    const double pl = cl / dn;
    const double pr = cr / dn;
    const double d = std::abs(pl - pr);
    const double rl = cell_radius(pl);
    const double rr = cell_radius(pr);
    eps_term += 0.5 * d;
    gap_sum += 0.5 * std::max(0.0, d - rl - rr);
    rad_sum += 0.5 * (rl + rr);
  };
  {
    auto il = counts_l.entries().begin();
    auto ir = counts_r.entries().begin();
    while (il != counts_l.entries().end() && ir != counts_r.entries().end()) {
      if (il->first < ir->first) {
        account(il->second, 0.0);
        ++il;
      } else if (ir->first < il->first) {
        account(0.0, ir->second);
        ++ir;
      } else {
        account(il->second, ir->second);
        ++il;
        ++ir;
      }
    }
    for (; il != counts_l.entries().end(); ++il) account(il->second, 0.0);
    for (; ir != counts_r.entries().end(); ++ir) account(0.0, ir->second);
  }

  const double slack =
      static_cast<double>(live_l + live_r) / dn;
  const double terminal_l = dn - static_cast<double>(live_l);
  const double terminal_r = dn - static_cast<double>(live_r);
  const bool dc_ok = dc > 0.0 && dc < 1.0;
  // Missing mass per side, two sound bounds per side (min is valid --
  // each spends its own dc slice):
  //   (a) Good-Turing: singletons/n plus a sqrt(3 ln(3/dc) / n)
  //       deviation allowance (Berend-Kontorovich style).
  //   (b) Saturation: when no new cell appeared since the previous
  //       look, the m fresh terminal draws since then all landed inside
  //       the previously observed support, so any missing set of mass
  //       eps survived m independent chances: eps <= ln(1/dc) / m.
  //       Linear in m, which is what lets small saturated supports
  //       certify kBelowThreshold at tight margins.
  const double dev = dc_ok ? std::sqrt(3.0 * std::log(3.0 / dc) / dn) : 1.0;
  double miss_l = singles_l / dn + dev;
  double miss_r = singles_r / dn + dev;
  if (have_prev_ && observed == prev_observed_ && dc_ok) {
    const double m_l = terminal_l - prev_terminal_l_;
    const double m_r = terminal_r - prev_terminal_r_;
    if (m_l > 0.0) miss_l = std::min(miss_l, std::log(1.0 / dc) / m_l);
    if (m_r > 0.0) miss_r = std::min(miss_r, std::log(1.0 / dc) / m_r);
  }
  have_prev_ = true;
  prev_observed_ = observed;
  prev_terminal_l_ = terminal_l;
  prev_terminal_r_ = terminal_r;
  const double missing = 0.5 * (miss_l + miss_r);
  const double lower = gap_sum - slack;
  const double upper = eps_term + rad_sum + missing + slack;

  SeqDecision dec;
  dec.estimate = eps_term;
  dec.radius = std::max(upper - eps_term, eps_term - lower);
  dec.censor_slack = slack;
  dec.trials = n;
  dec.looks = looks_;
  dec.draws = draws;
  if (policy_.sequential()) {
    if (lower > policy_.threshold) {
      dec.verdict = SeqVerdict::kAboveThreshold;
    } else if (upper < policy_.threshold) {
      dec.verdict = SeqVerdict::kBelowThreshold;
    }
  }
  last_ = dec;
  return dec;
}

SeqDecision SeqEstimator::look_scaled(double estimate, double slack,
                                      double mean_l, double scale_l,
                                      double mean_r, double scale_r,
                                      std::size_t n, std::uint64_t draws) {
  if (last_.verdict != SeqVerdict::kUndecided) return last_;
  ++looks_;
  const double dw = seq_spend(policy_.delta, looks_);
  const double d_side = dw / 2.0;  // one union-bound slice per side
  double radius;
  if (policy_.bound == SeqBound::kEmpiricalBernstein) {
    radius = seq_bernstein_radius(mean_l, scale_l, d_side) +
             seq_bernstein_radius(mean_r, scale_r, d_side);
  } else {
    radius = seq_hoeffding_radius(scale_l, d_side) +
             seq_hoeffding_radius(scale_r, d_side);
  }

  SeqDecision dec;
  dec.estimate = estimate;
  dec.radius = radius;
  dec.censor_slack = slack;
  dec.trials = n;
  dec.looks = looks_;
  dec.draws = draws;
  if (policy_.sequential()) {
    if (estimate - slack - radius > policy_.threshold) {
      dec.verdict = SeqVerdict::kAboveThreshold;
    } else if (estimate + slack + radius < policy_.threshold) {
      dec.verdict = SeqVerdict::kBelowThreshold;
    }
  }
  last_ = dec;
  return dec;
}

}  // namespace cdse
