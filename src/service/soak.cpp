#include "service/soak.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <deque>
#include <mutex>
#include <utility>

#include "util/thread_pool.hpp"

namespace cdse {

void LatencyRecorder::record(std::uint64_t ns) {
  const int b = ns == 0 ? 0 : std::bit_width(ns);
  ++buckets_[static_cast<std::size_t>(b)];
  ++count_;
  sum_ns_ += ns;
  max_ns_ = std::max(max_ns_, ns);
}

void LatencyRecorder::merge(const LatencyRecorder& o) {
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
  count_ += o.count_;
  sum_ns_ += o.sum_ns_;
  max_ns_ = std::max(max_ns_, o.max_ns_);
}

std::uint64_t LatencyRecorder::quantile_ns(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(count_) + 0.5));
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += buckets_[b];
    if (cum >= target) {
      if (b == 0) return 0;
      const std::uint64_t lo = std::uint64_t{1} << (b - 1);
      const std::uint64_t hi = (b >= 64) ? ~std::uint64_t{0}
                                         : (std::uint64_t{1} << b) - 1;
      return lo + (hi - lo) / 2;
    }
  }
  return max_ns_;
}

const char* soak_op_name(std::size_t op) {
  static const char* kNames[kSoakOpClasses] = {"open", "auth", "forge",
                                               "close"};
  return op < kSoakOpClasses ? kNames[op] : "?";
}

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t op_idx(SoakOp op) { return static_cast<std::size_t>(op); }

/// Worker-local accumulation, merged under one lock per chunk.
struct ChunkStats {
  std::array<SoakOpStats, kSoakOpClasses> ops;
  std::uint64_t crashed = 0;
};

struct Runner {
  const SoakOptions& o;
  MacSessionService& svc;
  SoakReport& rep;

  /// One timed attempt of an op; records latency, flags a blown
  /// deadline. A timed-out attempt never counts as ok, whatever the
  /// (late) status was.
  template <typename Fn>
  OpStatus timed(ChunkStats& cs, SoakOp cls, Fn&& fn, bool* timed_out) {
    SoakOpStats& os = cs.ops[op_idx(cls)];
    const auto t0 = Clock::now();
    const OpStatus st = fn();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    ++os.requests;
    os.latency.record(ns);
    *timed_out = o.deadline.count() > 0 &&
                 ns > static_cast<std::uint64_t>(o.deadline.count());
    if (*timed_out) {
      ++os.timeouts;
    } else if (st == OpStatus::kOk) {
      ++os.ok;
    }
    return st;
  }

  /// Front half of a lifecycle: open + auth + forge. On a blown deadline
  /// the session is torn down and the whole half retried on a rotated
  /// RNG stream; on crash-stop it is abandoned without retry (a crashed
  /// session stays crashed). On success the session is left open for a
  /// later wave's close.
  void run_front(SnapshotPsioa& view, ChunkStats& cs, std::uint64_t sid) {
    for (std::size_t attempt = 0;; ++attempt) {
      bool to = false;
      SoakOp failed = SoakOp::kOpen;
      OpStatus st =
          timed(cs, SoakOp::kOpen, [&] { return svc.open(view, sid); }, &to);
      if (st == OpStatus::kRejected) return;  // backpressure: shed, no retry
      bool ok = st == OpStatus::kOk && !to;
      if (ok && attempt > 0) svc.rotate_seed(sid, attempt - 1);
      if (ok) {
        failed = SoakOp::kAuth;
        st = timed(cs, SoakOp::kAuth, [&] { return svc.auth(view, sid); },
                   &to);
        if (st == OpStatus::kCrashed) {
          svc.abandon(sid);
          ++cs.crashed;
          return;
        }
        ok = st == OpStatus::kOk && !to;
      }
      if (ok) {
        failed = SoakOp::kForge;
        st = timed(cs, SoakOp::kForge, [&] { return svc.forge(view, sid); },
                   &to);
        ok = st == OpStatus::kOk && !to;
      }
      if (ok) return;
      if (svc.is_open(sid)) svc.abandon(sid);
      if (attempt >= o.max_retries) {
        ++cs.ops[op_idx(failed)].failures;
        return;
      }
      ++cs.ops[op_idx(failed)].retries;
    }
  }

  /// Back half: fire the session's output. kNotFound means the front
  /// half already gave the session up (crash/timeout) -- not an error.
  void run_back(SnapshotPsioa& view, ChunkStats& cs, std::uint64_t sid) {
    for (std::size_t attempt = 0;; ++attempt) {
      bool to = false;
      const OpStatus st = timed(
          cs, SoakOp::kClose, [&] { return svc.close(view, sid); }, &to);
      if (st == OpStatus::kNotFound) return;
      if (st == OpStatus::kCrashed) {
        svc.abandon(sid);
        ++cs.crashed;
        return;
      }
      if (st == OpStatus::kOk && !to) return;
      if (st == OpStatus::kOk) {
        // Closed, but past deadline: the effect stands, the request is
        // still an SLO miss. Nothing left to retry.
        ++cs.ops[op_idx(SoakOp::kClose)].failures;
        return;
      }
      if (attempt >= o.max_retries) {
        ++cs.ops[op_idx(SoakOp::kClose)].failures;
        if (svc.is_open(sid)) svc.abandon(sid);
        return;
      }
      ++cs.ops[op_idx(SoakOp::kClose)].retries;
    }
  }
};

}  // namespace

SoakReport run_soak(const SoakOptions& opts) {
  SoakReport rep;
  rep.sessions_requested = opts.sessions;
  const std::size_t wave = std::max<std::size_t>(1, opts.wave);

  MacSessionService::Options so;
  so.k = opts.k;
  so.seed = opts.seed;
  so.shards = opts.shards;
  so.gc = opts.gc;
  so.compact_threshold = opts.compact_threshold;
  so.crash_prob = opts.crash_prob;
  so.max_admitted = opts.max_admitted != 0
                        ? opts.max_admitted
                        : (opts.hold_waves + 2) * wave;
  MacSessionService svc(so);
  rep.advantage = svc.advantage();

  ThreadPool pool(opts.workers);
  rep.workers = pool.size();
  rep.rss_start_bytes = process_rss_bytes();
  rep.rss_peak_bytes = rep.rss_start_bytes;

  std::mutex merge_mu;
  bool degraded = false;
  Runner runner{opts, svc, rep};

  // Fan one wave phase over the pool; the barrier is wait_idle_for, so a
  // wedged task degrades the run instead of hanging it.
  auto run_phase = [&](bool front, std::uint64_t base, std::size_t n) {
    if (degraded || n == 0) return;
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min(pool.size(), n));
    const std::size_t per = n / chunks;
    const std::size_t rem = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t end = begin + per + (c < rem ? 1 : 0);
      pool.submit([&, front, base, begin, end] {
        auto view = svc.worker_view();
        ChunkStats cs;
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t sid = base + i;
          if (front) {
            runner.run_front(*view, cs, sid);
          } else {
            runner.run_back(*view, cs, sid);
          }
        }
        std::lock_guard<std::mutex> lk(merge_mu);
        for (std::size_t op = 0; op < kSoakOpClasses; ++op) {
          SoakOpStats& dst = rep.ops[op];
          const SoakOpStats& src = cs.ops[op];
          dst.requests += src.requests;
          dst.ok += src.ok;
          dst.timeouts += src.timeouts;
          dst.retries += src.retries;
          dst.failures += src.failures;
          dst.latency.merge(src.latency);
        }
        rep.crashed += cs.crashed;
      });
      begin = end;
    }
    std::string diag;
    try {
      if (!pool.wait_idle_for(opts.idle_timeout, &diag)) {
        degraded = true;
        rep.complete = false;
        rep.error = diag;
      }
    } catch (const std::exception& e) {
      degraded = true;
      rep.complete = false;
      rep.error = e.what();
    }
  };

  const auto t_start = Clock::now();
  std::deque<std::pair<std::uint64_t, std::size_t>> held;
  std::uint64_t next = 0;
  while (!degraded &&
         (next < opts.sessions || !held.empty())) {
    if (next < opts.sessions) {
      const std::size_t n =
          std::min<std::size_t>(wave, opts.sessions - next);
      run_phase(true, next, n);
      held.emplace_back(next, n);
      next += n;
    }
    if (!degraded &&
        (held.size() > opts.hold_waves ||
         (next >= opts.sessions && !held.empty()))) {
      const auto [base, n] = held.front();
      held.pop_front();
      run_phase(false, base, n);
    }
    // Quiescent epoch boundary: both phase barriers have drained, so
    // collect/compact may renumber handles of the sessions still held
    // open (they are remapped in place).
    const auto cr = svc.advance_epoch();
    ++rep.epochs;
    rep.shards_compacted += cr.shards_compacted;
    rep.gc_bytes_reclaimed += cr.bytes_reclaimed;
    rep.rss_peak_bytes = std::max(rep.rss_peak_bytes, process_rss_bytes());
  }
  rep.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t_start).count();

  const ServiceStats ss = svc.stats();
  rep.sessions_completed = ss.closed;
  rep.rejected = ss.rejected;
  rep.abandoned = ss.abandoned;
  rep.forgeries = ss.forgeries;
  rep.forgery_rate =
      ss.forged_attempts == 0
          ? 0.0
          : static_cast<double>(ss.forgeries) /
                static_cast<double>(ss.forged_attempts);
  rep.outcome_digest = ss.outcome_digest;

  std::uint64_t ok_total = 0;
  std::uint64_t failures_total = 0;
  for (const auto& os : rep.ops) {
    ok_total += os.ok;
    failures_total += os.failures;
  }
  rep.throughput_ops = rep.wall_seconds > 0.0
                           ? static_cast<double>(ok_total) / rep.wall_seconds
                           : 0.0;
  // Complete means every requested lifecycle either closed or was shed
  // by admission backpressure; crash-stops and given-up requests degrade
  // the report even though the driver handled them gracefully.
  if (failures_total != 0 ||
      rep.sessions_completed + rep.rejected != rep.sessions_requested) {
    rep.complete = false;
  }

  rep.intern = svc.intern_stats();
  rep.interner_live_keys = svc.interner_live_keys();
  rep.interner_total_keys = svc.interner_size();
  rep.rss_end_bytes = process_rss_bytes();
  rep.rss_peak_bytes = std::max(rep.rss_peak_bytes, rep.rss_end_bytes);
  return rep;
}

}  // namespace cdse
