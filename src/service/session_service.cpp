#include "service/session_service.hpp"

#include <cstdio>
#include <stdexcept>

#ifdef __linux__
#include <unistd.h>
#endif

namespace cdse {

namespace {

constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;
// Salt separating the crash-injection stream from the outcome stream:
// drills must not perturb the draws the differential test pins.
constexpr std::uint64_t kCrashSalt = 0xc7a54a17ULL;

State single_target(const CompiledRow& row) {
  if (row.targets.size() != 1) {
    throw std::logic_error(
        "MacSessionService: expected a deterministic template row");
  }
  return row.targets[0];
}

std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }

}  // namespace

MacSessionService::MacSessionService(const Options& opts)
    : opts_(opts),
      pair_(make_mac_service_pair({opts.k}, opts.tag)),
      interner_(opts.shards) {
  if (opts.k < 1 || opts.k > 30) {
    throw std::invalid_argument("MacSessionService: k must be in [1, 30]");
  }
  advantage_ = 1.0 / static_cast<double>(std::uint64_t{1} << opts.k);

  DynamicPca& tpl = *pair_.real_pca;
  tpl.set_destruction_observer(
      [this](Aid, State, ActionId) { ++template_destructions_; });

  // Resolve the template's geography: 5 reachable states, warmed row by
  // row so freeze() captures the complete table (no overflow at run
  // time). The session vocabulary comes from crypto/service.cpp.
  const std::string session_tag = opts_.tag + "_0";
  a_open_ = act(service_action("open", opts_.tag, 0));
  a_auth_ = act("auth_" + session_tag);
  a_forge_ = act("forge_" + session_tag);
  a_forged_ = act("forged_" + session_tag);
  a_rejected_ = act("rejected_" + session_tag);

  q_start_ = tpl.start_state();
  q_idle_ = single_target(tpl.compiled_row(q_start_, a_open_));
  q_authed_ = single_target(tpl.compiled_row(q_idle_, a_auth_));
  const CompiledRow& forge_row = tpl.compiled_row(q_authed_, a_forge_);
  if (forge_row.targets.size() != 2) {
    throw std::logic_error("MacSessionService: malformed forge row");
  }
  // win carries weight 2^-k < 1/2 (k >= 1), so it is the smaller entry.
  const auto& entries = forge_row.dist.entries();
  const bool first_is_win = entries[0].second < entries[1].second;
  q_win_ = first_is_win ? entries[0].first : entries[1].first;
  q_lose_ = first_is_win ? entries[1].first : entries[0].first;
  // Closing fires the output and destroys the session (Def 2.12): the
  // successor configuration reduces back to {hub}, i.e. the start state.
  if (single_target(tpl.compiled_row(q_win_, a_forged_)) != q_start_ ||
      single_target(tpl.compiled_row(q_lose_, a_rejected_)) != q_start_) {
    throw std::logic_error(
        "MacSessionService: close does not return the template to start");
  }
  for (State q : {q_start_, q_idle_, q_authed_, q_win_, q_lose_}) {
    tpl.signature_ref(q);
  }
  tpl.set_destruction_observer(nullptr);

  snapshot_ = tpl.freeze();
  residue_ = std::make_shared<SnapshotResidue>(pair_.real_pca);

  // Session table: as many shards as the interner (both power-of-two).
  const std::size_t n = interner_.shard_count();
  table_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    table_.push_back(std::make_unique<TableShard>());
  }
  table_mask_ = static_cast<std::uint64_t>(n - 1);
}

std::shared_ptr<SnapshotPsioa> MacSessionService::worker_view() const {
  return std::make_shared<SnapshotPsioa>(snapshot_, residue_);
}

ShardedStateInterner::Handle MacSessionService::intern_key(std::uint64_t sid,
                                                           State tstate) {
  const std::uint64_t words[2] = {sid, tstate};
  return interner_.intern_tuple(words, 2);
}

void MacSessionService::retire_session_keys(Session& s) {
  if (!opts_.gc) return;
  for (std::uint8_t i = 0; i < s.key_count; ++i) {
    interner_.retire(s.keys[i]);
    s.keys[i] = ShardedStateInterner::kInvalidHandle;
  }
  s.key_count = 0;
}

OpStatus MacSessionService::open(SnapshotPsioa& view, std::uint64_t sid) {
  TableShard& sh = shard_for(sid);
  // Bounded admission: reject rather than queue without limit. The load
  // check races benignly (a burst may overshoot by the worker count).
  if (live_.load(std::memory_order_relaxed) >= opts_.max_admitted) {
    std::lock_guard<std::mutex> lk(sh.mu);
    ++sh.counters.rejected;
    return OpStatus::kRejected;
  }
  const State t = single_target(view.compiled_row(q_start_, a_open_));
  std::lock_guard<std::mutex> lk(sh.mu);
  auto [it, inserted] = sh.sessions.try_emplace(sid);
  if (!inserted) return OpStatus::kBadState;
  Session& s = it->second;
  s.phase = Phase::kOpened;
  s.rng = Xoshiro256::for_stream(opts_.seed, sid);
  if (opts_.crash_prob > 0.0) {
    s.crashed = Xoshiro256::for_stream(opts_.seed ^ kCrashSalt, sid)
                    .bernoulli(opts_.crash_prob);
  }
  s.keys[s.key_count++] = intern_key(sid, t);
  ++sh.counters.opened;
  live_.fetch_add(1, std::memory_order_relaxed);
  return OpStatus::kOk;
}

OpStatus MacSessionService::auth(SnapshotPsioa& view, std::uint64_t sid) {
  const State t = single_target(view.compiled_row(q_idle_, a_auth_));
  TableShard& sh = shard_for(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.sessions.find(sid);
  if (it == sh.sessions.end()) return OpStatus::kNotFound;
  Session& s = it->second;
  if (s.crashed) return OpStatus::kCrashed;
  if (s.phase != Phase::kOpened) return OpStatus::kBadState;
  s.keys[s.key_count++] = intern_key(sid, t);
  s.phase = Phase::kAuthed;
  ++sh.counters.authed;
  return OpStatus::kOk;
}

OpStatus MacSessionService::forge(SnapshotPsioa& view, std::uint64_t sid) {
  const CompiledRow& row = view.compiled_row(q_authed_, a_forge_);
  TableShard& sh = shard_for(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.sessions.find(sid);
  if (it == sh.sessions.end()) return OpStatus::kNotFound;
  Session& s = it->second;
  if (s.crashed) return OpStatus::kCrashed;
  if (s.phase != Phase::kAuthed) return OpStatus::kBadState;
  // The probabilistic step: one draw from the session's own stream, so
  // the outcome is a pure function of (seed, sid) -- GC-, worker-, and
  // interleaving-independent.
  const State t = row.sample(s.rng.uniform());
  s.win = (t == q_win_);
  s.keys[s.key_count++] = intern_key(sid, t);
  s.phase = Phase::kResolved;
  ++sh.counters.forged_attempts;
  if (s.win) ++sh.counters.forgeries;
  return OpStatus::kOk;
}

OpStatus MacSessionService::close(SnapshotPsioa& view, std::uint64_t sid,
                                  bool* was_forgery) {
  TableShard& sh = shard_for(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.sessions.find(sid);
  if (it == sh.sessions.end()) return OpStatus::kNotFound;
  Session& s = it->second;
  if (s.crashed) return OpStatus::kCrashed;
  if (s.phase != Phase::kResolved) return OpStatus::kBadState;
  // Fire the output; the template returns to start (session destroyed).
  const State back = s.win
      ? single_target(view.compiled_row(q_win_, a_forged_))
      : single_target(view.compiled_row(q_lose_, a_rejected_));
  if (back != q_start_) return OpStatus::kBadState;  // unreachable
  if (was_forgery != nullptr) *was_forgery = s.win;
  sh.counters.outcome_digest ^= mix64(sid * 2 + (s.win ? 1 : 0));
  retire_session_keys(s);
  ++sh.counters.closed;
  sh.sessions.erase(it);
  live_.fetch_sub(1, std::memory_order_relaxed);
  return OpStatus::kOk;
}

OpStatus MacSessionService::abandon(std::uint64_t sid) {
  TableShard& sh = shard_for(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.sessions.find(sid);
  if (it == sh.sessions.end()) return OpStatus::kNotFound;
  retire_session_keys(it->second);
  ++sh.counters.abandoned;
  sh.sessions.erase(it);
  live_.fetch_sub(1, std::memory_order_relaxed);
  return OpStatus::kOk;
}

OpStatus MacSessionService::rotate_seed(std::uint64_t sid,
                                        std::size_t attempt) {
  TableShard& sh = shard_for(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.sessions.find(sid);
  if (it == sh.sessions.end()) return OpStatus::kNotFound;
  it->second.rng = Xoshiro256::for_stream(
      opts_.seed + (static_cast<std::uint64_t>(attempt) + 1) * kGoldenGamma,
      sid);
  return OpStatus::kOk;
}

bool MacSessionService::is_open(std::uint64_t sid) const {
  const TableShard& sh = shard_for(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  return sh.sessions.count(sid) != 0;
}

std::vector<ShardedStateInterner::Handle> MacSessionService::session_handles(
    std::uint64_t sid) const {
  const TableShard& sh = shard_for(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.sessions.find(sid);
  std::vector<ShardedStateInterner::Handle> out;
  if (it == sh.sessions.end()) return out;
  const Session& s = it->second;
  out.assign(s.keys.begin(), s.keys.begin() + s.key_count);
  return out;
}

ShardedStateInterner::CollectResult MacSessionService::advance_epoch() {
  if (!opts_.gc) return {};
  // Compaction renumbers a shard's local handles; rewrite the stored
  // handles of every live session that points into it. Runs quiescently
  // (advance_epoch's contract), so taking the table locks inside the
  // interner's shard lock cannot deadlock against ops.
  auto remap = [this](std::size_t shard,
                      const std::vector<ShardedStateInterner::Handle>& map) {
    for (auto& tsh : table_) {
      std::lock_guard<std::mutex> lk(tsh->mu);
      for (auto& [sid, s] : tsh->sessions) {
        (void)sid;
        for (std::uint8_t i = 0; i < s.key_count; ++i) {
          if (s.keys[i] != ShardedStateInterner::kInvalidHandle &&
              interner_.shard_of(s.keys[i]) == shard) {
            s.keys[i] = interner_.remap(s.keys[i], map);
          }
        }
      }
    }
  };
  return interner_.collect(opts_.compact_threshold, remap);
}

ServiceStats MacSessionService::stats() const {
  ServiceStats total;
  for (const auto& sh : table_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    const ServiceStats& c = sh->counters;
    total.opened += c.opened;
    total.rejected += c.rejected;
    total.authed += c.authed;
    total.forged_attempts += c.forged_attempts;
    total.forgeries += c.forgeries;
    total.closed += c.closed;
    total.abandoned += c.abandoned;
    total.outcome_digest ^= c.outcome_digest;
  }
  total.live = live_.load(std::memory_order_relaxed);
  total.template_destructions = template_destructions_;
  return total;
}

std::size_t process_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0, resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace cdse
