#pragma once
// MacSessionService: the million-session face of the dynamic MAC service.
//
// make_mac_service_pair (crypto/service.hpp) proves the *semantics* of
// run-time session creation: one DynamicPca whose creation policy spawns
// a session automaton per open and whose reduce() destroys it on the
// empty-signature sentinel (Def 2.12). That construction is exact and
// per-instance -- perfect for the emulation theorems, hopeless as a
// service: a PCA with n potential sessions has 5^n configurations, and
// one instance is single-threaded by contract.
//
// This class is the service reading of the same object. Sessions are
// statistically independent (the composed service's per-session forgery
// advantage is exactly 2^-k regardless of the other sessions -- the
// whole point of the composition theorems), so a million-session service
// is a million *cursors* over ONE frozen single-session template:
//
//   template  -- make_mac_service_pair({k}, tag).real_pca, warmed over
//                its 5 reachable states and frozen (MemoPsioa::freeze)
//                into a CompiledSnapshot every worker shares read-only.
//                Forge rows sample through CompiledRow::sample, so the
//                hot path performs no Rational arithmetic.
//   session   -- a record in a sharded table: template-state cursor, a
//                per-session RNG stream (Xoshiro256::for_stream(seed,
//                sid)), and the handles of its interned per-session
//                state keys. Outcomes are a pure function of (seed,
//                sid): independent of worker count, interleaving, and
//                GC -- which is what the GC-on/off differential pins.
//   interner  -- a ShardedStateInterner holding one key [sid,
//                template-state] per state a session visits: the
//                service-scale analogue of DynamicPca's configuration
//                interning, and the thing session GC must reclaim.
//
// GC follows the epoch discipline end to end: close() retires the
// session's keys (fresh handles for a reopened sid from then on), and
// advance_epoch() -- called by the driver at quiescent wave boundaries
// -- collects the interner, releasing arena chunks whose every key
// belongs to dead sessions and compacting shards whose garbage fraction
// crossed the threshold. Compaction renumbers local handles; the remap
// callback rewrites the stored handles of sessions still live, so
// holding a session open across any number of epochs is safe.
//
// Overload robustness: open() applies a bounded admission test and
// rejects with kRejected (backpressure) instead of queueing without
// bound; crash-stop injection (drill mode) marks sessions crashed at
// open so later ops return kCrashed and the driver can abandon them
// gracefully.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/service.hpp"
#include "psioa/snapshot.hpp"
#include "util/rng.hpp"
#include "util/sharded_interner.hpp"

namespace cdse {

/// Result of a session operation. No exceptions on the hot path: the
/// driver branches on the status and keeps the wave moving.
enum class OpStatus {
  kOk,
  kRejected,  ///< admission bound hit (backpressure) -- open() only
  kCrashed,   ///< session is crash-stopped (fault drill)
  kNotFound,  ///< unknown/already-closed sid
  kBadState,  ///< op does not match the session's phase
};

/// Aggregate service counters (monotonic; read with stats()).
struct ServiceStats {
  std::uint64_t opened = 0;
  std::uint64_t rejected = 0;
  std::uint64_t authed = 0;
  std::uint64_t forged_attempts = 0;
  std::uint64_t forgeries = 0;  ///< forge draws that hit win (prob 2^-k)
  std::uint64_t closed = 0;
  std::uint64_t abandoned = 0;  ///< crash-stop sessions torn down
  std::uint64_t live = 0;       ///< open right now
  /// XOR of a per-session outcome fingerprint, accumulated at close.
  /// Order-independent, so it is identical for any interleaving, worker
  /// count, and GC schedule at a fixed (seed, sid set): the differential
  /// test's one-word witness.
  std::uint64_t outcome_digest = 0;
  /// Empty-signature destructions observed on the template PCA while
  /// warming (Def 2.12 wiring witness).
  std::uint64_t template_destructions = 0;
};

class MacSessionService {
 public:
  struct Options {
    std::uint32_t k = 10;           ///< forgery advantage 2^-k per session
    std::uint64_t seed = 0x5e55101ULL;
    std::size_t shards = 0;         ///< interner + table shards (0 = auto)
    std::size_t max_admitted = 1 << 20;  ///< admission bound (live sessions)
    bool gc = true;                 ///< retire/collect dead-session state
    double compact_threshold = 0.5; ///< shard garbage fraction to compact
    double crash_prob = 0.0;        ///< crash-stop injection (drill mode)
    std::string tag = "svc";
  };

  explicit MacSessionService(const Options& opts);

  // -- the op classes (thread-safe; sharded locking) -----------------------
  //
  // `view` is the calling worker's private SnapshotPsioa over the shared
  // template snapshot (worker_view()); exactly one thread may use a view.

  OpStatus open(SnapshotPsioa& view, std::uint64_t sid);
  OpStatus auth(SnapshotPsioa& view, std::uint64_t sid);
  /// The probabilistic op: draws win/lose from the frozen forge row with
  /// the session's own RNG stream.
  OpStatus forge(SnapshotPsioa& view, std::uint64_t sid);
  /// Fires the session's output (forged/rejected), destroying it. With
  /// GC on, the session's interned keys are retired (memory returns at
  /// the next advance_epoch). `was_forgery` (optional) reports the
  /// outcome.
  OpStatus close(SnapshotPsioa& view, std::uint64_t sid,
                 bool* was_forgery = nullptr);

  /// Tears down a crash-stopped (or stuck) session without firing its
  /// output: retires its keys and frees the slot. The fault drill's
  /// recovery path.
  OpStatus abandon(std::uint64_t sid);

  /// Re-derives the session's RNG stream from a rotated seed
  /// (seed + (attempt+1) * golden-gamma): the retry-on-timeout policy,
  /// same rotation the guarded sampler uses.
  OpStatus rotate_seed(std::uint64_t sid, std::size_t attempt);

  /// True iff `sid` is currently open.
  bool is_open(std::uint64_t sid) const;

  /// Interned-key handles a live session currently holds (empty vector
  /// for unknown sids). For the GC unit tests.
  std::vector<ShardedStateInterner::Handle> session_handles(
      std::uint64_t sid) const;

  // -- epoch GC ------------------------------------------------------------

  /// Quiescent epoch boundary: collect retired keys, release dead arena
  /// chunks, compact garbage-heavy shards (rewriting live sessions'
  /// stored handles through the remap). MUST NOT run concurrently with
  /// ops. No-op (zero result) when gc was disabled.
  ShardedStateInterner::CollectResult advance_epoch();

  // -- introspection -------------------------------------------------------

  /// A fresh per-worker view over the frozen template. One thread per
  /// view; any number of views.
  std::shared_ptr<SnapshotPsioa> worker_view() const;

  ServiceStats stats() const;
  InternStats intern_stats() const { return interner_.stats(); }
  std::size_t interner_live_keys() const { return interner_.live_keys(); }
  std::size_t interner_size() const { return interner_.size(); }
  bool gc_enabled() const { return opts_.gc; }
  const Options& options() const { return opts_; }

  /// The template's forgery advantage, 2^-k.
  double advantage() const { return advantage_; }

 private:
  enum class Phase : std::uint8_t { kOpened, kAuthed, kResolved };

  struct Session {
    Phase phase = Phase::kOpened;
    bool win = false;
    bool crashed = false;
    Xoshiro256 rng{0};
    // Keys interned so far: one per visited template state
    // (opened/authed/resolved), kInvalidHandle until visited.
    std::array<ShardedStateInterner::Handle, 3> keys{
        ShardedStateInterner::kInvalidHandle,
        ShardedStateInterner::kInvalidHandle,
        ShardedStateInterner::kInvalidHandle};
    std::uint8_t key_count = 0;
  };

  struct TableShard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Session> sessions;
    // Shard-local counters, merged by stats(); avoids a global atomic
    // ping-pong on every op.
    ServiceStats counters;
  };

  TableShard& shard_for(std::uint64_t sid) {
    return *table_[sid & table_mask_];
  }
  const TableShard& shard_for(std::uint64_t sid) const {
    return *table_[sid & table_mask_];
  }

  ShardedStateInterner::Handle intern_key(std::uint64_t sid, State tstate);
  void retire_session_keys(Session& s);

  Options opts_;
  double advantage_ = 0.0;

  // The frozen single-session template.
  MacServicePair pair_;
  std::shared_ptr<const CompiledSnapshot> snapshot_;
  std::shared_ptr<SnapshotResidue> residue_;
  std::uint64_t template_destructions_ = 0;

  // Template geography, resolved once at construction.
  State q_start_ = 0, q_idle_ = 0, q_authed_ = 0, q_win_ = 0, q_lose_ = 0;
  ActionId a_open_ = 0, a_auth_ = 0, a_forge_ = 0, a_forged_ = 0,
           a_rejected_ = 0;

  ShardedStateInterner interner_;
  std::vector<std::unique_ptr<TableShard>> table_;
  std::uint64_t table_mask_ = 0;
  std::atomic<std::uint64_t> live_{0};
};

/// Resident set size of this process in bytes (Linux: /proc/self/statm;
/// 0 where unsupported). The soak driver samples it per wave to verify
/// GC keeps memory flat over hundreds of thousands of session cycles.
std::size_t process_rss_bytes();

}  // namespace cdse
