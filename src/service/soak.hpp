#pragma once
// Soak driver: waves of MAC-session lifecycles over a ThreadPool, with
// the overload-robustness policies the service bench (E18) measures.
//
// Load shape. Sessions are processed in waves of `wave` ids. A wave's
// front half (open + auth + forge) runs fan-out over the pool; its
// sessions then stay open for `hold_waves` further waves before a later
// wave's back half closes them -- so live sessions always span epoch
// boundaries, which is precisely the case session GC must not perturb
// (collect/compact runs between waves, while those sessions hold
// interned keys that compaction may renumber). The driver drains all
// held waves at the end, so every non-crashed session is closed.
//
// Robustness policies, per request:
//   deadline  -- a request whose wall-clock time exceeds it counts as a
//                timeout and is retried on a rotated RNG stream
//                (seed + (attempt+1)*golden-gamma, the guarded sampler's
//                rotation) up to max_retries, after which the session is
//                abandoned and the row degrades to partial.
//   crash     -- crash-stopped sessions (service-injected, drill mode)
//                answer kCrashed; the driver abandons them and keeps the
//                wave moving.
//   stuck     -- each wave barrier uses ThreadPool::wait_idle_for; on
//                timeout the driver stops issuing, captures the stuck-
//                task diagnostic, and returns the partial report with
//                complete = false instead of hanging.
//
// Determinism. With deadline == 0 and crash_prob == 0 every lifecycle
// completes, and the report's outcome_digest / forgeries are pure
// functions of (seed, sessions): independent of workers, wave size, GC
// on/off, and compaction schedule. That is the GC differential the test
// suite pins. Latencies and RSS are measurements, not semantics.

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "service/session_service.hpp"

namespace cdse {

/// Log2-bucketed latency histogram: O(1) record, fixed footprint,
/// mergeable across chunks. Quantiles come back as the geometric
/// midpoint of the answering bucket -- 2x resolution, plenty for the
/// p50/p99 rows the bench emits.
class LatencyRecorder {
 public:
  void record(std::uint64_t ns);
  void merge(const LatencyRecorder& o);

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }
  /// p in (0, 1]; 0 count gives 0.
  std::uint64_t quantile_ns(double p) const;

 private:
  static constexpr int kBuckets = 65;  // bit_width(ns) in [0, 64]
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// The four op classes a session lifecycle issues.
enum class SoakOp : std::size_t { kOpen = 0, kAuth, kForge, kClose };
constexpr std::size_t kSoakOpClasses = 4;
const char* soak_op_name(std::size_t op);

struct SoakOpStats {
  std::uint64_t requests = 0;  ///< attempts (includes retries)
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;  ///< attempts that blew the deadline
  std::uint64_t retries = 0;   ///< seed rotations consumed
  std::uint64_t failures = 0;  ///< requests given up on (after retries)
  LatencyRecorder latency;     ///< per attempt, timeouts included
};

struct SoakOptions {
  std::size_t sessions = 1000;   ///< total lifecycles to run
  std::size_t wave = 256;        ///< lifecycles opened per wave
  std::size_t hold_waves = 2;    ///< waves a session stays open across
  std::size_t workers = 0;       ///< pool threads (0 = hardware)
  std::uint64_t seed = 0x50a4ULL;
  std::uint32_t k = 10;          ///< per-session advantage 2^-k
  bool gc = true;
  double compact_threshold = 0.5;
  std::size_t shards = 0;
  std::size_t max_admitted = 0;  ///< 0 = sized from wave/hold_waves
  /// Per-request wall-clock deadline; zero = unlimited (no timeouts).
  std::chrono::nanoseconds deadline{0};
  std::size_t max_retries = 2;
  double crash_prob = 0.0;       ///< crash-stop injection rate
  /// Per-wave barrier timeout before degrading with a stuck diagnostic.
  std::chrono::milliseconds idle_timeout{60000};
};

struct SoakReport {
  bool complete = true;     ///< every requested lifecycle was driven
  std::string error;        ///< stuck diagnostic / first task error

  std::size_t workers = 0;
  std::uint64_t sessions_requested = 0;
  std::uint64_t sessions_completed = 0;  ///< closed (full lifecycle)
  std::uint64_t rejected = 0;            ///< backpressured at admission
  std::uint64_t crashed = 0;             ///< crash-stops encountered
  std::uint64_t abandoned = 0;           ///< torn down without close
  std::uint64_t forgeries = 0;
  double forgery_rate = 0.0;  ///< forgeries / forge successes
  double advantage = 0.0;     ///< expected rate, 2^-k
  std::uint64_t outcome_digest = 0;

  double wall_seconds = 0.0;
  double throughput_ops = 0.0;  ///< successful requests per second

  std::array<SoakOpStats, kSoakOpClasses> ops;

  // GC / memory accounting.
  std::uint64_t epochs = 0;
  std::uint64_t shards_compacted = 0;
  std::uint64_t gc_bytes_reclaimed = 0;
  std::uint64_t interner_live_keys = 0;   ///< at exit
  std::uint64_t interner_total_keys = 0;  ///< keys currently indexed
  InternStats intern;                     ///< aggregated, at exit
  std::size_t rss_start_bytes = 0;
  std::size_t rss_peak_bytes = 0;
  std::size_t rss_end_bytes = 0;
};

/// Runs the soak; never throws on task failure or overload -- those
/// degrade the report (complete = false, error set) instead.
SoakReport run_soak(const SoakOptions& opts);

}  // namespace cdse
