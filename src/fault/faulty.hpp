#pragma once
// FaultyPsioa: loss / duplication / delay as a wrapper automaton.
//
// The wrapper intercepts a designated set of actions of the inner
// automaton and, per firing, branches among four mutually exclusive
// outcomes of the FaultPlan:
//   drop      -- the action fires (composition partners see it) but the
//                inner automaton does not advance: receiver-side loss.
//   duplicate -- the inner transition is applied, and applied again from
//                every target where the action is still enabled:
//                receiver-side duplication.
//   delay     -- the wrapper holds (state, action) and only applies the
//                inner transition on a fresh *internal* delivery action,
//                one schedulable step later.
//   normal    -- the inner transition, unchanged.
//
// All branching lives in the wrapper's transition distributions with exact
// rational weights, so a faulty system is an ordinary PSIOA: the exact
// cone-measure enumerator, the composition operators and the emulation
// harness all apply unchanged. A plan with all rates zero yields a wrapper
// whose executions are in label-preserving bijection with the inner
// automaton's (the drop-rate-0 trace-identity the tests pin down).
//
// Untargeted actions pass through untouched. The wrapper's signature
// equals the inner signature everywhere except held states, whose only
// enabled action is the internal delivery action "faultdeliver_<tag>".

#include <cstdint>
#include <string>
#include <utility>

#include "fault/plan.hpp"
#include "psioa/psioa.hpp"
#include "sched/scheduler.hpp"

namespace cdse {

class FaultyPsioa : public Psioa {
 public:
  /// `targets`: the actions subject to drop/duplicate/delay. `tag` makes
  /// the delivery action unique per wrapper instance.
  FaultyPsioa(PsioaPtr inner, FaultPlan plan, ActionSet targets,
              const std::string& tag);

  State start_state() override;
  Signature signature(State q) override;
  StateDist transition(State q, ActionId a) override;
  BitString encode_state(State q) override;
  std::string state_label(State q) override;

  Psioa& inner() { return *inner_; }
  const FaultPlan& plan() const { return plan_; }
  ActionId deliver_action() const { return a_deliver_; }

  InternStats intern_stats() const override;
  void reserve_interning(std::size_t expected_states) override;

 private:
  // Wrapper states are interned (inner state, pending action) pairs,
  // packed as two-word keys in the shared arena-backed interner;
  // pending == kInvalidAction means no delayed message is held.
  using Key = std::pair<State, ActionId>;
  State intern(State inner_q, ActionId pending);
  Key key_at(State q) const;

  /// The inner transition on `a` from `q`, lifted to un-held wrapper
  /// states, with the duplicate branch applied at weight `w`.
  void add_processed(StateDist& out, State inner_q, ActionId a,
                     const Rational& w_normal, const Rational& w_dup);

  PsioaPtr inner_;
  FaultPlan plan_;
  ActionSet targets_;
  ActionId a_deliver_;
  StateInterner interned_;
};

/// Wraps `inner` in a FaultyPsioa (validates the plan first).
PsioaPtr inject_faults(PsioaPtr inner, const FaultPlan& plan,
                       ActionSet targets, const std::string& tag);

/// The faulty channel: protocols/channel's reliable 1-slot channel with
/// the plan's faults injected on its send actions. With plan.drop == p and
/// no other faults this is trace-equivalent to
/// make_lossy_channel(tag, 1 - p) -- the tests pin that down.
PsioaPtr make_faulty_channel(const std::string& tag, const FaultPlan& plan);

/// Adversarial reordering as scheduler perturbation: with probability
/// plan.reorder the inner scheduler's choice is replaced by a uniform
/// pick over the locally controlled (or all, per `local_only`) enabled
/// actions. Rate 0 is the inner scheduler verbatim.
class PerturbedScheduler : public Scheduler {
 public:
  PerturbedScheduler(SchedulerPtr inner, Rational reorder_rate,
                     bool local_only = true);

  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override;
  std::string name() const override {
    return "perturbed(" + inner_->name() + ")";
  }

 private:
  SchedulerPtr inner_;
  Rational rate_;
  bool local_only_;
};

}  // namespace cdse
