#include "fault/crash.hpp"

#include <stdexcept>

namespace cdse {

CrashablePsioa::CrashablePsioa(PsioaPtr inner, std::size_t crash_after)
    : Psioa("crashable_" + inner->name()),
      inner_(std::move(inner)),
      crash_after_(crash_after) {}

State CrashablePsioa::intern(State inner_q, std::size_t remaining) {
  const std::uint64_t words[2] = {inner_q,
                                  static_cast<std::uint64_t>(remaining)};
  return interned_.intern_tuple(words, 2);
}

CrashablePsioa::Key CrashablePsioa::key_at(State q) const {
  if (q >= interned_.size()) {
    throw std::logic_error("CrashablePsioa: unknown state handle");
  }
  const TupleRef words = interned_.tuple(q);
  return Key{words[0], static_cast<std::size_t>(words[1])};
}

InternStats CrashablePsioa::intern_stats() const {
  InternStats s = interned_.stats();
  s += inner_->intern_stats();
  return s;
}

void CrashablePsioa::reserve_interning(std::size_t expected_states) {
  interned_.reserve(expected_states);
  inner_->reserve_interning(expected_states);
}

State CrashablePsioa::start_state() {
  return intern(inner_->start_state(), crash_after_);
}

bool CrashablePsioa::crashed(State q) const { return key_at(q).second == 0; }

Signature CrashablePsioa::signature(State q) {
  const Key key = key_at(q);
  if (key.second == 0) return Signature{};  // destruction sentinel
  return inner_->signature(key.first);
}

StateDist CrashablePsioa::transition(State q, ActionId a) {
  const Key key = key_at(q);
  if (key.second == 0) {
    throw std::logic_error("CrashablePsioa: no action enabled after crash");
  }
  const StateDist eta = inner_->transition(key.first, a);
  StateDist out;
  for (const auto& [q2, w] : eta.entries()) {
    out.add(intern(q2, key.second - 1), w);
  }
  return out;
}

BitString CrashablePsioa::encode_state(State q) {
  const Key key = key_at(q);
  return BitString::pair(inner_->encode_state(key.first),
                         BitString::from_uint(key.second));
}

std::string CrashablePsioa::state_label(State q) {
  const Key key = key_at(q);
  if (key.second == 0) return "CRASHED";
  return inner_->state_label(key.first) + "@" + std::to_string(key.second);
}

PsioaPtr make_crashable(PsioaPtr inner, std::size_t crash_after) {
  return std::make_shared<CrashablePsioa>(std::move(inner), crash_after);
}

PcaPtr make_crash_stop_pca(const std::string& name, RegistryPtr registry,
                           PsioaPtr inner, std::size_t crash_after) {
  if (crash_after == 0) {
    // A 0-budget member would make the *initial* configuration reducible,
    // which Def 2.16 constraint 1 forbids; crash at the first transition
    // is the earliest expressible schedule.
    throw std::invalid_argument(
        "make_crash_stop_pca: crash_after must be >= 1");
  }
  const Aid id = registry->add(make_crashable(std::move(inner), crash_after));
  return std::make_shared<DynamicPca>(name, registry, std::vector<Aid>{id});
}

}  // namespace cdse
