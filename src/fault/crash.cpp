#include "fault/crash.hpp"

#include <stdexcept>

namespace cdse {

CrashablePsioa::CrashablePsioa(PsioaPtr inner, std::size_t crash_after)
    : Psioa("crashable_" + inner->name()),
      inner_(std::move(inner)),
      crash_after_(crash_after) {}

State CrashablePsioa::intern(State inner_q, std::size_t remaining) {
  const Key key{inner_q, remaining};
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  const State handle = static_cast<State>(keys_.size());
  keys_.push_back(key);
  interned_.emplace(key, handle);
  return handle;
}

const CrashablePsioa::Key& CrashablePsioa::key_at(State q) const {
  if (q >= keys_.size()) {
    throw std::logic_error("CrashablePsioa: unknown state handle");
  }
  return keys_[q];
}

State CrashablePsioa::start_state() {
  return intern(inner_->start_state(), crash_after_);
}

bool CrashablePsioa::crashed(State q) const { return key_at(q).second == 0; }

Signature CrashablePsioa::signature(State q) {
  const Key key = key_at(q);
  if (key.second == 0) return Signature{};  // destruction sentinel
  return inner_->signature(key.first);
}

StateDist CrashablePsioa::transition(State q, ActionId a) {
  const Key key = key_at(q);
  if (key.second == 0) {
    throw std::logic_error("CrashablePsioa: no action enabled after crash");
  }
  const StateDist eta = inner_->transition(key.first, a);
  StateDist out;
  for (const auto& [q2, w] : eta.entries()) {
    out.add(intern(q2, key.second - 1), w);
  }
  return out;
}

BitString CrashablePsioa::encode_state(State q) {
  const Key key = key_at(q);
  return BitString::pair(inner_->encode_state(key.first),
                         BitString::from_uint(key.second));
}

std::string CrashablePsioa::state_label(State q) {
  const Key key = key_at(q);
  if (key.second == 0) return "CRASHED";
  return inner_->state_label(key.first) + "@" + std::to_string(key.second);
}

PsioaPtr make_crashable(PsioaPtr inner, std::size_t crash_after) {
  return std::make_shared<CrashablePsioa>(std::move(inner), crash_after);
}

PcaPtr make_crash_stop_pca(const std::string& name, RegistryPtr registry,
                           PsioaPtr inner, std::size_t crash_after) {
  if (crash_after == 0) {
    // A 0-budget member would make the *initial* configuration reducible,
    // which Def 2.16 constraint 1 forbids; crash at the first transition
    // is the earliest expressible schedule.
    throw std::invalid_argument(
        "make_crash_stop_pca: crash_after must be >= 1");
  }
  const Aid id = registry->add(make_crashable(std::move(inner), crash_after));
  return std::make_shared<DynamicPca>(name, registry, std::vector<Aid>{id});
}

}  // namespace cdse
