#include "fault/plan.hpp"

#include <stdexcept>

namespace cdse {

bool FaultPlan::fault_free() const {
  return drop.is_zero() && duplicate.is_zero() && delay.is_zero() &&
         reorder.is_zero() && !crashes();
}

void FaultPlan::validate() const {
  const Rational zero(0);
  const Rational one(1);
  auto check_rate = [&](const Rational& r, const char* what) {
    if (r < zero || one < r) {
      throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                  " rate outside [0, 1]: " + r.to_string());
    }
  };
  check_rate(drop, "drop");
  check_rate(duplicate, "duplicate");
  check_rate(delay, "delay");
  check_rate(reorder, "reorder");
  if (one < drop + duplicate + delay) {
    throw std::invalid_argument(
        "FaultPlan: drop + duplicate + delay exceeds 1 (they are mutually "
        "exclusive outcomes of one firing)");
  }
}

std::string FaultPlan::describe() const {
  std::string s = "faults(drop=" + drop.to_string() +
                  ", dup=" + duplicate.to_string() +
                  ", delay=" + delay.to_string() +
                  ", reorder=" + reorder.to_string();
  if (crashes()) s += ", crash_after=" + std::to_string(crash_after);
  return s + ")";
}

FaultPlan FaultPlan::lossy(const Rational& p) {
  FaultPlan plan;
  plan.drop = p;
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::fail_stop(std::size_t after) {
  FaultPlan plan;
  plan.crash_after = after;
  return plan;
}

}  // namespace cdse
