#pragma once
// Byzantine corruption of structured automata.
//
// A Byzantine-corrupted party may misreport: when the inner automaton
// emits one action of a designated flip pair, the corrupted wrapper emits
// the other with probability `rate` -- saUCy-style Byzantine corruption
// expressed as automaton structure rather than engine mutation. The
// wrapper works on StructuredPsioa (src/secure) because corruption is
// only meaningful relative to the environment/adversary interface split:
// flip pairs must live in one vocabulary class, so the corrupted automaton
// is a structured automaton over the *same* vocabularies and slots into
// the secure-emulation harness unchanged.
//
// Mechanics: wrapper states are (inner state, mode) with mode in
// {honest, lying}; every transition re-draws the mode of the target state
// Bernoulli(rate) (the per-emission corruption coin, folded into the
// transition distribution so everything stays an exact PSIOA). In lying
// mode the signature and the fired labels are mapped through the flip
// involution; the inner automaton always advances by the *actual* action.
// The start state is honest: corruption is active from the first
// transition on.

#include <utility>
#include <vector>

#include "psioa/rename.hpp"
#include "secure/structured.hpp"
#include "util/rational.hpp"

namespace cdse {

/// One pair of mutually substitutable report actions (e.g. result0 <->
/// result1). Both must belong to the same vocabulary class of the
/// structured automaton being corrupted.
using FlipPair = std::pair<ActionId, ActionId>;

class ByzantinePsioa : public Psioa {
 public:
  /// `flip` must be an involution (built by make_flip_involution).
  ByzantinePsioa(PsioaPtr inner, ActionBijection flip, Rational rate);

  State start_state() override;
  Signature signature(State q) override;
  StateDist transition(State q, ActionId a) override;
  BitString encode_state(State q) override;
  std::string state_label(State q) override;

  Psioa& inner() { return *inner_; }
  const Rational& rate() const { return rate_; }

  /// True at states currently misreporting.
  bool lying(State q) const;

  InternStats intern_stats() const override;
  void reserve_interning(std::size_t expected_states) override;

 private:
  // (inner state, lying?) pairs, packed as two-word keys in the shared
  // arena-backed interner.
  using Key = std::pair<State, bool>;
  State intern(State inner_q, bool lying);
  Key key_at(State q) const;

  PsioaPtr inner_;
  ActionBijection flip_;
  Rational rate_;
  StateInterner interned_;
};

/// Builds the involution a <-> b for every pair (throws on overlap).
ActionBijection make_flip_involution(const std::vector<FlipPair>& pairs);

/// Corrupts a structured automaton: each flip pair's two actions must
/// belong to the same vocabulary class (both environment-facing, both
/// adversary outputs, ...); throws std::invalid_argument otherwise. The
/// result keeps the original vocabularies (the corrupted party speaks the
/// same interface -- it just lies on it with probability `rate`).
StructuredPsioa corrupt_structured(const StructuredPsioa& a,
                                   const std::vector<FlipPair>& flips,
                                   const Rational& rate);

}  // namespace cdse
