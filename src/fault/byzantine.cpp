#include "fault/byzantine.hpp"

#include <stdexcept>

namespace cdse {

ByzantinePsioa::ByzantinePsioa(PsioaPtr inner, ActionBijection flip,
                               Rational rate)
    : Psioa("byzantine_" + inner->name()),
      inner_(std::move(inner)),
      flip_(std::move(flip)),
      rate_(std::move(rate)) {
  if (rate_ < Rational(0) || Rational(1) < rate_) {
    throw std::invalid_argument("ByzantinePsioa: rate outside [0, 1]");
  }
}

State ByzantinePsioa::intern(State inner_q, bool lying) {
  const std::uint64_t words[2] = {inner_q, lying ? 1u : 0u};
  return interned_.intern_tuple(words, 2);
}

ByzantinePsioa::Key ByzantinePsioa::key_at(State q) const {
  if (q >= interned_.size()) {
    throw std::logic_error("ByzantinePsioa: unknown state handle");
  }
  const TupleRef words = interned_.tuple(q);
  return Key{words[0], words[1] != 0};
}

InternStats ByzantinePsioa::intern_stats() const {
  InternStats s = interned_.stats();
  s += inner_->intern_stats();
  return s;
}

void ByzantinePsioa::reserve_interning(std::size_t expected_states) {
  interned_.reserve(expected_states);
  inner_->reserve_interning(expected_states);
}

State ByzantinePsioa::start_state() {
  return intern(inner_->start_state(), /*lying=*/false);
}

bool ByzantinePsioa::lying(State q) const { return key_at(q).second; }

Signature ByzantinePsioa::signature(State q) {
  const Key key = key_at(q);
  Signature sig = inner_->signature(key.first);
  if (!key.second) return sig;
  Signature mapped = flip_.apply(sig);
  if (!mapped.valid()) {
    throw std::logic_error(
        "ByzantinePsioa: flipped signature not valid at state " +
        inner_->state_label(key.first));
  }
  return mapped;
}

StateDist ByzantinePsioa::transition(State q, ActionId a) {
  const Key key = key_at(q);
  // The label fired externally is `a`; in lying mode the inner automaton
  // advances by the action actually meant (flip is an involution, so
  // apply() inverts itself).
  const ActionId actual = key.second ? flip_.apply(a) : a;
  const StateDist eta = inner_->transition(key.first, actual);
  if (rate_.is_zero()) {
    StateDist out;
    for (const auto& [q2, w] : eta.entries()) {
      out.add(intern(q2, false), w);
    }
    return out;
  }
  const Rational honest = Rational(1) - rate_;
  StateDist out;
  for (const auto& [q2, w] : eta.entries()) {
    if (!honest.is_zero()) out.add(intern(q2, false), honest * w);
    out.add(intern(q2, true), rate_ * w);
  }
  return out;
}

BitString ByzantinePsioa::encode_state(State q) {
  const Key key = key_at(q);
  BitString bits = BitString::pair(inner_->encode_state(key.first),
                                   BitString::from_uint(key.second ? 1 : 0));
  return bits;
}

std::string ByzantinePsioa::state_label(State q) {
  const Key key = key_at(q);
  return inner_->state_label(key.first) + (key.second ? "!lying" : "");
}

ActionBijection make_flip_involution(const std::vector<FlipPair>& pairs) {
  ActionBijection flip;
  for (const auto& [a, b] : pairs) {
    if (a == b) {
      throw std::invalid_argument(
          "make_flip_involution: a pair must contain two distinct actions");
    }
    flip.add(a, b);
    flip.add(b, a);
  }
  return flip;
}

StructuredPsioa corrupt_structured(const StructuredPsioa& a,
                                   const std::vector<FlipPair>& flips,
                                   const Rational& rate) {
  for (const auto& [x, y] : flips) {
    const bool env =
        set::contains(a.env_vocab(), x) && set::contains(a.env_vocab(), y);
    const bool adv_out = set::contains(a.adv_out_vocab(), x) &&
                         set::contains(a.adv_out_vocab(), y);
    const bool adv_in = set::contains(a.adv_in_vocab(), x) &&
                        set::contains(a.adv_in_vocab(), y);
    if (!env && !adv_out && !adv_in) {
      throw std::invalid_argument(
          "corrupt_structured: flip pair {" + ActionTable::instance().name(x) +
          ", " + ActionTable::instance().name(y) +
          "} does not sit inside one vocabulary class");
    }
  }
  auto corrupted = std::make_shared<ByzantinePsioa>(
      a.ptr(), make_flip_involution(flips), rate);
  return a.rebind(std::move(corrupted));
}

}  // namespace cdse
