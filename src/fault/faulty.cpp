#include "fault/faulty.hpp"

#include <stdexcept>

#include "protocols/channel.hpp"
#include "sched/schedulers.hpp"

namespace cdse {

FaultyPsioa::FaultyPsioa(PsioaPtr inner, FaultPlan plan, ActionSet targets,
                         const std::string& tag)
    : Psioa("faulty_" + inner->name()),
      inner_(std::move(inner)),
      plan_(std::move(plan)),
      targets_(std::move(targets)),
      a_deliver_(act("faultdeliver_" + tag)) {
  plan_.validate();
  set::normalize(targets_);
}

State FaultyPsioa::intern(State inner_q, ActionId pending) {
  const std::uint64_t words[2] = {inner_q, static_cast<std::uint64_t>(pending)};
  return interned_.intern_tuple(words, 2);
}

FaultyPsioa::Key FaultyPsioa::key_at(State q) const {
  if (q >= interned_.size()) {
    throw std::logic_error("FaultyPsioa: unknown state handle");
  }
  const TupleRef words = interned_.tuple(q);
  return Key{words[0], static_cast<ActionId>(words[1])};
}

InternStats FaultyPsioa::intern_stats() const {
  InternStats s = interned_.stats();
  s += inner_->intern_stats();
  return s;
}

void FaultyPsioa::reserve_interning(std::size_t expected_states) {
  interned_.reserve(expected_states);
  inner_->reserve_interning(expected_states);
}

State FaultyPsioa::start_state() {
  return intern(inner_->start_state(), kInvalidAction);
}

Signature FaultyPsioa::signature(State q) {
  const Key key = key_at(q);
  if (key.second != kInvalidAction) {
    Signature held;
    held.internal = ActionSet{a_deliver_};
    return held;
  }
  return inner_->signature(key.first);
}

void FaultyPsioa::add_processed(StateDist& out, State inner_q, ActionId a,
                                const Rational& w_normal,
                                const Rational& w_dup) {
  const StateDist eta = inner_->transition(inner_q, a);
  for (const auto& [q2, w2] : eta.entries()) {
    if (!w_normal.is_zero()) {
      out.add(intern(q2, kInvalidAction), w_normal * w2);
    }
    if (w_dup.is_zero()) continue;
    // Second application of the duplicated message, where still enabled.
    if (inner_->signature(q2).contains(a)) {
      const StateDist again = inner_->transition(q2, a);
      for (const auto& [q3, w3] : again.entries()) {
        out.add(intern(q3, kInvalidAction), w_dup * w2 * w3);
      }
    } else {
      out.add(intern(q2, kInvalidAction), w_dup * w2);
    }
  }
}

StateDist FaultyPsioa::transition(State q, ActionId a) {
  const Key key = key_at(q);
  if (key.second != kInvalidAction) {
    if (a != a_deliver_) {
      throw std::logic_error(
          "FaultyPsioa: only the delivery action is enabled while a "
          "delayed message is held");
    }
    // Delivery applies the held transition normally (no re-fault).
    StateDist out;
    add_processed(out, key.first, key.second, Rational(1), Rational(0));
    return out;
  }
  const State inner_q = key.first;
  if (!set::contains(targets_, a)) {
    StateDist out;
    add_processed(out, inner_q, a, Rational(1), Rational(0));
    return out;
  }
  const Rational normal =
      Rational(1) - plan_.drop - plan_.duplicate - plan_.delay;
  StateDist out;
  if (!plan_.drop.is_zero()) {
    out.add(intern(inner_q, kInvalidAction), plan_.drop);  // lost: no move
  }
  if (!plan_.delay.is_zero()) {
    out.add(intern(inner_q, a), plan_.delay);  // held for later delivery
  }
  add_processed(out, inner_q, a, normal, plan_.duplicate);
  return out;
}

BitString FaultyPsioa::encode_state(State q) {
  const Key key = key_at(q);
  return BitString::pair(
      inner_->encode_state(key.first),
      BitString::from_uint(
          key.second == kInvalidAction ? 0 : std::uint64_t{key.second} + 1));
}

std::string FaultyPsioa::state_label(State q) {
  const Key key = key_at(q);
  std::string label = inner_->state_label(key.first);
  if (key.second != kInvalidAction) {
    label += "+held(" + ActionTable::instance().name(key.second) + ")";
  }
  return label;
}

PsioaPtr inject_faults(PsioaPtr inner, const FaultPlan& plan,
                       ActionSet targets, const std::string& tag) {
  plan.validate();
  return std::make_shared<FaultyPsioa>(std::move(inner), plan,
                                       std::move(targets), tag);
}

PsioaPtr make_faulty_channel(const std::string& tag, const FaultPlan& plan) {
  ActionSet sends = acts({"send0_" + tag, "send1_" + tag});
  return inject_faults(make_channel(tag), plan, std::move(sends), tag);
}

PerturbedScheduler::PerturbedScheduler(SchedulerPtr inner,
                                       Rational reorder_rate, bool local_only)
    : inner_(std::move(inner)),
      rate_(std::move(reorder_rate)),
      local_only_(local_only) {
  if (rate_ < Rational(0) || Rational(1) < rate_) {
    throw std::invalid_argument(
        "PerturbedScheduler: reorder rate outside [0, 1]");
  }
}

ActionChoice PerturbedScheduler::choose(Psioa& automaton,
                                        const ExecFragment& alpha) {
  ActionChoice base = inner_->choose(automaton, alpha);
  if (rate_.is_zero()) return base;
  const ActionSet options =
      schedulable_actions(automaton, alpha.lstate(), local_only_);
  if (options.empty()) return base;
  ActionChoice out;
  const Rational keep = Rational(1) - rate_;
  for (const auto& [a, w] : base.entries()) out.add(a, keep * w);
  const Rational each =
      rate_ / Rational(static_cast<std::int64_t>(options.size()));
  for (const ActionId a : options) out.add(a, each);
  return out;
}

}  // namespace cdse
