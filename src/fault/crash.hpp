#pragma once
// Crash-stop faults as intrinsic PCA destruction (Def 2.12 / Def 2.14).
//
// The paper destroys an automaton by having its signature go empty:
// reduce() (Def 2.12) then drops it from the configuration, and because
// DynamicPca derives its transitions from intrinsic configuration
// transitions (Def 2.14), the drop *is* a destruction transition of the
// PCA -- no engine-level special case. CrashablePsioa realizes a
// crash-stop schedule in exactly those terms: it forwards the inner
// automaton verbatim while a transition budget lasts, and every state
// reached once the budget is exhausted has the empty signature. Wrapping
// it in a (single-member) DynamicPca therefore yields a PCA whose
// crash *is* an intrinsic destruction transition, checkable with
// check_pca_constraints() like any other PCA.

#include <string>
#include <utility>

#include "pca/dynamic_pca.hpp"
#include "psioa/psioa.hpp"

namespace cdse {

class CrashablePsioa : public Psioa {
 public:
  /// After `crash_after` transitions of the wrapper (counting every fired
  /// action -- inputs included: a crashed process stops reacting to its
  /// whole interface), the reached state's signature is empty.
  CrashablePsioa(PsioaPtr inner, std::size_t crash_after);

  State start_state() override;
  Signature signature(State q) override;
  StateDist transition(State q, ActionId a) override;
  BitString encode_state(State q) override;
  std::string state_label(State q) override;

  Psioa& inner() { return *inner_; }
  std::size_t crash_after() const { return crash_after_; }

  /// True at states where the budget is exhausted (signature empty).
  bool crashed(State q) const;

  InternStats intern_stats() const override;
  void reserve_interning(std::size_t expected_states) override;

 private:
  // Inner handles are opaque uint64s of unknown range, so wrapper states
  // are interned (inner state, budget left) pairs, packed as two-word
  // keys in the shared arena-backed interner.
  using Key = std::pair<State, std::size_t>;
  State intern(State inner_q, std::size_t remaining);
  Key key_at(State q) const;

  PsioaPtr inner_;
  std::size_t crash_after_;
  StateInterner interned_;
};

/// Wraps `inner` so it crash-stops after `crash_after` transitions.
PsioaPtr make_crashable(PsioaPtr inner, std::size_t crash_after);

/// Registers crashable(inner) in `registry` and returns the single-member
/// DynamicPca around it: the crash surfaces as an intrinsic destruction
/// transition (the configuration reduces to empty).
PcaPtr make_crash_stop_pca(const std::string& name, RegistryPtr registry,
                           PsioaPtr inner, std::size_t crash_after);

}  // namespace cdse
