#pragma once
// FaultPlan: one declarative description of an adversarial run-time
// condition, consumed by the adapter automata of this module.
//
// The paper's systems are meant to survive *dynamic* adversarial
// conditions (Section 2.5's run-time creation/destruction motivation), but
// faults must stay inside the formalism to say anything about emulation:
// every fault here is realized as PSIOA/PCA structure, never as engine
// trickery. Loss, duplication and delay are probabilistic branches of an
// adapter automaton's transitions (exact rationals, so swept epsilons stay
// exact); crash-stop is an intrinsic PCA destruction transition (Def 2.14
// via the Def 2.12 empty-signature sentinel); Byzantine corruption is a
// relabelling wrapper over structured automata; reordering is scheduler
// perturbation (message reordering *is* scheduling in an IOA world).
//
// Rates are exact rationals because the fault sweeps compare emulation
// epsilon against closed forms; `seed` only matters to sampled runs.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/rational.hpp"

namespace cdse {

struct FaultPlan {
  /// No crash scheduled.
  static constexpr std::size_t kNeverCrash = static_cast<std::size_t>(-1);

  /// P[a targeted action is lost before the wrapped automaton processes
  /// it] -- the action still fires (the sender cannot tell), the inner
  /// state does not advance.
  Rational drop{0};

  /// P[a targeted action is processed twice] -- receiver-side duplication;
  /// the second application only happens where the action is still
  /// enabled.
  Rational duplicate{0};

  /// P[processing is deferred behind one internal delivery step].
  Rational delay{0};

  /// P[the scheduler's choice is replaced by a uniform pick over the
  /// locally controlled enabled actions] -- adversarial reordering.
  Rational reorder{0};

  /// Crash-stop schedule: the wrapped automaton executes this many
  /// transitions, then its signature goes empty (destruction sentinel).
  std::size_t crash_after = kNeverCrash;

  /// Stream base for sampled (Monte-Carlo) runs of faulty systems; exact
  /// enumeration never consumes it.
  std::uint64_t seed = 0;

  bool crashes() const { return crash_after != kNeverCrash; }

  /// True when every rate is zero and no crash is scheduled -- adapters
  /// built from such a plan are trace-equivalent to what they wrap.
  bool fault_free() const;

  /// Throws std::invalid_argument unless every rate is in [0, 1] and
  /// drop + duplicate + delay <= 1 (they are mutually exclusive outcomes
  /// of one targeted firing).
  void validate() const;

  std::string describe() const;

  // Named shorthands for the common sweeps.
  static FaultPlan none() { return FaultPlan{}; }
  static FaultPlan lossy(const Rational& p);
  static FaultPlan fail_stop(std::size_t after);
};

}  // namespace cdse
