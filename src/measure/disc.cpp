#include "measure/disc.hpp"

// Header-only templates; compile them standalone once and pin the archive.
namespace cdse {
namespace {
[[maybe_unused]] void instantiation_smoke() {
  Disc<int> d = Disc<int>::dirac(3);
  d.add(4, 0.0);
  (void)d.total();
  ExactDisc<int> e = ExactDisc<int>::dirac(1);
  (void)balance_distance(e, e);
  std::vector<std::pair<int, Rational>> raw;
  detail::accumulate_sorted(raw, 2, Rational(1, 2));
}
}  // namespace
}  // namespace cdse
