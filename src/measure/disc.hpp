#pragma once
// Discrete (sub-)probability measures -- Disc(S) and SubDisc(S) of
// paper Section 2.1 and Def 3.1.
//
// Disc<T, W> is a finite-support measure over T with weights W, stored as
// a sorted association vector (canonical form: support sorted by T, no
// zero weights). W = double for the sampling engine, W = Rational for the
// exact cone enumerator -- exactness is what lets experiments assert
// "epsilon is literally zero" (Lemma D.1) instead of "epsilon is small".
//
// Total weight 1 is a *checked property* (is_probability), not an
// invariant: schedulers return sub-probability measures that may halt
// with the residual mass (Def 3.1), so the same type serves both.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rational.hpp"

namespace cdse {

namespace detail {
inline bool weight_is_zero(double w) { return w == 0.0; }
inline bool weight_is_zero(const Rational& w) { return w.is_zero(); }
inline double weight_one(double) { return 1.0; }
inline Rational weight_one(const Rational&) { return Rational(1); }

/// Accumulates weight w on t in a sorted association vector, preserving
/// the canonical form (support sorted by T, no zero weights). This is
/// the one exact-sum merge primitive: Disc::add delegates here, and the
/// snapshot quotient builder and the bisimulation partition refiner use
/// it directly on raw entry vectors, so "merge exact rows" means the
/// same thing everywhere.
template <typename T, typename W>
void accumulate_sorted(std::vector<std::pair<T, W>>& entries, const T& t,
                       const W& w) {
  if (weight_is_zero(w)) return;
  auto it = std::lower_bound(
      entries.begin(), entries.end(), t,
      [](const std::pair<T, W>& e, const T& key) { return e.first < key; });
  if (it != entries.end() && it->first == t) {
    it->second += w;
    if (weight_is_zero(it->second)) entries.erase(it);
  } else {
    entries.insert(it, {t, w});
  }
}
}  // namespace detail

template <typename T, typename W = double>
class Disc {
 public:
  using Entry = std::pair<T, W>;

  Disc() = default;

  /// Dirac measure on {t} (Section 2.1).
  static Disc dirac(T t) {
    Disc d;
    d.entries_.emplace_back(std::move(t), detail::weight_one(W{}));
    return d;
  }

  /// Accumulates weight w on t (merging with any existing mass on t).
  void add(const T& t, const W& w) { detail::accumulate_sorted(entries_, t, w); }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t support_size() const { return entries_.size(); }

  /// supp(eta): the points carrying nonzero mass.
  std::vector<T> support() const {
    std::vector<T> s;
    s.reserve(entries_.size());
    for (const auto& [t, w] : entries_) s.push_back(t);
    return s;
  }

  W mass(const T& t) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), t,
        [](const Entry& e, const T& key) { return e.first < key; });
    if (it != entries_.end() && it->first == t) return it->second;
    return W{};
  }

  W total() const {
    W acc{};
    for (const auto& [t, w] : entries_) acc += w;
    return acc;
  }

  bool is_probability(double tol = 1e-12) const {
    if constexpr (std::is_same_v<W, Rational>) {
      (void)tol;
      return total() == Rational(1);
    } else {
      const double t = total();
      return t > 1.0 - tol && t < 1.0 + tol;
    }
  }

  /// Image measure under f (Def 3.5 uses this for f-dist).
  template <typename U, typename F>
  Disc<U, W> map(F&& f) const {
    Disc<U, W> out;
    for (const auto& [t, w] : entries_) out.add(f(t), w);
    return out;
  }

  /// Product measure combined through `pair_fn` (Section 2.1; Def 2.5
  /// builds eta_1 (x) ... (x) eta_n this way for composite transitions).
  template <typename U, typename V, typename F>
  static Disc product(const Disc<U, W>& a, const Disc<V, W>& b, F&& pair_fn) {
    Disc out;
    for (const auto& [u, wu] : a.entries()) {
      for (const auto& [v, wv] : b.entries()) {
        out.add(pair_fn(u, v), wu * wv);
      }
    }
    return out;
  }

  /// Scales every weight (used when sequencing scheduler choices).
  Disc scaled(const W& c) const {
    Disc out;
    for (const auto& [t, w] : entries_) out.add(t, w * c);
    return out;
  }

  /// Conditions on total mass (normalizes); throws when empty.
  Disc normalized() const {
    const W tot = total();
    if (detail::weight_is_zero(tot))
      throw std::domain_error("Disc::normalized: zero mass");
    Disc out;
    for (const auto& [t, w] : entries_) out.add(t, w / tot);
    return out;
  }

  /// Samples from a probability measure given u ~ Uniform[0,1).
  /// Only available with double weights.
  const T& sample(double u) const {
    static_assert(std::is_same_v<W, double>,
                  "sampling requires double weights");
    double acc = 0.0;
    for (const auto& [t, w] : entries_) {
      acc += w;
      if (u < acc) return t;
    }
    return entries_.back().first;  // guard against fp round-off at u ~ 1
  }

  friend bool operator==(const Disc& a, const Disc& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<Entry> entries_;
};

template <typename T>
using ExactDisc = Disc<T, Rational>;

/// Balance distance of Def 3.6: the supremum over index families
/// (zeta_i)_{i in I} of |sum_i (mu(zeta_i) - nu(zeta_i))|, which for
/// finite-support measures is max(sum of positive pointwise differences,
/// sum of negative pointwise differences). For two probability measures
/// the two sums are equal and this is the total-variation distance.
template <typename T, typename W>
W balance_distance(const Disc<T, W>& mu, const Disc<T, W>& nu) {
  W pos{};
  W neg{};
  auto ia = mu.entries().begin();
  auto ib = nu.entries().begin();
  auto account = [&](const W& d) {
    if (d < W{}) {
      neg -= d;
    } else {
      pos += d;
    }
  };
  while (ia != mu.entries().end() && ib != nu.entries().end()) {
    if (ia->first < ib->first) {
      account(ia->second);
      ++ia;
    } else if (ib->first < ia->first) {
      account(-ib->second);
      ++ib;
    } else {
      account(ia->second - ib->second);
      ++ia;
      ++ib;
    }
  }
  for (; ia != mu.entries().end(); ++ia) account(ia->second);
  for (; ib != nu.entries().end(); ++ib) account(-ib->second);
  return pos < neg ? neg : pos;
}

/// Total-variation distance (coincides with balance_distance on
/// probability measures; kept as a named operation for readability).
template <typename T, typename W>
W tv_distance(const Disc<T, W>& mu, const Disc<T, W>& nu) {
  return balance_distance(mu, nu);
}

/// Lossy conversion used when comparing exact results to sampled ones.
template <typename T>
Disc<T, double> to_double(const ExactDisc<T>& d) {
  Disc<T, double> out;
  for (const auto& [t, w] : d.entries()) out.add(t, w.to_double());
  return out;
}

}  // namespace cdse
