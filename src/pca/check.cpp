#include "pca/check.hpp"

#include <map>
#include <queue>
#include <unordered_set>

namespace cdse {

namespace {

PcaCheckResult fail(PcaCheckResult r, std::string why) {
  r.ok = false;
  r.violation = std::move(why);
  return r;
}

}  // namespace

PcaCheckResult check_pca_constraints(Pca& x, std::size_t depth) {
  PcaCheckResult res;
  AutomatonRegistry& reg = x.registry();

  const State q0 = x.start_state();
  // Constraint 1: every automaton of config(start) is at its start state.
  {
    const Configuration c0 = x.config(q0);
    for (const auto& [aid, sub_state] : c0.items()) {
      if (sub_state != reg.aut(aid).start_state()) {
        return fail(res, "constraint 1 (start preservation): automaton '" +
                             reg.aut(aid).name() + "' not at start in " +
                             c0.to_string(reg));
      }
    }
  }

  std::unordered_set<State> seen{q0};
  std::queue<std::pair<State, std::size_t>> frontier;
  frontier.emplace(q0, 0);

  while (!frontier.empty()) {
    auto [q, d] = frontier.front();
    frontier.pop();
    ++res.states_checked;

    const Configuration cfg = x.config(q);
    if (!config_compatible(reg, cfg)) {
      return fail(res, "config(q) incompatible at " + x.state_label(q));
    }
    if (!is_reduced(reg, cfg)) {
      return fail(res, "config(q) not reduced at " + x.state_label(q));
    }

    const Signature intrinsic_sig = config_signature(reg, cfg);
    const ActionSet hidden = x.hidden_actions(q);
    if (!set::subset(hidden, intrinsic_sig.out)) {
      return fail(res,
                  "hidden-actions(q) not a subset of out(config(q)) at " +
                      x.state_label(q));
    }
    // Constraint 4.
    const Signature declared = x.signature(q);
    if (!(declared == hide(intrinsic_sig, hidden))) {
      return fail(res, "constraint 4 (action hiding) violated at " +
                           x.state_label(q) + ": sig(X)(q) = " +
                           declared.to_string() + " but hide(sig(C), h) = " +
                           hide(intrinsic_sig, hidden).to_string());
    }

    // Constraints 2 and 3: for every action of sig(C) (equivalently of
    // sig(X)(q), hiding only reshuffles classes), the state distribution
    // must correspond to the intrinsic transition through f = config(X).
    for (ActionId a : declared.all()) {
      ++res.transitions_checked;
      const std::vector<Aid> phi = x.created(q, a);
      for (Aid created : phi) {
        if (cfg.contains(created)) {
          return fail(res, "created(q)(a) intersects auts(config(q)) at " +
                               x.state_label(q));
        }
      }
      const ConfigDist intrinsic = intrinsic_transition(reg, cfg, a, phi);
      const StateDist eta = x.transition(q, a);

      // f restricted to supp(eta) must be a bijection onto supp(intrinsic)
      // preserving probabilities (Def 2.15).
      std::map<Configuration, Rational> mapped;
      for (const auto& [q2, w] : eta.entries()) {
        const Configuration c2 = x.config(q2);
        auto [it, inserted] = mapped.emplace(c2, w);
        if (!inserted) {
          return fail(res,
                      "constraint 2 (top/down): config(X) not injective on "
                      "supp(eta) at " +
                          x.state_label(q) + " action '" +
                          ActionTable::instance().name(a) + "'");
        }
      }
      ConfigDist mapped_dist;
      for (const auto& [c2, w] : mapped) mapped_dist.add(c2, w);
      if (!(mapped_dist == intrinsic)) {
        return fail(res,
                    "constraints 2/3 (top-down/bottom-up simulation): state "
                    "distribution does not match intrinsic transition at " +
                        x.state_label(q) + " action '" +
                        ActionTable::instance().name(a) + "'");
      }

      if (d < depth) {
        for (State q2 : eta.support()) {
          if (seen.insert(q2).second) frontier.emplace(q2, d + 1);
        }
      }
    }
  }
  return res;
}

}  // namespace cdse
