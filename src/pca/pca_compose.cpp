#include "pca/pca_compose.hpp"

#include <stdexcept>

namespace cdse {

namespace {
std::string pca_name(const std::vector<PcaPtr>& components) {
  std::string n;
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i) n += "||";
    n += components[i]->name();
  }
  return n;
}

RegistryPtr shared_registry(const std::vector<PcaPtr>& components) {
  if (components.empty()) {
    throw std::invalid_argument("ComposedPca: empty component list");
  }
  RegistryPtr reg = components[0]->registry_ptr();
  for (const auto& c : components) {
    if (c->registry_ptr() != reg) {
      throw std::logic_error(
          "ComposedPca: components must share one AutomatonRegistry");
    }
  }
  return reg;
}
}  // namespace

ComposedPca::ComposedPca(std::vector<PcaPtr> components)
    : Pca(pca_name(components), shared_registry(components)),
      components_(std::move(components)) {
  std::vector<PsioaPtr> parts(components_.begin(), components_.end());
  inner_ = std::make_shared<ComposedPsioa>(std::move(parts));
}

Configuration ComposedPca::config(State q) {
  Configuration acc;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Configuration ci = components_[i]->config(inner_->project(q, i));
    for (const auto& [aid, sub_state] : ci.items()) {
      if (acc.contains(aid)) {
        throw std::logic_error(
            "ComposedPca " + name() + ": component configurations overlap " +
            "on automaton '" + registry().aut(aid).name() + "'");
      }
      acc = acc.with(aid, sub_state);
    }
  }
  return acc;
}

std::vector<Aid> ComposedPca::created(State q, ActionId a) {
  // Def 2.19 with the convention created_i(q_i)(a) = {} when a is not in
  // sig(X_i)(q_i).
  SortedSet<Aid> acc;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const State qi = inner_->project(q, i);
    if (!components_[i]->signature(qi).contains(a)) continue;
    for (Aid created : components_[i]->created(qi, a)) {
      set::insert(acc, created);
    }
  }
  return acc;
}

ActionSet ComposedPca::hidden_actions(State q) {
  ActionSet acc;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    acc = set::unite(acc,
                     components_[i]->hidden_actions(inner_->project(q, i)));
  }
  return acc;
}

std::shared_ptr<ComposedPca> compose_pca(std::vector<PcaPtr> components) {
  return std::make_shared<ComposedPca>(std::move(components));
}

}  // namespace cdse
