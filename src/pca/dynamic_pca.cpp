#include "pca/dynamic_pca.hpp"

#include <algorithm>
#include <stdexcept>

#include "psioa/compose.hpp"  // IncompatibilityError

namespace cdse {

DynamicPca::DynamicPca(std::string name, RegistryPtr registry,
                       std::vector<Aid> initial, CreationPolicy creation,
                       HidingPolicy hiding)
    : Pca(std::move(name), std::move(registry)),
      initial_(std::move(initial)),
      creation_(std::move(creation)),
      hiding_(std::move(hiding)) {}

State DynamicPca::intern_config(const Configuration& c) {
  // Canonical word encoding: the items are already sorted by Aid, so the
  // flat (aid, state) word sequence is a unique key for the reduced
  // configuration.
  keybuf_.clear();
  keybuf_.reserve(c.items().size() * 2);
  for (const auto& [aid, sub_state] : c.items()) {
    keybuf_.push_back(static_cast<State>(aid));
    keybuf_.push_back(sub_state);
  }
  const State before = interned_.size();
  const State q = interned_.intern_tuple(keybuf_.data(), keybuf_.size());
  if (q == before) configs_.push_back(c);  // fresh key: store its config
  return q;
}

InternStats DynamicPca::intern_stats() const {
  InternStats s = interned_.stats();
  for (Aid aid = 0; aid < registry().size(); ++aid) {
    s += registry().aut(aid).intern_stats();
  }
  return s;
}

void DynamicPca::reserve_interning(std::size_t expected_states) {
  interned_.reserve(expected_states);
  for (Aid aid = 0; aid < registry().size(); ++aid) {
    registry().aut(aid).reserve_interning(expected_states);
  }
}

State DynamicPca::start_state() {
  std::vector<std::pair<Aid, State>> items;
  items.reserve(initial_.size());
  for (Aid aid : initial_) {
    items.emplace_back(aid, registry().aut(aid).start_state());
  }
  Configuration c{std::move(items)};
  if (!is_reduced(registry(), c)) {
    throw std::logic_error("DynamicPca " + name() +
                           ": initial configuration is not reduced");
  }
  if (!config_compatible(registry(), c)) {
    throw IncompatibilityError("DynamicPca " + name() +
                               ": initial configuration incompatible");
  }
  return intern_config(c);
}

Signature DynamicPca::compute_signature(State q) {
  const Configuration& c = config_at(q);
  // Constraint 4: sig(X)(q) = hide(sig(config(X)(q)), hidden-actions(q)).
  return hide(config_signature(registry(), c), hidden_actions(q));
}

StateDist DynamicPca::compute_transition(State q, ActionId a) {
  // Deque slots are stable across intern_config growth, so a reference
  // suffices (the vector-backed store needed a defensive copy here).
  const Configuration& c = config_at(q);
  if (!config_signature(registry(), c).contains(a)) {
    throw std::logic_error("DynamicPca " + name() + ": action '" +
                           ActionTable::instance().name(a) +
                           "' not enabled at " + state_label(q));
  }
  const std::vector<Aid> phi = creation_(c, a);
  const ConfigDist eta = intrinsic_transition(registry(), c, a, phi);
  // Constraint 2/3: the state distribution is the configuration
  // distribution pulled through the interning bijection f = config(X).
  StateDist out;
  for (const auto& [cfg, w] : eta.entries()) {
    out.add(intern_config(cfg), w);
  }
  if (on_destroyed_) {
    // Empty-signature destruction (Def 2.12): an automaton present in c
    // but absent from *every* successor configuration has been destroyed
    // by this transition. Report each such aid exactly once.
    for (const auto& [aid, sub_state] : c.items()) {
      (void)sub_state;
      bool survives = false;
      for (const auto& [cfg, w] : eta.entries()) {
        (void)w;
        if (cfg.contains(aid)) {
          survives = true;
          break;
        }
      }
      if (!survives) on_destroyed_(aid, q, a);
    }
  }
  return out;
}

std::size_t DynamicPca::retire_states_of(const std::vector<Aid>& dead_aids) {
  if (dead_aids.empty()) return 0;
  if (snapshot_outstanding()) {
    throw std::logic_error(
        "DynamicPca " + name() +
        ": retire_states_of while a frozen snapshot is outstanding");
  }
  auto is_dead = [&](Aid aid) {
    return std::find(dead_aids.begin(), dead_aids.end(), aid) !=
           dead_aids.end();
  };
  for (Aid aid : initial_) {
    if (is_dead(aid)) {
      throw std::logic_error("DynamicPca " + name() +
                             ": cannot retire initial-configuration member");
    }
  }
  std::size_t retired = 0;
  for (State q = 0; q < configs_.size(); ++q) {
    if (!interned_.is_live(q)) continue;
    const Configuration& c = configs_[q];
    bool mentions_dead = false;
    for (const auto& [aid, sub_state] : c.items()) {
      (void)sub_state;
      if (is_dead(aid)) {
        mentions_dead = true;
        break;
      }
    }
    if (!mentions_dead) continue;
    interned_.retire(q);
    configs_[q] = Configuration();  // drop the stored items immediately
    ++retired;
  }
  if (retired == 0) return 0;
  states_retired_ += retired;
  interned_.collect();
  // Memoized rows may target retired states (e.g. the row that *led into*
  // the dead session); drop them so nothing resurrects a stale handle.
  invalidate_states([this](State q) { return !interned_.is_live(q); });
  return retired;
}

BitString DynamicPca::encode_state(State q) {
  const Configuration& c = config_at(q);
  std::vector<BitString> parts;
  parts.reserve(c.items().size() + 1);
  parts.push_back(BitString::from_uint(c.items().size()));
  for (const auto& [aid, sub_state] : c.items()) {
    parts.push_back(BitString::pair(
        BitString::from_uint(aid),
        registry().aut(aid).encode_state(sub_state)));
  }
  return BitString::pack(parts);
}

std::string DynamicPca::state_label(State q) {
  return config_at(q).to_string(registry());
}

Configuration DynamicPca::config(State q) { return config_at(q); }

std::vector<Aid> DynamicPca::created(State q, ActionId a) {
  std::vector<Aid> phi = creation_(config_at(q), a);
  std::sort(phi.begin(), phi.end());
  phi.erase(std::unique(phi.begin(), phi.end()), phi.end());
  return phi;
}

ActionSet DynamicPca::hidden_actions(State q) {
  const Configuration& c = config_at(q);
  // Def 2.16 item 4 requires hidden-actions(q) subset of out(config(q)).
  return set::intersect(hiding_(c), config_signature(registry(), c).out);
}

const Configuration& DynamicPca::config_at(State q) const {
  if (q >= configs_.size() || !interned_.is_live(q)) {
    throw std::out_of_range("DynamicPca " + name() +
                            ": unknown or retired state handle");
  }
  return configs_[q];
}

}  // namespace cdse
