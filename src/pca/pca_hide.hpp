#pragma once
// Hiding on PCA (Def 2.17).
//
// hide(X, h) differs from X only in its signature and hidden-actions
// mapping: the hidden set grows by h(q) and the signature internalizes
// those outputs. Configurations and creation are untouched.

#include "pca/pca.hpp"
#include "psioa/hide.hpp"

namespace cdse {

class HiddenPca : public Pca {
 public:
  HiddenPca(PcaPtr inner, HidingFn h);
  HiddenPca(PcaPtr inner, ActionSet constant);

  State start_state() override { return inner_->start_state(); }
  BitString encode_state(State q) override { return inner_->encode_state(q); }
  std::string state_label(State q) override {
    return inner_->state_label(q);
  }
  void set_memoization(bool on) override {
    MemoPsioa::set_memoization(on);
    inner_->set_memoization(on);
  }

  Configuration config(State q) override { return inner_->config(q); }
  std::vector<Aid> created(State q, ActionId a) override {
    return inner_->created(q, a);
  }
  ActionSet hidden_actions(State q) override;

  Pca& inner() { return *inner_; }

 protected:
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override {
    return inner_->transition(q, a);
  }

 private:
  ActionSet extra_hidden_at(State q);

  PcaPtr inner_;
  HidingFn h_;
};

inline PcaPtr hide_pca(PcaPtr x, ActionSet s) {
  return std::make_shared<HiddenPca>(std::move(x), std::move(s));
}

inline PcaPtr hide_pca(PcaPtr x, HidingFn h) {
  return std::make_shared<HiddenPca>(std::move(x), std::move(h));
}

}  // namespace cdse
