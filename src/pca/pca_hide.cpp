#include "pca/pca_hide.hpp"

namespace cdse {

HiddenPca::HiddenPca(PcaPtr inner, HidingFn h)
    : Pca("hide(" + inner->name() + ")", inner->registry_ptr()),
      inner_(std::move(inner)),
      h_(std::move(h)) {}

HiddenPca::HiddenPca(PcaPtr inner, ActionSet constant)
    : Pca("hide(" + inner->name() + ")", inner->registry_ptr()),
      inner_(std::move(inner)),
      h_([s = std::move(constant)](State) { return s; }) {}

ActionSet HiddenPca::extra_hidden_at(State q) {
  // Def 2.17 requires h(q) subset of out(X)(q); intersect defensively.
  return set::intersect(h_(q), inner_->signature(q).out);
}

Signature HiddenPca::compute_signature(State q) {
  return hide(inner_->signature(q), extra_hidden_at(q));
}

ActionSet HiddenPca::hidden_actions(State q) {
  return set::unite(inner_->hidden_actions(q), extra_hidden_at(q));
}

}  // namespace cdse
