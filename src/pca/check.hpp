#pragma once
// Independent verifier for the PCA constraints of Def 2.16.
//
// DynamicPca satisfies the constraints by construction; this checker
// exists so that *any* Pca -- including compositions (Def 2.19) and
// hidings (Def 2.17), whose closure the paper asserts -- can be verified
// against the definition by exhaustive exploration of the reachable
// prefix up to a transition depth.

#include <string>

#include "pca/pca.hpp"

namespace cdse {

struct PcaCheckResult {
  bool ok = true;
  std::string violation;  // first violated constraint, human-readable
  std::size_t states_checked = 0;
  std::size_t transitions_checked = 0;

  explicit operator bool() const { return ok; }
};

/// Explores reachable states of X up to `depth` transitions and checks:
///  1. start-state preservation,
///  2. top/down simulation  (transition matches intrinsic transition),
///  3. bottom/up simulation (every intrinsic transition is a transition),
///  4. action hiding        (sig(X)(q) == hide(sig(config), hidden)),
/// plus the Def 2.16 side conditions: config(q) reduced and compatible,
/// hidden-actions(q) subset of out(config(q)), and config restricted to
/// transition supports injective (the f-bijection of Def 2.15).
PcaCheckResult check_pca_constraints(Pca& x, std::size_t depth);

}  // namespace cdse
