#include "pca/configuration.hpp"

#include <algorithm>
#include <stdexcept>

#include "psioa/compose.hpp"  // IncompatibilityError

namespace cdse {

Aid AutomatonRegistry::add(PsioaPtr automaton) {
  if (!automaton) throw std::invalid_argument("registry: null automaton");
  for (const auto& existing : automata_) {
    if (existing->name() == automaton->name()) {
      throw std::logic_error("registry: duplicate automaton identifier '" +
                             automaton->name() + "'");
    }
  }
  automata_.push_back(std::move(automaton));
  return static_cast<Aid>(automata_.size() - 1);
}

Psioa& AutomatonRegistry::aut(Aid id) const { return *aut_ptr(id); }

PsioaPtr AutomatonRegistry::aut_ptr(Aid id) const {
  if (id >= automata_.size())
    throw std::out_of_range("registry: unknown Aid");
  return automata_[id];
}

Aid AutomatonRegistry::by_name(const std::string& name) const {
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    if (automata_[i]->name() == name) return static_cast<Aid>(i);
  }
  throw std::out_of_range("registry: no automaton named '" + name + "'");
}

bool AutomatonRegistry::has(const std::string& name) const {
  for (const auto& a : automata_) {
    if (a->name() == name) return true;
  }
  return false;
}

Configuration::Configuration(std::vector<std::pair<Aid, State>> items)
    : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < items_.size(); ++i) {
    if (items_[i - 1].first == items_[i].first) {
      throw std::invalid_argument("Configuration: duplicate Aid");
    }
  }
}

bool Configuration::contains(Aid a) const {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), a,
      [](const auto& e, Aid key) { return e.first < key; });
  return it != items_.end() && it->first == a;
}

State Configuration::state_of(Aid a) const {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), a,
      [](const auto& e, Aid key) { return e.first < key; });
  if (it == items_.end() || it->first != a) {
    throw std::out_of_range("Configuration: Aid not present");
  }
  return it->second;
}

std::vector<Aid> Configuration::auts() const {
  std::vector<Aid> a;
  a.reserve(items_.size());
  for (const auto& [aid, q] : items_) a.push_back(aid);
  return a;
}

Configuration Configuration::with(Aid a, State q) const {
  auto items = items_;
  auto it = std::lower_bound(
      items.begin(), items.end(), a,
      [](const auto& e, Aid key) { return e.first < key; });
  if (it != items.end() && it->first == a) {
    it->second = q;
  } else {
    items.insert(it, {a, q});
  }
  Configuration c;
  c.items_ = std::move(items);
  return c;
}

Configuration Configuration::without(Aid a) const {
  Configuration c;
  c.items_.reserve(items_.size());
  for (const auto& e : items_) {
    if (e.first != a) c.items_.push_back(e);
  }
  return c;
}

std::string Configuration::to_string(const AutomatonRegistry& reg) const {
  std::string s = "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i) s += ", ";
    s += reg.aut(items_[i].first).name() + ":" +
         reg.aut(items_[i].first).state_label(items_[i].second);
  }
  s += "}";
  return s;
}

bool config_compatible(const AutomatonRegistry& reg, const Configuration& c) {
  const auto& items = c.items();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Signature si = reg.aut(items[i].first).signature(items[i].second);
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      const Signature sj = reg.aut(items[j].first).signature(items[j].second);
      if (!compatible(si, sj)) return false;
    }
  }
  return true;
}

Signature config_signature(const AutomatonRegistry& reg,
                           const Configuration& c) {
  Signature acc;  // empty signature: identity of composition
  for (const auto& [aid, q] : c.items()) {
    const Signature s = reg.aut(aid).signature(q);
    if (!compatible(acc, s)) {
      throw IncompatibilityError("configuration " + c.to_string(reg) +
                                 " is not compatible");
    }
    acc = compose(acc, s);
  }
  return acc;
}

Configuration reduce(const AutomatonRegistry& reg, const Configuration& c) {
  std::vector<std::pair<Aid, State>> kept;
  kept.reserve(c.items().size());
  for (const auto& [aid, q] : c.items()) {
    if (!reg.aut(aid).signature(q).empty()) kept.emplace_back(aid, q);
  }
  return Configuration(std::move(kept));
}

bool is_reduced(const AutomatonRegistry& reg, const Configuration& c) {
  return reduce(reg, c) == c;
}

ConfigDist preserving_transition(const AutomatonRegistry& reg,
                                 const Configuration& c, ActionId a) {
  // Def 2.13 mirrors Def 2.5: per-component product with Dirac for the
  // components that do not carry `a` in their current signature.
  ConfigDist acc = ConfigDist::dirac(Configuration::empty());
  for (const auto& [aid, q] : c.items()) {
    Psioa& sub = reg.aut(aid);
    StateDist eta_i;
    if (sub.signature(q).contains(a)) {
      eta_i = sub.transition(q, a);
    } else {
      eta_i = StateDist::dirac(q);
    }
    const Aid aid_copy = aid;
    acc = ConfigDist::product(
        acc, eta_i, [aid_copy](const Configuration& pre, State s) {
          return pre.with(aid_copy, s);
        });
  }
  return acc;
}

ConfigDist intrinsic_transition(const AutomatonRegistry& reg,
                                const Configuration& c, ActionId a,
                                const std::vector<Aid>& phi) {
  if (!is_reduced(reg, c)) {
    throw std::logic_error(
        "intrinsic_transition: source configuration not reduced");
  }
  for (Aid created : phi) {
    if (c.contains(created)) {
      throw std::logic_error(
          "intrinsic_transition: phi intersects auts(C) (automaton '" +
          reg.aut(created).name() + "')");
    }
  }
  const ConfigDist eta_p = preserving_transition(reg, c, a);
  // eta_nr: extend every outcome with the created automata at start states.
  // eta_r: reduce and merge (destruction).
  ConfigDist eta_r;
  for (const auto& [cfg, w] : eta_p.entries()) {
    Configuration extended = cfg;
    for (Aid created : phi) {
      extended = extended.with(created, reg.aut(created).start_state());
    }
    eta_r.add(reduce(reg, extended), w);
  }
  return eta_r;
}

}  // namespace cdse
