#pragma once
// Probabilistic configuration automata (Def 2.16).
//
// A PCA *is* a PSIOA (its psioa(X) part) equipped with three extra
// attributes: a configuration mapping, a creation mapping and a
// hidden-actions mapping, tied together by the four constraints of
// Def 2.16. We model that by deriving Pca from MemoPsioa and adding the
// attribute accessors: the derived PSIOA part (intrinsic configuration
// transitions pushed through interning) is a pure function of the
// interned (state, action), so every concrete PCA gets the memoized
// signature/transition engine and compiled sampling rows for free. The
// canonical implementation (DynamicPca) satisfies the constraints by
// construction, and check.hpp re-verifies them for any Pca by bounded
// exploration.

#include "pca/configuration.hpp"
#include "psioa/memo.hpp"

namespace cdse {

class Pca : public MemoPsioa {
 public:
  Pca(std::string name, RegistryPtr registry)
      : MemoPsioa(std::move(name)), registry_(std::move(registry)) {}

  AutomatonRegistry& registry() { return *registry_; }
  const AutomatonRegistry& registry() const { return *registry_; }
  RegistryPtr registry_ptr() const { return registry_; }

  /// config(X)(q): the reduced compatible configuration attached to q.
  virtual Configuration config(State q) = 0;

  /// created(X)(q)(a): identifiers created when a fires at q (sorted).
  virtual std::vector<Aid> created(State q, ActionId a) = 0;

  /// hidden-actions(X)(q): subset of out(config(X)(q)) hidden at q.
  virtual ActionSet hidden_actions(State q) = 0;

 private:
  RegistryPtr registry_;
};

using PcaPtr = std::shared_ptr<Pca>;

/// created(X)(q)(a) builder signature: given the current configuration
/// and the action fired, decide which identifiers to create. Must return
/// identifiers disjoint from auts(config).
using CreationPolicy =
    std::function<std::vector<Aid>(const Configuration&, ActionId)>;

/// hidden-actions policy: configuration -> output actions to hide.
using HidingPolicy = std::function<ActionSet(const Configuration&)>;

inline CreationPolicy no_creation() {
  return [](const Configuration&, ActionId) { return std::vector<Aid>{}; };
}

inline HidingPolicy no_hiding() {
  return [](const Configuration&) { return ActionSet{}; };
}

}  // namespace cdse
