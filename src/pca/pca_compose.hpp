#pragma once
// PCA partial-composition X_1 || ... || X_n (Def 2.19).
//
// The PSIOA part is the composition of the component PSIOA parts; the
// configuration of a composite state is the union of the component
// configurations, creation sets and hidden-action sets are unions too.
// Components must share one AutomatonRegistry and their configurations
// must stay disjoint on the automata they hold (checked on contact).
// Closure under composition is the paper's Section 2.6 claim, re-verified
// by check_pca_constraints in tests.

#include "pca/pca.hpp"
#include "psioa/compose.hpp"

namespace cdse {

class ComposedPca : public Pca {
 public:
  explicit ComposedPca(std::vector<PcaPtr> components);

  // Psioa interface, forwarded to the inner composed PSIOA (which is
  // itself memoized; this outer memo just avoids the virtual hop).
  State start_state() override { return inner_->start_state(); }
  BitString encode_state(State q) override { return inner_->encode_state(q); }
  std::string state_label(State q) override {
    return inner_->state_label(q);
  }
  void set_memoization(bool on) override {
    MemoPsioa::set_memoization(on);
    inner_->set_memoization(on);
  }

  // Pca attributes: unions over components (Def 2.19).
  Configuration config(State q) override;
  std::vector<Aid> created(State q, ActionId a) override;
  ActionSet hidden_actions(State q) override;

  std::size_t component_count() const { return components_.size(); }
  Pca& component(std::size_t i) { return *components_[i]; }
  ComposedPsioa& inner() { return *inner_; }

 protected:
  Signature compute_signature(State q) override {
    return inner_->signature(q);
  }
  StateDist compute_transition(State q, ActionId a) override {
    return inner_->transition(q, a);
  }

 private:
  std::vector<PcaPtr> components_;
  std::shared_ptr<ComposedPsioa> inner_;
};

std::shared_ptr<ComposedPca> compose_pca(std::vector<PcaPtr> components);

inline std::shared_ptr<ComposedPca> compose_pca(PcaPtr a, PcaPtr b) {
  return compose_pca(std::vector<PcaPtr>{std::move(a), std::move(b)});
}

}  // namespace cdse
