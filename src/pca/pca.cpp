#include "pca/pca.hpp"

namespace cdse {
// Pca is an interface; nothing to define out of line (kept for archive
// stability and standalone header compilation).
}  // namespace cdse
