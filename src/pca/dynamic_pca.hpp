#pragma once
// DynamicPca: the canonical, correct-by-construction PCA.
//
// Its PSIOA part is *derived* from the configuration dynamics: states are
// interned reduced configurations, the signature of a state is the hidden
// intrinsic signature of its configuration (constraint 4), and the
// transition on `a` is the intrinsic transition with
// phi = creation_policy(config, a) pushed through the interning bijection
// (constraints 2 and 3). The start state is the initial configuration
// with every member at its own start state (constraint 1). This is the
// bottom-up reading of Def 2.16; the independent checker in check.hpp
// confirms the constraints on explored prefixes.
//
// Interning runs on the shared arena-backed StateInterner: a
// configuration's key is its canonical word encoding (the sorted
// (Aid, State) item pairs), so lookups hash a flat word array instead of
// lexicographically comparing full Configuration copies in a std::map.
// The Configuration values themselves live in a deque, whose slots are
// stable across growth -- transition() works on references, with no
// defensive copy.

#include <deque>
#include <vector>

#include "pca/pca.hpp"

namespace cdse {

class DynamicPca : public Pca {
 public:
  /// `initial`: the automata present in config(start); each starts at its
  /// own start state. The initial configuration must be reduced and
  /// compatible (throws otherwise).
  DynamicPca(std::string name, RegistryPtr registry,
             std::vector<Aid> initial, CreationPolicy creation,
             HidingPolicy hiding);

  DynamicPca(std::string name, RegistryPtr registry, std::vector<Aid> initial)
      : DynamicPca(std::move(name), std::move(registry), std::move(initial),
                   no_creation(), no_hiding()) {}

  // Psioa interface (the derived psioa(X) part); signature/transition
  // are served by the MemoPsioa cache over compute_* below.
  State start_state() override;
  BitString encode_state(State q) override;
  std::string state_label(State q) override;

  // Pca attributes.
  Configuration config(State q) override;
  std::vector<Aid> created(State q, ActionId a) override;
  ActionSet hidden_actions(State q) override;

  /// Interns a configuration as a state handle (exposed for tests that
  /// need to align hand-built configurations with states).
  State intern_config(const Configuration& c);

  InternStats intern_stats() const override;
  void reserve_interning(std::size_t expected_states) override;

  // -- session GC (run-time destruction made reclaimable) ------------------
  //
  // Def 2.12 destruction already removes an automaton from the live
  // configuration; these hooks make the *handle store* follow suit, so a
  // long-running service does not keep every dead session's interned
  // configurations forever.

  /// Observer for empty-signature destruction: invoked (once per
  /// destroyed automaton per transition computation) when a transition
  /// out of `from` on `a` produces a successor configuration that no
  /// longer contains `aid`. Fires from compute_transition, i.e. at most
  /// once per memoized (state, action) row. The service layer uses it to
  /// schedule epoch retirement of the session's states.
  using DestructionObserver =
      std::function<void(Aid aid, State from, ActionId a)>;
  void set_destruction_observer(DestructionObserver obs) {
    on_destroyed_ = std::move(obs);
  }

  /// Epoch-boundary GC: retires every interned state whose configuration
  /// contains any of `dead_aids`, drops the stored Configuration copies,
  /// collects the interner (releasing fully-dead arena chunks), and
  /// invalidates memoized rows that mention a retired state. Handles are
  /// never reused: re-creating a session re-interns its configurations
  /// under fresh handles, and retired handles throw from config()/
  /// signature()/transition().
  ///
  /// Caller contract (the epoch discipline): no live execution still
  /// holds a retired state, and no frozen snapshot of this instance is
  /// outstanding (throws std::logic_error if one is -- snapshots pin the
  /// handle space). Members of the initial configuration are never
  /// retired. Returns the number of states retired.
  std::size_t retire_states_of(const std::vector<Aid>& dead_aids);

  /// States retired by session GC so far.
  std::size_t states_retired() const { return states_retired_; }

 protected:
  // Uncached constraints-by-construction semantics of Def 2.16.
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override;

 private:
  const Configuration& config_at(State q) const;

  std::vector<Aid> initial_;
  CreationPolicy creation_;
  HidingPolicy hiding_;
  std::deque<Configuration> configs_;  // deque: stable slots across growth
  StateInterner interned_;
  std::vector<State> keybuf_;  // scratch for canonical word encodings
  DestructionObserver on_destroyed_;
  std::size_t states_retired_ = 0;
};

}  // namespace cdse
