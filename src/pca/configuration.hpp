#pragma once
// Configurations and intrinsic (dynamic) transitions (Section 2.5).
//
// A configuration pairs a finite set of automaton identifiers with a
// current state for each (Def 2.9). Identifiers (Aid) index an
// AutomatonRegistry -- the executable counterpart of the paper's universal
// aut : Autids -> Auts mapping. Creation adds fresh automata at their
// start states (Def 2.14); destruction happens through reduce(), which
// drops automata whose current signature is empty (Def 2.12).

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "measure/disc.hpp"
#include "psioa/psioa.hpp"

namespace cdse {

using Aid = std::uint32_t;

/// aut : Autids -> Auts (Section 2.2). One registry per modelled system;
/// PCA composed together must share a registry so Aids agree.
class AutomatonRegistry {
 public:
  /// Registers an automaton; its name becomes its Autids entry.
  /// Duplicate names throw (identifiers are unique by assumption).
  Aid add(PsioaPtr automaton);

  Psioa& aut(Aid id) const;
  PsioaPtr aut_ptr(Aid id) const;
  Aid by_name(const std::string& name) const;  // throws if absent
  bool has(const std::string& name) const;
  std::size_t size() const { return automata_.size(); }

 private:
  std::vector<PsioaPtr> automata_;
};

using RegistryPtr = std::shared_ptr<AutomatonRegistry>;

/// (A, S) of Def 2.9, stored sorted by Aid.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<std::pair<Aid, State>> items);

  static Configuration empty() { return Configuration{}; }

  const std::vector<std::pair<Aid, State>>& items() const { return items_; }
  bool contains(Aid a) const;
  State state_of(Aid a) const;  // throws if absent

  /// auts(C): the identifier set.
  std::vector<Aid> auts() const;

  std::size_t size() const { return items_.size(); }
  bool is_empty() const { return items_.empty(); }

  /// Functional update/insert/remove (configurations are values).
  Configuration with(Aid a, State q) const;
  Configuration without(Aid a) const;

  friend bool operator==(const Configuration& x, const Configuration& y) {
    return x.items_ == y.items_;
  }
  friend bool operator<(const Configuration& x, const Configuration& y) {
    return x.items_ < y.items_;
  }

  std::string to_string(const AutomatonRegistry& reg) const;

 private:
  std::vector<std::pair<Aid, State>> items_;  // sorted by Aid, unique
};

using ConfigDist = ExactDisc<Configuration>;

/// Def 2.10: pairwise signature compatibility at the current states.
bool config_compatible(const AutomatonRegistry& reg, const Configuration& c);

/// sig(C) of Def 2.11 (intrinsic signature). Throws on incompatibility.
Signature config_signature(const AutomatonRegistry& reg,
                           const Configuration& c);

/// reduce(C) of Def 2.12: drops automata whose signature is empty.
Configuration reduce(const AutomatonRegistry& reg, const Configuration& c);

bool is_reduced(const AutomatonRegistry& reg, const Configuration& c);

/// Preserving transition C -a-> eta_p (Def 2.13): every automaton with
/// `a` in its signature moves by its own transition, the rest stay put;
/// no creation, no reduction.
ConfigDist preserving_transition(const AutomatonRegistry& reg,
                                 const Configuration& c, ActionId a);

/// Intrinsic transition C ==a==>_phi eta (Def 2.14): the preserving
/// transition, extended with the automata of phi at their start states,
/// then reduced. Preconditions: C reduced and compatible, phi disjoint
/// from auts(C).
ConfigDist intrinsic_transition(const AutomatonRegistry& reg,
                                const Configuration& c, ActionId a,
                                const std::vector<Aid>& phi);

}  // namespace cdse
