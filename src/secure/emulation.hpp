#pragma once
// Dynamic secure emulation (Def 4.26) and the composability construction
// of Theorem 4.30.
//
// A secure-emulates B when for every (poly-bounded) adversary Adv for A
// there is a simulator Sim for B with
//   hide(A || Adv, AAct_A)  <=_{neg,pt}  hide(B || Sim, AAct_B).
// The harness evaluates the epsilon of one (Adv, Sim) pair over a battery
// of environments and schedulers -- the caller supplies the simulator,
// either hand-built or through theorem_simulator(), which is exactly the
// Sim = hide(DSim^1 || ... || DSim^b || g(Adv), g(AAct)) construction
// from the proof of Theorem 4.30.

#include "impl/implementation.hpp"
#include "secure/structured.hpp"

namespace cdse {

/// hide(A || Adv, AAct_A): the environment-facing view of the attacked
/// system. All adversary-vocabulary actions become internal.
PsioaPtr hidden_adversary_composition(const StructuredPsioa& a,
                                      const PsioaPtr& adv);

struct EmulationReport {
  ImplementationReport impl;
  Rational max_eps;

  bool holds_with(const Rational& eps) const { return max_eps <= eps; }
};

/// Evaluates hide(real||adv, AAct) vs hide(ideal||sim, AAct) exactly over
/// the given environments and schedulers.
EmulationReport check_secure_emulation(
    const StructuredPsioa& real, const PsioaPtr& adv,
    const StructuredPsioa& ideal, const PsioaPtr& sim,
    const std::vector<LabeledPsioa>& envs,
    const std::vector<LabeledScheduler>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth);

/// Theorem 4.30's simulator: hide(DSim_1||...||DSim_b || g(Adv), g(AAct)).
/// `g` is the renaming of the composite's adversary actions; its targets
/// are the hidden set g(AAct).
PsioaPtr theorem_simulator(std::vector<PsioaPtr> dsims, const PsioaPtr& adv,
                           const ActionBijection& g);

}  // namespace cdse
