#pragma once
// The dummy adversary Dummy(A, g) (Def 4.27).
//
// The dummy adversary is a pure forwarder sitting between a structured
// automaton A (speaking its native adversary actions) and an outer
// adversary (speaking the g-renamed copies): each state is a single
// `pending` slot holding the next action to forward. It is the engine of
// the Canetti-style reduction used by the composability theorem, and
// Lemma 4.29 / D.1 shows inserting it is undetectable -- experiment E6
// confirms that with epsilon exactly zero.

#include "psioa/memo.hpp"
#include "psioa/rename.hpp"
#include "secure/structured.hpp"

namespace cdse {

class DummyAdversary : public MemoPsioa {
 public:
  /// `ao` / `ai`: the universal adversary outputs / inputs of A (the
  /// declared vocabularies of its StructuredPsioa). `g` must rename every
  /// action of ao U ai to a fresh name.
  DummyAdversary(std::string name, ActionSet ao, ActionSet ai,
                 ActionBijection g);

  State start_state() override { return 0; }
  BitString encode_state(State q) override;
  std::string state_label(State q) override;

 protected:
  // Per-pending-slot forwarding signature (Def 4.27), memoized: the set
  // algebra below runs once per pending slot, not once per step.
  Signature compute_signature(State q) override;
  StateDist compute_transition(State q, ActionId a) override;

  const ActionBijection& renaming() const { return g_; }
  const ActionSet& ao() const { return ao_; }
  const ActionSet& ai() const { return ai_; }

 private:
  // State encoding: 0 = pending == bottom; otherwise 1 + index into
  // pending_actions_ (one state per possible pending action).
  ActionId pending_of(State q) const;
  State state_of(ActionId pending) const;

  ActionSet ao_;
  ActionSet ai_;
  ActionBijection g_;
  ActionSet in_;                          // AO_A U g(AI_A), constant
  std::vector<ActionId> pending_actions_; // sorted: all possible pendings
};

/// Builds Dummy(A, g) from a structured automaton's declared vocabularies.
PsioaPtr make_dummy_adversary(const StructuredPsioa& a,
                              const ActionBijection& g);

}  // namespace cdse
