#include "secure/adversary.hpp"

#include <queue>
#include <unordered_set>

#include "psioa/explicit_psioa.hpp"

namespace cdse {

namespace {

/// Union of output actions over the adversary's reachable states. The
/// "offers every adversary input" condition of Def 4.24 is read against
/// this universal vocabulary: the paper's own dummy adversary (Def 4.27)
/// only *exposes* a command while forwarding it, so the literal per-state
/// reading would reject the construction the composability proof relies
/// on.
ActionSet universal_outputs(Psioa& adv, std::size_t depth) {
  ActionSet outs;
  const State q0 = adv.start_state();
  std::unordered_set<State> seen{q0};
  std::queue<std::pair<State, std::size_t>> frontier;
  frontier.emplace(q0, 0);
  while (!frontier.empty()) {
    auto [q, d] = frontier.front();
    frontier.pop();
    const Signature sig = adv.signature(q);
    outs = set::unite(outs, sig.out);
    if (d >= depth) continue;
    for (ActionId a : sig.all()) {
      for (State q2 : adv.transition(q, a).support()) {
        if (seen.insert(q2).second) frontier.emplace(q2, d + 1);
      }
    }
  }
  return outs;
}

}  // namespace

AdversaryCheckResult check_adversary_for(const StructuredPsioa& a,
                                         const PsioaPtr& adv,
                                         std::size_t depth) {
  AdversaryCheckResult res;
  const ActionSet adv_outs = universal_outputs(*adv, depth);
  auto comp = compose(a.ptr(), adv);
  const State q0 = comp->start_state();
  std::unordered_set<State> seen{q0};
  std::queue<std::pair<State, std::size_t>> frontier;
  frontier.emplace(q0, 0);
  try {
    while (!frontier.empty()) {
      auto [q, d] = frontier.front();
      frontier.pop();
      ++res.states_checked;
      const State qa = comp->project(q, 0);
      const State qadv = comp->project(q, 1);
      const Signature adv_sig = adv->signature(qadv);
      // IA_A(q_A) subset of out(Adv) (universal reading, see above).
      if (!set::subset(a.ai(qa), adv_outs)) {
        res.ok = false;
        res.violation = "adversary '" + adv->name() +
                        "' does not offer adversary inputs " +
                        to_string(set::subtract(a.ai(qa), adv_outs)) +
                        " at " + comp->state_label(q);
        return res;
      }
      // EAct_A(q_A) disjoint from sig(Adv)(q_Adv).
      if (!set::disjoint(a.eact(qa), adv_sig.all())) {
        res.ok = false;
        res.violation = "adversary '" + adv->name() +
                        "' touches environment actions " +
                        to_string(set::intersect(a.eact(qa), adv_sig.all())) +
                        " at " + comp->state_label(q);
        return res;
      }
      if (d >= depth) continue;
      for (ActionId act_id : comp->enabled(q)) {
        for (State q2 : comp->transition(q, act_id).support()) {
          if (seen.insert(q2).second) frontier.emplace(q2, d + 1);
        }
      }
    }
  } catch (const IncompatibilityError& e) {
    res.ok = false;
    res.violation = std::string("A||Adv incompatible: ") + e.what();
  }
  return res;
}

PsioaPtr make_sink_adversary(const std::string& name, const ActionSet& absorbs,
                             const ActionSet& may_send) {
  auto adv = std::make_shared<ExplicitPsioa>(name);
  const State q0 = adv->add_state("sink");
  adv->set_start(q0);
  Signature sig;
  sig.in = set::subtract(absorbs, may_send);
  sig.out = may_send;
  adv->set_signature(q0, sig);
  for (ActionId a : sig.in) adv->add_step(q0, a, q0);
  for (ActionId a : sig.out) adv->add_step(q0, a, q0);
  adv->validate();
  return adv;
}

}  // namespace cdse
