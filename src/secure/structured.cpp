#include "secure/structured.hpp"

#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace cdse {

StructuredPsioa::StructuredPsioa(PsioaPtr automaton, ActionSet env,
                                 ActionSet adv_in, ActionSet adv_out)
    : automaton_(std::move(automaton)),
      env_(std::move(env)),
      adv_in_(std::move(adv_in)),
      adv_out_(std::move(adv_out)) {
  if (!automaton_) {
    throw std::invalid_argument("StructuredPsioa: null automaton");
  }
  if (!set::disjoint(env_, adv_in_) || !set::disjoint(env_, adv_out_) ||
      !set::disjoint(adv_in_, adv_out_)) {
    throw std::logic_error("StructuredPsioa " + automaton_->name() +
                           ": env/adv_in/adv_out vocabularies overlap");
  }
}

StructuredPsioa StructuredPsioa::rebind(PsioaPtr replacement) const {
  return StructuredPsioa(std::move(replacement), env_, adv_in_, adv_out_);
}

ActionSet StructuredPsioa::eact(State q) const {
  return set::intersect(automaton_->signature(q).ext(), env_);
}

ActionSet StructuredPsioa::aact(State q) const {
  return set::subtract(automaton_->signature(q).ext(), env_);
}

ActionSet StructuredPsioa::ei(State q) const {
  return set::intersect(automaton_->signature(q).in, env_);
}

ActionSet StructuredPsioa::eo(State q) const {
  return set::intersect(automaton_->signature(q).out, env_);
}

ActionSet StructuredPsioa::ai(State q) const {
  return set::intersect(automaton_->signature(q).in, adv_in_);
}

ActionSet StructuredPsioa::ao(State q) const {
  return set::intersect(automaton_->signature(q).out, adv_out_);
}

void StructuredPsioa::validate(std::size_t depth) const {
  Psioa& a = *automaton_;
  const ActionSet covered = set::unite(env_, set::unite(adv_in_, adv_out_));
  const State q0 = a.start_state();
  std::unordered_set<State> seen{q0};
  std::queue<std::pair<State, std::size_t>> frontier;
  frontier.emplace(q0, 0);
  while (!frontier.empty()) {
    auto [q, d] = frontier.front();
    frontier.pop();
    const Signature sig = a.signature(q);
    if (!set::subset(sig.ext(), covered)) {
      throw std::logic_error(
          "StructuredPsioa " + a.name() + ": external actions " +
          to_string(set::subtract(sig.ext(), covered)) +
          " at state " + a.state_label(q) + " are not classified");
    }
    if (!set::disjoint(sig.out, adv_in_)) {
      throw std::logic_error("StructuredPsioa " + a.name() +
                             ": declared adversary *input* appears as an "
                             "output at state " + a.state_label(q));
    }
    if (!set::disjoint(sig.in, adv_out_)) {
      throw std::logic_error("StructuredPsioa " + a.name() +
                             ": declared adversary *output* appears as an "
                             "input at state " + a.state_label(q));
    }
    if (d >= depth) continue;
    for (ActionId act_id : sig.all()) {
      for (State q2 : a.transition(q, act_id).support()) {
        if (seen.insert(q2).second) frontier.emplace(q2, d + 1);
      }
    }
  }
}

bool structured_compatible(const StructuredPsioa& a,
                           const StructuredPsioa& b) {
  // Every potentially shared action (any vocabulary overlap) must be an
  // environment action on both sides (Def 4.18).
  const ActionSet vocab_a =
      set::unite(a.env_vocab(), a.aact_vocab());
  const ActionSet vocab_b =
      set::unite(b.env_vocab(), b.aact_vocab());
  const ActionSet shared = set::intersect(vocab_a, vocab_b);
  return set::subset(shared, set::intersect(a.env_vocab(), b.env_vocab()));
}

StructuredPsioa compose_structured(const StructuredPsioa& a,
                                   const StructuredPsioa& b) {
  if (!structured_compatible(a, b)) {
    throw std::logic_error(
        "compose_structured: " + a.automaton().name() + " and " +
        b.automaton().name() +
        " share actions outside their common environment vocabulary");
  }
  return StructuredPsioa(compose(a.ptr(), b.ptr()),
                         set::unite(a.env_vocab(), b.env_vocab()),
                         set::unite(a.adv_in_vocab(), b.adv_in_vocab()),
                         set::unite(a.adv_out_vocab(), b.adv_out_vocab()));
}

StructuredPsioa compose_structured(const std::vector<StructuredPsioa>& parts) {
  if (parts.empty()) {
    throw std::invalid_argument("compose_structured: empty list");
  }
  StructuredPsioa acc = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = compose_structured(acc, parts[i]);
  }
  return acc;
}

StructuredPsioa hide_structured(const StructuredPsioa& a,
                                const ActionSet& s) {
  return StructuredPsioa(hide_actions(a.ptr(), s),
                         set::subtract(a.env_vocab(), s),
                         set::subtract(a.adv_in_vocab(), s),
                         set::subtract(a.adv_out_vocab(), s));
}

StructuredPsioa rename_adversary_actions(const StructuredPsioa& a,
                                         const ActionBijection& g) {
  return StructuredPsioa(rename_actions(a.ptr(), g), a.env_vocab(),
                         g.apply(a.adv_in_vocab()),
                         g.apply(a.adv_out_vocab()));
}

}  // namespace cdse
