#include "secure/dummy.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdse {

DummyAdversary::DummyAdversary(std::string name, ActionSet ao, ActionSet ai,
                               ActionBijection g)
    : MemoPsioa(std::move(name)),
      ao_(std::move(ao)),
      ai_(std::move(ai)),
      g_(std::move(g)) {
  // in(Adv') = AO_A U g(AI_A): receives A's leaks and the outer
  // adversary's (renamed) commands.
  in_ = set::unite(ao_, g_.apply(ai_));
  // pending ranges over AO_A U g(AI_A).
  pending_actions_ = in_;
}

ActionId DummyAdversary::pending_of(State q) const {
  if (q == 0) return kInvalidAction;
  const std::size_t idx = static_cast<std::size_t>(q - 1);
  if (idx >= pending_actions_.size()) {
    throw std::out_of_range("DummyAdversary: unknown state handle");
  }
  return pending_actions_[idx];
}

State DummyAdversary::state_of(ActionId pending) const {
  auto it = std::lower_bound(pending_actions_.begin(),
                             pending_actions_.end(), pending);
  if (it == pending_actions_.end() || *it != pending) {
    throw std::logic_error("DummyAdversary: action cannot be pending");
  }
  return static_cast<State>(it - pending_actions_.begin()) + 1;
}

Signature DummyAdversary::compute_signature(State q) {
  Signature sig;
  const ActionId pending = pending_of(q);
  if (pending == kInvalidAction) {
    sig.in = in_;
    return sig;
  }
  // While forwarding, only the forward action is offered; inputs stay
  // open minus the one being emitted (Def 4.27 keeps in(Adv') constant;
  // we must drop collisions where the forward target would be both input
  // and output, which cannot happen since forwards leave in_).
  ActionId forward;
  if (set::contains(ao_, pending)) {
    forward = g_.apply(pending);         // A leaked `pending`: emit g(a)
  } else {
    forward = g_.invert(pending);        // outer said g(a): emit a to A
  }
  sig.in = in_;
  sig.out = ActionSet{forward};
  // Defensive: Def 4.17 signatures are disjoint classes.
  sig.in = set::subtract(sig.in, sig.out);
  return sig;
}

StateDist DummyAdversary::compute_transition(State q, ActionId a) {
  const Signature& sig = signature_ref(q);
  if (!sig.contains(a)) {
    throw std::logic_error("DummyAdversary: action '" +
                           ActionTable::instance().name(a) +
                           "' not enabled at " + state_label(q));
  }
  if (set::contains(sig.out, a)) {
    return StateDist::dirac(0);  // forwarded: pending := bottom
  }
  return StateDist::dirac(state_of(a));  // received: pending := a
}

BitString DummyAdversary::encode_state(State q) {
  return BitString::from_uint(q);
}

std::string DummyAdversary::state_label(State q) {
  const ActionId pending = pending_of(q);
  if (pending == kInvalidAction) return "idle";
  return "fwd:" + ActionTable::instance().name(pending);
}

PsioaPtr make_dummy_adversary(const StructuredPsioa& a,
                              const ActionBijection& g) {
  return std::make_shared<DummyAdversary>("Dummy(" + a.automaton().name() +
                                              ")",
                                          a.adv_out_vocab(),
                                          a.adv_in_vocab(), g);
}

}  // namespace cdse
