#pragma once
// Structured PSIOA/PCA (Defs 4.17-4.23).
//
// A structured automaton partitions its external interface into
// environment-facing actions (EAct) and adversary-facing actions (AAct).
// We take the paper up on its own observation ("nothing prevents us from
// requiring that (EAct, AAct) is a partition of acts(A)" independent of
// state): the partition is *declared* as action vocabularies, and
// EAct(q) / AAct(q) are the state signature intersected with them. The
// adversary vocabulary is declared split by direction (adversary inputs
// vs outputs of A) because the dummy-adversary construction (Def 4.27)
// needs the universal AI/AO sets.

#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/psioa.hpp"
#include "psioa/rename.hpp"

namespace cdse {

class StructuredPsioa {
 public:
  /// `env`: environment-facing external actions. `adv_in`: adversary
  /// actions that are inputs of the automaton (commands it receives).
  /// `adv_out`: adversary actions that are outputs (leaks it emits).
  /// The three sets must be pairwise disjoint.
  StructuredPsioa(PsioaPtr automaton, ActionSet env, ActionSet adv_in,
                  ActionSet adv_out);

  Psioa& automaton() const { return *automaton_; }
  PsioaPtr ptr() const { return automaton_; }

  const ActionSet& env_vocab() const { return env_; }
  const ActionSet& adv_in_vocab() const { return adv_in_; }
  const ActionSet& adv_out_vocab() const { return adv_out_; }

  /// AAct as a vocabulary: adv_in U adv_out.
  ActionSet aact_vocab() const { return set::unite(adv_in_, adv_out_); }

  /// Same vocabularies over a different underlying automaton -- the
  /// device wrapper constructions (e.g. the Byzantine corruption wrapper
  /// in src/fault) use to re-enter the structured world after wrapping
  /// ptr(): the replacement must speak the same external interface.
  StructuredPsioa rebind(PsioaPtr replacement) const;

  // Per-state mappings of Def 4.17.
  ActionSet eact(State q) const;   // EAct_A(q)
  ActionSet aact(State q) const;   // AAct_A(q)
  ActionSet ei(State q) const;     // environment inputs
  ActionSet eo(State q) const;     // environment outputs
  ActionSet ai(State q) const;     // adversary inputs
  ActionSet ao(State q) const;     // adversary outputs

  /// Verifies on the reachable prefix (up to `depth`) that every external
  /// action is covered by the declared vocabularies with the declared
  /// directions. Throws std::logic_error on violation.
  void validate(std::size_t depth) const;

 private:
  PsioaPtr automaton_;
  ActionSet env_;
  ActionSet adv_in_;
  ActionSet adv_out_;
};

/// Def 4.18 (vocabulary-level check): every action shared between the two
/// automata must be an environment action of both.
bool structured_compatible(const StructuredPsioa& a,
                           const StructuredPsioa& b);

/// Def 4.19: composition with EAct = union of EActs. Throws when not
/// structured-compatible.
StructuredPsioa compose_structured(const StructuredPsioa& a,
                                   const StructuredPsioa& b);

StructuredPsioa compose_structured(const std::vector<StructuredPsioa>& parts);

/// hide((A, EAct), S) = (hide(A, S), EAct \ S) -- Def 4.17's hiding.
StructuredPsioa hide_structured(const StructuredPsioa& a, const ActionSet& s);

/// g(A): renames the adversary actions of A by the bijection g (the
/// Section 4.9 renaming-of-adversary-actions device). The environment
/// vocabulary is untouched; adversary vocabularies move through g.
StructuredPsioa rename_adversary_actions(const StructuredPsioa& a,
                                         const ActionBijection& g);

}  // namespace cdse
