#pragma once
// Dummy-adversary insertion and the Forward constructions (Lemma 4.29/D.1).
//
// Given a structured automaton A, an environment E and an outer adversary
// Adv (an adversary for both g(A) and hide(A||Dummy(A,g), AAct_A)),
// DummyInsertion materializes the lemma's two systems:
//
//   left  = E || g(A) || Adv
//   right = E || hide(A || Dummy(A,g), AAct_A) || Adv
//
// and the two constructions from the proof:
//
//   Forward^e -- the bijection between left executions and the right
//     executions in which every shared action is correctly forwarded
//     (realized here in the inverse direction, left_fragment_of, which is
//     what the scheduler construction needs);
//   Forward^s -- the scheduler transformation: sigma' mirrors sigma and,
//     whenever sigma fires an action shared between g(A) and Adv,
//     schedules the origin and then the dummy's forward, doubling the
//     schedule length at most (q2 = 2*q1).
//
// The construction is exact: experiment E6 checks that the f-dists agree
// with epsilon literally zero.

#include "sched/scheduler.hpp"
#include "secure/dummy.hpp"
#include "secure/structured.hpp"

namespace cdse {

class DummyInsertion {
 public:
  /// `suffix` generates the fresh renamed action names (g = . + suffix).
  DummyInsertion(StructuredPsioa a, PsioaPtr env, PsioaPtr adv,
                 const std::string& suffix);

  ComposedPsioa& left() { return *left_; }
  ComposedPsioa& right() { return *right_; }
  std::shared_ptr<ComposedPsioa> left_ptr() const { return left_; }
  std::shared_ptr<ComposedPsioa> right_ptr() const { return right_; }
  const ActionBijection& g() const { return g_; }
  const StructuredPsioa& a() const { return a_; }

  /// Forward^s(sigma): the right-side scheduler mirroring sigma.
  SchedulerPtr forward_scheduler(SchedulerPtr sigma_left) const;

  /// Inverse of Forward^e: collapses a right execution fragment (with
  /// correctly forwarded pairs) to the related left fragment. Throws
  /// std::logic_error on fragments outside the image of Forward^e.
  ExecFragment left_fragment_of(const ExecFragment& right_frag) const;

  /// Classification used by both constructions.
  bool is_first_half(ActionId c) const;      // in AO_A U g(AI_A)
  ActionId forward_of(ActionId first) const; // the dummy's reply
  ActionId left_action_of(ActionId first) const;  // the shared action b
  /// The right-side action that initiates the pair for a left shared
  /// action b (origin(b) in the paper's notation).
  ActionId origin_of(ActionId left_shared) const;
  bool is_left_shared(ActionId b) const;     // in g(AO_A) U g(AI_A)

 private:
  StructuredPsioa a_;
  ActionBijection g_;
  PsioaPtr dummy_;
  std::shared_ptr<ComposedPsioa> a_dummy_;
  std::shared_ptr<ComposedPsioa> left_;
  std::shared_ptr<ComposedPsioa> right_;
};

}  // namespace cdse
