#include "secure/emulation.hpp"

#include "psioa/hide.hpp"

namespace cdse {

PsioaPtr hidden_adversary_composition(const StructuredPsioa& a,
                                      const PsioaPtr& adv) {
  return hide_actions(compose(a.ptr(), adv), a.aact_vocab());
}

EmulationReport check_secure_emulation(
    const StructuredPsioa& real, const PsioaPtr& adv,
    const StructuredPsioa& ideal, const PsioaPtr& sim,
    const std::vector<LabeledPsioa>& envs,
    const std::vector<LabeledScheduler>& schedulers,
    const SchedulerCorrespondence& correspond, const InsightFunction& f,
    std::size_t max_depth) {
  EmulationReport report;
  const PsioaPtr lhs = hidden_adversary_composition(real, adv);
  const PsioaPtr rhs = hidden_adversary_composition(ideal, sim);
  report.impl = check_implementation(lhs, rhs, envs, schedulers, correspond,
                                     f, max_depth);
  report.max_eps = report.impl.max_eps;
  return report;
}

PsioaPtr theorem_simulator(std::vector<PsioaPtr> dsims, const PsioaPtr& adv,
                           const ActionBijection& g) {
  ActionSet g_targets;
  for (const auto& [from, to] : g.forward_map()) {
    (void)from;
    set::insert(g_targets, to);
  }
  std::vector<PsioaPtr> parts = std::move(dsims);
  parts.push_back(rename_actions(adv, g));
  return hide_actions(compose(std::move(parts)), g_targets);
}

}  // namespace cdse
