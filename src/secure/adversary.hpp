#pragma once
// Adversaries for structured automata (Def 4.24, Lemma 4.25).
//
// An adversary for (A, EAct_A) is a PSIOA that (i) is partially
// compatible with A, (ii) offers every adversary input of A among its
// outputs, and (iii) never touches environment actions. The checker
// verifies the conditions on the reachable prefix of A||Adv.

#include <string>

#include "secure/structured.hpp"

namespace cdse {

struct AdversaryCheckResult {
  bool ok = true;
  std::string violation;
  std::size_t states_checked = 0;

  explicit operator bool() const { return ok; }
};

/// Checks Def 4.24 on reachable states of A||Adv up to `depth`.
AdversaryCheckResult check_adversary_for(const StructuredPsioa& a,
                                         const PsioaPtr& adv,
                                         std::size_t depth);

/// A memoryless adversary: absorbs every action of `absorbs` and keeps
/// every action of `may_send` enabled as an output self-loop (the
/// scheduler decides when commands fire). With empty `may_send` this is
/// the passive "sink" baseline; `may_send` must cover the adversary
/// inputs of the target automaton for Def 4.24 to hold.
PsioaPtr make_sink_adversary(const std::string& name, const ActionSet& absorbs,
                             const ActionSet& may_send = {});

}  // namespace cdse
