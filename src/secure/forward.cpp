#include "secure/forward.hpp"

#include <stdexcept>

#include "psioa/hide.hpp"

namespace cdse {

DummyInsertion::DummyInsertion(StructuredPsioa a, PsioaPtr env, PsioaPtr adv,
                               const std::string& suffix)
    : a_(std::move(a)),
      g_(ActionBijection::with_suffix(a_.aact_vocab(), suffix)) {
  const StructuredPsioa ga = rename_adversary_actions(a_, g_);
  dummy_ = make_dummy_adversary(a_, g_);
  a_dummy_ = compose(a_.ptr(), dummy_);
  // H = hide(A || Dummy, AAct_A): A's leaks and the dummy's forwards to A
  // become internal; only the renamed copies remain external.
  PsioaPtr h = hide_actions(a_dummy_, a_.aact_vocab());
  left_ = compose(env, ga.ptr(), adv);
  right_ = compose(env, std::move(h), adv);
}

bool DummyInsertion::is_first_half(ActionId c) const {
  if (set::contains(a_.adv_out_vocab(), c)) return true;  // a in AO_A
  const ActionId inv = g_.invert(c);
  return inv != c && set::contains(a_.adv_in_vocab(), inv);  // g(a'), a' in AI
}

ActionId DummyInsertion::forward_of(ActionId first) const {
  if (set::contains(a_.adv_out_vocab(), first)) return g_.apply(first);
  return g_.invert(first);
}

ActionId DummyInsertion::left_action_of(ActionId first) const {
  // The shared action b between g(A) and Adv is always the renamed copy.
  if (set::contains(a_.adv_out_vocab(), first)) return g_.apply(first);
  return first;  // already g(a')
}

ActionId DummyInsertion::origin_of(ActionId left_shared) const {
  const ActionId raw = g_.invert(left_shared);
  if (set::contains(a_.adv_out_vocab(), raw)) return raw;  // A leaks first
  return left_shared;  // Adv commands first, renamed
}

bool DummyInsertion::is_left_shared(ActionId b) const {
  const ActionId raw = g_.invert(b);
  return raw != b && (set::contains(a_.adv_out_vocab(), raw) ||
                      set::contains(a_.adv_in_vocab(), raw));
}

ExecFragment DummyInsertion::left_fragment_of(
    const ExecFragment& right_frag) const {
  auto left_state_of = [this](State qr) {
    const State qe = right_->project(qr, 0);
    const State qh = right_->project(qr, 1);  // HiddenPsioa shares handles
    const State qa = a_dummy_->project(qh, 0);
    const State qadv = right_->project(qr, 2);
    return left_->intern_tuple({qe, qa, qadv});
  };
  ExecFragment left = ExecFragment::starting_at(
      left_state_of(right_frag.fstate()));
  ActionId pending = kInvalidAction;
  for (std::size_t i = 0; i < right_frag.length(); ++i) {
    const ActionId c = right_frag.actions()[i];
    const State post = right_frag.states()[i + 1];
    if (pending != kInvalidAction) {
      if (c != forward_of(pending)) {
        throw std::logic_error(
            "left_fragment_of: fragment not in the image of Forward^e "
            "(missing forward)");
      }
      left.append(left_action_of(pending), left_state_of(post));
      pending = kInvalidAction;
    } else if (is_first_half(c)) {
      pending = c;
    } else {
      left.append(c, left_state_of(post));
    }
  }
  if (pending != kInvalidAction) {
    // A trailing un-forwarded half has no left counterpart; callers that
    // need mid-pair handling (the scheduler) track pending themselves.
    throw std::logic_error(
        "left_fragment_of: fragment ends mid-forward");
  }
  return left;
}

namespace {

/// Forward^s(sigma) as a Scheduler over the right system.
class ForwardScheduler : public Scheduler {
 public:
  ForwardScheduler(const DummyInsertion* ins, SchedulerPtr sigma)
      : ins_(ins), sigma_(std::move(sigma)) {}

  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override {
    (void)automaton;  // decisions are made against the paired left system
    // Split alpha into the completed prefix and a possible pending half.
    ExecFragment prefix = alpha;
    ActionId pending = kInvalidAction;
    if (alpha.length() > 0) {
      const ActionId last = alpha.actions().back();
      if (ins_->is_first_half(last) && !half_is_completed(alpha)) {
        pending = last;
        prefix = alpha.prefix(alpha.length() - 1);
      }
    }
    if (pending != kInvalidAction) {
      ActionChoice c;
      c.add(ins_->forward_of(pending), Rational(1));
      return c;
    }
    const ExecFragment left = ins_->left_fragment_of(prefix);
    const ActionChoice base =
        sigma_->choose(const_cast<ComposedPsioa&>(*left_system()), left);
    ActionChoice out;
    for (const auto& [b, w] : base.entries()) {
      if (ins_->is_left_shared(b)) {
        out.add(ins_->origin_of(b), w);
      } else {
        out.add(b, w);
      }
    }
    return out;
  }

  std::string name() const override {
    return "forward(" + sigma_->name() + ")";
  }

 private:
  const ComposedPsioa* left_system() const { return ins_->left_ptr().get(); }

  /// Whether the final first-half of alpha was already matched by its
  /// forward: scan backwards pairing halves.
  bool half_is_completed(const ExecFragment& alpha) const {
    // Walk forward, tracking pending; cheap because schedules are short.
    ActionId pending = kInvalidAction;
    for (ActionId c : alpha.actions()) {
      if (pending != kInvalidAction) {
        pending = kInvalidAction;  // this c must be the forward
      } else if (ins_->is_first_half(c)) {
        pending = c;
      }
    }
    return pending == kInvalidAction;
  }

  const DummyInsertion* ins_;
  SchedulerPtr sigma_;
};

}  // namespace

SchedulerPtr DummyInsertion::forward_scheduler(SchedulerPtr sigma_left) const {
  return std::make_shared<ForwardScheduler>(this, std::move(sigma_left));
}

}  // namespace cdse
