#include "bounded/family.hpp"

#include "psioa/compose.hpp"

namespace cdse {

PsioaFamily compose_families(const PsioaFamily& a, const PsioaFamily& b) {
  PsioaFamily out;
  out.name = a.name + "||" + b.name;
  out.make = [ma = a.make, mb = b.make](std::uint32_t k) -> PsioaPtr {
    return compose(ma(k), mb(k));
  };
  return out;
}

FamilyBoundReport check_family_bounded(const PsioaFamily& family,
                                       const Polynomial& bound,
                                       const std::vector<std::uint32_t>& ks,
                                       std::size_t depth) {
  FamilyBoundReport report;
  for (std::uint32_t k : ks) {
    PsioaPtr automaton = family.make(k);
    const BoundedProfile prof = profile_psioa(*automaton, depth);
    FamilyBoundReport::Row row;
    row.k = k;
    row.measured_b = prof.b();
    row.allowed_b = bound.eval(static_cast<double>(k));
    row.ok = static_cast<double>(row.measured_b) <= row.allowed_b;
    report.all_ok = report.all_ok && row.ok;
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace cdse
