#pragma once
// The b-time-bounded machine model (Def 4.1, Def 4.2).
//
// The paper bounds (1) the bit-string representation length of every
// automaton part and (2) the running time of decoding/next-state Turing
// machines. We realize the machines as instrumented procedures whose cost
// is the number of *bits touched*: comparing two encodings costs the sum
// of their lengths, scanning a signature costs the total encoded length
// of its actions, and so on. Because composite automata encode states by
// pairing component encodings (psioa/compose.hpp uses exactly the
// stuffing scheme from the proof of Lemma B.1), these costs compose
// additively with small constant factors -- which is the content of
// Lemmas 4.3/4.5, measured rather than assumed by experiments E1-E3.

#include <cstdint>

#include "pca/pca.hpp"
#include "psioa/psioa.hpp"

namespace cdse {

/// Cost accumulator standing in for a Turing machine's step counter.
class CostMeter {
 public:
  void charge(std::uint64_t steps) { steps_ += steps; }
  std::uint64_t steps() const { return steps_; }
  void reset() { steps_ = 0; }

 private:
  std::uint64_t steps_ = 0;
};

/// <a>: the standard action encoding (its interned name as bits).
BitString encode_action(ActionId a);

// -- The decoding machines of Def 4.1, instrumented ------------------------

/// M_start: decides whether q is the start state. Cost: |<q>| + |<start>|.
bool machine_is_start(Psioa& automaton, State q, CostMeter& meter);

/// M_sig: decides membership of `a` in the input/output/internal class.
/// Cost: |<q>| + |<a>| + sum of encoded lengths of the scanned class.
enum class SigClass { kInput, kOutput, kInternal };
bool machine_in_sig_class(Psioa& automaton, State q, ActionId a,
                          SigClass which, CostMeter& meter);

/// M_trans/M_step: decides whether (q, a, q2) in steps(A).
/// Cost: |<q>| + |<a>| + sum over supp(eta) of |<q'>|.
bool machine_is_step(Psioa& automaton, State q, ActionId a, State q2,
                     CostMeter& meter);

/// M_state: produces the next state for (q, a) given a random tape value
/// u in [0,1). Cost: |<q>| + |<a>| + |<q'>| of the produced state.
State machine_next_state(Psioa& automaton, State q, ActionId a, double u,
                         CostMeter& meter);

// -- PCA machines of Def 4.2 ------------------------------------------------

/// M_conf: outputs <config(X)(q)>. Cost: |<q>| + |<C>|.
BitString machine_config(Pca& x, State q, CostMeter& meter);

/// M_created: outputs <created(X)(q)(a)>. Cost: |<q>| + |<a>| + |<phi>|.
BitString machine_created(Pca& x, State q, ActionId a, CostMeter& meter);

/// M_hidden: outputs <hidden-actions(X)(q)>. Cost: |<q>| + |<h>|.
BitString machine_hidden(Pca& x, State q, CostMeter& meter);

// -- Empirical bound profiling ----------------------------------------------

/// The measured analogue of "A is b-time-bounded": the maximum
/// representation length and machine cost over the reachable prefix.
struct BoundedProfile {
  std::size_t max_state_repr = 0;
  std::size_t max_action_repr = 0;
  std::uint64_t max_machine_cost = 0;
  std::size_t states_explored = 0;
  std::size_t transitions_explored = 0;

  /// The automaton's empirical b: every Def 4.1 quantity is <= b.
  std::uint64_t b() const;
};

/// Explores up to `depth` transitions / `max_states` states from the
/// start, running every machine on every visited (state, action) pair.
BoundedProfile profile_psioa(Psioa& automaton, std::size_t depth,
                             std::size_t max_states = 100000);

/// Additionally runs the three PCA machines of Def 4.2.
BoundedProfile profile_pca(Pca& x, std::size_t depth,
                           std::size_t max_states = 100000);

}  // namespace cdse
