#pragma once
// Families indexed by the security parameter (Defs 4.7-4.10).
//
// A PSIOA (or PCA, or scheduler) family is an indexed set (A_k); the
// polynomial-boundedness of a family (Def 4.8) is checked empirically by
// profiling each sampled index against b(k). Families are represented by
// builder functions so experiment sweeps stay allocation-independent and
// parallelizable.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bounded/cost.hpp"
#include "sched/scheduler.hpp"
#include "util/poly.hpp"

namespace cdse {

struct PsioaFamily {
  std::string name;
  std::function<PsioaPtr(std::uint32_t k)> make;
};

struct SchedulerFamily {
  std::string name;
  std::function<SchedulerPtr(std::uint32_t k)> make;
};

/// Composition of families is index-wise (Def 4.7).
PsioaFamily compose_families(const PsioaFamily& a, const PsioaFamily& b);

/// Def 4.8 check, sampled at the given indices: profiles each A_k up to
/// `depth` and verifies profile.b() <= bound(k).
struct FamilyBoundReport {
  struct Row {
    std::uint32_t k;
    std::uint64_t measured_b;
    double allowed_b;
    bool ok;
  };
  std::vector<Row> rows;
  bool all_ok = true;
};

FamilyBoundReport check_family_bounded(const PsioaFamily& family,
                                       const Polynomial& bound,
                                       const std::vector<std::uint32_t>& ks,
                                       std::size_t depth);

}  // namespace cdse
