#include "bounded/cost.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace cdse {

BitString encode_action(ActionId a) {
  return BitString::from_bytes(ActionTable::instance().name(a));
}

bool machine_is_start(Psioa& automaton, State q, CostMeter& meter) {
  const BitString qe = automaton.encode_state(q);
  const BitString se = automaton.encode_state(automaton.start_state());
  meter.charge(qe.length() + se.length());
  return qe == se;
}

bool machine_in_sig_class(Psioa& automaton, State q, ActionId a,
                          SigClass which, CostMeter& meter) {
  const BitString qe = automaton.encode_state(q);
  const BitString ae = encode_action(a);
  meter.charge(qe.length() + ae.length());
  const Signature sig = automaton.signature(q);
  const ActionSet* cls = nullptr;
  switch (which) {
    case SigClass::kInput:
      cls = &sig.in;
      break;
    case SigClass::kOutput:
      cls = &sig.out;
      break;
    case SigClass::kInternal:
      cls = &sig.internal;
      break;
  }
  bool found = false;
  for (ActionId b : *cls) {
    const BitString be = encode_action(b);
    meter.charge(be.length());
    if (b == a) found = true;
  }
  return found;
}

bool machine_is_step(Psioa& automaton, State q, ActionId a, State q2,
                     CostMeter& meter) {
  const BitString qe = automaton.encode_state(q);
  const BitString ae = encode_action(a);
  meter.charge(qe.length() + ae.length());
  if (!automaton.signature(q).contains(a)) return false;
  const StateDist eta = automaton.transition(q, a);
  bool found = false;
  for (const auto& [target, w] : eta.entries()) {
    (void)w;
    const BitString te = automaton.encode_state(target);
    meter.charge(te.length());
    if (target == q2) found = true;
  }
  return found;
}

State machine_next_state(Psioa& automaton, State q, ActionId a, double u,
                         CostMeter& meter) {
  const BitString qe = automaton.encode_state(q);
  const BitString ae = encode_action(a);
  meter.charge(qe.length() + ae.length());
  const StateDist eta = automaton.transition(q, a);
  double acc = 0.0;
  State chosen = eta.entries().back().first;
  for (const auto& [target, w] : eta.entries()) {
    acc += w.to_double();
    if (u < acc) {
      chosen = target;
      break;
    }
  }
  meter.charge(automaton.encode_state(chosen).length());
  return chosen;
}

BitString machine_config(Pca& x, State q, CostMeter& meter) {
  const BitString qe = x.encode_state(q);
  const Configuration c = x.config(q);
  std::vector<BitString> parts;
  parts.push_back(BitString::from_uint(c.items().size()));
  for (const auto& [aid, sub_state] : c.items()) {
    parts.push_back(
        BitString::pair(BitString::from_uint(aid),
                        x.registry().aut(aid).encode_state(sub_state)));
  }
  const BitString ce = BitString::pack(parts);
  meter.charge(qe.length() + ce.length());
  return ce;
}

BitString machine_created(Pca& x, State q, ActionId a, CostMeter& meter) {
  const BitString qe = x.encode_state(q);
  const BitString ae = encode_action(a);
  std::vector<BitString> parts;
  for (Aid created : x.created(q, a)) {
    parts.push_back(BitString::from_uint(created));
  }
  const BitString pe =
      parts.empty() ? BitString::from_uint(0) : BitString::pack(parts);
  meter.charge(qe.length() + ae.length() + pe.length());
  return pe;
}

BitString machine_hidden(Pca& x, State q, CostMeter& meter) {
  const BitString qe = x.encode_state(q);
  std::vector<BitString> parts;
  for (ActionId a : x.hidden_actions(q)) parts.push_back(encode_action(a));
  const BitString he =
      parts.empty() ? BitString::from_uint(0) : BitString::pack(parts);
  meter.charge(qe.length() + he.length());
  return he;
}

std::uint64_t BoundedProfile::b() const {
  return std::max<std::uint64_t>(
      {max_state_repr, max_action_repr, max_machine_cost});
}

namespace {

/// Shared exploration driver; `extra` runs additional machines per state.
template <typename ExtraFn>
BoundedProfile profile_impl(Psioa& automaton, std::size_t depth,
                            std::size_t max_states, ExtraFn&& extra) {
  BoundedProfile prof;
  const State q0 = automaton.start_state();
  std::unordered_set<State> seen{q0};
  std::queue<std::pair<State, std::size_t>> frontier;
  frontier.emplace(q0, 0);
  while (!frontier.empty() && prof.states_explored < max_states) {
    auto [q, d] = frontier.front();
    frontier.pop();
    ++prof.states_explored;

    prof.max_state_repr =
        std::max(prof.max_state_repr, automaton.encode_state(q).length());
    {
      CostMeter m;
      machine_is_start(automaton, q, m);
      prof.max_machine_cost = std::max(prof.max_machine_cost, m.steps());
    }
    const Signature sig = automaton.signature(q);
    for (ActionId a : sig.all()) {
      ++prof.transitions_explored;
      prof.max_action_repr =
          std::max(prof.max_action_repr, encode_action(a).length());
      for (SigClass cls :
           {SigClass::kInput, SigClass::kOutput, SigClass::kInternal}) {
        CostMeter m;
        machine_in_sig_class(automaton, q, a, cls, m);
        prof.max_machine_cost = std::max(prof.max_machine_cost, m.steps());
      }
      const StateDist eta = automaton.transition(q, a);
      for (State q2 : eta.support()) {
        {
          CostMeter m;
          machine_is_step(automaton, q, a, q2, m);
          prof.max_machine_cost = std::max(prof.max_machine_cost, m.steps());
        }
        if (d < depth && seen.insert(q2).second) frontier.emplace(q2, d + 1);
      }
      {
        CostMeter m;
        machine_next_state(automaton, q, a, 0.5, m);
        prof.max_machine_cost = std::max(prof.max_machine_cost, m.steps());
      }
      extra(q, a, prof);
    }
  }
  return prof;
}

}  // namespace

BoundedProfile profile_psioa(Psioa& automaton, std::size_t depth,
                             std::size_t max_states) {
  return profile_impl(automaton, depth, max_states,
                      [](State, ActionId, BoundedProfile&) {});
}

BoundedProfile profile_pca(Pca& x, std::size_t depth,
                           std::size_t max_states) {
  return profile_impl(
      x, depth, max_states, [&x](State q, ActionId a, BoundedProfile& prof) {
        CostMeter m;
        machine_config(x, q, m);
        machine_created(x, q, a, m);
        machine_hidden(x, q, m);
        prof.max_machine_cost = std::max(prof.max_machine_cost, m.steps());
      });
}

}  // namespace cdse
