#include "protocols/backbone.hpp"

#include <stdexcept>

#include "psioa/explicit_psioa.hpp"

namespace cdse {

PsioaPtr make_confirmation_race(const std::string& tag,
                                std::uint32_t depth,
                                const Rational& adversary_power) {
  if (depth == 0) {
    throw std::invalid_argument("confirmation race: depth must be >= 1");
  }
  if (adversary_power < Rational(0) || adversary_power > Rational(1)) {
    throw std::invalid_argument(
        "confirmation race: adversary power outside [0, 1]");
  }
  auto led = std::make_shared<ExplicitPsioa>("race_" + tag);
  const ActionId a_submit = act("submit_" + tag);
  const ActionId a_mine = act("mine_" + tag);
  const ActionId a_confirmed = act("confirmed_" + tag);
  const ActionId a_forked = act("forked_" + tag);

  const State idle = led->add_state("idle");
  led->set_start(idle);
  Signature s_idle;
  s_idle.in = {a_submit};
  led->set_signature(idle, s_idle);

  // Race lattice: (h, a) with h, a < depth still racing; hitting depth
  // on either axis resolves the race.
  std::vector<std::vector<State>> racing(depth,
                                         std::vector<State>(depth));
  for (std::uint32_t h = 0; h < depth; ++h) {
    for (std::uint32_t a = 0; a < depth; ++a) {
      racing[h][a] = led->add_state("race_h" + std::to_string(h) + "_a" +
                                    std::to_string(a));
      Signature sig;
      sig.internal = {a_mine};
      led->set_signature(racing[h][a], sig);
    }
  }
  const State won = led->add_state("won");
  Signature s_won;
  s_won.out = {a_confirmed};
  led->set_signature(won, s_won);
  const State lost = led->add_state("lost");
  Signature s_lost;
  s_lost.out = {a_forked};
  led->set_signature(lost, s_lost);
  const State done = led->add_state("done");
  led->set_signature(done, Signature{});

  led->add_step(idle, a_submit, racing[0][0]);
  const Rational beta = adversary_power;
  const Rational alpha = Rational(1) - beta;
  for (std::uint32_t h = 0; h < depth; ++h) {
    for (std::uint32_t a = 0; a < depth; ++a) {
      StateDist d;
      // Honest block: h+1 (confirm when h+1 == depth).
      if (!alpha.is_zero()) {
        d.add(h + 1 == depth ? won : racing[h + 1][a], alpha);
      }
      // Adversary block: a+1 (fork when a+1 == depth).
      if (!beta.is_zero()) {
        d.add(a + 1 == depth ? lost : racing[h][a + 1], beta);
      }
      led->add_transition(racing[h][a], a_mine, d);
    }
  }
  led->add_step(won, a_confirmed, done);
  led->add_step(lost, a_forked, done);
  led->validate();
  return led;
}

PsioaPtr make_ideal_ledger(const std::string& tag) {
  auto led = std::make_shared<ExplicitPsioa>("idealledger_" + tag);
  const ActionId a_submit = act("submit_" + tag);
  const ActionId a_mine = act("mine_" + tag);
  const ActionId a_confirmed = act("confirmed_" + tag);

  const State idle = led->add_state("idle");
  const State working = led->add_state("working");
  const State won = led->add_state("won");
  const State done = led->add_state("done");
  led->set_start(idle);
  Signature s_idle;
  s_idle.in = {a_submit};
  led->set_signature(idle, s_idle);
  Signature s_working;
  s_working.internal = {a_mine};
  led->set_signature(working, s_working);
  Signature s_won;
  s_won.out = {a_confirmed};
  led->set_signature(won, s_won);
  led->set_signature(done, Signature{});
  led->add_step(idle, a_submit, working);
  led->add_step(working, a_mine, won);
  led->add_step(won, a_confirmed, done);
  led->validate();
  return led;
}

Rational exact_fork_probability(std::uint32_t depth, const Rational& beta) {
  // DP over the race lattice (equivalent to the negative-binomial sum,
  // but immune to binomial-coefficient overflow): P[fork | state (h,a)].
  const Rational alpha = Rational(1) - beta;
  // p[h][a], h, a in [0, depth]; p[*][depth] = 1, p[depth][*] = 0.
  std::vector<std::vector<Rational>> p(
      depth + 1, std::vector<Rational>(depth + 1, Rational(0)));
  for (std::uint32_t h = 0; h <= depth; ++h) p[h][depth] = Rational(1);
  for (std::uint32_t a = 0; a < depth; ++a) p[depth][a] = Rational(0);
  for (std::uint32_t h = depth; h-- > 0;) {
    for (std::uint32_t a = depth; a-- > 0;) {
      p[h][a] = alpha * p[h + 1][a] + beta * p[h][a + 1];
    }
  }
  return p[0][0];
}

}  // namespace cdse
