#include "protocols/environment.hpp"

#include "psioa/explicit_psioa.hpp"

namespace cdse {

namespace {

/// Shared builder: `armed_by(w)` decides whether watching w arms accept.
template <typename ArmedBy>
PsioaPtr make_probe_impl(const std::string& name,
                         const std::vector<ActionId>& script,
                         const ActionSet& watch, ActionId acc,
                         ArmedBy&& armed_by) {
  auto env = std::make_shared<ExplicitPsioa>(name);
  const std::size_t n = script.size();
  // State (i, armed, acced): i script actions emitted.
  std::vector<State> states((n + 1) * 4);
  auto id = [n](std::size_t i, int armed, int acced) {
    (void)n;
    return (i * 4) + static_cast<std::size_t>(armed * 2 + acced);
  };
  for (std::size_t i = 0; i <= n; ++i) {
    for (int armed = 0; armed < 2; ++armed) {
      for (int acced = 0; acced < 2; ++acced) {
        states[id(i, armed, acced)] = env->add_state(
            "s" + std::to_string(i) + (armed ? "a" : "-") +
            (acced ? "!" : "."));
      }
    }
  }
  env->set_start(states[id(0, 0, 0)]);
  for (std::size_t i = 0; i <= n; ++i) {
    for (int armed = 0; armed < 2; ++armed) {
      for (int acced = 0; acced < 2; ++acced) {
        const State q = states[id(i, armed, acced)];
        Signature sig;
        sig.in = watch;
        if (i < n) sig.out.push_back(script[i]);
        if (armed && !acced) sig.out.push_back(acc);
        set::normalize(sig.out);
        env->set_signature(q, sig);
        if (i < n) {
          env->add_step(q, script[i], states[id(i + 1, armed, acced)]);
        }
        if (armed && !acced) {
          env->add_step(q, acc, states[id(i, armed, 1)]);
        }
        for (ActionId w : watch) {
          const int next_armed = armed || armed_by(w) ? 1 : 0;
          env->add_step(q, w, states[id(i, next_armed, acced)]);
        }
      }
    }
  }
  env->validate();
  return env;
}

}  // namespace

PsioaPtr make_probe_env(const std::string& name, std::vector<ActionId> script,
                        ActionSet watch, ActionId acc) {
  return make_probe_impl(name, script, watch, acc,
                         [](ActionId) { return true; });
}

PsioaPtr make_probe_env_matching(const std::string& name,
                                 std::vector<ActionId> script,
                                 ActionSet watch, ActionId arm_on,
                                 ActionId acc) {
  set::insert(watch, arm_on);
  return make_probe_impl(name, script, watch, acc,
                         [arm_on](ActionId w) { return w == arm_on; });
}

}  // namespace cdse
