#include "protocols/broadcast.hpp"

#include "psioa/explicit_psioa.hpp"

namespace cdse {

namespace {

struct BroadcastActions {
  ActionId bcast[2];
  ActionId equivocate;
  ActionId deliver[2];
  ActionId noquorum;

  explicit BroadcastActions(const std::string& tag) {
    bcast[0] = act("bcast0_" + tag);
    bcast[1] = act("bcast1_" + tag);
    equivocate = act("equivocate_" + tag);
    deliver[0] = act("deliver0_" + tag);
    deliver[1] = act("deliver1_" + tag);
    noquorum = act("noquorum_" + tag);
  }
};

}  // namespace

PsioaPtr make_bracha_broadcast(const std::string& tag) {
  auto b = std::make_shared<ExplicitPsioa>("bracha_" + tag);
  const BroadcastActions a(tag);
  const ActionId a_echo = act("echo_" + tag);
  const ActionId a_tally = act("tally_" + tag);

  const State idle = b->add_state("idle");
  b->set_start(idle);
  Signature s_idle;
  s_idle.in = {a.bcast[0], a.bcast[1], a.equivocate};
  b->set_signature(idle, s_idle);

  // Consistent broadcast of v: all three receivers echo v, the tally
  // reaches the 2f+1 = 3 quorum, v is delivered.
  State echoing[2];
  State tallying[2];
  State delivering[2];
  for (int v = 0; v < 2; ++v) {
    echoing[v] = b->add_state("echoing" + std::to_string(v));
    Signature s_echo;
    s_echo.internal = {a_echo};
    b->set_signature(echoing[v], s_echo);
    tallying[v] = b->add_state("tallying" + std::to_string(v));
    Signature s_tally;
    s_tally.internal = {a_tally};
    b->set_signature(tallying[v], s_tally);
    delivering[v] = b->add_state("delivering" + std::to_string(v));
    Signature s_del;
    s_del.out = {a.deliver[v]};
    b->set_signature(delivering[v], s_del);
  }
  // Equivocation: receivers echo conflicting values, no value reaches
  // the quorum, the tally aborts.
  const State split_echo = b->add_state("split_echo");
  Signature s_se;
  s_se.internal = {a_echo};
  b->set_signature(split_echo, s_se);
  const State split_tally = b->add_state("split_tally");
  Signature s_st;
  s_st.internal = {a_tally};
  b->set_signature(split_tally, s_st);
  const State aborting = b->add_state("aborting");
  Signature s_ab;
  s_ab.out = {a.noquorum};
  b->set_signature(aborting, s_ab);
  const State done = b->add_state("done");
  b->set_signature(done, Signature{});

  for (int v = 0; v < 2; ++v) {
    b->add_step(idle, a.bcast[v], echoing[v]);
    b->add_step(echoing[v], a_echo, tallying[v]);
    b->add_step(tallying[v], a_tally, delivering[v]);
    b->add_step(delivering[v], a.deliver[v], done);
  }
  b->add_step(idle, a.equivocate, split_echo);
  b->add_step(split_echo, a_echo, split_tally);
  b->add_step(split_tally, a_tally, aborting);
  b->add_step(aborting, a.noquorum, done);
  b->validate();
  return b;
}

PsioaPtr make_ideal_broadcast(const std::string& tag) {
  auto b = std::make_shared<ExplicitPsioa>("idealbcast_" + tag);
  const BroadcastActions a(tag);
  const ActionId a_echo = act("echo_" + tag);
  const ActionId a_tally = act("tally_" + tag);

  const State idle = b->add_state("idle");
  b->set_start(idle);
  Signature s_idle;
  s_idle.in = {a.bcast[0], a.bcast[1], a.equivocate};
  b->set_signature(idle, s_idle);
  // The spec takes the same number of internal steps (two) so that the
  // two automata are comparable under the same off-line schedules; it
  // decides the outcome immediately on receipt.
  State working[3];  // deliver0, deliver1, abort
  State phase2[3];
  const char* names[3] = {"w0", "w1", "wa"};
  for (int i = 0; i < 3; ++i) {
    working[i] = b->add_state(std::string("work_") + names[i]);
    Signature s_w;
    s_w.internal = {a_echo};
    b->set_signature(working[i], s_w);
    phase2[i] = b->add_state(std::string("phase2_") + names[i]);
    Signature s_p;
    s_p.internal = {a_tally};
    b->set_signature(phase2[i], s_p);
  }
  State resolving[2];
  for (int v = 0; v < 2; ++v) {
    resolving[v] = b->add_state("resolve" + std::to_string(v));
    Signature s_r;
    s_r.out = {a.deliver[v]};
    b->set_signature(resolving[v], s_r);
  }
  const State aborting = b->add_state("aborting");
  Signature s_ab;
  s_ab.out = {a.noquorum};
  b->set_signature(aborting, s_ab);
  const State done = b->add_state("done");
  b->set_signature(done, Signature{});

  for (int v = 0; v < 2; ++v) {
    b->add_step(idle, a.bcast[v], working[v]);
    b->add_step(working[v], a_echo, phase2[v]);
    b->add_step(phase2[v], a_tally, resolving[v]);
    b->add_step(resolving[v], a.deliver[v], done);
  }
  b->add_step(idle, a.equivocate, working[2]);
  b->add_step(working[2], a_echo, phase2[2]);
  b->add_step(phase2[2], a_tally, aborting);
  b->add_step(aborting, a.noquorum, done);
  b->validate();
  return b;
}

}  // namespace cdse
