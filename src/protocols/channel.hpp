#pragma once
// Channel automata: the communication substrate for protocol examples.
//
// A channel carries one-bit messages: input send0/1_<tag>, output
// recv0/1_<tag>, one message in flight. The lossy variant drops the
// message with a fixed probability at send time -- a minimal model of an
// unreliable network that gives the implementation-relation tests a
// source of genuinely different trace distributions.

#include <string>

#include "psioa/psioa.hpp"
#include "util/rational.hpp"

namespace cdse {

/// Reliable 1-slot FIFO channel.
PsioaPtr make_channel(const std::string& tag);

/// Lossy 1-slot channel: each send is delivered with `deliver_prob`,
/// silently dropped otherwise.
PsioaPtr make_lossy_channel(const std::string& tag,
                            const Rational& deliver_prob);

}  // namespace cdse
