#pragma once
// Dynamic ledger with run-time subchain creation/destruction.
//
// This is the paper's motivating scenario (Section 1: blockchains "where
// subchains can be created or destroyed at run time" [13]) expressed in
// the formalism: a parent-chain automaton emits open_i actions; a
// creation policy spawns subchain automata at run time; a subchain dies
// (empty signature, removed by reduce()) after close_i. The static
// specification pre-instantiates every subchain as a listener for its
// open_i action -- externally indistinguishable, which is exactly what
// experiment E9 verifies (TV distance 0) while exercising the dynamic
// transition machinery of Defs 2.12-2.16.
//
// Subchain i actions (suffix <tag>): open<i>, tx<i>, ack<i>, close<i>.

#include <cstdint>
#include <string>

#include "pca/dynamic_pca.hpp"

namespace cdse {

struct LedgerSystem {
  RegistryPtr registry;
  std::shared_ptr<DynamicPca> dynamic;  ///< PCA creating subchains lazily
  PsioaPtr static_spec;                 ///< equivalent static composition
  std::uint32_t n_subchains = 0;
};

/// Builds the paired dynamic/static ledgers with n subchains.
LedgerSystem make_ledger_system(std::uint32_t n, const std::string& tag);

/// A subchain automaton. `dynamic_variant` starts live (it is born by
/// creation); the static variant starts as a listener for its open action.
PsioaPtr make_subchain(std::uint32_t index, const std::string& tag,
                       bool dynamic_variant);

/// The parent chain: emits open1..openN in order, then stops.
PsioaPtr make_parent_chain(std::uint32_t n, const std::string& tag,
                           const std::string& name_suffix);

}  // namespace cdse
