#pragma once
// Randomized binary consensus and its ideal specification.
//
// BenOrLite is a collapsed two-party Ben-Or-style protocol: once both
// proposals are in, agreement decides immediately; disagreement enters a
// retry loop where each common-coin round ends the conflict with
// probability 1/2 (both parties adopt the coin) and repeats otherwise.
// The ideal specification decides in one internal step: the proposed
// value under agreement, a fair coin under disagreement.
//
// Under a depth-d scheduler the two differ exactly by the probability
// that BenOrLite is still looping at the bound -- 2^-r after r rounds --
// so "BenOrLite implements IdealConsensus with negligible epsilon in the
// schedule length" is checkable in closed form (used by tests and the
// consensus example).
//
// Actions (suffix <tag>):
//   inputs : proposeA0, proposeA1, proposeB0, proposeB1
//   outputs: decide0, decide1
//   internal: round (the common-coin round of BenOrLite; pick for Ideal)

#include <string>

#include "psioa/psioa.hpp"

namespace cdse {

PsioaPtr make_benor_consensus(const std::string& tag);
PsioaPtr make_ideal_consensus(const std::string& tag);

}  // namespace cdse
