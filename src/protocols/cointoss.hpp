#pragma once
// Blum coin toss over the commitment functionality: composition in anger.
//
// The protocol automaton is genuinely *composed* with the commitment
// functionality of crypto/pairs.hpp (commit/reveal wiring hidden), so the
// coin toss built on the real commitment and the one built on the ideal
// commitment are exactly the A3||A1 vs A3||A2 shape of Lemma 4.13: the
// composability theorem predicts the protocol inherits at most the
// commitment's epsilon. Concretely, a corrupt committer who sees the
// honest bit and then asks the real commitment to equivocate biases the
// coin by exactly p/2 with p = 2^-k -- half the commitment's own
// advantage, comfortably inside the theorem's budget.
//
// Actions (suffix <tag>):
//   env : toss (in), result0/result1 (out)
//   adv : commit0/commit1, flipcmd (in);  announceB0/announceB1 (out)
//   hidden wiring: reveal, open0/open1;  internal: pickb

#include <cstdint>
#include <string>

#include "secure/structured.hpp"
#include "util/rational.hpp"

namespace cdse {

struct CoinTossPair {
  StructuredPsioa real;   ///< protocol over the real commitment
  StructuredPsioa ideal;  ///< protocol over the ideal commitment
  Rational commitment_advantage;  ///< 2^-k (single equivocation query)
  Rational exact_bias;            ///< achievable coin bias = 2^-(k+1)
};

/// Builds both protocol instances over the k-parameter commitment.
CoinTossPair make_cointoss_pair(std::uint32_t k, const std::string& tag);

/// The honest party logic (exposed for tests).
PsioaPtr make_cointoss_party(const std::string& tag);

/// The optimal corrupt committer: commits to 0, waits for the honest
/// bit, and requests an equivocation exactly when the toss would
/// otherwise land 0.
PsioaPtr make_biaser_adversary(const std::string& tag);

/// An honest committer: commits once (either bit offered, Def 4.24),
/// never equivocates. The no-attack baseline.
PsioaPtr make_honest_committer(const std::string& tag);

}  // namespace cdse
