#pragma once
// Environment (distinguisher) builders.
//
// Environments drive a system under test and report what they saw; the
// canonical shape is the scripted probe: emit a fixed sequence of inputs
// into the system, watch a designated set of system outputs, and raise a
// dedicated accept action once a watched action has occurred. With the
// accept insight function this realizes exactly the acceptance-probability
// distinguisher of [3]/[4] that the paper builds its implementation
// relation on.

#include <string>
#include <vector>

#include "psioa/psioa.hpp"

namespace cdse {

/// Scripted probe environment.
///  - `script`: output actions emitted in order (the i-th becomes enabled
///    after the first i-1 have fired);
///  - `watch`: input actions accepted at every state;
///  - `acc`: output action enabled (once) after any watched action.
PsioaPtr make_probe_env(const std::string& name,
                        std::vector<ActionId> script, ActionSet watch,
                        ActionId acc);

/// Probe variant that accepts only when a *specific* watched action is
/// seen (others are absorbed without arming the accept).
PsioaPtr make_probe_env_matching(const std::string& name,
                                 std::vector<ActionId> script,
                                 ActionSet watch, ActionId arm_on,
                                 ActionId acc);

}  // namespace cdse
