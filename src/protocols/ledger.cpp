#include "protocols/ledger.hpp"

#include "psioa/compose.hpp"
#include "psioa/explicit_psioa.hpp"

namespace cdse {

namespace {
std::string idx_name(const std::string& base, std::uint32_t i,
                     const std::string& tag) {
  return base + std::to_string(i) + "_" + tag;
}
}  // namespace

PsioaPtr make_subchain(std::uint32_t index, const std::string& tag,
                       bool dynamic_variant) {
  const std::string kind = dynamic_variant ? "dsub" : "ssub";
  auto sub = std::make_shared<ExplicitPsioa>(
      kind + std::to_string(index) + "_" + tag);
  const ActionId a_open = act(idx_name("open", index, tag));
  const ActionId a_tx = act(idx_name("tx", index, tag));
  const ActionId a_ack = act(idx_name("ack", index, tag));
  const ActionId a_close = act(idx_name("close", index, tag));

  const State live = dynamic_variant ? sub->add_state("live")
                                     : [&] {
                                         const State waiting =
                                             sub->add_state("waiting");
                                         sub->set_start(waiting);
                                         Signature s;
                                         s.in = {a_open};
                                         sub->set_signature(waiting, s);
                                         return sub->add_state("live");
                                       }();
  const State pending = sub->add_state("pending");
  const State dead = sub->add_state("dead");

  if (dynamic_variant) {
    sub->set_start(live);
  } else {
    sub->add_step(*sub->find_state("waiting"), a_open, live);
  }
  Signature s_live;
  s_live.in = {a_tx, a_close};
  sub->set_signature(live, s_live);
  Signature s_pending;
  s_pending.out = {a_ack};
  sub->set_signature(pending, s_pending);
  sub->set_signature(dead, Signature{});  // destruction sentinel

  sub->add_step(live, a_tx, pending);
  sub->add_step(pending, a_ack, live);
  sub->add_step(live, a_close, dead);
  sub->validate();
  return sub;
}

PsioaPtr make_parent_chain(std::uint32_t n, const std::string& tag,
                           const std::string& name_suffix) {
  auto parent =
      std::make_shared<ExplicitPsioa>("parent" + name_suffix + "_" + tag);
  std::vector<State> stages;
  for (std::uint32_t i = 0; i <= n; ++i) {
    stages.push_back(parent->add_state("stage" + std::to_string(i)));
  }
  parent->set_start(stages[0]);
  for (std::uint32_t i = 0; i < n; ++i) {
    const ActionId a_open = act(idx_name("open", i + 1, tag));
    Signature s;
    s.out = {a_open};
    parent->set_signature(stages[i], s);
    parent->add_step(stages[i], a_open, stages[i + 1]);
  }
  // After opening everything the parent idles with a harmless input so it
  // is not mistaken for a destroyed automaton inside a configuration.
  const ActionId a_noop = act("parent_noop_" + tag);
  Signature s_done;
  s_done.in = {a_noop};
  parent->set_signature(stages[n], s_done);
  parent->add_step(stages[n], a_noop, stages[n]);
  parent->validate();
  return parent;
}

LedgerSystem make_ledger_system(std::uint32_t n, const std::string& tag) {
  LedgerSystem sys;
  sys.n_subchains = n;
  sys.registry = std::make_shared<AutomatonRegistry>();

  const Aid parent_aid =
      sys.registry->add(make_parent_chain(n, tag, "_dyn"));
  std::vector<Aid> sub_aids;
  for (std::uint32_t i = 1; i <= n; ++i) {
    sub_aids.push_back(sys.registry->add(make_subchain(i, tag, true)));
  }

  // Creation policy: firing open_i spawns subchain i (once; the parent
  // emits each open exactly once anyway, but stay defensive).
  std::vector<std::pair<ActionId, Aid>> spawn_on;
  for (std::uint32_t i = 1; i <= n; ++i) {
    spawn_on.emplace_back(act(idx_name("open", i, tag)), sub_aids[i - 1]);
  }
  CreationPolicy creation = [spawn_on](const Configuration& cfg,
                                       ActionId a) {
    std::vector<Aid> phi;
    for (const auto& [action, aid] : spawn_on) {
      if (action == a && !cfg.contains(aid)) phi.push_back(aid);
    }
    return phi;
  };

  sys.dynamic = std::make_shared<DynamicPca>(
      "ledger_" + tag, sys.registry, std::vector<Aid>{parent_aid}, creation,
      no_hiding());

  // Static specification: all subchains exist from the start, listening
  // for their open action.
  std::vector<PsioaPtr> parts;
  parts.push_back(make_parent_chain(n, tag, "_stat"));
  for (std::uint32_t i = 1; i <= n; ++i) {
    parts.push_back(make_subchain(i, tag, false));
  }
  sys.static_spec = compose(std::move(parts));
  return sys;
}

}  // namespace cdse
