#include "protocols/coinflip.hpp"

#include <stdexcept>

#include "psioa/explicit_psioa.hpp"

namespace cdse {

PsioaPtr make_coin(const std::string& tag, const Rational& p_head) {
  if (p_head < Rational(0) || p_head > Rational(1)) {
    throw std::invalid_argument("make_coin: p_head outside [0, 1]");
  }
  auto coin = std::make_shared<ExplicitPsioa>("coin_" + tag);
  const ActionId a_flip = act("flip_" + tag);
  const ActionId a_toss = act("toss_" + tag);
  const ActionId a_head = act("head_" + tag);
  const ActionId a_tail = act("tail_" + tag);

  const State idle = coin->add_state("idle");
  const State tossing = coin->add_state("tossing");
  const State heads = coin->add_state("heads");
  const State tails = coin->add_state("tails");
  coin->set_start(idle);

  Signature s_idle;
  s_idle.in = {a_flip};
  coin->set_signature(idle, s_idle);
  Signature s_toss;
  s_toss.internal = {a_toss};
  coin->set_signature(tossing, s_toss);
  Signature s_h;
  s_h.out = {a_head};
  coin->set_signature(heads, s_h);
  Signature s_t;
  s_t.out = {a_tail};
  coin->set_signature(tails, s_t);

  coin->add_step(idle, a_flip, tossing);
  StateDist toss;
  toss.add(heads, p_head);
  toss.add(tails, Rational(1) - p_head);
  coin->add_transition(tossing, a_toss, toss);
  coin->add_step(heads, a_head, idle);
  coin->add_step(tails, a_tail, idle);
  coin->validate();
  return coin;
}

}  // namespace cdse
