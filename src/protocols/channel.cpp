#include "protocols/channel.hpp"

#include "psioa/explicit_psioa.hpp"

namespace cdse {

namespace {

PsioaPtr make_channel_impl(const std::string& name, const std::string& tag,
                           const Rational& deliver_prob) {
  auto ch = std::make_shared<ExplicitPsioa>(name);
  const ActionId a_send[2] = {act("send0_" + tag), act("send1_" + tag)};
  const ActionId a_recv[2] = {act("recv0_" + tag), act("recv1_" + tag)};

  const State idle = ch->add_state("idle");
  ch->set_start(idle);
  Signature idle_sig;
  idle_sig.in = ActionSet{a_send[0], a_send[1]};
  set::normalize(idle_sig.in);
  ch->set_signature(idle, idle_sig);

  for (int bit = 0; bit < 2; ++bit) {
    const State holding = ch->add_state("holding" + std::to_string(bit));
    Signature hold_sig;
    hold_sig.out = ActionSet{a_recv[bit]};
    ch->set_signature(holding, hold_sig);
    if (deliver_prob == Rational(1)) {
      ch->add_step(idle, a_send[bit], holding);
    } else {
      StateDist d;
      d.add(holding, deliver_prob);
      d.add(idle, Rational(1) - deliver_prob);
      ch->add_transition(idle, a_send[bit], d);
    }
    ch->add_step(holding, a_recv[bit], idle);
  }
  ch->validate();
  return ch;
}

}  // namespace

PsioaPtr make_channel(const std::string& tag) {
  return make_channel_impl("chan_" + tag, tag, Rational(1));
}

PsioaPtr make_lossy_channel(const std::string& tag,
                            const Rational& deliver_prob) {
  return make_channel_impl("lossychan_" + tag, tag, deliver_prob);
}

}  // namespace cdse
