#pragma once
// Byzantine-consistent broadcast (Bracha-lite) and its specification.
//
// The last of the paper's "distributed computing fundamental elements"
// (Section 1: communication primitives): a sender broadcasts a bit to
// three receivers through an echo-quorum protocol that tolerates one
// Byzantine fault. A Byzantine *sender* (adversary input `equivocate`)
// sends conflicting values; the echo quorum then never completes and the
// protocol reports `noquorum` instead of delivering inconsistently.
//
// The protocol automaton walks the echo phase explicitly; the spec
// automaton decides in one step. Consistency here is absolute (the
// quorum argument is deterministic), so protocol and spec are *exactly*
// equivalent -- verified both distributionally and by bisimulation in
// the tests, a zero-epsilon calibration point next to the probabilistic
// pairs.
//
// Actions (suffix <tag>):
//   env in : bcast0, bcast1        adv in : equivocate
//   env out: deliver0, deliver1, noquorum
//   internal (protocol only): echo, tally

#include <string>

#include "psioa/psioa.hpp"

namespace cdse {

PsioaPtr make_bracha_broadcast(const std::string& tag);
PsioaPtr make_ideal_broadcast(const std::string& tag);

}  // namespace cdse
