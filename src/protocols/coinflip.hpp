#pragma once
// Coin automata: the smallest genuinely probabilistic PSIOA.
//
// On input flip_<tag> the coin resolves internally and then announces
// head_<tag> or tail_<tag>; it is reusable (loops back to idle). Pairs of
// coins with different biases give implementation-relation tests an
// automaton pair whose exact trace distance is |p - q| per flip -- the
// cleanest possible calibration of the balance-distance machinery.

#include <string>

#include "psioa/psioa.hpp"
#include "util/rational.hpp"

namespace cdse {

PsioaPtr make_coin(const std::string& tag, const Rational& p_head);

}  // namespace cdse
