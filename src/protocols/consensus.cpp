#include "protocols/consensus.hpp"

#include "psioa/explicit_psioa.hpp"

namespace cdse {

namespace {

struct ConsensusActions {
  ActionId propose_a[2];
  ActionId propose_b[2];
  ActionId decide[2];

  explicit ConsensusActions(const std::string& tag) {
    propose_a[0] = act("proposeA0_" + tag);
    propose_a[1] = act("proposeA1_" + tag);
    propose_b[0] = act("proposeB0_" + tag);
    propose_b[1] = act("proposeB1_" + tag);
    decide[0] = act("decide0_" + tag);
    decide[1] = act("decide1_" + tag);
  }
};

/// Builds the shared skeleton: proposal collection into one of the four
/// (va, vb) states; `wire_conflict` installs the disagreement dynamics.
template <typename WireConflict>
PsioaPtr make_consensus(const std::string& name, const std::string& tag,
                        const std::string& resolve_action_name,
                        WireConflict&& wire_conflict) {
  auto c = std::make_shared<ExplicitPsioa>(name);
  const ConsensusActions a(tag);
  const ActionId a_resolve = act(resolve_action_name + "_" + tag);

  const State start = c->add_state("start");
  c->set_start(start);
  State got_a[2];
  State got_b[2];
  State agreed[2];   // both proposed v
  State deciding[2]; // emit decide_v
  const State conflict = c->add_state("conflict");
  const State done = c->add_state("done");
  for (int v = 0; v < 2; ++v) {
    got_a[v] = c->add_state("gotA" + std::to_string(v));
    got_b[v] = c->add_state("gotB" + std::to_string(v));
    agreed[v] = c->add_state("agreed" + std::to_string(v));
    deciding[v] = c->add_state("deciding" + std::to_string(v));
  }

  Signature s_start;
  s_start.in = {a.propose_a[0], a.propose_a[1], a.propose_b[0],
                a.propose_b[1]};
  c->set_signature(start, s_start);
  for (int v = 0; v < 2; ++v) {
    Signature s_ga;
    s_ga.in = {a.propose_b[0], a.propose_b[1]};
    c->set_signature(got_a[v], s_ga);
    Signature s_gb;
    s_gb.in = {a.propose_a[0], a.propose_a[1]};
    c->set_signature(got_b[v], s_gb);
    Signature s_ag;
    s_ag.internal = {a_resolve};
    c->set_signature(agreed[v], s_ag);
    Signature s_d;
    s_d.out = {a.decide[v]};
    c->set_signature(deciding[v], s_d);
  }
  Signature s_conf;
  s_conf.internal = {a_resolve};
  c->set_signature(conflict, s_conf);
  c->set_signature(done, Signature{});

  for (int v = 0; v < 2; ++v) {
    c->add_step(start, a.propose_a[v], got_a[v]);
    c->add_step(start, a.propose_b[v], got_b[v]);
    for (int w = 0; w < 2; ++w) {
      const State joint = (v == w) ? agreed[v] : conflict;
      c->add_step(got_a[v], a.propose_b[w], joint);
      c->add_step(got_b[v], a.propose_a[w], joint);
    }
    // Agreement: validity forces the common value.
    c->add_step(agreed[v], a_resolve, deciding[v]);
    c->add_step(deciding[v], a.decide[v], done);
  }
  wire_conflict(*c, conflict, deciding, a_resolve);
  c->validate();
  return c;
}

}  // namespace

PsioaPtr make_benor_consensus(const std::string& tag) {
  return make_consensus(
      "benor_" + tag, tag, "round",
      [](ExplicitPsioa& c, State conflict, State deciding[2],
         ActionId a_round) {
        // One common-coin round: with prob 1/4 each, both adopt coin v
        // and decide v; with prob 1/2 the round fails and repeats.
        StateDist d;
        d.add(deciding[0], Rational(1, 4));
        d.add(deciding[1], Rational(1, 4));
        d.add(conflict, Rational(1, 2));
        c.add_transition(conflict, a_round, d);
      });
}

PsioaPtr make_ideal_consensus(const std::string& tag) {
  return make_consensus(
      "idealcons_" + tag, tag, "pick",
      [](ExplicitPsioa& c, State conflict, State deciding[2],
         ActionId a_pick) {
        // The specification resolves disagreement in one fair step.
        StateDist d;
        d.add(deciding[0], Rational(1, 2));
        d.add(deciding[1], Rational(1, 2));
        c.add_transition(conflict, a_pick, d);
      });
}

}  // namespace cdse
