#include "protocols/cointoss.hpp"

#include "crypto/pairs.hpp"
#include "psioa/compose.hpp"
#include "psioa/explicit_psioa.hpp"
#include "psioa/hide.hpp"

namespace cdse {

PsioaPtr make_cointoss_party(const std::string& tag) {
  auto p = std::make_shared<ExplicitPsioa>("ctparty_" + tag);
  const ActionId a_toss = act("toss_" + tag);
  const ActionId a_commit[2] = {act("commit0_" + tag),
                                act("commit1_" + tag)};
  const ActionId a_pickb = act("pickb_" + tag);
  const ActionId a_announce[2] = {act("announceB0_" + tag),
                                  act("announceB1_" + tag)};
  const ActionId a_reveal = act("reveal_" + tag);
  const ActionId a_open[2] = {act("open0_" + tag), act("open1_" + tag)};
  const ActionId a_result[2] = {act("result0_" + tag),
                                act("result1_" + tag)};

  const State idle = p->add_state("idle");
  const State wait_commit = p->add_state("wait_commit");
  const State picking = p->add_state("picking");
  State announcing[2];
  State revealing[2];
  State wait_open[2];
  State resolving[2];
  const State done = p->add_state("done");
  for (int b = 0; b < 2; ++b) {
    announcing[b] = p->add_state("announcing" + std::to_string(b));
    revealing[b] = p->add_state("revealing" + std::to_string(b));
    wait_open[b] = p->add_state("wait_open" + std::to_string(b));
  }
  for (int r = 0; r < 2; ++r) {
    resolving[r] = p->add_state("resolving" + std::to_string(r));
  }
  p->set_start(idle);

  Signature s_idle;
  s_idle.in = {a_toss};
  p->set_signature(idle, s_idle);
  Signature s_wc;
  s_wc.in = {a_commit[0], a_commit[1]};
  p->set_signature(wait_commit, s_wc);
  Signature s_pick;
  s_pick.internal = {a_pickb};
  p->set_signature(picking, s_pick);
  for (int b = 0; b < 2; ++b) {
    Signature s_ann;
    s_ann.out = {a_announce[b]};
    p->set_signature(announcing[b], s_ann);
    Signature s_rev;
    s_rev.out = {a_reveal};
    p->set_signature(revealing[b], s_rev);
    Signature s_wo;
    s_wo.in = {a_open[0], a_open[1]};
    p->set_signature(wait_open[b], s_wo);
  }
  for (int r = 0; r < 2; ++r) {
    Signature s_res;
    s_res.out = {a_result[r]};
    p->set_signature(resolving[r], s_res);
  }
  p->set_signature(done, Signature{});

  p->add_step(idle, a_toss, wait_commit);
  // The committer's bit is the commitment's business; the party only
  // needs to know a commitment arrived.
  p->add_step(wait_commit, a_commit[0], picking);
  p->add_step(wait_commit, a_commit[1], picking);
  StateDist pick;
  pick.add(announcing[0], Rational(1, 2));
  pick.add(announcing[1], Rational(1, 2));
  p->add_transition(picking, a_pickb, pick);
  for (int b = 0; b < 2; ++b) {
    p->add_step(announcing[b], a_announce[b], revealing[b]);
    p->add_step(revealing[b], a_reveal, wait_open[b]);
    for (int y = 0; y < 2; ++y) {
      p->add_step(wait_open[b], a_open[y], resolving[y ^ b]);
    }
  }
  for (int r = 0; r < 2; ++r) {
    p->add_step(resolving[r], a_result[r], done);
  }
  p->validate();
  return p;
}

PsioaPtr make_biaser_adversary(const std::string& tag) {
  auto adv = std::make_shared<ExplicitPsioa>("biaser_" + tag);
  const ActionId a_commit0 = act("commit0_" + tag);
  const ActionId a_commit1 = act("commit1_" + tag);
  const ActionId a_flip = act("flipcmd_" + tag);
  const ActionId a_announce[2] = {act("announceB0_" + tag),
                                  act("announceB1_" + tag)};

  const State start = adv->add_state("start");
  const State listening = adv->add_state("listening");
  const State flipping = adv->add_state("flipping");
  const State settled = adv->add_state("settled");
  adv->set_start(start);

  // Def 4.24 requires the adversary to *offer* every adversary input of
  // the target, so commit1 is available too (the strategy never uses
  // it; a deterministic scheduler picks commit0).
  Signature s_start;
  s_start.out = {a_commit0, a_commit1};
  adv->set_signature(start, s_start);
  Signature s_listen;
  s_listen.in = {a_announce[0], a_announce[1]};
  adv->set_signature(listening, s_listen);
  Signature s_flip;
  s_flip.out = {a_flip};
  s_flip.in = {a_announce[0], a_announce[1]};
  adv->set_signature(flipping, s_flip);
  Signature s_settled;
  s_settled.in = {a_announce[0], a_announce[1]};
  adv->set_signature(settled, s_settled);

  adv->add_step(start, a_commit0, listening);
  adv->add_step(start, a_commit1, settled);
  // Committed to 0: result = open XOR b. If b = 0 the toss would land 0;
  // ask the commitment to equivocate. If b = 1 it already lands 1.
  adv->add_step(listening, a_announce[0], flipping);
  adv->add_step(listening, a_announce[1], settled);
  adv->add_step(flipping, a_flip, settled);
  adv->add_step(flipping, a_announce[0], flipping);
  adv->add_step(flipping, a_announce[1], flipping);
  adv->add_step(settled, a_announce[0], settled);
  adv->add_step(settled, a_announce[1], settled);
  adv->validate();
  return adv;
}

PsioaPtr make_honest_committer(const std::string& tag) {
  auto adv = std::make_shared<ExplicitPsioa>("honest_" + tag);
  const ActionId a_commit[2] = {act("commit0_" + tag),
                                act("commit1_" + tag)};
  const ActionId a_flip = act("flipcmd_" + tag);
  const ActionId a_announce[2] = {act("announceB0_" + tag),
                                  act("announceB1_" + tag)};
  const State start = adv->add_state("start");
  const State settled = adv->add_state("settled");
  adv->set_start(start);
  // flipcmd must be offered somewhere for Def 4.24; the honest committer
  // exposes it nowhere reachable-by-itself... it must, so keep it at the
  // settled state behind the announce (deterministic schedulers simply
  // never pick it).
  Signature s_start;
  s_start.out = {a_commit[0], a_commit[1]};
  adv->set_signature(start, s_start);
  Signature s_settled;
  s_settled.in = {a_announce[0], a_announce[1]};
  s_settled.out = {a_flip};
  adv->set_signature(settled, s_settled);
  adv->add_step(start, a_commit[0], settled);
  adv->add_step(start, a_commit[1], settled);
  adv->add_step(settled, a_announce[0], settled);
  adv->add_step(settled, a_announce[1], settled);
  adv->add_step(settled, a_flip, settled);
  adv->validate();
  return adv;
}

CoinTossPair make_cointoss_pair(std::uint32_t k, const std::string& tag) {
  const Rational p(1, static_cast<std::int64_t>(1) << k);
  const ActionSet wiring =
      acts({"reveal_" + tag, "open0_" + tag, "open1_" + tag});
  auto build = [&](const std::string& side, const Rational& flip_win) {
    PsioaPtr commitment =
        make_commitment_automaton("ctcom_" + side + "_" + tag, tag,
                                  flip_win);
    return hide_actions(compose(make_cointoss_party(tag), commitment),
                        wiring);
  };
  // The commit/reveal/open wiring is hidden on the happy path, but its
  // *input side* stays exposed in off-path interleavings (e.g. the
  // commitment holding a value while the party is still idle). Classify
  // the wiring as environment vocabulary: Def 4.24 then forbids any
  // adversary from injecting it, which is exactly the honest-wiring
  // reading.
  const ActionSet env = acts({"toss_" + tag, "result0_" + tag,
                              "result1_" + tag, "reveal_" + tag,
                              "open0_" + tag, "open1_" + tag});
  const ActionSet adv_in =
      acts({"commit0_" + tag, "commit1_" + tag, "flipcmd_" + tag});
  const ActionSet adv_out =
      acts({"announceB0_" + tag, "announceB1_" + tag});
  return CoinTossPair{
      StructuredPsioa(build("real", p), env, adv_in, adv_out),
      StructuredPsioa(build("ideal", Rational(0)), env, adv_in, adv_out),
      p, p * Rational(1, 2)};
}

}  // namespace cdse
