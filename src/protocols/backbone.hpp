#pragma once
// Backbone-lite: a Bitcoin-backbone-style confirmation race.
//
// The paper's conclusion positions the framework as the first able to
// model blockchain building blocks outside plain UC; Garay et al.'s
// backbone protocol [8] is its canonical target. This module distills
// the backbone's *common-prefix* argument into an exactly analyzable
// automaton: after a transaction is submitted, honest miners extend the
// public chain (probability alpha = 1 - beta per round) while the
// adversary secretly extends a fork (probability beta); the transaction
// is `confirmed` when the honest chain adds `depth` blocks first, and
// `forked` (double-spend) when the adversary's chain gets there first.
//
// The ideal ledger functionality always confirms. The implementation
// distance between real and ideal is therefore the fork probability --
// available in closed form (negative-binomial race), exactly matched by
// the cone enumerator, and *negligible in the confirmation depth* iff
// the adversary controls a minority of the mining power: Def 4.12's
// <=_{neg,pt} with the confirmation depth as the security parameter.

#include <cstdint>
#include <string>

#include "psioa/psioa.hpp"
#include "util/rational.hpp"

namespace cdse {

/// The real ledger: races honest confirmations against a private fork.
/// Actions (suffix <tag>): submit (env in), mine (internal),
/// confirmed / forked (env out).
PsioaPtr make_confirmation_race(const std::string& tag,
                                std::uint32_t depth,
                                const Rational& adversary_power);

/// The ideal ledger functionality: submit, one internal step, confirmed.
PsioaPtr make_ideal_ledger(const std::string& tag);

/// Closed-form fork probability: P[the adversary's chain reaches `depth`
/// blocks before the honest chain does], per-round win probability
/// beta for the adversary. Negative-binomial race:
///   sum_{h=0}^{depth-1} C(depth-1+h, h) * beta^depth * (1-beta)^h.
Rational exact_fork_probability(std::uint32_t depth, const Rational& beta);

}  // namespace cdse
