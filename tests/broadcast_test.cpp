// Byzantine-consistent broadcast (protocols/broadcast.hpp), plus the
// secure-emulation transitivity property (Def 4.26's closing remark).

#include "protocols/broadcast.hpp"

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "impl/balance.hpp"
#include "impl/bisim.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

namespace cdse {
namespace {

SchedulerPtr bc_driver(const std::string& tag, ActionId first) {
  return std::make_shared<PriorityScheduler>(
      std::vector<ActionId>{first, act("echo_" + tag),
                            act("tally_" + tag), act("deliver0_" + tag),
                            act("deliver1_" + tag),
                            act("noquorum_" + tag)},
      8, /*local_only=*/false);
}

TEST(Broadcast, HonestSenderDeliversItsValue) {
  auto b = make_bracha_broadcast("bc_a");
  for (int v = 0; v < 2; ++v) {
    auto sched = bc_driver("bc_a", act("bcast" + std::to_string(v) +
                                       "_bc_a"));
    EXPECT_EQ(exact_action_probability(
                  *b, *sched,
                  act("deliver" + std::to_string(v) + "_bc_a"), 10),
              Rational(1));
    // Never the other value, never an abort.
    EXPECT_EQ(exact_action_probability(
                  *b, *sched,
                  act("deliver" + std::to_string(1 - v) + "_bc_a"), 10),
              Rational(0));
  }
}

TEST(Broadcast, EquivocationAbortsInsteadOfSplitting) {
  auto b = make_bracha_broadcast("bc_b");
  auto sched = bc_driver("bc_b", act("equivocate_bc_b"));
  EXPECT_EQ(exact_action_probability(*b, *sched, act("noquorum_bc_b"),
                                     10),
            Rational(1));
  EXPECT_EQ(exact_action_probability(*b, *sched, act("deliver0_bc_b"),
                                     10),
            Rational(0));
  EXPECT_EQ(exact_action_probability(*b, *sched, act("deliver1_bc_b"),
                                     10),
            Rational(0));
}

TEST(Broadcast, ProtocolBisimilarToSpec) {
  // Consistency is deterministic: the quorum walk and the one-shot spec
  // are fully bisimilar -- a zero-epsilon calibration point.
  auto protocol = make_bracha_broadcast("bc_c");
  auto spec = make_ideal_broadcast("bc_c");
  const BisimResult r = probabilistic_bisimulation(*protocol, *spec, 12);
  EXPECT_TRUE(r.bisimilar);
  EXPECT_TRUE(r.exhaustive());
}

TEST(Broadcast, SecureEmulationWithZeroEpsilon) {
  const std::string tag = "bc_d";
  const StructuredPsioa real(
      make_bracha_broadcast(tag),
      acts({"bcast0_" + tag, "bcast1_" + tag, "deliver0_" + tag,
            "deliver1_" + tag, "noquorum_" + tag}),
      acts({"equivocate_" + tag}), {});
  const StructuredPsioa ideal(
      make_ideal_broadcast(tag),
      acts({"bcast0_" + tag, "bcast1_" + tag, "deliver0_" + tag,
            "deliver1_" + tag, "noquorum_" + tag}),
      acts({"equivocate_" + tag}), {});
  real.validate(10);
  ideal.validate(10);
  const PsioaPtr adv =
      make_sink_adversary(tag + "_adv", {}, acts({"equivocate_" + tag}));
  const PsioaPtr env = make_probe_env(
      "env_" + tag, {act("bcast0_" + tag)},
      acts({"deliver0_" + tag, "deliver1_" + tag, "noquorum_" + tag}),
      act("acc_" + tag));
  const EmulationReport report = check_secure_emulation(
      real, adv, ideal, adv, {{"probe", env}},
      {{"uniform", std::make_shared<UniformScheduler>(10, true)}},
      same_scheduler(), AcceptInsight(act("acc_" + tag)), 14);
  EXPECT_EQ(report.max_eps, Rational(0));
}

TEST(SecureEmulationChain, TransitivityAcrossThreeSystems) {
  // Def 4.26's closing remark: <=_SE is transitive because <=_{neg,pt}
  // is. Chain MAC(k=2) <= MAC(ideal-ish middle: k=4) <= ideal and check
  // eps(1,3) <= eps(1,2) + eps(2,3) on the hidden compositions.
  const std::string tag = "bc_e";
  const RealIdealPair strong = make_otmac_pair(4, tag);
  const RealIdealPair weak = make_otmac_pair(2, tag + "x");
  // Build three systems over ONE action vocabulary (tag): weak-real,
  // strong-real, ideal -- by instantiating the MAC automaton directly.
  auto sys = [&](const char* name, const Rational& win) {
    return StructuredPsioa(
        make_otmac_automaton(std::string(name) + "_" + tag, tag, win),
        acts({"auth_" + tag, "forged_" + tag, "rejected_" + tag}),
        acts({"forge_" + tag}), {});
  };
  const StructuredPsioa s1 = sys("chain1", Rational(1, 4));
  const StructuredPsioa s2 = sys("chain2", Rational(1, 16));
  const StructuredPsioa s3 = sys("chain3", Rational(0));
  (void)strong;
  (void)weak;
  const PsioaPtr adv =
      make_sink_adversary(tag + "_adv", {}, acts({"forge_" + tag}));
  const PsioaPtr env = make_probe_env_matching(
      "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
      act("forged_" + tag), act("acc_" + tag));
  SequenceScheduler word({act("auth_" + tag), act("forge_" + tag),
                          act("forged_" + tag), act("acc_" + tag)},
                         true);
  AcceptInsight f(act("acc_" + tag));
  auto hide1 = compose(env, hidden_adversary_composition(s1, adv));
  auto hide2 = compose(env, hidden_adversary_composition(s2, adv));
  auto hide3 = compose(env, hidden_adversary_composition(s3, adv));
  const TransitivityRow row =
      check_transitivity_case(*hide1, *hide2, *hide3, word, f, 12);
  EXPECT_TRUE(row.triangle_holds);
  EXPECT_EQ(row.eps12, Rational(1, 4) - Rational(1, 16));
  EXPECT_EQ(row.eps23, Rational(1, 16));
  EXPECT_EQ(row.eps13, Rational(1, 4));
  EXPECT_EQ(row.eps13, row.eps12 + row.eps23);  // tight chain
}

}  // namespace
}  // namespace cdse
