// The exact enumerator validates scheduler outputs (Def 3.1's side
// conditions): mass only on enabled actions, total at most 1.

#include <gtest/gtest.h>

#include "protocols/coinflip.hpp"
#include "sched/cone_measure.hpp"

namespace cdse {
namespace {

class RogueScheduler : public Scheduler {
 public:
  enum class Mode { kOverweight, kDisabledAction };
  explicit RogueScheduler(Mode mode) : mode_(mode) {}
  ActionChoice choose(Psioa& automaton, const ExecFragment& alpha) override {
    ActionChoice c;
    if (mode_ == Mode::kOverweight) {
      const ActionSet en = automaton.enabled(alpha.lstate());
      if (!en.empty()) c.add(en.front(), Rational(3, 2));
    } else {
      c.add(act("sv_never_enabled"), Rational(1));
    }
    return c;
  }
  std::string name() const override { return "rogue"; }

 private:
  Mode mode_;
};

TEST(SchedulerValidation, OverweightChoiceRejected) {
  auto coin = make_coin("sv_a", Rational(1, 2));
  RogueScheduler rogue(RogueScheduler::Mode::kOverweight);
  TraceInsight f;
  EXPECT_THROW(exact_fdist(*coin, rogue, f, 4), std::logic_error);
}

TEST(SchedulerValidation, DisabledActionRejected) {
  auto coin = make_coin("sv_b", Rational(1, 2));
  RogueScheduler rogue(RogueScheduler::Mode::kDisabledAction);
  TraceInsight f;
  EXPECT_THROW(exact_fdist(*coin, rogue, f, 4), std::logic_error);
}

}  // namespace
}  // namespace cdse
