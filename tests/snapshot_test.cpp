// Shared frozen snapshots: differential equivalence and concurrency suite.
//
// Three engines must be indistinguishable observers of the same system:
//   frozen-shared     -- SnapshotPsioa views over one frozen snapshot
//                        (the ParallelSampler worker engine),
//   per-worker-warmed -- a fresh clone warmed by the identical
//                        deterministic WarmupPlan (the pre-snapshot
//                        clone-per-worker engine),
//   memo-off direct   -- the same clone with memoization disabled (the
//                        historical recompute-per-call engine; disabling
//                        preserves interning, so draws stay comparable).
// Exact f-dists must be equal as rationals, and sampled executions must
// be draw-for-draw identical at fixed seeds, across random/composed/
// hidden/renamed/structured/PCA stacks. The concurrency half hammers one
// snapshot's overflow path from 8 workers (run under TSan by the CI
// `tsan` job) and pins seed-reproducibility of ParallelSampler against
// the clone-per-worker paths it replaces.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/pairs.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/memo.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "psioa/snapshot.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

constexpr std::size_t kFdistDepth = 4;
constexpr std::size_t kSampleDepth = 8;
constexpr std::size_t kTrials = 400;

SchedulerFactory uniform_factory(std::size_t depth) {
  return [depth] {
    return std::make_shared<UniformScheduler>(depth, /*local_only=*/true);
  };
}

WarmupPlan full_plan(std::size_t horizon) {
  WarmupPlan plan;
  plan.episodes = 8;
  plan.horizon = horizon;
  return plan;
}

/// Random composed ensemble, regenerated identically per factory call
/// (the factory contract of the parallel sampler).
PsioaFactory composed_factory(int seed, const std::string& tag) {
  return [seed, tag]() -> PsioaPtr {
    Xoshiro256 rng(seed * 7919 + 13);
    RandomPsioaConfig ca;
    ca.n_states = 3;
    ca.n_outputs = 2;
    ca.n_internals = 1;
    RandomPsioaConfig cb = ca;
    cb.input_candidates = acts({"rout0_" + tag + "a", "rout1_" + tag + "a"});
    auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
    auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
    return compose(PsioaPtr(a), PsioaPtr(b));
  };
}

PsioaFactory hidden_renamed_factory(int seed, const std::string& tag) {
  const PsioaFactory inner = composed_factory(seed, tag);
  return [inner, tag]() -> PsioaPtr {
    const ActionBijection g =
        ActionBijection::with_suffix(acts({"rout0_" + tag + "a"}), "#snap");
    const ActionSet hidden = acts({"rout1_" + tag + "a"});
    return rename_actions(hide_actions(inner(), hidden), g);
  };
}

/// The closed one-time-MAC stack of E7/E10.
PsioaFactory mac_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    const RealIdealPair mac = make_otmac_pair(4, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
    return compose(env, compose(mac.real.ptr(), adv));
  };
}

PsioaFactory ledger_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_ledger_system(2, tag).dynamic; };
}

/// Builds the per-worker-warmed engine: a fresh clone warmed with the
/// same deterministic plan the snapshot was frozen from, so its interned
/// handle order -- and therefore every compiled CDF -- replays the warm
/// instance's exactly.
std::shared_ptr<MemoPsioa> warmed_clone(const PsioaFactory& fa,
                                        const SchedulerFactory& fs,
                                        const WarmupPlan& plan,
                                        std::size_t max_depth) {
  PsioaPtr p = fa();
  auto m = std::dynamic_pointer_cast<MemoPsioa>(p);
  if (m == nullptr) m = memoize(std::move(p));
  SchedulerPtr s = fs();
  warm_automaton(*m, *s, plan, max_depth);
  return m;
}

ExactDisc<Perception> exact_of(Psioa& sys) {
  UniformScheduler sched(kFdistDepth, /*local_only=*/true);
  TraceInsight f;
  return exact_fdist(sys, sched, f, kFdistDepth + 1);
}

Disc<Perception, double> sampled_of(Psioa& sys, std::uint64_t seed) {
  UniformScheduler sched(kSampleDepth, /*local_only=*/true);
  TraceInsight f;
  return sample_fdist(sys, sched, f, kTrials, seed, kSampleDepth);
}

/// Asserts the three engines agree exactly (rational f-dists) and draw
/// for draw (fixed-seed sampled executions and empirical f-dists).
void expect_engines_agree(const PsioaFactory& fa, std::uint64_t seed) {
  const SchedulerFactory fs = uniform_factory(kSampleDepth);
  const WarmupPlan plan = full_plan(kSampleDepth);

  ParallelSampler sampler(fa, fs);
  sampler.prepare(plan, kSampleDepth);
  auto view = sampler.worker_view();
  auto clone = warmed_clone(fa, fs, plan, kSampleDepth);

  // Exact: order-insensitive, so engines in different handle spaces are
  // directly comparable.
  const auto exact_snap = exact_of(*view);
  const auto exact_warm = exact_of(*clone);
  EXPECT_EQ(exact_snap, exact_warm);

  // Draw-for-draw: identical action words at every fixed seed (state
  // handles live in different spaces, so the comparison is over the
  // global-action alphabet and the reported perceptions).
  TraceInsight f;
  for (int t = 0; t < 12; ++t) {
    SchedulerPtr sv = sampler.worker_scheduler();
    SchedulerPtr sc = fs();
    Xoshiro256 rv(seed + t);
    Xoshiro256 rc(seed + t);
    const ExecFragment av = sample_execution(*view, *sv, rv, kSampleDepth);
    const ExecFragment ac = sample_execution(*clone, *sc, rc, kSampleDepth);
    EXPECT_EQ(av.actions(), ac.actions());
    EXPECT_EQ(f.apply(*view, av), f.apply(*clone, ac));
  }

  // Full sampled f-dists: bitwise-identical doubles.
  const auto sampled_snap = sampled_of(*view, seed);
  const auto sampled_warm = sampled_of(*clone, seed);
  EXPECT_EQ(sampled_snap, sampled_warm);

  // Memo-off direct engine on the same clone: disabling clears the memo
  // but keeps interning, so the historical recompute-per-call walk stays
  // in the same handle order and must replay the same draws.
  clone->set_memoization(false);
  const auto exact_direct = exact_of(*clone);
  EXPECT_EQ(exact_snap, exact_direct);
  const auto sampled_direct = sampled_of(*clone, seed);
  EXPECT_EQ(sampled_snap, sampled_direct);
}

class SnapshotEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotEquivalence, ComposedStack) {
  const int n = GetParam();
  expect_engines_agree(composed_factory(n, "sn_a" + std::to_string(n)),
                       3000 + n);
}

TEST_P(SnapshotEquivalence, HiddenRenamedStack) {
  const int n = GetParam();
  expect_engines_agree(hidden_renamed_factory(n, "sn_b" + std::to_string(n)),
                       4000 + n);
}

INSTANTIATE_TEST_SUITE_P(Random, SnapshotEquivalence, ::testing::Range(0, 6));

TEST(SnapshotEquivalenceStacks, StructuredSecureStack) {
  expect_engines_agree(mac_factory("sn_mac"), 42);
}

TEST(SnapshotEquivalenceStacks, PcaLedgerStack) {
  expect_engines_agree(ledger_factory("sn_led"), 7);
}

TEST(SnapshotEquivalenceStacks, RandomLeafThroughMemoView) {
  // A leaf factory: ParallelSampler wraps it in a MemoView; the direct
  // reference is the bare leaf on the historical convert-per-step path.
  const std::string tag = "sn_leaf";
  PsioaFactory fa = [tag]() -> PsioaPtr {
    Xoshiro256 rng(4242);
    RandomPsioaConfig c;
    c.n_states = 4;
    return make_random_psioa(tag + "_L", tag, c, rng);
  };
  const SchedulerFactory fs = uniform_factory(kSampleDepth);
  ParallelSampler sampler(fa, fs);
  sampler.prepare(full_plan(kSampleDepth), kSampleDepth);
  auto view = sampler.worker_view();
  PsioaPtr leaf = fa();

  EXPECT_EQ(exact_of(*view), exact_of(*leaf));
  for (int t = 0; t < 12; ++t) {
    SchedulerPtr sv = fs();
    SchedulerPtr sl = fs();
    Xoshiro256 rv(9000 + t);
    Xoshiro256 rl(9000 + t);
    const ExecFragment av = sample_execution(*view, *sv, rv, kSampleDepth);
    const ExecFragment al = sample_execution(*leaf, *sl, rl, kSampleDepth);
    // Leaf handles are shared by the view (MemoView keeps the inner
    // automaton's state space), so states compare as well.
    EXPECT_EQ(av, al);
  }
  EXPECT_EQ(sampled_of(*view, 77), sampled_of(*leaf, 77));
}

TEST(CompiledSnapshotTest, FreezeCapturesWarmedTables) {
  const PsioaFactory fa = composed_factory(11, "sn_frz");
  auto clone = warmed_clone(fa, uniform_factory(kSampleDepth),
                            full_plan(kSampleDepth), kSampleDepth);
  auto snap = clone->freeze();
  EXPECT_GT(snap->state_count(), 0u);
  EXPECT_GT(snap->row_count(), 0u);
  const State q0 = clone->start_state();
  EXPECT_EQ(snap->start_state(), q0);
  ASSERT_NE(snap->find_signature(q0), nullptr);
  EXPECT_EQ(*snap->find_signature(q0), clone->signature(q0));
  for (ActionId a : clone->enabled(q0)) {
    const CompiledRow* row = snap->find_row(q0, a);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->dist, clone->transition(q0, a));
    EXPECT_EQ(row->cdf, clone->compiled_row(q0, a).cdf);
  }
  EXPECT_EQ(snap->find_signature(State{0xdeadbeefULL}), nullptr);
  EXPECT_EQ(snap->find_row(State{0xdeadbeefULL}, ActionId{0}), nullptr);
}

TEST(CompiledSnapshotTest, SnapshotIsImmutableUnderViewOverflow) {
  // A view faulting cold states must grow its own overflow memo and the
  // residue, never the frozen tables.
  const PsioaFactory fa = composed_factory(12, "sn_imm");
  ParallelSampler sampler(fa, uniform_factory(kSampleDepth));
  WarmupPlan shallow;
  shallow.episodes = 0;
  shallow.horizon = 1;
  sampler.prepare(shallow, kSampleDepth);
  auto snap = sampler.snapshot();
  const std::size_t states_before = snap->state_count();
  const std::size_t rows_before = snap->row_count();
  auto view = sampler.worker_view();
  SchedulerPtr sched = sampler.worker_scheduler();
  Xoshiro256 rng(5);
  for (int t = 0; t < 50; ++t) {
    (void)sample_execution(*view, *sched, rng, kSampleDepth);
  }
  EXPECT_GT(view->snapshot_stats().row_overflows, 0u);
  EXPECT_EQ(snap->state_count(), states_before);
  EXPECT_EQ(snap->row_count(), rows_before);
}

TEST(FrozenChoiceTableTest, AdoptedRowsMatchFreshCompilation) {
  const PsioaFactory fa = composed_factory(13, "sn_chc");
  const SchedulerFactory fs = uniform_factory(kSampleDepth);
  ParallelSampler sampler(fa, fs);
  sampler.prepare(full_plan(kSampleDepth), kSampleDepth);
  auto view = sampler.worker_view();
  SchedulerPtr adopted = sampler.worker_scheduler();
  SchedulerPtr fresh = fs();
  ExecFragment alpha = ExecFragment::starting_at(view->start_state());
  const ChoiceRow* ra = adopted->choice_row(*view, alpha);
  const ChoiceRow* rf = fresh->choice_row(*view, alpha);
  ASSERT_FALSE(ra->empty());
  EXPECT_EQ(ra->actions, rf->actions);
  EXPECT_EQ(ra->cdf, rf->cdf);
  // The adopted row is served from the shared frozen table: a second
  // adopting scheduler returns the very same row object.
  SchedulerPtr adopted2 = sampler.worker_scheduler();
  EXPECT_EQ(ra, adopted2->choice_row(*view, alpha));
}

TEST(FrozenChoiceTableTest, BoundedWrapperForwardsFreezeAndAdopt) {
  const PsioaFactory fa = composed_factory(14, "sn_bnd");
  auto clone = warmed_clone(fa, uniform_factory(kSampleDepth),
                            full_plan(kSampleDepth), kSampleDepth);
  auto inner = std::make_shared<UniformScheduler>(kSampleDepth, true);
  BoundedScheduler bounded(inner, kSampleDepth);
  ExecFragment alpha = ExecFragment::starting_at(clone->start_state());
  (void)bounded.choice_row(*clone, alpha);
  auto table = bounded.freeze_choice_rows();
  ASSERT_NE(table, nullptr);
  EXPECT_FALSE(table->rows.empty());
  auto inner2 = std::make_shared<UniformScheduler>(kSampleDepth, true);
  BoundedScheduler bounded2(inner2, kSampleDepth);
  bounded2.adopt_choice_rows(table);
  const ChoiceRow* row = bounded2.choice_row(*clone, alpha);
  EXPECT_EQ(row, &table->rows.at(clone->start_state()));
}

TEST(SnapshotStatsTest, FullyWarmedSamplingNeverOverflows) {
  ParallelSampler sampler(mac_factory("sn_st1"),
                          uniform_factory(kSampleDepth));
  sampler.prepare(full_plan(kSampleDepth), kSampleDepth);
  ThreadPool pool(4);
  TraceInsight f;
  (void)sampler.sample_fdist(f, 2000, 99, kSampleDepth, pool);
  const SnapshotStats& st = sampler.last_stats();
  EXPECT_GT(st.row_hits, 0u);
  EXPECT_GT(st.sig_hits, 0u);
  EXPECT_EQ(st.row_overflows, 0u);
  EXPECT_EQ(st.sig_overflows, 0u);
  EXPECT_EQ(st.row_misses, 0u);
}

TEST(SnapshotStatsTest, ShallowWarmupOverflowsDeterministically) {
  // With a horizon short of the sampling depth, workers must fault the
  // cold region through the residue -- and two identical runs must agree
  // on every counter and every weight: overflow row compilation orders
  // targets by structural encoding precisely so that racing workers
  // cannot perturb the draw mapping.
  auto run = [](Disc<Perception, double>* dist, SnapshotStats* stats) {
    ParallelSampler sampler(composed_factory(21, "sn_st2"),
                            uniform_factory(kSampleDepth));
    WarmupPlan shallow;
    shallow.episodes = 0;
    shallow.horizon = 2;
    sampler.prepare(shallow, kSampleDepth);
    ThreadPool pool(4);
    TraceInsight f;
    *dist = sampler.sample_fdist(f, 2000, 123, kSampleDepth, pool);
    *stats = sampler.last_stats();
  };
  Disc<Perception, double> d1, d2;
  SnapshotStats s1, s2;
  run(&d1, &s1);
  run(&d2, &s2);
  EXPECT_GT(s1.row_overflows, 0u);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(d1, d2);
}

TEST(SnapshotSeedReproducibility, MatchesCloneParallelPathOnLeafSystem) {
  // The E10 parallel workload: plain clone-per-worker sampling of a coin
  // must be reproduced exactly -- same chunks, same streams, same draws,
  // same merge -- by the snapshot path.
  const PsioaFactory fa = [] { return make_coin("sn_coin", Rational(1, 3)); };
  const SchedulerFactory fs = [] {
    return std::make_shared<UniformScheduler>(8);
  };
  TraceInsight f;
  ThreadPool pool(4);
  const auto plain = parallel_sample_fdist(fa, fs, f, 4000, 17, 8, pool);
  ParallelSampler sampler(fa, fs);
  sampler.prepare(full_plan(8), 8);
  const auto shared = sampler.sample_fdist(f, 4000, 17, 8, pool);
  EXPECT_EQ(shared, plain);
}

TEST(SnapshotSeedReproducibility, MatchesWarmedClonePerWorkerPath) {
  // The general composed case: the pre-snapshot engine is one warmed
  // clone per worker. Chunk for chunk at the same seeds, the shared
  // snapshot must deliver identical per-worker results.
  const PsioaFactory fa = mac_factory("sn_rep");
  const SchedulerFactory fs = uniform_factory(kSampleDepth);
  const WarmupPlan plan = full_plan(kSampleDepth);
  TraceInsight f;
  const std::size_t trials = 3000;
  const std::uint64_t seed = 29;
  ThreadPool pool(4);

  const std::size_t chunks = pool.size();
  std::vector<Disc<Perception, double>> per_chunk(chunks);
  parallel_for_chunks(
      pool, trials,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto clone = warmed_clone(fa, fs, plan, kSampleDepth);
        SchedulerPtr sched = fs();
        Xoshiro256 rng = Xoshiro256::for_stream(seed, chunk);
        for (std::size_t i = begin; i < end; ++i) {
          const ExecFragment alpha =
              sample_execution(*clone, *sched, rng, kSampleDepth);
          per_chunk[chunk].add(f.apply(*clone, alpha), 1.0);
        }
      });
  Disc<Perception, double> reference;
  for (const auto& p : per_chunk) {
    for (const auto& [perc, count] : p.entries()) {
      reference.add(perc, count / static_cast<double>(trials));
    }
  }

  ParallelSampler sampler(fa, fs);
  sampler.prepare(plan, kSampleDepth);
  const auto shared = sampler.sample_fdist(f, trials, seed, kSampleDepth, pool);
  EXPECT_EQ(shared, reference);
}

TEST(SnapshotConcurrencyStress, EightWorkersHammerOneColdSnapshot) {
  // 8 workers, a deliberately cold snapshot (horizon 1, depth 10), many
  // trials: every worker overflows through the shared residue while
  // others read the frozen tables. Run under TSan by the CI `tsan` job
  // (scripts/check.sh --tsan); here we additionally pin determinism:
  // identical seeds => identical distributions and counter totals, no
  // matter how the workers interleave on the residue lock.
  auto run = [](Disc<Perception, double>* dist, SnapshotStats* stats) {
    ParallelSampler sampler(composed_factory(31, "sn_tsan"),
                            uniform_factory(10));
    WarmupPlan cold;
    cold.episodes = 0;
    cold.horizon = 1;
    sampler.prepare(cold, 10);
    ThreadPool pool(8);
    TraceInsight f;
    *dist = sampler.sample_fdist(f, 4000, 555, 10, pool);
    *stats = sampler.last_stats();
  };
  Disc<Perception, double> d1, d2;
  SnapshotStats s1, s2;
  run(&d1, &s1);
  run(&d2, &s2);
  EXPECT_GT(s1.row_overflows, 0u);
  EXPECT_GT(s1.row_hits, 0u);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(d1, d2);
  EXPECT_TRUE(d1.is_probability());
}

}  // namespace
}  // namespace cdse
