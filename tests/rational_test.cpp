// Exact rational arithmetic (util/rational.hpp).

#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cdse {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesSign) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesGcd) {
  Rational r(12, 18);
  EXPECT_EQ(r.num(), 2);
  EXPECT_EQ(r.den(), 3);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::domain_error);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_GE(Rational(-1, 2), Rational(-1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(Rational, Abs) {
  EXPECT_EQ(Rational::abs(Rational(-3, 4)), Rational(3, 4));
  EXPECT_EQ(Rational::abs(Rational(3, 4)), Rational(3, 4));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-1, 8).to_double(), -0.125);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-2, 4).to_string(), "-1/2");
}

TEST(Rational, LargeIntermediateProductsReduce) {
  // (1/2^30) * (2^30) = 1 with __int128 intermediates.
  const Rational tiny(1, 1LL << 30);
  const Rational big(1LL << 30);
  EXPECT_EQ(tiny * big, Rational(1));
}

TEST(Rational, DyadicLadderExact) {
  // 1/2 + 1/4 + ... + 1/2^40 == 1 - 1/2^40 exactly.
  Rational sum;
  for (int i = 1; i <= 40; ++i) sum += Rational(1, 1LL << i);
  EXPECT_EQ(sum, Rational(1) - Rational(1, 1LL << 40));
}

TEST(Rational, OverflowAfterReductionThrows) {
  const std::int64_t big = (1LL << 62);
  Rational a(big, 1);
  EXPECT_THROW(a * a, std::overflow_error);
}

// Field-axiom spot checks over a grid of small rationals.
class RationalAxioms : public ::testing::TestWithParam<int> {};

TEST_P(RationalAxioms, RingLaws) {
  const int i = GetParam();
  const Rational a(i % 7 - 3, (i % 5) + 1);
  const Rational b((i * 3) % 11 - 5, (i % 3) + 1);
  const Rational c((i * 7) % 13 - 6, (i % 4) + 1);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a + Rational(0), a);
  EXPECT_EQ(a * Rational(1), a);
  EXPECT_EQ(a - a, Rational(0));
  if (!b.is_zero()) {
    EXPECT_EQ((a / b) * b, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RationalAxioms, ::testing::Range(0, 40));

}  // namespace
}  // namespace cdse
