// Exact rational arithmetic (util/rational.hpp).

#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cdse {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesSign) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesGcd) {
  Rational r(12, 18);
  EXPECT_EQ(r.num(), 2);
  EXPECT_EQ(r.den(), 3);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::domain_error);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_GE(Rational(-1, 2), Rational(-1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(Rational, Abs) {
  EXPECT_EQ(Rational::abs(Rational(-3, 4)), Rational(3, 4));
  EXPECT_EQ(Rational::abs(Rational(3, 4)), Rational(3, 4));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-1, 8).to_double(), -0.125);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-2, 4).to_string(), "-1/2");
}

TEST(Rational, LargeIntermediateProductsReduce) {
  // (1/2^30) * (2^30) = 1 with __int128 intermediates.
  const Rational tiny(1, 1LL << 30);
  const Rational big(1LL << 30);
  EXPECT_EQ(tiny * big, Rational(1));
}

TEST(Rational, DyadicLadderExact) {
  // 1/2 + 1/4 + ... + 1/2^40 == 1 - 1/2^40 exactly.
  Rational sum;
  for (int i = 1; i <= 40; ++i) sum += Rational(1, 1LL << i);
  EXPECT_EQ(sum, Rational(1) - Rational(1, 1LL << 40));
}

TEST(Rational, OverflowAfterReductionThrows) {
  const std::int64_t big = (1LL << 62);
  Rational a(big, 1);
  EXPECT_THROW(a * a, std::overflow_error);
}

// The 0/1 fast paths skip the 128-bit product and gcd; they must leave
// results in canonical normalized form and preserve every contract of
// the general path.

TEST(Rational, MultiplyByZeroShortCircuitsToCanonicalZero) {
  Rational a(3, 7);
  a *= Rational(0);
  EXPECT_TRUE(a.is_zero());
  EXPECT_EQ(a.num(), 0);
  EXPECT_EQ(a.den(), 1);  // canonical 0/1, not 0/7
  Rational z;
  z *= Rational(5, 9);
  EXPECT_EQ(z, Rational(0));
  EXPECT_EQ(z.den(), 1);
}

TEST(Rational, MultiplyByOneIsIdentityBothSides) {
  Rational a(-5, 6);
  a *= Rational(1);
  EXPECT_EQ(a, Rational(-5, 6));
  Rational one(1);
  one *= Rational(-5, 6);
  EXPECT_EQ(one, Rational(-5, 6));
  // Negative one must NOT take the unit fast path.
  Rational b(2, 3);
  b *= Rational(-1);
  EXPECT_EQ(b, Rational(-2, 3));
}

TEST(Rational, AddZeroFastPathsKeepNormalization) {
  Rational a(4, 6);  // normalized to 2/3
  a += Rational(0);
  EXPECT_EQ(a.num(), 2);
  EXPECT_EQ(a.den(), 3);
  Rational z;
  z += Rational(4, 6);
  EXPECT_EQ(z.num(), 2);
  EXPECT_EQ(z.den(), 3);
}

TEST(Rational, DivideByOneAndZeroNumeratorFastPaths) {
  Rational a(7, 9);
  a /= Rational(1);
  EXPECT_EQ(a, Rational(7, 9));
  Rational z;
  z /= Rational(3, 5);
  EXPECT_EQ(z, Rational(0));
  // The divisor-zero check still precedes every fast path.
  EXPECT_THROW(Rational(0) / Rational(0), std::domain_error);
}

TEST(Rational, FastPathsCannotMaskOverflow) {
  // A value at the 64-bit edge survives *1 and *0 (no product formed),
  // while the general path still throws.
  const std::int64_t big = (1LL << 62);
  Rational a(big, 1);
  Rational keep = a;
  keep *= Rational(1);
  EXPECT_EQ(keep, a);
  Rational gone = a;
  gone *= Rational(0);
  EXPECT_TRUE(gone.is_zero());
  EXPECT_THROW(a * a, std::overflow_error);
  EXPECT_THROW(a + a, std::overflow_error);
}

TEST(Rational, EnumeratorChainProductMatchesGeneralPath) {
  // prob * w * tw chains as the cone enumerator emits them: unit
  // scheduler mass times a dyadic transition weight, repeatedly.
  Rational chained(1);
  for (int i = 0; i < 20; ++i) {
    chained *= Rational(1);
    chained *= Rational(1, 2);
  }
  EXPECT_EQ(chained, Rational(1, 1LL << 20));
}

// Field-axiom spot checks over a grid of small rationals.
class RationalAxioms : public ::testing::TestWithParam<int> {};

TEST_P(RationalAxioms, RingLaws) {
  const int i = GetParam();
  const Rational a(i % 7 - 3, (i % 5) + 1);
  const Rational b((i * 3) % 11 - 5, (i % 3) + 1);
  const Rational c((i * 7) % 13 - 6, (i % 4) + 1);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a + Rational(0), a);
  EXPECT_EQ(a * Rational(1), a);
  EXPECT_EQ(a - a, Rational(0));
  if (!b.is_zero()) {
    EXPECT_EQ((a / b) * b, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RationalAxioms, ::testing::Range(0, 40));

}  // namespace
}  // namespace cdse
