// Walker/Vose alias tables (util/alias.hpp): construction edge cases,
// the slot-probability invariant, deterministic (bit-identical) rebuild
// across freeze() calls, and the CDF fall-through clamp regressions for
// CompiledRow / ChoiceRow (adversarial weights whose double CDF rounds
// short of 1.0).

#include "util/alias.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "protocols/coinflip.hpp"
#include "psioa/memo.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "stat_util.hpp"
#include "util/rng.hpp"

namespace cdse {
namespace {

/// Induced probability of picking slot i: the slot's own acceptance mass
/// plus every redirect pointing at it, all over n uniform slot choices.
std::vector<double> slot_probabilities(const AliasTable& t) {
  const std::size_t n = t.size();
  std::vector<double> p(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] += t.accept[i];
    if (t.accept[i] < 1.0) p[t.alias[i]] += 1.0 - t.accept[i];
  }
  for (double& x : p) x /= static_cast<double>(n);
  return p;
}

TEST(AliasBuild, EmptyTableHasNoSlots) {
  const AliasTable t = AliasTable::build({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(AliasBuild, InvalidWeightsThrow) {
  EXPECT_THROW(AliasTable::build({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(AliasTable::build({std::nan("")}), std::invalid_argument);
  EXPECT_THROW(
      AliasTable::build({std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
  // A nonempty row must carry mass: all-zero weights are a caller bug.
  EXPECT_THROW(AliasTable::build({0.0, 0.0}), std::invalid_argument);
}

TEST(AliasBuild, SingleSupportAlwaysPicksTheOneSlot) {
  const AliasTable t = AliasTable::build({7.25});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.accept[0], 1.0);
  for (double u : {0.0, 0.3, 0.999999}) {
    EXPECT_EQ(t.pick(0, u), 0u);
  }
}

TEST(AliasBuild, ZeroWeightSlotsAreNeverPicked) {
  const AliasTable t = AliasTable::build({0.0, 3.0, 0.0, 1.0});
  const std::vector<double> p = slot_probabilities(t);
  EXPECT_EQ(p[0], 0.0);
  EXPECT_EQ(p[2], 0.0);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
  EXPECT_NEAR(p[3], 0.25, 1e-12);
  // Near-zero (denormal-scale) weights survive the build and claim
  // essentially no mass.
  const AliasTable tiny = AliasTable::build({1e-300, 1.0});
  const std::vector<double> q = slot_probabilities(tiny);
  EXPECT_LT(q[0], 1e-12);
  EXPECT_NEAR(q[1], 1.0, 1e-12);
}

TEST(AliasBuild, SlotProbabilityInvariantHoldsForVariedWeights) {
  const std::vector<std::vector<double>> cases = {
      {1.0, 1.0, 1.0},
      {1.0, 2.0, 3.0, 4.0},
      {0.5, 0.25, 0.125, 0.0625, 0.0625},
      {1e-9, 1.0, 1e9},
      {3.0, 0.0, 1.0, 0.0, 2.0, 5.0, 0.25},
  };
  for (const auto& w : cases) {
    const AliasTable t = AliasTable::build(w);
    double total = 0.0;
    for (double x : w) total += x;
    const std::vector<double> p = slot_probabilities(t);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(p[i], w[i] / total, 1e-12)
          << "slot " << i << " of case with " << w.size() << " weights";
    }
  }
}

TEST(AliasBuild, RepresentableRationalWeightsAreExact) {
  // Dyadic rationals (1/4, 1/2, 1/4) are exactly representable: the
  // scaled weights hit 1.0 boundaries with no rounding at all, so the
  // invariant holds with *equality*, not just within epsilon.
  const std::vector<Rational> w = {Rational(1, 4), Rational(1, 2),
                                   Rational(1, 4)};
  std::vector<double> wd;
  for (const Rational& r : w) wd.push_back(r.to_double());
  const std::vector<double> p = slot_probabilities(AliasTable::build(wd));
  EXPECT_EQ(p[0], 0.25);
  EXPECT_EQ(p[1], 0.5);
  EXPECT_EQ(p[2], 0.25);
}

TEST(AliasBuild, NonRepresentableRationalWeightsRoundWithinUlps) {
  // 1/3 is not a double; the build sees three copies of the nearest
  // double and the invariant holds to rounding, not exactly.
  const double third = Rational(1, 3).to_double();
  const std::vector<double> p =
      slot_probabilities(AliasTable::build({third, third, third}));
  for (double x : p) {
    EXPECT_NEAR(x, 1.0 / 3.0, 1e-15);
  }
}

TEST(AliasBuild, RebuildIsBitIdentical) {
  const std::vector<double> w = {0.1, 0.7, 0.05, 0.15, 1e-9};
  const AliasTable a = AliasTable::build(w);
  const AliasTable b = AliasTable::build(w);
  EXPECT_TRUE(a == b);
}

TEST(AliasDraws, ChiSquareMatchesWeights) {
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  const AliasTable t = AliasTable::build(w);
  constexpr std::size_t kTrials = 100000;
  Xoshiro256 rng(0xa11a5);
  std::vector<double> count(w.size(), 0.0);
  for (std::size_t k = 0; k < kTrials; ++k) {
    count[t.pick(rng.below(t.size()), rng.uniform())] += 1.0;
  }
  std::vector<std::pair<double, double>> cells;
  for (std::size_t i = 0; i < w.size(); ++i) {
    cells.emplace_back(w[i] / 10.0, count[i]);
  }
  const auto r = testing::chi_square_gof_counts(
      cells, static_cast<double>(kTrials), 0.0);
  EXPECT_GE(r.pvalue, testing::kStatAlpha)
      << "stat=" << r.stat << " dof=" << r.dof;
}

TEST(AliasDraws, PickBlockMatchesPick) {
  // The SoA gather kernel is definitionally pick() applied elementwise;
  // exercise ragged sizes and a block-generated input stream.
  const AliasTable t = AliasTable::build({0.5, 2.5, 1.0, 3.0, 0.25, 0.75});
  XoshiroBlock blk(0xa11a5);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::uint32_t> idx(n);
    std::vector<double> u(n);
    std::vector<std::uint32_t> out(n);
    blk.fill_below(idx.data(), n, static_cast<std::uint32_t>(t.size()));
    blk.fill_uniform(u.data(), n);
    t.pick_block(idx.data(), u.data(), out.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(out[k], t.pick(idx[k], u[k])) << "position " << k;
    }
  }
}

TEST(AliasDraws, PickBlockIsaPathsAreBitIdentical) {
  set_block_isa(BlockIsa::kAvx2);
  const bool have_avx2 = resolved_block_isa() == BlockIsa::kAvx2;
  set_block_isa(BlockIsa::kAuto);
  if (!have_avx2) GTEST_SKIP() << "CPU lacks AVX2; single-path build";

  const AliasTable t = AliasTable::build({1.0, 2.0, 3.0, 4.0, 0.5});
  constexpr std::size_t kN = 2048;
  std::vector<std::uint32_t> idx(kN);
  std::vector<double> u(kN);
  XoshiroBlock blk(99);
  blk.fill_below(idx.data(), kN, static_cast<std::uint32_t>(t.size()));
  blk.fill_uniform(u.data(), kN);

  std::vector<std::uint32_t> out_s(kN);
  std::vector<std::uint32_t> out_v(kN);
  set_block_isa(BlockIsa::kScalar);
  t.pick_block(idx.data(), u.data(), out_s.data(), kN);
  set_block_isa(BlockIsa::kAvx2);
  t.pick_block(idx.data(), u.data(), out_v.data(), kN);
  set_block_isa(BlockIsa::kAuto);
  EXPECT_EQ(out_s, out_v);
}

// ----------------------------------------------------- frozen-row identity

TEST(AliasFrozen, RebuildAcrossFreezesIsBitIdentical) {
  // Two ParallelSamplers prepared from identical factories warm their
  // instances through the same deterministic plan, so every frozen row's
  // alias table must come out bit-identical -- the property that makes
  // batched draws reproducible across prepare() calls and re-freezes.
  auto make_aut = []() -> PsioaPtr {
    return make_coin("alias_fz", Rational(1, 3));
  };
  auto make_sched = []() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(6, true);
  };
  WarmupPlan plan;
  plan.horizon = 6;
  ParallelSampler s1(make_aut, make_sched);
  ParallelSampler s2(make_aut, make_sched);
  s1.prepare(plan, 6);
  s2.prepare(plan, 6);
  const auto snap1 = s1.snapshot();
  const auto snap2 = s2.snapshot();
  ASSERT_EQ(snap1->state_count(), snap2->state_count());
  ASSERT_EQ(snap1->row_count(), snap2->row_count());
  ASSERT_GT(snap1->row_count(), 0u);
  for (const auto& [q, fs] : snap1->frozen_states()) {
    for (const auto& [a, row] : fs.rows) {
      const CompiledRow* other = snap2->find_row(q, a);
      ASSERT_NE(other, nullptr);
      EXPECT_TRUE(row.alias == other->alias);
      EXPECT_EQ(row.targets, other->targets);
    }
  }
}

TEST(AliasFrozen, TablesSurviveSamplingAtAnyWorkerCount) {
  // The snapshot is immutable: sampling through pools of different sizes
  // must leave every frozen alias table untouched (workers share the
  // tables read-only rather than copying or rebuilding them).
  auto make_aut = []() -> PsioaPtr {
    return make_coin("alias_wk", Rational(1, 4));
  };
  auto make_sched = []() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(6, true);
  };
  WarmupPlan plan;
  plan.horizon = 6;
  ParallelSampler sampler(make_aut, make_sched);
  sampler.prepare(plan, 6);
  const auto snap = sampler.snapshot();
  std::vector<AliasTable> before;
  for (const auto& [q, fs] : snap->frozen_states()) {
    (void)q;
    for (const auto& [a, row] : fs.rows) {
      (void)a;
      before.push_back(row.alias);
    }
  }
  TraceInsight f;
  for (std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    (void)sampler.sample_fdist(f, 2000, 11, 6, pool, SamplingMode::kBatched);
  }
  std::size_t i = 0;
  for (const auto& [q, fs] : snap->frozen_states()) {
    (void)q;
    for (const auto& [a, row] : fs.rows) {
      (void)a;
      EXPECT_TRUE(row.alias == before[i]);
      ++i;
    }
  }
}

// ------------------------------------------------- CDF fall-through clamps

TEST(CdfClamp, EqualWeightRowsRoundShortAndClampToLastTarget) {
  // k equal weights 1/k accumulate to a double CDF whose last entry can
  // round *below* 1.0 (ten 0.1s famously sum to 0.9999999999999999). A
  // uniform draw landing in that rounding gap must clamp to the last
  // target, never fall off the row.
  bool found_short_cdf = false;
  const double u_top = std::nextafter(1.0, 0.0);
  for (std::uint64_t k = 3; k <= 32; ++k) {
    StateDist d;
    for (std::uint64_t i = 0; i < k; ++i) {
      d.add(State{100 + i}, Rational(1, static_cast<std::int64_t>(k)));
    }
    const CompiledRow row = CompiledRow::compile(std::move(d));
    ASSERT_EQ(row.targets.size(), k);
    if (row.cdf.back() < 1.0) {
      found_short_cdf = true;
      EXPECT_EQ(row.sample(row.cdf.back()), row.targets.back())
          << "k=" << k << ": u inside the rounding gap fell off the row";
    }
    EXPECT_EQ(row.sample(u_top), row.targets.back()) << "k=" << k;
  }
  EXPECT_TRUE(found_short_cdf)
      << "no k in [3,32] produced a short CDF; the regression test lost "
         "its adversarial case";
}

TEST(CdfClamp, ExhaustiveChoiceRowClampsInsteadOfHalting) {
  // Ten exact 1/10 action weights: total mass is exactly 1, so halting
  // has probability zero -- but the double CDF rounds short. Before the
  // clamp, a draw in the gap returned kInvalidAction (a phantom halt).
  ActionChoice c;
  for (int i = 0; i < 10; ++i) {
    c.add(act("cdf_cl_" + std::to_string(i)), Rational(1, 10));
  }
  const ChoiceRow row = ChoiceRow::compile(c);
  ASSERT_EQ(row.actions.size(), 10u);
  EXPECT_TRUE(row.exhaustive);
  ASSERT_LT(row.cdf.back(), 1.0);  // the adversarial premise
  EXPECT_EQ(row.sample(std::nextafter(1.0, 0.0)), row.actions.back());
  EXPECT_EQ(row.sample(row.cdf.back()), row.actions.back());
  // The alias view has no halt slot on an exhaustive row.
  EXPECT_EQ(row.alias.size(), row.actions.size());
}

TEST(CdfClamp, SubProbabilityChoiceRowStillHalts) {
  // Genuine halting mass must keep halting: the clamp only covers rows
  // whose *exact* total is 1.
  ActionChoice c;
  c.add(act("cdf_hl_a"), Rational(1, 4));
  c.add(act("cdf_hl_b"), Rational(1, 4));
  const ChoiceRow row = ChoiceRow::compile(c);
  EXPECT_FALSE(row.exhaustive);
  EXPECT_EQ(row.sample(0.75), kInvalidAction);
  EXPECT_EQ(row.sample(std::nextafter(1.0, 0.0)), kInvalidAction);
  // The alias view carries the residual as one extra halt slot with the
  // same mass; check via the induced slot probabilities.
  ASSERT_EQ(row.alias.size(), row.actions.size() + 1);
  const std::vector<double> p = slot_probabilities(row.alias);
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);  // halt slot
}

TEST(CdfClamp, OverweightChoiceDegradesToExhaustive) {
  // A hostile scheduler emitting total mass > 1 (the exact enumerator
  // rejects it elsewhere) must not feed a negative halt weight into the
  // alias builder.
  ActionChoice c;
  c.add(act("cdf_ow_a"), Rational(3, 4));
  c.add(act("cdf_ow_b"), Rational(1, 2));
  const ChoiceRow row = ChoiceRow::compile(c);
  EXPECT_TRUE(row.exhaustive);
  EXPECT_EQ(row.alias.size(), row.actions.size());
}

}  // namespace
}  // namespace cdse
