// Bit-string encodings and the Lemma B.1 pairing scheme
// (util/bitstring.hpp).

#include "util/bitstring.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cdse {
namespace {

TEST(BitString, FromUintRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 41ULL, 1023ULL, 1ULL << 40}) {
    EXPECT_EQ(BitString::from_uint(v).to_uint(), v) << v;
  }
}

TEST(BitString, FromUintLength) {
  EXPECT_EQ(BitString::from_uint(0).length(), 1u);
  EXPECT_EQ(BitString::from_uint(1).length(), 1u);
  EXPECT_EQ(BitString::from_uint(2).length(), 2u);
  EXPECT_EQ(BitString::from_uint(255).length(), 8u);
  EXPECT_EQ(BitString::from_uint(256).length(), 9u);
}

TEST(BitString, FromBytesLength) {
  EXPECT_EQ(BitString::from_bytes("ab").length(), 16u);
  EXPECT_EQ(BitString::from_bytes("").length(), 0u);
}

TEST(BitString, PairLengthMatchesLemmaB1Accounting) {
  // |pair(a, b)| = 2*(|a| + |b|) + 2: every payload bit followed by a 0,
  // parts separated by "11".
  const BitString a = BitString::from_uint(13);  // 4 bits
  const BitString b = BitString::from_uint(3);   // 2 bits
  EXPECT_EQ(BitString::pair(a, b).length(), 2 * (4 + 2) + 2u);
}

TEST(BitString, PairUnpairRoundTrip) {
  const BitString a = BitString::from_bytes("hello");
  const BitString b = BitString::from_uint(99);
  auto [x, y] = BitString::unpair(BitString::pair(a, b));
  EXPECT_EQ(x, a);
  EXPECT_EQ(y, b);
}

TEST(BitString, PairEmptyParts) {
  const BitString e;
  const BitString b = BitString::from_uint(5);
  {
    auto [x, y] = BitString::unpair(BitString::pair(e, b));
    EXPECT_EQ(x.length(), 0u);
    EXPECT_EQ(y, b);
  }
  {
    auto [x, y] = BitString::unpair(BitString::pair(b, e));
    EXPECT_EQ(x, b);
    EXPECT_EQ(y.length(), 0u);
  }
}

TEST(BitString, UnpairRejectsMalformed) {
  BitString bogus;
  bogus.push_bit(true);  // lone bit: no separator possible
  EXPECT_THROW(BitString::unpair(bogus), std::invalid_argument);
}

TEST(BitString, PackUnpackRoundTrip) {
  std::vector<BitString> parts{BitString::from_uint(1),
                               BitString::from_uint(20),
                               BitString::from_bytes("xyz"),
                               BitString()};
  const BitString packed = BitString::pack(parts);
  const auto out = BitString::unpack(packed, parts.size());
  ASSERT_EQ(out.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) EXPECT_EQ(out[i], parts[i]);
}

TEST(BitString, ToStringRendersBits) {
  BitString b;
  b.push_bit(true);
  b.push_bit(false);
  b.push_bit(true);
  EXPECT_EQ(b.to_string(), "101");
}

// Randomized pair/unpair round-trip property.
class BitStringRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitStringRoundTrip, PairIsInjectiveAndInvertible) {
  Xoshiro256 rng(GetParam() * 131 + 7);
  BitString a;
  BitString b;
  const std::size_t la = rng.below(24);
  const std::size_t lb = rng.below(24);
  for (std::size_t i = 0; i < la; ++i) a.push_bit(rng.below(2) != 0);
  for (std::size_t i = 0; i < lb; ++i) b.push_bit(rng.below(2) != 0);
  const BitString p = BitString::pair(a, b);
  EXPECT_EQ(p.length(), 2 * (la + lb) + 2);
  auto [x, y] = BitString::unpair(p);
  EXPECT_EQ(x, a);
  EXPECT_EQ(y, b);
}

INSTANTIATE_TEST_SUITE_P(Random, BitStringRoundTrip, ::testing::Range(0, 30));

}  // namespace
}  // namespace cdse
