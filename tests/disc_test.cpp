// Discrete measures, products and the balance/TV distance
// (measure/disc.hpp; paper Section 2.1 and Def 3.6).

#include "measure/disc.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cdse {
namespace {

TEST(Disc, DiracHasUnitMassOnPoint) {
  const auto d = Disc<int>::dirac(7);
  EXPECT_EQ(d.support_size(), 1u);
  EXPECT_DOUBLE_EQ(d.mass(7), 1.0);
  EXPECT_DOUBLE_EQ(d.mass(8), 0.0);
  EXPECT_TRUE(d.is_probability());
}

TEST(Disc, AddMergesMassAndDropsZeros) {
  Disc<int> d;
  d.add(1, 0.25);
  d.add(1, 0.25);
  d.add(2, 0.0);
  EXPECT_EQ(d.support_size(), 1u);
  EXPECT_DOUBLE_EQ(d.mass(1), 0.5);
}

TEST(Disc, ExactCancellationRemovesPoint) {
  ExactDisc<int> d;
  d.add(1, Rational(1, 3));
  d.add(1, Rational(-1, 3));
  EXPECT_TRUE(d.empty());
}

TEST(Disc, SupportIsSorted) {
  Disc<int> d;
  d.add(5, 0.2);
  d.add(1, 0.3);
  d.add(3, 0.5);
  EXPECT_EQ(d.support(), (std::vector<int>{1, 3, 5}));
}

TEST(Disc, TotalAndIsProbability) {
  ExactDisc<int> d;
  d.add(1, Rational(1, 3));
  d.add(2, Rational(2, 3));
  EXPECT_EQ(d.total(), Rational(1));
  EXPECT_TRUE(d.is_probability());
  d.add(3, Rational(1, 10));
  EXPECT_FALSE(d.is_probability());
}

TEST(Disc, MapPushesForwardAndMergesFibers) {
  ExactDisc<int> d;
  d.add(1, Rational(1, 4));
  d.add(2, Rational(1, 4));
  d.add(3, Rational(1, 2));
  const auto even = d.map<bool>([](int x) { return x % 2 == 0; });
  EXPECT_EQ(even.mass(false), Rational(3, 4));
  EXPECT_EQ(even.mass(true), Rational(1, 4));
}

TEST(Disc, ProductIsProductMeasure) {
  ExactDisc<int> a;
  a.add(0, Rational(1, 2));
  a.add(1, Rational(1, 2));
  ExactDisc<int> b;
  b.add(0, Rational(1, 3));
  b.add(1, Rational(2, 3));
  const auto prod = ExactDisc<std::pair<int, int>>::product(
      a, b, [](int x, int y) { return std::make_pair(x, y); });
  EXPECT_EQ(prod.mass({0, 0}), Rational(1, 6));
  EXPECT_EQ(prod.mass({1, 1}), Rational(1, 3));
  EXPECT_EQ(prod.total(), Rational(1));
}

TEST(Disc, ScaledAndNormalized) {
  ExactDisc<int> d;
  d.add(1, Rational(1, 2));
  d.add(2, Rational(1, 4));
  const auto s = d.scaled(Rational(2));
  EXPECT_EQ(s.mass(1), Rational(1));
  const auto n = d.normalized();
  EXPECT_EQ(n.mass(1), Rational(2, 3));
  EXPECT_TRUE(n.is_probability());
  ExactDisc<int> empty;
  EXPECT_THROW(empty.normalized(), std::domain_error);
}

TEST(Disc, SampleHitsSupportProportionally) {
  Disc<int> d;
  d.add(1, 0.25);
  d.add(2, 0.75);
  Xoshiro256 rng(11);
  int twos = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng.uniform()) == 2) ++twos;
  }
  EXPECT_NEAR(static_cast<double>(twos) / n, 0.75, 0.02);
}

TEST(BalanceDistance, ZeroOnEqualMeasures) {
  ExactDisc<int> d;
  d.add(1, Rational(1, 2));
  d.add(2, Rational(1, 2));
  EXPECT_EQ(balance_distance(d, d), Rational(0));
}

TEST(BalanceDistance, KnownValue) {
  ExactDisc<int> mu;
  mu.add(1, Rational(1, 2));
  mu.add(2, Rational(1, 2));
  ExactDisc<int> nu;
  nu.add(1, Rational(1, 4));
  nu.add(2, Rational(1, 4));
  nu.add(3, Rational(1, 2));
  // Positive part: 1/4 + 1/4; negative part: 1/2 -> distance 1/2.
  EXPECT_EQ(balance_distance(mu, nu), Rational(1, 2));
}

TEST(BalanceDistance, DisjointSupportsIsOne) {
  ExactDisc<int> mu = ExactDisc<int>::dirac(1);
  ExactDisc<int> nu = ExactDisc<int>::dirac(2);
  EXPECT_EQ(balance_distance(mu, nu), Rational(1));
}

TEST(BalanceDistance, SubProbabilityAsymmetricMass) {
  // Halting mass shows up as a one-sided difference.
  ExactDisc<int> mu;
  mu.add(1, Rational(1, 2));  // halts with prob 1/2
  ExactDisc<int> nu = ExactDisc<int>::dirac(1);
  EXPECT_EQ(balance_distance(mu, nu), Rational(1, 2));
}

TEST(ToDouble, ConvertsExactMeasure) {
  ExactDisc<int> d;
  d.add(1, Rational(1, 4));
  d.add(2, Rational(3, 4));
  const auto dd = to_double(d);
  EXPECT_DOUBLE_EQ(dd.mass(1), 0.25);
  EXPECT_DOUBLE_EQ(dd.mass(2), 0.75);
}

// Metric-style properties of balance distance on random exact measures.
class BalanceLaws : public ::testing::TestWithParam<int> {
 protected:
  ExactDisc<int> random_prob(Xoshiro256& rng) {
    // Random dyadic probability over {0..5}: split 16 atoms of mass 1/16.
    ExactDisc<int> d;
    for (int atom = 0; atom < 16; ++atom) {
      d.add(static_cast<int>(rng.below(6)), Rational(1, 16));
    }
    return d;
  }
};

TEST_P(BalanceLaws, MetricAxiomsAndDataProcessing) {
  Xoshiro256 rng(GetParam() * 313 + 1);
  const auto a = random_prob(rng);
  const auto b = random_prob(rng);
  const auto c = random_prob(rng);
  // Symmetry, identity, triangle.
  EXPECT_EQ(balance_distance(a, b), balance_distance(b, a));
  EXPECT_EQ(balance_distance(a, a), Rational(0));
  EXPECT_LE(balance_distance(a, c),
            balance_distance(a, b) + balance_distance(b, c));
  // Bounded by 1 for probability measures.
  EXPECT_LE(balance_distance(a, b), Rational(1));
  // Data processing: any push-forward cannot increase the distance
  // (the insight-function stability property relies on this).
  auto coarse = [](int x) { return x / 2; };
  EXPECT_LE(balance_distance(a.map<int>(coarse), b.map<int>(coarse)),
            balance_distance(a, b));
}

INSTANTIATE_TEST_SUITE_P(Random, BalanceLaws, ::testing::Range(0, 30));

}  // namespace
}  // namespace cdse
