// Randomized algebraic-law property suite: the operator algebra of
// Sections 2.3-2.6 checked on generated automata, with equivalence
// decided by the exact probabilistic-bisimulation checker.

#include <gtest/gtest.h>

#include "impl/bisim.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/cone_measure.hpp"
#include "sched/schedulers.hpp"

namespace cdse {
namespace {

constexpr std::size_t kDepth = 5;
// Exact f-dists under wide uniform branching accumulate denominators
// like lcm(1..12, 8)^depth; depth 4 keeps them inside 64 bits.
constexpr std::size_t kFdistDepth = 4;

/// A compatible triple: B listens to A's outputs, C listens to both.
struct Triple {
  std::shared_ptr<ExplicitPsioa> a, b, c;
  std::shared_ptr<ExplicitPsioa> a2, b2, c2;  // independent clones
};

Triple make_triple(int seed, const std::string& tag) {
  Xoshiro256 rng(seed * 7919 + 13);
  RandomPsioaConfig ca;
  ca.n_states = 3;
  ca.n_outputs = 2;
  ca.n_internals = 1;
  RandomPsioaConfig cb = ca;
  cb.input_candidates = acts({"rout0_" + tag + "a", "rout1_" + tag + "a"});
  RandomPsioaConfig cc = ca;
  cc.n_outputs = 1;
  cc.input_candidates = acts({"rout0_" + tag + "a", "rout0_" + tag + "b"});
  Triple t;
  // Clone by regenerating with an identical RNG stream.
  Xoshiro256 rng2(seed * 7919 + 13);
  t.a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
  t.b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
  t.c = make_random_psioa(tag + "_C", tag + "c", cc, rng);
  t.a2 = make_random_psioa(tag + "_A2", tag + "a", ca, rng2);
  t.b2 = make_random_psioa(tag + "_B2", tag + "b", cb, rng2);
  t.c2 = make_random_psioa(tag + "_C2", tag + "c", cc, rng2);
  return t;
}

class AlgebraLaws : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraLaws, CloneGeneratorIsDeterministic) {
  const Triple t = make_triple(GetParam(),
                               "al_a" + std::to_string(GetParam()));
  EXPECT_TRUE(probabilistic_bisimulation(*t.a, *t.a2, kDepth).bisimilar);
  EXPECT_TRUE(probabilistic_bisimulation(*t.b, *t.b2, kDepth).bisimilar);
}

TEST_P(AlgebraLaws, CompositionIsCommutativeUpToBisimulation) {
  const Triple t = make_triple(GetParam(),
                               "al_b" + std::to_string(GetParam()));
  auto ab = compose(PsioaPtr(t.a), PsioaPtr(t.b));
  auto ba = compose(PsioaPtr(t.b2), PsioaPtr(t.a2));
  EXPECT_TRUE(probabilistic_bisimulation(*ab, *ba, kDepth).bisimilar);
}

TEST_P(AlgebraLaws, CompositionIsAssociativeUpToBisimulation) {
  const Triple t = make_triple(GetParam(),
                               "al_c" + std::to_string(GetParam()));
  auto left = compose(compose(PsioaPtr(t.a), PsioaPtr(t.b)),
                      PsioaPtr(t.c));
  auto right = compose(PsioaPtr(t.a2),
                       compose(PsioaPtr(t.b2), PsioaPtr(t.c2)));
  EXPECT_TRUE(probabilistic_bisimulation(*left, *right, kDepth).bisimilar);
}

TEST_P(AlgebraLaws, FlatComposeEqualsNested) {
  const Triple t = make_triple(GetParam(),
                               "al_d" + std::to_string(GetParam()));
  auto flat = compose({PsioaPtr(t.a), PsioaPtr(t.b), PsioaPtr(t.c)});
  auto nested = compose(PsioaPtr(t.a2),
                        compose(PsioaPtr(t.b2), PsioaPtr(t.c2)));
  EXPECT_TRUE(probabilistic_bisimulation(*flat, *nested, kDepth)
                  .bisimilar);
}

TEST_P(AlgebraLaws, HidingCommutesWithComposition) {
  // hide(A || B, S) ~ hide(A, S) || B when S only names A's outputs.
  const Triple t = make_triple(GetParam(),
                               "al_e" + std::to_string(GetParam()));
  const std::string tag = "al_e" + std::to_string(GetParam());
  // Hide an output of A that B does not listen to: rout1 is in B's input
  // candidates, so use an internal-only-safe set -- hide rout1 anyway
  // and mirror it on both sides; the law holds as long as both sides
  // hide the same set.
  const ActionSet hidden = acts({"rout1_" + tag + "a"});
  auto lhs = hide_actions(compose(PsioaPtr(t.a), PsioaPtr(t.c)), hidden);
  auto rhs = compose(hide_actions(PsioaPtr(t.a2), hidden),
                     PsioaPtr(t.c2));
  // C listens to rout0 only, so hiding rout1 does not change the shared
  // interface and the two factorizations are bisimilar.
  EXPECT_TRUE(probabilistic_bisimulation(*lhs, *rhs, kDepth).bisimilar);
}

TEST_P(AlgebraLaws, RenamingPreservesDynamics) {
  // r(A) with fresh names is bisimilar to A up to renaming: rename
  // forward then back and compare to the original.
  const Triple t = make_triple(GetParam(),
                               "al_f" + std::to_string(GetParam()));
  const std::string tag = "al_f" + std::to_string(GetParam());
  const ActionBijection g = ActionBijection::with_suffix(
      acts({"rout0_" + tag + "a", "rout1_" + tag + "a"}), "#ren");
  auto round_trip =
      rename_actions(rename_actions(PsioaPtr(t.a), g), g.inverse());
  EXPECT_TRUE(probabilistic_bisimulation(*t.a2, *round_trip, kDepth)
                  .bisimilar);
}

TEST_P(AlgebraLaws, CompositeSignatureMatchesDef24OnReachableStates) {
  const Triple t = make_triple(GetParam(),
                               "al_g" + std::to_string(GetParam()));
  auto ab = compose(PsioaPtr(t.a), PsioaPtr(t.b));
  // Walk a few reachable states and re-derive the composite signature.
  UniformScheduler sched(kDepth);
  std::size_t checked = 0;
  for_each_halted_execution(
      *ab, sched, kDepth, [&](const ExecFragment& alpha, const Rational&) {
        for (State q : alpha.states()) {
          const Signature composite = ab->signature(q);
          const Signature manual =
              compose(t.a->signature(ab->project(q, 0)),
                      t.b->signature(ab->project(q, 1)));
          EXPECT_EQ(composite, manual);
          ++checked;
        }
      });
  EXPECT_GT(checked, 0u);
}

TEST_P(AlgebraLaws, TraceDistributionsAgreeAcrossFactorings) {
  // The trace f-dist of (A||B)||C equals that of A||(B||C) under the
  // uniform scheduler -- the distributional shadow of associativity.
  const Triple t = make_triple(GetParam(),
                               "al_h" + std::to_string(GetParam()));
  auto left = compose(compose(PsioaPtr(t.a), PsioaPtr(t.b)),
                      PsioaPtr(t.c));
  auto right = compose(PsioaPtr(t.a2),
                       compose(PsioaPtr(t.b2), PsioaPtr(t.c2)));
  UniformScheduler sched(kFdistDepth, /*local_only=*/true);
  TraceInsight f;
  const auto dl = exact_fdist(*left, sched, f, kFdistDepth + 1);
  const auto dr = exact_fdist(*right, sched, f, kFdistDepth + 1);
  EXPECT_EQ(balance_distance(dl, dr), Rational(0));
}

INSTANTIATE_TEST_SUITE_P(Random, AlgebraLaws, ::testing::Range(0, 12));

}  // namespace
}  // namespace cdse
