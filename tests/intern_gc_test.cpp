// Session GC at the handle-store layer (util/state_interner.hpp,
// util/sharded_interner.hpp): arena chunk accounting, the retire /
// collect / compact epoch discipline, the map-vs-arena differential
// staying like-for-like after GC, and the sharded interner's concurrent
// interning + quiescent compaction with handle remapping.

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/sharded_interner.hpp"
#include "util/state_interner.hpp"

namespace cdse {
namespace {

using Handle = StateInterner::Handle;

std::vector<std::uint64_t> key2(std::uint64_t a, std::uint64_t b) {
  return {a, b};
}

// -- Arena chunk accounting --------------------------------------------------

TEST(ArenaGc, DrainedChunkReleasesItsMemory) {
  Arena a(64);  // tiny chunks so churn is observable
  std::uint32_t c0 = Arena::kNoChunk;
  a.allocate(48, 8, &c0);
  std::uint32_t c1 = Arena::kNoChunk;
  a.allocate(48, 8, &c1);  // does not fit chunk 0: bump target moves on
  ASSERT_NE(c0, c1);
  EXPECT_EQ(a.bytes_live(), 96u);
  EXPECT_EQ(a.held_chunk_count(), 2u);

  // Chunk 0 is no longer the bump target: draining it returns its bytes.
  const std::size_t released = a.deallocate_from(c0, 48);
  EXPECT_GT(released, 0u);
  EXPECT_EQ(a.bytes_live(), 48u);
  EXPECT_EQ(a.held_chunk_count(), 1u);
  EXPECT_EQ(a.bytes_released(), released);
  EXPECT_EQ(a.bytes_held(), a.bytes_reserved() - released);
}

TEST(ArenaGc, PartiallyLiveChunkIsNotReleased) {
  Arena a(64);
  std::uint32_t c0 = Arena::kNoChunk;
  a.allocate(24, 8, &c0);
  std::uint32_t c0b = Arena::kNoChunk;
  a.allocate(24, 8, &c0b);
  ASSERT_EQ(c0, c0b);
  a.allocate(48, 8, nullptr);  // move the bump target off chunk 0
  EXPECT_EQ(a.deallocate_from(c0, 24), 0u);  // half of it still live
  EXPECT_EQ(a.held_chunk_count(), a.chunk_count());
  EXPECT_GT(a.deallocate_from(c0, 24), 0u);  // now fully dead
}

TEST(ArenaGc, BumpTargetSparedUntilSweep) {
  Arena a(64);
  std::uint32_t c0 = Arena::kNoChunk;
  a.allocate(40, 8, &c0);
  // Fully dead, but still the bump target: spared (its remaining space
  // is about to be bump-allocated from).
  EXPECT_EQ(a.deallocate_from(c0, 40), 0u);
  EXPECT_EQ(a.held_chunk_count(), a.chunk_count());
  // Growth passes it over; the sweep catches it.
  a.allocate(128, 8, nullptr);
  EXPECT_GT(a.release_dead_chunks(), 0u);
  EXPECT_EQ(a.held_chunk_count(), a.chunk_count() - 1);
  EXPECT_EQ(a.bytes_live(), 128u);
}

// -- StateInterner retire / collect -----------------------------------------

TEST(InternGc, RetiredHandleStopsResolvingAndKeyInternsFresh) {
  StateInterner si(StateInterner::Backend::kArena);
  const Handle h0 = si.intern_tuple(key2(1, 2));
  const Handle h1 = si.intern_tuple(key2(3, 4));
  EXPECT_TRUE(si.is_live(h0));
  EXPECT_TRUE(si.retire(h0));
  EXPECT_FALSE(si.retire(h0));  // double retire reports false
  EXPECT_FALSE(si.is_live(h0));
  EXPECT_THROW(si.key(h0), std::out_of_range);
  EXPECT_THROW(si.tuple(h0), std::out_of_range);
  EXPECT_EQ(si.live_keys(), 1u);

  // Re-interning the equal key must NOT resurrect the dead handle: a
  // reopened session id gets fresh handles.
  const Handle h2 = si.intern_tuple(key2(1, 2));
  EXPECT_NE(h2, h0);
  EXPECT_EQ(si.size(), 3u);
  EXPECT_TRUE(si.is_live(h2));

  // Untouched neighbours still resolve.
  EXPECT_TRUE(si.is_live(h1));
  EXPECT_EQ(si.tuple(h1)[0], 3u);
  EXPECT_EQ(si.stats().keys_retired, 1u);
}

TEST(InternGc, CollectReclaimsDeadChunksAndPreservesLiveKeys) {
  StateInterner si(StateInterner::Backend::kArena);
  constexpr std::size_t kKeys = 4096;
  std::vector<Handle> hs;
  hs.reserve(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    hs.push_back(si.intern_tuple(key2(i, i * 7 + 1)));
  }
  // Retire the first half: keys were interned in order, so early arena
  // chunks drain completely and whole-chunk reclamation can fire.
  for (std::size_t i = 0; i < kKeys / 2; ++i) si.retire(hs[i]);
  const std::size_t held_before = si.stats().arena_bytes;
  EXPECT_EQ(si.collect(), kKeys / 2);

  const InternStats s = si.stats();
  EXPECT_EQ(s.keys_retired, kKeys / 2);
  EXPECT_GT(s.bytes_reclaimed, 0u);
  EXPECT_LT(s.arena_bytes, held_before);
  EXPECT_EQ(si.live_keys(), kKeys / 2);
  for (std::size_t i = kKeys / 2; i < kKeys; ++i) {
    ASSERT_TRUE(si.is_live(hs[i]));
    ASSERT_EQ(si.tuple(hs[i])[1], i * 7 + 1);
  }
  // Dead handles stay dead after the rebuild.
  EXPECT_FALSE(si.is_live(hs[0]));
  EXPECT_THROW(si.key(hs[0]), std::out_of_range);
}

TEST(InternGc, SlotTableStopsGrowingUnderChurn) {
  // Live population is bounded at 256; intern/retire/collect cycles must
  // not keep doubling the slot table (the load factor counts live +
  // pending keys, not every key ever interned).
  StateInterner si(StateInterner::Backend::kArena);
  std::size_t rehashes_after_warm = 0;
  for (std::uint64_t cycle = 0; cycle < 50; ++cycle) {
    std::vector<Handle> hs;
    for (std::uint64_t i = 0; i < 256; ++i) {
      hs.push_back(si.intern_tuple(key2(cycle, i)));
    }
    for (Handle h : hs) si.retire(h);
    si.collect();
    if (cycle == 9) rehashes_after_warm = si.stats().rehashes;
  }
  EXPECT_EQ(si.stats().rehashes, rehashes_after_warm);
  EXPECT_EQ(si.live_keys(), 0u);
}

TEST(InternGc, CompactRenumbersDenselyWithRemap) {
  StateInterner si(StateInterner::Backend::kArena);
  constexpr std::size_t kKeys = 100;
  std::vector<Handle> hs;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    hs.push_back(si.intern_tuple(key2(i, i + 1000)));
  }
  for (std::size_t i = 0; i < kKeys / 2; ++i) si.retire(hs[i]);

  std::vector<Handle> old_to_new;
  si.compact(&old_to_new);
  ASSERT_EQ(old_to_new.size(), kKeys);
  EXPECT_EQ(si.size(), kKeys / 2);
  EXPECT_EQ(si.live_keys(), kKeys / 2);
  for (std::size_t i = 0; i < kKeys / 2; ++i) {
    EXPECT_EQ(old_to_new[i], StateInterner::kInvalidHandle);
  }
  for (std::size_t i = kKeys / 2; i < kKeys; ++i) {
    const Handle nh = old_to_new[i];
    ASSERT_NE(nh, StateInterner::kInvalidHandle);
    // Dense renumbering in handle order.
    EXPECT_EQ(nh, i - kKeys / 2);
    EXPECT_EQ(si.tuple(nh)[1], i + 1000);
  }
  // Interning resumes after the surviving population; equal keys dedupe
  // against the compacted table.
  EXPECT_EQ(si.intern_tuple(key2(60, 1060)), old_to_new[60]);
  EXPECT_EQ(si.intern_tuple(key2(12345, 0)), kKeys / 2);
}

TEST(InternGc, MapVsArenaDifferentialStaysLikeForLikeAfterGc) {
  // Same intern/retire/collect/re-intern sequence on both backends:
  // handle values, live population, and *byte attribution of live keys*
  // must agree -- the backends differ in held memory (arena chunks vs map
  // nodes), never in accounting semantics.
  StateInterner arena(StateInterner::Backend::kArena);
  StateInterner map(StateInterner::Backend::kMap);
  auto drive = [](StateInterner& si) {
    std::vector<Handle> hs;
    for (std::uint64_t i = 0; i < 512; ++i) {
      hs.push_back(si.intern_tuple(key2(i, i ^ 0xabc)));
    }
    for (std::uint64_t i = 0; i < 512; i += 3) si.retire(hs[i]);
    si.collect();
    for (std::uint64_t i = 0; i < 100; ++i) {
      hs.push_back(si.intern_tuple(key2(i, i ^ 0xabc)));  // some re-interns
    }
    return hs;
  };
  const auto ha = drive(arena);
  const auto hm = drive(map);
  EXPECT_EQ(ha, hm);
  EXPECT_EQ(arena.size(), map.size());
  EXPECT_EQ(arena.live_keys(), map.live_keys());
  const InternStats sa = arena.stats();
  const InternStats sm = map.stats();
  EXPECT_EQ(sa.keys, sm.keys);
  EXPECT_EQ(sa.keys_retired, sm.keys_retired);
  EXPECT_EQ(sa.bytes_live, sm.bytes_live);
  for (std::uint64_t h = 0; h < arena.size(); ++h) {
    ASSERT_EQ(arena.is_live(h), map.is_live(h));
    if (arena.is_live(h)) {
      ASSERT_EQ(arena.tuple(h)[0], map.tuple(h)[0]);
      ASSERT_EQ(arena.tuple(h)[1], map.tuple(h)[1]);
    }
  }
}

// -- ShardedStateInterner ----------------------------------------------------

TEST(ShardedInternGc, DedupesAndRoundTripsAcrossShards) {
  ShardedStateInterner si(8);
  EXPECT_EQ(si.shard_count(), 8u);
  std::vector<ShardedStateInterner::Handle> hs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hs.push_back(si.intern_tuple(key2(i, i * 3).data(), 2));
  }
  EXPECT_EQ(si.size(), 1000u);
  EXPECT_EQ(si.live_keys(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(si.intern_tuple(key2(i, i * 3).data(), 2), hs[i]);
    auto [ptr, len] = si.key(hs[i]);
    ASSERT_EQ(len, 16u);
    std::uint64_t w0 = 0;
    std::memcpy(&w0, ptr, 8);
    EXPECT_EQ(w0, i);
  }
  EXPECT_EQ(si.stats().keys, 1000u);
}

TEST(ShardedInternGc, ConcurrentInternersAgreeOnHandles) {
  ShardedStateInterner si(16);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kUniverse = 512;
  std::vector<std::vector<ShardedStateInterner::Handle>> per_thread(
      kThreads, std::vector<ShardedStateInterner::Handle>(kUniverse));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the same key universe in a different order.
      for (std::uint64_t j = 0; j < kUniverse; ++j) {
        const std::uint64_t i = (j * 17 + t * 31) % kUniverse;
        per_thread[t][i] = si.intern_tuple(key2(i, i + 7).data(), 2);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(si.live_keys(), kUniverse);
  for (std::uint64_t i = 0; i < kUniverse; ++i) {
    for (std::size_t t = 1; t < kThreads; ++t) {
      ASSERT_EQ(per_thread[t][i], per_thread[0][i]) << "key " << i;
    }
  }
}

TEST(ShardedInternGc, QuiescentCollectCompactsAndRemapsStoredHandles) {
  ShardedStateInterner si(2);  // few shards so totals cross the floor
  constexpr std::uint64_t kKeys = 8192;
  std::vector<ShardedStateInterner::Handle> hs(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    hs[i] = si.intern_tuple(key2(i, ~i).data(), 2);
  }
  // Retire 90%, keep every 10th: garbage fraction is deep past any
  // sensible compaction threshold.
  std::vector<std::uint64_t> live_ids;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    if (i % 10 == 0) {
      live_ids.push_back(i);
    } else {
      EXPECT_TRUE(si.retire(hs[i]));
    }
  }
  const auto result = si.collect(
      0.5, [&](std::size_t shard,
               const std::vector<ShardedStateInterner::Handle>& map) {
        for (std::uint64_t i : live_ids) {
          if (si.shard_of(hs[i]) == shard) hs[i] = si.remap(hs[i], map);
        }
      });
  EXPECT_GT(result.keys_collected, 0u);
  EXPECT_EQ(result.shards_compacted, 2u);
  EXPECT_GT(result.bytes_reclaimed, 0u);
  EXPECT_EQ(si.live_keys(), live_ids.size());
  EXPECT_EQ(si.size(), live_ids.size());  // entry tables pruned too
  for (std::uint64_t i : live_ids) {
    ASSERT_TRUE(si.is_live(hs[i]));
    auto [ptr, len] = si.key(hs[i]);
    ASSERT_EQ(len, 16u);
    std::uint64_t w0 = 0;
    std::memcpy(&w0, ptr, 8);
    ASSERT_EQ(w0, i);
  }
  // Dedupe still works against the compacted shards.
  for (std::uint64_t i : live_ids) {
    EXPECT_EQ(si.intern_tuple(key2(i, ~i).data(), 2), hs[i]);
  }
}

TEST(ShardedInternGc, StatsAggregateAcrossShards) {
  ShardedStateInterner si(4);
  for (std::uint64_t i = 0; i < 256; ++i) {
    si.intern_tuple(key2(i, i).data(), 2);
  }
  const InternStats s = si.stats();
  EXPECT_EQ(s.keys, 256u);
  EXPECT_EQ(s.lookups, 256u);
  EXPECT_GT(s.arena_bytes, 0u);
  EXPECT_EQ(s.bytes_live, 256u * 16u);
}

}  // namespace
}  // namespace cdse
