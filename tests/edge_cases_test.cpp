// Edge cases and error paths across the public API surface.

#include <gtest/gtest.h>

#include "crypto/service.hpp"
#include "impl/implementation.hpp"
#include "pca/dynamic_pca.hpp"
#include "pca/pca_compose.hpp"
#include "pca/pca_hide.hpp"
#include "protocols/coinflip.hpp"
#include "psioa/compose.hpp"
#include "psioa/random.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/emulation.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;
using testing::make_emitter;
using testing::make_listener;

TEST(EdgeCases, ActionTableUnknownIdThrows) {
  EXPECT_THROW(ActionTable::instance().name(0xfffffff0u),
               std::out_of_range);
  EXPECT_EQ(ActionTable::instance().lookup("never_interned_xyz"),
            kInvalidAction);
}

TEST(EdgeCases, ActsDeduplicates) {
  const ActionSet s = acts({"ec_a", "ec_a", "ec_b"});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(set::is_sorted_set(s));
}

TEST(EdgeCases, ToStringRendersActionSets) {
  const ActionSet s = acts({"ec_x", "ec_y"});
  const std::string rendered = to_string(s);
  EXPECT_NE(rendered.find("ec_x"), std::string::npos);
  EXPECT_NE(rendered.find("ec_y"), std::string::npos);
  EXPECT_EQ(to_string(ActionSet{}), "{}");
}

TEST(EdgeCases, TransitionOnUndeclaredStateThrows) {
  auto coin = make_coin("ec_c", Rational(1, 2));
  EXPECT_THROW(coin->signature(9999), std::out_of_range);
  EXPECT_THROW(coin->transition(9999, act("flip_ec_c")),
               std::out_of_range);
}

TEST(EdgeCases, ComposedTransitionOnDisabledActionThrows) {
  auto c = compose(make_emitter("ec_d1", "ec_d_m"),
                   make_listener("ec_d2", "ec_d_m"));
  EXPECT_THROW(c->transition(c->start_state(), act("ec_d_unknown")),
               std::logic_error);
}

TEST(EdgeCases, SamplerOnHaltedSchedulerReturnsStartOnly) {
  auto coin = make_coin("ec_e", Rational(1, 2));
  SequenceScheduler empty_word(std::vector<ActionId>{});
  Xoshiro256 rng(1);
  const ExecFragment alpha = sample_execution(*coin, empty_word, rng, 10);
  EXPECT_EQ(alpha.length(), 0u);
  EXPECT_EQ(alpha.fstate(), coin->start_state());
}

TEST(EdgeCases, ExactFdistAtDepthZeroIsDiracOnEmptyPerception) {
  auto coin = make_coin("ec_f", Rational(1, 2));
  UniformScheduler sched(10);
  TraceInsight f;
  const auto dist = exact_fdist(*coin, sched, f, 0);
  EXPECT_EQ(dist.mass(""), Rational(1));
}

TEST(EdgeCases, DynamicPcaCreationOfUnknownAidThrows) {
  auto reg = std::make_shared<AutomatonRegistry>();
  const Aid em = reg->add(make_emitter("ec_g_em", "ec_g_m"));
  CreationPolicy bad = [](const Configuration&, ActionId) {
    return std::vector<Aid>{42};  // not registered
  };
  DynamicPca x("ec_g", reg, {em}, bad, no_hiding());
  EXPECT_THROW(x.transition(x.start_state(), act("ec_g_m")),
               std::out_of_range);
}

TEST(EdgeCases, EmptyCompositionListsRejected) {
  EXPECT_THROW(compose_pca(std::vector<PcaPtr>{}), std::invalid_argument);
  EXPECT_THROW(compose_structured(std::vector<StructuredPsioa>{}),
               std::invalid_argument);
}

TEST(EdgeCases, MacServiceWithNoSessionsRejected) {
  // A session-less hub would carry an empty signature -- the destruction
  // sentinel -- so the degenerate configuration is rejected up front.
  EXPECT_THROW(make_mac_service_pair({}, "ec_h"), std::invalid_argument);
}

TEST(EdgeCases, ImplementationReportEmptyInputs) {
  auto a = make_bernoulli("ec_i1", "ec_i_go", "ec_i_y", "ec_i_n",
                          Rational(1, 2));
  auto b = make_bernoulli("ec_i2", "ec_i_go", "ec_i_y", "ec_i_n",
                          Rational(1, 2));
  const auto report =
      check_implementation(a, b, {}, {}, same_scheduler(),
                           TraceInsight(), 8);
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.max_eps, Rational(0));
}

TEST(EdgeCases, RandomPsioaIsAlwaysValid) {
  for (int seed = 0; seed < 20; ++seed) {
    Xoshiro256 rng(seed);
    RandomPsioaConfig cfg;
    cfg.n_states = 1 + seed % 5;
    cfg.n_outputs = seed % 3;
    cfg.n_internals = seed % 2;
    cfg.input_candidates = acts({"ec_j_in1", "ec_j_in2"});
    // validate() runs inside the generator; reaching here means the
    // instance satisfies Def 2.1. Spot-check transition totals.
    auto a = make_random_psioa("ec_j_" + std::to_string(seed), "ec_j",
                               cfg, rng);
    const State q0 = a->start_state();
    for (ActionId act_id : a->enabled(q0)) {
      EXPECT_TRUE(a->transition(q0, act_id).is_probability());
    }
  }
}

TEST(EdgeCases, UniformSchedulerOnEmptySignatureHalts) {
  auto em = make_emitter("ec_k", "ec_k_m");
  UniformScheduler sched(10);
  ExecFragment alpha(em->start_state());
  alpha.append(act("ec_k_m"),
               em->transition(em->start_state(), act("ec_k_m"))
                   .support()[0]);
  EXPECT_TRUE(sched.choose(*em, alpha).empty());  // spent: empty sig
}

TEST(EdgeCases, BalanceOfEmptyDistsIsZero) {
  ExactDisc<Perception> empty1, empty2;
  EXPECT_EQ(balance_distance(empty1, empty2), Rational(0));
  ExactDisc<Perception> one = ExactDisc<Perception>::dirac("x");
  EXPECT_EQ(balance_distance(one, empty1), Rational(1));
}

TEST(EdgeCases, RegistryRejectsNull) {
  AutomatonRegistry reg;
  EXPECT_THROW(reg.add(nullptr), std::invalid_argument);
}

TEST(EdgeCases, HiddenPcaOnlyHidesOutputs) {
  auto reg = std::make_shared<AutomatonRegistry>();
  const Aid li = reg->add(make_listener("ec_l_li", "ec_l_m"));
  auto x = std::make_shared<DynamicPca>("ec_l", reg, std::vector<Aid>{li});
  PcaPtr h = hide_pca(x, acts({"ec_l_m"}));  // it is an input: no-op
  EXPECT_TRUE(h->signature(h->start_state()).is_input(act("ec_l_m")));
  EXPECT_TRUE(h->hidden_actions(h->start_state()).empty());
}

}  // namespace
}  // namespace cdse
