// Batched lockstep sampler (sched/batch_sampler.hpp) differential
// suite: the acceptance gate for SamplingMode::kBatched.
//
//   validity      -- sample_executions returns genuine depth-bounded
//                    executions of the automaton.
//   determinism   -- batched runs are reproducible at fixed seed and
//                    pool size; stats confirm the row-lookup
//                    amortization actually happened.
//   vs exact      -- batched f-dists pass the chi-square GOF harness
//                    against the exact enumerator.
//   vs serial     -- the headline differential: serial and batched
//                    f-dists over the same stack zoo as the exact-engine
//                    suite (composed, hidden+renamed, MAC, ledger,
//                    faulty channel) agree under the two-sample
//                    chi-square at every worker count in {1, 2, 4, 8}.
//
// Suite names all start with "BatchSampler" so scripts/check.sh --tsan
// can select the concurrency-bearing cases by regex.

#include "sched/batch_sampler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "crypto/pairs.hpp"
#include "fault/faulty.hpp"
#include "protocols/channel.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "stat_util.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

constexpr std::size_t kDepth = 6;
constexpr std::size_t kTrials = 20000;
const std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// ------------------------------------------------------------- stack zoo
// Same shapes as the exact-engine differential suite, under fresh "bs_"
// tags so the suites' action vocabularies stay disjoint.

PsioaFactory composed_factory(int seed, const std::string& tag) {
  return [seed, tag]() -> PsioaPtr {
    Xoshiro256 rng(seed * 7919 + 13);
    RandomPsioaConfig ca;
    ca.n_states = 3;
    ca.n_outputs = 2;
    ca.n_internals = 1;
    RandomPsioaConfig cb = ca;
    cb.input_candidates = acts({"iout0_" + tag + "a", "iout1_" + tag + "a"});
    auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
    auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
    return compose(PsioaPtr(a), PsioaPtr(b));
  };
}

PsioaFactory hidden_renamed_factory(int seed, const std::string& tag) {
  const PsioaFactory inner = composed_factory(seed, tag);
  return [inner, tag]() -> PsioaPtr {
    const ActionBijection g =
        ActionBijection::with_suffix(acts({"iout0_" + tag + "a"}), "#in");
    const ActionSet hidden = acts({"iout1_" + tag + "a"});
    return rename_actions(hide_actions(inner(), hidden), g);
  };
}

PsioaFactory mac_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    const RealIdealPair mac = make_otmac_pair(4, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
    return compose(env, compose(mac.real.ptr(), adv));
  };
}

PsioaFactory ledger_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_ledger_system(2, tag).dynamic; };
}

PsioaFactory faulty_channel_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    FaultPlan plan;
    plan.drop = Rational(1, 8);
    plan.duplicate = Rational(1, 8);
    plan.delay = Rational(1, 4);
    return make_faulty_channel(tag, plan);
  };
}

SchedulerFactory uniform_factory(std::size_t depth) {
  return [depth]() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(depth);
  };
}

struct Stack {
  const char* label;
  PsioaFactory make;
};

std::vector<Stack> stack_zoo() {
  return {
      {"composed", composed_factory(3, "bs_c")},
      {"hidden_renamed", hidden_renamed_factory(5, "bs_h")},
      {"mac", mac_factory("bs_m")},
      {"ledger", ledger_factory("bs_l")},
      {"faulty_channel", faulty_channel_factory("bs_f")},
  };
}

// --------------------------------------------------------------- validity

TEST(BatchSamplerUnit, SampledExecutionsAreValidAndDepthBounded) {
  auto coin = make_coin("bs_val", Rational(1, 3));
  UniformScheduler sched(kDepth);
  Xoshiro256 rng(7);
  BatchStats stats;
  const auto execs =
      sample_executions(*coin, sched, rng, 500, kDepth, &stats);
  ASSERT_EQ(execs.size(), 500u);
  for (const ExecFragment& alpha : execs) {
    EXPECT_LE(alpha.length(), kDepth);
    EXPECT_EQ(alpha.fstate(), coin->start_state());
    EXPECT_TRUE(is_execution(*coin, alpha));
  }
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_EQ(stats.action_draws >= 500u, true);
}

TEST(BatchSamplerUnit, ZeroTrialsIsEmpty) {
  auto coin = make_coin("bs_zero", Rational(1, 2));
  UniformScheduler sched(kDepth);
  Xoshiro256 rng(7);
  EXPECT_TRUE(sample_executions(*coin, sched, rng, 0, kDepth).empty());
}

TEST(BatchSamplerUnit, ClassGroupingAmortizesRowLookups) {
  // The whole point of the batch: row fetches scale with *classes*, not
  // with executions. 20000 coin trials over a handful of states must
  // need orders of magnitude fewer lookups than draws.
  auto coin = make_coin("bs_amort", Rational(1, 3));
  UniformScheduler sched(kDepth);
  Xoshiro256 rng(11);
  BatchStats stats;
  (void)sample_executions(*coin, sched, rng, kTrials, kDepth, &stats);
  EXPECT_GE(stats.action_draws, kTrials);
  EXPECT_LT(stats.choice_lookups * 100, stats.action_draws);
  EXPECT_LT(stats.row_lookups * 100, stats.target_draws + 1);
  EXPECT_GT(stats.distinct_executions, 0u);
}

// ------------------------------------------------------------ determinism

TEST(BatchSamplerUnit, BatchedFdistIsSeedDeterministic) {
  auto coin = make_coin("bs_det", Rational(1, 4));
  UniformScheduler s1(kDepth);
  UniformScheduler s2(kDepth);
  TraceInsight f;
  const auto d1 = sample_fdist_batched(*coin, s1, f, kTrials, 42, kDepth);
  const auto d2 = sample_fdist_batched(*coin, s2, f, kTrials, 42, kDepth);
  ASSERT_EQ(d1.entries().size(), d2.entries().size());
  for (std::size_t i = 0; i < d1.entries().size(); ++i) {
    EXPECT_EQ(d1.entries()[i].first, d2.entries()[i].first);
    EXPECT_DOUBLE_EQ(d1.entries()[i].second, d2.entries()[i].second);
  }
}

TEST(BatchSampler, ParallelBatchedIsDeterministicAtFixedPoolSize) {
  ThreadPool pool(4);
  TraceInsight f;
  auto make_aut = mac_factory("bs_pdet");
  auto make_sched = uniform_factory(kDepth);
  const auto d1 = parallel_sample_fdist(make_aut, make_sched, f, kTrials, 9,
                                        kDepth, pool, SamplingMode::kBatched);
  const auto d2 = parallel_sample_fdist(make_aut, make_sched, f, kTrials, 9,
                                        kDepth, pool, SamplingMode::kBatched);
  ASSERT_EQ(d1.entries().size(), d2.entries().size());
  for (std::size_t i = 0; i < d1.entries().size(); ++i) {
    EXPECT_EQ(d1.entries()[i].first, d2.entries()[i].first);
    EXPECT_DOUBLE_EQ(d1.entries()[i].second, d2.entries()[i].second);
  }
}

// -------------------------------------------------------------- vs exact

TEST(BatchSamplerUnit, BatchedFdistMatchesExactEnumerator) {
  auto coin = make_coin("bs_gof", Rational(1, 4));
  UniformScheduler sched(3);
  TraceInsight f;
  const auto exact = exact_fdist(*coin, sched, f, 10);
  UniformScheduler sched2(3);
  const auto batched =
      sample_fdist_batched(*coin, sched2, f, 40000, 17, 10);
  EXPECT_TRUE(testing::fdist_matches_exact(exact, batched, 40000));
}

// ------------------------------------------------------------- vs serial

TEST(BatchSampler, BatchedMatchesSerialAcrossZooAndWorkerCounts) {
  TraceInsight f;
  for (const Stack& stack : stack_zoo()) {
    auto make_sched = uniform_factory(kDepth);
    for (std::size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      const auto serial =
          parallel_sample_fdist(stack.make, make_sched, f, kTrials, 101,
                                kDepth, pool, SamplingMode::kSerial);
      const auto batched =
          parallel_sample_fdist(stack.make, make_sched, f, kTrials, 202,
                                kDepth, pool, SamplingMode::kBatched);
      EXPECT_TRUE(testing::fdists_match(serial, kTrials, batched, kTrials))
          << stack.label << " at " << workers << " workers";
    }
  }
}

TEST(BatchSampler, SnapshotBatchedMatchesSerialOverFrozenTables) {
  // The frozen-snapshot path (the one the E20 bench measures): one
  // prepared sampler serving both modes over the same shared tables.
  TraceInsight f;
  for (const Stack& stack : stack_zoo()) {
    ParallelSampler sampler(stack.make, uniform_factory(kDepth));
    WarmupPlan plan;
    plan.horizon = kDepth;
    sampler.prepare(plan, kDepth);
    for (std::size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      const auto serial = sampler.sample_fdist(f, kTrials, 303, kDepth, pool,
                                               SamplingMode::kSerial);
      const auto batched = sampler.sample_fdist(f, kTrials, 404, kDepth,
                                                pool, SamplingMode::kBatched);
      EXPECT_TRUE(testing::fdists_match(serial, kTrials, batched, kTrials))
          << stack.label << " at " << workers << " workers";
      const BatchStats& bs = sampler.last_batch_stats();
      EXPECT_GE(bs.action_draws, kTrials);
      EXPECT_GT(bs.distinct_executions, 0u);
    }
  }
}

// ----------------------------------------------------------- draw kernels

/// Exact (bitwise) equality of two estimates -- the bar for "same
/// schedule", much stronger than the chi-square harness.
void expect_bit_identical(const Disc<Perception, double>& a,
                          const Disc<Perception, double>& b,
                          const std::string& what) {
  ASSERT_EQ(a.entries().size(), b.entries().size()) << what;
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i].first, b.entries()[i].first) << what;
    EXPECT_EQ(a.entries()[i].second, b.entries()[i].second) << what;
  }
}

TEST(BatchSampler, PerDrawKernelMatchesSerialAcrossZoo) {
  // The PR-8 reference kernel stays gated against the serial path.
  TraceInsight f;
  for (const Stack& stack : stack_zoo()) {
    auto make_sched = uniform_factory(kDepth);
    ThreadPool pool(4);
    const auto serial =
        parallel_sample_fdist(stack.make, make_sched, f, kTrials, 111,
                              kDepth, pool, SamplingMode::kSerial);
    const auto perdraw =
        parallel_sample_fdist(stack.make, make_sched, f, kTrials, 222,
                              kDepth, pool, SamplingMode::kBatchedPerDraw);
    EXPECT_TRUE(testing::fdists_match(serial, kTrials, perdraw, kTrials))
        << stack.label;
  }
}

TEST(BatchSampler, BlockKernelMatchesPerDrawKernelStatistically) {
  // The two kernels consume the RNG differently, so the bar here is
  // distributional; the bitwise bar below is between ISA paths of the
  // *same* kernel.
  TraceInsight f;
  ParallelSampler sampler(mac_factory("bs_kern"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  ThreadPool pool(4);
  const auto block = sampler.sample_fdist(f, kTrials, 505, kDepth, pool,
                                          SamplingMode::kBatched);
  const auto perdraw = sampler.sample_fdist(f, kTrials, 606, kDepth, pool,
                                            SamplingMode::kBatchedPerDraw);
  EXPECT_TRUE(testing::fdists_match(block, kTrials, perdraw, kTrials));
}

TEST(BatchSampler, BlockKernelIsaPathsProduceBitIdenticalTallies) {
  // The acceptance gate for the runtime dispatch: forcing the scalar and
  // the AVX2 block bodies must yield the same estimate to the last bit,
  // at every worker count.
  set_block_isa(BlockIsa::kAvx2);
  const bool have_avx2 = resolved_block_isa() == BlockIsa::kAvx2;
  set_block_isa(BlockIsa::kAuto);
  if (!have_avx2) GTEST_SKIP() << "CPU lacks AVX2; single-path build";

  TraceInsight f;
  for (const Stack& stack : stack_zoo()) {
    ParallelSampler sampler(stack.make, uniform_factory(kDepth));
    WarmupPlan plan;
    plan.horizon = kDepth;
    sampler.prepare(plan, kDepth);
    for (std::size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      set_block_isa(BlockIsa::kScalar);
      const auto scalar = sampler.sample_fdist(f, kTrials, 707, kDepth, pool,
                                               SamplingMode::kBatched);
      const BatchStats scalar_stats = sampler.last_batch_stats();
      set_block_isa(BlockIsa::kAvx2);
      const auto vector = sampler.sample_fdist(f, kTrials, 707, kDepth, pool,
                                               SamplingMode::kBatched);
      const BatchStats vector_stats = sampler.last_batch_stats();
      set_block_isa(BlockIsa::kAuto);
      expect_bit_identical(scalar, vector,
                           std::string(stack.label) + " at " +
                               std::to_string(workers) + " workers");
      EXPECT_EQ(scalar_stats.block_draws, vector_stats.block_draws);
      EXPECT_EQ(scalar_stats.rejection_redraws,
                vector_stats.rejection_redraws);
      EXPECT_EQ(scalar_stats.singleton_skips, vector_stats.singleton_skips);
    }
  }
}

TEST(BatchSampler, BlockCountersAccountForRngTraffic) {
  TraceInsight f;
  ParallelSampler sampler(mac_factory("bs_ctr"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  ThreadPool pool(2);
  (void)sampler.sample_fdist(f, kTrials, 808, kDepth, pool,
                             SamplingMode::kBatched);
  const BatchStats block = sampler.last_batch_stats();
  // Logical draw counting is kernel-independent...
  EXPECT_GE(block.action_draws, kTrials);
  // ...but the block kernel must have elided singleton rows (the MAC
  // stack's transitions are mostly deterministic) and bulk-filled the
  // rest.
  EXPECT_GT(block.singleton_skips, 0u);
  EXPECT_GT(block.blocks_filled, 0u);
  EXPECT_GT(block.block_draws, 0u);
  EXPECT_LT(block.block_draws,
            2 * (block.action_draws + block.target_draws));
  (void)sampler.sample_fdist(f, kTrials, 808, kDepth, pool,
                             SamplingMode::kBatchedPerDraw);
  const BatchStats perdraw = sampler.last_batch_stats();
  EXPECT_EQ(perdraw.blocks_filled, 0u);
  EXPECT_EQ(perdraw.block_draws, 0u);
  EXPECT_EQ(perdraw.singleton_skips, 0u);
  EXPECT_EQ(perdraw.rejection_redraws, 0u);
}

// ------------------------------------------------------ incremental rounds

TEST(BatchSamplerUnit, RunRoundsResumeIsBitIdentical) {
  // run_rounds(a); run_rounds(b) must replay the exact schedule of
  // run_rounds(a + b): same fragments, same stats, same RNG state.
  auto coin = make_coin("bs_inc", Rational(1, 3));
  UniformScheduler s1(kDepth);
  UniformScheduler s2(kDepth);
  const Xoshiro256 rng(55);
  for (const BatchKernel kernel :
       {BatchKernel::kBlock, BatchKernel::kPerDraw}) {
    BatchSampler split(*coin, s1, 5000, rng, kDepth, kernel);
    BatchSampler whole(*coin, s2, 5000, rng, kDepth, kernel);
    std::size_t ran = 0;
    while (!split.done()) ran += split.run_rounds(2);
    whole.run_to_completion();
    EXPECT_EQ(ran, whole.rounds_done());
    EXPECT_EQ(split.trials_terminal(), whole.trials_terminal());
    EXPECT_EQ(split.trials_terminal(), 5000u);
    EXPECT_EQ(split.fragments(), whole.fragments());
    EXPECT_EQ(split.stats().action_draws, whole.stats().action_draws);
    EXPECT_EQ(split.stats().target_draws, whole.stats().target_draws);
    EXPECT_EQ(split.stats().distinct_executions,
              whole.stats().distinct_executions);
  }
}

TEST(BatchSamplerUnit, AccumulateCountsIsMonotoneAcrossWaves) {
  auto coin = make_coin("bs_mono", Rational(1, 3));
  UniformScheduler sched(kDepth);
  TraceInsight f;
  BatchSampler bs(*coin, sched, 5000, Xoshiro256(66), kDepth);
  std::vector<std::pair<Perception, double>> prev;
  while (!bs.done()) {
    bs.run_rounds(1);
    const auto& counts = bs.accumulate_counts(f);
    // Every previously seen perception keeps at least its old mass.
    for (const auto& [perc, count] : prev) {
      double now = 0.0;
      for (const auto& [p2, c2] : counts.entries()) {
        if (p2 == perc) now = c2;
      }
      EXPECT_GE(now, count);
    }
    prev.assign(counts.entries().begin(), counts.entries().end());
  }
  double total = 0.0;
  for (const auto& [perc, count] : prev) total += count;
  EXPECT_DOUBLE_EQ(total, 5000.0);
}

TEST(BatchSampler, IncrementalRunToCompletionEqualsOneShot) {
  // The headline incremental contract: driven to completion, the waved
  // path merges the exact same chunk tallies in the exact same order as
  // the one-shot call -- bit-identical, per mode, per worker count.
  TraceInsight f;
  ParallelSampler sampler(mac_factory("bs_iosh"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  for (const SamplingMode mode :
       {SamplingMode::kBatched, SamplingMode::kBatchedPerDraw}) {
    for (std::size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      const auto oneshot =
          sampler.sample_fdist(f, kTrials, 909, kDepth, pool, mode);
      const auto waved = sampler.sample_fdist_incremental(
          f, kTrials, 909, kDepth, pool, /*rounds_per_wave=*/1, nullptr,
          mode);
      expect_bit_identical(oneshot, waved,
                           std::to_string(workers) + " workers");
    }
  }
}

TEST(BatchSampler, IncrementalWavesReportProgressAndPartialTallies) {
  TraceInsight f;
  ParallelSampler sampler(mac_factory("bs_wave"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  ThreadPool pool(4);
  std::vector<ParallelSampler::WaveReport> reports;
  const auto dist = sampler.sample_fdist_incremental(
      f, kTrials, 1001, kDepth, pool, /*rounds_per_wave=*/1,
      [&](const ParallelSampler::WaveReport& rep,
          const Disc<Perception, double>& partial) {
        reports.push_back(rep);
        if (rep.trials_done > 0) {
          double total = 0.0;
          for (const auto& [perc, w] : partial.entries()) total += w;
          EXPECT_NEAR(total, 1.0, 1e-9);  // normalized over trials_done
        }
        return true;
      });
  ASSERT_GT(reports.size(), 1u);  // depth 6 cannot finish in one round
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].wave, i + 1);
    EXPECT_EQ(reports[i].trials_requested, kTrials);
    if (i > 0) {
      EXPECT_GE(reports[i].trials_done, reports[i - 1].trials_done);
    }
  }
  EXPECT_TRUE(reports.back().done);
  EXPECT_EQ(reports.back().trials_done, kTrials);
  EXPECT_GE(sampler.last_batch_stats().action_draws, kTrials);
  double total = 0.0;
  for (const auto& [perc, w] : dist.entries()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BatchSampler, IncrementalEarlyStopReturnsNormalizedPartial) {
  TraceInsight f;
  ParallelSampler sampler(ledger_factory("bs_stop"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  ThreadPool pool(2);
  std::size_t waves_seen = 0;
  const auto dist = sampler.sample_fdist_incremental(
      f, kTrials, 2002, kDepth, pool, /*rounds_per_wave=*/1,
      [&](const ParallelSampler::WaveReport&,
          const Disc<Perception, double>&) {
        ++waves_seen;
        return false;  // stop after the first wave
      });
  EXPECT_EQ(waves_seen, 1u);
  double total = 0.0;
  for (const auto& [perc, w] : dist.entries()) total += w;
  if (!dist.entries().empty()) {
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(BatchSampler, IncrementalMatchesSerialStatistically) {
  // The chi-square gate through the incremental path: waved block-kernel
  // estimates remain statistically indistinguishable from the serial
  // reference.
  TraceInsight f;
  ParallelSampler sampler(mac_factory("bs_ichi"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  ThreadPool pool(4);
  const auto serial = sampler.sample_fdist(f, kTrials, 3003, kDepth, pool,
                                           SamplingMode::kSerial);
  const auto waved = sampler.sample_fdist_incremental(
      f, kTrials, 4004, kDepth, pool, /*rounds_per_wave=*/2);
  EXPECT_TRUE(testing::fdists_match(serial, kTrials, waved, kTrials));
}

TEST(BatchSampler, IncrementalRejectsSerialMode) {
  TraceInsight f;
  ParallelSampler sampler(mac_factory("bs_irej"), uniform_factory(kDepth));
  WarmupPlan plan;
  plan.horizon = kDepth;
  sampler.prepare(plan, kDepth);
  ThreadPool pool(1);
  EXPECT_THROW(sampler.sample_fdist_incremental(f, 100, 1, kDepth, pool, 1,
                                                nullptr,
                                                SamplingMode::kSerial),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdse
