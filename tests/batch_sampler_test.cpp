// Batched lockstep sampler (sched/batch_sampler.hpp) differential
// suite: the acceptance gate for SamplingMode::kBatched.
//
//   validity      -- sample_executions returns genuine depth-bounded
//                    executions of the automaton.
//   determinism   -- batched runs are reproducible at fixed seed and
//                    pool size; stats confirm the row-lookup
//                    amortization actually happened.
//   vs exact      -- batched f-dists pass the chi-square GOF harness
//                    against the exact enumerator.
//   vs serial     -- the headline differential: serial and batched
//                    f-dists over the same stack zoo as the exact-engine
//                    suite (composed, hidden+renamed, MAC, ledger,
//                    faulty channel) agree under the two-sample
//                    chi-square at every worker count in {1, 2, 4, 8}.
//
// Suite names all start with "BatchSampler" so scripts/check.sh --tsan
// can select the concurrency-bearing cases by regex.

#include "sched/batch_sampler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crypto/pairs.hpp"
#include "fault/faulty.hpp"
#include "protocols/channel.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/environment.hpp"
#include "protocols/ledger.hpp"
#include "psioa/compose.hpp"
#include "psioa/hide.hpp"
#include "psioa/random.hpp"
#include "psioa/rename.hpp"
#include "sched/cone_measure.hpp"
#include "sched/sampler.hpp"
#include "sched/schedulers.hpp"
#include "secure/adversary.hpp"
#include "stat_util.hpp"
#include "util/thread_pool.hpp"

namespace cdse {
namespace {

constexpr std::size_t kDepth = 6;
constexpr std::size_t kTrials = 20000;
const std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// ------------------------------------------------------------- stack zoo
// Same shapes as the exact-engine differential suite, under fresh "bs_"
// tags so the suites' action vocabularies stay disjoint.

PsioaFactory composed_factory(int seed, const std::string& tag) {
  return [seed, tag]() -> PsioaPtr {
    Xoshiro256 rng(seed * 7919 + 13);
    RandomPsioaConfig ca;
    ca.n_states = 3;
    ca.n_outputs = 2;
    ca.n_internals = 1;
    RandomPsioaConfig cb = ca;
    cb.input_candidates = acts({"iout0_" + tag + "a", "iout1_" + tag + "a"});
    auto a = make_random_psioa(tag + "_A", tag + "a", ca, rng);
    auto b = make_random_psioa(tag + "_B", tag + "b", cb, rng);
    return compose(PsioaPtr(a), PsioaPtr(b));
  };
}

PsioaFactory hidden_renamed_factory(int seed, const std::string& tag) {
  const PsioaFactory inner = composed_factory(seed, tag);
  return [inner, tag]() -> PsioaPtr {
    const ActionBijection g =
        ActionBijection::with_suffix(acts({"iout0_" + tag + "a"}), "#in");
    const ActionSet hidden = acts({"iout1_" + tag + "a"});
    return rename_actions(hide_actions(inner(), hidden), g);
  };
}

PsioaFactory mac_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    const RealIdealPair mac = make_otmac_pair(4, tag);
    auto env = make_probe_env_matching(
        "env_" + tag, {act("auth_" + tag)}, acts({"rejected_" + tag}),
        act("forged_" + tag), act("acc_" + tag));
    auto adv = make_sink_adversary("adv_" + tag, {}, acts({"forge_" + tag}));
    return compose(env, compose(mac.real.ptr(), adv));
  };
}

PsioaFactory ledger_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr { return make_ledger_system(2, tag).dynamic; };
}

PsioaFactory faulty_channel_factory(const std::string& tag) {
  return [tag]() -> PsioaPtr {
    FaultPlan plan;
    plan.drop = Rational(1, 8);
    plan.duplicate = Rational(1, 8);
    plan.delay = Rational(1, 4);
    return make_faulty_channel(tag, plan);
  };
}

SchedulerFactory uniform_factory(std::size_t depth) {
  return [depth]() -> SchedulerPtr {
    return std::make_shared<UniformScheduler>(depth);
  };
}

struct Stack {
  const char* label;
  PsioaFactory make;
};

std::vector<Stack> stack_zoo() {
  return {
      {"composed", composed_factory(3, "bs_c")},
      {"hidden_renamed", hidden_renamed_factory(5, "bs_h")},
      {"mac", mac_factory("bs_m")},
      {"ledger", ledger_factory("bs_l")},
      {"faulty_channel", faulty_channel_factory("bs_f")},
  };
}

// --------------------------------------------------------------- validity

TEST(BatchSamplerUnit, SampledExecutionsAreValidAndDepthBounded) {
  auto coin = make_coin("bs_val", Rational(1, 3));
  UniformScheduler sched(kDepth);
  Xoshiro256 rng(7);
  BatchStats stats;
  const auto execs =
      sample_executions(*coin, sched, rng, 500, kDepth, &stats);
  ASSERT_EQ(execs.size(), 500u);
  for (const ExecFragment& alpha : execs) {
    EXPECT_LE(alpha.length(), kDepth);
    EXPECT_EQ(alpha.fstate(), coin->start_state());
    EXPECT_TRUE(is_execution(*coin, alpha));
  }
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_EQ(stats.action_draws >= 500u, true);
}

TEST(BatchSamplerUnit, ZeroTrialsIsEmpty) {
  auto coin = make_coin("bs_zero", Rational(1, 2));
  UniformScheduler sched(kDepth);
  Xoshiro256 rng(7);
  EXPECT_TRUE(sample_executions(*coin, sched, rng, 0, kDepth).empty());
}

TEST(BatchSamplerUnit, ClassGroupingAmortizesRowLookups) {
  // The whole point of the batch: row fetches scale with *classes*, not
  // with executions. 20000 coin trials over a handful of states must
  // need orders of magnitude fewer lookups than draws.
  auto coin = make_coin("bs_amort", Rational(1, 3));
  UniformScheduler sched(kDepth);
  Xoshiro256 rng(11);
  BatchStats stats;
  (void)sample_executions(*coin, sched, rng, kTrials, kDepth, &stats);
  EXPECT_GE(stats.action_draws, kTrials);
  EXPECT_LT(stats.choice_lookups * 100, stats.action_draws);
  EXPECT_LT(stats.row_lookups * 100, stats.target_draws + 1);
  EXPECT_GT(stats.distinct_executions, 0u);
}

// ------------------------------------------------------------ determinism

TEST(BatchSamplerUnit, BatchedFdistIsSeedDeterministic) {
  auto coin = make_coin("bs_det", Rational(1, 4));
  UniformScheduler s1(kDepth);
  UniformScheduler s2(kDepth);
  TraceInsight f;
  const auto d1 = sample_fdist_batched(*coin, s1, f, kTrials, 42, kDepth);
  const auto d2 = sample_fdist_batched(*coin, s2, f, kTrials, 42, kDepth);
  ASSERT_EQ(d1.entries().size(), d2.entries().size());
  for (std::size_t i = 0; i < d1.entries().size(); ++i) {
    EXPECT_EQ(d1.entries()[i].first, d2.entries()[i].first);
    EXPECT_DOUBLE_EQ(d1.entries()[i].second, d2.entries()[i].second);
  }
}

TEST(BatchSampler, ParallelBatchedIsDeterministicAtFixedPoolSize) {
  ThreadPool pool(4);
  TraceInsight f;
  auto make_aut = mac_factory("bs_pdet");
  auto make_sched = uniform_factory(kDepth);
  const auto d1 = parallel_sample_fdist(make_aut, make_sched, f, kTrials, 9,
                                        kDepth, pool, SamplingMode::kBatched);
  const auto d2 = parallel_sample_fdist(make_aut, make_sched, f, kTrials, 9,
                                        kDepth, pool, SamplingMode::kBatched);
  ASSERT_EQ(d1.entries().size(), d2.entries().size());
  for (std::size_t i = 0; i < d1.entries().size(); ++i) {
    EXPECT_EQ(d1.entries()[i].first, d2.entries()[i].first);
    EXPECT_DOUBLE_EQ(d1.entries()[i].second, d2.entries()[i].second);
  }
}

// -------------------------------------------------------------- vs exact

TEST(BatchSamplerUnit, BatchedFdistMatchesExactEnumerator) {
  auto coin = make_coin("bs_gof", Rational(1, 4));
  UniformScheduler sched(3);
  TraceInsight f;
  const auto exact = exact_fdist(*coin, sched, f, 10);
  UniformScheduler sched2(3);
  const auto batched =
      sample_fdist_batched(*coin, sched2, f, 40000, 17, 10);
  EXPECT_TRUE(testing::fdist_matches_exact(exact, batched, 40000));
}

// ------------------------------------------------------------- vs serial

TEST(BatchSampler, BatchedMatchesSerialAcrossZooAndWorkerCounts) {
  TraceInsight f;
  for (const Stack& stack : stack_zoo()) {
    auto make_sched = uniform_factory(kDepth);
    for (std::size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      const auto serial =
          parallel_sample_fdist(stack.make, make_sched, f, kTrials, 101,
                                kDepth, pool, SamplingMode::kSerial);
      const auto batched =
          parallel_sample_fdist(stack.make, make_sched, f, kTrials, 202,
                                kDepth, pool, SamplingMode::kBatched);
      EXPECT_TRUE(testing::fdists_match(serial, kTrials, batched, kTrials))
          << stack.label << " at " << workers << " workers";
    }
  }
}

TEST(BatchSampler, SnapshotBatchedMatchesSerialOverFrozenTables) {
  // The frozen-snapshot path (the one the E20 bench measures): one
  // prepared sampler serving both modes over the same shared tables.
  TraceInsight f;
  for (const Stack& stack : stack_zoo()) {
    ParallelSampler sampler(stack.make, uniform_factory(kDepth));
    WarmupPlan plan;
    plan.horizon = kDepth;
    sampler.prepare(plan, kDepth);
    for (std::size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      const auto serial = sampler.sample_fdist(f, kTrials, 303, kDepth, pool,
                                               SamplingMode::kSerial);
      const auto batched = sampler.sample_fdist(f, kTrials, 404, kDepth,
                                                pool, SamplingMode::kBatched);
      EXPECT_TRUE(testing::fdists_match(serial, kTrials, batched, kTrials))
          << stack.label << " at " << workers << " workers";
      const BatchStats& bs = sampler.last_batch_stats();
      EXPECT_GE(bs.action_draws, kTrials);
      EXPECT_GT(bs.distinct_executions, 0u);
    }
  }
}

}  // namespace
}  // namespace cdse
