// Scheduler implementations (sched/schedulers.hpp; Defs 3.1, 4.6).

#include "sched/schedulers.hpp"

#include <gtest/gtest.h>

#include "protocols/coinflip.hpp"
#include "psioa/compose.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;

TEST(UniformScheduler, UniformOverEnabled) {
  auto coin = make_coin("sch_a", Rational(1, 2));
  UniformScheduler sched(10);
  ExecFragment alpha(coin->start_state());
  const ActionChoice c = sched.choose(*coin, alpha);
  ASSERT_EQ(c.support_size(), 1u);  // only flip enabled
  EXPECT_EQ(c.mass(act("flip_sch_a")), Rational(1));
}

TEST(UniformScheduler, HaltsAtDepthBound) {
  auto coin = make_coin("sch_b", Rational(1, 2));
  UniformScheduler sched(0);
  ExecFragment alpha(coin->start_state());
  EXPECT_TRUE(sched.choose(*coin, alpha).empty());
}

TEST(UniformScheduler, SplitsMassEvenly) {
  auto b1 = make_bernoulli("sch_c1", "sch_go_c1", "sch_y_c1", "sch_n_c1",
                           Rational(1, 2));
  auto b2 = make_bernoulli("sch_c2", "sch_go_c2", "sch_y_c2", "sch_n_c2",
                           Rational(1, 2));
  auto c = compose(b1, b2);
  UniformScheduler sched(10);
  ExecFragment alpha(c->start_state());
  const ActionChoice choice = sched.choose(*c, alpha);
  ASSERT_EQ(choice.support_size(), 2u);
  EXPECT_EQ(choice.mass(act("sch_go_c1")), Rational(1, 2));
  EXPECT_EQ(choice.mass(act("sch_go_c2")), Rational(1, 2));
}

TEST(PriorityScheduler, PicksFirstEnabled) {
  auto b1 = make_bernoulli("sch_d1", "sch_go_d1", "sch_y_d1", "sch_n_d1",
                           Rational(1, 2));
  auto b2 = make_bernoulli("sch_d2", "sch_go_d2", "sch_y_d2", "sch_n_d2",
                           Rational(1, 2));
  auto c = compose(b1, b2);
  PriorityScheduler sched({act("sch_go_d2"), act("sch_go_d1")}, 10);
  ExecFragment alpha(c->start_state());
  const ActionChoice choice = sched.choose(*c, alpha);
  ASSERT_EQ(choice.support_size(), 1u);
  EXPECT_EQ(choice.mass(act("sch_go_d2")), Rational(1));
}

TEST(PriorityScheduler, HaltsWhenNothingListedIsEnabled) {
  auto coin = make_coin("sch_e", Rational(1, 2));
  PriorityScheduler sched({act("sch_unlisted_e")}, 10);
  ExecFragment alpha(coin->start_state());
  EXPECT_TRUE(sched.choose(*coin, alpha).empty());
}

TEST(SequenceScheduler, FollowsWordThenHalts) {
  auto coin = make_coin("sch_f", Rational(1, 2));
  SequenceScheduler sched({act("flip_sch_f"), act("toss_sch_f")});
  ExecFragment alpha(coin->start_state());
  const ActionChoice c0 = sched.choose(*coin, alpha);
  EXPECT_EQ(c0.mass(act("flip_sch_f")), Rational(1));
  alpha.append(act("flip_sch_f"),
               coin->transition(coin->start_state(), act("flip_sch_f"))
                   .support()[0]);
  const ActionChoice c1 = sched.choose(*coin, alpha);
  EXPECT_EQ(c1.mass(act("toss_sch_f")), Rational(1));
}

TEST(SequenceScheduler, HaltsOnDisabledLetter) {
  auto coin = make_coin("sch_g", Rational(1, 2));
  SequenceScheduler sched({act("toss_sch_g")});  // not enabled at idle
  ExecFragment alpha(coin->start_state());
  EXPECT_TRUE(sched.choose(*coin, alpha).empty());
}

TEST(TaskScheduler, FiresUniqueEnabledActionOfTask) {
  auto coin = make_coin("sch_h", Rational(1, 2));
  TaskScheduler sched({acts({"flip_sch_h", "toss_sch_h"})});
  ExecFragment alpha(coin->start_state());
  const ActionChoice c = sched.choose(*coin, alpha);
  EXPECT_EQ(c.mass(act("flip_sch_h")), Rational(1));
}

TEST(TaskScheduler, HaltsOnAmbiguousTask) {
  auto b1 = make_bernoulli("sch_i1", "sch_go_i1", "sch_y_i1", "sch_n_i1",
                           Rational(1, 2));
  auto b2 = make_bernoulli("sch_i2", "sch_go_i2", "sch_y_i2", "sch_n_i2",
                           Rational(1, 2));
  auto c = compose(b1, b2);
  TaskScheduler sched({acts({"sch_go_i1", "sch_go_i2"})});
  ExecFragment alpha(c->start_state());
  EXPECT_TRUE(sched.choose(*c, alpha).empty());
}

TEST(BoundedScheduler, Def46StopsAtBound) {
  auto coin = make_coin("sch_j", Rational(1, 2));
  auto inner = std::make_shared<UniformScheduler>(100);
  BoundedScheduler sched(inner, 1);
  ExecFragment alpha(coin->start_state());
  EXPECT_FALSE(sched.choose(*coin, alpha).empty());
  alpha.append(act("flip_sch_j"),
               coin->transition(coin->start_state(), act("flip_sch_j"))
                   .support()[0]);
  EXPECT_TRUE(sched.choose(*coin, alpha).empty());
  EXPECT_EQ(sched.bound(), 1u);
}

TEST(ObliviousFnScheduler, SeesOnlyActionWord) {
  auto coin = make_coin("sch_k", Rational(1, 2));
  std::vector<std::vector<ActionId>> observed;
  ObliviousFnScheduler sched(
      [&observed](const std::vector<ActionId>& word, const ActionSet& en) {
        observed.push_back(word);
        ActionChoice c;
        if (!en.empty()) c.add(en.front(), Rational(1));
        return c;
      },
      "probe");
  ExecFragment alpha(coin->start_state());
  (void)sched.choose(*coin, alpha);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_TRUE(observed[0].empty());
}

TEST(MaxScheduleLength, MeasuresLongestSupportPath) {
  auto coin = make_coin("sch_l", Rational(1, 2));
  auto uni = std::make_shared<UniformScheduler>(3);
  EXPECT_EQ(max_schedule_length(*coin, *uni, 10), 3u);
  auto uni10 = std::make_shared<UniformScheduler>(100);
  EXPECT_EQ(max_schedule_length(*coin, *uni10, 5), 5u);  // capped by explorer
}

}  // namespace
}  // namespace cdse
