// Sorted-vector set algebra (util/sorted_set.hpp).

#include "util/sorted_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cdse {
namespace {

TEST(SortedSet, NormalizeSortsAndDeduplicates) {
  SortedSet<int> s{3, 1, 2, 3, 1};
  set::normalize(s);
  EXPECT_EQ(s, (SortedSet<int>{1, 2, 3}));
  EXPECT_TRUE(set::is_sorted_set(s));
}

TEST(SortedSet, Contains) {
  SortedSet<int> s{1, 3, 5};
  EXPECT_TRUE(set::contains(s, 3));
  EXPECT_FALSE(set::contains(s, 4));
  EXPECT_FALSE(set::contains(SortedSet<int>{}, 1));
}

TEST(SortedSet, Unite) {
  EXPECT_EQ(set::unite<int>({1, 3}, {2, 3}), (SortedSet<int>{1, 2, 3}));
  EXPECT_EQ(set::unite<int>({}, {2}), (SortedSet<int>{2}));
}

TEST(SortedSet, Intersect) {
  EXPECT_EQ(set::intersect<int>({1, 2, 3}, {2, 3, 4}),
            (SortedSet<int>{2, 3}));
  EXPECT_TRUE(set::intersect<int>({1}, {2}).empty());
}

TEST(SortedSet, Subtract) {
  EXPECT_EQ(set::subtract<int>({1, 2, 3}, {2}), (SortedSet<int>{1, 3}));
  EXPECT_EQ(set::subtract<int>({1}, {1}), (SortedSet<int>{}));
}

TEST(SortedSet, Disjoint) {
  EXPECT_TRUE(set::disjoint<int>({1, 3}, {2, 4}));
  EXPECT_FALSE(set::disjoint<int>({1, 3}, {3}));
  EXPECT_TRUE(set::disjoint<int>({}, {}));
}

TEST(SortedSet, Subset) {
  EXPECT_TRUE(set::subset<int>({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(set::subset<int>({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(set::subset<int>({}, {1}));
}

TEST(SortedSet, InsertKeepsInvariantAndReportsNovelty) {
  SortedSet<int> s{1, 3};
  EXPECT_TRUE(set::insert(s, 2));
  EXPECT_EQ(s, (SortedSet<int>{1, 2, 3}));
  EXPECT_FALSE(set::insert(s, 2));
  EXPECT_EQ(s.size(), 3u);
}

TEST(SortedSet, EraseReportsPresence) {
  SortedSet<int> s{1, 2, 3};
  EXPECT_TRUE(set::erase(s, 2));
  EXPECT_EQ(s, (SortedSet<int>{1, 3}));
  EXPECT_FALSE(set::erase(s, 2));
}

// Algebraic laws over randomized sets.
class SetLaws : public ::testing::TestWithParam<int> {
 protected:
  SortedSet<int> random_set(Xoshiro256& rng) {
    SortedSet<int> s;
    const std::size_t n = rng.below(12);
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back(static_cast<int>(rng.below(20)));
    }
    set::normalize(s);
    return s;
  }
};

TEST_P(SetLaws, BooleanAlgebra) {
  Xoshiro256 rng(GetParam() * 977 + 11);
  const auto a = random_set(rng);
  const auto b = random_set(rng);
  const auto c = random_set(rng);
  EXPECT_EQ(set::unite(a, b), set::unite(b, a));
  EXPECT_EQ(set::intersect(a, b), set::intersect(b, a));
  EXPECT_EQ(set::unite(set::unite(a, b), c), set::unite(a, set::unite(b, c)));
  // Distributivity and De Morgan within the union universe.
  EXPECT_EQ(set::intersect(a, set::unite(b, c)),
            set::unite(set::intersect(a, b), set::intersect(a, c)));
  EXPECT_EQ(set::subtract(a, set::unite(b, c)),
            set::subtract(set::subtract(a, b), c));
  // disjoint <=> empty intersection; subset <=> subtraction empty.
  EXPECT_EQ(set::disjoint(a, b), set::intersect(a, b).empty());
  EXPECT_EQ(set::subset(a, b), set::subtract(a, b).empty());
  // Partition: (a \ b) U (a n b) == a.
  EXPECT_EQ(set::unite(set::subtract(a, b), set::intersect(a, b)), a);
}

INSTANTIATE_TEST_SUITE_P(Random, SetLaws, ::testing::Range(0, 25));

}  // namespace
}  // namespace cdse
