// Optimal-distinguisher search (impl/optimal.hpp).

#include "impl/optimal.hpp"

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "protocols/environment.hpp"
#include "psioa/compose.hpp"
#include "secure/adversary.hpp"
#include "secure/emulation.hpp"

namespace cdse {
namespace {

TEST(OptimalSearch, IdenticalSystemsHaveZeroOptimum) {
  const RealIdealPair p1 = make_otmac_pair(2, "op_a1");
  const RealIdealPair p2 = make_otmac_pair(2, "op_a1b");
  // Compare real-vs-real of equal parameter (different instances, same
  // vocabulary is required: reuse one pair's real against itself).
  auto adv = make_sink_adversary("op_a_adv", {}, acts({"forge_op_a1"}));
  (void)p2;
  PsioaPtr sys = hidden_adversary_composition(p1.real, adv);
  const std::vector<ActionId> alphabet{
      act("auth_op_a1"), act("forge_op_a1"), act("forged_op_a1"),
      act("rejected_op_a1")};
  TraceInsight f;
  const BestDistinguisher best =
      search_best_word(*sys, *sys, alphabet, 4, f, 10);
  EXPECT_EQ(best.eps, Rational(0));
  EXPECT_GT(best.words_evaluated, 1u);
}

TEST(OptimalSearch, FindsCanonicalMacAttack) {
  const RealIdealPair pair = make_otmac_pair(2, "op_b");
  auto adv = make_sink_adversary("op_b_adv", {}, acts({"forge_op_b"}));
  PsioaPtr lhs = hidden_adversary_composition(pair.real, adv);
  PsioaPtr rhs = hidden_adversary_composition(pair.ideal, adv);
  const std::vector<ActionId> alphabet{
      act("auth_op_b"), act("forge_op_b"), act("forged_op_b"),
      act("rejected_op_b")};
  TraceInsight f;
  const BestDistinguisher best =
      search_best_word(*lhs, *rhs, alphabet, 4, f, 10);
  // The optimum over off-line schedulers is exactly the MAC advantage,
  // and the canonical auth-forge-report word achieves it.
  EXPECT_EQ(best.eps, Rational(1, 4));
  ASSERT_GE(best.word.size(), 2u);
  EXPECT_EQ(best.word[0], act("auth_op_b"));
  EXPECT_EQ(best.word[1], act("forge_op_b"));
}

TEST(OptimalSearch, NoWordBeatsTheClosedFormAdvantage) {
  const RealIdealPair pair = make_otmac_pair(3, "op_c");
  auto adv = make_sink_adversary("op_c_adv", {}, acts({"forge_op_c"}));
  PsioaPtr lhs = hidden_adversary_composition(pair.real, adv);
  PsioaPtr rhs = hidden_adversary_composition(pair.ideal, adv);
  const std::vector<ActionId> alphabet{
      act("auth_op_c"), act("forge_op_c"), act("forged_op_c"),
      act("rejected_op_c")};
  TraceInsight f;
  const BestDistinguisher best =
      search_best_word(*lhs, *rhs, alphabet, 5, f, 12);
  EXPECT_EQ(best.eps, pair.exact_advantage);  // never exceeded
}

TEST(OptimalSearch, PruningStillExploresUsefulWords) {
  const RealIdealPair pair = make_otmac_pair(1, "op_d");
  auto adv = make_sink_adversary("op_d_adv", {}, acts({"forge_op_d"}));
  PsioaPtr lhs = hidden_adversary_composition(pair.real, adv);
  PsioaPtr rhs = hidden_adversary_composition(pair.ideal, adv);
  const std::vector<ActionId> alphabet{act("auth_op_d"),
                                       act("forge_op_d"),
                                       act("forged_op_d")};
  TraceInsight f;
  const BestDistinguisher four =
      search_best_word(*lhs, *rhs, alphabet, 4, f, 10);
  // Word space is 3^0+...+3^4 = 121; pruning must cut it well below.
  EXPECT_LT(four.words_evaluated, 121u);
  EXPECT_EQ(four.eps, Rational(1, 2));
}

TEST(OptimalSearch, WordStringRenders) {
  BestDistinguisher b;
  b.word = {act("op_e_x"), act("op_e_y")};
  EXPECT_EQ(b.word_string(), "op_e_x.op_e_y");
}

}  // namespace
}  // namespace cdse
