// Probabilistic bisimulation checker (impl/bisim.hpp).

#include "impl/bisim.hpp"

#include <gtest/gtest.h>

#include "crypto/pairs.hpp"
#include "protocols/coinflip.hpp"
#include "protocols/ledger.hpp"
#include "test_util.hpp"

namespace cdse {
namespace {

using testing::make_bernoulli;

TEST(Bisim, IdenticalStructureIsBisimilar) {
  auto a = make_bernoulli("bs_a1", "bs_go_a", "bs_y_a", "bs_n_a",
                          Rational(1, 3));
  auto b = make_bernoulli("bs_a2", "bs_go_a", "bs_y_a", "bs_n_a",
                          Rational(1, 3));
  const BisimResult r = probabilistic_bisimulation(*a, *b, 10);
  EXPECT_TRUE(r.bisimilar);
  EXPECT_TRUE(r.exhaustive());
  EXPECT_FALSE(r.truncated_a);
  EXPECT_FALSE(r.truncated_b);
  EXPECT_EQ(r.states_a, 4u);
  EXPECT_EQ(r.states_b, 4u);
}

TEST(Bisim, DifferentBiasIsNotBisimilar) {
  auto a = make_bernoulli("bs_b1", "bs_go_b", "bs_y_b", "bs_n_b",
                          Rational(1, 3));
  auto b = make_bernoulli("bs_b2", "bs_go_b", "bs_y_b", "bs_n_b",
                          Rational(1, 2));
  EXPECT_FALSE(probabilistic_bisimulation(*a, *b, 10).bisimilar);
}

TEST(Bisim, DifferentSignatureIsNotBisimilar) {
  auto a = make_bernoulli("bs_c1", "bs_go_c", "bs_y_c", "bs_n_c",
                          Rational(1, 2));
  auto b = make_coin("bs_c", Rational(1, 2));
  EXPECT_FALSE(probabilistic_bisimulation(*a, *b, 10).bisimilar);
}

TEST(Bisim, LumpsRedundantInternalStructure) {
  // Automaton B takes an extra internal hop before resolving; the hop is
  // deterministic, so B is bisimilar to the direct A... only if the hop
  // introduces no signature difference. Here the hop uses an internal
  // action that A's idle state lacks, so they are NOT bisimilar --
  // bisimulation is finer than trace equivalence, which is the point.
  auto a = make_bernoulli("bs_d1", "bs_go_d", "bs_y_d", "bs_n_d",
                          Rational(1, 2));
  auto hop = std::make_shared<ExplicitPsioa>("bs_d2");
  const State s0 = hop->add_state("idle");
  const State mid = hop->add_state("mid");
  const State sy = hop->add_state("yes");
  const State sn = hop->add_state("no");
  const State sd = hop->add_state("done");
  hop->set_start(s0);
  Signature sig0;
  sig0.in = acts({"bs_go_d"});
  hop->set_signature(s0, sig0);
  Signature sigm;
  sigm.internal = acts({"bs_hop_d"});
  hop->set_signature(mid, sigm);
  Signature sigy;
  sigy.out = acts({"bs_y_d"});
  hop->set_signature(sy, sigy);
  Signature sign;
  sign.out = acts({"bs_n_d"});
  hop->set_signature(sn, sign);
  hop->set_signature(sd, Signature{});
  hop->add_step(s0, act("bs_go_d"), mid);
  StateDist d;
  d.add(sy, Rational(1, 2));
  d.add(sn, Rational(1, 2));
  hop->add_transition(mid, act("bs_hop_d"), d);
  hop->add_step(sy, act("bs_y_d"), sd);
  hop->add_step(sn, act("bs_n_d"), sd);
  hop->validate();
  EXPECT_FALSE(probabilistic_bisimulation(*a, *hop, 10).bisimilar);
}

TEST(Bisim, SplitProbabilityBranchesLump) {
  // Two automata reaching the *same-signature* outcome states with the
  // same total per-class probability are bisimilar even when one splits
  // the branch into two distinct states with equal signatures.
  auto direct = make_bernoulli("bs_e1", "bs_go_e", "bs_y_e", "bs_n_e",
                               Rational(1, 2));
  auto split = std::make_shared<ExplicitPsioa>("bs_e2");
  const State s0 = split->add_state("idle");
  const State y1 = split->add_state("yes1");
  const State y2 = split->add_state("yes2");
  const State sn = split->add_state("no");
  const State sd = split->add_state("done");
  split->set_start(s0);
  Signature sig0;
  sig0.in = acts({"bs_go_e"});
  split->set_signature(s0, sig0);
  Signature sigy;
  sigy.out = acts({"bs_y_e"});
  split->set_signature(y1, sigy);
  split->set_signature(y2, sigy);
  Signature sign;
  sign.out = acts({"bs_n_e"});
  split->set_signature(sn, sign);
  split->set_signature(sd, Signature{});
  StateDist d;
  d.add(y1, Rational(1, 4));
  d.add(y2, Rational(1, 4));
  d.add(sn, Rational(1, 2));
  split->add_transition(s0, act("bs_go_e"), d);
  split->add_step(y1, act("bs_y_e"), sd);
  split->add_step(y2, act("bs_y_e"), sd);
  split->add_step(sn, act("bs_n_e"), sd);
  split->validate();
  const BisimResult r = probabilistic_bisimulation(*direct, *split, 10);
  EXPECT_TRUE(r.bisimilar);
}

TEST(Bisim, SingleSubchainLedgerBisimilarToStaticSpec) {
  // With one subchain the E9 claim upgrades from trace equivalence to
  // full bisimilarity: run-time creation/destruction is invisible even
  // at the branching level.
  const LedgerSystem sys = make_ledger_system(1, "bs_f");
  const BisimResult r =
      probabilistic_bisimulation(*sys.dynamic, *sys.static_spec, 12);
  EXPECT_TRUE(r.bisimilar);
  EXPECT_TRUE(r.exhaustive());
}

TEST(Bisim, MultiSubchainLedgerOnlyTraceEquivalent) {
  // A genuine subtlety the checker exposes: with n >= 2 subchains, the
  // static spec's *unopened* listeners contribute their open_i inputs to
  // the composite signature, while the dynamic PCA's signature grows
  // only as automata are created. The systems are therefore trace
  // equivalent under locally-controlled scheduling (E9) but NOT
  // bisimilar -- signatures differ before the later chains are opened.
  const LedgerSystem sys = make_ledger_system(2, "bs_f2");
  const Signature dyn0 = sys.dynamic->signature(sys.dynamic->start_state());
  const Signature stat0 =
      sys.static_spec->signature(sys.static_spec->start_state());
  EXPECT_FALSE(dyn0.is_input(act("open2_bs_f2")));
  EXPECT_TRUE(stat0.is_input(act("open2_bs_f2")));
  EXPECT_FALSE(
      probabilistic_bisimulation(*sys.dynamic, *sys.static_spec, 12)
          .bisimilar);
}

TEST(Bisim, MacRealVsIdealNotBisimilar) {
  const RealIdealPair p = make_otmac_pair(2, "bs_g");
  EXPECT_FALSE(probabilistic_bisimulation(p.real.automaton(),
                                          p.ideal.automaton(), 10)
                   .bisimilar);
}

TEST(Bisim, DepthCapReportsNonExhaustive) {
  const LedgerSystem sys = make_ledger_system(2, "bs_h");
  const BisimResult r =
      probabilistic_bisimulation(*sys.dynamic, *sys.static_spec, 1);
  EXPECT_FALSE(r.exhaustive());
  // Both sides are deeper than one transition, so each reports its own
  // depth cap -- and the cap is a depth cap, not a state cap.
  EXPECT_TRUE(r.truncated_a);
  EXPECT_TRUE(r.truncated_b);
  EXPECT_TRUE(r.depth_capped_a);
  EXPECT_TRUE(r.depth_capped_b);
  EXPECT_FALSE(r.state_capped_a);
  EXPECT_FALSE(r.state_capped_b);
}

TEST(Bisim, StateCapIsPerSide) {
  // A is the 4-state coin; B is the multi-subchain ledger. A state
  // budget of exactly 4 caps B's exploration but leaves A fully
  // explored -- the per-side flags must not smear B's truncation onto A
  // (the collapsed pre-split flag could not tell these apart).
  auto a = make_coin("bs_i", Rational(1, 2));
  const LedgerSystem sys = make_ledger_system(2, "bs_i2");
  const BisimResult r =
      probabilistic_bisimulation(*a, *sys.dynamic, 12, /*max_states=*/4);
  EXPECT_FALSE(r.exhaustive());
  EXPECT_FALSE(r.truncated_a);
  EXPECT_FALSE(r.state_capped_a);
  EXPECT_EQ(r.states_a, 4u);
  EXPECT_TRUE(r.truncated_b);
  EXPECT_TRUE(r.state_capped_b);
}

}  // namespace
}  // namespace cdse
