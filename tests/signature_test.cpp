// Signature algebra (psioa/signature.hpp; Defs 2.1, 2.3, 2.4, 2.6).

#include "psioa/signature.hpp"

#include <gtest/gtest.h>

namespace cdse {
namespace {

Signature sig(std::initializer_list<std::string_view> in,
              std::initializer_list<std::string_view> out,
              std::initializer_list<std::string_view> internal) {
  Signature s;
  s.in = acts(in);
  s.out = acts(out);
  s.internal = acts(internal);
  return s;
}

TEST(Signature, ExtAndAll) {
  const Signature s = sig({"a"}, {"b"}, {"c"});
  EXPECT_EQ(s.ext(), acts({"a", "b"}));
  EXPECT_EQ(s.all(), acts({"a", "b", "c"}));
}

TEST(Signature, MembershipQueries) {
  const Signature s = sig({"a"}, {"b"}, {"c"});
  EXPECT_TRUE(s.is_input(act("a")));
  EXPECT_TRUE(s.is_output(act("b")));
  EXPECT_TRUE(s.is_internal(act("c")));
  EXPECT_TRUE(s.is_external(act("a")));
  EXPECT_FALSE(s.is_external(act("c")));
  EXPECT_TRUE(s.contains(act("c")));
  EXPECT_FALSE(s.contains(act("zzz_unused")));
}

TEST(Signature, EmptyDetectsDestructionSentinel) {
  EXPECT_TRUE(Signature{}.empty());
  EXPECT_FALSE(sig({"a"}, {}, {}).empty());
}

TEST(Signature, ValidRequiresDisjointClasses) {
  EXPECT_TRUE(sig({"a"}, {"b"}, {"c"}).valid());
  Signature bad;
  bad.in = acts({"a"});
  bad.out = acts({"a"});
  EXPECT_FALSE(bad.valid());
  Signature bad2;
  bad2.in = acts({"a"});
  bad2.internal = acts({"a"});
  EXPECT_FALSE(bad2.valid());
}

TEST(Compatibility, OutputOutputClashIsIncompatible) {
  EXPECT_FALSE(compatible(sig({}, {"x"}, {}), sig({}, {"x"}, {})));
}

TEST(Compatibility, InternalActionMustBePrivate) {
  EXPECT_FALSE(compatible(sig({"h"}, {}, {}), sig({}, {}, {"h"})));
  EXPECT_FALSE(compatible(sig({}, {}, {"h"}), sig({}, {"h"}, {})));
}

TEST(Compatibility, MatchingInputOutputIsCompatible) {
  EXPECT_TRUE(compatible(sig({"m"}, {}, {}), sig({}, {"m"}, {})));
  EXPECT_TRUE(compatible(sig({"m"}, {}, {}), sig({"m"}, {}, {})));
}

TEST(Composition, OutputAbsorbsMatchingInput) {
  // Def 2.4: in = (in U in') \ (out U out').
  const Signature c = compose(sig({"m"}, {"y"}, {}), sig({}, {"m"}, {}));
  EXPECT_EQ(c.in, ActionSet{});
  EXPECT_EQ(c.out, acts({"m", "y"}));
  EXPECT_TRUE(c.internal.empty());
}

TEST(Composition, UnsharedInputsSurvive) {
  const Signature c = compose(sig({"a", "m"}, {}, {}), sig({}, {"m"}, {}));
  EXPECT_EQ(c.in, acts({"a"}));
}

TEST(Composition, IsCommutative) {
  const Signature s1 = sig({"a", "m"}, {"x"}, {"i"});
  const Signature s2 = sig({"x"}, {"m"}, {"j"});
  EXPECT_EQ(compose(s1, s2), compose(s2, s1));
}

TEST(Composition, IsAssociative) {
  const Signature s1 = sig({"a"}, {"b"}, {});
  const Signature s2 = sig({"b"}, {"c"}, {});
  const Signature s3 = sig({"c"}, {"d"}, {});
  EXPECT_EQ(compose(compose(s1, s2), s3), compose(s1, compose(s2, s3)));
}

TEST(Composition, EmptySignatureIsIdentity) {
  const Signature s = sig({"a"}, {"b"}, {"c"});
  EXPECT_EQ(compose(s, Signature{}), s);
  EXPECT_EQ(compose(Signature{}, s), s);
}

TEST(Hiding, MovesOutputsToInternal) {
  const Signature h = hide(sig({"a"}, {"b", "c"}, {"i"}), acts({"b"}));
  EXPECT_EQ(h.in, acts({"a"}));
  EXPECT_EQ(h.out, acts({"c"}));
  EXPECT_EQ(h.internal, acts({"b", "i"}));
}

TEST(Hiding, IgnoresNonOutputs) {
  const Signature s = sig({"a"}, {"b"}, {});
  const Signature h = hide(s, acts({"a", "zz_not_there"}));
  EXPECT_EQ(h, s);
}

TEST(Hiding, IsIdempotentAndComposes) {
  const Signature s = sig({}, {"b", "c", "d"}, {});
  const Signature h1 = hide(hide(s, acts({"b"})), acts({"b"}));
  EXPECT_EQ(h1, hide(s, acts({"b"})));
  // hide(hide(s, X), Y) == hide(s, X U Y).
  EXPECT_EQ(hide(hide(s, acts({"b"})), acts({"c"})),
            hide(s, acts({"b", "c"})));
}

TEST(Hiding, PreservesValidity) {
  const Signature s = sig({"a"}, {"b", "c"}, {"i"});
  EXPECT_TRUE(hide(s, acts({"b", "c"})).valid());
}

}  // namespace
}  // namespace cdse
